(** ASCII table / series rendering and the summary statistics the
    paper reports (harmonic means over benchmarks). *)

let harmonic_mean (xs : float list) : float =
  match xs with
  | [] -> nan
  | _ ->
    let n = float_of_int (List.length xs) in
    n /. List.fold_left (fun acc x -> acc +. (1.0 /. x)) 0.0 xs

let geometric_mean (xs : float list) : float =
  match xs with
  | [] -> nan
  | _ ->
    let n = float_of_int (List.length xs) in
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

(** Render rows as a fixed-width table with a header. *)
let render ~(header : string list) (rows : string list list) : string =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           if c = 0 then Printf.sprintf "%-*s" w cell
           else Printf.sprintf "%*s" w cell)
         row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line header :: sep :: List.map line rows) ^ "\n"

let fx f = Printf.sprintf "%.2f" f
let pct f = Printf.sprintf "%.1f%%" (100.0 *. f)

(** One row of the degradation-ladder / fault-campaign report. *)
type ladder_row = {
  lr_workload : string;
  lr_fault : string;  (** "-" for the clean configuration *)
  lr_rung : string;  (** rung that finally held *)
  lr_fell : int;  (** rungs fallen before it held *)
  lr_output_ok : bool;  (** bit-identical to the sequential oracle *)
  lr_detail : string;  (** first diagnostic, "" when none *)
}

(** Render ladder outcomes (the robustness counterpart of the paper's
    performance tables): one row per (workload, fault) configuration. *)
let ladder_table (rows : ladder_row list) : string =
  render
    ~header:[ "workload"; "fault"; "rung held"; "fell"; "output"; "diagnostic" ]
    (List.map
       (fun r ->
         [
           r.lr_workload;
           r.lr_fault;
           r.lr_rung;
           string_of_int r.lr_fell;
           (if r.lr_output_ok then "ok" else "MISMATCH");
           r.lr_detail;
         ])
       rows)
