(** ASCII table / series rendering and the summary statistics the
    paper reports (harmonic means over benchmarks). *)

let harmonic_mean (xs : float list) : float =
  match xs with
  | [] -> nan
  | _ ->
    let n = float_of_int (List.length xs) in
    n /. List.fold_left (fun acc x -> acc +. (1.0 /. x)) 0.0 xs

let geometric_mean (xs : float list) : float =
  match xs with
  | [] -> nan
  | _ ->
    let n = float_of_int (List.length xs) in
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

(** Render rows as a fixed-width table with a header. *)
let render ~(header : string list) (rows : string list list) : string =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           if c = 0 then Printf.sprintf "%-*s" w cell
           else Printf.sprintf "%*s" w cell)
         row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line header :: sep :: List.map line rows) ^ "\n"

let fx f = Printf.sprintf "%.2f" f
let pct f = Printf.sprintf "%.1f%%" (100.0 *. f)

(** Where a parallel run's cycles went, aggregated over threads. The
    single row type every report shares — Figure 12, the metrics
    table, and the experiments binary's cost attribution all render
    from it instead of carrying ad-hoc tuples. *)
type cycles_breakdown = {
  cb_compute : int;  (** useful work also present in the sequential run *)
  cb_cache : int;  (** cache-penalty stall cycles (L1/LLC misses) *)
  cb_sync : int;  (** DOACROSS post/wait stall cycles *)
  cb_priv : int;  (** privatization overhead: extra work vs sequential *)
  cb_idle : int;  (** barrier / load-imbalance idle cycles *)
  cb_runtime : int;  (** GOMP fork/dispatch/barrier cycles *)
}

let breakdown_total cb =
  cb.cb_compute + cb.cb_cache + cb.cb_sync + cb.cb_priv + cb.cb_idle
  + cb.cb_runtime

let breakdown_header =
  [ "compute"; "cache stall"; "sync wait"; "privatization"; "idle"; "runtime" ]

(** Six percentage cells, in [breakdown_header] order. *)
let breakdown_cells cb : string list =
  let total = max 1 (breakdown_total cb) in
  let p n = pct (float_of_int n /. float_of_int total) in
  [
    p cb.cb_compute; p cb.cb_cache; p cb.cb_sync; p cb.cb_priv; p cb.cb_idle;
    p cb.cb_runtime;
  ]

(** One row of the [--metrics] report: a workload's speedups plus its
    cycle attribution at a given thread count. *)
type metrics_row = {
  m_workload : string;
  m_threads : int;
  m_loop_speedup : float;
  m_total_speedup : float;
  m_breakdown : cycles_breakdown;
}

let metrics_table (rows : metrics_row list) : string =
  let cells r =
    [
      r.m_workload;
      string_of_int r.m_threads;
      fx r.m_loop_speedup;
      fx r.m_total_speedup;
    ]
    @ breakdown_cells r.m_breakdown
  in
  let summary =
    if List.length rows < 2 then []
    else
      [
        [
          "harmonic mean";
          "";
          fx (harmonic_mean (List.map (fun r -> r.m_loop_speedup) rows));
          fx (harmonic_mean (List.map (fun r -> r.m_total_speedup) rows));
        ]
        @ List.map (fun _ -> "") breakdown_header;
      ]
  in
  render
    ~header:
      ([ "workload"; "threads"; "loop speedup"; "total speedup" ]
      @ breakdown_header)
    (List.map cells rows @ summary)

(** Classification provenance (--explain): one row per access class,
    from [Privatize.Classify.explain_rows]. *)
let explain_table (rows : string list list) : string =
  render
    ~header:[ "access class"; "verdict"; "rule fired"; "trigger"; "evidence" ]
    rows

(** Layout provenance (--explain): one row per object of the expansion
    set, from [Expand.Plan.layout_rows]. *)
let layout_table (rows : string list list) : string =
  render
    ~header:[ "object"; "kind"; "layout"; "interleavable"; "copy span"; "why" ]
    rows

(** Heatmap summary (--heatmap / experiments heatmap): one row per
    (workload, mode) simulation. *)
let heat_summary_table (rows : string list list) : string =
  render
    ~header:
      [
        "workload";
        "mode";
        "threads";
        "lines";
        "false sharing";
        "copies";
        "mean util";
      ]
    rows

(** Per-line heatmap detail: one row per attributed cache line. *)
let heat_lines_table (rows : string list list) : string =
  render
    ~header:[ "line"; "touches"; "threads"; "classes"; "copies"; "false sharing" ]
    rows

(** Render an aggregator's counters as a two-column table. *)
let counters_table (counters : (string * int) list) : string =
  render ~header:[ "counter"; "value" ]
    (List.map (fun (k, v) -> [ k; string_of_int v ]) counters)

(** One row of the degradation-ladder / fault-campaign report. *)
type ladder_row = {
  lr_workload : string;
  lr_fault : string;  (** "-" for the clean configuration *)
  lr_rung : string;  (** rung that finally held *)
  lr_fell : int;  (** rungs fallen before it held *)
  lr_output_ok : bool;  (** bit-identical to the sequential oracle *)
  lr_detail : string;  (** first diagnostic, "" when none *)
}

(** Render ladder outcomes (the robustness counterpart of the paper's
    performance tables): one row per (workload, fault) configuration. *)
let ladder_table (rows : ladder_row list) : string =
  render
    ~header:[ "workload"; "fault"; "rung held"; "fell"; "output"; "diagnostic" ]
    (List.map
       (fun r ->
         [
           r.lr_workload;
           r.lr_fault;
           r.lr_rung;
           string_of_int r.lr_fell;
           (if r.lr_output_ok then "ok" else "MISMATCH");
           r.lr_detail;
         ])
       rows)

(** One row of the critical-path report: a workload's schedule at a
    domain count, its model-vs-measured speedup gap and the dominant
    wall-clock segment the profiler blames for it. *)
type critpath_row = {
  cp_workload : string;
  cp_domains : int;
  cp_model_speedup : float;  (** cycle-model speedup of the schedule *)
  cp_measured_speedup : float;  (** seq wall / critical-path length *)
  cp_dominant : string;  (** dominant on-path class *)
  cp_dominant_share : float;  (** its share of the critical path *)
  cp_exec_inflation : float;
      (** parallel exec ns/cycle over sequential ns/cycle *)
}

let critpath_table (rows : critpath_row list) : string =
  render
    ~header:
      [
        "workload"; "domains"; "model"; "measured"; "dominant"; "share";
        "inflation";
      ]
    (List.map
       (fun r ->
         [
           r.cp_workload;
           string_of_int r.cp_domains;
           fx r.cp_model_speedup ^ "x";
           fx r.cp_measured_speedup ^ "x";
           r.cp_dominant;
           pct r.cp_dominant_share;
           fx r.cp_exec_inflation ^ "x";
         ])
       rows)
