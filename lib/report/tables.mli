(** ASCII table / series rendering and the summary statistics the
    paper reports (harmonic means over benchmarks). *)

val harmonic_mean : float list -> float
val geometric_mean : float list -> float

(** Render rows as a fixed-width table under a header: first column
    left-aligned, the rest right-aligned. *)
val render : header:string list -> string list list -> string

(** ["1.93"]-style fixed-point rendering. *)
val fx : float -> string

(** [pct 0.427] is ["42.7%"]. *)
val pct : float -> string

(** Where a parallel run's cycles went, aggregated over threads. The
    single row type every report shares — Figure 12, the metrics
    table, and the experiments binary's cost attribution all render
    from it instead of carrying ad-hoc tuples. *)
type cycles_breakdown = {
  cb_compute : int;  (** useful work also present in the sequential run *)
  cb_cache : int;  (** cache-penalty stall cycles (L1/LLC misses) *)
  cb_sync : int;  (** DOACROSS post/wait stall cycles *)
  cb_priv : int;  (** privatization overhead: extra work vs sequential *)
  cb_idle : int;  (** barrier / load-imbalance idle cycles *)
  cb_runtime : int;  (** GOMP fork/dispatch/barrier cycles *)
}

val breakdown_total : cycles_breakdown -> int

(** Column titles matching {!breakdown_cells}. *)
val breakdown_header : string list

(** Six percentage cells, in [breakdown_header] order. *)
val breakdown_cells : cycles_breakdown -> string list

(** One row of the [--metrics] report: a workload's speedups plus its
    cycle attribution at a given thread count. *)
type metrics_row = {
  m_workload : string;
  m_threads : int;
  m_loop_speedup : float;
  m_total_speedup : float;
  m_breakdown : cycles_breakdown;
}

(** Render metrics rows; appends a harmonic-mean summary row over the
    speedup columns when there are at least two rows. *)
val metrics_table : metrics_row list -> string

(** Classification provenance (--explain): one row per access class,
    from [Privatize.Classify.explain_rows]. *)
val explain_table : string list list -> string

(** Layout provenance (--explain): one row per object of the expansion
    set, from [Expand.Plan.layout_rows]. *)
val layout_table : string list list -> string

(** Heatmap summary: one row per (workload, mode) simulation —
    workload, mode, threads, lines, false-sharing lines, copies, mean
    utilization. *)
val heat_summary_table : string list list -> string

(** Per-line heatmap detail: one row per attributed cache line. *)
val heat_lines_table : string list list -> string

(** Render an aggregator's counters as a two-column table. *)
val counters_table : (string * int) list -> string

(** One row of the degradation-ladder / fault-campaign report. *)
type ladder_row = {
  lr_workload : string;
  lr_fault : string;  (** "-" for the clean configuration *)
  lr_rung : string;  (** rung that finally held *)
  lr_fell : int;  (** rungs fallen before it held *)
  lr_output_ok : bool;  (** bit-identical to the sequential oracle *)
  lr_detail : string;  (** first diagnostic, "" when none *)
}

(** Render ladder outcomes (the robustness counterpart of the paper's
    performance tables): one row per (workload, fault) configuration. *)
val ladder_table : ladder_row list -> string

(** One row of the critical-path report ([experiments critpath] and
    the bench summary): the model-vs-measured speedup gap of one
    (workload, domain count) schedule and the dominant wall-clock
    segment the profiler blames for it. *)
type critpath_row = {
  cp_workload : string;
  cp_domains : int;
  cp_model_speedup : float;  (** cycle-model speedup of the schedule *)
  cp_measured_speedup : float;  (** seq wall / critical-path length *)
  cp_dominant : string;  (** dominant on-path class *)
  cp_dominant_share : float;  (** its share of the critical path *)
  cp_exec_inflation : float;
      (** parallel exec ns/cycle over sequential ns/cycle; > 1 means
          the same interpreted work ran slower per cycle in parallel *)
}

val critpath_table : critpath_row list -> string
