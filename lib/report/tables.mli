(** ASCII table / series rendering and the summary statistics the
    paper reports (harmonic means over benchmarks). *)

val harmonic_mean : float list -> float
val geometric_mean : float list -> float

(** Render rows as a fixed-width table under a header: first column
    left-aligned, the rest right-aligned. *)
val render : header:string list -> string list list -> string

(** ["1.93"]-style fixed-point rendering. *)
val fx : float -> string

(** [pct 0.427] is ["42.7%"]. *)
val pct : float -> string

(** One row of the degradation-ladder / fault-campaign report. *)
type ladder_row = {
  lr_workload : string;
  lr_fault : string;  (** "-" for the clean configuration *)
  lr_rung : string;  (** rung that finally held *)
  lr_fell : int;  (** rungs fallen before it held *)
  lr_output_ok : bool;  (** bit-identical to the sequential oracle *)
  lr_detail : string;  (** first diagnostic, "" when none *)
}

(** Render ladder outcomes (the robustness counterpart of the paper's
    performance tables): one row per (workload, fault) configuration. *)
val ladder_table : ladder_row list -> string
