(** Domain executor. See the interface for the execution model; the
    comments here cover the scheduling invariants the code relies on.

    Chunks of a distributed loop are homed round-robin (chunk [c]
    belongs to domain [c mod n]). Each owner pushes its chunks in
    {e decreasing} index order, so its own pops yield increasing
    indices while thieves — stealing from the top — always take the
    owner's {e highest} remaining chunk. Consequently, when an owner
    reaches the boundary of its next own chunk, the bottom of its
    deque is either exactly that chunk or the deque is empty (the
    chunk was stolen). Thieves only steal chunks whose boundary is
    strictly ahead of their current position ([steal_if]), park them
    in a pending set, and execute them on arrival; chunks that are
    never stolen are always popped by their home at its boundary.
    Every chunk is therefore executed exactly once, by exactly one
    domain. *)

open Minic

type decision = Distributed | Replicated of string

type loop_report = {
  lr_lid : Ast.lid;
  lr_decision : decision;
  lr_invocations : int;
  lr_iterations : int;
}

type result = {
  dx_exit : int;
  dx_output : string;
  dx_requested : int;
  dx_domains : int;
  dx_wall_ns : float;
  dx_steals : int;
  dx_steal_lost : int;
  dx_chunks_run : int array;
  dx_merges : int;
  dx_loops : loop_report list;
  dx_fallback : string option;
  dx_machine : Interp.Machine.t;
}

type chunk_ref = {
  ck_lid : Ast.lid;
  ck_inv : int;
  ck_chunk : int;
  ck_nchunks : int;
}

exception Supervised_abort of string
exception Retry_exhausted of chunk_ref
exception Log_corrupted of chunk_ref
exception Chunk_lost of chunk_ref

type supervision = {
  sv_budget : int;
  sv_on_chunk : dom:int -> attempt:int -> chunk_ref -> bool;
  sv_backoff : attempt:int -> unit;
  sv_chunk_done : dom:int -> chunk_ref -> unit;
  sv_corrupt_log : dom:int -> chunk_ref -> bool;
  sv_steal_veto : dom:int -> bool;
  sv_tick : unit -> unit;
  sv_register_poison : (exn -> unit) -> unit;
  sv_event : dom:int -> kind:string -> detail:string -> unit;
}

let decision_to_string = function
  | Distributed -> "distributed"
  | Replicated why -> "replicated (" ^ why ^ ")"

let available_domains () = Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* Static analysis                                                     *)
(* ------------------------------------------------------------------ *)

let rec iter_stmts f (s : Ast.stmt) =
  f s;
  match s.Ast.skind with
  | Ast.Sseq l -> List.iter (iter_stmts f) l
  | Ast.Sif (_, a, b) ->
    iter_stmts f a;
    iter_stmts f b
  | Ast.Swhile (_, _, b) -> iter_stmts f b
  | Ast.Sfor (_, i, _, st, b) ->
    iter_stmts f i;
    iter_stmts f st;
    iter_stmts f b
  | _ -> ()

(* Access ids participating in basic induction updates [x = x +/- c],
   anywhere in the program: the store, and the load of [x] on the
   right-hand side. Such loads are benign wherever they occur — they
   read only the value the same update wrote. *)
let induction_update_aids (prog : Ast.program) =
  let stores = Hashtbl.create 32 and loads = Hashtbl.create 32 in
  let scan s =
    match s.Ast.skind with
    | Ast.Sassign (aid, Ast.Var x, e) -> (
      match e with
      | Ast.Binop
          ( (Ast.Add | Ast.Sub),
            Ast.Lval (la, Ast.Var y),
            Ast.Const (Ast.Cint _) )
        when String.equal x y ->
        Hashtbl.replace stores aid ();
        Hashtbl.replace loads la ()
      | Ast.Binop
          (Ast.Add, Ast.Const (Ast.Cint _), Ast.Lval (la, Ast.Var y))
        when String.equal x y ->
        Hashtbl.replace stores aid ();
        Hashtbl.replace loads la ()
      | _ -> ())
    | _ -> ()
  in
  List.iter
    (function Ast.Gfun f -> iter_stmts scan f.Ast.fbody | _ -> ())
    prog.Ast.globals;
  (stores, loads)

(* Break statements binding to this loop (not to an inner one). *)
let rec has_toplevel_break (s : Ast.stmt) =
  match s.Ast.skind with
  | Ast.Sbreak -> true
  | Ast.Sseq l -> List.exists has_toplevel_break l
  | Ast.Sif (_, a, b) -> has_toplevel_break a || has_toplevel_break b
  | Ast.Swhile _ | Ast.Sfor _ -> false
  | _ -> false

let has_return (s : Ast.stmt) =
  let found = ref false in
  iter_stmts
    (fun s -> match s.Ast.skind with Ast.Sreturn _ -> found := true | _ -> ())
    s;
  !found

type loop_static = {
  ls_step_aids : (Ast.aid, unit) Hashtbl.t;
  ls_early_exit : string option;  (** why the loop may exit early *)
}

let loop_static_of prog lid : loop_static =
  let step_aids = Hashtbl.create 8 in
  let early = ref None in
  (match Visit.find_loop_fun prog lid with
  | None -> ()
  | Some (_, loop) ->
    let step, body =
      match loop.Ast.skind with
      | Ast.Sfor (_, _, _, step, body) -> (step, body)
      | Ast.Swhile (_, _, body) -> (Ast.skip, body)
      | _ -> (Ast.skip, Ast.skip)
    in
    List.iter
      (fun a -> Hashtbl.replace step_aids a.Visit.acc_aid ())
      (Visit.accesses_of_stmt step);
    if has_toplevel_break body then early := Some "the loop body may break";
    if has_return body then
      early := Some "the loop body may return from the function");
  { ls_step_aids = step_aids; ls_early_exit = !early }

(* ------------------------------------------------------------------ *)
(* Distribution-safety pre-pass                                        *)
(* ------------------------------------------------------------------ *)

type inv_plan = {
  ip_trip : int;
  ip_deltas : (int * int) array;
      (** (addr, size) of body-updated basic induction variables,
          merged at loop exit as pre + sum of per-domain deltas *)
}

type prepass = {
  pp_decisions : (Ast.lid, decision) Hashtbl.t;
  pp_invs : (Ast.lid * int, inv_plan) Hashtbl.t;
  pp_inv_count : (Ast.lid, int) Hashtbl.t;
  pp_iters : (Ast.lid, int) Hashtbl.t;
}

type pre_active = {
  pa_lid : Ast.lid;
  pa_inv : int;
  mutable pa_iter : int;
  pa_shadow : (int, int) Hashtbl.t;  (** 8-byte granule -> last writer *)
  pa_body_written : (int, unit) Hashtbl.t;  (** granules stored by the body *)
  pa_stepv : (int, unit) Hashtbl.t;  (** induction vars advanced in the step *)
  pa_bodyv : (int, int) Hashtbl.t;  (** induction vars advanced in the body *)
  pa_otherload : (int, unit) Hashtbl.t;
      (** induction-verdict loads outside their own update *)
  pa_rand0 : int64;
}

let prepass ~(prog : Ast.program) ~(plan : Expand.Plan.t)
    ~(lids : Ast.lid list) ~(domains : int) : prepass =
  let decisions = Hashtbl.create 8 in
  let invs = Hashtbl.create 16 in
  let inv_count = Hashtbl.create 8 in
  let iters = Hashtbl.create 8 in
  let statics = Hashtbl.create 8 in
  let upd_stores, upd_loads = induction_update_aids prog in
  let demote lid why =
    match Hashtbl.find_opt decisions lid with
    | Some Distributed -> Hashtbl.replace decisions lid (Replicated why)
    | _ -> ()
  in
  List.iter
    (fun lid ->
      Hashtbl.replace decisions lid Distributed;
      Hashtbl.replace inv_count lid 0;
      Hashtbl.replace iters lid 0;
      let ls = loop_static_of prog lid in
      Hashtbl.replace statics lid ls;
      match ls.ls_early_exit with
      | Some why -> demote lid why
      | None -> ())
    lids;
  let m = Interp.Machine.load prog in
  let st = m.Interp.Machine.st in
  Interp.Machine.set_global_int st Expand.Names.nthreads domains;
  let active : pre_active option ref = ref None in
  let live pa =
    match Hashtbl.find_opt decisions pa.pa_lid with
    | Some Distributed -> true
    | _ -> false
  in
  let on_store pa ~is_step addr size =
    let g0 = addr lsr 3 and g1 = (addr + size - 1) lsr 3 in
    for g = g0 to g1 do
      Hashtbl.replace pa.pa_shadow g pa.pa_iter;
      if not is_step then Hashtbl.replace pa.pa_body_written g ()
    done
  in
  let on_load pa ~is_step addr size =
    let g0 = addr lsr 3 and g1 = (addr + size - 1) lsr 3 in
    for g = g0 to g1 do
      (match Hashtbl.find_opt pa.pa_shadow g with
      | Some j when j <> pa.pa_iter ->
        demote pa.pa_lid "loop-carried flow dependence"
      | _ -> ());
      (* the step runs on every machine, so it must not read values
         produced by bodies that machine did not execute *)
      if is_step && Hashtbl.mem pa.pa_body_written g then
        demote pa.pa_lid "the step reads data written by the loop body"
    done
  in
  st.Interp.Machine.observer <-
    Some
      (fun aid kind addr size ->
        match !active with
        | Some pa when live pa ->
          if
            addr >= st.Interp.Machine.stack_base
            && addr < st.Interp.Machine.stack_limit
          then ()
          else begin
            let ls = Hashtbl.find statics pa.pa_lid in
            let is_step = Hashtbl.mem ls.ls_step_aids aid in
            match Expand.Plan.verdict plan aid with
            | Privatize.Classify.Induction -> (
              match kind with
              | Visit.Store ->
                if is_step then Hashtbl.replace pa.pa_stepv addr ()
                else if Hashtbl.mem upd_stores aid then
                  Hashtbl.replace pa.pa_bodyv addr size
                else
                  demote pa.pa_lid
                    "induction store outside the x = x +/- c shape"
              | Visit.Load ->
                if Hashtbl.mem upd_loads aid then ()
                else Hashtbl.replace pa.pa_otherload addr ())
            | _ -> (
              match kind with
              | Visit.Store -> on_store pa ~is_step addr size
              | Visit.Load -> on_load pa ~is_step addr size)
          end
        | _ -> ());
  st.Interp.Machine.bulk_hook <-
    Some
      (fun dst src len ->
        match !active with
        | Some pa when live pa && len > 0 ->
          let stacky a =
            a >= st.Interp.Machine.stack_base
            && a < st.Interp.Machine.stack_limit
          in
          (match src with
          | Some s when not (stacky s) -> on_load pa ~is_step:false s len
          | _ -> ());
          if not (stacky dst) then on_store pa ~is_step:false dst len
        | _ -> ());
  st.Interp.Machine.alloc_hook <-
    Some
      (fun _ _ _ ->
        match !active with
        | Some pa -> demote pa.pa_lid "allocates inside the loop body"
        | None -> ());
  st.Interp.Machine.free_hook <-
    Some
      (fun _ _ ->
        match !active with
        | Some pa -> demote pa.pa_lid "frees inside the loop body"
        | None -> ());
  st.Interp.Machine.loop_hook <-
    Some
      (fun lid ev ->
        if Hashtbl.mem decisions lid then
          match ev with
          | Interp.Machine.Enter -> (
            match !active with
            | Some _ -> demote lid "nested inside another parallelized loop"
            | None ->
              let inv = Hashtbl.find inv_count lid in
              active :=
                Some
                  {
                    pa_lid = lid;
                    pa_inv = inv;
                    pa_iter = 0;
                    pa_shadow = Hashtbl.create 256;
                    pa_body_written = Hashtbl.create 256;
                    pa_stepv = Hashtbl.create 4;
                    pa_bodyv = Hashtbl.create 4;
                    pa_otherload = Hashtbl.create 4;
                    pa_rand0 = st.Interp.Machine.rand_state;
                  })
          | Interp.Machine.Iter i -> (
            match !active with
            | Some pa when pa.pa_lid = lid -> pa.pa_iter <- i
            | _ -> ())
          | Interp.Machine.Exit -> (
            match !active with
            | Some pa when pa.pa_lid = lid ->
              if live pa then begin
                if st.Interp.Machine.rand_state <> pa.pa_rand0 then
                  demote lid "rand() advances inside the loop";
                Hashtbl.iter
                  (fun addr _ ->
                    if Hashtbl.mem pa.pa_bodyv addr then
                      demote lid
                        "induction variable updated in both body and step")
                  pa.pa_stepv;
                Hashtbl.iter
                  (fun addr _ ->
                    if Hashtbl.mem pa.pa_bodyv addr then
                      demote lid "induction value read outside its own update")
                  pa.pa_otherload
              end;
              if live pa then begin
                let deltas =
                  Hashtbl.fold (fun a s acc -> (a, s) :: acc) pa.pa_bodyv []
                  |> List.sort compare |> Array.of_list
                in
                Hashtbl.replace invs (lid, pa.pa_inv)
                  { ip_trip = pa.pa_iter; ip_deltas = deltas }
              end;
              Hashtbl.replace inv_count lid (pa.pa_inv + 1);
              Hashtbl.replace iters lid
                (Hashtbl.find iters lid + pa.pa_iter);
              active := None
            | _ -> ()))
      ;
  (try ignore (Interp.Machine.run m)
   with Interp.Machine.Exit_program _ -> ());
  (match !active with
  | Some pa -> demote pa.pa_lid "the program exits inside the loop"
  | None -> ());
  {
    pp_decisions = decisions;
    pp_invs = invs;
    pp_inv_count = inv_count;
    pp_iters = iters;
  }

(* ------------------------------------------------------------------ *)
(* Write logs                                                          *)
(* ------------------------------------------------------------------ *)

let log_store buf mem addr size =
  Buffer.add_int32_le buf (Int32.of_int addr);
  Buffer.add_int32_le buf (Int32.of_int size);
  Buffer.add_string buf (Interp.Memory.read_raw mem addr size)

let apply_log mem (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    let addr = Int32.to_int (String.get_int32_le s !pos) in
    let len = Int32.to_int (String.get_int32_le s (!pos + 4)) in
    Interp.Memory.write_raw mem addr (String.sub s (!pos + 8) len);
    pos := !pos + 8 + len
  done

(* ------------------------------------------------------------------ *)
(* Parallel run                                                        *)
(* ------------------------------------------------------------------ *)

(* Shared per-invocation state, preallocated before the domains spawn
   so the workers never allocate shared structures concurrently.
   Distinct array slots are written by distinct domains; the merge
   barrier publishes them. *)
type slot = {
  sl_key : Ast.lid * int;  (** (loop, invocation) this slot belongs to *)
  sl_trip : int;
  sl_chunk : int;
  sl_nchunks : int;
  sl_logs : string option array;  (** per-iteration write log *)
  sl_outs : string option array;  (** per-iteration output fragment *)
  sl_deltas : int64 array array;  (** per domain, per induction var *)
  sl_delta_addrs : (int * int) array;
  sl_sums : string array;
      (** supervised runs only: per-chunk digest of logs+outs, taken at
          chunk completion and re-checked before every merge replay *)
  sl_done : bool array;  (** supervised runs only: chunk executed *)
}

let chunk_ref_of (slot : slot) (c : int) : chunk_ref =
  {
    ck_lid = fst slot.sl_key;
    ck_inv = snd slot.sl_key;
    ck_chunk = c;
    ck_nchunks = slot.sl_nchunks;
  }

(* Digest of everything a chunk contributed: its iterations' write
   logs and output fragments. Recorded by the executing domain at
   chunk completion, re-derived by every domain before replaying the
   merge — any in-flight corruption of the shared arrays is caught
   before it can reach memory. *)
let chunk_digest (slot : slot) (c : int) : string =
  let k = slot.sl_chunk in
  let lo = c * k and hi = min slot.sl_trip ((c + 1) * k) in
  let b = Buffer.create 256 in
  for i = lo to hi - 1 do
    (match slot.sl_logs.(i) with
    | Some l ->
      Buffer.add_char b 'L';
      Buffer.add_string b l
    | None -> Buffer.add_char b '.');
    match slot.sl_outs.(i) with
    | Some o ->
      Buffer.add_char b 'O';
      Buffer.add_string b o
    | None -> Buffer.add_char b '.'
  done;
  Digest.string (Buffer.contents b)

(* Flip the last byte of the chunk's first recorded write log (or,
   failing that, output fragment) — the Writelog_corrupt fault.
   Returns false when the chunk recorded nothing corruptible. *)
let corrupt_chunk (slot : slot) (c : int) : bool =
  let k = slot.sl_chunk in
  let lo = c * k and hi = min slot.sl_trip ((c + 1) * k) in
  let flip (s : string) : string =
    let b = Bytes.of_string s in
    let j = Bytes.length b - 1 in
    Bytes.set b j (Char.chr (Char.code (Bytes.get b j) lxor 0xFF));
    Bytes.unsafe_to_string b
  in
  let rec go i =
    if i >= hi then false
    else
      match slot.sl_logs.(i) with
      | Some l when String.length l > 0 ->
        slot.sl_logs.(i) <- Some (flip l);
        true
      | _ -> (
        match slot.sl_outs.(i) with
        | Some o when String.length o > 0 ->
          slot.sl_outs.(i) <- Some (flip o);
          true
        | _ -> go (i + 1))
  in
  go lo

type dom_active = {
  da_slot : slot;
  mutable da_cur_hi : int;  (** exclusive end of executing chunk; -1 = none *)
  da_pending : (int, unit) Hashtbl.t;  (** stolen chunks awaiting arrival *)
  mutable da_iter : int;
  mutable da_logging : bool;
  da_log : Buffer.t;
  mutable da_out_start : int;
  da_enter_out : int;
  da_pre : int64 array;  (** induction pre-values at loop entry *)
  mutable da_chunk_t0 : int;  (** ns at chunk acquisition; -1 = none *)
}

(* Per-domain telemetry, buffered locally (the sink is a plain global
   and not domain-safe) and emitted by the main domain after join. *)
type dom_tel = {
  mutable spans : (string * string * int * int) list;  (** name/cat/t0/t1 ns *)
  mutable instants : (string * int) list;
}

let ceil_div a b = (a + b - 1) / b

let chunk_size ~override ~trip ~domains =
  match override with
  | Some k -> max 1 k
  | None -> max 1 (ceil_div trip (4 * domains))

let run ?domains ?chunk ?(force = false) ?sup ?trace (prog : Ast.program)
    (plan : Expand.Plan.t) (lids : Ast.lid list) : result =
  let requested =
    match domains with Some n -> max 1 n | None -> available_domains ()
  in
  let fallback =
    if requested = 1 then Some "one domain requested"
    else if available_domains () = 1 && not force then
      Some "only one core available (Domain.recommended_domain_count = 1)"
    else None
  in
  match fallback with
  | Some why ->
    (* Sequential fallback: one machine, one copy, no scheduler. *)
    let m = Interp.Machine.load prog in
    Interp.Machine.set_global_int m.Interp.Machine.st Expand.Names.nthreads 1;
    let t0 = Unix.gettimeofday () in
    let code = Interp.Machine.run m in
    let wall = (Unix.gettimeofday () -. t0) *. 1e9 in
    {
      dx_exit = code;
      dx_output = Interp.Machine.output m.Interp.Machine.st;
      dx_requested = requested;
      dx_domains = 1;
      dx_wall_ns = wall;
      dx_steals = 0;
      dx_steal_lost = 0;
      dx_chunks_run = [| 0 |];
      dx_merges = 0;
      dx_loops = [];
      dx_fallback = Some why;
      dx_machine = m;
    }
  | None ->
    let n = requested in
    let pp = prepass ~prog ~plan ~lids ~domains:n in
    (* Shared slots for every distributed invocation. *)
    let slots : (Ast.lid * int, slot) Hashtbl.t = Hashtbl.create 16 in
    let max_own = ref 1 in
    Hashtbl.iter
      (fun key ip ->
        let lid = fst key in
        match Hashtbl.find_opt pp.pp_decisions lid with
        | Some Distributed when ip.ip_trip > 0 ->
          let k = chunk_size ~override:chunk ~trip:ip.ip_trip ~domains:n in
          let nchunks = ceil_div ip.ip_trip k in
          max_own := max !max_own (ceil_div nchunks n);
          Hashtbl.replace slots key
            {
              sl_key = key;
              sl_trip = ip.ip_trip;
              sl_chunk = k;
              sl_nchunks = nchunks;
              sl_logs = Array.make ip.ip_trip None;
              sl_outs = Array.make ip.ip_trip None;
              sl_deltas =
                Array.init n (fun _ ->
                    Array.make (Array.length ip.ip_deltas) 0L);
              sl_delta_addrs = ip.ip_deltas;
              sl_sums = Array.make nchunks "";
              sl_done = Array.make nchunks false;
            }
        | _ -> ())
      pp.pp_invs;
    let deques =
      Array.init n (fun _ -> Deque.create ~capacity:(2 * !max_own) ())
    in
    let barrier = Barrier.create n in
    (match sup with
    | Some sv -> sv.sv_register_poison (fun e -> Barrier.poison barrier e)
    | None -> ());
    let steals = Array.make n 0 in
    let steal_lost = Array.make n 0 in
    let chunks_run = Array.make n 0 in
    let merges = Array.make n 0 in
    let tels = Array.init n (fun _ -> { spans = []; instants = [] }) in
    (* Machines must be loaded sequentially: [load] stamps fresh access
       ids into the (shared) program. *)
    let machines = Array.init n (fun _ -> Interp.Machine.load prog) in
    Array.iter
      (fun m ->
        Interp.Machine.set_global_int m.Interp.Machine.st
          Expand.Names.nthreads n)
      machines;
    (* One event ring per domain per attempt; the recorder outlives
       this run, so a supervised retry appends a fresh set and the
       failed attempt's trace survives into the report. *)
    let rings, attempt_idx =
      match trace with
      | Some tr ->
        let rs = Domtrace.begin_attempt tr ~domains:n in
        (Some rs, Domtrace.attempt_count tr - 1)
      | None -> (None, 0)
    in
    let gc_on =
      match trace with Some tr -> Domtrace.gc_sampling tr | None -> false
    in
    let t0 = Unix.gettimeofday () in
    let now_ns () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
    let body d =
      let m = machines.(d) in
      let st = m.Interp.Machine.st in
      let tel = tels.(d) in
      (* Ring emission: a handful of int stores into this domain's
         preallocated ring, nothing when tracing is off. Each event
         carries the machine's cycle counter as its virtual timestamp,
         so the critical-path profiler can weigh segments in
         deterministic interpreter cycles as well as host ns. *)
      let remit k ~a ~b ~c =
        match rings with
        | Some rs ->
          Ring.emit rs.(d) k ~ts:(now_ns ()) ~vt:st.Interp.Machine.cycles ~a
            ~b ~c ()
        | None -> ()
      in
      let gmin = ref 0 and gmaj = ref 0 and gwords = ref 0.0 in
      let gc_reset () =
        if gc_on then begin
          let q = Gc.quick_stat () in
          gmin := q.Gc.minor_collections;
          gmaj := q.Gc.major_collections;
          gwords := q.Gc.minor_words
        end
      in
      (* [Gc.quick_stat] delta since the previous chunk boundary. *)
      let gc_sample () =
        if gc_on then begin
          let q = Gc.quick_stat () in
          remit Ring.Gc_sample
            ~a:(q.Gc.minor_collections - !gmin)
            ~b:(q.Gc.major_collections - !gmaj)
            ~c:(int_of_float (q.Gc.minor_words -. !gwords));
          gmin := q.Gc.minor_collections;
          gmaj := q.Gc.major_collections;
          gwords := q.Gc.minor_words
        end
      in
      let inv_count : (Ast.lid, int) Hashtbl.t = Hashtbl.create 8 in
      let active : dom_active option ref = ref None in
      let finalize_iter da =
        da.da_logging <- false;
        if Buffer.length da.da_log > 0 then begin
          da.da_slot.sl_logs.(da.da_iter) <- Some (Buffer.contents da.da_log);
          Buffer.clear da.da_log
        end;
        let olen = Buffer.length st.Interp.Machine.out - da.da_out_start in
        if olen > 0 then
          da.da_slot.sl_outs.(da.da_iter) <-
            Some (Buffer.sub st.Interp.Machine.out da.da_out_start olen)
      in
      let try_steal da i =
        let k = da.da_slot.sl_chunk in
        let lost_here = ref 0 in
        (* A lost CAS means the element may still be there: retry the
           same victim a few times before moving on. Chunks can never
           be lost to contention — a chunk no thief takes is popped by
           its home domain at its boundary. *)
        let rec attempt victim tries =
          let s0 = now_ns () in
          let forced =
            match sup with Some sv -> sv.sv_steal_veto ~dom:d | None -> false
          in
          let r =
            if forced then Deque.Steal_lost
            else Deque.steal_if (fun c -> c * k > i) deques.(victim)
          in
          match r with
          | Deque.Stolen c ->
            Hashtbl.replace da.da_pending c ();
            steals.(d) <- steals.(d) + 1;
            tel.instants <- ("steal", now_ns ()) :: tel.instants;
            remit Ring.Steal_stolen ~a:victim ~b:c ~c:(now_ns () - s0);
            true
          | Deque.Steal_empty ->
            remit Ring.Steal_empty ~a:victim ~b:(-1) ~c:(now_ns () - s0);
            false
          | Deque.Steal_lost ->
            incr lost_here;
            steal_lost.(d) <- steal_lost.(d) + 1;
            remit Ring.Steal_lost ~a:victim ~b:(-1) ~c:(now_ns () - s0);
            if tries < 4 then attempt victim (tries + 1) else false
        in
        let rec go v =
          if v >= n then ()
          else if attempt ((d + v) mod n) 0 then ()
          else go (v + 1)
        in
        go 1;
        if !lost_here > 0 then
          match sup with
          | Some sv ->
            sv.sv_event ~dom:d ~kind:"steal-lost"
              ~detail:
                (Printf.sprintf "%d lost steal attempt(s) at iteration %d"
                   !lost_here i)
          | None -> ()
      in
      (* Supervised chunk acquisition: each attempt may be crashed by
         the fault plan; the chunk's work is discarded (its write log
         is empty at the boundary) and the acquisition retried after a
         deterministic backoff, up to the budget. *)
      let sup_acquire da c acquire =
        let ck = chunk_ref_of da.da_slot c in
        remit Ring.Chunk_claim ~a:ck.ck_lid ~b:ck.ck_inv ~c:ck.ck_chunk;
        let acquire () =
          remit Ring.Chunk_start ~a:ck.ck_lid ~b:ck.ck_inv ~c:ck.ck_chunk;
          acquire ()
        in
        match sup with
        | None -> acquire ()
        | Some sv ->
          let rec go attempt =
            if attempt > sv.sv_budget then begin
              sv.sv_event ~dom:d ~kind:"retry-exhausted"
                ~detail:
                  (Printf.sprintf
                     "chunk %d/%d of loop %d inv %d still failing after %d \
                      attempts"
                     ck.ck_chunk ck.ck_nchunks ck.ck_lid ck.ck_inv
                     sv.sv_budget);
              raise (Retry_exhausted ck)
            end
            else begin
              if attempt > 1 then
                remit Ring.Retry ~a:ck.ck_lid ~b:ck.ck_chunk ~c:attempt;
              (* the stall fault blocks inside [sv_on_chunk], so this
                 heartbeat is the last event before a stalled domain
                 goes quiet — the analyzer's claim gap starts here *)
              remit Ring.Heartbeat ~a:ck.ck_lid ~b:ck.ck_chunk ~c:attempt;
              if sv.sv_on_chunk ~dom:d ~attempt ck then acquire ()
              else begin
                let b0 = now_ns () in
                sv.sv_backoff ~attempt;
                remit Ring.Backoff ~a:attempt ~b:0 ~c:(now_ns () - b0);
                go (attempt + 1)
              end
            end
          in
          go 1
      in
      (* Chunk completed: digest its contribution so the merge can
         verify it, then let the fault plan corrupt it in flight (the
         corruption the verification exists to catch). *)
      let complete_chunk da =
        (let slot = da.da_slot in
         let c = (da.da_cur_hi - 1) / slot.sl_chunk in
         remit Ring.Chunk_finish ~a:(fst slot.sl_key) ~b:(snd slot.sl_key) ~c;
         gc_sample ());
        match sup with
        | None -> ()
        | Some sv ->
          let slot = da.da_slot in
          let c = (da.da_cur_hi - 1) / slot.sl_chunk in
          let ck = chunk_ref_of slot c in
          slot.sl_sums.(c) <- chunk_digest slot c;
          slot.sl_done.(c) <- true;
          sv.sv_chunk_done ~dom:d ck;
          if sv.sv_corrupt_log ~dom:d ck then
            if corrupt_chunk slot c then
              sv.sv_event ~dom:d ~kind:"corrupt"
                ~detail:
                  (Printf.sprintf
                     "flipped one byte of chunk %d of loop %d inv %d in the \
                      shared log"
                     c ck.ck_lid ck.ck_inv)
            else
              sv.sv_event ~dom:d ~kind:"corrupt-noop"
                ~detail:
                  (Printf.sprintf
                     "chunk %d of loop %d inv %d recorded no bytes to corrupt"
                     c ck.ck_lid ck.ck_inv)
      in
      st.Interp.Machine.observer <-
        Some
          (fun aid kind addr size ->
            match !active with
            | Some da when da.da_logging -> (
              match kind with
              | Visit.Store ->
                if
                  addr >= st.Interp.Machine.stack_base
                  && addr < st.Interp.Machine.stack_limit
                then ()
                else if
                  match Expand.Plan.verdict plan aid with
                  | Privatize.Classify.Induction -> true
                  | _ -> false
                then () (* delta-merged (body) or replicated (step) *)
                else log_store da.da_log st.Interp.Machine.mem addr size
              | Visit.Load -> ())
            | _ -> ());
      st.Interp.Machine.bulk_hook <-
        Some
          (fun dst _src len ->
            match !active with
            | Some da
              when da.da_logging && len > 0
                   && not
                        (dst >= st.Interp.Machine.stack_base
                        && dst < st.Interp.Machine.stack_limit) ->
              log_store da.da_log st.Interp.Machine.mem dst len
            | _ -> ());
      st.Interp.Machine.loop_hook <-
        Some
          (fun lid ev ->
            (* the supervisor's cancel point: every domain passes here
               on every loop event, so a watchdog abort is seen in
               bounded time (straight-line code between loop events is
               finite, and the interpreter's fuel bounds the rest) *)
            (match sup with Some sv -> sv.sv_tick () | None -> ());
            if Hashtbl.mem pp.pp_decisions lid then
              match ev with
              | Interp.Machine.Enter -> (
                match !active with
                | Some _ -> () (* nested: already demoted by the pre-pass *)
                | None -> (
                  let inv =
                    Option.value ~default:0 (Hashtbl.find_opt inv_count lid)
                  in
                  Hashtbl.replace inv_count lid (inv + 1);
                  match Hashtbl.find_opt slots (lid, inv) with
                  | None -> () (* replicated or zero-trip *)
                  | Some slot ->
                    Interp.Machine.set_global_int st Expand.Names.tid d;
                    (* decreasing push order: see the header comment *)
                    let c = ref (slot.sl_nchunks - 1) in
                    while !c >= 0 do
                      if !c mod n = d then Deque.push deques.(d) !c;
                      decr c
                    done;
                    let pre =
                      Array.map
                        (fun (addr, size) ->
                          Interp.Memory.load st.Interp.Machine.mem addr size)
                        slot.sl_delta_addrs
                    in
                    active :=
                      Some
                        {
                          da_slot = slot;
                          da_cur_hi = -1;
                          da_pending = Hashtbl.create 8;
                          da_iter = 0;
                          da_logging = false;
                          da_log = Buffer.create 4096;
                          da_out_start = 0;
                          da_enter_out =
                            Buffer.length st.Interp.Machine.out;
                          da_pre = pre;
                          da_chunk_t0 = -1;
                        }))
              | Interp.Machine.Iter i -> (
                match !active with
                | None -> ()
                | Some da ->
                  if da.da_logging then finalize_iter da;
                  let slot = da.da_slot in
                  let k = slot.sl_chunk in
                  if da.da_cur_hi >= 0 && i >= da.da_cur_hi then begin
                    complete_chunk da;
                    if da.da_chunk_t0 >= 0 then
                      tel.spans <-
                        ("chunk", "chunk", da.da_chunk_t0, now_ns ())
                        :: tel.spans;
                    da.da_chunk_t0 <- -1;
                    da.da_cur_hi <- -1
                  end;
                  if i < slot.sl_trip then begin
                    if da.da_cur_hi < 0 && i mod k = 0 then begin
                      let c = i / k in
                      let acquire () =
                        da.da_cur_hi <- min slot.sl_trip ((c + 1) * k);
                        da.da_chunk_t0 <- now_ns ();
                        chunks_run.(d) <- chunks_run.(d) + 1
                      in
                      if Hashtbl.mem da.da_pending c then begin
                        Hashtbl.remove da.da_pending c;
                        sup_acquire da c acquire
                      end
                      else if c mod n = d then begin
                        match Deque.pop deques.(d) with
                        | Some c' when c' = c -> sup_acquire da c acquire
                        | Some _ ->
                          raise
                            (Interp.Machine.Runtime_error
                               "domexec: deque order invariant violated")
                        | None -> () (* stolen from us *)
                      end
                      else if
                        Deque.is_empty deques.(d)
                        && Hashtbl.length da.da_pending = 0
                      then try_steal da i
                    end;
                    if da.da_cur_hi >= 0 then begin
                      da.da_iter <- i;
                      Buffer.clear da.da_log;
                      da.da_out_start <- Buffer.length st.Interp.Machine.out;
                      da.da_logging <- true
                    end
                    else st.Interp.Machine.iter_skip <- true
                  end)
              | Interp.Machine.Exit -> (
                match !active with
                | None -> ()
                | Some da ->
                  if da.da_logging then finalize_iter da;
                  (* normally closed by the trailing [Iter]; belt and
                     braces for loops that exit another way *)
                  if da.da_cur_hi >= 0 then begin
                    complete_chunk da;
                    da.da_cur_hi <- -1
                  end;
                  let slot = da.da_slot in
                  (* publish induction deltas, then synchronize *)
                  Array.iteri
                    (fun j (addr, size) ->
                      let cur =
                        Interp.Memory.load st.Interp.Machine.mem addr size
                      in
                      slot.sl_deltas.(d).(j) <- Int64.sub cur da.da_pre.(j))
                    slot.sl_delta_addrs;
                  Barrier.wait barrier;
                  (* Supervised runs verify every chunk before trusting
                     the shared arrays: each must have been completed,
                     and its bytes must still match the digest taken at
                     completion. Domain 0 alone re-derives the digests
                     (hashing every log on every domain would multiply
                     the fault-free overhead): on a mismatch it raises,
                     the attempt fails, and the supervisor's re-run
                     rebuilds every machine from scratch — so the other
                     domains replaying unverified bytes only ever
                     pollute state the re-run discards. *)
                  (match sup with
                  | None -> ()
                  | Some sv when d = 0 ->
                    for c = 0 to slot.sl_nchunks - 1 do
                      let ck = chunk_ref_of slot c in
                      if not slot.sl_done.(c) then raise (Chunk_lost ck);
                      if
                        not
                          (String.equal (chunk_digest slot c) slot.sl_sums.(c))
                      then begin
                        sv.sv_event ~dom:d ~kind:"corrupt-detected"
                          ~detail:
                            (Printf.sprintf
                               "chunk %d of loop %d inv %d fails its \
                                completion digest; discarding the run"
                               c ck.ck_lid ck.ck_inv);
                        raise (Log_corrupted ck)
                      end
                    done
                  | Some _ -> ());
                  (* merge: replay all write logs in iteration order,
                     fold induction deltas, splice output fragments *)
                  let tm0 = now_ns () in
                  remit Ring.Merge_begin ~a:(fst slot.sl_key)
                    ~b:(snd slot.sl_key) ~c:0;
                  let merge_bytes = ref 0 in
                  for i = 0 to slot.sl_trip - 1 do
                    match slot.sl_logs.(i) with
                    | Some log ->
                      merge_bytes := !merge_bytes + String.length log;
                      apply_log st.Interp.Machine.mem log
                    | None -> ()
                  done;
                  Array.iteri
                    (fun j (addr, size) ->
                      let sum = ref da.da_pre.(j) in
                      for t = 0 to n - 1 do
                        sum := Int64.add !sum slot.sl_deltas.(t).(j)
                      done;
                      Interp.Memory.store st.Interp.Machine.mem addr size !sum)
                    slot.sl_delta_addrs;
                  Buffer.truncate st.Interp.Machine.out da.da_enter_out;
                  Array.iter
                    (function
                      | Some frag ->
                        merge_bytes := !merge_bytes + String.length frag;
                        Buffer.add_string st.Interp.Machine.out frag
                      | None -> ())
                    slot.sl_outs;
                  merges.(d) <- merges.(d) + 1;
                  (* the byte count gives the profiler a deterministic
                     weight for the merge segment *)
                  remit Ring.Merge_end ~a:(fst slot.sl_key) ~b:(snd slot.sl_key)
                    ~c:!merge_bytes;
                  tel.spans <- ("merge", "merge", tm0, now_ns ()) :: tel.spans;
                  Interp.Machine.set_global_int st Expand.Names.tid 0;
                  active := None));
      let tr0 = now_ns () in
      tel.instants <- ("spawn", tr0) :: tel.instants;
      remit Ring.Run_begin ~a:d ~b:n ~c:attempt_idx;
      gc_reset ();
      let code = Interp.Machine.run m in
      tel.spans <- ("run", "domain", tr0, now_ns ()) :: tel.spans;
      remit Ring.Run_end ~a:d ~b:0 ~c:0;
      code
    in
    let guarded d () =
      try Ok (body d)
      with e ->
        (match rings with
        | Some rs ->
          (* the poison-pill (or any failure) observation: the last
             event of an aborted domain, which closes its open claim
             for the analyzer *)
          Ring.emit rs.(d) Ring.Poison ~ts:(now_ns ()) ~a:d ~b:0 ~c:0 ()
        | None -> ());
        Barrier.poison barrier e;
        Error e
    in
    let workers =
      Array.init (n - 1) (fun k -> Domain.spawn (guarded (k + 1)))
    in
    let r0 = guarded 0 () in
    let results =
      Array.append [| r0 |] (Array.map Domain.join workers)
    in
    let wall = (Unix.gettimeofday () -. t0) *. 1e9 in
    (* Close the attempt on the recorder (before any re-raise, so a
       poisoned attempt's GC accounting survives into the report): the
       runtime-events cursor is polled here, outside the timed window. *)
    (match trace with Some tr -> Domtrace.end_attempt tr | None -> ());
    (* Re-raise the first real failure (not barrier poisoning fallout). *)
    Array.iter
      (function
        | Error (Barrier.Poisoned _) -> () | Error e -> raise e | Ok _ -> ())
      results;
    Array.iter
      (function Error e -> raise e | Ok _ -> ())
      results;
    let codes =
      Array.map (function Ok c -> c | Error _ -> assert false) results
    in
    let outs =
      Array.map
        (fun m -> Interp.Machine.output m.Interp.Machine.st)
        machines
    in
    Array.iteri
      (fun d c ->
        if c <> codes.(0) || not (String.equal outs.(d) outs.(0)) then
          raise
            (Interp.Machine.Runtime_error
               (Printf.sprintf
                  "domexec: domain %d diverged from domain 0 (merge bug)" d)))
      codes;
    (* Emit buffered scheduler telemetry: one pseudo-process per domain. *)
    if Telemetry.Sink.enabled () then begin
      Array.iteri
        (fun d tel ->
          let tid = Telemetry.Chrome_trace.domain_tid_base + d in
          List.iter
            (fun (name, cat, a, b) ->
              Telemetry.Span.sim_begin ~cat ~tid ~ts:a name;
              Telemetry.Span.sim_end ~tid ~ts:b name)
            (List.rev tel.spans);
          List.iter
            (fun (name, ts) ->
              Telemetry.Span.sim_instant ~cat:"steal" ~tid ~ts name)
            (List.rev tel.instants))
        tels;
      Telemetry.Span.count "domexec.domains" n;
      Telemetry.Span.count "domexec.steals" (Array.fold_left ( + ) 0 steals);
      Telemetry.Span.count "domexec.steal_lost"
        (Array.fold_left ( + ) 0 steal_lost);
      Telemetry.Span.count "domexec.chunks"
        (Array.fold_left ( + ) 0 chunks_run);
      Telemetry.Span.count "domexec.merges" merges.(0)
    end;
    let loops =
      List.map
        (fun lid ->
          {
            lr_lid = lid;
            lr_decision =
              Option.value ~default:Distributed
                (Hashtbl.find_opt pp.pp_decisions lid);
            lr_invocations =
              Option.value ~default:0 (Hashtbl.find_opt pp.pp_inv_count lid);
            lr_iterations =
              Option.value ~default:0 (Hashtbl.find_opt pp.pp_iters lid);
          })
        lids
    in
    {
      dx_exit = codes.(0);
      dx_output = outs.(0);
      dx_requested = requested;
      dx_domains = n;
      dx_wall_ns = wall;
      dx_steals = Array.fold_left ( + ) 0 steals;
      dx_steal_lost = Array.fold_left ( + ) 0 steal_lost;
      dx_chunks_run = chunks_run;
      dx_merges = merges.(0);
      dx_loops = loops;
      dx_fallback = None;
      dx_machine = machines.(0);
    }
