(** See the interface. Three stages: parse each (attempt, domain)
    event stream into blocks of typed segments separated by barrier
    joins; replay the blocks through a virtual clock that advances
    domains independently and synchronizes them at each join; read
    the critical path off the replay (the per-phase leader's
    segments) under both the measured-ns and the virtual-time
    weighting. *)

(* Accounting classes. [Exec..Interp] are parse-time segment modes;
   [Gc] is carved out of Exec/Interp/Merge segments in proportion to
   the measured pause time; [Barrier] is derived slack, never a
   segment the replay advances through. *)
let cls_exec = 0
let cls_claim = 1
let cls_steal = 2
let cls_backoff = 3
let cls_merge = 4
let cls_gc = 5
let cls_interp = 6
let cls_barrier = 7
let ncls = 8

let cls_name = function
  | 0 -> "exec"
  | 1 -> "claim"
  | 2 -> "steal"
  | 3 -> "backoff"
  | 4 -> "merge"
  | 5 -> "gc"
  | 6 -> "interp"
  | 7 -> "barrier"
  | _ -> assert false

type seg = {
  sg_cls : int;
  sg_label : string;
  mutable sg_ns : float;  (** measured ns, GC portion removed *)
  mutable sg_gc_ns : float;  (** GC portion carved from this segment *)
  sg_vt : int;  (** deterministic weight, cycles *)
}

type block = {
  bk_segs : seg list;
  bk_join : (int * int) option;  (** (lid, invocation) barrier key *)
}

type profile = {
  p_domains : int;
  p_attempts : int;
  p_chains : block list array list;  (** per attempt, per domain *)
  p_schedule : string list array;  (** chunk labels per domain, in order *)
  p_joins : int;
  p_chunks : int;
  p_stolen : int;
  p_steal_empty : int;
  p_steal_lost : int;
  p_events : int;
  p_drops : int;
  p_merge_bytes : int;
  (* baseline replays, filled at analysis time *)
  p_wall_ns : float;
  p_barrier_ns : float;
  p_class_path_ns : float array;
  p_class_total_ns : float array;
  p_vt_wall : float;
  p_vt_total : float;
  p_class_path_vt : float array;
  p_class_total_vt : float array;
  p_top_chunks : (string * float) list;
}

(* ------------------------------------------------------------------ *)
(* Parsing: one (attempt, domain) event stream -> blocks of segments   *)
(* ------------------------------------------------------------------ *)

(* Merge segments advance no interpreter cycles (the replay writes
   memory directly), so their virtual weight is the replayed byte
   count scaled to word stores. *)
let merge_vt_of_bytes bytes = max 0 bytes / 8

type parse_stats = {
  mutable ps_chunks : int;
  mutable ps_stolen : int;
  mutable ps_steal_empty : int;
  mutable ps_steal_lost : int;
  mutable ps_merge_bytes : int;
}

let parse_stream (stats : parse_stats) (events : Ring.event list) :
    block list * string list =
  let blocks = ref [] in
  let segs = ref [] in
  let sched = ref [] in
  let carves = ref [] in
  let carved = ref 0 in
  let mode = ref cls_interp in
  let mode_label = ref "interp" in
  let prev_ts = ref None in
  let prev_vt = ref 0 in
  let push_block join =
    blocks := { bk_segs = List.rev !segs; bk_join = join } :: !blocks;
    segs := []
  in
  (* Close the gap since the previous event as a segment of the
     current mode, minus any steal/backoff time carved out of it.
     [cls < 0] discards the remainder (the pre-barrier wait, which
     the replay re-derives as slack). *)
  let close (e : Ring.event) ~cls ~label =
    (match !prev_ts with
    | None -> ()
    | Some t0 ->
      let gap = max 0 (e.Ring.ev_ts - t0) in
      let self = max 0 (gap - !carved) in
      let dvt = max 0 (e.ev_vt - !prev_vt) in
      List.iter
        (fun (c, ns) ->
          if ns > 0 then
            segs :=
              {
                sg_cls = c;
                sg_label = cls_name c;
                sg_ns = float_of_int ns;
                sg_gc_ns = 0.0;
                sg_vt = 0;
              }
              :: !segs)
        (List.rev !carves);
      if cls >= 0 && (self > 0 || dvt > 0) then
        segs :=
          {
            sg_cls = cls;
            sg_label = label;
            sg_ns = float_of_int self;
            sg_gc_ns = 0.0;
            sg_vt = dvt;
          }
          :: !segs);
    carves := [];
    carved := 0;
    prev_ts := Some e.ev_ts;
    prev_vt := e.ev_vt
  in
  let carve (e : Ring.event) c =
    let avail =
      match !prev_ts with
      | None -> 0
      | Some t0 -> max 0 (e.Ring.ev_ts - t0 - !carved)
    in
    let ns = min (max 0 e.ev_c) avail in
    carves := (c, ns) :: !carves;
    carved := !carved + ns
  in
  let chunk_label (e : Ring.event) =
    let base = Printf.sprintf "L%d#%d" e.ev_a e.ev_c in
    if e.ev_b > 0 then Printf.sprintf "%s@%d" base e.ev_b else base
  in
  List.iter
    (fun (e : Ring.event) ->
      match e.Ring.ev_kind with
      | Ring.Run_begin ->
        (* fresh attempt stream for this domain: drop any pre-spawn gap *)
        carves := [];
        carved := 0;
        prev_ts := Some e.ev_ts;
        prev_vt := e.ev_vt;
        mode := cls_interp;
        mode_label := "interp"
      | Ring.Run_end | Ring.Poison ->
        close e ~cls:!mode ~label:!mode_label;
        mode := cls_interp;
        mode_label := "interp"
      | Ring.Chunk_claim ->
        close e ~cls:!mode ~label:!mode_label;
        mode := cls_claim;
        mode_label := "claim"
      | Ring.Chunk_start ->
        close e ~cls:!mode ~label:!mode_label;
        mode := cls_exec;
        mode_label := chunk_label e;
        sched := !mode_label :: !sched
      | Ring.Chunk_finish ->
        close e ~cls:!mode ~label:!mode_label;
        stats.ps_chunks <- stats.ps_chunks + 1;
        mode := cls_interp;
        mode_label := "interp"
      | Ring.Merge_begin ->
        (* the wait before the merge barrier: discarded, re-derived *)
        close e ~cls:(-1) ~label:"barrier";
        push_block (Some (e.ev_a, e.ev_b));
        mode := cls_merge;
        mode_label := Printf.sprintf "merge L%d" e.ev_a
      | Ring.Merge_end ->
        close e ~cls:!mode ~label:!mode_label;
        (* override the merge segment's virtual weight with the
           deterministic byte count the event carries *)
        (match !segs with
        | s :: rest when s.sg_cls = cls_merge ->
          stats.ps_merge_bytes <- stats.ps_merge_bytes + max 0 e.ev_c;
          segs :=
            { s with sg_vt = s.sg_vt + merge_vt_of_bytes e.ev_c } :: rest
        | _ -> ());
        mode := cls_interp;
        mode_label := "interp"
      | Ring.Steal_stolen ->
        stats.ps_stolen <- stats.ps_stolen + 1;
        carve e cls_steal
      | Ring.Steal_empty ->
        stats.ps_steal_empty <- stats.ps_steal_empty + 1;
        carve e cls_steal
      | Ring.Steal_lost ->
        stats.ps_steal_lost <- stats.ps_steal_lost + 1;
        carve e cls_steal
      | Ring.Backoff -> carve e cls_backoff
      | Ring.Retry | Ring.Heartbeat | Ring.Gc_sample -> ())
    events;
  push_block None;
  (List.rev !blocks, List.rev !sched)

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

type sim = {
  sm_wall : float;
  sm_barrier : float;  (** derived slack at joins, summed over domains *)
  sm_class_path : float array;
  sm_class_total : float array;
}

(* [dur seg] returns the (self, gc) weights the replay advances by;
   self books under the segment's class, gc under [cls_gc]. *)
let simulate (chains : block list array list) ~doms
    ~(dur : seg -> float * float) : sim =
  let path = Array.make ncls 0.0 in
  let tot = Array.make ncls 0.0 in
  let barrier = ref 0.0 in
  let t_base = ref 0.0 in
  let run_block (b : block) =
    let contrib = Array.make ncls 0.0 in
    let d =
      List.fold_left
        (fun acc s ->
          let self, gc = dur s in
          contrib.(s.sg_cls) <- contrib.(s.sg_cls) +. self;
          contrib.(cls_gc) <- contrib.(cls_gc) +. gc;
          acc +. self +. gc)
        0.0 b.bk_segs
    in
    Array.iteri (fun i v -> tot.(i) <- tot.(i) +. v) contrib;
    (d, contrib)
  in
  List.iter
    (fun (att : block list array) ->
      let nd = Array.length att in
      let t = Array.make (max nd 1) !t_base in
      let cursors = Array.map (fun bl -> ref bl) att in
      let njoins =
        Array.fold_left
          (fun m bl ->
            max m
              (List.length (List.filter (fun b -> b.bk_join <> None) bl)))
          0 att
      in
      for _j = 1 to njoins do
        (* every participating domain advances through its next
           join-terminated block, then all wait for the slowest *)
        let contribs = Array.make (max nd 1) None in
        Array.iteri
          (fun d cur ->
            match !cur with
            | b :: rest when b.bk_join <> None ->
              let dns, contrib = run_block b in
              t.(d) <- t.(d) +. dns;
              contribs.(d) <- Some contrib;
              cur := rest
            | _ -> ())
          cursors;
        let tmax = ref !t_base and leader = ref (-1) in
        Array.iteri
          (fun d c ->
            if c <> None && (!leader < 0 || t.(d) > !tmax) then begin
              tmax := t.(d);
              leader := d
            end)
          contribs;
        if !leader >= 0 then begin
          (match contribs.(!leader) with
          | Some contrib ->
            Array.iteri (fun i v -> path.(i) <- path.(i) +. v) contrib
          | None -> ());
          Array.iteri
            (fun d c ->
              if c <> None then begin
                barrier := !barrier +. (!tmax -. t.(d));
                t.(d) <- !tmax
              end)
            contribs
        end
      done;
      (* tail blocks (after the last join, or the whole stream when
         the attempt never merged), then the attempt-end join *)
      let contribs = Array.make (max nd 1) None in
      Array.iteri
        (fun d cur ->
          let contrib = Array.make ncls 0.0 in
          let any = ref (nd > 0) in
          List.iter
            (fun b ->
              let dns, c = run_block b in
              t.(d) <- t.(d) +. dns;
              Array.iteri (fun i v -> contrib.(i) <- contrib.(i) +. v) c;
              any := true)
            !cur;
          cur := [];
          if !any then contribs.(d) <- Some contrib)
        cursors;
      let tmax = ref !t_base and leader = ref (-1) in
      Array.iteri
        (fun d c ->
          if c <> None && (!leader < 0 || t.(d) > !tmax) then begin
            tmax := t.(d);
            leader := d
          end)
        contribs;
      if !leader >= 0 then begin
        (match contribs.(!leader) with
        | Some contrib ->
          Array.iteri (fun i v -> path.(i) <- path.(i) +. v) contrib
        | None -> ());
        Array.iteri
          (fun d c -> if c <> None then barrier := !barrier +. (!tmax -. t.(d)))
          contribs;
        t_base := !tmax
      end;
      ignore doms)
    chains;
  tot.(cls_barrier) <- !barrier;
  {
    sm_wall = !t_base;
    sm_barrier = !barrier;
    sm_class_path = path;
    sm_class_total = tot;
  }

let dur_measured (s : seg) = (s.sg_ns, s.sg_gc_ns)
let dur_vt (s : seg) = (float_of_int s.sg_vt, 0.0)

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let analyze (t : Domtrace.t) : profile =
  let attempt_events = Domtrace.attempt_events t in
  let doms =
    List.fold_left (fun m evs -> max m (Array.length evs)) 0 attempt_events
  in
  let stats =
    {
      ps_chunks = 0;
      ps_stolen = 0;
      ps_steal_empty = 0;
      ps_steal_lost = 0;
      ps_merge_bytes = 0;
    }
  in
  let schedule = Array.make (max doms 1) [] in
  let chains =
    List.map
      (fun (evs : Ring.event list array) ->
        Array.mapi
          (fun d events ->
            let blocks, sched = parse_stream stats events in
            schedule.(d) <- schedule.(d) @ sched;
            blocks)
          evs)
      attempt_events
  in
  let joins =
    List.fold_left
      (fun acc att ->
        acc
        + Array.fold_left
            (fun m bl ->
              max m
                (List.length (List.filter (fun b -> b.bk_join <> None) bl)))
            0 att)
      0 chains
  in
  (* Carve the measured GC pause time out of the classes it actually
     interrupts (chunk execution, interpreter time, merge replay),
     per domain, in proportion to each segment's duration. The
     per-domain pause estimate comes from the sched analyzer's
     allocation-proportional attribution. *)
  let rep = Domtrace.Sched_report.analyze t in
  let gc_of_dom d =
    let rows = rep.Domtrace.Sched_report.sr_domains in
    if d < Array.length rows then
      float_of_int rows.(d).Domtrace.Sched_report.dr_gc_ns
    else 0.0
  in
  for d = 0 to doms - 1 do
    let carveable s =
      s.sg_cls = cls_exec || s.sg_cls = cls_interp || s.sg_cls = cls_merge
    in
    let total =
      List.fold_left
        (fun acc att ->
          if d < Array.length att then
            List.fold_left
              (fun acc b ->
                List.fold_left
                  (fun acc s -> if carveable s then acc +. s.sg_ns else acc)
                  acc b.bk_segs)
              acc att.(d)
          else acc)
        0.0 chains
    in
    let gc = gc_of_dom d in
    if total > 0.0 && gc > 0.0 then begin
      let f = min 1.0 (gc /. total) in
      List.iter
        (fun att ->
          if d < Array.length att then
            List.iter
              (fun b ->
                List.iter
                  (fun s ->
                    if carveable s then begin
                      s.sg_gc_ns <- s.sg_ns *. f;
                      s.sg_ns <- s.sg_ns *. (1.0 -. f)
                    end)
                  b.bk_segs)
              att.(d))
        chains
    end
  done;
  let measured = simulate chains ~doms ~dur:dur_measured in
  let vt = simulate chains ~doms ~dur:dur_vt in
  let top_chunks =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun att ->
        Array.iter
          (fun bl ->
            List.iter
              (fun b ->
                List.iter
                  (fun s ->
                    if s.sg_cls = cls_exec then
                      let prev =
                        Option.value ~default:0.0
                          (Hashtbl.find_opt tbl s.sg_label)
                      in
                      Hashtbl.replace tbl s.sg_label
                        (prev +. s.sg_ns +. s.sg_gc_ns))
                  b.bk_segs)
              bl)
          att)
      chains;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (la, a) (lb, b) ->
           match compare b a with 0 -> compare la lb | c -> c)
    |> List.filteri (fun i _ -> i < 5)
  in
  {
    p_domains = doms;
    p_attempts = List.length attempt_events;
    p_chains = chains;
    p_schedule = schedule;
    p_joins = joins;
    p_chunks = stats.ps_chunks;
    p_stolen = stats.ps_stolen;
    p_steal_empty = stats.ps_steal_empty;
    p_steal_lost = stats.ps_steal_lost;
    p_events = Domtrace.total_events t;
    p_drops = Domtrace.total_drops t;
    p_merge_bytes = stats.ps_merge_bytes;
    p_wall_ns = measured.sm_wall;
    p_barrier_ns = measured.sm_barrier;
    p_class_path_ns = measured.sm_class_path;
    p_class_total_ns = measured.sm_class_total;
    p_vt_wall = vt.sm_wall;
    p_vt_total =
      Array.fold_left ( +. ) 0.0 vt.sm_class_total -. vt.sm_class_total.(cls_barrier);
    p_class_path_vt = vt.sm_class_path;
    p_class_total_vt = vt.sm_class_total;
    p_top_chunks = top_chunks;
  }

let domains p = p.p_domains
let attempts p = p.p_attempts
let wall_ns p = p.p_wall_ns
let vt_critpath p = int_of_float p.p_vt_wall

let model_parallelism p =
  if p.p_vt_wall <= 0.0 then 1.0 else p.p_vt_total /. p.p_vt_wall

let model_speedup p ~seq_cycles =
  if p.p_vt_wall <= 0.0 then 1.0 else float_of_int seq_cycles /. p.p_vt_wall

let measured_speedup p ~seq_ns =
  if p.p_wall_ns <= 0.0 then 1.0 else seq_ns /. p.p_wall_ns

let dominant p =
  let best = ref cls_exec in
  Array.iteri
    (fun i v -> if i <> cls_barrier && v > p.p_class_path_ns.(!best) then best := i)
    p.p_class_path_ns;
  let len = Array.fold_left ( +. ) 0.0 p.p_class_path_ns in
  let share = if len <= 0.0 then 0.0 else p.p_class_path_ns.(!best) /. len in
  (cls_name !best, share)

(* ------------------------------------------------------------------ *)
(* What-if                                                             *)
(* ------------------------------------------------------------------ *)

type whatif_row = { wf_target : string; wf_speedups : (int * float) list }

let whatif ?(ks = [ 10; 25; 50; 100 ]) (p : profile) : whatif_row list =
  let base = p.p_wall_ns in
  let speedup_with dur =
    let s = simulate p.p_chains ~doms:p.p_domains ~dur in
    if s.sm_wall <= 0.0 then 1.0 else base /. s.sm_wall
  in
  let class_target c k =
    let f = 1.0 -. (float_of_int k /. 100.0) in
    if c = cls_gc then fun s -> (s.sg_ns, s.sg_gc_ns *. f)
    else fun s ->
      if s.sg_cls = c then (s.sg_ns *. f, s.sg_gc_ns) else dur_measured s
  in
  let chunk_target label k =
    let f = 1.0 -. (float_of_int k /. 100.0) in
    fun s ->
      if s.sg_cls = cls_exec && String.equal s.sg_label label then
        (s.sg_ns *. f, s.sg_gc_ns *. f)
      else dur_measured s
  in
  let classes =
    List.filter
      (fun c -> p.p_class_total_ns.(c) > 0.0)
      [ cls_exec; cls_interp; cls_merge; cls_gc; cls_claim; cls_steal;
        cls_backoff ]
  in
  let rows =
    List.map
      (fun c ->
        {
          wf_target = cls_name c;
          wf_speedups =
            List.map (fun k -> (k, speedup_with (class_target c k))) ks;
        })
      classes
  in
  match p.p_top_chunks with
  | (label, _) :: _ ->
    rows
    @ [
        {
          wf_target = label;
          wf_speedups =
            List.map (fun k -> (k, speedup_with (chunk_target label k))) ks;
        };
      ]
  | [] -> rows

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* alias: the renderers take a [whatif] boolean that shadows it *)
let whatif_rows = whatif

let to_json ?seq_ns ?seq_cycles ?(whatif = false) ?(extra = []) (p : profile)
    : Telemetry.Json.t =
  let module J = Telemetry.Json in
  let classes_json arr_path arr_tot =
    J.List
      (List.map
         (fun c ->
           J.Obj
             [
               ("class", J.Str (cls_name c));
               ("path", J.Int (int_of_float arr_path.(c)));
               ("total", J.Int (int_of_float arr_tot.(c)));
             ])
         [ cls_exec; cls_claim; cls_steal; cls_backoff; cls_merge; cls_gc;
           cls_interp; cls_barrier ])
  in
  let model =
    J.Obj
      ([
         ("unit", J.Str "interpreter cycles (merge: replayed bytes / 8)");
         ("critpath", J.Int (int_of_float p.p_vt_wall));
         ("total", J.Int (int_of_float p.p_vt_total));
         ("parallelism", J.Float (model_parallelism p));
         ("classes", classes_json p.p_class_path_vt p.p_class_total_vt);
       ]
      @
      match seq_cycles with
      | Some sc ->
        [
          ("seq_cycles", J.Int sc);
          ("speedup", J.Float (model_speedup p ~seq_cycles:sc));
        ]
      | None -> [])
  in
  let base =
    ("schema", J.Str "dsexpand-critpath/1")
    :: extra
    @ [
        ("domains", J.Int p.p_domains);
        ("attempts", J.Int p.p_attempts);
        ("joins", J.Int p.p_joins);
        ("chunks", J.Int p.p_chunks);
        ("stolen", J.Int p.p_stolen);
        ("steal_empty", J.Int p.p_steal_empty);
        ("steal_lost", J.Int p.p_steal_lost);
        ("events", J.Int p.p_events);
        ("drops", J.Int p.p_drops);
        ("merge_bytes", J.Int p.p_merge_bytes);
        ( "schedule",
          J.List
            (Array.to_list
               (Array.mapi
                  (fun d chunks ->
                    J.Obj
                      [
                        ("domain", J.Int d);
                        ( "chunks",
                          J.List (List.map (fun l -> J.Str l) chunks) );
                      ])
                  p.p_schedule)) );
        ("model", model);
      ]
  in
  if not whatif then J.Obj base
  else begin
    let dom_cls, dom_share = dominant p in
    let measured =
      J.Obj
        ([
           ("wall_ns", J.Int (int_of_float p.p_wall_ns));
           ("barrier_ns", J.Int (int_of_float p.p_barrier_ns));
           ("classes", classes_json p.p_class_path_ns p.p_class_total_ns);
           ("dominant", J.Str dom_cls);
           ("dominant_share", J.Float dom_share);
           ( "top_chunks",
             J.List
               (List.map
                  (fun (l, ns) ->
                    J.Obj
                      [ ("chunk", J.Str l); ("ns", J.Int (int_of_float ns)) ])
                  p.p_top_chunks) );
         ]
        @ (match seq_ns with
          | Some sn ->
            [
              ("seq_ns", J.Int (int_of_float sn));
              ("speedup", J.Float (measured_speedup p ~seq_ns:sn));
            ]
          | None -> [])
        @
        match (seq_ns, seq_cycles) with
        | Some sn, Some sc when sc > 0 && p.p_class_total_vt.(cls_exec) > 0.0
          ->
          (* how much slower a parallel-run cycle is than a
             sequential one: host-level overhead (write logging,
             observer hooks, allocation pressure) the cycle model
             does not see *)
          let par_nspc =
            (p.p_class_total_ns.(cls_exec) +. p.p_class_total_ns.(cls_gc))
            /. p.p_class_total_vt.(cls_exec)
          in
          let seq_nspc = sn /. float_of_int sc in
          [
            ( "exec_inflation",
              J.Obj
                [
                  ("par_ns_per_cycle", J.Float par_nspc);
                  ("seq_ns_per_cycle", J.Float seq_nspc);
                  ( "ratio",
                    J.Float (if seq_nspc > 0.0 then par_nspc /. seq_nspc else 0.0)
                  );
                ] );
          ]
        | _ -> [])
    in
    let wf =
      J.List
        (List.map
           (fun r ->
             J.Obj
               [
                 ("target", J.Str r.wf_target);
                 ( "speedup",
                   J.Obj
                     (List.map
                        (fun (k, s) -> (string_of_int k, J.Float s))
                        r.wf_speedups) );
               ])
           (whatif_rows p))
    in
    J.Obj (base @ [ ("measured", measured); ("whatif", wf) ])
  end

let to_table ?seq_ns ?seq_cycles ?(whatif = false) (p : profile) : string =
  let b = Buffer.create 2048 in
  let pc x total = if total <= 0.0 then 0.0 else 100.0 *. x /. total in
  Buffer.add_string b
    (Printf.sprintf
       "critical path: %d domain(s), %d attempt(s), %d join(s), %d chunk(s), \
        %d event(s)%s\n"
       p.p_domains p.p_attempts p.p_joins p.p_chunks p.p_events
       (if p.p_drops > 0 then Printf.sprintf ", %d drop(s)" p.p_drops else ""));
  let path_vt_len = Array.fold_left ( +. ) 0.0 p.p_class_path_vt in
  Buffer.add_string b
    (Printf.sprintf
       "model (cycles): critpath=%.0f total=%.0f parallelism=%.2f%s\n"
       p.p_vt_wall p.p_vt_total (model_parallelism p)
       (match seq_cycles with
       | Some sc ->
         Printf.sprintf " model-speedup=%.2fx" (model_speedup p ~seq_cycles:sc)
       | None -> ""));
  Buffer.add_string b
    (Printf.sprintf "%-9s %14s %7s %14s\n" "class" "path-cycles" "share"
       "total-cycles");
  List.iter
    (fun c ->
      if p.p_class_total_vt.(c) > 0.0 || p.p_class_path_vt.(c) > 0.0 then
        Buffer.add_string b
          (Printf.sprintf "%-9s %14.0f %6.1f%% %14.0f\n" (cls_name c)
             p.p_class_path_vt.(c)
             (pc p.p_class_path_vt.(c) path_vt_len)
             p.p_class_total_vt.(c)))
    [ cls_exec; cls_claim; cls_steal; cls_backoff; cls_merge; cls_gc;
      cls_interp; cls_barrier ];
  if whatif then begin
    let dom_cls, dom_share = dominant p in
    let path_len = Array.fold_left ( +. ) 0.0 p.p_class_path_ns in
    Buffer.add_string b
      (Printf.sprintf
         "measured: wall=%.2fms barrier=%.2fms dominant=%s (%.0f%% of path)%s\n"
         (p.p_wall_ns /. 1e6) (p.p_barrier_ns /. 1e6) dom_cls
         (100.0 *. dom_share)
         (match seq_ns with
         | Some sn ->
           Printf.sprintf " measured-speedup=%.2fx"
             (measured_speedup p ~seq_ns:sn)
         | None -> ""));
    Buffer.add_string b
      (Printf.sprintf "%-9s %11s %7s %11s\n" "class" "path-ms" "share"
         "total-ms");
    List.iter
      (fun c ->
        if p.p_class_total_ns.(c) > 0.0 || p.p_class_path_ns.(c) > 0.0 then
          Buffer.add_string b
            (Printf.sprintf "%-9s %11.2f %6.1f%% %11.2f\n" (cls_name c)
               (p.p_class_path_ns.(c) /. 1e6)
               (pc p.p_class_path_ns.(c) path_len)
               (p.p_class_total_ns.(c) /. 1e6)))
      [ cls_exec; cls_claim; cls_steal; cls_backoff; cls_merge; cls_gc;
        cls_interp; cls_barrier ];
    (match (seq_ns, seq_cycles) with
    | Some sn, Some sc when sc > 0 && p.p_class_total_vt.(cls_exec) > 0.0 ->
      let par_nspc =
        (p.p_class_total_ns.(cls_exec) +. p.p_class_total_ns.(cls_gc))
        /. p.p_class_total_vt.(cls_exec)
      in
      let seq_nspc = sn /. float_of_int sc in
      Buffer.add_string b
        (Printf.sprintf
           "exec inflation: %.2f ns/cycle parallel vs %.2f ns/cycle \
            sequential (%.2fx)\n"
           par_nspc seq_nspc
           (if seq_nspc > 0.0 then par_nspc /. seq_nspc else 0.0))
    | _ -> ());
    let rows = whatif_rows p in
    (match rows with
    | [] -> ()
    | r0 :: _ ->
      Buffer.add_string b
        (Printf.sprintf "what-if (virtual speedup from shrinking by k%%)\n");
      Buffer.add_string b
        (Printf.sprintf "%-9s %s\n" "target"
           (String.concat " "
              (List.map (fun (k, _) -> Printf.sprintf "%7d%%" k) r0.wf_speedups)));
      List.iter
        (fun r ->
          Buffer.add_string b
            (Printf.sprintf "%-9s %s\n" r.wf_target
               (String.concat " "
                  (List.map
                     (fun (_, s) -> Printf.sprintf "%7.2fx" s)
                     r.wf_speedups))))
        rows)
  end;
  Buffer.contents b
