(** See the interface for the contract. Layout: one flat int array,
    six cells per slot (kind code, ts, vt, a, b, c). [head] is the
    count of events ever written, [tail] the count ever consumed (or
    dropped); both only grow, and [slot i = (i land mask) * 6].

    Ordering argument for the live-reader case: the writer fills a
    slot's cells strictly before the [Atomic.set] on [head] that
    publishes it, and the reader loads [head] before touching cells —
    OCaml atomics are sequentially consistent, so the publication
    edge holds. On overflow the writer first advances [tail] by CAS
    (claiming the victim slot) and only then overwrites it; a reader
    mid-copy of that slot loses the same CAS and discards its torn
    copy. The drop counter is writer-private and read after join. *)

type kind =
  | Run_begin
  | Run_end
  | Chunk_claim
  | Chunk_start
  | Chunk_finish
  | Steal_stolen
  | Steal_empty
  | Steal_lost
  | Retry
  | Backoff
  | Heartbeat
  | Poison
  | Gc_sample
  | Merge_begin
  | Merge_end

let kind_code = function
  | Run_begin -> 0
  | Run_end -> 1
  | Chunk_claim -> 2
  | Chunk_start -> 3
  | Chunk_finish -> 4
  | Steal_stolen -> 5
  | Steal_empty -> 6
  | Steal_lost -> 7
  | Retry -> 8
  | Backoff -> 9
  | Heartbeat -> 10
  | Poison -> 11
  | Gc_sample -> 12
  | Merge_begin -> 13
  | Merge_end -> 14

let kind_of_code = function
  | 0 -> Run_begin
  | 1 -> Run_end
  | 2 -> Chunk_claim
  | 3 -> Chunk_start
  | 4 -> Chunk_finish
  | 5 -> Steal_stolen
  | 6 -> Steal_empty
  | 7 -> Steal_lost
  | 8 -> Retry
  | 9 -> Backoff
  | 10 -> Heartbeat
  | 11 -> Poison
  | 12 -> Gc_sample
  | 13 -> Merge_begin
  | 14 -> Merge_end
  | c -> invalid_arg (Printf.sprintf "Ring.kind_of_code: %d" c)

let kind_name = function
  | Run_begin -> "run-begin"
  | Run_end -> "run-end"
  | Chunk_claim -> "chunk-claim"
  | Chunk_start -> "chunk-start"
  | Chunk_finish -> "chunk-finish"
  | Steal_stolen -> "steal"
  | Steal_empty -> "steal-empty"
  | Steal_lost -> "steal-lost"
  | Retry -> "retry"
  | Backoff -> "backoff"
  | Heartbeat -> "heartbeat"
  | Poison -> "poison"
  | Gc_sample -> "gc"
  | Merge_begin -> "merge-begin"
  | Merge_end -> "merge-end"

type event = {
  ev_kind : kind;
  ev_ts : int;
  ev_vt : int;
  ev_a : int;
  ev_b : int;
  ev_c : int;
}

type t = {
  rg_dom : int;
  data : int array;
  cap : int;
  mask : int;
  head : int Atomic.t;  (** events ever written *)
  tail : int Atomic.t;  (** events ever consumed or dropped *)
  mutable rg_drops : int;  (** writer-private *)
}

(* 16k slots = 0.79 MB per domain: two orders of magnitude above what
   a default-chunked run records, small enough that allocating rings
   per attempt adds no measurable GC debt to the traced run (the bench
   gate holds traced runs to ≤5% over untraced). *)
let default_capacity = 16384

let create ?(capacity = default_capacity) ~dom () =
  let capacity = max 1 capacity in
  let rec pow2 n = if n >= capacity then n else pow2 (2 * n) in
  let cap = pow2 1 in
  {
    rg_dom = dom;
    data = Array.make (cap * 6) 0;
    cap;
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    rg_drops = 0;
  }

let dom r = r.rg_dom
let capacity r = r.cap
let written r = Atomic.get r.head
let drops r = r.rg_drops
let length r = max 0 (Atomic.get r.head - Atomic.get r.tail)

let emit r k ~ts ?(vt = 0) ~a ~b ~c () =
  let h = Atomic.get r.head in
  (if h - Atomic.get r.tail >= r.cap then begin
     (* full: claim the oldest slot before overwriting it, so a live
        reader racing us fails its CAS and discards the torn copy *)
     let t = Atomic.get r.tail in
     if h - t >= r.cap && Atomic.compare_and_set r.tail t (t + 1) then
       r.rg_drops <- r.rg_drops + 1
   end);
  let i = (h land r.mask) * 6 in
  r.data.(i) <- kind_code k;
  r.data.(i + 1) <- ts;
  r.data.(i + 2) <- vt;
  r.data.(i + 3) <- a;
  r.data.(i + 4) <- b;
  r.data.(i + 5) <- c;
  Atomic.set r.head (h + 1)

let rec read r =
  let t = Atomic.get r.tail in
  if t >= Atomic.get r.head then None
  else begin
    let i = (t land r.mask) * 6 in
    let k = r.data.(i)
    and ts = r.data.(i + 1)
    and vt = r.data.(i + 2)
    and a = r.data.(i + 3)
    and b = r.data.(i + 4)
    and c = r.data.(i + 5) in
    if Atomic.compare_and_set r.tail t (t + 1) then
      Some
        {
          ev_kind = kind_of_code k;
          ev_ts = ts;
          ev_vt = vt;
          ev_a = a;
          ev_b = b;
          ev_c = c;
        }
    else read r (* the writer dropped this slot under us: skip ahead *)
  end

let drain r =
  let rec go acc = match read r with None -> List.rev acc | Some e -> go (e :: acc) in
  go []
