(** Fixed-capacity SPSC event ring, one per domain.

    The owning domain is the only writer; the merge side (domain 0,
    after [Domain.join]) is the only reader. Writes never block and
    never allocate: an event is five unboxed ints copied into a
    preallocated flat array, so tracing stays off the scheduler's
    critical path. When the ring is full the {e oldest} event is
    dropped (and counted) rather than stalling the writer — a trace
    with a truncated head and an honest drop counter beats a slow run.

    Concurrent draining is also safe (single reader racing the single
    writer): the reader claims the tail slot by CAS, so an event the
    writer is overwriting during an overflow is discarded, never
    observed torn. The post-join drain path needs none of this — the
    join is a full synchronization point — but the stress tests
    exercise the live-reader discipline. *)

type kind =
  | Run_begin  (** a=domain, b=domain count, c=attempt index *)
  | Run_end  (** a=domain *)
  | Chunk_claim  (** a=lid, b=invocation, c=chunk *)
  | Chunk_start  (** a=lid, b=invocation, c=chunk *)
  | Chunk_finish  (** a=lid, b=invocation, c=chunk *)
  | Steal_stolen  (** a=victim, b=chunk, c=elapsed ns *)
  | Steal_empty  (** a=victim, b=-1, c=elapsed ns *)
  | Steal_lost  (** a=victim, b=-1, c=elapsed ns *)
  | Retry  (** a=lid, b=chunk, c=acquisition attempt *)
  | Backoff  (** a=acquisition attempt, b=0, c=slept ns *)
  | Heartbeat  (** a=lid, b=chunk, c=acquisition attempt *)
  | Poison  (** poison-pill / abort observed while unwinding *)
  | Gc_sample
      (** quick_stat delta at a chunk boundary: a=minor collections,
          b=major collections, c=minor words allocated *)
  | Merge_begin  (** a=lid, b=invocation *)
  | Merge_end  (** a=lid, b=invocation, c=write-log + output bytes replayed *)

val kind_name : kind -> string

type event = {
  ev_kind : kind;
  ev_ts : int;  (** ns since the run's t0 *)
  ev_vt : int;
      (** virtual time: the writing domain's interpreter cycle counter
          at emission. Deterministic under a fixed schedule (it counts
          interpreted work, not host time), which is what lets the
          critical-path profiler export byte-identical artifacts while
          the host-clock [ev_ts] varies run to run. 0 when the emitter
          has no machine attached. *)
  ev_a : int;
  ev_b : int;
  ev_c : int;
}

type t

val default_capacity : int

(** [create ~dom ()] preallocates a ring of [capacity] slots (rounded
    up to a power of two; default {!default_capacity}) owned by domain
    [dom]. *)
val create : ?capacity:int -> dom:int -> unit -> t

val dom : t -> int

(** The actual (rounded) capacity. *)
val capacity : t -> int

(** Write one event. Writer-only; never blocks, never allocates.
    [vt] defaults to 0. *)
val emit : t -> kind -> ts:int -> ?vt:int -> a:int -> b:int -> c:int -> unit -> unit

(** Total events ever written (drops included). *)
val written : t -> int

(** Events overwritten before being read. *)
val drops : t -> int

(** Events currently buffered. *)
val length : t -> int

(** Consume the oldest event. Reader-only. *)
val read : t -> event option

(** Consume everything currently buffered, oldest first. *)
val drain : t -> event list
