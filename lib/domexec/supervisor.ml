(** See the interface for the recovery model. Implementation notes:

    - Fault budgets are cumulative across attempts: [domain-crash:5]
      with a retry budget of 3 exhausts attempt 1 (3 crashes) and is
      absorbed by attempt 2 (2 crashes, then success) — exactly the
      degradation the chaos tests pin down.
    - The targeted chunk executes on exactly one domain at a time and
      distributed invocations are serialized program-wide (every
      domain walks loops in program order with a barrier at each
      exit), so the per-fault counters see no real contention; the
      mutex is there for the watchdog and for safety, not hot.
    - The watchdog runs on a systhread of the supervisor's domain and
      polls at a quarter of the deadline; it only ever sets the abort
      pill, records the diagnostic, and poisons the barrier —
      cancellation itself happens inside the workers at their next
      loop event. A thread rather than a domain on purpose: an extra
      (mostly sleeping) domain still takes part in every
      stop-the-world minor collection and inflates the workers'
      critical path by double-digit percentages; a thread costs
      nothing while it sleeps. *)

open Minic

type outcome = Completed | Recovered | Aborted of string

type t = {
  sup_result : Exec.result option;
  sup_outcome : outcome;
  sup_attempts : int;
  sup_retries : int;
  sup_crashes : int;
  sup_stalls : int;
  sup_corruptions : int;
  sup_corruptions_detected : int;
  sup_watchdog_fires : int;
  sup_steal_lost : int;
  sup_events : Guard.Diag.sup_event list;
  sup_counters : Telemetry.Counters.snapshot;
}

let outcome_to_string = function
  | Completed -> "completed"
  | Recovered -> "recovered"
  | Aborted reason -> "aborted: " ^ reason

let summary (t : t) : string =
  Printf.sprintf
    "%s (attempts=%d retries=%d crashes=%d stalls=%d corruptions=%d/%d \
     watchdog=%d steal-lost=%d)"
    (outcome_to_string t.sup_outcome)
    t.sup_attempts t.sup_retries t.sup_crashes t.sup_stalls
    t.sup_corruptions_detected t.sup_corruptions t.sup_watchdog_fires
    t.sup_steal_lost

(* All supervisor statistics live in one [Telemetry.Counters]
   aggregator (keys below), guarded by the state mutex — the [t]
   record fields, campaign entries, and [--metrics] all read from this
   single source of truth. Fault budgets are the same counters: an
   injected crash/stall is consumed by bumping its stat, so budget and
   stat cannot drift apart (corruption is the exception: attempts that
   found nothing to corrupt still consume budget, hence the separate
   [corrupt_attempts] key). *)
let k_retries = "supervisor.retries"
let k_crashes = "supervisor.crashes"
let k_stalls = "supervisor.stalls"
let k_corruptions = "supervisor.corruptions"
let k_corruptions_detected = "supervisor.corruptions_detected"
let k_watchdog = "supervisor.watchdog_fires"
let k_corrupt_attempts = "supervisor.corrupt_attempts"

type state = {
  mu : Mutex.t;
  mutable attempt : int;
  mutable events : Guard.Diag.sup_event list;  (** newest first *)
  agg : Telemetry.Counters.t;
  steal_used : int Atomic.t;
}

let record st ~domain ~loop ~chunk ~kind ~detail =
  Mutex.lock st.mu;
  st.events <-
    {
      Guard.Diag.se_attempt = st.attempt;
      se_domain = domain;
      se_loop = loop;
      se_chunk = chunk;
      se_kind = kind;
      se_detail = detail;
    }
    :: st.events;
  Mutex.unlock st.mu

let bump st key =
  Mutex.lock st.mu;
  Telemetry.Counters.bump_counter st.agg key 1;
  Mutex.unlock st.mu

let count st key =
  Mutex.lock st.mu;
  let v = Telemetry.Counters.value st.agg key in
  Mutex.unlock st.mu;
  v

(* Consume one unit of a cumulative fault budget: true (and bumped)
   while fewer than [n] units are spent, false once exhausted. *)
let take_budget st key n =
  Mutex.lock st.mu;
  let used = Telemetry.Counters.value st.agg key in
  let ok = used < n in
  if ok then Telemetry.Counters.bump_counter st.agg key 1;
  Mutex.unlock st.mu;
  ok

let rec describe_exn = function
  | Exec.Supervised_abort reason -> reason
  | Exec.Retry_exhausted ck ->
    Printf.sprintf
      "retry budget exhausted acquiring chunk %d/%d of loop %d inv %d"
      ck.Exec.ck_chunk ck.Exec.ck_nchunks ck.Exec.ck_lid ck.Exec.ck_inv
  | Exec.Log_corrupted ck ->
    Printf.sprintf "write-log corruption detected on chunk %d of loop %d inv %d"
      ck.Exec.ck_chunk ck.Exec.ck_lid ck.Exec.ck_inv
  | Exec.Chunk_lost ck ->
    Printf.sprintf "chunk %d of loop %d inv %d was never executed"
      ck.Exec.ck_chunk ck.Exec.ck_lid ck.Exec.ck_inv
  | Barrier.Poisoned e -> describe_exn e
  | e -> Printexc.to_string e

let run ?domains ?chunk ?force ?(retry = 3) ?(watchdog_ms = 5000) ?fault ?trace
    (prog : Ast.program) (plan : Expand.Plan.t) (lids : Ast.lid list) : t =
  let retry = max 1 retry in
  let watchdog_ms = max 1 watchdog_ms in
  let requested =
    match domains with
    | Some n -> max 1 n
    | None -> Exec.available_domains ()
  in
  let st =
    {
      mu = Mutex.create ();
      attempt = 0;
      events = [];
      agg = Telemetry.Counters.create ();
      steal_used = Atomic.make 0;
    }
  in
  let fkind =
    match fault with
    | Some f when Faultinject.Fault.domain_level f ->
      Some f.Faultinject.Fault.kind
    | _ -> None
  in
  let targeted (ck : Exec.chunk_ref) =
    match fault with
    | Some f ->
      Faultinject.Fault.target_chunk f ~lid:ck.Exec.ck_lid ~inv:ck.Exec.ck_inv
        ~nchunks:ck.Exec.ck_nchunks
      = ck.Exec.ck_chunk
    | None -> false
  in
  (* The abort pill: [Some reason] cancels the attempt; workers see it
     at their next loop event, barrier waiters via the poison hook. *)
  let abort : string option Atomic.t = Atomic.make None in
  let check_abort () =
    match Atomic.get abort with
    | Some reason -> raise (Exec.Supervised_abort reason)
    | None -> ()
  in
  let poison : (exn -> unit) Atomic.t = Atomic.make (fun _ -> ()) in
  (* Per-domain heartbeat: gettimeofday stamped at chunk acquisition,
     -1 when the domain holds no chunk. *)
  let hb = Array.init requested (fun _ -> Atomic.make (-1.0)) in
  let sv =
    {
      Exec.sv_budget = retry;
      sv_on_chunk =
        (fun ~dom ~attempt ck ->
          check_abort ();
          Atomic.set hb.(dom) (Unix.gettimeofday ());
          if attempt > 1 then begin
            bump st k_retries;
            record st ~domain:dom ~loop:ck.Exec.ck_lid ~chunk:ck.Exec.ck_chunk
              ~kind:"retry"
              ~detail:(Printf.sprintf "acquisition attempt %d" attempt)
          end;
          (match fkind with
          | Some (Faultinject.Fault.Domain_stall n)
            when targeted ck && take_budget st k_stalls n ->
            record st ~domain:dom ~loop:ck.Exec.ck_lid ~chunk:ck.Exec.ck_chunk
              ~kind:"stall"
              ~detail:"injected stall: holding the chunk until the watchdog";
            let rec wait () =
              check_abort ();
              Unix.sleepf 0.002;
              wait ()
            in
            wait ()
          | _ -> ());
          match fkind with
          | Some (Faultinject.Fault.Domain_crash n)
            when targeted ck && take_budget st k_crashes n ->
            record st ~domain:dom ~loop:ck.Exec.ck_lid ~chunk:ck.Exec.ck_chunk
              ~kind:"crash"
              ~detail:
                (Printf.sprintf "injected crash on acquisition attempt %d"
                   attempt);
            false
          | _ -> true);
      sv_backoff =
        (fun ~attempt ->
          Unix.sleepf (min 0.016 (0.001 *. float_of_int (1 lsl (attempt - 1)))));
      sv_chunk_done = (fun ~dom _ck -> Atomic.set hb.(dom) (-1.0));
      sv_corrupt_log =
        (fun ~dom:_ ck ->
          match fkind with
          | Some (Faultinject.Fault.Writelog_corrupt n) when targeted ck ->
            take_budget st k_corrupt_attempts n
          | _ -> false);
      sv_steal_veto =
        (fun ~dom:_ ->
          match fkind with
          | Some (Faultinject.Fault.Steal_contention n) ->
            let rec take () =
              let used = Atomic.get st.steal_used in
              if used >= n then false
              else if Atomic.compare_and_set st.steal_used used (used + 1) then
                true
              else take ()
            in
            take ()
          | _ -> false);
      sv_tick = check_abort;
      sv_register_poison = (fun f -> Atomic.set poison f);
      sv_event =
        (fun ~dom ~kind ~detail ->
          (match kind with
          | "corrupt" -> bump st k_corruptions
          | "corrupt-detected" -> bump st k_corruptions_detected
          | _ -> ());
          record st ~domain:dom ~loop:(-1) ~chunk:(-1) ~kind ~detail);
    }
  in
  let watchdog stop () =
    let limit = float_of_int watchdog_ms /. 1000. in
    let tick = max 0.001 (limit /. 4.) in
    while not (Atomic.get stop) do
      Thread.delay tick;
      if (not (Atomic.get stop)) && Atomic.get abort = None then begin
        let now = Unix.gettimeofday () in
        Array.iteri
          (fun d a ->
            let t0 = Atomic.get a in
            if t0 >= 0. && now -. t0 > limit && Atomic.get abort = None then begin
              let reason =
                Printf.sprintf
                  "watchdog: domain %d held its chunk past %d ms; cancelling \
                   the attempt"
                  d watchdog_ms
              in
              Atomic.set abort (Some reason);
              bump st k_watchdog;
              record st ~domain:(-1) ~loop:(-1) ~chunk:(-1) ~kind:"watchdog"
                ~detail:reason;
              (Atomic.get poison) (Exec.Supervised_abort reason)
            end)
          hb
      end
    done
  in
  let rec attempt_loop k : Exec.result option * string option =
    st.attempt <- k;
    Atomic.set abort None;
    Array.iter (fun a -> Atomic.set a (-1.0)) hb;
    Atomic.set poison (fun _ -> ());
    let stop = Atomic.make false in
    let wd =
      if requested > 1 then Some (Thread.create (watchdog stop) ()) else None
    in
    let res =
      try
        Ok
          (Telemetry.Span.wall ~cat:"supervisor" "supervisor.attempt"
             (fun () ->
               Exec.run ?domains ?chunk ?force ~sup:sv ?trace prog plan lids))
      with e -> Error e
    in
    Atomic.set stop true;
    Option.iter Thread.join wd;
    match res with
    | Ok r -> (Some r, None)
    | Error e ->
      let why = describe_exn e in
      record st ~domain:(-1) ~loop:(-1) ~chunk:(-1) ~kind:"attempt-failed"
        ~detail:why;
      if k < retry then begin
        Unix.sleepf (min 0.016 (0.002 *. float_of_int k));
        attempt_loop (k + 1)
      end
      else (None, Some why)
  in
  let result, failure = attempt_loop 1 in
  let outcome =
    match (result, failure) with
    | None, Some why ->
      record st ~domain:(-1) ~loop:(-1) ~chunk:(-1) ~kind:"abort" ~detail:why;
      Aborted why
    | Some _, _ ->
      let dirty =
        st.attempt > 1
        || count st k_retries > 0
        || count st k_crashes > 0
        || count st k_stalls > 0
        || count st k_corruptions_detected > 0
        || count st k_watchdog > 0
      in
      if dirty then begin
        record st ~domain:(-1) ~loop:(-1) ~chunk:(-1) ~kind:"recovered"
          ~detail:
            (Printf.sprintf "clean output after %d attempt(s)" st.attempt);
        Recovered
      end
      else Completed
    | None, None -> assert false
  in
  let snap = Telemetry.Counters.snapshot st.agg in
  if Telemetry.Sink.enabled () then begin
    Telemetry.Span.count "supervisor.attempts" st.attempt;
    (* replicate the aggregator verbatim into the global sink, so
       [--metrics] reports exactly what the campaign entries report *)
    List.iter
      (fun (key, v) -> Telemetry.Span.count key v)
      snap.Telemetry.Counters.counters;
    Telemetry.Span.count "supervisor.steal_lost"
      (match result with Some r -> r.Exec.dx_steal_lost | None -> 0)
  end;
  {
    sup_result = result;
    sup_outcome = outcome;
    sup_attempts = st.attempt;
    sup_retries = count st k_retries;
    sup_crashes = count st k_crashes;
    sup_stalls = count st k_stalls;
    sup_corruptions = count st k_corruptions;
    sup_corruptions_detected = count st k_corruptions_detected;
    sup_watchdog_fires = count st k_watchdog;
    sup_steal_lost =
      (match result with Some r -> r.Exec.dx_steal_lost | None -> 0);
    sup_events = List.rev st.events;
    sup_counters = snap;
  }
