(** Chase–Lev work-stealing deque (SPMC): the owner pushes and pops at
    the bottom, thieves steal from the top with a CAS on [top].

    The buffer is a fixed-capacity ring. [top] only ever increases, so
    the CAS has no ABA problem; a slot is reused only after [capacity]
    further pushes, and the scheduler never holds more than one loop's
    chunks in flight, so a slot's value is published (by the [bottom]
    store) strictly before any thief can observe its index.

    Steal outcomes are typed: {!Steal_lost} (the CAS race was lost —
    retrying may succeed) is distinct from {!Steal_empty} (nothing
    eligible to take), so callers can account contention separately
    from exhaustion. *)

type 'a t

type 'a steal_result =
  | Stolen of 'a
  | Steal_empty  (** deque empty, or its top fails the predicate *)
  | Steal_lost
      (** another thief (or the owner's last-element pop) won the CAS;
          the element may still be there — retrying can succeed *)

(** [create ~capacity ()] rounds [capacity] up to a power of two. *)
val create : ?capacity:int -> unit -> 'a t

(** Owner only. @raise Invalid_argument when the deque is full. *)
val push : 'a t -> 'a -> unit

(** Owner only: take the most recently pushed remaining element. *)
val pop : 'a t -> 'a option

(** Any domain: take the oldest remaining element. A single CAS
    attempt; contention is reported as {!Steal_lost}, never retried
    internally. *)
val steal : 'a t -> 'a steal_result

(** [steal_if pred q] steals the top element only when it satisfies
    [pred]; a failing predicate leaves the deque untouched and reports
    {!Steal_empty}. A lost CAS race reports {!Steal_lost}. *)
val steal_if : ('a -> bool) -> 'a t -> 'a steal_result

(** Snapshot size ([bottom - top]); exact only in quiescence. *)
val size : 'a t -> int

val is_empty : 'a t -> bool
