(** Chase–Lev work-stealing deque (SPMC): the owner pushes and pops at
    the bottom, thieves steal from the top with a CAS on [top].

    The buffer is a fixed-capacity ring. [top] only ever increases, so
    the CAS has no ABA problem; a slot is reused only after [capacity]
    further pushes, and the scheduler never holds more than one loop's
    chunks in flight, so a slot's value is published (by the [bottom]
    store) strictly before any thief can observe its index. *)

type 'a t

(** [create ~capacity ()] rounds [capacity] up to a power of two. *)
val create : ?capacity:int -> unit -> 'a t

(** Owner only. @raise Invalid_argument when the deque is full. *)
val push : 'a t -> 'a -> unit

(** Owner only: take the most recently pushed remaining element. *)
val pop : 'a t -> 'a option

(** Any domain: take the oldest remaining element. Returns [None] when
    the deque is empty or the race for the element was lost. *)
val steal : 'a t -> 'a option

(** [steal_if pred q] steals the top element only when it satisfies
    [pred]; a failing predicate leaves the deque untouched. Retries
    internally when another thief wins the CAS first. *)
val steal_if : ('a -> bool) -> 'a t -> 'a option

(** Snapshot size ([bottom - top]); exact only in quiescence. *)
val size : 'a t -> int

val is_empty : 'a t -> bool
