(** Chase–Lev work-stealing deque. See the interface for the protocol
    summary. [top] and [bottom] are sequentially-consistent atomics
    (OCaml's only flavour), which subsumes the acquire/release fences
    of the original algorithm; the element array itself is plain —
    a slot is written by the owner strictly before the [bottom] store
    that publishes its index, and [top] never decreases, so no thief
    reads a slot concurrently with the write that fills it. *)

type 'a t = {
  buf : 'a option array;
  mask : int;
  top : int Atomic.t;  (** next slot to steal *)
  bottom : int Atomic.t;  (** next slot to push *)
}

type 'a steal_result = Stolen of 'a | Steal_empty | Steal_lost

let create ?(capacity = 256) () =
  let rec pow2 n = if n >= capacity then n else pow2 (2 * n) in
  let cap = pow2 1 in
  {
    buf = Array.make cap None;
    mask = cap - 1;
    top = Atomic.make 0;
    bottom = Atomic.make 0;
  }

let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)
let is_empty q = size q = 0

let push q x =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  if b - t >= Array.length q.buf then invalid_arg "Deque.push: full";
  q.buf.(b land q.mask) <- Some x;
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if t > b then begin
    (* already empty: undo the reservation *)
    Atomic.set q.bottom (b + 1);
    None
  end
  else if t = b then begin
    (* last element: race the thieves for it *)
    let won = Atomic.compare_and_set q.top t (t + 1) in
    Atomic.set q.bottom (b + 1);
    if won then q.buf.(b land q.mask) else None
  end
  else q.buf.(b land q.mask)

(* A steal is a single CAS attempt: a lost race is reported as
   Steal_lost rather than retried, so callers can count contention
   (and fault injection can force losses) without hiding it. *)
let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then Steal_empty
  else
    match q.buf.(t land q.mask) with
    | Some x ->
      if Atomic.compare_and_set q.top t (t + 1) then Stolen x else Steal_lost
    | None -> Steal_lost

let steal_if pred q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then Steal_empty
  else
    match q.buf.(t land q.mask) with
    | Some x when pred x ->
      if Atomic.compare_and_set q.top t (t + 1) then Stolen x else Steal_lost
    | Some _ -> Steal_empty
    | None -> Steal_lost
