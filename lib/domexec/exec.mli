(** Real parallel execution of expanded programs on OCaml 5 domains.

    The executor pins one interpreter instance per domain. Every
    machine runs the whole expanded program; for each {e distributed}
    parallel loop the iteration space is split into chunks, chunks are
    homed round-robin onto per-domain work-stealing deques, and each
    machine walks the loop's traversal (condition and step on every
    iteration) while executing bodies only for the chunks it acquired
    — its own, popped at their boundary, or chunks stolen from busier
    domains. Executed iterations record every non-stack store into a
    write log and their printed bytes into an output fragment; at loop
    exit a barrier is taken and every machine replays all logs in
    iteration order (last-writer-wins reproduces the sequential memory
    state byte for byte), merges basic induction variables by summing
    per-domain deltas, and splices the output fragments in iteration
    order. Machines therefore leave every loop in identical states,
    and the run's final output/memory is byte-identical to the
    sequential oracle.

    A distribution-safety pre-pass (one instrumented sequential run of
    the expanded program) demotes to {e replicated} — executed in full
    by every machine, which is trivially consistent — any loop with a
    loop-carried flow dependence, allocation, [rand] advancement,
    early exit, or an induction variable used outside its own update.
    Known blind spot: string reads by [strlen]/[puts]/[printf %s]
    bypass the access observer, so a distributed body that reads a
    string written by another iteration would not be demoted (no
    workload does this); the per-run contract check still fails loudly
    if it ever happens. *)

open Minic

type decision =
  | Distributed
  | Replicated of string  (** reason the loop runs on every machine *)

type loop_report = {
  lr_lid : Ast.lid;
  lr_decision : decision;
  lr_invocations : int;
  lr_iterations : int;  (** total iterations across invocations *)
}

type result = {
  dx_exit : int;
  dx_output : string;
  dx_requested : int;  (** domains asked for *)
  dx_domains : int;  (** domains actually used *)
  dx_wall_ns : float;  (** spawn-to-join (run only; loading excluded) *)
  dx_steals : int;
  dx_chunks_run : int array;  (** chunks executed, per domain *)
  dx_merges : int;  (** distributed invocations merged *)
  dx_loops : loop_report list;
  dx_fallback : string option;  (** reason when the run was sequential *)
  dx_machine : Interp.Machine.t;
      (** domain 0's machine after the run, for contract checking *)
}

val decision_to_string : decision -> string

(** [Domain.recommended_domain_count ()]. *)
val available_domains : unit -> int

(** Run an expanded program on real domains. [domains] defaults to
    {!available_domains}; when only one core is available the run
    falls back to sequential execution unless [force] is set (domains
    are correct on any core count — [force] is how tests exercise the
    parallel path on small machines). [chunk] overrides the default
    chunk size (trip count / (4 × domains)). [lids] are the analyzed
    parallel-loop candidates; [plan] supplies access verdicts.

    The caller is expected to validate [dx_output]/[dx_exit] and
    [dx_machine]'s final globals against a sequential oracle
    (e.g. {!Guard.Contract}). *)
val run :
  ?domains:int ->
  ?chunk:int ->
  ?force:bool ->
  Ast.program ->
  Expand.Plan.t ->
  Ast.lid list ->
  result
