(** Real parallel execution of expanded programs on OCaml 5 domains.

    The executor pins one interpreter instance per domain. Every
    machine runs the whole expanded program; for each {e distributed}
    parallel loop the iteration space is split into chunks, chunks are
    homed round-robin onto per-domain work-stealing deques, and each
    machine walks the loop's traversal (condition and step on every
    iteration) while executing bodies only for the chunks it acquired
    — its own, popped at their boundary, or chunks stolen from busier
    domains. Executed iterations record every non-stack store into a
    write log and their printed bytes into an output fragment; at loop
    exit a barrier is taken and every machine replays all logs in
    iteration order (last-writer-wins reproduces the sequential memory
    state byte for byte), merges basic induction variables by summing
    per-domain deltas, and splices the output fragments in iteration
    order. Machines therefore leave every loop in identical states,
    and the run's final output/memory is byte-identical to the
    sequential oracle.

    A distribution-safety pre-pass (one instrumented sequential run of
    the expanded program) demotes to {e replicated} — executed in full
    by every machine, which is trivially consistent — any loop with a
    loop-carried flow dependence, allocation, [rand] advancement,
    early exit, or an induction variable used outside its own update.
    Known blind spot: string reads by [strlen]/[puts]/[printf %s]
    bypass the access observer, so a distributed body that reads a
    string written by another iteration would not be demoted (no
    workload does this); the per-run contract check still fails loudly
    if it ever happens. *)

open Minic

type decision =
  | Distributed
  | Replicated of string  (** reason the loop runs on every machine *)

type loop_report = {
  lr_lid : Ast.lid;
  lr_decision : decision;
  lr_invocations : int;
  lr_iterations : int;  (** total iterations across invocations *)
}

type result = {
  dx_exit : int;
  dx_output : string;
  dx_requested : int;  (** domains asked for *)
  dx_domains : int;  (** domains actually used *)
  dx_wall_ns : float;  (** spawn-to-join (run only; loading excluded) *)
  dx_steals : int;
  dx_steal_lost : int;  (** steal CAS races lost (incl. injected) *)
  dx_chunks_run : int array;  (** chunks executed, per domain *)
  dx_merges : int;  (** distributed invocations merged *)
  dx_loops : loop_report list;
  dx_fallback : string option;  (** reason when the run was sequential *)
  dx_machine : Interp.Machine.t;
      (** domain 0's machine after the run, for contract checking *)
}

(** One chunk of one distributed-loop invocation — the executor's unit
    of idempotent recovery. *)
type chunk_ref = {
  ck_lid : Ast.lid;
  ck_inv : int;  (** invocation index of the loop *)
  ck_chunk : int;
  ck_nchunks : int;
}

(** Raised (on every domain) when the supervisor's watchdog cancels
    the run: the poison pill that drains the barrier instead of
    hanging. *)
exception Supervised_abort of string

(** A chunk's acquisition kept crashing past the retry budget. *)
exception Retry_exhausted of chunk_ref

(** Merge-time verification found a chunk whose write log / output
    fragment no longer matches the digest recorded at completion. *)
exception Log_corrupted of chunk_ref

(** Merge-time verification found a chunk nobody executed (scheduler
    invariant broken — never expected, checked anyway). *)
exception Chunk_lost of chunk_ref

(** Callbacks a supervisor installs into the executor. The executor
    stays policy-free: it reports chunk lifecycle events and obeys
    injected decisions; retry budgets, heartbeats, watchdogs and fault
    plans live behind these functions (see [Supervisor]).

    With [sup] absent the executor behaves exactly as before —
    no digests, no verification, no per-chunk bookkeeping — so
    unsupervised runs pay nothing. *)
type supervision = {
  sv_budget : int;
      (** acquisition attempts allowed per chunk before
          {!Retry_exhausted} *)
  sv_on_chunk : dom:int -> attempt:int -> chunk_ref -> bool;
      (** called before each acquisition attempt (stamps the
          heartbeat). [false] simulates a crash of this attempt: the
          chunk's work is discarded and the acquisition retried after
          {!supervision.sv_backoff}. An injected stall blocks inside
          this call until the watchdog aborts the run. *)
  sv_backoff : attempt:int -> unit;
      (** deterministic backoff between acquisition attempts *)
  sv_chunk_done : dom:int -> chunk_ref -> unit;
      (** chunk executed and digested; clears the heartbeat *)
  sv_corrupt_log : dom:int -> chunk_ref -> bool;
      (** [true] = corrupt this chunk's recorded write log (fault
          injection); flips one byte after the digest is taken, so
          merge-time verification must catch it *)
  sv_steal_veto : dom:int -> bool;
      (** [true] = force this steal attempt to report a lost CAS *)
  sv_tick : unit -> unit;
      (** called on every loop event of every domain: the cancel
          point. Raises {!Supervised_abort} once the watchdog fired. *)
  sv_register_poison : (exn -> unit) -> unit;
      (** gives the supervisor a hook that poisons the run's barrier,
          so a watchdog abort also frees domains blocked in a merge *)
  sv_event : dom:int -> kind:string -> detail:string -> unit;
      (** structured diagnostics only the executor can observe
          (actual corruption, lost steals, retry exhaustion) *)
}

val decision_to_string : decision -> string

(** [Domain.recommended_domain_count ()]. *)
val available_domains : unit -> int

(** Run an expanded program on real domains. [domains] defaults to
    {!available_domains}; when only one core is available the run
    falls back to sequential execution unless [force] is set (domains
    are correct on any core count — [force] is how tests exercise the
    parallel path on small machines). [chunk] overrides the default
    chunk size (trip count / (4 × domains)). [lids] are the analyzed
    parallel-loop candidates; [plan] supplies access verdicts.

    [trace] attaches a {!Domtrace} recorder: the run allocates one
    event {!Ring} per domain ({!Domtrace.begin_attempt}) and emits
    scheduler events — chunk claim/start/finish, typed steal results,
    retry/backoff/heartbeat, poison observation, GC deltas at chunk
    boundaries — into the owning domain's ring. With [trace] absent
    every emission site is a no-op; the sequential-fallback path
    records nothing.

    The caller is expected to validate [dx_output]/[dx_exit] and
    [dx_machine]'s final globals against a sequential oracle
    (e.g. {!Guard.Contract}). *)
val run :
  ?domains:int ->
  ?chunk:int ->
  ?force:bool ->
  ?sup:supervision ->
  ?trace:Domtrace.t ->
  Ast.program ->
  Expand.Plan.t ->
  Ast.lid list ->
  result
