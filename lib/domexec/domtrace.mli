(** Domain-level scheduler tracing: a recorder handed to {!Exec.run}
    (directly or through {!Supervisor.run}), which fills one {!Ring}
    per domain per attempt, plus the two consumers the rings exist
    for — a merged Chrome trace and a scheduler-health analyzer.

    The recorder outlives executor attempts on purpose: a supervised
    re-run appends a fresh set of rings, so the trace of a failed
    attempt (the interesting one) survives into the report, and a
    stalled domain's open chunk claim is visible next to the clean
    re-run that recovered from it.

    Merge determinism: {!to_chrome} re-times every event onto a
    per-domain logical tick line (one tick per event, in ring order)
    — no host-clock reading reaches the file — so two runs whose
    domains record the same event sequences export byte-identical
    traces. Scheduling races (who wins a steal) can of course differ
    between runs; under a race-free schedule, and in particular under
    a fixed [--seed] fault plan on a single-chunk loop, traces are
    byte-identical. The {!Sched_report} analyzer keeps the real
    nanosecond timestamps: utilization numbers measure the host, the
    trace's shape does not. *)

type t

(** [create ()] makes an empty recorder. [capacity] sizes each
    per-domain ring ({!Ring.default_capacity} by default); [gc]
    (default true) samples [Gc.quick_stat] deltas at chunk
    boundaries {e and} measures real GC pause time over each attempt
    through [Runtime_events] (turn off for byte-identical trace
    comparisons — GC scheduling is cross-domain and not
    deterministic). *)
val create : ?capacity:int -> ?gc:bool -> unit -> t

val gc_sampling : t -> bool

(** Called by {!Exec.run} once per parallel attempt: allocates one
    ring per domain and returns them, writer [d] = domain [d]. *)
val begin_attempt : t -> domains:int -> Ring.t array

(** Called by {!Exec.run} after the attempt's domains have joined:
    polls the runtime-events cursor and books the GC pause time that
    accrued since [begin_attempt] against the newest attempt. A no-op
    when [gc] is off or runtime events are unavailable. *)
val end_attempt : t -> unit

(** Attempts recorded so far, chronological; each is the per-domain
    ring array of one {!Exec.run}. *)
val attempts : t -> Ring.t array list

(** Per-attempt, per-domain event lists, chronological. Draining is
    cached, so this is safe to combine with {!to_chrome} and the
    analyzers over the same recorder. *)
val attempt_events : t -> Ring.event list array list

(** Per-attempt ring-overflow drop counts, chronological, indexed by
    domain. *)
val attempt_drops : t -> int array list

(** Measured GC/runtime pause ns per attempt (process-wide total —
    the runtime reports pauses per recycled runtime-domain slot, which
    cannot be mapped back to logical domains), chronological. *)
val attempt_gc_ns : t -> int list

val total_gc_ns : t -> int
val attempt_count : t -> int
val capacity : t -> int

(** Totals over every ring of every attempt. *)
val total_events : t -> int

val total_drops : t -> int

(** Merge the rings into a Chrome trace collector: one pseudo-process
    per domain (reusing {!Telemetry.Chrome_trace}'s domain pid
    mapping), each attempt wrapped in an ["attempt-k"] span, chunk
    claim/execution/merge as nested spans, steals/retries/backoff/
    heartbeats/GC samples as instants. B/E pairs are balanced by
    construction. *)
val to_chrome : t -> Telemetry.Chrome_trace.t

(** [to_chrome] rendered and written to [path] (one JSON object plus
    newline, like [--trace]). *)
val write_chrome : t -> string -> unit

(** The scheduler-health analyzer: where each domain's wall time went
    (chunk execution, claim gaps — injected stalls land here — steal
    probing, supervision backoff, merge replay, idle), steal success,
    load imbalance, straggler identification and GC activity. *)
module Sched_report : sig
  type dom_row = {
    dr_dom : int;
    dr_run_ns : int;  (** spawn-to-return, summed over attempts *)
    dr_busy_ns : int;  (** executing chunk iterations *)
    dr_claim_ns : int;
        (** chunk-claim to chunk-start gaps; an injected stall or a
            crash/retry storm shows up here *)
    dr_steal_ns : int;  (** probing other domains' deques *)
    dr_backoff_ns : int;  (** supervised acquisition backoff sleeps *)
    dr_merge_ns : int;  (** merge replay at loop exit *)
    dr_idle_ns : int;
        (** the rest: replicated loops, straight-line code, barrier
            waits *)
    dr_chunks : int;  (** chunks executed to completion *)
    dr_stolen : int;
    dr_steal_empty : int;
    dr_steal_lost : int;
    dr_retries : int;
    dr_poisoned : bool;  (** observed an abort/poison pill *)
    dr_gc_minor : int;  (** minor collections at chunk boundaries *)
    dr_gc_major : int;
    dr_gc_minor_words : int;
    dr_gc_dirty_chunks : int;  (** chunk boundaries with GC activity *)
    dr_gc_ns : int;
        (** this domain's estimated share of the measured GC pause
            time, attributed in proportion to its allocation volume *)
    dr_drops : int;  (** ring overflow drops for this domain *)
  }

  type report = {
    sr_domains : dom_row array;
    sr_attempts : int;
    sr_capacity : int;
    sr_events : int;
    sr_drops : int;
    sr_steal_attempts : int;
    sr_steal_success : float option;  (** None when no attempts *)
    sr_imbalance : float;
        (** load-imbalance coefficient: max/mean over per-domain
            (busy + claim) time; 1.0 = perfectly balanced *)
    sr_straggler : int option;
        (** the dominating domain, only when both warning thresholds
            are exceeded *)
    sr_gc_ns : int;
        (** measured GC/runtime pause time over all attempts
            (runtime-events begin/end spans, process-wide) *)
    sr_gc_share : float;
        (** [sr_gc_ns] as a fraction of summed per-domain run time,
            clamped to [0, 1]; 0 when GC measurement is off *)
    sr_warnings : string list;
  }

  (** A straggler is flagged when the imbalance coefficient exceeds
      [warn_ratio] {e and} the leader's excess over the mean exceeds
      [warn_floor_ns] (so microsecond-scale noise on tiny loops never
      trips the warning). *)
  val warn_ratio : float

  val warn_floor_ns : int

  (** Busy fraction of the domain's run time (0 when unmeasured). *)
  val utilization : dom_row -> float

  val analyze : t -> report

  (** Schema [dsexpand-domtrace/1]; [extra] fields (workload, domain
      count, ...) are prepended to the object. *)
  val to_json :
    ?extra:(string * Telemetry.Json.t) list -> report -> Telemetry.Json.t

  val to_table : report -> string
end
