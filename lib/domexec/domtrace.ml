(** See the interface. The recorder is a list of attempts, each a
    per-domain ring array; rings are drained exactly once (events are
    cached on the attempt) so the Chrome merge and the analyzer can
    both run over the same recording. *)

type attempt = {
  at_rings : Ring.t array;
  mutable at_events : Ring.event list array option;
      (** drained lazily, cached — [Ring.drain] consumes *)
  mutable at_gc_ns : int;
      (** total GC/runtime pause time measured over the attempt, summed
          across every runtime domain (see {!Gcstat}) *)
}

type t = {
  dt_capacity : int;
  dt_gc : bool;
  mutable dt_attempts : attempt list;  (** newest first *)
  mutable dt_gc_base : int;
      (** {!Gcstat.total} snapshot taken at [begin_attempt] *)
}

(* Real GC pause time via [Runtime_events]: the runtime posts
   begin/end pairs for every GC phase into per-domain rings that a
   self cursor can drain after the fact. Two facts shape this module:

   - the ring ids the callbacks see are the runtime's internal domain
     {e slots}, which are recycled across [Domain.spawn] generations
     and therefore cannot be mapped back to our logical domain index
     (measured empirically: a second generation of workers reuses
     slots 1..n-1 while [Domain.self] keeps counting up). So we only
     ever account a process-wide total and let the analyzer attribute
     it to logical domains proportionally to their allocation volume
     ([Gc_sample] minor words), which the rings do record per domain;
   - [Runtime_events.start] and the cursor are process-global and
     irrevocable, so they live in module state shared by every
     recorder, with per-attempt deltas taken by snapshotting the
     running total. Recorders never run concurrently (the executor is
     invoked sequentially per process), so the shared total is safe. *)
module Gcstat = struct
  (* nesting depth and outermost-begin timestamp per runtime ring id:
     GC phases nest (a minor inside a major slice), and only the
     outermost span is wall time spent in the runtime *)
  let depth : (int, int * int64) Hashtbl.t = Hashtbl.create 8
  let total_ns = ref 0
  let state = ref None
  let failed = ref false

  let runtime_begin ring ts _phase =
    let d, t0 = try Hashtbl.find depth ring with Not_found -> (0, 0L) in
    let t = Runtime_events.Timestamp.to_int64 ts in
    Hashtbl.replace depth ring (d + 1, if d = 0 then t else t0)

  let runtime_end ring ts _phase =
    match Hashtbl.find_opt depth ring with
    | None | Some (0, _) -> () (* begin lost to ring overflow: skip *)
    | Some (d, t0) ->
      let d = d - 1 in
      Hashtbl.replace depth ring (d, t0);
      if d = 0 then begin
        let t = Runtime_events.Timestamp.to_int64 ts in
        total_ns := !total_ns + max 0 (Int64.to_int (Int64.sub t t0))
      end

  let ensure () =
    match !state with
    | Some _ -> true
    | None ->
      if !failed then false
      else begin
        try
          Runtime_events.start ();
          let cursor = Runtime_events.create_cursor None in
          let cb =
            Runtime_events.Callbacks.create ~runtime_begin ~runtime_end ()
          in
          state := Some (cursor, cb);
          true
        with _ ->
          failed := true;
          false
      end

  let poll () =
    match !state with
    | Some (cursor, cb) -> (
      try ignore (Runtime_events.read_poll cursor cb None) with _ -> ())
    | None -> ()

  let total () = !total_ns
end

let create ?(capacity = Ring.default_capacity) ?(gc = true) () =
  { dt_capacity = capacity; dt_gc = gc; dt_attempts = []; dt_gc_base = 0 }

let gc_sampling t = t.dt_gc
let capacity t = t.dt_capacity

let begin_attempt t ~domains =
  let rings =
    Array.init domains (fun d -> Ring.create ~capacity:t.dt_capacity ~dom:d ())
  in
  t.dt_attempts <-
    { at_rings = rings; at_events = None; at_gc_ns = 0 } :: t.dt_attempts;
  if t.dt_gc && Gcstat.ensure () then begin
    (* flush pauses that predate the attempt into the running total *)
    Gcstat.poll ();
    t.dt_gc_base <- Gcstat.total ()
  end;
  rings

let end_attempt t =
  match t.dt_attempts with
  | [] -> ()
  | a :: _ ->
    if t.dt_gc && Gcstat.ensure () then begin
      Gcstat.poll ();
      let now = Gcstat.total () in
      a.at_gc_ns <- a.at_gc_ns + max 0 (now - t.dt_gc_base);
      t.dt_gc_base <- now
    end

let attempts_rev t = t.dt_attempts
let attempts t = List.rev_map (fun a -> a.at_rings) t.dt_attempts
let attempt_count t = List.length t.dt_attempts

let events_of (a : attempt) : Ring.event list array =
  match a.at_events with
  | Some evs -> evs
  | None ->
    let evs = Array.map Ring.drain a.at_rings in
    a.at_events <- Some evs;
    evs

let attempt_events t = List.rev_map events_of t.dt_attempts
let attempt_gc_ns t = List.rev_map (fun a -> a.at_gc_ns) t.dt_attempts
let total_gc_ns t = List.fold_left (fun s a -> s + a.at_gc_ns) 0 t.dt_attempts

let attempt_drops t =
  List.rev_map
    (fun a -> Array.map Ring.drops a.at_rings)
    t.dt_attempts

let fold_rings t f init =
  List.fold_left
    (fun acc a -> Array.fold_left f acc a.at_rings)
    init (attempts_rev t)

let total_events t = fold_rings t (fun acc r -> acc + Ring.written r) 0
let total_drops t = fold_rings t (fun acc r -> acc + Ring.drops r) 0

(* ------------------------------------------------------------------ *)
(* Chrome merge                                                        *)
(* ------------------------------------------------------------------ *)

let span_of_event lid ~(k : Ring.kind) ~chunk =
  match k with
  | Ring.Chunk_claim -> Printf.sprintf "claim L%d#%d" lid chunk
  | Ring.Chunk_start -> Printf.sprintf "chunk L%d#%d" lid chunk
  | Ring.Merge_begin -> Printf.sprintf "merge L%d" lid
  | _ -> assert false

(* Each domain replays onto its own logical tick line: one tick per
   ring event, in ring order, persisting across attempts, so the
   exported timestamps depend only on the event sequence. Spans are
   kept perfectly nested by this replayer itself — the generic
   exporter never has to repair anything, so B/E counts balance. *)
let to_chrome t : Telemetry.Chrome_trace.t =
  let c = Telemetry.Chrome_trace.create () in
  let sk = Telemetry.Chrome_trace.sink c in
  let doms =
    List.fold_left
      (fun m a -> max m (Array.length a.at_rings))
      0 (attempts_rev t)
  in
  let ticks = Array.make (max doms 1) 0 in
  let stacks = Array.make (max doms 1) [] in
  let emit_b d name ts =
    stacks.(d) <- name :: stacks.(d);
    sk.Telemetry.Sink.emit
      (Telemetry.Event.Span_begin
         {
           name;
           cat = "domexec";
           clock = Telemetry.Event.Sim;
           tid = Telemetry.Chrome_trace.domain_tid_base + d;
           ts;
         })
  in
  let emit_e d ts =
    match stacks.(d) with
    | [] -> ()
    | name :: rest ->
      stacks.(d) <- rest;
      sk.Telemetry.Sink.emit
        (Telemetry.Event.Span_end
           {
             name;
             clock = Telemetry.Event.Sim;
             tid = Telemetry.Chrome_trace.domain_tid_base + d;
             ts;
           })
  in
  let emit_i d name ts =
    sk.Telemetry.Sink.emit
      (Telemetry.Event.Instant
         {
           name;
           cat = "sched";
           clock = Telemetry.Event.Sim;
           tid = Telemetry.Chrome_trace.domain_tid_base + d;
           ts;
         })
  in
  let close_if d prefix ts =
    match stacks.(d) with
    | name :: _
      when String.length name >= String.length prefix
           && String.sub name 0 (String.length prefix) = prefix ->
      emit_e d ts
    | _ -> ()
  in
  List.iter
    (fun a ->
      let evs = events_of a in
      Array.iteri
        (fun d events ->
          List.iter
            (fun (e : Ring.event) ->
              let ts = ticks.(d) in
              ticks.(d) <- ts + 1;
              match e.Ring.ev_kind with
              | Ring.Run_begin ->
                emit_b d (Printf.sprintf "attempt-%d" e.ev_c) ts
              | Ring.Run_end ->
                (* close everything this attempt left open, the
                   attempt span last *)
                while stacks.(d) <> [] do
                  emit_e d ts
                done
              | Ring.Chunk_claim ->
                close_if d "claim " ts;
                emit_b d (span_of_event e.ev_a ~k:e.ev_kind ~chunk:e.ev_c) ts
              | Ring.Chunk_start ->
                close_if d "claim " ts;
                emit_b d (span_of_event e.ev_a ~k:e.ev_kind ~chunk:e.ev_c) ts
              | Ring.Chunk_finish -> close_if d "chunk " ts
              | Ring.Merge_begin ->
                emit_b d (span_of_event e.ev_a ~k:e.ev_kind ~chunk:0) ts
              | Ring.Merge_end -> close_if d "merge " ts
              | ( Ring.Steal_stolen | Ring.Steal_empty | Ring.Steal_lost
                | Ring.Retry | Ring.Backoff | Ring.Heartbeat | Ring.Poison
                | Ring.Gc_sample ) as k ->
                emit_i d (Ring.kind_name k) ts)
            events;
          (* a crashed attempt can end without Run_end *)
          while stacks.(d) <> [] do
            emit_e d ticks.(d)
          done)
        evs)
    (List.rev t.dt_attempts);
  c

let write_chrome t path = Telemetry.Chrome_trace.write (to_chrome t) path

(* ------------------------------------------------------------------ *)
(* Scheduler-health analyzer                                           *)
(* ------------------------------------------------------------------ *)

module Sched_report = struct
  type dom_row = {
    dr_dom : int;
    dr_run_ns : int;
    dr_busy_ns : int;
    dr_claim_ns : int;
    dr_steal_ns : int;
    dr_backoff_ns : int;
    dr_merge_ns : int;
    dr_idle_ns : int;
    dr_chunks : int;
    dr_stolen : int;
    dr_steal_empty : int;
    dr_steal_lost : int;
    dr_retries : int;
    dr_poisoned : bool;
    dr_gc_minor : int;
    dr_gc_major : int;
    dr_gc_minor_words : int;
    dr_gc_dirty_chunks : int;
    dr_gc_ns : int;
    dr_drops : int;
  }

  type report = {
    sr_domains : dom_row array;
    sr_attempts : int;
    sr_capacity : int;
    sr_events : int;
    sr_drops : int;
    sr_steal_attempts : int;
    sr_steal_success : float option;
    sr_imbalance : float;
    sr_straggler : int option;
    sr_gc_ns : int;
    sr_gc_share : float;
    sr_warnings : string list;
  }

  let warn_ratio = 1.5
  let warn_floor_ns = 50_000_000

  let utilization (r : dom_row) =
    if r.dr_run_ns <= 0 then 0.0
    else float_of_int r.dr_busy_ns /. float_of_int r.dr_run_ns

  (* mutable accumulator while walking one domain's event stream *)
  type acc = {
    mutable run_ns : int;
    mutable busy_ns : int;
    mutable claim_ns : int;
    mutable steal_ns : int;
    mutable backoff_ns : int;
    mutable merge_ns : int;
    mutable chunks : int;
    mutable stolen : int;
    mutable steal_empty : int;
    mutable steal_lost : int;
    mutable retries : int;
    mutable poisoned : bool;
    mutable gc_minor : int;
    mutable gc_major : int;
    mutable gc_minor_words : int;
    mutable gc_dirty : int;
    mutable drops : int;
  }

  let fresh_acc () =
    {
      run_ns = 0; busy_ns = 0; claim_ns = 0; steal_ns = 0; backoff_ns = 0;
      merge_ns = 0; chunks = 0; stolen = 0; steal_empty = 0; steal_lost = 0;
      retries = 0; poisoned = false; gc_minor = 0; gc_major = 0;
      gc_minor_words = 0; gc_dirty = 0; drops = 0;
    }

  (* Walk one attempt's event stream for one domain. Open intervals at
     stream end (a stalled claim, a run that never reached Run_end)
     close at the domain's last event timestamp, which is what makes
     an injected stall's claim gap measurable: the poison observation
     that unwinds the domain is its last event. *)
  let feed (a : acc) (events : Ring.event list) =
    let run_open = ref None in
    let claim_open = ref None in
    let busy_open = ref None in
    let merge_open = ref None in
    let last_ts = ref 0 in
    let close_claim ts =
      match !claim_open with
      | Some t0 ->
        a.claim_ns <- a.claim_ns + max 0 (ts - t0);
        claim_open := None
      | None -> ()
    in
    let close_busy ts =
      match !busy_open with
      | Some t0 ->
        a.busy_ns <- a.busy_ns + max 0 (ts - t0);
        busy_open := None
      | None -> ()
    in
    let close_merge ts =
      match !merge_open with
      | Some t0 ->
        a.merge_ns <- a.merge_ns + max 0 (ts - t0);
        merge_open := None
      | None -> ()
    in
    List.iter
      (fun (e : Ring.event) ->
        let ts = e.Ring.ev_ts in
        last_ts := max !last_ts ts;
        match e.ev_kind with
        | Ring.Run_begin -> run_open := Some ts
        | Ring.Run_end -> (
          match !run_open with
          | Some t0 ->
            a.run_ns <- a.run_ns + max 0 (ts - t0);
            run_open := None
          | None -> ())
        | Ring.Chunk_claim -> claim_open := Some ts
        | Ring.Chunk_start ->
          close_claim ts;
          busy_open := Some ts
        | Ring.Chunk_finish ->
          close_busy ts;
          a.chunks <- a.chunks + 1
        | Ring.Steal_stolen ->
          a.stolen <- a.stolen + 1;
          a.steal_ns <- a.steal_ns + max 0 e.ev_c
        | Ring.Steal_empty ->
          a.steal_empty <- a.steal_empty + 1;
          a.steal_ns <- a.steal_ns + max 0 e.ev_c
        | Ring.Steal_lost ->
          a.steal_lost <- a.steal_lost + 1;
          a.steal_ns <- a.steal_ns + max 0 e.ev_c
        | Ring.Retry -> a.retries <- a.retries + 1
        | Ring.Backoff -> a.backoff_ns <- a.backoff_ns + max 0 e.ev_c
        | Ring.Heartbeat -> ()
        | Ring.Poison -> a.poisoned <- true
        | Ring.Gc_sample ->
          a.gc_minor <- a.gc_minor + max 0 e.ev_a;
          a.gc_major <- a.gc_major + max 0 e.ev_b;
          a.gc_minor_words <- a.gc_minor_words + max 0 e.ev_c;
          if e.ev_a > 0 || e.ev_b > 0 then a.gc_dirty <- a.gc_dirty + 1
        | Ring.Merge_begin -> merge_open := Some ts
        | Ring.Merge_end -> close_merge ts)
      events;
    close_claim !last_ts;
    close_busy !last_ts;
    close_merge !last_ts;
    match !run_open with
    | Some t0 -> a.run_ns <- a.run_ns + max 0 (!last_ts - t0)
    | None -> ()

  let analyze (t : t) : report =
    let doms =
      List.fold_left
        (fun m a -> max m (Array.length a.at_rings))
        0 (attempts_rev t)
    in
    let accs = Array.init (max doms 1) (fun _ -> fresh_acc ()) in
    List.iter
      (fun at ->
        let evs = events_of at in
        Array.iteri
          (fun d events ->
            feed accs.(d) events;
            accs.(d).drops <- accs.(d).drops + Ring.drops at.at_rings.(d))
          evs)
      (List.rev t.dt_attempts);
    let rows =
      Array.mapi
        (fun d (a : acc) ->
          let accounted =
            a.busy_ns + a.claim_ns + a.steal_ns + a.backoff_ns + a.merge_ns
          in
          {
            dr_dom = d;
            dr_run_ns = a.run_ns;
            dr_busy_ns = a.busy_ns;
            dr_claim_ns = a.claim_ns;
            dr_steal_ns = a.steal_ns;
            dr_backoff_ns = a.backoff_ns;
            dr_merge_ns = a.merge_ns;
            dr_idle_ns = max 0 (a.run_ns - accounted);
            dr_chunks = a.chunks;
            dr_stolen = a.stolen;
            dr_steal_empty = a.steal_empty;
            dr_steal_lost = a.steal_lost;
            dr_retries = a.retries;
            dr_poisoned = a.poisoned;
            dr_gc_minor = a.gc_minor;
            dr_gc_major = a.gc_major;
            dr_gc_minor_words = a.gc_minor_words;
            dr_gc_dirty_chunks = a.gc_dirty;
            dr_gc_ns = 0;
            dr_drops = a.drops;
          })
        (if doms = 0 then [||] else accs)
    in
    (* Attribute the measured process-wide GC pause time (runtime
       events account every runtime domain, but under recycled ring
       ids — see {!Gcstat}) to logical domains in proportion to the
       minor words each one allocated; allocation volume is what
       drives the collector, and it is the one GC signal the rings
       record per logical domain. *)
    let gc_total = total_gc_ns t in
    let rows =
      let words = Array.fold_left (fun s r -> s + r.dr_gc_minor_words) 0 rows in
      let runs = Array.fold_left (fun s r -> s + r.dr_run_ns) 0 rows in
      (* rounding remainder goes to the last row so the per-domain
         shares sum exactly to the measured total *)
      let booked = ref 0 in
      Array.mapi
        (fun i r ->
          let weight =
            if words > 0 then
              float_of_int r.dr_gc_minor_words /. float_of_int words
            else if runs > 0 then float_of_int r.dr_run_ns /. float_of_int runs
            else if Array.length rows > 0 then
              1.0 /. float_of_int (Array.length rows)
            else 0.0
          in
          let share =
            if i = Array.length rows - 1 then gc_total - !booked
            else int_of_float (float_of_int gc_total *. weight)
          in
          booked := !booked + share;
          { r with dr_gc_ns = share })
        rows
    in
    let n = Array.length rows in
    let work r = r.dr_busy_ns + r.dr_claim_ns in
    let total_work = Array.fold_left (fun s r -> s + work r) 0 rows in
    let mean_work = if n = 0 then 0.0 else float_of_int total_work /. float_of_int n in
    let max_work = Array.fold_left (fun m r -> max m (work r)) 0 rows in
    let imbalance =
      if mean_work <= 0.0 then 1.0 else float_of_int max_work /. mean_work
    in
    let leader =
      Array.fold_left
        (fun best r -> match best with
          | Some b when work b >= work r -> best
          | _ -> Some r)
        None rows
    in
    let straggler =
      match leader with
      | Some r
        when n > 1
             && imbalance > warn_ratio
             && float_of_int (work r) -. mean_work > float_of_int warn_floor_ns
        -> Some r.dr_dom
      | _ -> None
    in
    let steal_attempts =
      Array.fold_left
        (fun s r -> s + r.dr_stolen + r.dr_steal_empty + r.dr_steal_lost)
        0 rows
    in
    let steal_success =
      if steal_attempts = 0 then None
      else
        Some
          (float_of_int (Array.fold_left (fun s r -> s + r.dr_stolen) 0 rows)
          /. float_of_int steal_attempts)
    in
    (* GC share of total domain time, from measured pause time. The
       old definition — the fraction of chunk boundaries whose
       quick_stat delta showed any collection — saturated at 1.0 on
       every real workload (any chunk big enough to be worth
       distributing allocates through several minor heaps), which is
       why every BENCH report pinned gc_share at exactly 1.0. *)
    let total_run = Array.fold_left (fun s r -> s + r.dr_run_ns) 0 rows in
    let gc_share =
      if total_run <= 0 then 0.0
      else min 1.0 (float_of_int gc_total /. float_of_int total_run)
    in
    let drops = total_drops t in
    let warnings =
      (match straggler with
      | Some d ->
        [
          Printf.sprintf
            "domain %d is a straggler: %.2fx the mean busy+claim time" d
            imbalance;
        ]
      | None -> [])
      @
      if drops > 0 then
        [
          Printf.sprintf
            "%d ring event(s) dropped (capacity %d); utilization numbers \
             undercount — raise the ring capacity"
            drops t.dt_capacity;
        ]
      else []
    in
    {
      sr_domains = rows;
      sr_attempts = attempt_count t;
      sr_capacity = t.dt_capacity;
      sr_events = total_events t;
      sr_drops = drops;
      sr_steal_attempts = steal_attempts;
      sr_steal_success = steal_success;
      sr_imbalance = imbalance;
      sr_straggler = straggler;
      sr_gc_ns = gc_total;
      sr_gc_share = gc_share;
      sr_warnings = warnings;
    }

  let to_json ?(extra = []) (r : report) : Telemetry.Json.t =
    let module J = Telemetry.Json in
    let row (d : dom_row) =
      J.Obj
        [
          ("domain", J.Int d.dr_dom);
          ("run_ns", J.Int d.dr_run_ns);
          ("busy_ns", J.Int d.dr_busy_ns);
          ("claim_ns", J.Int d.dr_claim_ns);
          ("steal_ns", J.Int d.dr_steal_ns);
          ("backoff_ns", J.Int d.dr_backoff_ns);
          ("merge_ns", J.Int d.dr_merge_ns);
          ("idle_ns", J.Int d.dr_idle_ns);
          ("utilization", J.Float (utilization d));
          ("chunks", J.Int d.dr_chunks);
          ("stolen", J.Int d.dr_stolen);
          ("steal_empty", J.Int d.dr_steal_empty);
          ("steal_lost", J.Int d.dr_steal_lost);
          ("retries", J.Int d.dr_retries);
          ("poisoned", J.Bool d.dr_poisoned);
          ("gc_minor", J.Int d.dr_gc_minor);
          ("gc_major", J.Int d.dr_gc_major);
          ("gc_minor_words", J.Int d.dr_gc_minor_words);
          ("gc_dirty_chunks", J.Int d.dr_gc_dirty_chunks);
          ("gc_ns", J.Int d.dr_gc_ns);
          ("drops", J.Int d.dr_drops);
        ]
    in
    J.Obj
      (("schema", J.Str "dsexpand-domtrace/1")
       :: extra
      @ [
          ("attempts", J.Int r.sr_attempts);
          ("ring_capacity", J.Int r.sr_capacity);
          ("events", J.Int r.sr_events);
          ("drops", J.Int r.sr_drops);
          ("steal_attempts", J.Int r.sr_steal_attempts);
          ( "steal_success",
            match r.sr_steal_success with
            | Some s -> J.Float s
            | None -> J.Null );
          ("imbalance", J.Float r.sr_imbalance);
          ( "straggler",
            match r.sr_straggler with Some d -> J.Int d | None -> J.Null );
          ("gc_ns", J.Int r.sr_gc_ns);
          ("gc_share", J.Float r.sr_gc_share);
          ("warnings", J.List (List.map (fun w -> J.Str w) r.sr_warnings));
          ("domains", J.List (Array.to_list (Array.map row r.sr_domains)));
        ])

  let to_table (r : report) : string =
    let b = Buffer.create 1024 in
    let ms ns = float_of_int ns /. 1e6 in
    Buffer.add_string b
      (Printf.sprintf "%-6s %9s %9s %9s %9s %9s %9s %9s %5s %6s %6s %6s %6s %5s\n"
         "dom" "run-ms" "busy-ms" "claim-ms" "steal-ms" "bkoff-ms" "merge-ms"
         "idle-ms" "util" "chunks" "stolen" "empty" "gc-min" "drops");
    Array.iter
      (fun d ->
        Buffer.add_string b
          (Printf.sprintf
             "%-6d %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %4.0f%% %6d %6d \
              %6d %6d %5d%s\n"
             d.dr_dom (ms d.dr_run_ns) (ms d.dr_busy_ns) (ms d.dr_claim_ns)
             (ms d.dr_steal_ns) (ms d.dr_backoff_ns) (ms d.dr_merge_ns)
             (ms d.dr_idle_ns)
             (100.0 *. utilization d)
             d.dr_chunks d.dr_stolen d.dr_steal_empty d.dr_gc_minor d.dr_drops
             (if d.dr_poisoned then "  [poisoned]" else "")))
      r.sr_domains;
    Buffer.add_string b
      (Printf.sprintf
         "attempts=%d events=%d drops=%d steal-attempts=%d steal-success=%s \
          imbalance=%.2f straggler=%s gc-ms=%.2f gc-share=%.2f\n"
         r.sr_attempts r.sr_events r.sr_drops r.sr_steal_attempts
         (match r.sr_steal_success with
         | Some s -> Printf.sprintf "%.2f" s
         | None -> "n/a")
         r.sr_imbalance
         (match r.sr_straggler with
         | Some d -> Printf.sprintf "domain-%d" d
         | None -> "none")
         (float_of_int r.sr_gc_ns /. 1e6)
         r.sr_gc_share);
    List.iter
      (fun w -> Buffer.add_string b (Printf.sprintf "warning: %s\n" w))
      r.sr_warnings;
    Buffer.contents b
end
