(** Cross-domain critical-path profiler over {!Domtrace} recordings.

    The per-domain event rings already contain a happens-before
    skeleton of every parallel run: chunks are claimed, executed and
    finished per domain; every distributed invocation ends in a
    barrier (all domains arrive before any [Merge_begin]) followed by
    a per-domain write-log replay and output splice. This module
    reconstructs that DAG, splits each domain's timeline into typed
    {e segments} (chunk execution, claim gaps, steal probes,
    supervision backoff, merge replay, GC pauses, and the remaining
    interpreter time — replicated loops, straight-line code and the
    skip-traversal of non-owned iterations), and replays the schedule
    through a virtual clock: domains advance through their segments
    and synchronize at each merge barrier. The longest chain through
    that replay is the critical path; per-phase leaders' segments are
    its composition, and every other domain's slack at a barrier is
    derived wait time.

    Every segment carries two weights, and the replay runs under
    either one:

    - {e measured} host nanoseconds, for explaining an actual wall
      clock (and for the what-if estimator);
    - {e virtual time}: the interpreter's deterministic cycle counter
      ({!Ring.event.ev_vt} deltas; merge segments weigh their
      replayed bytes / 8). Under a race-free schedule the virtual
      weights, the schedule and hence the whole model section are
      byte-reproducible across runs — that is the part CI compares.

    The gap between the two is the point: on md5 the cycle model
    predicts near-linear scaling while the wall clock shows ~1.0x,
    and the measured section names which class absorbed the
    difference.

    The what-if estimator is the offline analogue of causal
    profiling: shrink one segment class (or one specific chunk) by
    k%, re-run the virtual clock, and report the wall-clock speedup
    that would have resulted. Barrier time is never a target — it is
    slack, derived from the other classes. *)

type profile

(** Reconstruct and replay the recording. Uses
    {!Domtrace.attempt_events} (cached draining, so combining with
    {!Domtrace.to_chrome} or {!Domtrace.Sched_report} over the same
    recorder is fine) and the measured GC pause time attributed per
    domain by {!Domtrace.Sched_report.analyze}. *)
val analyze : Domtrace.t -> profile

val domains : profile -> int
val attempts : profile -> int

(** Critical-path length of the measured replay, ns. Close to the
    run's actual wall time; small differences are event-granularity
    slack. *)
val wall_ns : profile -> float

(** Critical-path length in virtual time (cycles). *)
val vt_critpath : profile -> int

(** Total virtual work / critical-path virtual time: the schedule's
    available parallelism under the cycle model. *)
val model_parallelism : profile -> float

(** [seq_cycles / vt_critpath]: the speedup the cycle model predicts
    for this schedule. *)
val model_speedup : profile -> seq_cycles:int -> float

(** [seq_ns / wall_ns]: the measured speedup this run achieved. *)
val measured_speedup : profile -> seq_ns:float -> float

(** The class with the largest share of the measured critical path,
    with that share (of the path length). Class names: ["exec"],
    ["claim"], ["steal"], ["backoff"], ["merge"], ["gc"], ["interp"]. *)
val dominant : profile -> string * float

type whatif_row = {
  wf_target : string;
      (** a class name, or a chunk label like ["L0#3"] *)
  wf_speedups : (int * float) list;
      (** shrink percentage -> virtual wall-clock speedup *)
}

(** Causal what-if table over every class with on-path weight plus
    the heaviest single chunk; [ks] defaults to [[10; 25; 50; 100]]. *)
val whatif : ?ks:int list -> profile -> whatif_row list

(** Schema [dsexpand-critpath/1]. The base object (schedule shape,
    event counts, virtual-time model, [extra] fields prepended) is
    deterministic under a race-free schedule; [whatif:true] appends
    the host-clock ["measured"] section and the ["whatif"] table,
    which are not. [seq_cycles] and [seq_ns] (the sequential
    original's cost and wall time) enable the model/measured speedup
    fields. *)
val to_json :
  ?seq_ns:float ->
  ?seq_cycles:int ->
  ?whatif:bool ->
  ?extra:(string * Telemetry.Json.t) list ->
  profile ->
  Telemetry.Json.t

(** Human-readable rendering of the same sections. *)
val to_table :
  ?seq_ns:float -> ?seq_cycles:int -> ?whatif:bool -> profile -> string
