(** Supervised real-domain execution: crash isolation, chunk retry,
    write-log verification, and a watchdog — the robustness layer the
    simulated pipeline got from [Guard] and [Harness.Ladder], for
    {!Exec}.

    The supervisor treats each chunk of a distributed loop as an
    idempotent unit: a chunk that fails at acquisition has written
    nothing to the shared log arrays, so it is simply retried in place
    after a deterministic backoff, up to a bounded budget. Failures
    that can only be detected later — a write-log corrupted in flight
    (caught by per-chunk digests before every merge replay), a
    watchdog abort, or a real exception escaping a worker domain — are
    recovered by re-running the whole attempt: the executor is
    deterministic, machines are rebuilt from the program, and no
    memory escapes a failed attempt, so a re-run is a faithful retry.

    A stalled domain cannot hang the run: every chunk acquisition
    stamps a per-domain heartbeat, a watchdog thread polls them, and a
    heartbeat older than [watchdog_ms] aborts the attempt by setting a
    poison pill every domain observes at its next loop event (and by
    poisoning the merge barrier for domains blocked there).

    Domain-level kinds of [Faultinject.Fault] ([Domain_crash],
    [Domain_stall], [Writelog_corrupt], [Steal_contention]) are armed
    here: the targeted chunk is a pure function of the seed, so runs
    are reproducible. *)

open Minic

type outcome =
  | Completed  (** first attempt, no recovery needed *)
  | Recovered
      (** output produced, but only after chunk retries, a watchdog
          fire, or a full attempt re-run *)
  | Aborted of string  (** all attempts failed; no trustworthy output *)

type t = {
  sup_result : Exec.result option;
      (** the successful run, [None] when aborted *)
  sup_outcome : outcome;
  sup_attempts : int;  (** full executor runs, >= 1 *)
  sup_retries : int;  (** in-place chunk acquisition retries *)
  sup_crashes : int;  (** chunk-acquisition crashes (injected) *)
  sup_stalls : int;  (** injected stalls *)
  sup_corruptions : int;  (** write-log bytes actually corrupted *)
  sup_corruptions_detected : int;  (** digest mismatches caught pre-merge *)
  sup_watchdog_fires : int;
  sup_steal_lost : int;  (** lost steal CASes in the final attempt *)
  sup_events : Guard.Diag.sup_event list;  (** chronological *)
  sup_counters : Telemetry.Counters.snapshot;
      (** the underlying aggregator (keys [supervisor.*]) — the single
          source the [sup_*] fields and [--metrics] both read from *)
}

val outcome_to_string : outcome -> string

(** One-line counter summary for logs and CI artifacts. *)
val summary : t -> string

(** Run [prog] under supervision. [domains]/[chunk]/[force] are passed
    through to {!Exec.run}. [retry] (default 3) bounds both the
    per-chunk acquisition budget and the number of full run attempts;
    [watchdog_ms] (default 5000) is the per-chunk heartbeat deadline.
    [fault] arms a domain-level fault kind; pipeline-level kinds are
    ignored here. [trace] is handed to every {!Exec.run} attempt, so
    a {!Domtrace} recorder accumulates one ring set per attempt —
    including the failed attempts a recovery discards.

    Never hangs: every attempt is bounded by the watchdog, and
    attempts are bounded by [retry]. Never raises on execution
    failures — they become {!Aborted}. *)
val run :
  ?domains:int ->
  ?chunk:int ->
  ?force:bool ->
  ?retry:int ->
  ?watchdog_ms:int ->
  ?fault:Faultinject.Fault.t ->
  ?trace:Domtrace.t ->
  Ast.program ->
  Expand.Plan.t ->
  Ast.lid list ->
  t
