(** A reusable (cyclic) barrier with poisoning.

    Every domain of the executor reaches the merge barrier of every
    distributed-loop invocation in the same program order, so a plain
    phase-counting barrier suffices. A domain that fails with an
    exception poisons the barrier instead of arriving, which releases
    the waiters with {!Poisoned} rather than deadlocking the run. *)

type t = {
  m : Mutex.t;
  cv : Condition.t;
  parties : int;
  mutable waiting : int;
  mutable phase : int;
  mutable poisoned : exn option;
}

exception Poisoned of exn

let create parties =
  {
    m = Mutex.create ();
    cv = Condition.create ();
    parties;
    waiting = 0;
    phase = 0;
    poisoned = None;
  }

let wait b =
  Mutex.lock b.m;
  match b.poisoned with
  | Some e ->
    Mutex.unlock b.m;
    raise (Poisoned e)
  | None ->
    let ph = b.phase in
    b.waiting <- b.waiting + 1;
    if b.waiting = b.parties then begin
      b.waiting <- 0;
      b.phase <- ph + 1;
      Condition.broadcast b.cv;
      Mutex.unlock b.m
    end
    else begin
      while b.phase = ph && b.poisoned = None do
        Condition.wait b.cv b.m
      done;
      let p = b.poisoned in
      Mutex.unlock b.m;
      match p with Some e -> raise (Poisoned e) | None -> ()
    end

(** Release all current and future waiters with [Poisoned e]. *)
let poison b e =
  Mutex.lock b.m;
  if b.poisoned = None then b.poisoned <- Some e;
  Condition.broadcast b.cv;
  Mutex.unlock b.m
