(** Reusable (cyclic) barrier with poisoning, used by the domain
    executor at every distributed-loop merge point.

    The phase counter plays the role of the classic sense-reversal
    flag, generalized from a boolean to an integer: an arriving
    domain captures the current phase [ph], and a waiter may leave
    only once [phase <> ph] — i.e. the generation it arrived in has
    been retired by the last arriver (who resets the waiting count,
    advances the phase, and broadcasts, all under the one mutex).
    Because a domain can only observe [phase = ph + 1] after {e all}
    [parties] arrivals of generation [ph], a fast domain re-entering
    [wait] for the next loop invocation captures [ph + 1] and cannot
    slip through the old generation — the reuse hazard sense-reversal
    exists to prevent. Invariant: [0 <= waiting < parties], and
    [phase] increments exactly once per completed generation.

    Poisoning breaks the all-parties contract deliberately: a domain
    that fails with an exception cannot arrive, so instead it marks
    the barrier, which releases every current and future waiter with
    {!Poisoned} rather than deadlocking the run. A poisoned barrier
    never recovers. *)

type t

(** Raised to every waiter of a poisoned barrier; carries the
    original failure. *)
exception Poisoned of exn

(** [create parties] makes a barrier for [parties] domains; it can be
    reused for any number of generations. *)
val create : int -> t

(** Block until all [parties] domains have arrived in the current
    generation (the last arriver does not block), then return.
    @raise Poisoned if the barrier is or becomes poisoned. *)
val wait : t -> unit

(** [poison b e] permanently breaks the barrier, releasing all
    current and future waiters with [Poisoned e]. First poisoner
    wins; later calls keep the original exception. Safe to call from
    any domain or thread, including the watchdog. *)
val poison : t -> exn -> unit
