(** Expansion planning: decide what gets expanded and what gets
    promoted before any code is rewritten.

    - The {e expansion set} is every abstract object (named variable or
      heap allocation site) that some thread-private access may touch;
      these are the data structures replicated per thread (Table 1).
    - The {e promotion set} is every pointer variable / struct field /
      pointer array that may point into the expansion set; only those
      carry a span (§3.4's selective promotion). With
      [selective = false] every pointer in the program is promoted
      (the unoptimized configuration of Figure 9a). *)

open Minic

type mode = Bonded | Interleaved

type t = {
  prog : Ast.program;  (** the copy being transformed *)
  analyses : Privatize.Analyze.result list;
  alias : Alias.Andersen.result;
  mode : mode;
  selective : bool;
  loop_fns : string list;  (** functions containing target loops *)
  expand_vars : (string, unit) Hashtbl.t;
      (** qualified names: "x" for globals, "fn::x" for locals *)
  expand_allocs : (Ast.aid, unit) Hashtbl.t;  (** malloc sites to scale by N *)
  promoted_vars : (string, unit) Hashtbl.t;  (** qualified pointer vars *)
  promoted_fields : (string * string, unit) Hashtbl.t;  (** (tag, field) *)
  verdicts : (Ast.aid, Privatize.Classify.verdict) Hashtbl.t;
      (** classification verdicts, extended with registrations for
          generated span accesses *)
  access_fun : (Ast.aid, string) Hashtbl.t;  (** access id -> function *)
  generated_allocs : (Ast.aid, unit) Hashtbl.t;
      (** ret-store aids of N-copy allocations the transformer emits
          (heapified locals, [__exp_init]); span guards watch these in
          addition to the scaled original sites in [expand_allocs] *)
}

(** "x" for globals, "fn::x" for locals/formals of [fn]. *)
val qualify : Ast.fundef -> string -> string

(** Split a qualified name back into (function option, variable). *)
val unqualify : string -> string option * string

(** Shallow-copy the program so transformation does not mutate the
    original (statements are rebuilt, not mutated, by the
    transformer). *)
val copy_program : Ast.program -> Ast.program

val loc_of_qvar : string -> Alias.Andersen.loc
val is_expanded_loc : t -> Alias.Andersen.loc -> bool
val expanded_loc_set : t -> Alias.Andersen.LocSet.t

(** Merged verdict for an access id; defaults to [Shared]. *)
val verdict : t -> Ast.aid -> Privatize.Classify.verdict

(** Register the verdict of a generated access so that span shadows
    are redirected exactly like the pointer accesses they mirror. *)
val register_verdict : t -> Ast.aid -> Privatize.Classify.verdict -> unit

(** Does the type contain a pointer anywhere (drives unselective
    promotion)? *)
val has_pointer : (string, Types.composite) Hashtbl.t -> Types.ty -> bool

val is_pointerish : Types.ty -> bool

(** Merge per-loop verdicts: an access is private only if every loop
    whose site set contains it judged it private. *)
val merge_verdicts :
  Privatize.Analyze.result list ->
  (Ast.aid, Privatize.Classify.verdict) Hashtbl.t

val make :
  mode:mode -> selective:bool -> Ast.program -> Privatize.Analyze.result list -> t

(** Number of distinct dynamic data structures this plan privatizes
    (Table 5): expanded named variables plus expanded allocation
    sites. *)
val privatized_count : t -> int

val expanded_var : t -> string -> bool
val expanded_alloc : t -> Ast.aid -> bool
val promoted_var : t -> string -> bool
val promoted_field : t -> string -> string -> bool

val mode_name : mode -> string

(** Why a privatized object ended up in its layout (Figure 2): the
    provenance behind the --explain layout table. *)
type layout_choice = {
  lc_object : string;  (** qualified variable name, or "malloc@[aid]" *)
  lc_is_alloc : bool;
  lc_mode : mode;  (** layout this object actually gets *)
  lc_interleavable : bool;  (** struct of primitive members (Fig. 2b)? *)
  lc_why : string;  (** justification, in the transformer's terms *)
  lc_copy_span : int option;
      (** bytes per thread copy, for statically-sized objects *)
}

(** Mirrors the transformer's interleaving test: only a struct whose
    every member is a primitive can interleave. *)
val interleavable_ty : (string, Types.composite) Hashtbl.t -> Types.ty -> bool

(** Declared type of a qualified variable, if it resolves. *)
val qvar_ty : t -> string -> Types.ty option

(** Layout provenance for every object of the expansion set, in
    deterministic (name, then allocation-site) order. *)
val layout : t -> layout_choice list

(** Rows of the --explain layout table: object, kind, layout,
    interleavable?, per-copy span, justification. *)
val layout_rows : t -> string list list
