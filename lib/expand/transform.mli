(** The general data structure expansion transformation (§3 of the
    paper): fat-pointer promotion with span maintenance (Table 3),
    type expansion in bonded or interleaved layout (Table 1,
    Figure 2), access redirection (Table 2), global demotion to heap,
    OpenMP-style scalar privatization, and loop-invariant
    redirection-base caching.

    The transformed program reads two runtime globals: [__nthreads]
    (thread count, set before [main] runs, defaulting to 1) and
    [__tid] (set by the parallel scheduler between iterations; 0 means
    the shared copy, so plain sequential execution is unchanged and
    must produce identical output). *)

open Minic

(** Raised when a program uses a shape the transformation cannot
    handle soundly (e.g. storing a pointer to expanded data through
    untyped memory, or interleaving a recast structure) — programs are
    rejected loudly rather than miscompiled. *)
exception Unsupported of string

type result = {
  plan : Plan.t;
  transformed : Ast.program;
  privatized : int;  (** Table 5's count of privatized data structures *)
  opt_stats : Optim.Spanopt.stats option;
      (** §3.4 statistics when the optimized pipeline ran *)
}

(** Expand for several analyzed loops at once (verdicts of accesses
    appearing in multiple loops are merged conservatively).
    [selective:false] promotes every pointer (Figure 9a's unoptimized
    configuration); [optimize:false] skips §3.4 span optimization and
    base caching and emits the mechanical Table 2 redirection forms.
    [mode:Interleaved] lays out copies per Figure 2(b) and rejects
    shapes interleaving cannot express. [span_shrink:k] (fault
    injection, default 0) subtracts [k] bytes from every span used in
    redirection arithmetic, deliberately mis-offsetting thread copies
    so span guards can be exercised. *)
val expand_loops :
  ?mode:Plan.mode ->
  ?selective:bool ->
  ?optimize:bool ->
  ?span_shrink:int ->
  Ast.program ->
  Privatize.Analyze.result list ->
  result

(** Single-loop convenience wrapper around {!expand_loops}. *)
val expand :
  ?mode:Plan.mode ->
  ?selective:bool ->
  ?optimize:bool ->
  ?span_shrink:int ->
  Ast.program ->
  Privatize.Analyze.result ->
  result
