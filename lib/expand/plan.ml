(** Expansion planning: decide what gets expanded and what gets
    promoted before any code is rewritten.

    - The {e expansion set} is every abstract object (named variable or
      heap allocation site) that some thread-private access may touch;
      these are the data structures replicated per thread (Table 1).
      Locals of functions called from the loop live on per-thread
      stacks at run time and therefore need no expansion — unless an
      ambiguous pointer mixes them with expandable objects, in which
      case they are conservatively heap-converted and expanded too.
    - The {e promotion set} is every pointer variable / struct field /
      pointer array that may point into the expansion set; only those
      carry a span (§3.4's selective promotion). With
      [selective = false] every pointer in the program is promoted,
      which is the unoptimized configuration of Figure 9a. *)

open Minic

type mode = Bonded | Interleaved

type t = {
  prog : Ast.program;  (** the copy being transformed *)
  analyses : Privatize.Analyze.result list;
  alias : Alias.Andersen.result;
  mode : mode;
  selective : bool;
  loop_fns : string list;  (** functions containing target loops *)
  expand_vars : (string, unit) Hashtbl.t;
      (** qualified names: "x" for globals, "fn::x" for locals *)
  expand_allocs : (Ast.aid, unit) Hashtbl.t;  (** malloc sites to scale by N *)
  promoted_vars : (string, unit) Hashtbl.t;  (** qualified pointer vars *)
  promoted_fields : (string * string, unit) Hashtbl.t;  (** (tag, field) *)
  verdicts : (Ast.aid, Privatize.Classify.verdict) Hashtbl.t;
      (** classification verdicts, extended with registrations for
          generated span accesses *)
  access_fun : (Ast.aid, string) Hashtbl.t;  (** access id -> function *)
  generated_allocs : (Ast.aid, unit) Hashtbl.t;
      (** ret-store aids of N-copy allocations the transformer emits
          (heapified locals, [__exp_init]); span guards watch these in
          addition to the scaled original sites in [expand_allocs] *)
}

let qualify (f : Ast.fundef) (x : string) : string =
  if List.mem_assoc x f.Ast.fformals || List.mem_assoc x f.Ast.flocals then
    f.Ast.fname ^ "::" ^ x
  else x

(** Split a qualified name back into (function option, variable). *)
let unqualify (q : string) : string option * string =
  match String.index_opt q ':' with
  | Some i when i + 1 < String.length q && q.[i + 1] = ':' ->
    (Some (String.sub q 0 i), String.sub q (i + 2) (String.length q - i - 2))
  | _ -> (None, q)

let copy_program (p : Ast.program) : Ast.program =
  {
    Ast.globals = p.Ast.globals;
    comps = Hashtbl.copy p.Ast.comps;
    parallel_loops = p.Ast.parallel_loops;
    next_aid = p.Ast.next_aid;
    next_lid = p.Ast.next_lid;
    next_tmp = p.Ast.next_tmp;
  }

let loc_of_qvar (q : string) : Alias.Andersen.loc = Alias.Andersen.LVar q

let is_expanded_loc plan (l : Alias.Andersen.loc) : bool =
  match l with
  | Alias.Andersen.LVar q -> Hashtbl.mem plan.expand_vars q
  | Alias.Andersen.LAlloc aid -> Hashtbl.mem plan.expand_allocs aid
  | Alias.Andersen.LRet _ -> false

let expanded_loc_set plan : Alias.Andersen.LocSet.t =
  let s = ref Alias.Andersen.LocSet.empty in
  Hashtbl.iter
    (fun q () ->
      s := Alias.Andersen.LocSet.add (loc_of_qvar q) !s)
    plan.expand_vars;
  Hashtbl.iter
    (fun aid () ->
      s := Alias.Andersen.LocSet.add (Alias.Andersen.LAlloc aid) !s)
    plan.expand_allocs;
  !s

let verdict plan aid : Privatize.Classify.verdict =
  Option.value ~default:Privatize.Classify.Shared
    (Hashtbl.find_opt plan.verdicts aid)

(** Register the verdict of a generated access so that span shadows
    are redirected exactly like the pointer accesses they mirror. *)
let register_verdict plan aid v = Hashtbl.replace plan.verdicts aid v

(* Index all accesses: aid -> owning function. *)
let index_accesses (prog : Ast.program) : (Ast.aid, string) Hashtbl.t =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (f : Ast.fundef) ->
      List.iter
        (fun (a : Visit.access) ->
          Hashtbl.replace tbl a.Visit.acc_aid f.Ast.fname)
        (Visit.accesses_of_fun f))
    (Ast.functions prog);
  tbl

(** Does the type contain a pointer anywhere (drives unselective
    promotion)? *)
let rec has_pointer comps (t : Types.ty) : bool =
  match t with
  | Types.Tptr _ -> true
  | Types.Tarray (elt, _) -> has_pointer comps elt
  | Types.Tstruct tag -> (
    match Hashtbl.find_opt comps tag with
    | Some c -> List.exists (fun (_, ft) -> has_pointer comps ft) c.Types.cfields
    | None -> false)
  | _ -> false

let is_pointerish (t : Types.ty) : bool =
  match t with
  | Types.Tptr _ -> true
  | Types.Tarray (Types.Tptr _, _) -> true
  | _ -> false

(** Merge per-loop verdicts: an access is private only if every loop
    whose site set contains it judged it private (loops are usually
    disjoint, but shared helper functions can appear in several). *)
let merge_verdicts (analyses : Privatize.Analyze.result list) :
    (Ast.aid, Privatize.Classify.verdict) Hashtbl.t =
  let merged = Hashtbl.create 256 in
  List.iter
    (fun (a : Privatize.Analyze.result) ->
      Hashtbl.iter
        (fun aid v ->
          let v' =
            match (Hashtbl.find_opt merged aid, v) with
            | None, v -> v
            | Some Privatize.Classify.Shared, _ -> Privatize.Classify.Shared
            | Some _, Privatize.Classify.Shared -> Privatize.Classify.Shared
            | Some Privatize.Classify.Private, _ -> Privatize.Classify.Private
            | Some Privatize.Classify.Induction, v -> v
          in
          Hashtbl.replace merged aid v')
        a.Privatize.Analyze.classification.Privatize.Classify.verdicts)
    analyses;
  merged

let make ~(mode : mode) ~(selective : bool) (orig : Ast.program)
    (analyses : Privatize.Analyze.result list) : t =
  let prog = copy_program orig in
  let alias = Alias.Andersen.analyze prog in
  let loop_fns =
    List.sort_uniq compare
      (List.map
         (fun (a : Privatize.Analyze.result) ->
           a.Privatize.Analyze.loop_fun.Ast.fname)
         analyses)
  in
  let plan =
    {
      prog;
      analyses;
      alias;
      mode;
      selective;
      loop_fns;
      expand_vars = Hashtbl.create 16;
      expand_allocs = Hashtbl.create 16;
      promoted_vars = Hashtbl.create 16;
      promoted_fields = Hashtbl.create 16;
      verdicts = merge_verdicts analyses;
      access_fun = index_accesses prog;
      generated_allocs = Hashtbl.create 16;
    }
  in
  (* 1. Expansion set: objects of private accesses. *)
  let lval_of_aid = Hashtbl.create 256 in
  List.iter
    (fun (f : Ast.fundef) ->
      List.iter
        (fun (a : Visit.access) ->
          Hashtbl.replace lval_of_aid a.Visit.acc_aid (f, a.Visit.acc_lval))
        (Visit.accesses_of_fun f))
    (Ast.functions prog);
  let private_objects = ref Alias.Andersen.LocSet.empty in
  Hashtbl.iter
    (fun aid v ->
      if v = Privatize.Classify.Private then
        match Hashtbl.find_opt lval_of_aid aid with
        | Some (f, lv) ->
          private_objects :=
            Alias.Andersen.LocSet.union !private_objects
              (Alias.Andersen.objects_of_lval alias prog f lv)
        | None -> ())
    plan.verdicts;
  (* Named stack objects of other functions are per-thread already
     (thread-private stacks); expand them only when an ambiguous
     pointer mixes them with heap or loop-function objects. *)
  let is_stack_private l =
    match l with
    | Alias.Andersen.LVar q -> (
      match unqualify q with
      | Some fn, _ -> not (List.mem fn loop_fns)
      | None, _ -> false)
    | _ -> false
  in
  (* Locals of the loop function whose every access lies lexically
     inside a target loop are per-thread automatically under OpenMP
     outlining (the loop body becomes a function executed on private
     stacks), so they need no expansion either — this covers loop-body
     temporaries and inner-loop counters. *)
  let loop_stmt_aids = Hashtbl.create 256 in
  List.iter
    (fun (a : Privatize.Analyze.result) ->
      let stmt = a.Privatize.Analyze.loop_stmt in
      let collect s =
        List.iter
          (fun (acc : Visit.access) ->
            Hashtbl.replace loop_stmt_aids acc.Visit.acc_aid ())
          (Visit.accesses_of_stmt s)
      in
      let exp_accs e =
        ignore
          (Visit.fold_exp_accesses
             (fun () (acc : Visit.access) ->
               Hashtbl.replace loop_stmt_aids acc.Visit.acc_aid ())
             () e)
      in
      match stmt.Ast.skind with
      | Ast.Swhile (_, c, body) ->
        exp_accs c;
        collect body
      | Ast.Sfor (_, _, c, step, body) ->
        exp_accs c;
        collect step;
        collect body
      | _ -> ())
    analyses;
  let var_root_aids = Hashtbl.create 256 in
  List.iter
    (fun (f : Ast.fundef) ->
      List.iter
        (fun (a : Visit.access) ->
          let rec root = function
            | Ast.Var x -> Some x
            | Ast.Deref _ -> None
            | Ast.Index (b, _) | Ast.Field (b, _) -> root b
          in
          match root a.Visit.acc_lval with
          | Some x ->
            let key = f.Ast.fname ^ "::" ^ x in
            Hashtbl.replace var_root_aids key
              (a.Visit.acc_aid
              :: Option.value ~default:[] (Hashtbl.find_opt var_root_aids key))
          | None -> ())
        (Visit.accesses_of_fun f))
    (Ast.functions prog);
  let is_loop_scoped l =
    match l with
    | Alias.Andersen.LVar q -> (
      match unqualify q with
      | Some fn, x when List.mem fn loop_fns -> (
        match Ast.find_fun prog fn with
        | Some f when List.mem_assoc x f.Ast.flocals -> (
          match Hashtbl.find_opt var_root_aids q with
          | Some aids ->
            aids <> []
            && List.for_all (fun a -> Hashtbl.mem loop_stmt_aids a) aids
          | None -> false)
        | _ -> false)
      | _ -> false)
    | _ -> false
  in
  let stack_locs, expandable_locs =
    Alias.Andersen.LocSet.partition
      (fun l -> is_stack_private l || is_loop_scoped l)
      !private_objects
  in
  Alias.Andersen.LocSet.iter
    (fun l ->
      match l with
      | Alias.Andersen.LVar q -> Hashtbl.replace plan.expand_vars q ()
      | Alias.Andersen.LAlloc aid -> Hashtbl.replace plan.expand_allocs aid ()
      | Alias.Andersen.LRet _ -> ())
    expandable_locs;
  (* Mixed-object private accesses: a pointer that may target both a
     callee stack variable and an expandable object would be offset
     wrongly for the stack target, so heap-convert those stack
     variables too. *)
  if not (Alias.Andersen.LocSet.is_empty expandable_locs) then
    Hashtbl.iter
      (fun aid v ->
        if v = Privatize.Classify.Private then
          match Hashtbl.find_opt lval_of_aid aid with
          | Some (f, lv) ->
            let objs = Alias.Andersen.objects_of_lval alias prog f lv in
            let has_stack =
              not
                (Alias.Andersen.LocSet.is_empty
                   (Alias.Andersen.LocSet.inter objs stack_locs))
            in
            let has_exp =
              Alias.Andersen.LocSet.exists (is_expanded_loc plan) objs
            in
            if has_stack && has_exp then
              Alias.Andersen.LocSet.iter
                (fun l ->
                  match l with
                  | Alias.Andersen.LVar q
                    when is_stack_private l || is_loop_scoped l ->
                    Hashtbl.replace plan.expand_vars q ()
                  | _ -> ())
                objs
          | None -> ())
      plan.verdicts;
  (* 2. Promotion set. *)
  let expanded = expanded_loc_set plan in
  let consider_var (f : Ast.fundef option) (x : string) (t : Types.ty) =
    if is_pointerish t then begin
      let q = match f with Some f -> qualify f x | None -> x in
      let node = Alias.Andersen.LVar q in
      if
        (not selective)
        || Alias.Andersen.may_point_into alias node expanded
      then Hashtbl.replace plan.promoted_vars q ()
    end
  in
  List.iter (fun (x, t, _) -> consider_var None x t) (Ast.global_vars prog);
  List.iter
    (fun (f : Ast.fundef) ->
      List.iter (fun (x, t) -> consider_var (Some f) x t) f.Ast.fformals;
      List.iter (fun (x, t) -> consider_var (Some f) x t) f.Ast.flocals)
    (Ast.functions prog);
  (* Struct fields: promote (tag, fld) when some assignment stores a
     possibly-expanded pointer into it (or always, when unselective). *)
  let consider_field tag fld =
    Hashtbl.replace plan.promoted_fields (tag, fld) ()
  in
  if not selective then
    Hashtbl.iter
      (fun tag (c : Types.composite) ->
        List.iter
          (fun (fld, ft) ->
            if is_pointerish ft then consider_field tag fld)
          c.Types.cfields)
      prog.Ast.comps
  else begin
    let env = Typecheck.make_env prog in
    List.iter
      (fun (f : Ast.fundef) ->
        let fe = Typecheck.fenv_of env f in
        let rec scan (s : Ast.stmt) =
          match s.Ast.skind with
          | Ast.Sassign (_, (Ast.Field (b, fld) as lv), rhs) -> (
            ignore lv;
            match Typecheck.lval_ty fe b with
            | Types.Tstruct tag
              when Types.is_pointer (Typecheck.lval_ty fe (Ast.Field (b, fld)))
              ->
              if
                not
                  (Alias.Andersen.LocSet.is_empty
                     (Alias.Andersen.LocSet.inter
                        (Alias.Andersen.targets_of_exp alias prog f rhs)
                        expanded))
              then consider_field tag fld
            | _ -> ())
          | Ast.Sseq ss -> List.iter scan ss
          | Ast.Sif (_, a, b) ->
            scan a;
            scan b
          | Ast.Swhile (_, _, body) -> scan body
          | Ast.Sfor (_, init, _, step, body) ->
            scan init;
            scan step;
            scan body
          | _ -> ()
        in
        scan f.Ast.fbody)
      (Ast.functions prog)
  end;
  plan

(** Number of distinct dynamic data structures this plan privatizes
    (Table 5 of the paper): expanded named variables plus expanded
    allocation sites. *)
let privatized_count (plan : t) : int =
  Hashtbl.length plan.expand_vars + Hashtbl.length plan.expand_allocs

let mode_name = function Bonded -> "bonded" | Interleaved -> "interleaved"

(** Why a privatized object ended up in its layout (Figure 2): the
    provenance behind the --explain layout table. *)
type layout_choice = {
  lc_object : string;  (** qualified variable name, or "malloc@[aid]" *)
  lc_is_alloc : bool;
  lc_mode : mode;  (** layout this object actually gets *)
  lc_interleavable : bool;  (** struct of primitive members (Fig. 2b)? *)
  lc_why : string;  (** justification, in the transformer's terms *)
  lc_copy_span : int option;
      (** bytes per thread copy, for statically-sized objects *)
}

(** Mirrors the transformer's interleaving tests
    ([Transform.interleaved_struct] / [Transform.prim_array_dims]):
    structs of primitive members and (nested) arrays of primitive
    elements interleave; recasting between different-sized types
    breaks the interleaved address math for everything else. *)
let rec interleavable_ty comps (t : Types.ty) : bool =
  match t with
  | Types.Tstruct tag -> (
    match Hashtbl.find_opt comps tag with
    | Some c ->
      List.for_all
        (fun (_, ft) ->
          match ft with Types.Tint _ | Types.Tfloat _ -> true | _ -> false)
        c.Types.cfields
    | None -> false)
  | Types.Tarray ((Types.Tint _ | Types.Tfloat _), _) -> true
  | Types.Tarray (elt, _) -> interleavable_ty comps elt
  | _ -> false

(** Declared type of a qualified variable, if it resolves. *)
let qvar_ty (plan : t) (q : string) : Types.ty option =
  match unqualify q with
  | Some fn, x -> (
    match Ast.find_fun plan.prog fn with
    | Some f -> (
      match List.assoc_opt x f.Ast.flocals with
      | Some t -> Some t
      | None -> List.assoc_opt x f.Ast.fformals)
    | None -> None)
  | None, x ->
    List.find_map
      (fun (y, t, _) -> if y = x then Some t else None)
      (Ast.global_vars plan.prog)

(** Layout provenance for every object of the expansion set, in
    deterministic (name, then allocation-site) order. *)
let layout (plan : t) : layout_choice list =
  let comps = plan.prog.Ast.comps in
  let var_choice q =
    let ty = qvar_ty plan q in
    let interleavable =
      match ty with Some t -> interleavable_ty comps t | None -> false
    in
    let span =
      match ty with
      | Some t -> ( try Some (Types.sizeof comps Loc.dummy t) with _ -> None)
      | None -> None
    in
    let lc_mode, lc_why =
      match (ty, interleavable, plan.mode) with
      | _, true, Interleaved ->
        ( Interleaved,
          "primitive members/elements: each one's N copies are \
           consecutive (Figure 2b)" )
      | _, true, Bonded ->
        ( Bonded,
          "primitive members/elements (interleavable), but bonded mode \
           keeps each copy contiguous (Figure 2a)" )
      | Some (Types.Tint _ | Types.Tfloat _), _, _ ->
        (Bonded, "primitive scalar: both layouts coincide")
      | _, false, Interleaved ->
        ( Bonded,
          "members are not all primitive (arrays/pointers recast between \
           different-sized types): falls back to bonded copies" )
      | _, false, Bonded ->
        (Bonded, "bonded mode: N contiguous copies (Figure 2a)")
    in
    {
      lc_object = q;
      lc_is_alloc = false;
      lc_mode;
      lc_interleavable = interleavable;
      lc_why;
      lc_copy_span = span;
    }
  in
  let alloc_choice aid =
    {
      lc_object = Printf.sprintf "malloc@[%d]" aid;
      lc_is_alloc = true;
      lc_mode = Bonded;
      lc_interleavable = false;
      lc_why =
        "heap allocation site: the block is scaled to N back-to-back \
         copies, bonded by construction";
      lc_copy_span = None;
    }
  in
  let vars =
    Hashtbl.fold (fun q () acc -> q :: acc) plan.expand_vars []
    |> List.sort compare
  in
  let allocs =
    Hashtbl.fold (fun a () acc -> a :: acc) plan.expand_allocs []
    |> List.sort compare
  in
  List.map var_choice vars @ List.map alloc_choice allocs

(** Rows of the --explain layout table: object, kind, layout,
    interleavable?, per-copy span, justification. *)
let layout_rows (plan : t) : string list list =
  List.map
    (fun lc ->
      [
        lc.lc_object;
        (if lc.lc_is_alloc then "alloc" else "var");
        mode_name lc.lc_mode;
        (if lc.lc_interleavable then "yes" else "no");
        (match lc.lc_copy_span with
        | Some b -> Printf.sprintf "%dB" b
        | None -> "-");
        lc.lc_why;
      ])
    (layout plan)

let expanded_var plan q = Hashtbl.mem plan.expand_vars q
let expanded_alloc plan aid = Hashtbl.mem plan.expand_allocs aid
let promoted_var plan q = Hashtbl.mem plan.promoted_vars q
let promoted_field plan tag fld = Hashtbl.mem plan.promoted_fields (tag, fld)
