(** The general data structure expansion transformation (§3 of the
    paper), applied according to a {!Plan}:

    {b Pass 1 — fat pointers (§3.3.1-3.3.2, Figures 4-6, Table 3).}
    Every promoted pointer grows a shadow span: an extra local/global
    [__span_p] for pointer variables, an extra struct field
    [__span_f] for pointer fields (which enlarges the struct exactly
    like the paper's [struct {pointer; span}] promotion — [sizeof]
    picks the growth up automatically), an extra trailing formal for
    pointer parameters, and a [__retspan_f] global for pointer-returning
    functions. After every assignment that writes a promoted holder, a
    span-maintenance statement is inserted per Table 3.

    {b Pass 2 — expansion and redirection (§3.1, 3.3, Tables 1-2).}
    Every expanded object is replicated [N = __nthreads] times in the
    shared address space: globals and the loop function's locals are
    demoted to heap blocks of [sizeof(T) * N] reached through a new
    pointer [__exp_x] (the paper's global rule; locals use it too
    since MiniC has no VLAs — semantically the same storage with
    explicit free on exit), and expanded allocation sites multiply
    their size by [N]. Accesses are then redirected: an access rooted
    at an expanded variable is rebased to copy [__tid] (private) or
    copy 0 (shared); a private access through a pointer becomes
    [*( (T * )((char * )p + __tid * span) )].

    Generated span accesses {e mirror the verdicts} of the pointer
    accesses they shadow, so a private pointer's span is itself
    privatized. *)

open Minic

let long = Types.Tint Types.ILong
let int_t = Types.Tint Types.IInt
let clong e = Ast.Cast (long, e)

type tctx = {
  plan : Plan.t;
  mutable retspan_funs : (string, unit) Hashtbl.t;
  cache_bases : bool;
      (** optimized mode: hold each expanded variable's redirection
          base ([__exp_x] or [__exp_x + __tid]) in a local pointer,
          computed once per function entry / loop iteration — the
          loop-invariant code motion a real compiler applies to the
          redirection arithmetic *)
  mutable cur_bases : (string, bool * bool) Hashtbl.t;
      (** per function being rewritten: var -> (needs shared base,
          needs private base) *)
  scalar_privates : (string, string) Hashtbl.t;
      (** qualified name -> owning function, for expanded {e scalars}
          whose accesses all live in one function and that are never
          pointed to: these become an OpenMP-style private local
          (register-resident) instead of a heap replica — exactly what
          scalar expansion plus register promotion yields in GCC *)
  span_shrink : int;
      (** fault injection: subtract this many bytes from every span
          used in redirection arithmetic (0 = correct code). A nonzero
          value under-offsets copies so redirected accesses stray into
          a neighbouring copy — exactly the corruption a span guard
          must catch *)
}

let shared_base x = "__sb_" ^ x
let private_base x = "__pb_" ^ x
let private_scalar x = "__prv_" ^ x

let prog ctx = ctx.plan.Plan.prog
let fresh ctx = Ast.fresh_aid (prog ctx)

(** A fresh load whose verdict mirrors [like]. *)
let mirrored_load ctx (like : Ast.aid) (lv : Ast.lval) : Ast.exp =
  let a = fresh ctx in
  Plan.register_verdict ctx.plan a (Plan.verdict ctx.plan like);
  Ast.Lval (a, lv)

let mirrored_store ctx (like : Ast.aid) (lv : Ast.lval) (e : Ast.exp) :
    Ast.stmt =
  let a = fresh ctx in
  Plan.register_verdict ctx.plan a (Plan.verdict ctx.plan like);
  Ast.mk_stmt (Ast.Sassign (a, lv, e))

(** Clone an expression, giving every load a fresh access id that
    mirrors the verdict of the one it copies. *)
let rec clone_exp ctx (e : Ast.exp) : Ast.exp =
  match e with
  | Ast.Const _ | Ast.SizeofType _ -> e
  | Ast.SizeofExp a -> Ast.SizeofExp (clone_exp ctx a)
  | Ast.Lval (aid, lv) -> mirrored_load ctx aid (clone_lval ctx lv)
  | Ast.Addr lv -> Ast.Addr (clone_lval ctx lv)
  | Ast.Unop (op, a) -> Ast.Unop (op, clone_exp ctx a)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, clone_exp ctx a, clone_exp ctx b)
  | Ast.Cast (t, a) -> Ast.Cast (t, clone_exp ctx a)
  | Ast.Call (f, args) -> Ast.Call (f, List.map (clone_exp ctx) args)
  | Ast.Cond (c, a, b) ->
    Ast.Cond (clone_exp ctx c, clone_exp ctx a, clone_exp ctx b)

and clone_lval ctx (lv : Ast.lval) : Ast.lval =
  match lv with
  | Ast.Var _ -> lv
  | Ast.Deref e -> Ast.Deref (clone_exp ctx e)
  | Ast.Index (b, i) -> Ast.Index (clone_lval ctx b, clone_exp ctx i)
  | Ast.Field (b, f) -> Ast.Field (clone_lval ctx b, f)

(* ------------------------------------------------------------------ *)
(* Span expressions (Table 3)                                          *)
(* ------------------------------------------------------------------ *)

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

(** The span-holder lvalue shadowing a promoted pointer holder, if the
    lvalue is a shape we support ([Var p], [lv.f], [a\[i\]]). *)
let span_holder ctx (fe : Typecheck.fenv) (f : Ast.fundef) (lv : Ast.lval) :
    Ast.lval option =
  match lv with
  | Ast.Var p ->
    if Plan.promoted_var ctx.plan (Plan.qualify f p) then
      Some (Ast.Var (Names.span_var p))
    else None
  | Ast.Field (b, fld) -> (
    match Typecheck.lval_ty fe b with
    | Types.Tstruct tag when Plan.promoted_field ctx.plan tag fld ->
      Some (Ast.Field (clone_lval ctx b, Names.span_field fld))
    | _ -> None)
  | Ast.Index (Ast.Var a, i) ->
    if Plan.promoted_var ctx.plan (Plan.qualify f a) then
      Some (Ast.Index (Ast.Var (Names.span_var a), clone_exp ctx i))
    else None
  | _ -> None

(** Table 3: the span of a pointer-valued expression, built against
    pre-expansion names. Every generated load mirrors the verdict of
    the original access it shadows. *)
let rec span_of ctx (fe : Typecheck.fenv) (f : Ast.fundef) (e : Ast.exp) :
    Ast.exp =
  match e with
  | Ast.Cast (_, a) -> span_of ctx fe f a
  | Ast.Const (Ast.Cstr s) -> Ast.cint ~ik:Types.ILong (String.length s + 1)
  | Ast.Const _ -> Ast.cint ~ik:Types.ILong 0
  | Ast.SizeofType _ | Ast.SizeofExp _ -> Ast.cint ~ik:Types.ILong 0
  | Ast.Lval (aid, lv) -> (
    match span_holder ctx fe f lv with
    | Some sh -> mirrored_load ctx aid sh
    | None ->
      (* an unpromoted pointer never targets an expanded object (or we
         cannot shadow its storage: reject if it could) *)
      let targets =
        Alias.Andersen.targets_of_exp ctx.plan.Plan.alias (prog ctx) f e
      in
      if
        Alias.Andersen.LocSet.exists
          (fun l -> Plan.is_expanded_loc ctx.plan l)
          targets
      then
        unsupported
          "pointer loaded from unshadowable storage (%s) may target an \
           expanded object"
          (Pretty.lval_text lv)
      else Ast.cint ~ik:Types.ILong 0)
  | Ast.Addr lv -> span_of_addr ctx fe f lv
  | Ast.Binop ((Ast.Add | Ast.Sub), a, b) ->
    (* pointer arithmetic keeps the base pointer's span *)
    let ta = Types.decay (Typecheck.exp_ty fe a) in
    if Types.is_pointer ta then span_of ctx fe f a else span_of ctx fe f b
  | Ast.Cond (c, a, b) ->
    Ast.Cond (clone_exp ctx c, span_of ctx fe f a, span_of ctx fe f b)
  | Ast.Unop _ | Ast.Binop _ -> Ast.cint ~ik:Types.ILong 0
  | Ast.Call (g, _) -> unsupported "span of unhoisted call to %s" g

(** [p = &lv]: the span is the size of the whole root object
    (Table 3's "address taken" rules use sizeof of the outermost
    structure so that thread-copy strides are whole objects). *)
and span_of_addr ctx (fe : Typecheck.fenv) (f : Ast.fundef) (lv : Ast.lval) :
    Ast.exp =
  match lv with
  | Ast.Var x -> Ast.SizeofType (Typecheck.lval_ty fe (Ast.Var x))
  | Ast.Deref e -> span_of ctx fe f e
  | Ast.Index (b, _) | Ast.Field (b, _) -> span_of_addr ctx fe f b

(* ------------------------------------------------------------------ *)
(* Pass 1: promotion — declarations, span maintenance, call plumbing   *)
(* ------------------------------------------------------------------ *)

(** Formals of [callee] that are promoted, in order. *)
let promoted_formals ctx (callee : Ast.fundef) : (string * Types.ty) list =
  List.filter
    (fun (x, _) ->
      Plan.promoted_var ctx.plan (callee.Ast.fname ^ "::" ^ x))
    callee.Ast.fformals

let returns_promoted ctx (name : string) : bool =
  Hashtbl.mem ctx.retspan_funs name

let is_alloc_name = function
  | "malloc" | "calloc" | "realloc" -> true
  | _ -> false

(** The size expression of an allocation call's arguments. *)
let alloc_size_arg (callee : string) (args : Ast.exp list) : Ast.exp =
  match (callee, args) with
  | "malloc", [ n ] -> n
  | "calloc", [ a; b ] -> Ast.Binop (Ast.Mul, a, b)
  | "realloc", [ _; n ] -> n
  | _ -> invalid_arg "alloc_size_arg"

let rec pass1_stmt ctx fe (f : Ast.fundef) (s : Ast.stmt) : Ast.stmt =
  let loc = s.Ast.sloc in
  match s.Ast.skind with
  | Ast.Sskip | Ast.Sbreak | Ast.Scontinue -> s
  | Ast.Sassign (aid, lv, rhs) -> (
    match span_holder ctx fe f lv with
    | Some sh ->
      let span_rhs = span_of ctx fe f rhs in
      (* p = p + 1 keeps its span; the unoptimized configuration still
         emits the (dead) self-assignment, which §3.4's DSE removes.
         The span precedes the pointer store: its rhs mirrors the
         pointer rhs and must see pre-assignment state (think of the
         paper's fat-struct copy, which reads both source fields
         before writing either destination field) — [p = p->next]
         must take the span from the {e old} node. *)
      let span_stmt = mirrored_store ctx aid sh span_rhs in
      Ast.mk_stmt ~loc (Ast.Sseq [ span_stmt; s ])
    | None ->
      (* storing a possibly-expanded pointer into unshadowable memory
         would lose its span *)
      (if Types.is_pointer (Types.decay (Typecheck.exp_ty fe rhs)) then
         match lv with
         | Ast.Deref _ ->
           let targets =
             Alias.Andersen.targets_of_exp ctx.plan.Plan.alias (prog ctx) f rhs
           in
           if
             Alias.Andersen.LocSet.exists
               (fun l -> Plan.is_expanded_loc ctx.plan l)
               targets
           then
             unsupported
               "a pointer to an expanded object is stored through %s, which \
                has no span shadow"
               (Pretty.lval_text lv)
         | _ -> ());
      s)
  | Ast.Scall (ret, callee, args) -> (
    match Ast.find_fun (prog ctx) callee with
    | Some fd ->
      (* user call: append span arguments for promoted formals *)
      let span_args =
        List.map
          (fun (x, _) ->
            let idx =
              Option.get
                (List.find_index (fun (y, _) -> String.equal x y) fd.Ast.fformals)
            in
            span_of ctx fe f (List.nth args idx))
          (promoted_formals ctx fd)
      in
      let call = Ast.mk_stmt ~loc (Ast.Scall (ret, callee, args @ span_args)) in
      let after =
        match ret with
        | Some (aid, lv) when returns_promoted ctx callee -> (
          match span_holder ctx fe f lv with
          | Some sh ->
            [ mirrored_store ctx aid sh
                (mirrored_load ctx aid (Ast.Var (Names.retspan callee))) ]
          | None -> [])
        | Some (aid, lv) -> (
          (* callee returns an unpromoted pointer: null span *)
          match span_holder ctx fe f lv with
          | Some sh ->
            [ mirrored_store ctx aid sh (Ast.cint ~ik:Types.ILong 0) ]
          | None ->
            ignore aid;
            [])
        | None -> []
      in
      if after = [] && span_args = [] then s
      else Ast.mk_stmt ~loc (Ast.Sseq (call :: after))
    | None when is_alloc_name callee -> (
      match ret with
      | Some (aid, lv) -> (
        match span_holder ctx fe f lv with
        | Some sh ->
          let span_stmt =
            mirrored_store ctx aid sh
              (clong (clone_exp ctx (alloc_size_arg callee args)))
          in
          Ast.mk_stmt ~loc (Ast.Sseq [ s; span_stmt ])
        | None -> s)
      | None -> s)
    | None -> s)
  | Ast.Sseq ss -> Ast.mk_stmt ~loc (Ast.Sseq (List.map (pass1_stmt ctx fe f) ss))
  | Ast.Sif (c, a, b) ->
    Ast.mk_stmt ~loc (Ast.Sif (c, pass1_stmt ctx fe f a, pass1_stmt ctx fe f b))
  | Ast.Swhile (lid, c, body) ->
    Ast.mk_stmt ~loc (Ast.Swhile (lid, c, pass1_stmt ctx fe f body))
  | Ast.Sfor (lid, init, c, step, body) ->
    Ast.mk_stmt ~loc
      (Ast.Sfor
         ( lid,
           pass1_stmt ctx fe f init,
           c,
           pass1_stmt ctx fe f step,
           pass1_stmt ctx fe f body ))
  | Ast.Sreturn (Some e) when returns_promoted ctx f.Ast.fname ->
    let set =
      Ast.mk_stmt ~loc
        (Ast.Sassign (fresh ctx, Ast.Var (Names.retspan f.Ast.fname),
                      span_of ctx fe f e))
    in
    Ast.mk_stmt ~loc (Ast.Sseq [ set; s ])
  | Ast.Sreturn _ -> s

(** Shadow declaration for a promoted variable, mirroring array
    shape. *)
let span_decl_ty (t : Types.ty) : Types.ty =
  match t with
  | Types.Tarray (Types.Tptr _, n) -> Types.Tarray (long, n)
  | _ -> long

let pass1 (ctx : tctx) : unit =
  let p = prog ctx in
  (* decide which functions carry a return span *)
  List.iter
    (fun (f : Ast.fundef) ->
      if Types.is_pointer f.Ast.freturn then begin
        let needs =
          (not ctx.plan.Plan.selective)
          || Alias.Andersen.may_point_into ctx.plan.Plan.alias
               (Alias.Andersen.LRet f.Ast.fname)
               (Plan.expanded_loc_set ctx.plan)
        in
        if needs then Hashtbl.replace ctx.retspan_funs f.Ast.fname ()
      end)
    (Ast.functions p);
  (* promote struct fields: append span fields *)
  let comps_to_update =
    Hashtbl.fold
      (fun tag (c : Types.composite) acc ->
        let extra =
          List.filter_map
            (fun (fld, ft) ->
              if Types.is_pointer ft && Plan.promoted_field ctx.plan tag fld
              then Some (Names.span_field fld, long)
              else None)
            c.Types.cfields
        in
        if extra = [] then acc
        else (tag, { c with Types.cfields = c.Types.cfields @ extra }) :: acc)
      p.Ast.comps []
  in
  List.iter
    (fun (tag, c) ->
      Hashtbl.replace p.Ast.comps tag c;
      p.Ast.globals <-
        List.map
          (function
            | Ast.Gcomposite c0 when String.equal c0.Types.cname tag ->
              Ast.Gcomposite c
            | g -> g)
          p.Ast.globals)
    comps_to_update;
  let env = Typecheck.make_env p in
  (* rewrite every function: add span locals/formals, maintain spans *)
  let new_funs =
    List.map
      (fun (f : Ast.fundef) ->
        let fe = Typecheck.fenv_of env f in
        let span_formals =
          List.map
            (fun (x, _) -> (Names.span_var x, long))
            (promoted_formals ctx f)
        in
        let span_locals =
          List.filter_map
            (fun (x, t) ->
              if Plan.promoted_var ctx.plan (Plan.qualify f x) then
                Some (Names.span_var x, span_decl_ty t)
              else None)
            f.Ast.flocals
        in
        List.iter
          (fun (n, t) -> Hashtbl.replace fe.Typecheck.vars n t)
          (span_formals @ span_locals);
        let body = pass1_stmt ctx fe f f.Ast.fbody in
        {
          f with
          Ast.fformals = f.Ast.fformals @ span_formals;
          flocals = f.Ast.flocals @ span_locals;
          fbody = body;
        })
      (Ast.functions p)
  in
  List.iter (Ast.replace_fun p) new_funs;
  (* span globals for promoted globals, and retspan globals *)
  let span_globals =
    List.filter_map
      (fun (x, t, _) ->
        if Plan.promoted_var ctx.plan x then
          Some (Ast.Gvar (Names.span_var x, span_decl_ty t, None))
        else None)
      (Ast.global_vars p)
  in
  let retspan_globals =
    Hashtbl.fold
      (fun fname () acc -> Ast.Gvar (Names.retspan fname, long, None) :: acc)
      ctx.retspan_funs []
  in
  p.Ast.globals <- span_globals @ retspan_globals @ p.Ast.globals;
  (* a promoted pointer that is itself expanded privatizes its span *)
  let extra_expand = ref [] in
  Hashtbl.iter
    (fun q () ->
      if Hashtbl.mem ctx.plan.Plan.expand_vars q then begin
        let fn, x = Plan.unqualify q in
        let sq =
          match fn with
          | Some fn -> fn ^ "::" ^ Names.span_var x
          | None -> Names.span_var x
        in
        extra_expand := sq :: !extra_expand
      end)
    ctx.plan.Plan.promoted_vars;
  List.iter
    (fun q -> Hashtbl.replace ctx.plan.Plan.expand_vars q ())
    !extra_expand

(* ------------------------------------------------------------------ *)
(* Pass 2: expansion and redirection                                   *)
(* ------------------------------------------------------------------ *)

let tid_load ctx : Ast.exp = Ast.Lval (fresh ctx, Ast.Var Names.tid)
let nthreads_load ctx : Ast.exp = Ast.Lval (fresh ctx, Ast.Var Names.nthreads)

(** Fault injection: under-offset a redirection span by
    [ctx.span_shrink] bytes (identity when 0, the normal case). *)
let shrink_span ctx (span : Ast.exp) : Ast.exp =
  if ctx.span_shrink = 0 then span
  else
    Ast.Binop
      ( Ast.Sub,
        span,
        Ast.Const (Ast.Cint (Int64.of_int ctx.span_shrink, Types.ILong)) )

(** Redirect a private pointer-rooted access: Table 2's
    [*(p + tid*span/sizeof( *p ))], realized in byte arithmetic. *)
let private_deref ctx (pointee : Types.ty) (ptr : Ast.exp) (span : Ast.exp) :
    Ast.lval =
  let span = shrink_span ctx span in
  Ast.Deref
    (Ast.Cast
       ( Types.Tptr pointee,
         Ast.Binop
           ( Ast.Add,
             Ast.Cast (Types.Tptr (Types.Tint Types.IChar), ptr),
             Ast.Binop (Ast.Mul, clong (tid_load ctx), span) ) ))

(** Root variable of a pure index chain ([a[i]…[k]]), if any. *)
let rec index_root : Ast.lval -> string option = function
  | Ast.Index (b, _) -> index_root b
  | Ast.Var x -> Some x
  | _ -> None

(** Indices of a pure index chain, outermost dimension first. *)
let rec index_chain acc : Ast.lval -> Ast.exp list = function
  | Ast.Index (b, i) -> index_chain (i :: acc) b
  | _ -> acc

(** Dimensions of a (possibly nested) array of primitive elements;
    [None] for anything the interleaved layout cannot scatter. *)
let rec prim_array_dims : Types.ty -> (int list * Types.ty) option = function
  | Types.Tarray (elt, n) -> (
    match elt with
    | Types.Tint _ | Types.Tfloat _ -> Some ([ n ], elt)
    | _ ->
      Option.map (fun (ds, e) -> (n :: ds, e)) (prim_array_dims elt))
  | _ -> None

let rec rewrite_exp ctx fe (f : Ast.fundef) (e : Ast.exp) : Ast.exp =
  match e with
  | Ast.Const _ | Ast.SizeofType _ -> e
  | Ast.SizeofExp a -> Ast.SizeofExp (rewrite_exp ctx fe f a)
  | Ast.Lval (aid, lv) ->
    Ast.Lval (aid, rewrite_access ctx fe f aid lv)
  | Ast.Addr lv -> Ast.Addr (rewrite_lval ctx fe f `Shared lv)
  | Ast.Unop (op, a) -> Ast.Unop (op, rewrite_exp ctx fe f a)
  | Ast.Binop (op, a, b) ->
    Ast.Binop (op, rewrite_exp ctx fe f a, rewrite_exp ctx fe f b)
  | Ast.Cast (t, a) -> Ast.Cast (t, rewrite_exp ctx fe f a)
  | Ast.Call (g, args) -> Ast.Call (g, List.map (rewrite_exp ctx fe f) args)
  | Ast.Cond (c, a, b) ->
    Ast.Cond
      (rewrite_exp ctx fe f c, rewrite_exp ctx fe f a, rewrite_exp ctx fe f b)

(** Rewrite the lvalue of access [aid]. *)
and rewrite_access ctx fe f (aid : Ast.aid) (lv : Ast.lval) : Ast.lval =
  let mode =
    match Plan.verdict ctx.plan aid with
    | Privatize.Classify.Private -> `Private
    | Privatize.Classify.Shared | Privatize.Classify.Induction -> `Shared
  in
  rewrite_lval ctx fe f mode lv

(** Is [x] eligible for the interleaved layout (Figure 2b): a struct
    of primitive members? The paper prefers the bonded mode partly
    because interleaving "fails to work in some cases in which a data
    structure is recast between different-sized types" — anything else
    (arrays, pointers, heap blocks) is rejected. *)
and interleaved_struct ctx fe (x : string) : (string * Types.composite) option =
  match Typecheck.lval_ty fe (Ast.Var x) with
  | Types.Tstruct tag ->
    let c = Types.find_composite (prog ctx).Ast.comps Loc.dummy tag in
    if
      List.for_all
        (fun (_, ft) ->
          match ft with Types.Tint _ | Types.Tfloat _ -> true | _ -> false)
        c.Types.cfields
    then Some (tag, c)
    else None
  | Types.Tint _ | Types.Tfloat _ ->
    None (* primitive scalars: both layouts coincide; use the bonded path *)
  | _ -> None

(** Rewrite an lvalue; [mode] decides which copy its root addresses. *)
and rewrite_lval ctx fe f (mode : [ `Private | `Shared ]) (lv : Ast.lval) :
    Ast.lval =
  match lv with
  | Ast.Field (Ast.Var x, fld)
    when ctx.plan.Plan.mode = Plan.Interleaved
         && Plan.expanded_var ctx.plan (Plan.qualify f x)
         && not (Hashtbl.mem ctx.scalar_privates (Plan.qualify f x)) -> (
    (* Figure 2(b): member [fld]'s N copies are consecutive; distinct
       members are N*sizeof(member) apart. Address:
       base + offset(fld)*N + tid*sizeof(fld). *)
    match interleaved_struct ctx fe x with
    | Some (tag, _) ->
      let off, fty = Types.field_offset (prog ctx).Ast.comps Loc.dummy tag fld in
      let fsz = Types.sizeof (prog ctx).Ast.comps Loc.dummy fty in
      let base =
        Ast.Cast
          (Types.Tptr (Types.Tint Types.IChar),
           Ast.Lval (fresh ctx, Ast.Var (Names.exp_var x)))
      in
      let member_base =
        Ast.Binop
          (Ast.Add, base,
           Ast.Binop (Ast.Mul, Ast.cint ~ik:Types.ILong off,
                      clong (nthreads_load ctx)))
      in
      let addr =
        match mode with
        | `Shared -> member_base
        | `Private ->
          Ast.Binop
            (Ast.Add, member_base,
             Ast.Binop (Ast.Mul, clong (tid_load ctx),
                        Ast.cint ~ik:Types.ILong fsz))
      in
      Ast.Deref (Ast.Cast (Types.Tptr fty, addr))
    | None ->
      unsupported
        "interleaved mode cannot lay out '%s' (only structs of primitive          members interleave; the paper's bonded mode handles the rest)"
        x)
  | Ast.Var x
    when ctx.plan.Plan.mode = Plan.Interleaved
         && Plan.expanded_var ctx.plan (Plan.qualify f x)
         && (not (Hashtbl.mem ctx.scalar_privates (Plan.qualify f x)))
         && (Option.is_some (interleaved_struct ctx fe x)
            || Option.is_some
                 (prim_array_dims (Typecheck.lval_ty fe (Ast.Var x)))) ->
    unsupported
      "interleaved mode cannot take a whole-structure view of '%s' (its        members are not adjacent); use the bonded mode"
      x
  | Ast.Var x when Hashtbl.mem ctx.scalar_privates (Plan.qualify f x) -> (
    match mode with
    | `Private -> Ast.Var (private_scalar x)
    | `Shared -> lv)
  | Ast.Var x ->
    if Plan.expanded_var ctx.plan (Plan.qualify f x) then begin
      if ctx.cache_bases then begin
        let s, p =
          Option.value ~default:(false, false)
            (Hashtbl.find_opt ctx.cur_bases x)
        in
        match mode with
        | `Private ->
          Hashtbl.replace ctx.cur_bases x (s, true);
          Ast.Deref (Ast.Lval (fresh ctx, Ast.Var (private_base x)))
        | `Shared ->
          Hashtbl.replace ctx.cur_bases x (true, p);
          Ast.Deref (Ast.Lval (fresh ctx, Ast.Var (shared_base x)))
      end
      else begin
        (* unoptimized: the mechanical Table 2 form, byte arithmetic
           through the span (here statically sizeof) with no
           loop-invariant hoisting *)
        let base = Ast.Lval (fresh ctx, Ast.Var (Names.exp_var x)) in
        match mode with
        | `Private ->
          let t = Typecheck.lval_ty fe (Ast.Var x) in
          Ast.Deref
            (Ast.Cast
               ( Types.Tptr t,
                 Ast.Binop
                   ( Ast.Add,
                     Ast.Cast (Types.Tptr (Types.Tint Types.IChar), base),
                     Ast.Binop
                       ( Ast.Mul,
                         clong (tid_load ctx),
                         shrink_span ctx (Ast.SizeofType t) ) ) ))
        | `Shared -> Ast.Deref base
      end
    end
    else lv
  | Ast.Deref e -> (
    let pointee = Typecheck.lval_ty fe lv in
    let needs_redirect =
      mode = `Private
      && Alias.Andersen.LocSet.exists
           (fun l -> Plan.is_expanded_loc ctx.plan l)
           (Alias.Andersen.targets_of_exp ctx.plan.Plan.alias (prog ctx) f e)
    in
    if needs_redirect && ctx.plan.Plan.mode = Plan.Interleaved then
      unsupported
        "interleaved mode cannot redirect pointer-based accesses (the          recast/ambiguity cases of §3.1); use the bonded mode";
    if needs_redirect then begin
      (* span built against pre-expansion names, then itself rewritten *)
      let span = span_of ctx fe f e in
      let span = rewrite_exp ctx fe f span in
      let ptr = rewrite_exp ctx fe f e in
      private_deref ctx pointee ptr span
    end
    else Ast.Deref (rewrite_exp ctx fe f e))
  | Ast.Index _
    when ctx.plan.Plan.mode = Plan.Interleaved
         && (match index_root lv with
            | Some x ->
              Plan.expanded_var ctx.plan (Plan.qualify f x)
              && not (Hashtbl.mem ctx.scalar_privates (Plan.qualify f x))
            | None -> false) -> (
    let x = Option.get (index_root lv) in
    let indices = index_chain [] lv in
    match prim_array_dims (Typecheck.lval_ty fe (Ast.Var x)) with
    | Some (dims, elt) when List.length dims = List.length indices ->
      (* Figure 2(b) generalized to arrays: the N copies of each
         element sit adjacent, successive elements N*sizeof(elt)
         apart — base + (linear*N + tid)*sizeof(elt). This is the
         layout whose false sharing the heatmap ablation measures. *)
      let esz = Types.sizeof (prog ctx).Ast.comps Loc.dummy elt in
      let strides =
        (* per-dimension stride in elements *)
        let rec go = function
          | [] -> []
          | _ :: rest -> List.fold_left ( * ) 1 rest :: go rest
        in
        go dims
      in
      let linear =
        List.fold_left2
          (fun acc i stride ->
            let i = clong (rewrite_exp ctx fe f i) in
            let term =
              if stride = 1 then i
              else
                Ast.Binop (Ast.Mul, i, Ast.cint ~ik:Types.ILong stride)
            in
            match acc with
            | None -> Some term
            | Some a -> Some (Ast.Binop (Ast.Add, a, term)))
          None indices strides
        |> Option.get
      in
      let slot =
        let scaled = Ast.Binop (Ast.Mul, linear, clong (nthreads_load ctx)) in
        match mode with
        | `Shared -> scaled
        | `Private -> Ast.Binop (Ast.Add, scaled, clong (tid_load ctx))
      in
      let base =
        Ast.Cast
          ( Types.Tptr (Types.Tint Types.IChar),
            Ast.Lval (fresh ctx, Ast.Var (Names.exp_var x)) )
      in
      Ast.Deref
        (Ast.Cast
           ( Types.Tptr elt,
             Ast.Binop
               ( Ast.Add,
                 base,
                 Ast.Binop (Ast.Mul, slot, Ast.cint ~ik:Types.ILong esz) ) ))
    | _ ->
      unsupported
        "interleaved mode cannot lay out this view of '%s' (only          full-depth element accesses of primitive arrays interleave)"
        x)
  | Ast.Index (b, i) ->
    Ast.Index (rewrite_lval ctx fe f mode b, rewrite_exp ctx fe f i)
  | Ast.Field (b, fld) -> Ast.Field (rewrite_lval ctx fe f mode b, fld)

let rec rewrite_stmt ctx fe (f : Ast.fundef) (s : Ast.stmt) : Ast.stmt =
  let loc = s.Ast.sloc in
  match s.Ast.skind with
  | Ast.Sskip | Ast.Sbreak | Ast.Scontinue -> s
  | Ast.Sassign (aid, lv, e) ->
    Ast.mk_stmt ~loc
      (Ast.Sassign
         (aid, rewrite_access ctx fe f aid lv, rewrite_exp ctx fe f e))
  | Ast.Scall (ret, callee, args) ->
    let args = List.map (rewrite_exp ctx fe f) args in
    (if
       ctx.plan.Plan.mode = Plan.Interleaved
       && Plan.expanded_alloc ctx.plan
            (match ret with Some (a, _) -> a | None -> -1)
     then
       unsupported
         "interleaved mode cannot expand heap allocations (element layout           is unknown to the compiler, cf. the zptr recast argument)");
    let args =
      if Plan.expanded_alloc ctx.plan (match ret with Some (a, _) -> a | None -> -1)
      then
        match (callee, args) with
        | "malloc", [ n ] ->
          [ Ast.Binop (Ast.Mul, n, clong (nthreads_load ctx)) ]
        | "calloc", [ a; b ] ->
          [ Ast.Binop (Ast.Mul, a, clong (nthreads_load ctx)); b ]
        | "realloc", [ p; n ] ->
          [ p; Ast.Binop (Ast.Mul, n, clong (nthreads_load ctx)) ]
        | _ -> args
      else args
    in
    let ret =
      Option.map (fun (aid, lv) -> (aid, rewrite_access ctx fe f aid lv)) ret
    in
    Ast.mk_stmt ~loc (Ast.Scall (ret, callee, args))
  | Ast.Sseq ss ->
    Ast.mk_stmt ~loc (Ast.Sseq (List.map (rewrite_stmt ctx fe f) ss))
  | Ast.Sif (c, a, b) ->
    Ast.mk_stmt ~loc
      (Ast.Sif
         (rewrite_exp ctx fe f c, rewrite_stmt ctx fe f a,
          rewrite_stmt ctx fe f b))
  | Ast.Swhile (lid, c, body) ->
    Ast.mk_stmt ~loc
      (Ast.Swhile (lid, rewrite_exp ctx fe f c, rewrite_stmt ctx fe f body))
  | Ast.Sfor (lid, init, c, step, body) ->
    Ast.mk_stmt ~loc
      (Ast.Sfor
         ( lid,
           rewrite_stmt ctx fe f init,
           rewrite_exp ctx fe f c,
           rewrite_stmt ctx fe f step,
           rewrite_stmt ctx fe f body ))
  | Ast.Sreturn e ->
    Ast.mk_stmt ~loc (Ast.Sreturn (Option.map (rewrite_exp ctx fe f) e))

(** Expanded locals of a function, with their original types. *)
let expanded_locals ctx (f : Ast.fundef) : (string * Types.ty) list =
  List.filter
    (fun (x, _) -> Plan.expanded_var ctx.plan (f.Ast.fname ^ "::" ^ x))
    f.Ast.flocals

(** Entry allocations / exit frees for a function's expanded locals,
    and the declaration replacement (Table 1, applied via the heap
    rule since MiniC has no variable-length arrays). *)
let heapify_locals ctx (f : Ast.fundef) : Ast.fundef =
  let exps = expanded_locals ctx f in
  if exps = [] then f
  else begin
    let allocs =
      List.map
        (fun (x, t) ->
          let aid = fresh ctx in
          Hashtbl.replace ctx.plan.Plan.generated_allocs aid ();
          Ast.mk_stmt
            (Ast.Scall
               ( Some (aid, Ast.Var (Names.exp_var x)),
                 "malloc",
                 [
                   Ast.Binop
                     (Ast.Mul, Ast.SizeofType t, clong (nthreads_load ctx));
                 ] )))
        exps
    in
    let frees () =
      List.map
        (fun (x, _) ->
          Ast.mk_stmt
            (Ast.Scall
               (None, "free", [ Ast.Lval (fresh ctx, Ast.Var (Names.exp_var x)) ])))
        exps
    in
    (* free before each return, evaluating the return value first *)
    let ret_tmp = ref None in
    let get_ret_tmp () =
      match !ret_tmp with
      | Some t -> t
      | None ->
        let t = Ast.fresh_var (prog ctx) "ret" in
        ret_tmp := Some t;
        t
    in
    let rec fix (s : Ast.stmt) : Ast.stmt =
      match s.Ast.skind with
      | Ast.Sreturn (Some e) ->
        let t = get_ret_tmp () in
        Ast.mk_stmt ~loc:s.Ast.sloc
          (Ast.Sseq
             (Ast.mk_stmt (Ast.Sassign (fresh ctx, Ast.Var t, e))
              :: frees ()
             @ [ Ast.mk_stmt (Ast.Sreturn (Some (Ast.Lval (fresh ctx, Ast.Var t)))) ]))
      | Ast.Sreturn None ->
        Ast.mk_stmt ~loc:s.Ast.sloc
          (Ast.Sseq (frees () @ [ Ast.mk_stmt (Ast.Sreturn None) ]))
      | Ast.Sseq ss -> Ast.mk_stmt ~loc:s.Ast.sloc (Ast.Sseq (List.map fix ss))
      | Ast.Sif (c, a, b) ->
        Ast.mk_stmt ~loc:s.Ast.sloc (Ast.Sif (c, fix a, fix b))
      | Ast.Swhile (lid, c, body) ->
        Ast.mk_stmt ~loc:s.Ast.sloc (Ast.Swhile (lid, c, fix body))
      | Ast.Sfor (lid, init, c, step, body) ->
        Ast.mk_stmt ~loc:s.Ast.sloc (Ast.Sfor (lid, init, c, step, fix body))
      | _ -> s
    in
    let body = fix f.Ast.fbody in
    (* fall-through exit also frees *)
    let body = Ast.mk_stmt (Ast.Sseq (allocs @ [ body ] @ frees ())) in
    let locals =
      List.filter_map
        (fun (x, t) ->
          if List.mem_assoc x exps then None else Some (x, t))
        f.Ast.flocals
      @ List.map (fun (x, t) -> (Names.exp_var x, Types.Tptr t)) exps
      @
      match !ret_tmp with
      | Some t -> [ (t, f.Ast.freturn) ]
      | None -> []
    in
    { f with Ast.flocals = locals; fbody = body }
  end

(** Element-wise stores realizing a global initializer into copy 0 of
    its heap conversion. *)
let rec init_stores ctx (root : Ast.lval) (t : Types.ty) (ini : Ast.init) :
    Ast.stmt list =
  match (t, ini) with
  | Types.Tarray (elt, _), Ast.Ilist items ->
    List.concat
      (List.mapi
         (fun i item ->
           init_stores ctx (Ast.Index (root, Ast.cint i)) elt item)
         items)
  | Types.Tstruct tag, Ast.Ilist items ->
    let c = Types.find_composite (prog ctx).Ast.comps Loc.dummy tag in
    List.concat
      (List.mapi
         (fun i item ->
           let fld, ft = List.nth c.Types.cfields i in
           init_stores ctx (Ast.Field (root, fld)) ft item)
         items)
  | _, Ast.Iexp e -> [ Ast.mk_stmt (Ast.Sassign (fresh ctx, root, e)) ]
  | _, Ast.Ilist _ -> unsupported "initializer shape for expanded global"

(** Decide which expanded variables become OpenMP-style private locals
    instead of heap replicas: scalars whose accesses all live in a
    single function and that no pointer may target. Such a variable's
    private accesses never leak values across iterations (Definition 5
    guarantees write-before-read), so a per-thread local — which a real
    compiler keeps in a register — is observationally equivalent to the
    tid-th heap copy. The shared copy stays in the original storage. *)
let compute_scalar_privates (ctx : tctx) : unit =
  let p = prog ctx in
  let pointed = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ set ->
      Alias.Andersen.LocSet.iter
        (function
          | Alias.Andersen.LVar q -> Hashtbl.replace pointed q ()
          | _ -> ())
        set)
    ctx.plan.Plan.alias.Alias.Andersen.pts;
  let owners : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (f : Ast.fundef) ->
      List.iter
        (fun (a : Visit.access) ->
          let rec root = function
            | Ast.Var x -> Some x
            | Ast.Deref _ -> None
            | Ast.Index (b, _) | Ast.Field (b, _) -> root b
          in
          match root a.Visit.acc_lval with
          | Some x ->
            let q = Plan.qualify f x in
            let fns = Option.value ~default:[] (Hashtbl.find_opt owners q) in
            if not (List.mem f.Ast.fname fns) then
              Hashtbl.replace owners q (f.Ast.fname :: fns)
          | None -> ())
        (Visit.accesses_of_fun f))
    (Ast.functions p);
  let candidates = Hashtbl.fold (fun q () acc -> q :: acc) ctx.plan.Plan.expand_vars [] in
  List.iter
    (fun q ->
      let fn_opt, x = Plan.unqualify q in
      let ty =
        match fn_opt with
        | Some fn -> (
          match Ast.find_fun p fn with
          | Some f -> List.assoc_opt x f.Ast.flocals
          | None -> None)
        | None -> Option.map fst (Ast.find_gvar p x)
      in
      match (ty, Hashtbl.find_opt owners q) with
      | Some t, Some [ owner ]
        when Types.is_scalar (Types.decay t)
             && (match t with Types.Tarray _ -> false | _ -> true)
             && (not (Hashtbl.mem pointed q))
             && (match fn_opt with Some fn -> String.equal fn owner | None -> true)
        ->
        Hashtbl.replace ctx.scalar_privates q owner;
        Hashtbl.remove ctx.plan.Plan.expand_vars q
      | _ -> ())
    candidates

(** The type of an expanded variable [x] as visible in function [f]
    (pre-replacement declarations are still in place during pass 2). *)
let expanded_var_ty (p : Ast.program) (f : Ast.fundef) (x : string) : Types.ty =
  match List.assoc_opt x f.Ast.flocals with
  | Some t -> t
  | None -> (
    match Ast.find_gvar p x with
    | Some (t, _) -> t
    | None -> invalid_arg ("expanded_var_ty: " ^ x))

let pass2 (ctx : tctx) : unit =
  let p = prog ctx in
  compute_scalar_privates ctx;
  let env = Typecheck.make_env p in
  let target_lids =
    List.map
      (fun (a : Privatize.Analyze.result) ->
        a.Privatize.Analyze.profile.Depgraph.Profiler.graph.Depgraph.Graph.loop)
      ctx.plan.Plan.analyses
  in
  (* rewrite all function bodies, then heapify expanded locals *)
  let new_funs =
    List.map
      (fun (f : Ast.fundef) ->
        let fe = Typecheck.fenv_of env f in
        ctx.cur_bases <- Hashtbl.create 8;
        let body = rewrite_stmt ctx fe f f.Ast.fbody in
        let bases =
          Hashtbl.fold (fun x (s, pr) acc -> (x, s, pr) :: acc) ctx.cur_bases []
          |> List.sort compare
        in
        let base_locals =
          List.concat_map
            (fun (x, s, pr) ->
              let t = Types.Tptr (expanded_var_ty p f x) in
              (if s then [ (shared_base x, t) ] else [])
              @ if pr then [ (private_base x, t) ] else [])
            bases
        in
        let compute ~with_shared () =
          List.concat_map
            (fun (x, s, pr) ->
              let holder () = Ast.Lval (fresh ctx, Ast.Var (Names.exp_var x)) in
              (if s && with_shared then
                 [
                   Ast.mk_stmt
                     (Ast.Sassign (fresh ctx, Ast.Var (shared_base x), holder ()));
                 ]
               else [])
              @
              if pr then
                let t = expanded_var_ty p f x in
                let rhs =
                  if ctx.span_shrink = 0 then
                    Ast.Binop (Ast.Add, holder (), tid_load ctx)
                  else
                    (* injected fault: recompute the base in byte
                       arithmetic through the truncated span *)
                    Ast.Cast
                      ( Types.Tptr t,
                        Ast.Binop
                          ( Ast.Add,
                            Ast.Cast
                              (Types.Tptr (Types.Tint Types.IChar), holder ()),
                            Ast.Binop
                              ( Ast.Mul,
                                clong (tid_load ctx),
                                shrink_span ctx (Ast.SizeofType t) ) ) )
                in
                [
                  Ast.mk_stmt
                    (Ast.Sassign (fresh ctx, Ast.Var (private_base x), rhs));
                ]
              else [])
            bases
        in
        (* refresh private bases at the top of each target loop's body
           (the scheduler changes __tid between iterations there) *)
        let rec refresh (s : Ast.stmt) : Ast.stmt =
          match s.Ast.skind with
          | Ast.Swhile (lid, c, body) when List.mem lid target_lids ->
            let body = refresh body in
            {
              s with
              Ast.skind =
                Ast.Swhile
                  (lid, c, Ast.mk_stmt (Ast.Sseq (compute ~with_shared:false () @ [ body ])));
            }
          | Ast.Sfor (lid, init, c, step, body) when List.mem lid target_lids ->
            let body = refresh body in
            {
              s with
              Ast.skind =
                Ast.Sfor
                  ( lid,
                    init,
                    c,
                    step,
                    Ast.mk_stmt (Ast.Sseq (compute ~with_shared:false () @ [ body ])) );
            }
          | Ast.Sseq ss -> { s with Ast.skind = Ast.Sseq (List.map refresh ss) }
          | Ast.Sif (c, a, b) ->
            { s with Ast.skind = Ast.Sif (c, refresh a, refresh b) }
          | Ast.Swhile (lid, c, body) ->
            { s with Ast.skind = Ast.Swhile (lid, c, refresh body) }
          | Ast.Sfor (lid, init, c, step, body) ->
            { s with Ast.skind = Ast.Sfor (lid, init, c, step, refresh body) }
          | _ -> s
        in
        let body = if bases = [] then body else refresh body in
        (* per-thread scalar privates owned by this function *)
        let prv_locals =
          Hashtbl.fold
            (fun q owner acc ->
              if String.equal owner f.Ast.fname then begin
                let fn_opt, x = Plan.unqualify q in
                let ty =
                  match fn_opt with
                  | Some _ -> List.assoc x f.Ast.flocals
                  | None -> fst (Option.get (Ast.find_gvar p x))
                in
                (private_scalar x, ty) :: acc
              end
              else acc)
            ctx.scalar_privates []
        in
        let f = { f with Ast.flocals = f.Ast.flocals @ prv_locals } in
        let n_heap_locals = List.length (expanded_locals ctx f) in
        let f = heapify_locals ctx { f with Ast.fbody = body } in
        (* entry computation goes after heapify's allocations *)
        if bases = [] then f
        else
          {
            f with
            Ast.flocals = f.Ast.flocals @ base_locals;
            fbody =
              Ast.mk_stmt
                (Ast.Sseq
                   (match f.Ast.fbody.Ast.skind with
                   | Ast.Sseq allocs_and_body when n_heap_locals > 0 -> (
                     (* heapify produced [allocs @ body @ frees]; the
                        base computation must follow the allocations *)
                     let rec split i rest =
                       match (i, rest) with
                       | 0, rest -> ([], rest)
                       | i, x :: rest ->
                         let a, b = split (i - 1) rest in
                         (x :: a, b)
                       | _, [] -> ([], [])
                     in
                     match split n_heap_locals allocs_and_body with
                     | allocs, rest ->
                       allocs @ compute ~with_shared:true () @ rest)
                   | _ -> compute ~with_shared:true () @ [ f.Ast.fbody ]));
          })
      (Ast.functions p)
  in
  List.iter (Ast.replace_fun p) new_funs;
  (* expanded globals: demote to heap pointers, build __exp_init *)
  let exp_globals =
    List.filter
      (fun (x, _, _) -> Plan.expanded_var ctx.plan x)
      (Ast.global_vars p)
  in
  let init_body =
    (* default thread count *)
    Ast.mk_stmt
      (Ast.Sif
         ( Ast.Binop (Ast.Lt, nthreads_load ctx, Ast.cone),
           Ast.mk_stmt (Ast.Sassign (fresh ctx, Ast.Var Names.nthreads, Ast.cone)),
           Ast.skip ))
    ::
    List.concat_map
      (fun (x, t, ini) ->
        let alloc =
          let aid = fresh ctx in
          Hashtbl.replace ctx.plan.Plan.generated_allocs aid ();
          Ast.mk_stmt
            (Ast.Scall
               ( Some (aid, Ast.Var (Names.exp_var x)),
                 "malloc",
                 [
                   Ast.Binop
                     (Ast.Mul, Ast.SizeofType t, clong (nthreads_load ctx));
                 ] ))
        in
        let root =
          Ast.Deref (Ast.Lval (fresh ctx, Ast.Var (Names.exp_var x)))
        in
        let stores =
          match ini with
          | None -> []
          | Some (Ast.Iexp e) ->
            [ Ast.mk_stmt (Ast.Sassign (fresh ctx, root, e)) ]
          | Some ini -> init_stores ctx root t ini
        in
        alloc :: stores)
      exp_globals
  in
  let init_fun =
    {
      Ast.fname = Names.init_fun;
      freturn = Types.Tvoid;
      fformals = [];
      flocals = [];
      fbody = Ast.mk_stmt (Ast.Sseq init_body);
    }
  in
  (* replace expanded global declarations *)
  p.Ast.globals <-
    Ast.Gvar (Names.tid, int_t, None)
    :: Ast.Gvar (Names.nthreads, int_t, None)
    :: List.concat_map
         (fun g ->
           match g with
           | Ast.Gvar (x, t, _) when Plan.expanded_var ctx.plan x ->
             [ Ast.Gvar (Names.exp_var x, Types.Tptr t, None) ]
           | g -> [ g ])
         p.Ast.globals
    @ [ Ast.Gfun init_fun ];
  (* main calls the initializer first *)
  match Ast.find_fun p "main" with
  | None -> unsupported "program has no main"
  | Some main ->
    let body =
      Ast.mk_stmt
        (Ast.Sseq
           [ Ast.mk_stmt (Ast.Scall (None, Names.init_fun, [])); main.Ast.fbody ])
    in
    Ast.replace_fun p { main with Ast.fbody = body }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

type result = {
  plan : Plan.t;
  transformed : Ast.program;
  privatized : int;  (** Table 5's count of privatized data structures *)
  opt_stats : Optim.Spanopt.stats option;
      (** §3.4 statistics when the optimized pipeline ran *)
}

(** Expand [orig] for the analyzed loops. The result reads the runtime
    globals [__nthreads] (set before [main] runs; defaults to 1) and
    [__tid] (set by the parallel scheduler between iterations; 0 means
    the shared copy, so plain sequential execution is unchanged). *)
let is_span_name (x : string) : bool =
  let has_prefix p =
    String.length x >= String.length p && String.sub x 0 (String.length p) = p
  in
  has_prefix "__span_" || has_prefix "__retspan_"

let expand_loops ?(mode = Plan.Bonded) ?(selective = true)
    ?(optimize = true) ?(span_shrink = 0) (orig : Ast.program)
    (analyses : Privatize.Analyze.result list) : result =
  let plan =
    Telemetry.Span.wall "phase.plan" (fun () ->
        Plan.make ~mode ~selective orig analyses)
  in
  Telemetry.Span.wall "phase.expand" @@ fun () ->
  let ctx =
    {
      plan;
      retspan_funs = Hashtbl.create 8;
      cache_bases = optimize;
      cur_bases = Hashtbl.create 8;
      scalar_privates = Hashtbl.create 8;
      span_shrink;
    }
  in
  pass1 ctx;
  pass2 ctx;
  (* §3.4 overhead reduction over the span shadows *)
  let opt_stats =
    if optimize then
      Some (Optim.Spanopt.optimize plan.Plan.prog ~is_candidate:is_span_name)
    else None
  in
  (* validate the transformed program; this also normalizes the new
     statement nesting introduced by the rewriting *)
  Typecheck.check plan.Plan.prog;
  Telemetry.Span.count "expand.privatized" (Plan.privatized_count plan);
  if Telemetry.Sink.enabled () then
    List.iter
      (fun (lc : Plan.layout_choice) ->
        Telemetry.Span.count ("plan.layout." ^ Plan.mode_name lc.Plan.lc_mode)
          1;
        if lc.Plan.lc_interleavable then
          Telemetry.Span.count "plan.layout.interleavable" 1)
      (Plan.layout plan);
  (match opt_stats with
  | Some st ->
    Telemetry.Span.count "expand.spanopt.self_assigns_removed"
      st.Optim.Spanopt.self_assigns_removed;
    Telemetry.Span.count "expand.spanopt.dead_stores_removed"
      st.Optim.Spanopt.dead_stores_removed;
    Telemetry.Span.count "expand.spanopt.loads_propagated"
      st.Optim.Spanopt.loads_propagated
  | None -> ());
  {
    plan;
    transformed = plan.Plan.prog;
    privatized = Plan.privatized_count plan;
    opt_stats;
  }

let expand ?mode ?selective ?optimize ?span_shrink (orig : Ast.program)
    (analysis : Privatize.Analyze.result) : result =
  expand_loops ?mode ?selective ?optimize ?span_shrink orig [ analysis ]
