(** The MiniC abstract machine.

    Programs are compiled once into OCaml closures. The machine is
    deterministic and instrumented: every dynamic memory access
    reports (access id, kind, address, size) to an optional observer
    (the dependence profiler); every access may be surcharged by an
    optional access-cost hook (the cache model); loops report
    enter/iteration/exit events; frees report (base, size); cycle and
    instruction-class counters implement the cost model described in
    DESIGN.md. *)

open Minic

type value = Vint of int64 | Vfloat of float

type stats = {
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_arith : int;
  mutable n_branches : int;
  mutable n_calls : int;
  mutable n_allocs : int;
}

(** [Iter i] fires {e before} iteration [i]'s condition is evaluated,
    so condition accesses attribute to the iteration about to run; a
    loop that exits via its condition reports one trailing [Iter]. *)
type loop_event = Enter | Iter of int | Exit

type state = {
  mem : Memory.t;
  out : Buffer.t;  (** captured program stdout *)
  global_addrs : (string, int) Hashtbl.t;
  stack_base : int;
  stack_limit : int;
  mutable sp : int;
  mutable frame : int;
  mutable cycles : int;
  stats : stats;
  mutable observer : (Ast.aid -> Visit.access_kind -> int -> int -> unit) option;
      (** fires on every access; for stores it fires {e after} the
          write, so an observer may read the just-stored value *)
  mutable access_extra : (Visit.access_kind -> int -> int -> int) option;
  mutable loop_hook : (Ast.lid -> loop_event -> unit) option;
  mutable free_hook : (int -> int -> unit) option;
  mutable alloc_hook : (Ast.aid option -> int -> int -> unit) option;
      (** (ret-store aid, base, requested size) after malloc / calloc /
          realloc; the aid is that of the call's return-value store *)
  mutable rand_state : int64;
  mutable fuel : int;  (** decremented per loop iteration and call *)
  mutable iter_skip : bool;
      (** set by a loop hook at [Iter i] to skip that iteration's body
          while still running the condition and step; the domain
          executor walks a distributed loop's traversal with this,
          executing only the chunks it owns. Cleared automatically
          after each iteration *)
  mutable bulk_hook : (int -> int option -> int -> unit) option;
      (** (dst, src, len) after a bulk byte move — memset (src =
          [None]), memcpy, and the copying half of realloc; complements
          [observer], which only reports scalar accesses *)
}

exception Runtime_error of string
exception Exit_program of int

(** A loaded (closure-compiled) program with its execution state. *)
type t = {
  st : state;
  prog : Ast.program;
  funs : (string, cfun option ref) Hashtbl.t;
  mutable inits : (unit -> unit) list;
}

and cfun

(** Address of a global variable.
    @raise Runtime_error for unknown names. *)
val global_addr : state -> string -> int

(** Poke/peek int globals from the host (the parallel simulator sets
    [__tid] between iterations and [__nthreads] before the run). *)
val set_global_int : state -> string -> int -> unit

val get_global_int : state -> string -> int

(** Captured stdout so far. *)
val output : state -> string

(** Compile-time constant folding over integer literals and [sizeof]. *)
val fold_constants : Types.composite_env -> Ast.exp -> Ast.exp

(** Compile a type-checked program into a runnable machine. *)
val load : Ast.program -> t

(** Run [main] (after global initializers); returns the exit code. *)
val run : t -> int

(** [load] + [run], returning (exit code, captured stdout). *)
val run_program : Ast.program -> int * string
