(** Byte-addressed flat memory for the MiniC interpreter.

    A single growable byte arena backs globals, the stack and the heap.
    Address 0 is the null pointer; the first [base_address] bytes are
    never handed out, so small integers cast to pointers fault. A
    size-bucketed free list recycles freed blocks, and live-byte peak
    tracking feeds the paper's Figure 14 (memory-use multiples). *)

type t = {
  mutable data : Bytes.t;
  mutable brk : int;  (** first unallocated byte *)
  blocks : (int, int) Hashtbl.t;  (** base address -> usable size *)
  free_lists : (int, int list ref) Hashtbl.t;  (** size bucket -> bases *)
  mutable live_bytes : int;
  mutable peak_bytes : int;
  mutable alloc_count : int;
  mutable fail_countdown : int option;
      (** fault injection: [Some n] makes the [n]-th subsequent tracked
          allocation raise {!Fault} (an out-of-memory model) *)
}

exception Fault of string

let fault fmt = Printf.ksprintf (fun m -> raise (Fault m)) fmt

let base_address = 64

let create ?(initial = 1 lsl 16) () =
  {
    data = Bytes.make (max initial base_address) '\000';
    brk = base_address;
    blocks = Hashtbl.create 64;
    free_lists = Hashtbl.create 16;
    live_bytes = 0;
    peak_bytes = 0;
    alloc_count = 0;
    fail_countdown = None;
  }

let ensure m size =
  let cap = Bytes.length m.data in
  if m.brk + size > cap then begin
    let cap' = max (2 * cap) (m.brk + size) in
    let data' = Bytes.make cap' '\000' in
    Bytes.blit m.data 0 data' 0 m.brk;
    m.data <- data'
  end

(* Allocation is bucketed by rounded-up size so freed blocks of the
   same bucket are reused exactly; this keeps repeated malloc/free
   loops (dijkstra's queue nodes) at a flat memory profile. *)
let bucket_of size =
  let rec go b = if b >= size then b else go (2 * b) in
  go 16

let align8 n = (n + 7) land lnot 7

let alloc ?(track = true) m size : int =
  if size < 0 then fault "allocation of negative size %d" size;
  (if track then
     match m.fail_countdown with
     | Some n when n <= 1 ->
       m.fail_countdown <- None;
       fault "injected allocation failure (size %d)" size
     | Some n -> m.fail_countdown <- Some (n - 1)
     | None -> ());
  let size = max size 1 in
  let bucket = bucket_of size in
  let base =
    match Hashtbl.find_opt m.free_lists bucket with
    | Some ({ contents = base :: rest } as l) ->
      l := rest;
      (* freed blocks keep stale contents; fresh allocations are
         zeroed like calloc to keep runs deterministic *)
      Bytes.fill m.data base bucket '\000';
      base
    | _ ->
      ensure m (bucket + 8);
      let base = align8 m.brk in
      m.brk <- base + bucket;
      base
  in
  Hashtbl.replace m.blocks base size;
  if track then begin
    m.live_bytes <- m.live_bytes + bucket;
    m.alloc_count <- m.alloc_count + 1;
    if m.live_bytes > m.peak_bytes then m.peak_bytes <- m.live_bytes
  end;
  base

let block_size m base =
  match Hashtbl.find_opt m.blocks base with
  | Some s -> s
  | None -> fault "not the base of a live allocation: %d" base

let free m base =
  if base <> 0 then begin
    let size = block_size m base in
    let bucket = bucket_of size in
    Hashtbl.remove m.blocks base;
    m.live_bytes <- m.live_bytes - bucket;
    let l =
      match Hashtbl.find_opt m.free_lists bucket with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace m.free_lists bucket l;
        l
    in
    l := base :: !l
  end

let check m addr size =
  if addr < base_address || addr + size > m.brk then
    fault "out-of-bounds access: address %d, size %d (arena ends at %d)" addr
      size m.brk

(* Little-endian fixed-width accessors; loads sign-extend, matching
   MiniC's all-signed integer model. *)

let load m addr size : int64 =
  check m addr size;
  match size with
  | 1 -> Int64.of_int (Bytes.get_int8 m.data addr)
  | 2 -> Int64.of_int (Bytes.get_int16_le m.data addr)
  | 4 -> Int64.of_int32 (Bytes.get_int32_le m.data addr)
  | 8 -> Bytes.get_int64_le m.data addr
  | _ -> fault "unsupported load width %d" size

let store m addr size (v : int64) : unit =
  check m addr size;
  match size with
  | 1 -> Bytes.set_uint8 m.data addr (Int64.to_int v land 0xff)
  | 2 -> Bytes.set_uint16_le m.data addr (Int64.to_int v land 0xffff)
  | 4 -> Bytes.set_int32_le m.data addr (Int64.to_int32 v)
  | 8 -> Bytes.set_int64_le m.data addr v
  | _ -> fault "unsupported store width %d" size

let load_float m addr size : float =
  check m addr size;
  match size with
  | 4 -> Int32.float_of_bits (Bytes.get_int32_le m.data addr)
  | 8 -> Int64.float_of_bits (Bytes.get_int64_le m.data addr)
  | _ -> fault "unsupported float load width %d" size

let store_float m addr size (f : float) : unit =
  check m addr size;
  match size with
  | 4 -> Bytes.set_int32_le m.data addr (Int32.bits_of_float f)
  | 8 -> Bytes.set_int64_le m.data addr (Int64.bits_of_float f)
  | _ -> fault "unsupported float store width %d" size

(* Raw byte windows, used by the domain executor to capture store
   values into a write log and replay them on sibling machines. *)

let read_raw m addr len : string =
  check m addr len;
  Bytes.sub_string m.data addr len

let write_raw m addr (s : string) : unit =
  check m addr (String.length s);
  Bytes.blit_string s 0 m.data addr (String.length s)

let blit m ~src ~dst ~len =
  check m src len;
  check m dst len;
  Bytes.blit m.data src m.data dst len

let fill m ~dst ~len byte =
  check m dst len;
  Bytes.fill m.data dst len (Char.chr (byte land 0xff))

(** Store an OCaml string as a NUL-terminated C string. *)
let write_cstring m s : int =
  let base = alloc m (String.length s + 1) in
  Bytes.blit_string s 0 m.data base (String.length s);
  Bytes.set m.data (base + String.length s) '\000';
  base

let read_cstring m addr : string =
  check m addr 1;
  let rec find_end i =
    if i >= m.brk then fault "unterminated string at %d" addr
    else if Bytes.get m.data i = '\000' then i
    else find_end (i + 1)
  in
  let stop = find_end addr in
  Bytes.sub_string m.data addr (stop - addr)

let live_bytes m = m.live_bytes
let peak_bytes m = m.peak_bytes
let alloc_count m = m.alloc_count

let set_alloc_fault m n =
  if n <= 0 then invalid_arg "set_alloc_fault: n must be positive";
  m.fail_countdown <- Some n

let clear_alloc_fault m = m.fail_countdown <- None

let find_block m addr : (int * int) option =
  Hashtbl.fold
    (fun base size acc ->
      match acc with
      | Some _ -> acc
      | None -> if addr >= base && addr < base + size then Some (base, size) else None)
    m.blocks None
