(** The MiniC abstract machine.

    Programs are compiled once into OCaml closures (an order of
    magnitude faster than AST walking, which matters because the
    evaluation re-runs every benchmark under many configurations). The
    machine is deterministic and instrumented:

    - every dynamic memory access reports (access id, kind, address,
      size) to an optional {e observer} — the dependence profiler;
    - every access may be surcharged by an optional {e access-cost}
      hook — the cache model of the parallel simulator;
    - every loop reports enter / iteration / exit events to an optional
      {e loop hook} — the parallel simulator's scheduler;
    - cycle and instruction-class counters implement the cost model.

    All of C that the frontend accepts is supported; the interesting
    cases are byte-accurate struct layout, pointer arithmetic with
    scaling, 32-bit wraparound on [int] arithmetic, and type recasting
    through memory (bzip2's short/int [zptr] idiom). *)

open Minic

type value = Vint of int64 | Vfloat of float

type stats = {
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_arith : int;
  mutable n_branches : int;
  mutable n_calls : int;
  mutable n_allocs : int;
}

let empty_stats () =
  {
    n_loads = 0;
    n_stores = 0;
    n_arith = 0;
    n_branches = 0;
    n_calls = 0;
    n_allocs = 0;
  }

type loop_event = Enter | Iter of int | Exit

type state = {
  mem : Memory.t;
  out : Buffer.t;
  global_addrs : (string, int) Hashtbl.t;
  stack_base : int;
  stack_limit : int;
  mutable sp : int;  (** next free stack byte *)
  mutable frame : int;  (** current frame base *)
  mutable cycles : int;
  stats : stats;
  mutable observer : (Ast.aid -> Visit.access_kind -> int -> int -> unit) option;
  mutable access_extra : (Visit.access_kind -> int -> int -> int) option;
  mutable loop_hook : (Ast.lid -> loop_event -> unit) option;
  mutable free_hook : (int -> int -> unit) option;
      (** (base, size) on free/realloc: a freed block's bytes carry no
          dependences into their next allocation (a thread-safe
          allocator hands parallel threads distinct blocks), so the
          dependence profiler clears their shadow state *)
  mutable alloc_hook : (Ast.aid option -> int -> int -> unit) option;
      (** (ret-store aid, base, requested size) after malloc / calloc /
          realloc; the aid is that of the call's return-value store,
          [None] when the result is discarded. Span guards use it to
          recognise expanded blocks by their allocation site *)
  mutable rand_state : int64;
  mutable fuel : int;  (** decremented per loop iteration and call *)
  mutable iter_skip : bool;
      (** when set by a loop hook at [Iter i], the body of that
          iteration is skipped (condition and step still run); the
          domain executor uses this to walk a distributed loop's
          traversal while executing only the iterations it owns *)
  mutable bulk_hook : (int -> int option -> int -> unit) option;
      (** (dst, src, len) after a bulk byte move: memset (src = None),
          memcpy and the copying half of realloc. Complements
          [observer], which only sees scalar accesses *)
}

exception Runtime_error of string
exception Exit_program of int

let runtime_error fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

exception Break_exc
exception Continue_exc
exception Return_exc of value

(* ------------------------------------------------------------------ *)
(* Value helpers                                                       *)
(* ------------------------------------------------------------------ *)

let as_int = function
  | Vint v -> v
  | Vfloat f -> runtime_error "expected an integer value, got float %g" f

let as_float = function Vfloat f -> f | Vint v -> Int64.to_float v

let truthy = function Vint v -> v <> 0L | Vfloat f -> f <> 0.0

(** Sign-extending truncation to the width of an integer kind; MiniC
    [int] arithmetic wraps at 32 bits like the C it models. *)
let trunc_ikind (ik : Types.ikind) (v : int64) : int64 =
  match ik with
  | Types.ILong -> v
  | Types.IInt -> Int64.shift_right (Int64.shift_left v 32) 32
  | Types.IShort -> Int64.shift_right (Int64.shift_left v 48) 48
  | Types.IChar -> Int64.shift_right (Int64.shift_left v 56) 56

let round_float_kind (fk : Types.fkind) (f : float) : float =
  match fk with
  | Types.FDouble -> f
  | Types.FFloat -> Int32.float_of_bits (Int32.bits_of_float f)

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

let stack_size = 4 lsl 20

let make_state () : state =
  let mem = Memory.create ~initial:(8 lsl 20) () in
  (* the simulated call stack is machinery, not program data:
     keep it out of the heap/static footprint that Figure 14 measures *)
  let stack_base = Memory.alloc ~track:false mem stack_size in
  {
    mem;
    out = Buffer.create 256;
    global_addrs = Hashtbl.create 32;
    stack_base;
    stack_limit = stack_base + stack_size;
    sp = stack_base;
    frame = stack_base;
    cycles = 0;
    stats = empty_stats ();
    observer = None;
    access_extra = None;
    loop_hook = None;
    free_hook = None;
    alloc_hook = None;
    rand_state = 0x9E3779B97F4A7C15L;
    fuel = 2_000_000_000;
    iter_skip = false;
    bulk_hook = None;
  }

let global_addr st name =
  match Hashtbl.find_opt st.global_addrs name with
  | Some a -> a
  | None -> runtime_error "unknown global '%s'" name

(** Poke/peek globals from the host (the parallel simulator uses this
    to set [__tid] between iterations). *)
let set_global_int st name (v : int) =
  Memory.store st.mem (global_addr st name) 4 (Int64.of_int v)

let get_global_int st name =
  Int64.to_int (Memory.load st.mem (global_addr st name) 4)

let output st = Buffer.contents st.out

(* ------------------------------------------------------------------ *)
(* Access accounting                                                   *)
(* ------------------------------------------------------------------ *)

let do_load st aid addr size =
  st.stats.n_loads <- st.stats.n_loads + 1;
  st.cycles <-
    st.cycles + Cost.load
    + (match st.access_extra with
      | None -> 0
      | Some f -> f Visit.Load addr size);
  (match st.observer with None -> () | Some f -> f aid Visit.Load addr size)

let do_store st aid addr size =
  st.stats.n_stores <- st.stats.n_stores + 1;
  st.cycles <-
    st.cycles + Cost.store
    + (match st.access_extra with
      | None -> 0
      | Some f -> f Visit.Store addr size);
  (match st.observer with None -> () | Some f -> f aid Visit.Store addr size)

(* Register-resident scalars: a compiler keeps a non-address-taken
   scalar local in a register, so its accesses cost one issue slot and
   never touch the cache model. The dependence observer still sees
   them (they are accesses, and argument/stack reuse must profile
   correctly); only the cost differs. *)
let do_load_reg st aid addr size =
  st.stats.n_loads <- st.stats.n_loads + 1;
  st.cycles <- st.cycles + Cost.arith;
  match st.observer with None -> () | Some f -> f aid Visit.Load addr size

let do_store_reg st aid addr size =
  st.stats.n_stores <- st.stats.n_stores + 1;
  st.cycles <- st.cycles + Cost.arith;
  match st.observer with None -> () | Some f -> f aid Visit.Store addr size

let charge st c = st.cycles <- st.cycles + c

let burn_fuel st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then runtime_error "fuel exhausted (infinite loop?)"

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

type cfun = {
  cf_frame_size : int;
  cf_formals : (int * Types.ty * Ast.aid) list;
      (** frame offset, type, and the synthetic access id of the
          argument-binding store. Binding an argument writes the
          formal's stack slot and must be visible to the dependence
          profiler like any other store — otherwise a stale local of a
          previously-popped frame at the same address would appear to
          flow into the formal. *)
  cf_body : unit -> unit;  (** raises [Return_exc] to produce a value *)
  cf_ret : Types.ty;
}

type t = {
  st : state;
  prog : Ast.program;
  funs : (string, cfun option ref) Hashtbl.t;
  mutable inits : (unit -> unit) list;  (** global initializers, in order *)
}

let scalar_width _comps loc (t : Types.ty) : int =
  match t with
  | Types.Tint ik -> Types.ikind_size ik
  | Types.Tfloat fk -> Types.fkind_size fk
  | Types.Tptr _ -> 8
  | t ->
    Loc.error loc "expected a scalar type, got %s" (Types.show_ty t)

(** Store a scalar [value] of static type [t] at [addr], converting the
    value to the destination representation first. *)
let store_scalar st _comps loc (t : Types.ty) addr (v : value) =
  match t with
  | Types.Tint ik -> Memory.store st.mem addr (Types.ikind_size ik)
      (match v with Vint i -> i | Vfloat f -> Int64.of_float f)
  | Types.Tfloat fk ->
    Memory.store_float st.mem addr (Types.fkind_size fk) (as_float v)
  | Types.Tptr _ -> Memory.store st.mem addr 8 (as_int v)
  | t -> Loc.error loc "cannot store into type %s" (Types.show_ty t)

let load_scalar st loc (t : Types.ty) addr : value =
  match t with
  | Types.Tint ik -> Vint (Memory.load st.mem addr (Types.ikind_size ik))
  | Types.Tfloat fk -> Vfloat (Memory.load_float st.mem addr (Types.fkind_size fk))
  | Types.Tptr _ -> Vint (Memory.load st.mem addr 8)
  | t -> Loc.error loc "cannot load from type %s" (Types.show_ty t)

type ctx = {
  m : t;
  fe : Typecheck.fenv;
  slots : (string, int) Hashtbl.t;  (** local name -> frame offset *)
  regs : (string, unit) Hashtbl.t;
      (** register-allocatable locals: scalar, address never taken *)
}

let comps ctx = ctx.m.prog.Ast.comps

(** Coerce a compiled value from type [src] to type [dst]. *)
let coerce loc ~(src : Types.ty) ~(dst : Types.ty) (c : unit -> value) :
    unit -> value =
  match (Types.decay src, Types.decay dst) with
  | a, b when Types.equal_ty a b -> c
  | (Types.Tint _ | Types.Tptr _), Types.Tint ik ->
    fun () -> Vint (trunc_ikind ik (as_int (c ())))
  | Types.Tfloat _, Types.Tint ik ->
    fun () ->
      let f = as_float (c ()) in
      if Float.is_nan f then Vint 0L
      else Vint (trunc_ikind ik (Int64.of_float f))
  | Types.Tint _, Types.Tfloat fk ->
    fun () -> Vfloat (round_float_kind fk (Int64.to_float (as_int (c ()))))
  | Types.Tfloat _, Types.Tfloat fk ->
    fun () -> Vfloat (round_float_kind fk (as_float (c ())))
  | (Types.Tptr _ | Types.Tint _), Types.Tptr _ -> c
  | a, b ->
    Loc.error loc "cannot convert %s to %s" (Types.show_ty a) (Types.show_ty b)

(** Bottom-up constant folding at compile time: integer arithmetic
    over literals and [sizeof] collapses to a literal, as any real
    compiler's folding would (redirection expressions such as
    [__tid * span] rely on this after §3.4's constant propagation). *)
let rec fold_constants comps (e : Ast.exp) : Ast.exp =
  match e with
  | Ast.SizeofType t ->
    Ast.Const (Ast.Cint (Int64.of_int (Types.sizeof comps Loc.dummy t), Types.ILong))
  | Ast.Unop (op, a) -> (
    match (op, fold_constants comps a) with
    | Ast.Neg, Ast.Const (Ast.Cint (v, ik)) ->
      Ast.Const (Ast.Cint (trunc_ikind (Types.promote_ikind ik) (Int64.neg v), ik))
    | Ast.Bitnot, Ast.Const (Ast.Cint (v, ik)) ->
      Ast.Const (Ast.Cint (trunc_ikind (Types.promote_ikind ik) (Int64.lognot v), ik))
    | _, a -> Ast.Unop (op, a))
  | Ast.Binop (op, a, b) -> (
    let a = fold_constants comps a and b = fold_constants comps b in
    match (op, a, b) with
    | Ast.Add, Ast.Const (Ast.Cint (x, k1)), Ast.Const (Ast.Cint (y, k2)) ->
      fold_int Int64.add x k1 y k2
    | Ast.Sub, Ast.Const (Ast.Cint (x, k1)), Ast.Const (Ast.Cint (y, k2)) ->
      fold_int Int64.sub x k1 y k2
    | Ast.Mul, Ast.Const (Ast.Cint (x, k1)), Ast.Const (Ast.Cint (y, k2)) ->
      fold_int Int64.mul x k1 y k2
    | _ -> Ast.Binop (op, a, b))
  | Ast.Cast (t, a) -> (
    match (t, fold_constants comps a) with
    | Types.Tint ik, Ast.Const (Ast.Cint (v, _)) ->
      Ast.Const (Ast.Cint (trunc_ikind ik v, ik))
    | t, a -> Ast.Cast (t, a))
  | e -> e

and fold_int f x k1 y k2 =
  let k =
    if Types.ikind_size k1 >= Types.ikind_size k2 then Types.promote_ikind k1
    else Types.promote_ikind k2
  in
  Ast.Const (Ast.Cint (trunc_ikind k (f x y), k))

(** Is a compile-time constant operand a power of two (modelling
    strength reduction of multiplications into shifts)? *)
let const_pow2 = function
  | Ast.Const (Ast.Cint (v, _)) -> v > 0L && Int64.logand v (Int64.pred v) = 0L
  | _ -> false

let rec compile_exp (ctx : ctx) (e : Ast.exp) : unit -> value =
  let st = ctx.m.st in
  let loc = Loc.dummy in
  let e = fold_constants (comps ctx) e in
  match e with
  | Ast.Const (Cint (v, ik)) ->
    let v = Vint (trunc_ikind ik v) in
    fun () -> v
  | Ast.Const (Cfloat (f, fk)) ->
    let v = Vfloat (round_float_kind fk f) in
    fun () -> v
  | Ast.Const (Cstr s) ->
    let addr = Memory.write_cstring st.mem s in
    fun () -> Vint (Int64.of_int addr)
  | Ast.Lval (aid, lv) ->
    let t = Typecheck.lval_ty ctx.fe lv in
    let width = scalar_width (comps ctx) loc t in
    let addr_c = compile_addr ctx lv in
    (* __tid / __nthreads model values the OpenMP runtime hands each
       thread in a register, so their loads are register-priced too *)
    let in_reg =
      match lv with
      | Ast.Var ("__tid" | "__nthreads") -> true
      | Ast.Var x -> Hashtbl.mem ctx.regs x
      | _ -> false
    in
    if in_reg then fun () ->
      let addr = addr_c () in
      do_load_reg st aid addr width;
      load_scalar st loc t addr
    else fun () ->
      let addr = addr_c () in
      do_load st aid addr width;
      load_scalar st loc t addr
  | Ast.Addr lv ->
    let addr_c = compile_addr ctx lv in
    fun () -> Vint (Int64.of_int (addr_c ()))
  | Ast.Unop (op, a) -> compile_unop ctx op a
  | Ast.Binop (op, a, b) -> compile_binop ctx op a b e
  | Ast.Cast (t, a) ->
    let ta = Typecheck.exp_ty ctx.fe a in
    coerce loc ~src:ta ~dst:t (compile_exp ctx a)
  | Ast.SizeofType t ->
    let v = Vint (Int64.of_int (Types.sizeof (comps ctx) loc t)) in
    fun () -> v
  | Ast.SizeofExp _ -> Loc.error loc "sizeof(expr) survived normalization"
  | Ast.Call (f, _) ->
    Loc.error loc "expression-level call to '%s' survived normalization" f
  | Ast.Cond (c, a, b) ->
    let t = Typecheck.exp_ty ctx.fe e in
    let cc = compile_exp ctx c in
    let ca = coerce loc ~src:(Typecheck.exp_ty ctx.fe a) ~dst:t (compile_exp ctx a) in
    let cb = coerce loc ~src:(Typecheck.exp_ty ctx.fe b) ~dst:t (compile_exp ctx b) in
    fun () ->
      charge st Cost.branch;
      st.stats.n_branches <- st.stats.n_branches + 1;
      if truthy (cc ()) then ca () else cb ()

and compile_unop ctx op a : unit -> value =
  let st = ctx.m.st in
  let ca = compile_exp ctx a in
  let ta = Typecheck.exp_ty ctx.fe a in
  match (op, ta) with
  | Ast.Neg, Types.Tfloat _ ->
    fun () ->
      charge st Cost.float_arith;
      st.stats.n_arith <- st.stats.n_arith + 1;
      Vfloat (-.as_float (ca ()))
  | Ast.Neg, Types.Tint ik ->
    let ik = Types.promote_ikind ik in
    fun () ->
      charge st Cost.arith;
      st.stats.n_arith <- st.stats.n_arith + 1;
      Vint (trunc_ikind ik (Int64.neg (as_int (ca ()))))
  | Ast.Lognot, _ ->
    fun () ->
      charge st Cost.arith;
      st.stats.n_arith <- st.stats.n_arith + 1;
      Vint (if truthy (ca ()) then 0L else 1L)
  | Ast.Bitnot, Types.Tint ik ->
    let ik = Types.promote_ikind ik in
    fun () ->
      charge st Cost.arith;
      st.stats.n_arith <- st.stats.n_arith + 1;
      Vint (trunc_ikind ik (Int64.lognot (as_int (ca ()))))
  | _, t ->
    Loc.error Loc.dummy "invalid unary operand type %s" (Types.show_ty t)

and compile_binop ctx op a b whole : unit -> value =
  let st = ctx.m.st in
  let loc = Loc.dummy in
  let ta = Types.decay (Typecheck.exp_ty ctx.fe a) in
  let tb = Types.decay (Typecheck.exp_ty ctx.fe b) in
  let ca = compile_exp ctx a and cb = compile_exp ctx b in
  let elem_size t = Types.sizeof (comps ctx) loc (Types.pointee loc t) in
  let arith1 () =
    charge st Cost.arith;
    st.stats.n_arith <- st.stats.n_arith + 1
  in
  match op with
  | Ast.Land ->
    fun () ->
      charge st Cost.branch;
      st.stats.n_branches <- st.stats.n_branches + 1;
      Vint (if truthy (ca ()) && truthy (cb ()) then 1L else 0L)
  | Ast.Lor ->
    fun () ->
      charge st Cost.branch;
      st.stats.n_branches <- st.stats.n_branches + 1;
      Vint (if truthy (ca ()) || truthy (cb ()) then 1L else 0L)
  | Ast.Add when Types.is_pointer ta ->
    let sz = Int64.of_int (elem_size ta) in
    fun () ->
      arith1 ();
      Vint (Int64.add (as_int (ca ())) (Int64.mul (as_int (cb ())) sz))
  | Ast.Add when Types.is_pointer tb ->
    let sz = Int64.of_int (elem_size tb) in
    fun () ->
      arith1 ();
      Vint (Int64.add (as_int (cb ())) (Int64.mul (as_int (ca ())) sz))
  | Ast.Sub when Types.is_pointer ta && Types.is_pointer tb ->
    let sz = Int64.of_int (elem_size ta) in
    fun () ->
      arith1 ();
      Vint (Int64.div (Int64.sub (as_int (ca ())) (as_int (cb ()))) sz)
  | Ast.Sub when Types.is_pointer ta ->
    let sz = Int64.of_int (elem_size ta) in
    fun () ->
      arith1 ();
      Vint (Int64.sub (as_int (ca ())) (Int64.mul (as_int (cb ())) sz))
  | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge | Ast.Eq | Ast.Ne ->
    let cmp : value -> value -> int =
      if Types.is_float ta || Types.is_float tb then fun x y ->
        Float.compare (as_float x) (as_float y)
      else fun x y -> Int64.compare (as_int x) (as_int y)
    in
    let test =
      match op with
      | Ast.Lt -> fun c -> c < 0
      | Ast.Gt -> fun c -> c > 0
      | Ast.Le -> fun c -> c <= 0
      | Ast.Ge -> fun c -> c >= 0
      | Ast.Eq -> fun c -> c = 0
      | Ast.Ne -> fun c -> c <> 0
      | _ -> assert false
    in
    fun () ->
      arith1 ();
      Vint (if test (cmp (ca ()) (cb ())) then 1L else 0L)
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div
    when Types.is_float ta || Types.is_float tb -> (
    let fk =
      match Typecheck.exp_ty ctx.fe whole with
      | Types.Tfloat fk -> fk
      | t -> Loc.error loc "float op with non-float type %s" (Types.show_ty t)
    in
    let cost = if op = Ast.Div then Cost.float_div else Cost.float_arith in
    let f : float -> float -> float =
      match op with
      | Ast.Add -> ( +. )
      | Ast.Sub -> ( -. )
      | Ast.Mul -> ( *. )
      | Ast.Div -> ( /. )
      | _ -> assert false
    in
    fun () ->
      charge st cost;
      st.stats.n_arith <- st.stats.n_arith + 1;
      Vfloat (round_float_kind fk (f (as_float (ca ())) (as_float (cb ())))))
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Shl | Ast.Shr
  | Ast.Band | Ast.Bor | Ast.Bxor ->
    let ik =
      match Typecheck.exp_ty ctx.fe whole with
      | Types.Tint ik -> ik
      | t -> Loc.error loc "integer op with non-int type %s" (Types.show_ty t)
    in
    let bits = 8 * Types.ikind_size ik in
    let cost =
      match op with
      | Ast.Mul when const_pow2 a || const_pow2 b ->
        Cost.arith (* strength-reduced to a shift *)
      | Ast.Mul -> Cost.mul
      | Ast.Div | Ast.Mod -> Cost.div
      | _ -> Cost.arith
    in
    let f : int64 -> int64 -> int64 =
      match op with
      | Ast.Add -> Int64.add
      | Ast.Sub -> Int64.sub
      | Ast.Mul -> Int64.mul
      | Ast.Div ->
        fun x y ->
          if y = 0L then runtime_error "division by zero" else Int64.div x y
      | Ast.Mod ->
        fun x y ->
          if y = 0L then runtime_error "modulo by zero" else Int64.rem x y
      | Ast.Shl -> fun x y -> Int64.shift_left x (Int64.to_int y land (bits - 1))
      | Ast.Shr ->
        fun x y -> Int64.shift_right x (Int64.to_int y land (bits - 1))
      | Ast.Band -> Int64.logand
      | Ast.Bor -> Int64.logor
      | Ast.Bxor -> Int64.logxor
      | _ -> assert false
    in
    fun () ->
      charge st cost;
      st.stats.n_arith <- st.stats.n_arith + 1;
      Vint (trunc_ikind ik (f (as_int (ca ())) (as_int (cb ()))))

(** Compile the address computation of an lvalue. *)
and compile_addr (ctx : ctx) (lv : Ast.lval) : unit -> int =
  let st = ctx.m.st in
  let loc = Loc.dummy in
  match lv with
  | Ast.Var x -> (
    match Hashtbl.find_opt ctx.slots x with
    | Some off -> fun () -> st.frame + off
    | None ->
      let addr = global_addr st x in
      fun () -> addr)
  | Ast.Deref e ->
    let ce = compile_exp ctx e in
    fun () ->
      let a = Int64.to_int (as_int (ce ())) in
      if a = 0 then runtime_error "null pointer dereference";
      a
  | Ast.Index (base, i) ->
    let elt =
      match Typecheck.lval_ty ctx.fe base with
      | Types.Tarray (elt, _) -> elt
      | t -> Loc.error loc "Index base is %s, not array" (Types.show_ty t)
    in
    let sz = Types.sizeof (comps ctx) loc elt in
    let cb = compile_addr ctx base in
    let ci = compile_exp ctx i in
    (* scaled-index address generation folds into the access (AGU) *)
    fun () -> cb () + (Int64.to_int (as_int (ci ())) * sz)
  | Ast.Field (base, f) ->
    let tag =
      match Typecheck.lval_ty ctx.fe base with
      | Types.Tstruct tag -> tag
      | t -> Loc.error loc "Field base is %s, not struct" (Types.show_ty t)
    in
    let off, _ = Types.field_offset (comps ctx) loc tag f in
    let cb = compile_addr ctx base in
    fun () -> cb () + off

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec compile_stmt (ctx : ctx) (s : Ast.stmt) : unit -> unit =
  let st = ctx.m.st in
  let loc = s.Ast.sloc in
  match s.Ast.skind with
  | Ast.Sskip -> fun () -> ()
  | Ast.Sassign (aid, lv, e) ->
    let tlv = Typecheck.lval_ty ctx.fe lv in
    let width = scalar_width (comps ctx) loc tlv in
    let addr_c = compile_addr ctx lv in
    let ce =
      coerce loc ~src:(Typecheck.exp_ty ctx.fe e) ~dst:tlv (compile_exp ctx e)
    in
    let in_reg =
      match lv with Ast.Var x -> Hashtbl.mem ctx.regs x | _ -> false
    in
    (* the observer fires after the write so value-reading observers
       (the privatization-contract checker) see the stored value; the
       dependence profiler is positional and does not care *)
    if in_reg then fun () ->
      let v = ce () in
      let addr = addr_c () in
      store_scalar st (comps ctx) loc tlv addr v;
      do_store_reg st aid addr width
    else fun () ->
      let v = ce () in
      let addr = addr_c () in
      store_scalar st (comps ctx) loc tlv addr v;
      do_store st aid addr width
  | Ast.Scall (ret, f, args) -> compile_call ctx loc ret f args
  | Ast.Sseq stmts ->
    let cs = Array.of_list (List.map (compile_stmt ctx) stmts) in
    fun () -> Array.iter (fun c -> c ()) cs
  | Ast.Sif (c, a, b) ->
    let cc = compile_exp ctx c in
    let ca = compile_stmt ctx a and cb = compile_stmt ctx b in
    fun () ->
      charge st Cost.branch;
      st.stats.n_branches <- st.stats.n_branches + 1;
      if truthy (cc ()) then ca () else cb ()
  | Ast.Swhile (lid, c, body) ->
    let cc = compile_exp ctx c in
    let cbody = compile_stmt ctx body in
    compile_loop st lid cc cbody (fun () -> ())
  | Ast.Sfor (lid, init, c, step, body) ->
    let cinit = compile_stmt ctx init in
    let cc = compile_exp ctx c in
    let cstep = compile_stmt ctx step in
    let cbody = compile_stmt ctx body in
    let loop = compile_loop st lid cc cbody cstep in
    fun () ->
      cinit ();
      loop ()
  | Ast.Sreturn None -> fun () -> raise (Return_exc (Vint 0L))
  | Ast.Sreturn (Some e) ->
    let ce =
      coerce loc ~src:(Typecheck.exp_ty ctx.fe e) ~dst:ctx.fe.Typecheck.fn_ret
        (compile_exp ctx e)
    in
    fun () -> raise (Return_exc (ce ()))
  | Ast.Sbreak -> fun () -> raise Break_exc
  | Ast.Scontinue -> fun () -> raise Continue_exc

(* The [Iter i] event fires BEFORE the condition of iteration [i] is
   evaluated, so that condition accesses are attributed to the
   iteration about to run (a condition read of a value written by the
   previous iteration is then correctly seen as loop-carried). A loop
   that exits via its condition thus reports one trailing [Iter] whose
   segment contains only the failing test. *)
and compile_loop st lid cc cbody cstep : unit -> unit =
  fun () ->
    (match st.loop_hook with Some h -> h lid Enter | None -> ());
    (try
       let iter = ref 0 in
       let continue_ = ref true in
       while !continue_ do
         (match st.loop_hook with Some h -> h lid (Iter !iter) | None -> ());
         burn_fuel st;
         charge st Cost.branch;
         st.stats.n_branches <- st.stats.n_branches + 1;
         if truthy (cc ()) then begin
           if st.iter_skip then st.iter_skip <- false
           else (try cbody () with Continue_exc -> ());
           cstep ();
           incr iter
         end
         else begin
           (* the trailing [Iter] probe may have requested a skip for a
              body that will never run; don't leak it past the loop *)
           st.iter_skip <- false;
           continue_ := false
         end
       done
     with Break_exc -> ());
    match st.loop_hook with Some h -> h lid Exit | None -> ()

and compile_call ctx loc ret f args : unit -> unit =
  let st = ctx.m.st in
  let cargs = List.map (compile_exp ctx) args in
  let store_ret =
    match ret with
    | None -> fun (_ : value) -> ()
    | Some (aid, lv) ->
      let tlv = Typecheck.lval_ty ctx.fe lv in
      let width = scalar_width (comps ctx) loc tlv in
      let addr_c = compile_addr ctx lv in
      let in_reg =
        match lv with Ast.Var x -> Hashtbl.mem ctx.regs x | _ -> false
      in
      if in_reg then fun v ->
        let addr = addr_c () in
        store_scalar st (comps ctx) loc tlv addr v;
        do_store_reg st aid addr width
      else fun v ->
        let addr = addr_c () in
        store_scalar st (comps ctx) loc tlv addr v;
        do_store st aid addr width
  in
  match Ast.find_fun ctx.m.prog f with
  | Some _ ->
    let cf_ref =
      match Hashtbl.find_opt ctx.m.funs f with
      | Some r -> r
      | None -> Loc.error loc "function '%s' not compiled" f
    in
    fun () ->
      burn_fuel st;
      charge st Cost.call;
      st.stats.n_calls <- st.stats.n_calls + 1;
      let cf =
        match !cf_ref with
        | Some cf -> cf
        | None -> runtime_error "function '%s' not yet linked" f
      in
      let argv = List.map (fun c -> c ()) cargs in
      (* push a frame *)
      let base = (st.sp + 7) land lnot 7 in
      if base + cf.cf_frame_size > st.stack_limit then
        runtime_error "stack overflow calling '%s'" f;
      let old_sp = st.sp and old_frame = st.frame in
      st.sp <- base + cf.cf_frame_size;
      st.frame <- base;
      Memory.fill st.mem ~dst:base ~len:cf.cf_frame_size 0;
      List.iter2
        (fun (off, t, aid) v ->
          let addr = base + off in
          store_scalar st (comps ctx) loc t addr v;
          do_store st aid addr (scalar_width (comps ctx) loc t))
        cf.cf_formals argv;
      let result =
        try
          cf.cf_body ();
          Vint 0L
        with Return_exc v -> v
      in
      st.sp <- old_sp;
      st.frame <- old_frame;
      store_ret result
  | None ->
    let ret_aid = Option.map fst ret in
    let bi = compile_builtin ctx loc ?ret_aid f in
    fun () ->
      charge st Cost.call;
      st.stats.n_calls <- st.stats.n_calls + 1;
      let argv = List.map (fun c -> c ()) cargs in
      store_ret (bi argv)

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

and compile_builtin ctx loc ?ret_aid name : value list -> value =
  let st = ctx.m.st in
  let notify_alloc base size =
    match st.alloc_hook with Some h -> h ret_aid base size | None -> ()
  in
  let int1 f = function
    | [ v ] -> f (as_int v)
    | _ -> runtime_error "bad arity for %s" name
  in
  let float1 f = function
    | [ v ] ->
      charge st Cost.float_fn;
      Vfloat (f (as_float v))
    | _ -> runtime_error "bad arity for %s" name
  in
  match name with
  | "malloc" ->
    int1 (fun n ->
        charge st Cost.malloc;
        st.stats.n_allocs <- st.stats.n_allocs + 1;
        let n = Int64.to_int n in
        let base = Memory.alloc st.mem n in
        notify_alloc base n;
        Vint (Int64.of_int base))
  | "calloc" -> (
    function
    | [ a; b ] ->
      charge st Cost.malloc;
      st.stats.n_allocs <- st.stats.n_allocs + 1;
      let n = Int64.to_int (as_int a) * Int64.to_int (as_int b) in
      let base = Memory.alloc st.mem n in
      notify_alloc base n;
      Vint (Int64.of_int base)
    | _ -> runtime_error "bad arity for calloc")
  | "realloc" -> (
    function
    | [ p; n ] ->
      charge st (Cost.malloc + Cost.free);
      st.stats.n_allocs <- st.stats.n_allocs + 1;
      let p = Int64.to_int (as_int p) and n = Int64.to_int (as_int n) in
      if p = 0 then begin
        let base = Memory.alloc st.mem n in
        notify_alloc base n;
        Vint (Int64.of_int base)
      end
      else begin
        let old = Memory.block_size st.mem p in
        let fresh = Memory.alloc st.mem n in
        Memory.blit st.mem ~src:p ~dst:fresh ~len:(min old n);
        (match st.bulk_hook with
        | Some h -> h fresh (Some p) (min old n)
        | None -> ());
        (match st.free_hook with Some h -> h p old | None -> ());
        Memory.free st.mem p;
        notify_alloc fresh n;
        Vint (Int64.of_int fresh)
      end
    | _ -> runtime_error "bad arity for realloc")
  | "free" ->
    int1 (fun p ->
        charge st Cost.free;
        let base = Int64.to_int p in
        (if base <> 0 then
           match st.free_hook with
           | Some h -> h base (Memory.block_size st.mem base)
           | None -> ());
        Memory.free st.mem base;
        Vint 0L)
  | "printf" -> (
    function
    | fmt :: rest ->
      let s = format_printf st (Int64.to_int (as_int fmt)) rest in
      Buffer.add_string st.out s;
      charge st (Cost.io_char * String.length s);
      Vint (Int64.of_int (String.length s))
    | [] -> runtime_error "printf with no format")
  | "putchar" ->
    int1 (fun c ->
        Buffer.add_char st.out (Char.chr (Int64.to_int c land 0xff));
        charge st Cost.io_char;
        Vint c)
  | "puts" ->
    int1 (fun p ->
        let s = Memory.read_cstring st.mem (Int64.to_int p) in
        Buffer.add_string st.out s;
        Buffer.add_char st.out '\n';
        charge st (Cost.io_char * (String.length s + 1));
        Vint 0L)
  | "memset" -> (
    function
    | [ p; c; n ] ->
      let p = Int64.to_int (as_int p) and n = Int64.to_int (as_int n) in
      Memory.fill st.mem ~dst:p ~len:n (Int64.to_int (as_int c));
      (match st.bulk_hook with Some h -> h p None n | None -> ());
      charge st (n / 8 * Cost.store);
      Vint (Int64.of_int p)
    | _ -> runtime_error "bad arity for memset")
  | "memcpy" -> (
    function
    | [ d; s; n ] ->
      let d = Int64.to_int (as_int d)
      and s = Int64.to_int (as_int s)
      and n = Int64.to_int (as_int n) in
      Memory.blit st.mem ~src:s ~dst:d ~len:n;
      (match st.bulk_hook with Some h -> h d (Some s) n | None -> ());
      charge st (n / 8 * (Cost.load + Cost.store));
      Vint (Int64.of_int d)
    | _ -> runtime_error "bad arity for memcpy")
  | "strlen" ->
    int1 (fun p ->
        let s = Memory.read_cstring st.mem (Int64.to_int p) in
        charge st (String.length s * Cost.load);
        Vint (Int64.of_int (String.length s)))
  | "abs" | "labs" -> int1 (fun v -> Vint (Int64.abs v))
  | "sqrt" -> float1 sqrt
  | "fabs" -> float1 Float.abs
  | "floor" -> float1 Float.floor
  | "exp" -> float1 Stdlib.exp
  | "log" -> float1 Stdlib.log
  | "rand" -> (
    function
    | [] ->
      st.rand_state <-
        Int64.add
          (Int64.mul st.rand_state 6364136223846793005L)
          1442695040888963407L;
      Vint (Int64.logand (Int64.shift_right_logical st.rand_state 33) 0x3FFFFFFFL)
    | _ -> runtime_error "bad arity for rand")
  | "srand" ->
    int1 (fun v ->
        st.rand_state <- Int64.add v 0x9E3779B97F4A7C15L;
        Vint 0L)
  | "exit" -> int1 (fun v -> raise (Exit_program (Int64.to_int v)))
  | "assert" ->
    int1 (fun v ->
        if v = 0L then runtime_error "assertion failed at %s" (Loc.to_string loc);
        Vint 0L)
  | _ -> Loc.error loc "unknown builtin '%s'" name

(** Minimal printf: supports %d %i %u %c %s %x %f %g %e %%, the 'l'
    length modifier, width, '0'/'-' flags and precision. *)
and format_printf st fmt_addr (args : value list) : string =
  let fmt = Memory.read_cstring st.mem fmt_addr in
  let buf = Buffer.create (String.length fmt) in
  let args = ref args in
  let pop () =
    match !args with
    | [] -> runtime_error "printf: not enough arguments"
    | v :: rest ->
      args := rest;
      v
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    let c = fmt.[!i] in
    if c <> '%' then begin
      Buffer.add_char buf c;
      incr i
    end
    else begin
      incr i;
      (* flags *)
      let minus = ref false and zero = ref false in
      let rec flags () =
        if !i < n then
          match fmt.[!i] with
          | '-' ->
            minus := true;
            incr i;
            flags ()
          | '0' ->
            zero := true;
            incr i;
            flags ()
          | _ -> ()
      in
      flags ();
      let num () =
        let start = !i in
        while !i < n && fmt.[!i] >= '0' && fmt.[!i] <= '9' do incr i done;
        if !i > start then int_of_string (String.sub fmt start (!i - start))
        else 0
      in
      let width = num () in
      let prec = if !i < n && fmt.[!i] = '.' then (incr i; num ()) else -1 in
      while !i < n && (fmt.[!i] = 'l' || fmt.[!i] = 'h') do incr i done;
      if !i >= n then runtime_error "printf: truncated conversion";
      let conv = fmt.[!i] in
      incr i;
      let pad s =
        let len = String.length s in
        if len >= width then s
        else if !minus then s ^ String.make (width - len) ' '
        else if !zero && not !minus then
          (* keep sign before zeros *)
          if len > 0 && (s.[0] = '-' || s.[0] = '+') then
            String.make 1 s.[0]
            ^ String.make (width - len) '0'
            ^ String.sub s 1 (len - 1)
          else String.make (width - len) '0' ^ s
        else String.make (width - len) ' ' ^ s
      in
      let text =
        match conv with
        | '%' -> "%"
        | 'd' | 'i' | 'u' -> Int64.to_string (as_int (pop ()))
        | 'x' -> Printf.sprintf "%Lx" (as_int (pop ()))
        | 'c' -> String.make 1 (Char.chr (Int64.to_int (as_int (pop ())) land 0xff))
        | 's' -> Memory.read_cstring st.mem (Int64.to_int (as_int (pop ())))
        | 'f' -> Printf.sprintf "%.*f" (if prec >= 0 then prec else 6) (as_float (pop ()))
        | 'e' -> Printf.sprintf "%.*e" (if prec >= 0 then prec else 6) (as_float (pop ()))
        | 'g' -> Printf.sprintf "%.*g" (if prec >= 0 then prec else 6) (as_float (pop ()))
        | c -> runtime_error "printf: unsupported conversion '%%%c'" c
      in
      Buffer.add_string buf (pad text)
    end
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Program loading                                                     *)
(* ------------------------------------------------------------------ *)

let frame_layout comps (f : Ast.fundef) :
    int * (string * (int * Types.ty)) list =
  let loc = Loc.dummy in
  List.fold_left
    (fun (off, slots) (name, t) ->
      let al = Types.alignof comps loc t in
      let off = Types.roundup off al in
      (off + Types.sizeof comps loc t, (name, (off, t)) :: slots))
    (0, [])
    (f.Ast.fformals @ f.Ast.flocals)
  |> fun (size, slots) -> (Types.roundup size 8, List.rev slots)

let rec eval_init m ctx (t : Types.ty) addr (ini : Ast.init) : unit =
  let loc = Loc.dummy in
  let comps = m.prog.Ast.comps in
  match (t, ini) with
  | _, Ast.Iexp e when Types.is_scalar (Types.decay t) ->
    let c =
      coerce loc ~src:(Typecheck.exp_ty ctx.fe e) ~dst:t (compile_exp ctx e)
    in
    store_scalar m.st comps loc t addr (c ())
  | Types.Tarray (elt, n), Ast.Ilist items ->
    let sz = Types.sizeof comps loc elt in
    List.iteri
      (fun i item ->
        if i >= n then runtime_error "too many initializers";
        eval_init m ctx elt (addr + (i * sz)) item)
      items
  | Types.Tstruct tag, Ast.Ilist items ->
    let c = Types.find_composite comps loc tag in
    List.iteri
      (fun i item ->
        match List.nth_opt c.Types.cfields i with
        | None -> runtime_error "too many initializers for struct %s" tag
        | Some (fname, ft) ->
          let off, _ = Types.field_offset comps loc tag fname in
          eval_init m ctx ft (addr + off) item)
      items
  | _ -> runtime_error "invalid initializer shape"

(** Compile a program into a runnable machine. *)
let load (prog : Ast.program) : t =
  let st = make_state () in
  let m = { st; prog; funs = Hashtbl.create 16; inits = [] } in
  let env = Typecheck.make_env prog in
  (* Allocate all globals first so compiled code can reference them. *)
  List.iter
    (fun (name, t, _) ->
      let size = Types.sizeof prog.Ast.comps Loc.dummy t in
      Hashtbl.replace st.global_addrs name (Memory.alloc st.mem size))
    (Ast.global_vars prog);
  (* Pre-register function slots for mutual recursion. *)
  List.iter
    (fun (f : Ast.fundef) -> Hashtbl.replace m.funs f.Ast.fname (ref None))
    (Ast.functions prog);
  (* Compile each function. *)
  List.iter
    (fun (f : Ast.fundef) ->
      let fe = Typecheck.fenv_of env f in
      let frame_size, slot_list = frame_layout prog.Ast.comps f in
      let slots = Hashtbl.create 16 in
      List.iter (fun (n, (off, _)) -> Hashtbl.replace slots n off) slot_list;
      (* register-allocatable locals: scalar and never address-taken *)
      let regs = Hashtbl.create 16 in
      let addr_taken = Hashtbl.create 8 in
      let rec scan_at_exp (e : Ast.exp) =
        match e with
        | Ast.Addr lv -> scan_at_lval_addr lv
        | Ast.Lval (_, lv) -> scan_at_lval lv
        | Ast.Unop (_, a) | Ast.Cast (_, a) | Ast.SizeofExp a -> scan_at_exp a
        | Ast.Binop (_, a, b) ->
          scan_at_exp a;
          scan_at_exp b
        | Ast.Cond (a, b, c) ->
          scan_at_exp a;
          scan_at_exp b;
          scan_at_exp c
        | Ast.Call (_, args) -> List.iter scan_at_exp args
        | Ast.Const _ | Ast.SizeofType _ -> ()
      and scan_at_lval_addr lv =
        (match lv with
        | Ast.Var x -> Hashtbl.replace addr_taken x ()
        | _ -> ());
        scan_at_lval lv
      and scan_at_lval lv =
        match lv with
        | Ast.Var _ -> ()
        | Ast.Deref e -> scan_at_exp e
        | Ast.Index (b, i) ->
          scan_at_lval b;
          scan_at_exp i
        | Ast.Field (b, _) -> scan_at_lval b
      in
      ignore
        (Visit.map_stmt_exps
           ~fe:(fun e ->
             scan_at_exp e;
             e)
           ~flv:(fun lv ->
             scan_at_lval lv;
             lv)
           f.Ast.fbody);
      List.iter
        (fun (x, t) ->
          if Types.is_scalar (Types.decay t) && not (Hashtbl.mem addr_taken x)
          then
            match t with
            | Types.Tarray _ -> ()
            | _ -> Hashtbl.replace regs x ())
        (f.Ast.fformals @ f.Ast.flocals);
      let ctx = { m; fe; slots; regs } in
      let body = compile_stmt ctx f.Ast.fbody in
      let formals =
        List.map
          (fun (n, _) ->
            let off, t = List.assoc n slot_list in
            (off, t, Ast.fresh_aid prog))
          f.Ast.fformals
      in
      (Hashtbl.find m.funs f.Ast.fname) :=
        Some
          {
            cf_frame_size = frame_size;
            cf_formals = formals;
            cf_body = body;
            cf_ret = f.Ast.freturn;
          })
    (Ast.functions prog);
  (* Global initializers run in declaration order in a pseudo-frame. *)
  let dummy_fun =
    {
      Ast.fname = "__global_init";
      freturn = Types.Tvoid;
      fformals = [];
      flocals = [];
      fbody = Ast.skip;
    }
  in
  let init_ctx =
    {
      m;
      fe = Typecheck.fenv_of env dummy_fun;
      slots = Hashtbl.create 1;
      regs = Hashtbl.create 1;
    }
  in
  m.inits <-
    List.filter_map
      (fun (name, t, ini) ->
        Option.map
          (fun ini ->
            let addr = Hashtbl.find st.global_addrs name in
            fun () -> eval_init m init_ctx t addr ini)
          ini)
      (Ast.global_vars prog);
  m

(** Run [main]; returns the exit code. *)
let run (m : t) : int =
  List.iter (fun f -> f ()) m.inits;
  match Hashtbl.find_opt m.funs "main" with
  | None | Some { contents = None } -> runtime_error "no main function"
  | Some { contents = Some cf } -> (
    if cf.cf_formals <> [] then runtime_error "main must take no arguments";
    let base = (m.st.sp + 7) land lnot 7 in
    m.st.sp <- base + cf.cf_frame_size;
    m.st.frame <- base;
    try
      (try
         cf.cf_body ();
         0
       with Return_exc v -> Int64.to_int (as_int v))
    with Exit_program code -> code)

(** Convenience: load + run, returning (exit code, captured stdout). *)
let run_program (prog : Ast.program) : int * string =
  let m = load prog in
  let code = run m in
  (code, output m.st)
