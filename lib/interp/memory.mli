(** Byte-addressed flat memory for the MiniC interpreter.

    A single growable byte arena backs globals, the stack and the heap.
    Address 0 is the null pointer; the first {!base_address} bytes are
    never handed out, so small integers cast to pointers fault. A
    size-bucketed free list recycles freed blocks, and live-byte peak
    tracking feeds the paper's Figure 14 (memory-use multiples). *)

type t

(** Raised on out-of-bounds or otherwise invalid memory operations. *)
exception Fault of string

(** Lowest address ever handed out. *)
val base_address : int

val create : ?initial:int -> unit -> t

(** Allocate [size] usable bytes (zeroed); returns the base address.
    [track:false] excludes the block from live/peak accounting (used
    for the simulated call stack, which is machinery rather than
    program data). *)
val alloc : ?track:bool -> t -> int -> int

(** Usable size of a live allocation, given its base address. *)
val block_size : t -> int -> int

(** Free a block by base address; freeing address 0 is a no-op. *)
val free : t -> int -> unit

(** Little-endian loads/stores of 1/2/4/8 bytes; integer loads
    sign-extend (MiniC's all-signed model). *)
val load : t -> int -> int -> int64

val store : t -> int -> int -> int64 -> unit
val load_float : t -> int -> int -> float
val store_float : t -> int -> int -> float -> unit
val blit : t -> src:int -> dst:int -> len:int -> unit
val fill : t -> dst:int -> len:int -> int -> unit

(** Raw byte window of [len] bytes at [addr] (bounds-checked). The
    domain executor captures store values with this and replays them
    with {!write_raw} on sibling machines. *)
val read_raw : t -> int -> int -> string

val write_raw : t -> int -> string -> unit

(** Store an OCaml string as a NUL-terminated C string; returns its
    address. *)
val write_cstring : t -> string -> int

val read_cstring : t -> int -> string

(** Currently live tracked bytes (bucket-rounded). *)
val live_bytes : t -> int

(** High-water mark of {!live_bytes}. *)
val peak_bytes : t -> int

val alloc_count : t -> int

(** Fault injection: make the [n]-th subsequent tracked allocation
    raise {!Fault} ([n] >= 1), modelling allocation failure. The knob
    disarms itself after firing. *)
val set_alloc_fault : t -> int -> unit

val clear_alloc_fault : t -> unit

(** [(base, size)] of the live allocation containing [addr], if any. *)
val find_block : t -> int -> (int * int) option
