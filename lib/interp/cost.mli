(** Per-operation cycle costs for the deterministic execution model.

    The absolute values approximate a simple in-order core; only the
    ratios matter for reproducing the paper's speedup shapes. Memory
    operations additionally pay whatever the pluggable access-cost
    hook (e.g. the cache model in {!Parexec}) charges. *)

val load : int
val store : int
val arith : int
val mul : int
val div : int
val float_arith : int
val float_div : int

(** sqrt, exp, log, ... *)
val float_fn : int

val branch : int
val call : int
val malloc : int
val free : int

(** Per character of formatted output. *)
val io_char : int

(** GOMP-like runtime costs, used by the parallel simulator. *)

(** Per parallel-loop entry: team wakeup. *)
val gomp_fork : int

(** Per thread, at loop exit. *)
val gomp_barrier : int

(** Per dynamically-scheduled chunk. *)
val gomp_dispatch : int

(** SpiceC-style runtime privatization costs (per event), used by the
    {!Runtimepriv} baseline. *)

(** Access-control library call: heap-prefix lookup of the private
    copy. *)
val rp_resolve : int

(** Copy-in / commit, per byte, at loop boundaries. *)
val rp_copy_byte : int
