(** MiniC static types.

    The type language mirrors the subset of C that the PLDI'13 expansion
    rules (Tables 1-3 of the paper) are defined over: sized integers,
    floats, pointers, fixed-size arrays, named structs and function types.
    Struct bodies live in a separate {!composite} environment so that
    recursive structures (linked lists, trees) are expressible. *)

type ikind =
  | IChar  (** 1 byte *)
  | IShort  (** 2 bytes *)
  | IInt  (** 4 bytes *)
  | ILong  (** 8 bytes *)
[@@deriving show { with_path = false }, eq]

type fkind = FFloat  (** 4 bytes *) | FDouble  (** 8 bytes *)
[@@deriving show { with_path = false }, eq]

type ty =
  | Tvoid
  | Tint of ikind
  | Tfloat of fkind
  | Tptr of ty
  | Tarray of ty * int  (** element type and (constant) element count *)
  | Tstruct of string  (** reference to a composite by tag *)
  | Tfun of ty * ty list  (** return type, parameter types *)
[@@deriving show { with_path = false }, eq]

(** A struct definition: tag and ordered fields. *)
type composite = { cname : string; cfields : (string * ty) list }
[@@deriving show { with_path = false }, eq]

type composite_env = (string, composite) Hashtbl.t

val ikind_size : ikind -> int
val fkind_size : fkind -> int

(** Look up a struct by tag; a missing tag is a located error. *)
val find_composite : composite_env -> Loc.t -> string -> composite

(** Byte size of a type. Structs are laid out field-after-field with
    alignment padding so that recasting tricks (e.g. bzip2's [zptr]
    short/int recast) behave as they would under a real ABI. *)
val sizeof : composite_env -> Loc.t -> ty -> int

val alignof : composite_env -> Loc.t -> ty -> int

(** [roundup off align] is [off] rounded up to a multiple of [align]. *)
val roundup : int -> int -> int

(** Byte offset of field [f] within struct [tag], plus the field type. *)
val field_offset : composite_env -> Loc.t -> string -> string -> int * ty

val is_integer : ty -> bool
val is_float : ty -> bool
val is_pointer : ty -> bool
val is_arith : ty -> bool
val is_scalar : ty -> bool

(** The type an expression of type [t] decays to when used as a value:
    arrays become pointers to their element type (C array decay). *)
val decay : ty -> ty

(** Pointee of a pointer-or-array type. *)
val pointee : Loc.t -> ty -> ty

(** Integer promotion: everything narrower than int computes as int. *)
val promote_ikind : ikind -> ikind

(** Usual arithmetic conversions for a binary operator. *)
val arith_join : Loc.t -> ty -> ty -> ty
