(** MiniC abstract syntax.

    Two design points matter for the expansion technique:

    - Every memory access in a program has a unique {e access id} ([aid]).
      An [Lval] expression is exactly one load; the left-hand side of an
      [Sassign] (or the result lvalue of an [Scall]) is exactly one store.
      The type checker normalizes sugar (pointer indexing, [->]) so that
      this invariant holds; the dependence profiler, the access-class
      partitioning and the redirection pass all key on [aid]s.
    - Every loop has a unique {e loop id} ([lid]); parallelization
      candidates are marked with [#pragma parallel] in source and recorded
      in the program. *)

type aid = int [@@deriving show { with_path = false }, eq, ord]
type lid = int [@@deriving show { with_path = false }, eq, ord]

(** Placeholder access id before the type checker numbers the access. *)
val no_aid : aid

type unop = Neg | Lognot | Bitnot
[@@deriving show { with_path = false }, eq]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Lt
  | Gt
  | Le
  | Ge
  | Eq
  | Ne
  | Land
  | Lor
[@@deriving show { with_path = false }, eq]

type constant =
  | Cint of int64 * Types.ikind
  | Cfloat of float * Types.fkind
  | Cstr of string
[@@deriving show { with_path = false }, eq]

type exp =
  | Const of constant
  | Lval of aid * lval  (** a load from the lvalue's address *)
  | Addr of lval  (** [&lv]; computes an address, loads nothing itself *)
  | Unop of unop * exp
  | Binop of binop * exp * exp
  | Cast of Types.ty * exp
  | SizeofType of Types.ty
  | SizeofExp of exp  (** resolved to [SizeofType] by the type checker *)
  | Call of string * exp list
      (** only produced by the parser; the type checker hoists every call
          into a separate [Scall] statement, so analyses and
          transformations never see expression-level calls *)
  | Cond of exp * exp * exp  (** [c ? a : b] *)

and lval =
  | Var of string
  | Deref of exp  (** [*e] *)
  | Index of lval * exp  (** [lv\[i\]]; after type checking, [lv] is an array *)
  | Field of lval * string  (** [lv.f]; [e->f] parses as [Field (Deref e, f)] *)
[@@deriving show { with_path = false }, eq]

type stmt = { skind : stmt_kind; sloc : Loc.t }

and stmt_kind =
  | Sskip
  | Sassign of aid * lval * exp
  | Scall of (aid * lval) option * string * exp list
  | Sseq of stmt list
  | Sif of exp * stmt * stmt
  | Swhile of lid * exp * stmt
  | Sfor of lid * stmt * exp * stmt * stmt
      (** init, condition, step, body; kept distinct from [Swhile] so that
          [continue] executes the step *)
  | Sreturn of exp option
  | Sbreak
  | Scontinue
[@@deriving show { with_path = false }, eq]

type fundef = {
  fname : string;
  freturn : Types.ty;
  fformals : (string * Types.ty) list;
  flocals : (string * Types.ty) list;
  fbody : stmt;
}

type init = Iexp of exp | Ilist of init list
[@@deriving show { with_path = false }, eq]

type global =
  | Gcomposite of Types.composite
  | Gvar of string * Types.ty * init option
  | Gfun of fundef

type program = {
  mutable globals : global list;
  comps : Types.composite_env;
  mutable parallel_loops : lid list;
      (** loops marked [#pragma parallel], outermost first *)
  mutable next_aid : int;
  mutable next_lid : int;
  mutable next_tmp : int;
}

val mk_stmt : ?loc:Loc.t -> stmt_kind -> stmt

(** [mk_stmt Sskip] at the dummy location. *)
val skip : stmt

val empty_program : unit -> program

(** Draw a fresh access id / loop id from the program's counters. *)
val fresh_aid : program -> aid

val fresh_lid : program -> lid

(** A fresh temporary name ["__<prefix><n>"]; the [__] prefix keeps
    generated names out of the source namespace. *)
val fresh_var : program -> string -> string

(* Convenience constructors used pervasively by transformation passes. *)

val cint : ?ik:Types.ikind -> int -> exp
val czero : exp
val cone : exp

(** A load with a freshly numbered access id. *)
val load : program -> lval -> exp

(** An assignment with a freshly numbered store id. *)
val assign : ?loc:Loc.t -> program -> lval -> exp -> stmt

val add : exp -> exp -> exp
val mul : exp -> exp -> exp
val find_fun : program -> string -> fundef option
val find_gvar : program -> string -> (Types.ty * init option) option

(** Replace the definition of the function with the same name. *)
val replace_fun : program -> fundef -> unit

(** All function definitions, in declaration order. *)
val functions : program -> fundef list

(** All global variables, in declaration order. *)
val global_vars : program -> (string * Types.ty * init option) list
