(** Shared diagnostic indexes: which loop and which access class an
    access id belongs to, derived from the analyses a plan was built
    from. Generated accesses (span shadows, redirection bases) appear
    in neither and report [None]. *)

open Minic

type t = {
  loop_of : (Ast.aid, Ast.lid) Hashtbl.t;
  class_of : (Ast.aid, Ast.aid list) Hashtbl.t;
}

(** Build the indexes from the analyses behind a plan. *)
val of_analyses : Privatize.Analyze.result list -> t

(** The loop whose dependence graph contains [aid], if any. *)
val loop : t -> Ast.aid -> Ast.lid option

(** The members of [aid]'s access class, if it belongs to one. *)
val access_class : t -> Ast.aid -> Ast.aid list option
