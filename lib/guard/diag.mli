(** Shared diagnostic indexes: which loop and which access class an
    access id belongs to, derived from the analyses a plan was built
    from. Generated accesses (span shadows, redirection bases) appear
    in neither and report [None]. *)

open Minic

type t = {
  loop_of : (Ast.aid, Ast.lid) Hashtbl.t;
  class_of : (Ast.aid, Ast.aid list) Hashtbl.t;
}

(** Build the indexes from the analyses behind a plan. *)
val of_analyses : Privatize.Analyze.result list -> t

(** The loop whose dependence graph contains [aid], if any. *)
val loop : t -> Ast.aid -> Ast.lid option

(** The members of [aid]'s access class, if it belongs to one. *)
val access_class : t -> Ast.aid -> Ast.aid list option

(** One structured event from the domain-execution supervisor: a chunk
    crash, a retry, a watchdog fire, a detected write-log corruption.
    [se_loop]/[se_chunk] are [-1] when the event is not tied to a
    specific chunk (e.g. a whole-run abort). *)
type sup_event = {
  se_attempt : int;  (** 1-based supervised run attempt *)
  se_domain : int;  (** domain index, [-1] for the watchdog itself *)
  se_loop : Ast.lid;
  se_chunk : int;
  se_kind : string;
      (** "crash" | "retry" | "retry-exhausted" | "stall" | "watchdog"
          | "corrupt" | "steal-lost" | "abort" | "recovered" *)
  se_detail : string;
}

val sup_event_to_string : sup_event -> string
