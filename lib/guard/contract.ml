(** The privatization-contract checker.

    A correct expansion is an equivalence transformation of the
    sequential program: because the simulator executes iterations in
    sequential order, every original access site must load and store
    exactly the value sequence the original program produced, and the
    final contents of every global the expansion left alone must match
    bit for bit. A misclassified access class (a dependence the
    profiler missed, an imprecise alias result, an injected fault)
    breaks one of these first at some access — which this checker
    localizes.

    Three layers, ordered from cheapest to strongest:

    - {!revalidate}: static cross-check of the plan's Definition-5
      claims against a reference classification, before running
      anything.
    - {!attach}: per-access value streams. The sequential oracle
      records (kind, value) per original access site; the expanded run
      replays them cursor-by-cursor and raises at the first diverging
      access, naming its loop and access class. Pointer-valued
      accesses are excluded — addresses legitimately differ between
      runs.
    - {!finalize}: stream-completeness plus a final-state comparison
      of eligible globals (non-expanded, pointer-free): expanded
      copies legally hold per-thread partial states, everything else
      must equal the oracle byte for byte. *)

open Minic

type oracle = {
  o_streams : (Ast.aid, Bytes.t) Hashtbl.t;
      (** per access site: 9-byte events, kind char + value (LE) *)
  o_finals : (string, string) Hashtbl.t;  (** global name -> final bytes *)
  o_output : string;
  o_exit : int;
}

let kind_char = function Visit.Load -> 'L' | Visit.Store -> 'S'

let read_bytes mem addr size : string =
  String.init size (fun i ->
      Char.chr (Int64.to_int (Interp.Memory.load mem (addr + i) 1) land 0xff))

(** Access sites of the analyses' loops whose lvalue is not
    pointer-typed (pointer values are addresses and legitimately
    differ between runs). *)
let monitorable_aids (prog : Ast.program)
    (analyses : Privatize.Analyze.result list) : (Ast.aid, unit) Hashtbl.t =
  let sites = Hashtbl.create 256 in
  List.iter
    (fun (a : Privatize.Analyze.result) ->
      List.iter
        (fun (s : Depgraph.Graph.site) ->
          Hashtbl.replace sites s.Depgraph.Graph.s_aid ())
        a.Privatize.Analyze.classification.Privatize.Classify.graph
          .Depgraph.Graph.sites)
    analyses;
  let monitored = Hashtbl.create 256 in
  let env = Typecheck.make_env prog in
  List.iter
    (fun (f : Ast.fundef) ->
      let fe = Typecheck.fenv_of env f in
      List.iter
        (fun (a : Visit.access) ->
          if Hashtbl.mem sites a.Visit.acc_aid then
            match Typecheck.lval_ty fe a.Visit.acc_lval with
            | Types.Tptr _ -> ()
            | _ -> Hashtbl.replace monitored a.Visit.acc_aid ())
        (Visit.accesses_of_fun f))
    (Ast.functions prog);
  monitored

(** Globals eligible for final-state comparison in the original
    program: pointer-free types (addresses differ between runs). *)
let final_globals (prog : Ast.program) : (string * int) list =
  List.filter_map
    (fun (x, t, _) ->
      if Expand.Plan.has_pointer prog.Ast.comps t then None
      else Some (x, Types.sizeof prog.Ast.comps Loc.dummy t))
    (Ast.global_vars prog)

(** Run the original program once, recording the oracle. *)
let oracle_of (prog : Ast.program)
    (analyses : Privatize.Analyze.result list) : oracle =
  let monitored = monitorable_aids prog analyses in
  let bufs : (Ast.aid, Buffer.t) Hashtbl.t = Hashtbl.create 64 in
  let m = Interp.Machine.load prog in
  let st = m.Interp.Machine.st in
  st.Interp.Machine.observer <-
    Some
      (fun aid kind addr size ->
        if Hashtbl.mem monitored aid then begin
          let buf =
            match Hashtbl.find_opt bufs aid with
            | Some b -> b
            | None ->
              let b = Buffer.create 256 in
              Hashtbl.replace bufs aid b;
              b
          in
          Buffer.add_char buf (kind_char kind);
          Buffer.add_int64_le buf (Interp.Memory.load st.Interp.Machine.mem addr size)
        end);
  let exit_code = Interp.Machine.run m in
  let streams = Hashtbl.create 64 in
  Hashtbl.iter (fun aid b -> Hashtbl.replace streams aid (Buffer.to_bytes b)) bufs;
  let finals = Hashtbl.create 32 in
  List.iter
    (fun (x, size) ->
      let addr = Interp.Machine.global_addr st x in
      Hashtbl.replace finals x (read_bytes st.Interp.Machine.mem addr size))
    (final_globals prog);
  {
    o_streams = streams;
    o_finals = finals;
    o_output = Interp.Machine.output st;
    o_exit = exit_code;
  }

(* ------------------------------------------------------------------ *)
(* Static revalidation                                                 *)
(* ------------------------------------------------------------------ *)

(** Cross-check the plan's Definition-5 claims against a reference
    classification: every access the plan privatizes must be judged
    [Private] by the reference too.
    @raise Violation.Violation with [Contract_static] on mismatch. *)
let revalidate (plan : Expand.Plan.t)
    (reference : Privatize.Analyze.result list) : unit =
  let ref_verdicts = Expand.Plan.merge_verdicts reference in
  let diag = Diag.of_analyses reference in
  Hashtbl.iter
    (fun aid v ->
      match (v, Hashtbl.find_opt ref_verdicts aid) with
      | Privatize.Classify.Private, Some ref_v
        when ref_v <> Privatize.Classify.Private ->
        Violation.fire Violation.Contract_static ?loop:(Diag.loop diag aid)
          ~access:aid
          ?access_class:(Diag.access_class diag aid)
          "plan privatizes access %d but the reference classification \
           judges it %s (Definition-5 precondition unprovable)"
          aid
          (Privatize.Classify.show_verdict ref_v)
      | _ -> ())
    plan.Expand.Plan.verdicts

(* ------------------------------------------------------------------ *)
(* Dynamic stream + final-state checking                               *)
(* ------------------------------------------------------------------ *)

type checker = {
  c_oracle : oracle;
  c_plan : Expand.Plan.t;
  c_diag : Diag.t;
  c_cursors : (Ast.aid, int ref) Hashtbl.t;
  c_machine : Interp.Machine.t;
}

let attach (oracle : oracle) (plan : Expand.Plan.t) (m : Interp.Machine.t) :
    checker =
  let diag = Diag.of_analyses plan.Expand.Plan.analyses in
  let cursors = Hashtbl.create 64 in
  Hashtbl.iter
    (fun aid _ -> Hashtbl.replace cursors aid (ref 0))
    oracle.o_streams;
  let st = m.Interp.Machine.st in
  let prev_obs = st.Interp.Machine.observer in
  st.Interp.Machine.observer <-
    Some
      (fun aid kind addr size ->
        (match Hashtbl.find_opt cursors aid with
        | Some cur -> (
          match Hashtbl.find_opt oracle.o_streams aid with
          | Some stream ->
            if !cur + 9 > Bytes.length stream then
              Violation.fire Violation.Contract_stream
                ?loop:(Diag.loop diag aid) ~access:aid
                ?access_class:(Diag.access_class diag aid)
                "access %d executed more often than in the sequential \
                 oracle (%d events)"
                aid
                (Bytes.length stream / 9)
            else begin
              let want_kind = Bytes.get stream !cur in
              let want = Bytes.get_int64_le stream (!cur + 1) in
              let got =
                Interp.Memory.load st.Interp.Machine.mem addr size
              in
              cur := !cur + 9;
              Telemetry.Span.count "contract.stream_checks" 1;
              if want_kind <> kind_char kind || want <> got then
                Violation.fire Violation.Contract_stream
                  ?loop:(Diag.loop diag aid) ~access:aid
                  ?access_class:(Diag.access_class diag aid)
                  "access class diverges from the sequential oracle at \
                   access %d, event #%d: oracle %c %Ld, expanded %c %Ld"
                  aid
                  ((!cur / 9) - 1)
                  want_kind want (kind_char kind) got
            end
          | None -> ())
        | None -> ());
        match prev_obs with Some f -> f aid kind addr size | None -> ());
  {
    c_oracle = oracle;
    c_plan = plan;
    c_diag = diag;
    c_cursors = cursors;
    c_machine = m;
  }

(** Final-state comparison alone: every eligible (non-expanded,
    pointer-free) global must be byte-identical to the oracle. Also
    used standalone by the domain executor, whose runs have no
    per-access streams to consume.
    @raise Violation.Violation on the first divergence. *)
let check_finals (oracle : oracle) (plan : Expand.Plan.t)
    (m : Interp.Machine.t) : unit =
  let st = m.Interp.Machine.st in
  Hashtbl.iter
    (fun x want ->
      if not (Expand.Plan.expanded_var plan x) then
        match Hashtbl.find_opt st.Interp.Machine.global_addrs x with
        | Some addr ->
          let got = read_bytes st.Interp.Machine.mem addr (String.length want) in
          if got <> want then begin
            let diff = ref 0 in
            while String.get got !diff = String.get want !diff do incr diff done;
            Violation.fire Violation.Contract_final
              "final state of global '%s' diverges from the sequential \
               oracle at byte %d (oracle 0x%02x, expanded 0x%02x)"
              x !diff
              (Char.code want.[!diff])
              (Char.code got.[!diff])
          end
          else Telemetry.Span.count "contract.globals_matched" 1
        | None -> ())
    oracle.o_finals

(** Post-run checks: every oracle stream fully consumed, and every
    eligible (non-expanded, pointer-free) global byte-identical to the
    oracle's final state.
    @raise Violation.Violation on the first divergence. *)
let finalize (c : checker) : unit =
  Hashtbl.iter
    (fun aid cur ->
      match Hashtbl.find_opt c.c_oracle.o_streams aid with
      | Some stream when !cur < Bytes.length stream ->
        Violation.fire Violation.Contract_stream
          ?loop:(Diag.loop c.c_diag aid) ~access:aid
          ?access_class:(Diag.access_class c.c_diag aid)
          "access %d executed %d fewer times than in the sequential oracle"
          aid
          ((Bytes.length stream - !cur) / 9)
      | _ -> ())
    c.c_cursors;
  check_finals c.c_oracle c.c_plan c.c_machine;
  Telemetry.Span.count "contract.finalized" 1
