(** Span/bounds guards on fat-pointer redirection.

    Expansion replicates each privatized object N times back to back
    (bonded layout): the [tid]-th copy of a block allocated as
    [span * N] bytes occupies [[base + tid*span, base + (tid+1)*span)].
    Every access that lands inside such a block must therefore fall in
    a predictable copy: the current thread's copy when its access
    class is thread-private, copy 0 otherwise — and must not straddle
    a copy boundary. Anything else means the redirection arithmetic
    (or the classification behind it) is wrong, and raises
    {!Violation.Violation} instead of silently corrupting a
    neighbouring thread's data.

    The guard learns block geometry from the machine's allocation hook
    (expanded allocation sites are known from the plan: scaled
    original sites plus the transformer's generated N-copy
    allocations) and chains onto whatever observer/hooks the simulator
    already installed. Interleaved-mode plans place copies element by
    element, so no contiguous per-thread region exists to bound;
    attaching to such a plan checks nothing. *)

module IMap = Map.Make (Int)

type entry = { span : int; total : int }

type t = {
  mutable blocks : entry IMap.t;  (** base -> geometry *)
  mutable checked : int;  (** accesses that fell inside expanded blocks *)
  mutable registered : int;  (** expanded blocks seen *)
}

let checked g = g.checked
let registered g = g.registered

let attach (plan : Expand.Plan.t) (m : Interp.Machine.t) : t =
  let g = { blocks = IMap.empty; checked = 0; registered = 0 } in
  let st = m.Interp.Machine.st in
  if plan.Expand.Plan.mode = Expand.Plan.Bonded then begin
    let diag = Diag.of_analyses plan.Expand.Plan.analyses in
    let watched aid =
      Expand.Plan.expanded_alloc plan aid
      || Hashtbl.mem plan.Expand.Plan.generated_allocs aid
    in
    let prev_alloc = st.Interp.Machine.alloc_hook in
    st.Interp.Machine.alloc_hook <-
      Some
        (fun aid base size ->
          (match aid with
          | Some a when watched a ->
            let n =
              max 1 (Interp.Machine.get_global_int st Expand.Names.nthreads)
            in
            (* expanded sites allocate exactly span * N bytes *)
            if size >= n && size mod n = 0 then begin
              g.blocks <- IMap.add base { span = size / n; total = size } g.blocks;
              g.registered <- g.registered + 1
            end
          | _ -> ());
          match prev_alloc with Some f -> f aid base size | None -> ());
    let prev_free = st.Interp.Machine.free_hook in
    st.Interp.Machine.free_hook <-
      Some
        (fun base size ->
          g.blocks <- IMap.remove base g.blocks;
          match prev_free with Some f -> f base size | None -> ());
    let prev_obs = st.Interp.Machine.observer in
    st.Interp.Machine.observer <-
      Some
        (fun aid kind addr size ->
          (match IMap.find_last_opt (fun b -> b <= addr) g.blocks with
          | Some (base, e) when addr < base + e.total ->
            g.checked <- g.checked + 1;
            let off = addr - base in
            let copy = off / e.span in
            let verdict = Expand.Plan.verdict plan aid in
            let expected =
              match verdict with
              | Privatize.Classify.Private ->
                Interp.Machine.get_global_int st Expand.Names.tid
              | Privatize.Classify.Shared | Privatize.Classify.Induction -> 0
            in
            if Telemetry.Sink.enabled () then begin
              Telemetry.Span.count "guard.span_lookups" 1;
              (match verdict with
              | Privatize.Classify.Private ->
                Telemetry.Span.count "guard.redirect.private" 1
              | Privatize.Classify.Shared | Privatize.Classify.Induction ->
                Telemetry.Span.count "guard.redirect.shared" 1)
            end;
            let wrong_copy = copy <> expected in
            let straddles = (off mod e.span) + size > e.span in
            if Telemetry.Sink.enabled () then
              if wrong_copy || straddles then
                Telemetry.Span.count "guard.checks_failed" 1
              else Telemetry.Span.count "guard.checks_passed" 1;
            if wrong_copy then
              Violation.fire Violation.Span_guard ?loop:(Diag.loop diag aid)
                ~access:aid
                ?access_class:(Diag.access_class diag aid)
                "address %d lands in copy %d of expanded block %d (span %d), \
                 expected copy %d"
                addr copy base e.span expected;
            if straddles then
              Violation.fire Violation.Span_guard ?loop:(Diag.loop diag aid)
                ~access:aid
                ?access_class:(Diag.access_class diag aid)
                "access at %d (+%d) straddles a copy boundary of block %d \
                 (span %d)"
                addr size base e.span
          | _ -> ());
          match prev_obs with Some f -> f aid kind addr size | None -> ())
  end;
  g
