(** Span/bounds guards on fat-pointer redirection.

    Every access landing inside an expanded (bonded-layout) block must
    fall in the current thread's copy when its access class is
    thread-private, in copy 0 otherwise, and must not straddle a copy
    boundary; anything else raises {!Violation.Violation} with a
    [Span_guard] info instead of silently corrupting another thread's
    data. Interleaved-mode plans have no contiguous per-thread region,
    so attaching to one checks nothing. *)

type t

(** Chain the guard onto a loaded machine's allocation / free /
    observer hooks (call after the simulator installed its own hooks,
    e.g. from [Parexec.Sim]'s [attach] callback). *)
val attach : Expand.Plan.t -> Interp.Machine.t -> t

(** Accesses that fell inside expanded blocks and were checked. *)
val checked : t -> int

(** Expanded blocks registered over the run. *)
val registered : t -> int
