(** Shared diagnostic indexes: which loop and which access class an
    access id belongs to, derived from the analyses a plan was built
    from. Generated accesses (span shadows, redirection bases) appear
    in neither and report [None]. *)

open Minic

type t = {
  loop_of : (Ast.aid, Ast.lid) Hashtbl.t;
  class_of : (Ast.aid, Ast.aid list) Hashtbl.t;
}

let of_analyses (analyses : Privatize.Analyze.result list) : t =
  let loop_of = Hashtbl.create 256 in
  let class_of = Hashtbl.create 256 in
  List.iter
    (fun (a : Privatize.Analyze.result) ->
      let c = a.Privatize.Analyze.classification in
      let g = c.Privatize.Classify.graph in
      List.iter
        (fun (s : Depgraph.Graph.site) ->
          Hashtbl.replace loop_of s.Depgraph.Graph.s_aid g.Depgraph.Graph.loop)
        g.Depgraph.Graph.sites;
      List.iter
        (fun (members, _, _) ->
          List.iter (fun aid -> Hashtbl.replace class_of aid members) members)
        c.Privatize.Classify.classes)
    analyses;
  { loop_of; class_of }

let loop d aid = Hashtbl.find_opt d.loop_of aid
let access_class d aid = Hashtbl.find_opt d.class_of aid

type sup_event = {
  se_attempt : int;
  se_domain : int;
  se_loop : Ast.lid;
  se_chunk : int;
  se_kind : string;
  se_detail : string;
}

let sup_event_to_string (e : sup_event) : string =
  let where =
    if e.se_loop < 0 && e.se_chunk < 0 then ""
    else Printf.sprintf " loop=%d chunk=%d" e.se_loop e.se_chunk
  in
  let who = if e.se_domain < 0 then "watchdog" else Printf.sprintf "dom%d" e.se_domain in
  Printf.sprintf "supervisor[attempt %d] %s %s%s: %s" e.se_attempt who
    e.se_kind where e.se_detail
