(** The privatization-contract checker: cross-checks an expanded run
    against the sequential oracle and localizes the first diverging
    access class. See the implementation header for the three layers
    (static revalidation, per-access value streams, final-state
    comparison). All failures raise {!Violation.Violation}. *)

open Minic

type oracle = {
  o_streams : (Ast.aid, Bytes.t) Hashtbl.t;
      (** per access site: 9-byte events, kind char + value (LE) *)
  o_finals : (string, string) Hashtbl.t;  (** global name -> final bytes *)
  o_output : string;
  o_exit : int;
}

(** Run the original program once sequentially, recording per-access
    value streams (pointer-typed accesses excluded — addresses differ
    between runs), final bytes of pointer-free globals, output and
    exit code. *)
val oracle_of : Ast.program -> Privatize.Analyze.result list -> oracle

(** Static cross-check of the plan's Definition-5 claims against a
    reference classification: every access the plan privatizes must be
    judged [Private] by the reference too.
    @raise Violation.Violation with [Contract_static] on mismatch. *)
val revalidate : Expand.Plan.t -> Privatize.Analyze.result list -> unit

type checker

(** Chain the stream checker onto a loaded machine of the {e expanded}
    program (from [Parexec.Sim]'s [attach] callback); raises at the
    first access whose (kind, value) diverges from the oracle. *)
val attach : oracle -> Expand.Plan.t -> Interp.Machine.t -> checker

(** Post-run checks: every oracle stream fully consumed, and every
    eligible (non-expanded, pointer-free) global byte-identical to the
    oracle's final state.
    @raise Violation.Violation on the first divergence. *)
val finalize : checker -> unit

(** The final-state comparison alone, against any post-run machine of
    the expanded program. The domain executor validates every run with
    this (its runs have no per-access streams).
    @raise Violation.Violation with [Contract_final] on divergence. *)
val check_finals : oracle -> Expand.Plan.t -> Interp.Machine.t -> unit
