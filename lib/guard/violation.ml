(** Structured guard violations.

    Every runtime or static guard in this library reports failure as a
    {!Violation} carrying which guard fired, which loop and access (and
    access class) it localized, and a human-readable detail line — the
    diagnostics the degradation ladder surfaces instead of silently
    corrupted results. *)

open Minic

type guard_kind =
  | Span_guard
      (** a redirected access landed outside the thread's copy of an
          expanded block (or straddled a copy boundary) *)
  | Contract_static
      (** a Definition-5 precondition claimed by the expansion plan is
          not supported by the reference classification *)
  | Contract_stream
      (** the per-access value stream of an expanded run diverged from
          the sequential oracle *)
  | Contract_final
      (** the final memory state of an eligible global diverged from
          the sequential oracle *)

type info = {
  guard : guard_kind;
  loop : Ast.lid option;  (** target loop the access belongs to *)
  access : Ast.aid option;  (** the first offending access site *)
  access_class : Ast.aid list option;  (** members of its access class *)
  detail : string;
}

exception Violation of info

let guard_name = function
  | Span_guard -> "span-guard"
  | Contract_static -> "contract-static"
  | Contract_stream -> "contract-stream"
  | Contract_final -> "contract-final"

let to_string (i : info) : string =
  let opt f = function Some v -> f v | None -> "?" in
  Printf.sprintf "[%s] loop=%s access=%s class={%s}: %s"
    (guard_name i.guard)
    (opt string_of_int i.loop)
    (opt string_of_int i.access)
    (match i.access_class with
    | Some aids -> String.concat "," (List.map string_of_int aids)
    | None -> "?")
    i.detail

let pp fmt i = Format.pp_print_string fmt (to_string i)

let fire ?loop ?access ?access_class guard fmt =
  Printf.ksprintf
    (fun detail ->
      raise (Violation { guard; loop; access; access_class; detail }))
    fmt

(* Violation escapes through [Printexc]-formatted reports in tests and
   the CLI; give it a readable rendering there too. *)
let () =
  Printexc.register_printer (function
    | Violation i -> Some ("Guard.Violation " ^ to_string i)
    | _ -> None)
