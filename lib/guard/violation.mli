(** Structured guard violations.

    Every runtime or static guard in this library reports failure as a
    {!Violation} carrying which guard fired, which loop and access (and
    access class) it localized, and a human-readable detail line. *)

open Minic

type guard_kind =
  | Span_guard
      (** a redirected access landed outside the thread's copy of an
          expanded block (or straddled a copy boundary) *)
  | Contract_static
      (** a Definition-5 precondition claimed by the expansion plan is
          not supported by the reference classification *)
  | Contract_stream
      (** the per-access value stream of an expanded run diverged from
          the sequential oracle *)
  | Contract_final
      (** the final memory state of an eligible global diverged from
          the sequential oracle *)

type info = {
  guard : guard_kind;
  loop : Ast.lid option;  (** target loop the access belongs to *)
  access : Ast.aid option;  (** the first offending access site *)
  access_class : Ast.aid list option;  (** members of its access class *)
  detail : string;
}

exception Violation of info

val guard_name : guard_kind -> string
val to_string : info -> string
val pp : Format.formatter -> info -> unit

(** Raise a {!Violation} with a formatted detail line. *)
val fire :
  ?loop:Ast.lid ->
  ?access:Ast.aid ->
  ?access_class:Ast.aid list ->
  guard_kind ->
  ('a, unit, string, 'b) format4 ->
  'a
