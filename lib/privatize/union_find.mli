(** Union-find with path compression and union by rank; backs the
    access-class equivalence of Definition 4. Keys are arbitrary ints
    (access ids). *)

type t

val create : unit -> t

(** Register a key as its own singleton class (idempotent). *)
val add : t -> int -> unit

(** Canonical representative of a key's class (adds it if new). *)
val find : t -> int -> int

val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

(** All classes, each as a sorted member list, deterministically
    ordered. *)
val classes : t -> int list list

(** Every key ever added, sorted. *)
val members : t -> int list
