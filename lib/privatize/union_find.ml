(** Union-find with path compression and union by rank; backs the
    access-class equivalence of Definition 4. Keys are arbitrary ints
    (access ids). *)

type t = {
  parent : (int, int) Hashtbl.t;
  rank : (int, int) Hashtbl.t;
}

let create () = { parent = Hashtbl.create 64; rank = Hashtbl.create 64 }

let add uf x =
  if not (Hashtbl.mem uf.parent x) then begin
    Hashtbl.replace uf.parent x x;
    Hashtbl.replace uf.rank x 0
  end

let rec find uf x : int =
  add uf x;
  let p = Hashtbl.find uf.parent x in
  if p = x then x
  else begin
    let root = find uf p in
    Hashtbl.replace uf.parent x root;
    root
  end

let union uf a b =
  let ra = find uf a and rb = find uf b in
  if ra <> rb then begin
    let ka = Hashtbl.find uf.rank ra and kb = Hashtbl.find uf.rank rb in
    if ka < kb then Hashtbl.replace uf.parent ra rb
    else if ka > kb then Hashtbl.replace uf.parent rb ra
    else begin
      Hashtbl.replace uf.parent rb ra;
      Hashtbl.replace uf.rank ra (ka + 1)
    end
  end

let same uf a b = find uf a = find uf b

(** All classes, each as a sorted member list. *)
let classes uf : int list list =
  let by_root = Hashtbl.create 16 in
  Hashtbl.iter
    (fun x _ ->
      let r = find uf x in
      Hashtbl.replace by_root r
        (x :: Option.value ~default:[] (Hashtbl.find_opt by_root r)))
    uf.parent;
  Hashtbl.fold (fun _ members acc -> List.sort compare members :: acc) by_root []
  |> List.sort compare

let members uf : int list =
  List.sort compare (Hashtbl.fold (fun x _ acc -> x :: acc) uf.parent [])
