(** Access-class partitioning (Definitions 4-5 of the paper).

    A loop-independent dependence between two accesses is an
    equivalence relation; its classes are {e access classes}. A class
    is {e thread-private} iff

    + no member is an upwards-exposed load or a downwards-exposed
      store,
    + no member participates in a loop-carried flow dependence, and
    + some member participates in a loop-carried anti- or output
      dependence.

    Private accesses are redirected to per-thread copies by the
    expansion pass; all other accesses are {e shared} and keep using
    copy 0. *)

open Minic

type verdict =
  | Private  (** redirected to the thread's copy (Definition 5) *)
  | Shared  (** keeps using copy 0 *)
  | Induction
      (** a basic induction variable of the loop: its carried flow is
          managed by the parallel runtime (each thread derives its own
          indices), so it is neither expanded nor ordered *)
[@@deriving show { with_path = false }, eq]

(** Why a class was rejected (for reports and tests). *)
type reason =
  | Accepted
  | Has_upwards_exposed of Ast.aid
  | Has_downwards_exposed of Ast.aid
  | Has_carried_flow of Ast.aid
  | No_carried_anti_or_output
[@@deriving show { with_path = false }, eq]

(** Which Definition-4/5 condition decided a class — the machine-readable
    face of [reason], paired with concrete evidence for --explain. *)
type rule =
  | Rule_private  (** every condition of Definition 5 held *)
  | Rule_upwards_exposed  (** rejected: upwards-exposed load (Def. 2) *)
  | Rule_downwards_exposed  (** rejected: downwards-exposed store (Def. 3) *)
  | Rule_carried_flow  (** rejected: loop-carried flow dependence *)
  | Rule_no_carried_anti_output
      (** rejected: no carried anti/output dependence, so expansion
          would buy nothing *)
  | Rule_induction  (** runtime-managed basic induction variable *)
[@@deriving show { with_path = false }, eq]

let rule_name = function
  | Rule_private -> "carried anti/output, no exposure"
  | Rule_upwards_exposed -> "upwards-exposed load"
  | Rule_downwards_exposed -> "downwards-exposed store"
  | Rule_carried_flow -> "loop-carried flow"
  | Rule_no_carried_anti_output -> "no carried anti/output"
  | Rule_induction -> "induction variable"

(** Decision record for one access class: the verdict, the rule that
    fired, the member access that triggered it (if any) and the
    dependence edges cited as evidence. *)
type provenance = {
  p_aids : Ast.aid list;  (** class members, sorted *)
  p_verdict : verdict;
  p_rule : rule;
  p_witness : Ast.aid option;  (** member that fired the rule *)
  p_evidence : Depgraph.Graph.edge list;  (** sorted, deduplicated *)
}

type classification = {
  graph : Depgraph.Graph.t;
  verdicts : (Ast.aid, verdict) Hashtbl.t;
  classes : (Ast.aid list * verdict * reason) list;
      (** every access class with its verdict and justification *)
  provenance : provenance list;
      (** one decision record per class, in [classes] order *)
}

(** Partition the accesses of [g] into classes and classify each.
    [induction] lists access ids belonging to basic induction
    variables of the loop; a class consisting solely of such accesses
    is runtime-managed rather than expanded. *)
let classify ?(induction : Ast.aid list = []) (g : Depgraph.Graph.t) :
    classification =
  let uf = Union_find.create () in
  List.iter (fun s -> Union_find.add uf s.Depgraph.Graph.s_aid) g.Depgraph.Graph.sites;
  List.iter
    (fun (a, b) -> Union_find.union uf a b)
    (Depgraph.Graph.independent_pairs g);
  let judge (cls : Ast.aid list) : verdict * reason =
    if List.for_all (fun a -> List.mem a induction) cls then
      (Induction, Accepted)
    else
      let find_mem pred = List.find_opt pred cls in
      match find_mem (Depgraph.Graph.is_upwards_exposed g) with
      | Some a -> (Shared, Has_upwards_exposed a)
      | None -> (
        match find_mem (Depgraph.Graph.is_downwards_exposed g) with
        | Some a -> (Shared, Has_downwards_exposed a)
        | None -> (
          match find_mem (Depgraph.Graph.in_carried_flow g) with
          | Some a -> (Shared, Has_carried_flow a)
          | None ->
            if List.exists (Depgraph.Graph.in_carried_anti_or_output g) cls
            then (Private, Accepted)
            else (Shared, No_carried_anti_or_output)))
  in
  (* The edges a decision cites: for the rule that fired, the concrete
     dependences that make it true. Exposure marks are witnessed by a
     value flowing across the loop boundary — the profiler records the
     fact but no edge (the outside party is not a loop site) — so the
     citation leads with a synthesized boundary flow edge, followed by
     whatever in-loop edges the witness participates in. *)
  let evidence (cls : Ast.aid list) (v : verdict) (r : reason) :
      rule * Ast.aid option * Depgraph.Graph.edge list =
    let carried_anti_output (e : Depgraph.Graph.edge) =
      e.Depgraph.Graph.e_carried
      && (e.Depgraph.Graph.e_kind = Depgraph.Graph.Anti
          || e.Depgraph.Graph.e_kind = Depgraph.Graph.Output)
    in
    let carried_flow (e : Depgraph.Graph.edge) =
      e.Depgraph.Graph.e_carried
      && e.Depgraph.Graph.e_kind = Depgraph.Graph.Flow
    in
    let class_edges pred =
      List.filter pred (Depgraph.Graph.edges_involving_any g cls)
    in
    let or_class_edges = function
      | [] -> class_edges (fun _ -> true)
      | es -> es
    in
    let flow_in w =
      (* a pre-loop (or previous-invocation) value reaches this load *)
      Depgraph.Graph.
        { e_src = boundary; e_dst = w; e_kind = Flow; e_carried = false }
    in
    let flow_out w =
      (* this store's value is read after the loop *)
      Depgraph.Graph.
        { e_src = w; e_dst = boundary; e_kind = Flow; e_carried = false }
    in
    match (v, r) with
    | Induction, _ ->
      ( Rule_induction,
        None,
        class_edges (fun e -> e.Depgraph.Graph.e_carried) )
    | _, Accepted -> (Rule_private, None, class_edges carried_anti_output)
    | _, Has_upwards_exposed w ->
      ( Rule_upwards_exposed,
        Some w,
        flow_in w :: Depgraph.Graph.edges_involving g w )
    | _, Has_downwards_exposed w ->
      ( Rule_downwards_exposed,
        Some w,
        flow_out w :: Depgraph.Graph.edges_involving g w )
    | _, Has_carried_flow w ->
      ( Rule_carried_flow,
        Some w,
        or_class_edges
          (List.filter carried_flow (Depgraph.Graph.edges_involving g w)) )
    | _, No_carried_anti_or_output -> (
      ( Rule_no_carried_anti_output,
        None,
        match class_edges (fun _ -> true) with
        | [] ->
          (* a class with no in-loop edges at all: its stores were
             overwritten after the loop without being read — cite those
             boundary output dependences *)
          List.filter_map
            (fun a ->
              if Depgraph.Graph.is_killed_after_loop g a then
                Some
                  Depgraph.Graph.
                    {
                      e_src = a;
                      e_dst = boundary;
                      e_kind = Output;
                      e_carried = false;
                    }
              else None)
            cls
        | es -> es ))
  in
  (* Sites that never executed inside the loop generate no class:
     Definition 4's equivalence is over observed accesses, and the
     profile knows nothing about a dead site (its accesses default to
     Shared in [verdict], which is what the transformer assumed
     anyway). *)
  let observed (cls : Ast.aid list) =
    List.exists
      (fun a ->
        Depgraph.Graph.dyn_count g a > 0
        || Depgraph.Graph.is_upwards_exposed g a
        || Depgraph.Graph.is_downwards_exposed g a
        || List.mem a induction
        || Depgraph.Graph.edges_involving g a <> [])
      cls
  in
  let classes =
    (* sorted members, then classes sorted by first member: the
       provenance list (and the --explain table built from it) must be
       deterministic *)
    List.map (List.sort compare) (Union_find.classes uf)
    |> List.filter observed
    |> List.sort compare
    |> List.map (fun cls ->
           let v, r = judge cls in
           (cls, v, r))
  in
  let provenance =
    List.map
      (fun (cls, v, r) ->
        let p_rule, p_witness, p_evidence = evidence cls v r in
        { p_aids = cls; p_verdict = v; p_rule; p_witness; p_evidence })
      classes
  in
  let verdicts = Hashtbl.create 64 in
  List.iter
    (fun (cls, v, _) -> List.iter (fun a -> Hashtbl.replace verdicts a v) cls)
    classes;
  { graph = g; verdicts; classes; provenance }

let verdict_name = function
  | Private -> "private"
  | Shared -> "shared"
  | Induction -> "induction"

(** Rows of the --explain provenance table: class members, verdict,
    rule, triggering member and cited dependence edges, rendered
    against the graph's site texts. *)
let explain_rows (c : classification) : string list list =
  let g = c.graph in
  List.map
    (fun p ->
      let members =
        String.concat ", " (List.map (Depgraph.Graph.site_text g) p.p_aids)
      in
      let witness =
        match p.p_witness with
        | Some w -> Depgraph.Graph.site_text g w
        | None -> "-"
      in
      let evidence =
        match p.p_evidence with
        | [] ->
          (* only dependence-free stores land here: every byte they
             wrote was neither read nor overwritten again, so the
             profile holds no edge to cite *)
          Printf.sprintf "(dependence-free: 0 edges over %d dynamic accesses)"
            (List.fold_left
               (fun acc a -> acc + Depgraph.Graph.dyn_count g a)
               0 p.p_aids)
        | es -> String.concat "; " (List.map (Depgraph.Graph.cite_edge g) es)
      in
      [
        members; verdict_name p.p_verdict; rule_name p.p_rule; witness; evidence;
      ])
    c.provenance

let verdict (c : classification) (aid : Ast.aid) : verdict =
  Option.value ~default:Shared (Hashtbl.find_opt c.verdicts aid)

let is_private c aid = verdict c aid = Private

let private_aids (c : classification) : Ast.aid list =
  Hashtbl.fold (fun a v acc -> if v = Private then a :: acc else acc)
    c.verdicts []
  |> List.sort compare

(** Figure 8's three-way split of the loop's {e dynamic} accesses. *)
type breakdown = {
  free_of_carried : int;  (** accesses free of any loop-carried dep *)
  expandable : int;  (** thread-private accesses (Definition 5) *)
  with_carried : int;  (** remaining accesses involved in carried deps *)
}

let breakdown (c : classification) : breakdown =
  let g = c.graph in
  List.fold_left
    (fun acc (s : Depgraph.Graph.site) ->
      let aid = s.Depgraph.Graph.s_aid in
      let n = Depgraph.Graph.dyn_count g aid in
      if not (Depgraph.Graph.in_any_carried g aid) then
        { acc with free_of_carried = acc.free_of_carried + n }
      else
        match verdict c aid with
        (* induction variables are privatized scalars in the paper's
           terms: their carried dependence never crosses threads *)
        | Private | Induction -> { acc with expandable = acc.expandable + n }
        | Shared -> { acc with with_carried = acc.with_carried + n })
    { free_of_carried = 0; expandable = 0; with_carried = 0 }
    g.Depgraph.Graph.sites

(** Accesses that carry cross-iteration flow dependences on shared
    data; the parallel simulator serializes the span between the first
    and last such access of each iteration (DOACROSS post/wait). *)
let ordered_aids (c : classification) : Ast.aid list =
  List.filter_map
    (fun (s : Depgraph.Graph.site) ->
      let aid = s.Depgraph.Graph.s_aid in
      if
        verdict c aid = Shared
        && Depgraph.Graph.involved_in c.graph aid (fun e ->
               e.Depgraph.Graph.e_carried
               && e.Depgraph.Graph.e_kind = Depgraph.Graph.Flow)
      then Some aid
      else None)
    c.graph.Depgraph.Graph.sites

(** Ordered accesses grouped into synchronization channels: accesses of
    the same access class synchronize on the same post/wait pair, and
    carried-flow edges connect classes into one channel. The parallel
    simulator pipelines independent channels (the paper places one
    synchronization per cross-thread dependence, not a single global
    lock). Returns (aid, channel, is_write) triples. *)
let ordered_channels (c : classification) : (Ast.aid * int * bool) list =
  let ordered = ordered_aids c in
  if ordered = [] then []
  else begin
    (* union classes, then merge classes linked by carried flow *)
    let uf = Union_find.create () in
    List.iter (fun a -> Union_find.add uf a) ordered;
    List.iteri
      (fun _ (cls, _, _) ->
        match List.filter (fun a -> List.mem a ordered) cls with
        | [] -> ()
        | first :: rest ->
          List.iter (fun a -> Union_find.union uf first a) rest)
      c.classes;
    List.iter
      (fun (e : Depgraph.Graph.edge) ->
        if
          e.Depgraph.Graph.e_carried
          && e.Depgraph.Graph.e_kind = Depgraph.Graph.Flow
          && List.mem e.Depgraph.Graph.e_src ordered
          && List.mem e.Depgraph.Graph.e_dst ordered
        then Union_find.union uf e.Depgraph.Graph.e_src e.Depgraph.Graph.e_dst)
      (Depgraph.Graph.edges c.graph);
    let kind_of aid =
      match Depgraph.Graph.site c.graph aid with
      | Some s -> s.Depgraph.Graph.s_kind = Visit.Store
      | None -> false
    in
    List.map
      (fun aid -> (aid, Union_find.find uf aid, kind_of aid))
      ordered
  end

(** A loop is DOALL when no shared access is involved in a loop-carried
    flow dependence (privatization removes the carried anti/output
    ones); otherwise it needs DOACROSS scheduling. *)
let parallelism_kind (c : classification) : [ `Doall | `Doacross ] =
  if ordered_aids c = [] then `Doall else `Doacross
