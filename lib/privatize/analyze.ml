(** One-call front door: profile a loop and classify its accesses. *)

open Minic

type result = {
  profile : Depgraph.Profiler.profile;
  classification : Classify.classification;
  induction_vars : string list;
  loop_stmt : Ast.stmt;
  loop_fun : Ast.fundef;
}

let analyze (prog : Ast.program) (lid : Ast.lid) : result =
  let loop_fun, loop_stmt =
    match Visit.find_loop_fun prog lid with
    | Some fs -> fs
    | None -> invalid_arg (Printf.sprintf "analyze: no loop with id %d" lid)
  in
  let profile = Depgraph.Profiler.profile prog lid in
  let induction_vars, classification =
    Telemetry.Span.wall "phase.classify" @@ fun () ->
    let induction_vars = Induction.find prog loop_stmt in
    let induction =
      Induction.access_ids_of_vars
        profile.Depgraph.Profiler.graph.Depgraph.Graph.sites prog loop_stmt
        induction_vars
    in
    let classification =
      Classify.classify ~induction profile.Depgraph.Profiler.graph
    in
    (induction_vars, classification)
  in
  if Telemetry.Sink.enabled () then begin
    let tally v =
      List.length
        (List.filter (fun (_, v', _) -> v' = v) classification.Classify.classes)
    in
    Telemetry.Span.count "classify.classes.private" (tally Classify.Private);
    Telemetry.Span.count "classify.classes.shared" (tally Classify.Shared);
    Telemetry.Span.count "classify.classes.induction" (tally Classify.Induction);
    (* decision provenance: how often each Definition-4/5 rule fired,
       and how many dependence edges back the verdicts up *)
    List.iter
      (fun (p : Classify.provenance) ->
        Telemetry.Span.count
          ("classify.rule."
          ^ String.map
              (fun c -> if c = ' ' || c = '/' then '_' else c)
              (Classify.rule_name p.Classify.p_rule))
          1;
        Telemetry.Span.count "classify.evidence.edges"
          (List.length p.Classify.p_evidence))
      classification.Classify.provenance
  end;
  { profile; classification; induction_vars; loop_stmt; loop_fun }
