(** Access-class partitioning (Definitions 4-5 of the paper).

    A loop-independent dependence between two accesses is an
    equivalence relation; its classes are {e access classes}. A class
    is {e thread-private} iff no member is an upwards-exposed load or
    downwards-exposed store, no member participates in a loop-carried
    flow dependence, and some member participates in a loop-carried
    anti- or output dependence. *)

open Minic

type verdict =
  | Private  (** redirected to the thread's copy (Definition 5) *)
  | Shared  (** keeps using copy 0 *)
  | Induction
      (** a basic induction variable of the loop: its carried flow is
          managed by the parallel runtime (each thread derives its own
          indices), so it is neither expanded nor ordered *)

val pp_verdict : Format.formatter -> verdict -> unit
val show_verdict : verdict -> string
val equal_verdict : verdict -> verdict -> bool

(** Why a class was rejected (for reports and tests). *)
type reason =
  | Accepted
  | Has_upwards_exposed of Ast.aid
  | Has_downwards_exposed of Ast.aid
  | Has_carried_flow of Ast.aid
  | No_carried_anti_or_output

val pp_reason : Format.formatter -> reason -> unit
val show_reason : reason -> string

(** Which Definition-4/5 condition decided a class — the
    machine-readable face of [reason], paired with evidence. *)
type rule =
  | Rule_private  (** every condition of Definition 5 held *)
  | Rule_upwards_exposed  (** rejected: upwards-exposed load (Def. 2) *)
  | Rule_downwards_exposed  (** rejected: downwards-exposed store (Def. 3) *)
  | Rule_carried_flow  (** rejected: loop-carried flow dependence *)
  | Rule_no_carried_anti_output
      (** rejected: no carried anti/output dependence to remove *)
  | Rule_induction  (** runtime-managed basic induction variable *)

val pp_rule : Format.formatter -> rule -> unit
val show_rule : rule -> string
val equal_rule : rule -> rule -> bool
val rule_name : rule -> string

(** Decision record for one access class: the verdict, the rule that
    fired, the member that triggered it (if any) and the dependence
    edges cited as evidence. *)
type provenance = {
  p_aids : Ast.aid list;  (** class members, sorted *)
  p_verdict : verdict;
  p_rule : rule;
  p_witness : Ast.aid option;  (** member that fired the rule *)
  p_evidence : Depgraph.Graph.edge list;  (** sorted, deduplicated *)
}

type classification = {
  graph : Depgraph.Graph.t;
  verdicts : (Ast.aid, verdict) Hashtbl.t;
  classes : (Ast.aid list * verdict * reason) list;
      (** every access class with its verdict and justification *)
  provenance : provenance list;
      (** one decision record per class, in [classes] order *)
}

(** Partition the accesses of the graph into classes and classify
    each. [induction] lists access ids of the loop's basic induction
    variables; a class consisting solely of those is runtime-managed
    rather than expanded. *)
val classify :
  ?induction:Ast.aid list -> Depgraph.Graph.t -> classification

val verdict_name : verdict -> string

(** Rows of the --explain provenance table (class members, verdict,
    rule, triggering member, cited edges), rendered against the
    graph's site texts; deterministic order. *)
val explain_rows : classification -> string list list

val verdict : classification -> Ast.aid -> verdict
val is_private : classification -> Ast.aid -> bool
val private_aids : classification -> Ast.aid list

(** Figure 8's three-way split of the loop's {e dynamic} accesses. *)
type breakdown = {
  free_of_carried : int;  (** accesses free of any loop-carried dep *)
  expandable : int;  (** thread-private accesses (Definition 5) *)
  with_carried : int;  (** remaining accesses involved in carried deps *)
}

val breakdown : classification -> breakdown

(** Shared accesses carrying cross-iteration flow dependences; the
    parallel simulator synchronizes them with post/wait. *)
val ordered_aids : classification -> Ast.aid list

(** Ordered accesses grouped into synchronization channels (access
    classes merged along carried flow); each channel is an independent
    post/wait pair. Returns (aid, channel, is_write) triples. *)
val ordered_channels : classification -> (Ast.aid * int * bool) list

(** DOALL iff no shared access is involved in a loop-carried flow
    dependence (privatization removes the carried anti/output ones). *)
val parallelism_kind : classification -> [ `Doall | `Doacross ]
