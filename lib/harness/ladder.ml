(** The graceful-degradation ladder.

    Static expansion is speculation: Definition 5's preconditions rest
    on profiled dependences and alias analysis, either of which can be
    wrong. Instead of trusting the expanded program blindly, each run
    climbs down a ladder until a rung holds:

    + {b Static expansion} — the expanded program runs under span
      guards and the privatization contract checker, cross-checked
      against the sequential oracle.
    + {b Runtime privatization} — on an unprovable precondition, a
      tripped guard, a failed run or diverging output, the {e original}
      program is retried under the SpiceC-style runtime-privatization
      baseline (§4.2.1), which privatizes dynamically and needs no
      static claims.
    + {b Sequential} — on further failure, the sequential oracle's
      result is used directly.

    When real execution is requested ([exec = `Domains]) a rung sits
    {e above} static expansion: the expanded program on real OCaml
    domains under [Domexec.Supervisor]. It falls — to the very same
    simulated chain — when supervision aborts (retry budget, watchdog)
    or when the recovered state fails the contract check.

    Every step down records a structured diagnostic (which rung fell,
    why — including the guard's loop/access-class localization), so a
    degraded run is explainable, never silent. *)

open Minic

type rung = Domains | Static_expansion | Runtime_privatization | Sequential

let rung_name = function
  | Domains -> "domains"
  | Static_expansion -> "static-expansion"
  | Runtime_privatization -> "runtime-privatization"
  | Sequential -> "sequential"

type trigger =
  | Unsupported_shape of string
      (** the transformer rejected the program (Definition-5 scope) *)
  | Static_contract of Guard.Violation.info
      (** revalidation against the reference classification failed *)
  | Guard_trip of Guard.Violation.info
      (** a span guard or contract check fired during/after the run *)
  | Run_failure of string  (** machine fault (OOM, memory fault, ...) *)
  | Output_mismatch  (** program output differed from the oracle *)
  | Retry_exhausted of string
      (** the supervisor's chunk-retry budget ran out *)
  | Watchdog_timeout of string
      (** a stalled domain forced the watchdog to cancel the run *)
  | Recovery_mismatch of string
      (** recovery produced state that fails the contract check *)

let trigger_to_string = function
  | Unsupported_shape m -> "unsupported shape: " ^ m
  | Static_contract v -> "static contract: " ^ Guard.Violation.to_string v
  | Guard_trip v -> "guard trip: " ^ Guard.Violation.to_string v
  | Run_failure m -> "run failure: " ^ m
  | Output_mismatch -> "output mismatch vs sequential oracle"
  | Retry_exhausted m -> "retry budget exhausted: " ^ m
  | Watchdog_timeout m -> "watchdog timeout: " ^ m
  | Recovery_mismatch m -> "post-recovery contract mismatch: " ^ m

type diagnostic = { fell_from : rung; trigger : trigger }

let diagnostic_to_string d =
  Printf.sprintf "%s fell: %s" (rung_name d.fell_from)
    (trigger_to_string d.trigger)

type outcome = {
  rung : rung;  (** the rung that finally held *)
  diagnostics : diagnostic list;  (** one per rung that fell, in order *)
  output : string;
  exit_code : int;
  par : Parexec.Sim.par_result option;
      (** the parallel result of the holding rung (None for
          [Sequential] and [Domains]) *)
  dom_sup : Domexec.Supervisor.t option;
      (** the supervised run, whenever the [Domains] rung was tried *)
}

let int_t = Types.Tint Types.IInt

(* The original program plus the two runtime globals the simulator
   pokes; running it under run_parallel executes the unmodified
   sequential semantics with the runtime-privatization surcharge. *)
let rp_program (orig : Ast.program) : Ast.program =
  let p = Expand.Plan.copy_program orig in
  p.Ast.globals <-
    Ast.Gvar (Expand.Names.tid, int_t, None)
    :: Ast.Gvar (Expand.Names.nthreads, int_t, None)
    :: p.Ast.globals;
  p

let run ?(threads = 4) ?reference ?oracle ?span_shrink ?attach_extra
    ?(exec = `Sim) ?domains ?chunk ?force ?retry ?watchdog_ms ?fault ?trace
    (orig : Ast.program) (analyses : Privatize.Analyze.result list) : outcome
    =
  let oracle =
    match oracle with
    | Some o -> o
    | None -> Guard.Contract.oracle_of orig analyses
  in
  let specs = List.map Parexec.Sim.spec_of_analysis analyses in
  let extra m = match attach_extra with Some f -> f m | None -> () in
  (* Rung 0: guarded static expansion. *)
  let static_attempt () =
    match Expand.Transform.expand_loops ?span_shrink orig analyses with
    | exception Expand.Transform.Unsupported msg ->
      Error (Unsupported_shape msg)
    | res -> (
      let plan = res.Expand.Transform.plan in
      match
        Option.iter (fun r -> Guard.Contract.revalidate plan r) reference
      with
      | exception Guard.Violation.Violation v -> Error (Static_contract v)
      | () -> (
        let checker = ref None in
        let attach m =
          ignore (Guard.Span_guard.attach plan m);
          checker := Some (Guard.Contract.attach oracle plan m);
          extra m
        in
        match
          Parexec.Sim.run_parallel ~attach res.Expand.Transform.transformed
            specs ~threads
        with
        | exception Guard.Violation.Violation v -> Error (Guard_trip v)
        | exception Interp.Memory.Fault msg -> Error (Run_failure msg)
        | exception Interp.Machine.Runtime_error msg ->
          Error (Run_failure msg)
        | pr -> (
          match Option.iter Guard.Contract.finalize !checker with
          | exception Guard.Violation.Violation v -> Error (Guard_trip v)
          | () ->
            if
              pr.Parexec.Sim.pr_output <> oracle.Guard.Contract.o_output
              || pr.Parexec.Sim.pr_exit <> oracle.Guard.Contract.o_exit
            then Error Output_mismatch
            else Ok pr)))
  in
  (* The simulated chain (static expansion -> runtime privatization ->
     sequential), entered either directly or as the fallback of the
     real-domain rung; [diags0]/[dom_sup] carry what happened above. *)
  let sim_chain (diags0 : diagnostic list)
      (dom_sup : Domexec.Supervisor.t option) : outcome =
    match static_attempt () with
    | Ok pr ->
      {
        rung = Static_expansion;
        diagnostics = diags0;
        output = pr.Parexec.Sim.pr_output;
        exit_code = pr.Parexec.Sim.pr_exit;
        par = Some pr;
        dom_sup;
      }
    | Error trigger -> (
      let diags = ref (diags0 @ [ { fell_from = Static_expansion; trigger } ]) in
      (* Next rung: the original program under runtime privatization. *)
      let rp_attempt () =
        let rp = Runtimepriv.Rp.config_of orig analyses in
        match Parexec.Sim.run_parallel ~rp (rp_program orig) specs ~threads with
        | exception Interp.Memory.Fault msg -> Error (Run_failure msg)
        | exception Interp.Machine.Runtime_error msg -> Error (Run_failure msg)
        | pr ->
          if
            pr.Parexec.Sim.pr_output <> oracle.Guard.Contract.o_output
            || pr.Parexec.Sim.pr_exit <> oracle.Guard.Contract.o_exit
          then Error Output_mismatch
          else Ok pr
      in
      match rp_attempt () with
      | Ok pr ->
        {
          rung = Runtime_privatization;
          diagnostics = !diags;
          output = pr.Parexec.Sim.pr_output;
          exit_code = pr.Parexec.Sim.pr_exit;
          par = Some pr;
          dom_sup;
        }
      | Error trigger ->
        diags := !diags @ [ { fell_from = Runtime_privatization; trigger } ];
        (* Last rung: the sequential oracle itself. *)
        {
          rung = Sequential;
          diagnostics = !diags;
          output = oracle.Guard.Contract.o_output;
          exit_code = oracle.Guard.Contract.o_exit;
          par = None;
          dom_sup;
        })
  in
  (* Top rung (only with [exec = `Domains]): the expanded program on
     real domains under supervision, contract-checked after recovery. *)
  let domains_attempt () =
    match Expand.Transform.expand_loops ?span_shrink orig analyses with
    | exception Expand.Transform.Unsupported msg ->
      Error (Unsupported_shape msg, None)
    | res -> (
      let plan = res.Expand.Transform.plan in
      match
        Option.iter (fun r -> Guard.Contract.revalidate plan r) reference
      with
      | exception Guard.Violation.Violation v -> Error (Static_contract v, None)
      | () -> (
        let lids =
          List.map
            (fun (a : Privatize.Analyze.result) ->
              a.Privatize.Analyze.classification.Privatize.Classify.graph
                .Depgraph.Graph.loop)
            analyses
        in
        let sup =
          Domexec.Supervisor.run ?domains ?chunk ?force ?retry ?watchdog_ms
            ?fault ?trace res.Expand.Transform.transformed plan lids
        in
        match sup.Domexec.Supervisor.sup_outcome with
        | Domexec.Supervisor.Aborted reason ->
          let trigger =
            if sup.Domexec.Supervisor.sup_watchdog_fires > 0 then
              Watchdog_timeout reason
            else if sup.Domexec.Supervisor.sup_crashes > 0 then
              Retry_exhausted reason
            else Run_failure reason
          in
          Error (trigger, Some sup)
        | Domexec.Supervisor.Completed | Domexec.Supervisor.Recovered -> (
          let r = Option.get sup.Domexec.Supervisor.sup_result in
          let recovered =
            sup.Domexec.Supervisor.sup_outcome = Domexec.Supervisor.Recovered
          in
          match
            Guard.Contract.check_finals oracle plan r.Domexec.Exec.dx_machine
          with
          | exception Guard.Violation.Violation v ->
            let trigger =
              if recovered then Recovery_mismatch (Guard.Violation.to_string v)
              else Guard_trip v
            in
            Error (trigger, Some sup)
          | () ->
            if
              r.Domexec.Exec.dx_output <> oracle.Guard.Contract.o_output
              || r.Domexec.Exec.dx_exit <> oracle.Guard.Contract.o_exit
            then
              let trigger =
                if recovered then
                  Recovery_mismatch "output differs from the sequential oracle"
                else Output_mismatch
              in
              Error (trigger, Some sup)
            else Ok (r, sup))))
  in
  let outcome =
    match exec with
    | `Sim -> sim_chain [] None
    | `Domains -> (
      match domains_attempt () with
      | Ok (r, sup) ->
        {
          rung = Domains;
          diagnostics = [];
          output = r.Domexec.Exec.dx_output;
          exit_code = r.Domexec.Exec.dx_exit;
          par = None;
          dom_sup = Some sup;
        }
      | Error (trigger, sup) -> sim_chain [ { fell_from = Domains; trigger } ] sup)
  in
  if Telemetry.Sink.enabled () then begin
    Telemetry.Span.count "ladder.rungs_fallen"
      (List.length outcome.diagnostics);
    Telemetry.Span.count ("ladder.held." ^ rung_name outcome.rung) 1
  end;
  outcome
