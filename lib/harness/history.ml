(** See the interface. *)

module J = Telemetry.Json

type entry = {
  h_time : float;
  h_rev : string;
  h_domains : int;
  h_config : string;
  h_metrics : (string * float) list;
}

let schema = "dsexpand-bench-history/1"

let entry_to_json (e : entry) : J.t =
  J.Obj
    [
      ("schema", J.Str schema);
      ("time", J.Float e.h_time);
      ("rev", J.Str e.h_rev);
      ("domains", J.Int e.h_domains);
      ("config", J.Str e.h_config);
      ("metrics", J.Obj (List.map (fun (k, v) -> (k, J.Float v)) e.h_metrics));
    ]

let number = function
  | J.Int i -> float_of_int i
  | J.Float f -> f
  | _ -> failwith "history: expected a number"

let entry_of_json (j : J.t) : entry =
  let field name =
    match J.member name j with
    | Some v -> v
    | None -> failwith (Printf.sprintf "history: missing field %S" name)
  in
  (match J.member "schema" j with
  | Some (J.Str s) when String.equal s schema -> ()
  | Some (J.Str s) ->
    failwith (Printf.sprintf "history: unsupported schema %S" s)
  | _ -> failwith "history: missing schema");
  let str name =
    match field name with
    | J.Str s -> s
    | _ -> failwith (Printf.sprintf "history: field %S not a string" name)
  in
  let metrics =
    match field "metrics" with
    | J.Obj kvs -> List.map (fun (k, v) -> (k, number v)) kvs
    | _ -> failwith "history: metrics not an object"
  in
  {
    h_time = number (field "time");
    h_rev = str "rev";
    h_domains = int_of_float (number (field "domains"));
    h_config = str "config";
    h_metrics = metrics;
  }

let append ~file (e : entry) =
  let dir = Filename.dirname file in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 file
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string (entry_to_json e));
      output_char oc '\n')

let load ~file : entry list =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | "" -> go acc
          | line -> go (entry_of_json (J.of_string_exn line) :: acc)
        in
        go [])
  end

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let rev = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when String.length rev > 0 -> rev
    | _ -> "unknown"
  with _ -> "unknown"

(* ------------------------------------------------------------------ *)
(* Trend / changepoint analysis                                        *)
(* ------------------------------------------------------------------ *)

type verdict = Stable | Improved | Regressed | Insufficient

type series = {
  s_key : string;
  s_n : int;
  s_latest : float;
  s_baseline : float;
  s_delta : float;
  s_verdict : verdict;
  s_changepoint : int option;
}

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Deterministic cycle counts barely move between runs, so 2% is
   already generous; wall-clock numbers on shared CI hosts need the
   same loose 25% the bench compare gate uses for speedups. *)
let default_tolerance key =
  if contains ~sub:"/cycles" key then Some (0.02, true)
  else if contains ~sub:"speedup" key then Some (0.25, false)
  else if contains ~sub:"wall" key then Some (0.25, false)
  else None

let median (xs : float list) : float =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.0
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* baseline for position i: median of up to [window] preceding values *)
let baseline_at ~window (vals : float array) i =
  let lo = max 0 (i - window) in
  if i <= lo then None
  else Some (median (Array.to_list (Array.sub vals lo (i - lo))))

let worse ~tol ~larger_worse ~baseline v =
  if baseline = 0.0 then false
  else begin
    let delta = (v -. baseline) /. Float.abs baseline in
    if larger_worse then delta > tol else delta < -.tol
  end

let better ~tol ~larger_worse ~baseline v =
  worse ~tol ~larger_worse:(not larger_worse) ~baseline v

let analyze ?(window = 5) ?(tolerance = default_tolerance)
    (entries : entry list) : series list =
  (* key -> values in run order; insertion order of first appearance *)
  let keys = ref [] in
  let tbl : (string, float list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      List.iter
        (fun (k, v) ->
          match Hashtbl.find_opt tbl k with
          | Some l -> l := v :: !l
          | None ->
            keys := k :: !keys;
            Hashtbl.add tbl k (ref [ v ]))
        e.h_metrics)
    entries;
  let mk key =
    let vals = Array.of_list (List.rev !(Hashtbl.find tbl key)) in
    let n = Array.length vals in
    let latest = vals.(n - 1) in
    match baseline_at ~window vals (n - 1) with
    | None ->
      {
        s_key = key;
        s_n = n;
        s_latest = latest;
        s_baseline = latest;
        s_delta = 0.0;
        s_verdict = Insufficient;
        s_changepoint = None;
      }
    | Some baseline ->
      let delta =
        if baseline = 0.0 then 0.0
        else (latest -. baseline) /. Float.abs baseline
      in
      let verdict, changepoint =
        match tolerance key with
        | None -> (Stable, None)
        | Some (tol, larger_worse) ->
          let verdict =
            if worse ~tol ~larger_worse ~baseline latest then Regressed
            else if better ~tol ~larger_worse ~baseline latest then Improved
            else Stable
          in
          (* most recent run that broke tolerance (either direction)
             against its own preceding window: the level shift *)
          let cp = ref None in
          for i = 1 to n - 1 do
            match baseline_at ~window vals i with
            | None -> ()
            | Some base ->
              if
                worse ~tol ~larger_worse ~baseline:base vals.(i)
                || better ~tol ~larger_worse ~baseline:base vals.(i)
              then cp := Some i
          done;
          (verdict, !cp)
      in
      {
        s_key = key;
        s_n = n;
        s_latest = latest;
        s_baseline = baseline;
        s_delta = delta;
        s_verdict = verdict;
        s_changepoint = changepoint;
      }
  in
  let rank s =
    match s.s_verdict with
    | Regressed -> 0
    | Improved -> 1
    | Stable -> 2
    | Insufficient -> 3
  in
  List.rev !keys |> List.map mk
  |> List.sort (fun a b ->
         match compare (rank a) (rank b) with
         | 0 -> compare a.s_key b.s_key
         | c -> c)

let regressions (ss : series list) =
  List.length (List.filter (fun s -> s.s_verdict = Regressed) ss)

let render (entries : entry list) (ss : series list) : string =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "bench history: %d run(s)\n" (List.length entries));
  List.iteri
    (fun i e ->
      Buffer.add_string b
        (Printf.sprintf "  run %2d: rev=%-10s config=%-6s domains=%d\n" i
           e.h_rev e.h_config e.h_domains))
    entries;
  Buffer.add_string b
    (Printf.sprintf "%-40s %4s %12s %12s %8s %-10s %s\n" "metric" "runs"
       "latest" "baseline" "delta" "verdict" "changepoint");
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "%-40s %4d %12.4g %12.4g %+7.1f%% %-10s %s\n" s.s_key
           s.s_n s.s_latest s.s_baseline (100.0 *. s.s_delta)
           (match s.s_verdict with
           | Stable -> "stable"
           | Improved -> "improved"
           | Regressed -> "REGRESSED"
           | Insufficient -> "n/a")
           (match s.s_changepoint with
           | Some i -> Printf.sprintf "run %d" i
           | None -> "-")))
    ss;
  let nreg = regressions ss in
  Buffer.add_string b
    (if nreg = 0 then "trend: stable (no regressions)\n"
     else Printf.sprintf "trend: %d metric(s) REGRESSED\n" nreg);
  Buffer.contents b
