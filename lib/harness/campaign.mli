(** The fault-injection campaign: run the degradation ladder for every
    workload, clean and under each default fault, and check the safety
    contract (output always bit-identical to the sequential oracle;
    every fallen rung explained by a diagnostic). *)

type entry = {
  c_workload : string;
  c_fault : Faultinject.Fault.t option;  (** [None] = clean run *)
  c_note : string;  (** what the fault actually mangled *)
  c_verdicts_changed : bool;
  c_outcome : Ladder.outcome;
  c_output_ok : bool;  (** output and exit bit-identical to the oracle *)
}

(** One fault of each kind, deterministically seeded. *)
val default_faults : Faultinject.Fault.t list

(** One domain-level fault of each kind (crash, stall, write-log
    corruption, steal contention), deterministically seeded; swept in
    addition to {!default_faults} when [exec] is [`Domains]. *)
val domain_faults : Faultinject.Fault.t list

(** [exec], [domains], [chunk], [force], [retry] and [watchdog_ms] are
    forwarded to {!Ladder.run}; with [exec = `Domains] the default
    fault grid grows by {!domain_faults} and every entry starts on the
    supervised real-domain rung. *)
val run_workload :
  ?threads:int ->
  ?faults:Faultinject.Fault.t list ->
  ?exec:[ `Sim | `Domains ] ->
  ?domains:int ->
  ?chunk:int ->
  ?force:bool ->
  ?retry:int ->
  ?watchdog_ms:int ->
  Workloads.Workload.t ->
  entry list

val run :
  ?threads:int ->
  ?faults:Faultinject.Fault.t list ->
  ?exec:[ `Sim | `Domains ] ->
  ?domains:int ->
  ?chunk:int ->
  ?force:bool ->
  ?retry:int ->
  ?watchdog_ms:int ->
  ?workloads:Workloads.Workload.t list ->
  unit ->
  entry list

(** Per-entry safety contract: output bit-identical to the oracle and
    every fallen rung explained. *)
val entry_safe : entry -> bool

(** Render entries via {!Report.Tables.ladder_table}. *)
val table : entry list -> string

(** JSON artifact of a sweep (schema [dsexpand-campaign/2]). *)
val to_json : entry list -> Telemetry.Json.t
