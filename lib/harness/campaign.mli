(** The fault-injection campaign: run the degradation ladder for every
    workload, clean and under each default fault, and check the safety
    contract (output always bit-identical to the sequential oracle;
    every fallen rung explained by a diagnostic). *)

type entry = {
  c_workload : string;
  c_fault : Faultinject.Fault.t option;  (** [None] = clean run *)
  c_note : string;  (** what the fault actually mangled *)
  c_verdicts_changed : bool;
  c_outcome : Ladder.outcome;
  c_output_ok : bool;  (** output and exit bit-identical to the oracle *)
}

(** One fault of each kind, deterministically seeded. *)
val default_faults : Faultinject.Fault.t list

val run_workload :
  ?threads:int ->
  ?faults:Faultinject.Fault.t list ->
  Workloads.Workload.t ->
  entry list

val run :
  ?threads:int ->
  ?faults:Faultinject.Fault.t list ->
  ?workloads:Workloads.Workload.t list ->
  unit ->
  entry list

(** Per-entry safety contract: output bit-identical to the oracle and
    every fallen rung explained. *)
val entry_safe : entry -> bool

(** Render entries via {!Report.Tables.ladder_table}. *)
val table : entry list -> string
