(** The graceful-degradation ladder: supervised real-domain execution
    (when requested), then guarded static expansion in the simulator,
    then the runtime-privatization baseline, then sequential execution
    — each step down recorded as a structured diagnostic. *)

open Minic

type rung = Domains | Static_expansion | Runtime_privatization | Sequential

val rung_name : rung -> string

type trigger =
  | Unsupported_shape of string
      (** the transformer rejected the program (Definition-5 scope) *)
  | Static_contract of Guard.Violation.info
      (** revalidation against the reference classification failed *)
  | Guard_trip of Guard.Violation.info
      (** a span guard or contract check fired during/after the run *)
  | Run_failure of string  (** machine fault (OOM, memory fault, ...) *)
  | Output_mismatch  (** program output differed from the oracle *)
  | Retry_exhausted of string
      (** the supervisor's chunk-retry budget ran out *)
  | Watchdog_timeout of string
      (** a stalled domain forced the watchdog to cancel the run *)
  | Recovery_mismatch of string
      (** the supervisor recovered, but the recovered state fails the
          contract check — recovery itself is not trusted *)

val trigger_to_string : trigger -> string

type diagnostic = { fell_from : rung; trigger : trigger }

val diagnostic_to_string : diagnostic -> string

type outcome = {
  rung : rung;  (** the rung that finally held *)
  diagnostics : diagnostic list;  (** one per rung that fell, in order *)
  output : string;
  exit_code : int;
  par : Parexec.Sim.par_result option;
      (** the parallel result of the holding rung (None for
          [Sequential] and [Domains]) *)
  dom_sup : Domexec.Supervisor.t option;
      (** the supervised run, whenever the [Domains] rung was tried *)
}

(** Run [orig] (with its per-loop analyses, possibly fault-mangled)
    down the ladder. [reference] enables static revalidation against a
    trusted classification; [oracle] reuses a previously captured
    sequential oracle (otherwise one is captured here); [span_shrink]
    and [attach_extra] thread fault injection into the static rung.

    [exec] selects the top rung: [`Sim] (default) starts at guarded
    static expansion as before; [`Domains] first runs the expanded
    program on real domains under [Domexec.Supervisor] —
    [domains]/[chunk]/[force]/[retry]/[watchdog_ms] configure it and
    [fault] arms a domain-level fault; [trace] attaches a
    [Domexec.Domtrace] ring recorder to every supervised attempt —
    and falls to the simulated rungs when supervision aborts or the
    recovered state fails the contract. *)
val run :
  ?threads:int ->
  ?reference:Privatize.Analyze.result list ->
  ?oracle:Guard.Contract.oracle ->
  ?span_shrink:int ->
  ?attach_extra:(Interp.Machine.t -> unit) ->
  ?exec:[ `Sim | `Domains ] ->
  ?domains:int ->
  ?chunk:int ->
  ?force:bool ->
  ?retry:int ->
  ?watchdog_ms:int ->
  ?fault:Faultinject.Fault.t ->
  ?trace:Domexec.Domtrace.t ->
  Ast.program ->
  Privatize.Analyze.result list ->
  outcome
