(** The graceful-degradation ladder: guarded static expansion, then
    the runtime-privatization baseline, then sequential execution —
    each step down recorded as a structured diagnostic. *)

open Minic

type rung = Static_expansion | Runtime_privatization | Sequential

val rung_name : rung -> string

type trigger =
  | Unsupported_shape of string
      (** the transformer rejected the program (Definition-5 scope) *)
  | Static_contract of Guard.Violation.info
      (** revalidation against the reference classification failed *)
  | Guard_trip of Guard.Violation.info
      (** a span guard or contract check fired during/after the run *)
  | Run_failure of string  (** machine fault (OOM, memory fault, ...) *)
  | Output_mismatch  (** program output differed from the oracle *)

val trigger_to_string : trigger -> string

type diagnostic = { fell_from : rung; trigger : trigger }

val diagnostic_to_string : diagnostic -> string

type outcome = {
  rung : rung;  (** the rung that finally held *)
  diagnostics : diagnostic list;  (** one per rung that fell, in order *)
  output : string;
  exit_code : int;
  par : Parexec.Sim.par_result option;
      (** the parallel result of the holding rung (None for
          [Sequential]) *)
}

(** Run [orig] (with its per-loop analyses, possibly fault-mangled)
    down the ladder. [reference] enables static revalidation against a
    trusted classification; [oracle] reuses a previously captured
    sequential oracle (otherwise one is captured here); [span_shrink]
    and [attach_extra] thread fault injection into the static rung. *)
val run :
  ?threads:int ->
  ?reference:Privatize.Analyze.result list ->
  ?oracle:Guard.Contract.oracle ->
  ?span_shrink:int ->
  ?attach_extra:(Interp.Machine.t -> unit) ->
  Ast.program ->
  Privatize.Analyze.result list ->
  outcome
