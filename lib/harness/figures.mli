(** Renderers for every table and figure of the paper's evaluation.
    Each takes the loaded benchmarks and returns the text the
    experiments binary prints (and EXPERIMENTS.md embeds). *)

val threads_list : int list

val table4 : Bench_run.t list -> string
val table5 : Bench_run.t list -> string
val fig8 : Bench_run.t list -> string
val fig9 : Bench_run.t list -> optimized:bool -> string
val fig10 : Bench_run.t list -> string
val fig11 : Bench_run.t list -> string
val fig12 : Bench_run.t list -> threads:int -> string

(** The [--metrics] table over all benchmarks: speedups plus cycle
    attribution at one thread count. *)
val metrics : Bench_run.t list -> threads:int -> string
val fig13 : Bench_run.t list -> string
val fig14 : Bench_run.t list -> string

(** The bonded-vs-interleaved heatmap ablation (§3.1): per workload,
    attributed lines, false-sharing lines and mean copy utilization of
    each layout at [threads]; workloads the interleaved transformer
    rejects report "-". *)
val heatmap : Bench_run.t list -> threads:int -> string

(** Simulated (cycle) vs real (wall-clock, OCaml domains) scaling at
    {!Bench_run.domain_counts}; a 1-core host shows the sequential
    fallback as used=1. *)
val domexec : Bench_run.t list -> string

(** Scheduler-health summary (events, drops, steal success, imbalance,
    straggler, utilization spread, GC share) from one traced run per
    domain count — the same reports [bench] writes to
    BENCH_results.json. *)
val domtrace : Bench_run.t list -> string

(** Every artifact by name, thunked so that selecting a subset only
    runs the measurements it needs. *)
val all : Bench_run.t list -> (string * (unit -> string)) list
