(** The fault-injection campaign: for every benchmark workload, run
    the degradation ladder clean and under each default fault, and
    check the system's safety contract — every run's final output is
    bit-identical to the sequential oracle, whether the static rung
    held, a guard caught the fault, or the ladder degraded. *)

open Minic

type entry = {
  c_workload : string;
  c_fault : Faultinject.Fault.t option;  (** [None] = clean run *)
  c_note : string;  (** what the fault actually mangled *)
  c_verdicts_changed : bool;
  c_outcome : Ladder.outcome;
  c_output_ok : bool;  (** output and exit bit-identical to the oracle *)
}

(** One fault of each kind, deterministically seeded. *)
let default_faults : Faultinject.Fault.t list =
  [
    Faultinject.Fault.make ~seed:1 Faultinject.Fault.Drop_dep_edge;
    Faultinject.Fault.make ~seed:2 Faultinject.Fault.Force_misclassify;
    Faultinject.Fault.make ~seed:3 (Faultinject.Fault.Truncate_span 8);
    Faultinject.Fault.make ~seed:4 (Faultinject.Fault.Alloc_failure 2);
  ]

(** One domain-level fault of each kind, for the [`Domains] grid. *)
let domain_faults : Faultinject.Fault.t list =
  [
    Faultinject.Fault.make ~seed:5 (Faultinject.Fault.Domain_crash 1);
    Faultinject.Fault.make ~seed:6 (Faultinject.Fault.Domain_stall 1);
    Faultinject.Fault.make ~seed:7 (Faultinject.Fault.Writelog_corrupt 1);
    Faultinject.Fault.make ~seed:8 (Faultinject.Fault.Steal_contention 4);
  ]

let run_workload ?(threads = 2) ?faults ?(exec = `Sim) ?domains ?chunk ?force
    ?retry ?watchdog_ms (w : Workloads.Workload.t) : entry list =
  Telemetry.Span.wall ~cat:"campaign" "campaign.workload" @@ fun () ->
  let faults =
    match faults with
    | Some fs -> fs
    | None -> (
      match exec with
      | `Sim -> default_faults
      | `Domains -> default_faults @ domain_faults)
  in
  let prog =
    Typecheck.parse_and_check ~file:w.Workloads.Workload.name
      w.Workloads.Workload.source
  in
  let lids = prog.Ast.parallel_loops in
  let analyses = List.map (Privatize.Analyze.analyze prog) lids in
  (* one sequential oracle per workload, shared by every configuration *)
  let oracle = Guard.Contract.oracle_of prog analyses in
  let entry fault =
    let analyses', note, changed, span_shrink, attach_extra, dom_fault =
      match fault with
      | None -> (analyses, "clean", false, None, None, None)
      | Some f when Faultinject.Fault.domain_level f ->
        (* domain-level faults leave the analyses alone; they are
           armed on the supervisor of the [Domains] rung *)
        let app = Faultinject.Fault.mangle f prog analyses in
        (analyses, app.Faultinject.Fault.note, false, None, None, Some f)
      | Some f ->
        let app = Faultinject.Fault.mangle f prog analyses in
        ( app.Faultinject.Fault.analyses,
          app.Faultinject.Fault.note,
          app.Faultinject.Fault.verdicts_changed,
          Faultinject.Fault.span_shrink f,
          Some (Faultinject.Fault.attach_machine f),
          None )
    in
    let outcome =
      Ladder.run ~threads ~reference:analyses ~oracle ?span_shrink
        ?attach_extra ~exec ?domains ?chunk ?force ?retry ?watchdog_ms
        ?fault:dom_fault prog analyses'
    in
    {
      c_workload = w.Workloads.Workload.name;
      c_fault = fault;
      c_note = note;
      c_verdicts_changed = changed;
      c_outcome = outcome;
      c_output_ok =
        String.equal outcome.Ladder.output oracle.Guard.Contract.o_output
        && outcome.Ladder.exit_code = oracle.Guard.Contract.o_exit;
    }
  in
  let entries = entry None :: List.map (fun f -> entry (Some f)) faults in
  if Telemetry.Sink.enabled () then begin
    Telemetry.Span.count "campaign.runs" (List.length entries);
    Telemetry.Span.count "campaign.output_ok"
      (List.length (List.filter (fun e -> e.c_output_ok) entries))
  end;
  entries

let run ?threads ?faults ?exec ?domains ?chunk ?force ?retry ?watchdog_ms
    ?(workloads = Workloads.Registry.all) () : entry list =
  List.concat_map
    (run_workload ?threads ?faults ?exec ?domains ?chunk ?force ?retry
       ?watchdog_ms)
    workloads

(** The campaign's safety contract, per entry: the final output is
    bit-identical to the sequential oracle, and a fallen rung is
    always explained by a diagnostic. *)
let entry_safe (e : entry) : bool =
  e.c_output_ok
  && (e.c_outcome.Ladder.rung = Ladder.Domains
     || e.c_outcome.Ladder.rung = Ladder.Static_expansion
     || e.c_outcome.Ladder.diagnostics <> [])

(** JSON artifact of a campaign sweep (schema dsexpand-campaign/2:
    adds the [domains] rung, domain-level faults, and per-entry
    supervisor counters to the v1 table). *)
let to_json (entries : entry list) : Telemetry.Json.t =
  let open Telemetry.Json in
  let entry_json (e : entry) =
    let sup_json =
      match e.c_outcome.Ladder.dom_sup with
      | None -> Null
      | Some s ->
        Obj
          [
            ( "outcome",
              Str
                (Domexec.Supervisor.outcome_to_string
                   s.Domexec.Supervisor.sup_outcome) );
            ("attempts", Int s.Domexec.Supervisor.sup_attempts);
            ("retries", Int s.Domexec.Supervisor.sup_retries);
            ("crashes", Int s.Domexec.Supervisor.sup_crashes);
            ("stalls", Int s.Domexec.Supervisor.sup_stalls);
            ("corruptions", Int s.Domexec.Supervisor.sup_corruptions);
            ( "corruptions_detected",
              Int s.Domexec.Supervisor.sup_corruptions_detected );
            ("watchdog_fires", Int s.Domexec.Supervisor.sup_watchdog_fires);
            ("steal_lost", Int s.Domexec.Supervisor.sup_steal_lost);
          ]
    in
    Obj
      [
        ("workload", Str e.c_workload);
        ( "fault",
          match e.c_fault with
          | None -> Null
          | Some f -> Str (Faultinject.Fault.describe f) );
        ("note", Str e.c_note);
        ("verdicts_changed", Bool e.c_verdicts_changed);
        ("rung", Str (Ladder.rung_name e.c_outcome.Ladder.rung));
        ("fell", Int (List.length e.c_outcome.Ladder.diagnostics));
        ( "diagnostics",
          List
            (List.map
               (fun d -> Str (Ladder.diagnostic_to_string d))
               e.c_outcome.Ladder.diagnostics) );
        ("output_ok", Bool e.c_output_ok);
        ("safe", Bool (entry_safe e));
        ("supervisor", sup_json);
      ]
  in
  Obj
    [
      ("schema", Str "dsexpand-campaign/2");
      ("runs", Int (List.length entries));
      ("safe", Bool (List.for_all entry_safe entries));
      ("entries", List (List.map entry_json entries));
    ]

let table (entries : entry list) : string =
  Report.Tables.ladder_table
    (List.map
       (fun e ->
         {
           Report.Tables.lr_workload = e.c_workload;
           lr_fault =
             (match e.c_fault with
             | None -> "-"
             | Some f -> Faultinject.Fault.describe f);
           lr_rung = Ladder.rung_name e.c_outcome.Ladder.rung;
           lr_fell = List.length e.c_outcome.Ladder.diagnostics;
           lr_output_ok = e.c_output_ok;
           lr_detail =
             (match e.c_outcome.Ladder.diagnostics with
             | [] -> ""
             | d :: _ -> Ladder.diagnostic_to_string d);
         })
       entries)
