(** The fault-injection campaign: for every benchmark workload, run
    the degradation ladder clean and under each default fault, and
    check the system's safety contract — every run's final output is
    bit-identical to the sequential oracle, whether the static rung
    held, a guard caught the fault, or the ladder degraded. *)

open Minic

type entry = {
  c_workload : string;
  c_fault : Faultinject.Fault.t option;  (** [None] = clean run *)
  c_note : string;  (** what the fault actually mangled *)
  c_verdicts_changed : bool;
  c_outcome : Ladder.outcome;
  c_output_ok : bool;  (** output and exit bit-identical to the oracle *)
}

(** One fault of each kind, deterministically seeded. *)
let default_faults : Faultinject.Fault.t list =
  [
    Faultinject.Fault.make ~seed:1 Faultinject.Fault.Drop_dep_edge;
    Faultinject.Fault.make ~seed:2 Faultinject.Fault.Force_misclassify;
    Faultinject.Fault.make ~seed:3 (Faultinject.Fault.Truncate_span 8);
    Faultinject.Fault.make ~seed:4 (Faultinject.Fault.Alloc_failure 2);
  ]

let run_workload ?(threads = 2) ?(faults = default_faults)
    (w : Workloads.Workload.t) : entry list =
  Telemetry.Span.wall ~cat:"campaign" "campaign.workload" @@ fun () ->
  let prog =
    Typecheck.parse_and_check ~file:w.Workloads.Workload.name
      w.Workloads.Workload.source
  in
  let lids = prog.Ast.parallel_loops in
  let analyses = List.map (Privatize.Analyze.analyze prog) lids in
  (* one sequential oracle per workload, shared by every configuration *)
  let oracle = Guard.Contract.oracle_of prog analyses in
  let entry fault =
    let analyses', note, changed, span_shrink, attach_extra =
      match fault with
      | None -> (analyses, "clean", false, None, None)
      | Some f ->
        let app = Faultinject.Fault.mangle f prog analyses in
        ( app.Faultinject.Fault.analyses,
          app.Faultinject.Fault.note,
          app.Faultinject.Fault.verdicts_changed,
          Faultinject.Fault.span_shrink f,
          Some (Faultinject.Fault.attach_machine f) )
    in
    let outcome =
      Ladder.run ~threads ~reference:analyses ~oracle ?span_shrink
        ?attach_extra prog analyses'
    in
    {
      c_workload = w.Workloads.Workload.name;
      c_fault = fault;
      c_note = note;
      c_verdicts_changed = changed;
      c_outcome = outcome;
      c_output_ok =
        String.equal outcome.Ladder.output oracle.Guard.Contract.o_output
        && outcome.Ladder.exit_code = oracle.Guard.Contract.o_exit;
    }
  in
  let entries = entry None :: List.map (fun f -> entry (Some f)) faults in
  if Telemetry.Sink.enabled () then begin
    Telemetry.Span.count "campaign.runs" (List.length entries);
    Telemetry.Span.count "campaign.output_ok"
      (List.length (List.filter (fun e -> e.c_output_ok) entries))
  end;
  entries

let run ?threads ?faults ?(workloads = Workloads.Registry.all) () :
    entry list =
  List.concat_map (run_workload ?threads ?faults) workloads

(** The campaign's safety contract, per entry: the final output is
    bit-identical to the sequential oracle, and a fallen rung is
    always explained by a diagnostic. *)
let entry_safe (e : entry) : bool =
  e.c_output_ok
  && (e.c_outcome.Ladder.rung = Ladder.Static_expansion
     || e.c_outcome.Ladder.diagnostics <> [])

let table (entries : entry list) : string =
  Report.Tables.ladder_table
    (List.map
       (fun e ->
         {
           Report.Tables.lr_workload = e.c_workload;
           lr_fault =
             (match e.c_fault with
             | None -> "-"
             | Some f -> Faultinject.Fault.describe f);
           lr_rung = Ladder.rung_name e.c_outcome.Ladder.rung;
           lr_fell = List.length e.c_outcome.Ladder.diagnostics;
           lr_output_ok = e.c_output_ok;
           lr_detail =
             (match e.c_outcome.Ladder.diagnostics with
             | [] -> ""
             | d :: _ -> Ladder.diagnostic_to_string d);
         })
       entries)
