(** Per-benchmark experiment state: the analyses and transformed
    programs, plus lazily-computed, memoized measurement runs. Every
    table and figure of the paper draws from this record, so each
    expensive execution happens at most once per process. Every
    measured run is checked to produce the same output as the
    sequential original; a mismatch fails the run. *)

open Minic

(** Single source of truth for how wide the evaluation fans out: the
    simulated executor and the real domain executor measure the same
    counts (bench tables, figures and CI gates all draw from here). *)
val thread_counts : int list

(** Domain counts for the simulated-vs-real scaling comparison. *)
val domain_counts : int list

type t = {
  workload : Workloads.Workload.t;
  prog : Ast.program;
  lids : Ast.lid list;
  analyses : Privatize.Analyze.result list;
  specs : Parexec.Sim.loop_spec list;
  expanded : Expand.Transform.result;  (** selective + optimized *)
  expanded_unopt : Expand.Transform.result Lazy.t;
      (** promote-all, no span optimization: Figure 9a's configuration *)
  rp : Parexec.Sim.runtime_priv Lazy.t;
  seq : Parexec.Sim.seq_result Lazy.t;
  mutable par_cache : (int * bool * bool, Parexec.Sim.par_result) Hashtbl.t;
  mutable seq_cycles_cache : (string, int * int) Hashtbl.t;
  contract_oracle : Guard.Contract.oracle Lazy.t;
  mutable wall_seq_cache : (int, float) Hashtbl.t;
  mutable wall_cache : (int * int, wall_result) Hashtbl.t;
  mutable trace_cache : (int, Domexec.Domtrace.t * float) Hashtbl.t;
  mutable interp_cycles_cache : int option;
}

(** A wall-clock measurement of the domain executor vs the sequential
    original (both medians of the same repeat count). *)
and wall_result = {
  wr_domains : int;  (** domains requested *)
  wr_used : int;  (** domains actually used (1 = sequential fallback) *)
  wr_seq_ns : float;
  wr_par_ns : float;
  wr_speedup : float;
  wr_steals : int;
  wr_distributed : int;  (** parallel loops the executor distributed *)
  wr_fallback : string option;
}

val load : Workloads.Workload.t -> t
val seq : t -> Parexec.Sim.seq_result

(** Access-class classifier for heatmap attribution: the plan's merged
    verdicts (which also cover generated span accesses) projected onto
    the simulator's class type. *)
val heat_classifier :
  Expand.Transform.result -> Ast.aid -> Parexec.Cache.attr_class

(** Simulated parallel run; [rp:true] charges the SpiceC-style
    runtime-privatization costs, [heatmap:true] opts into per-line
    attribution. *)
val par : ?rp:bool -> ?heatmap:bool -> t -> threads:int -> Parexec.Sim.par_result

(** Cache-line heatmap of the expanded program at [threads]. *)
val heat : t -> threads:int -> Parexec.Heat.t

(** Heatmap of an alternative transformation of the same workload (the
    bonded-vs-interleaved ablation), validated against the sequential
    oracle. *)
val heat_of : t -> Expand.Transform.result -> threads:int -> Parexec.Heat.t

val loop_cycles_seq : t -> int
val loop_cycles_par : ?rp:bool -> t -> threads:int -> int
val loop_speedup : ?rp:bool -> t -> threads:int -> float
val total_speedup : ?rp:bool -> t -> threads:int -> float

(** Sequential slowdown of the expanded program (Figure 9). *)
val seq_slowdown : t -> optimized:bool -> float

(** Sequential slowdown under runtime privatization (Figure 10). *)
val rp_seq_slowdown : t -> float

(** Memory-use multiples over the sequential original (Figure 14). *)
val memory_multiple : t -> threads:int -> float

val rp_memory_multiple : t -> threads:int -> float

(** Attribute a parallel run's cycles, aggregated over threads
    (Figure 12 and the [--metrics] report). Pure: combines an
    already-measured pair of runs, so any caller holding the two
    results — the CLI, the experiments binary, a test — shares one
    formula. Busy cycles split into cache stalls, the compute also
    present in the sequential run, and — whatever busy work exceeds
    the sequential loop's — privatization overhead. *)
val breakdown_of :
  seq:Parexec.Sim.seq_result ->
  par:Parexec.Sim.par_result ->
  Report.Tables.cycles_breakdown

(** [breakdown_of] over this benchmark's memoized runs. *)
val cost_breakdown : t -> threads:int -> Report.Tables.cycles_breakdown

(** The benchmark's full [--metrics] row at [threads]. *)
val metrics_row : t -> threads:int -> Report.Tables.metrics_row

(** Median wall time (ns) of the sequential original over [repeats]
    fresh, untimed-load runs. *)
val wall_seq : ?repeats:int -> t -> float

(** Wall-clock run of the expanded program on [domains] real domains
    (median of [repeats], default 3). Every run is validated against
    the original's finals/output/exit oracle. Memoized per
    (domains, repeats). *)
val wall : ?repeats:int -> t -> domains:int -> wall_result

(** One traced, oracle-validated domain run ([force]d, so single-core
    CI hosts still exercise the parallel scheduler): the recorder and
    the run's wall time. Kept separate from {!wall}'s samples so ring
    instrumentation never contaminates a timed measurement. Memoized
    per domain count; {!sched} and {!critpath} both derive from this
    single recording. *)
val traced : t -> domains:int -> Domexec.Domtrace.t * float

(** Scheduler-health report of the {!traced} run. *)
val sched : t -> domains:int -> Domexec.Domtrace.Sched_report.report

(** Critical-path profile of the {!traced} run. *)
val critpath : t -> domains:int -> Domexec.Critpath.profile

(** Wall time of the {!traced} run (instrumented — use {!wall} for
    clean timing). *)
val traced_wall_ns : t -> domains:int -> float

(** Interpreter cycle count of one sequential run of the original
    program (deterministic; memoized). *)
val seq_interp_cycles : t -> int
