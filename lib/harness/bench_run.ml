(** Per-benchmark experiment state: the analyses and transformed
    programs, plus lazily-computed, memoized measurement runs. Every
    table and figure of the paper draws from this record, so each
    expensive execution happens at most once per process. *)

open Minic

(** Single source of truth for how wide the evaluation fans out: the
    simulated executor and the real domain executor measure the same
    counts (bench tables, figures and CI gates all draw from here). *)
let thread_counts = [ 2; 4; 8 ]

(** Domain counts for the simulated-vs-real scaling comparison. *)
let domain_counts = [ 1; 2; 4; 8 ]

type t = {
  workload : Workloads.Workload.t;
  prog : Ast.program;
  lids : Ast.lid list;
  analyses : Privatize.Analyze.result list;
  specs : Parexec.Sim.loop_spec list;
  expanded : Expand.Transform.result;  (** selective + optimized *)
  expanded_unopt : Expand.Transform.result Lazy.t;
      (** promote-all, no span optimization: Figure 9a's configuration *)
  rp : Parexec.Sim.runtime_priv Lazy.t;
  seq : Parexec.Sim.seq_result Lazy.t;
  mutable par_cache : (int * bool * bool, Parexec.Sim.par_result) Hashtbl.t;
      (** (threads, with runtime-privatization surcharge, with heatmap
          attribution) -> result *)
  mutable seq_cycles_cache : (string, int * int) Hashtbl.t;
      (** tagged sequential runs of transformed programs:
          (cycles, peak bytes) *)
  contract_oracle : Guard.Contract.oracle Lazy.t;
      (** finals/output/exit oracle of the original program (no access
          streams), validating every domain-executor run *)
  mutable wall_seq_cache : (int, float) Hashtbl.t;
      (** repeats -> median wall ns of the original program *)
  mutable wall_cache : (int * int, wall_result) Hashtbl.t;
      (** (domains, repeats) -> wall-clock measurement *)
  mutable trace_cache : (int, Domexec.Domtrace.t * float) Hashtbl.t;
      (** domains -> (recorder, wall ns) of one traced run; the
          sched report and the critical-path profile both derive from
          this single recording *)
  mutable interp_cycles_cache : int option;
      (** the sequential original's interpreter cycle count *)
}

and wall_result = {
  wr_domains : int;  (** domains requested *)
  wr_used : int;  (** domains actually used (1 = sequential fallback) *)
  wr_seq_ns : float;  (** median wall time of the sequential original *)
  wr_par_ns : float;  (** median wall time on domains *)
  wr_speedup : float;
  wr_steals : int;
  wr_distributed : int;  (** parallel loops the executor distributed *)
  wr_fallback : string option;
}

let load (w : Workloads.Workload.t) : t =
  let prog =
    Telemetry.Span.wall "phase.parse" (fun () ->
        Typecheck.parse_and_check ~file:w.Workloads.Workload.name
          w.Workloads.Workload.source)
  in
  let lids = prog.Ast.parallel_loops in
  let analyses = List.map (Privatize.Analyze.analyze prog) lids in
  let specs = List.map Parexec.Sim.spec_of_analysis analyses in
  let expanded = Expand.Transform.expand_loops prog analyses in
  {
    workload = w;
    prog;
    lids;
    analyses;
    specs;
    expanded;
    expanded_unopt =
      lazy (Expand.Transform.expand_loops ~selective:false ~optimize:false prog analyses);
    rp = lazy (Runtimepriv.Rp.config_of prog analyses);
    seq = lazy (Parexec.Sim.run_sequential prog lids);
    par_cache = Hashtbl.create 8;
    seq_cycles_cache = Hashtbl.create 4;
    contract_oracle = lazy (Guard.Contract.oracle_of prog []);
    wall_seq_cache = Hashtbl.create 4;
    wall_cache = Hashtbl.create 8;
    trace_cache = Hashtbl.create 4;
    interp_cycles_cache = None;
  }

let seq (b : t) = Lazy.force b.seq

(** Access-class classifier for heatmap attribution: the plan's merged
    verdicts (which also cover generated span accesses) projected onto
    the simulator's class type. *)
let heat_classifier (r : Expand.Transform.result) (aid : Ast.aid) :
    Parexec.Cache.attr_class =
  match Expand.Plan.verdict r.Expand.Transform.plan aid with
  | Privatize.Classify.Private -> Parexec.Cache.Private
  | Privatize.Classify.Shared -> Parexec.Cache.Shared
  | Privatize.Classify.Induction -> Parexec.Cache.Induction

(** Simulated parallel run of the expanded program. [heatmap] opts into
    per-line attribution (kept off the default path so the memoized
    runs behind every table stay byte-for-byte what they were). *)
let par ?(rp = false) ?(heatmap = false) (b : t) ~threads :
    Parexec.Sim.par_result =
  match Hashtbl.find_opt b.par_cache (threads, rp, heatmap) with
  | Some r -> r
  | None ->
    let r =
      Parexec.Sim.run_parallel
        ?rp:(if rp then Some (Lazy.force b.rp) else None)
        ?heatmap:(if heatmap then Some (heat_classifier b.expanded) else None)
        b.expanded.Expand.Transform.transformed b.specs ~threads
    in
    if not (String.equal r.Parexec.Sim.pr_output (seq b).Parexec.Sim.sq_output)
    then
      failwith
        (Printf.sprintf "%s: parallel output mismatch at %d threads"
           b.workload.Workloads.Workload.name threads);
    Hashtbl.replace b.par_cache (threads, rp, heatmap) r;
    r

(** Cache-line heatmap of the expanded program at [threads]. *)
let heat (b : t) ~threads : Parexec.Heat.t =
  match (par ~heatmap:true b ~threads).Parexec.Sim.pr_heat with
  | Some h -> h
  | None -> assert false

(** Heatmap of an alternative transformation of the same workload (the
    bonded-vs-interleaved ablation); the run is validated against the
    sequential oracle like every other measured run. *)
let heat_of (b : t) (r : Expand.Transform.result) ~threads : Parexec.Heat.t =
  let res =
    Parexec.Sim.run_parallel ~heatmap:(heat_classifier r)
      r.Expand.Transform.transformed b.specs ~threads
  in
  if not (String.equal res.Parexec.Sim.pr_output (seq b).Parexec.Sim.sq_output)
  then
    failwith
      (Printf.sprintf "%s: parallel output mismatch at %d threads"
         b.workload.Workloads.Workload.name threads);
  match res.Parexec.Sim.pr_heat with Some h -> h | None -> assert false

(** Sequential (1-thread, tid=0) run of a transformed program under the
    same cache model as the reference; gives Figure 9/10's overheads. *)
let seq_cycles_of (b : t) ~(tag : string) (prog : Ast.program) : int * int =
  match Hashtbl.find_opt b.seq_cycles_cache tag with
  | Some r -> r
  | None ->
    let r = Parexec.Sim.run_sequential prog b.lids in
    if not (String.equal r.Parexec.Sim.sq_output (seq b).Parexec.Sim.sq_output)
    then
      failwith
        (Printf.sprintf "%s/%s: sequential output mismatch"
           b.workload.Workloads.Workload.name tag);
    let v = (r.Parexec.Sim.sq_total, r.Parexec.Sim.sq_peak) in
    Hashtbl.replace b.seq_cycles_cache tag v;
    v

let loop_cycles_seq (b : t) : int =
  List.fold_left (fun a (_, c) -> a + c) 0 (seq b).Parexec.Sim.sq_loop

let loop_cycles_par ?(rp = false) (b : t) ~threads : int =
  List.fold_left (fun a (_, c) -> a + c) 0
    (par ~rp b ~threads).Parexec.Sim.pr_loop

let loop_speedup ?(rp = false) (b : t) ~threads : float =
  float_of_int (loop_cycles_seq b)
  /. float_of_int (loop_cycles_par ~rp b ~threads)

let total_speedup ?(rp = false) (b : t) ~threads : float =
  float_of_int (seq b).Parexec.Sim.sq_total
  /. float_of_int (par ~rp b ~threads).Parexec.Sim.pr_total

(** Sequential slowdown of the expanded program (Figure 9): >1 means
    the transformation costs time on one core. *)
let seq_slowdown (b : t) ~(optimized : bool) : float =
  let prog, tag =
    if optimized then (b.expanded.Expand.Transform.transformed, "opt")
    else ((Lazy.force b.expanded_unopt).Expand.Transform.transformed, "unopt")
  in
  let cycles, _ = seq_cycles_of b ~tag prog in
  float_of_int cycles /. float_of_int (seq b).Parexec.Sim.sq_total

(** Sequential slowdown under runtime privatization (Figure 10's
    baseline side): the same correct program with the SpiceC-style
    access-control costs charged, on one thread. *)
let rp_seq_slowdown (b : t) : float =
  let r = par ~rp:true b ~threads:1 in
  float_of_int r.Parexec.Sim.pr_total /. float_of_int (seq b).Parexec.Sim.sq_total

(** Memory-use multiple over the sequential original (Figure 14). *)
let memory_multiple (b : t) ~threads : float =
  let pr = par b ~threads in
  float_of_int pr.Parexec.Sim.pr_peak
  /. float_of_int (seq b).Parexec.Sim.sq_peak

(** Attribute a parallel run's cycles, aggregated over threads
    (Figure 12 and the [--metrics] report). Busy cycles split into
    cache stalls, the compute also present in the sequential run, and
    — whatever busy work exceeds the sequential loop's — privatization
    overhead (redirection arithmetic, span shadows, extra copies). *)
let breakdown_of ~(seq : Parexec.Sim.seq_result)
    ~(par : Parexec.Sim.par_result) : Report.Tables.cycles_breakdown =
  let sum a = Array.fold_left ( + ) 0 a in
  let seq_compute =
    List.fold_left (fun a (_, c) -> a + c) 0 seq.Parexec.Sim.sq_loop
    - seq.Parexec.Sim.sq_cache_stall
  in
  let par_busy_compute =
    sum par.Parexec.Sim.pr_busy - par.Parexec.Sim.pr_cache_stall
  in
  let cb_priv = max 0 (par_busy_compute - seq_compute) in
  {
    Report.Tables.cb_compute = par_busy_compute - cb_priv;
    cb_cache = par.Parexec.Sim.pr_cache_stall;
    cb_sync = sum par.Parexec.Sim.pr_sync;
    cb_priv;
    cb_idle = sum par.Parexec.Sim.pr_idle;
    cb_runtime = par.Parexec.Sim.pr_overhead;
  }

let cost_breakdown (b : t) ~threads : Report.Tables.cycles_breakdown =
  breakdown_of ~seq:(seq b) ~par:(par b ~threads)

let metrics_row (b : t) ~threads : Report.Tables.metrics_row =
  {
    Report.Tables.m_workload = b.workload.Workloads.Workload.name;
    m_threads = threads;
    m_loop_speedup = loop_speedup b ~threads;
    m_total_speedup = total_speedup b ~threads;
    m_breakdown = cost_breakdown b ~threads;
  }

(** Runtime privatization's memory multiple: the original footprint
    plus one copy of the touched private bytes per extra thread. The
    touched set is measured on the single-thread run, where exactly
    one copy of each privatized structure exists. *)
let rp_memory_multiple (b : t) ~threads : float =
  let touched = (par ~rp:true b ~threads:1).Parexec.Sim.pr_rp_touched_bytes in
  let base = (seq b).Parexec.Sim.sq_peak in
  float_of_int (base + ((threads - 1) * touched)) /. float_of_int base

(* ------------------------------------------------------------------ *)
(* Wall-clock measurement on real domains                              *)
(* ------------------------------------------------------------------ *)

let median (xs : float list) : float =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

(** Median wall time (ns) of the sequential original over [repeats]
    fresh runs. Loading is untimed, mirroring the domain executor's
    spawn-to-join window. *)
let wall_seq ?(repeats = 3) (b : t) : float =
  match Hashtbl.find_opt b.wall_seq_cache repeats with
  | Some v -> v
  | None ->
    let samples =
      List.init repeats (fun _ ->
          let m = Interp.Machine.load b.prog in
          let t0 = Unix.gettimeofday () in
          ignore (Interp.Machine.run m);
          (Unix.gettimeofday () -. t0) *. 1e9)
    in
    let v = median samples in
    Hashtbl.replace b.wall_seq_cache repeats v;
    v

(** Wall-clock run of the expanded program on [domains] real domains,
    median of [repeats]. Every single run — not just the median — is
    validated against the original program's finals/output/exit oracle
    ({!Guard.Contract.check_finals}), so a racy merge cannot hide
    behind a fast time. *)
let wall ?(repeats = 3) (b : t) ~(domains : int) : wall_result =
  match Hashtbl.find_opt b.wall_cache (domains, repeats) with
  | Some r -> r
  | None ->
    let oracle = Lazy.force b.contract_oracle in
    let plan = b.expanded.Expand.Transform.plan in
    let name = b.workload.Workloads.Workload.name in
    let runs =
      List.init repeats (fun _ ->
          let r =
            Domexec.Exec.run ~domains
              b.expanded.Expand.Transform.transformed plan b.lids
          in
          if
            not
              (String.equal r.Domexec.Exec.dx_output
                 oracle.Guard.Contract.o_output)
          then
            failwith
              (Printf.sprintf "%s: domain-run output mismatch at %d domains"
                 name domains);
          if r.Domexec.Exec.dx_exit <> oracle.Guard.Contract.o_exit then
            failwith
              (Printf.sprintf
                 "%s: domain-run exit code %d differs from oracle %d" name
                 r.Domexec.Exec.dx_exit oracle.Guard.Contract.o_exit);
          Guard.Contract.check_finals oracle plan r.Domexec.Exec.dx_machine;
          r)
    in
    let par_ns = median (List.map (fun r -> r.Domexec.Exec.dx_wall_ns) runs) in
    let seq_ns = wall_seq ~repeats b in
    let r0 = List.hd runs in
    let distributed =
      List.length
        (List.filter
           (fun (lr : Domexec.Exec.loop_report) ->
             lr.Domexec.Exec.lr_decision = Domexec.Exec.Distributed)
           r0.Domexec.Exec.dx_loops)
    in
    let wr =
      {
        wr_domains = domains;
        wr_used = r0.Domexec.Exec.dx_domains;
        wr_seq_ns = seq_ns;
        wr_par_ns = par_ns;
        wr_speedup = seq_ns /. par_ns;
        wr_steals = r0.Domexec.Exec.dx_steals;
        wr_distributed = distributed;
        wr_fallback = r0.Domexec.Exec.dx_fallback;
      }
    in
    Hashtbl.replace b.wall_cache (domains, repeats) wr;
    wr

(** One traced run on [domains] domains, memoized: the recorder and
    its wall time. The run is [force]d so single-core CI hosts still
    exercise the parallel scheduler, and validated against the same
    oracle as {!wall}; it is kept separate from the wall measurements
    so ring instrumentation never contaminates a timed sample. Both
    the sched report and the critical-path profile derive from this
    single recording, so they always describe the same run. *)
let traced (b : t) ~(domains : int) : Domexec.Domtrace.t * float =
  match Hashtbl.find_opt b.trace_cache domains with
  | Some tw -> tw
  | None ->
    let oracle = Lazy.force b.contract_oracle in
    let plan = b.expanded.Expand.Transform.plan in
    let name = b.workload.Workloads.Workload.name in
    let tr = Domexec.Domtrace.create () in
    let r =
      Domexec.Exec.run ~domains ~force:true ~trace:tr
        b.expanded.Expand.Transform.transformed plan b.lids
    in
    if
      not
        (String.equal r.Domexec.Exec.dx_output oracle.Guard.Contract.o_output)
    then
      failwith
        (Printf.sprintf "%s: traced domain-run output mismatch at %d domains"
           name domains);
    if r.Domexec.Exec.dx_exit <> oracle.Guard.Contract.o_exit then
      failwith
        (Printf.sprintf
           "%s: traced domain-run exit code %d differs from oracle %d" name
           r.Domexec.Exec.dx_exit oracle.Guard.Contract.o_exit);
    Guard.Contract.check_finals oracle plan r.Domexec.Exec.dx_machine;
    let tw = (tr, r.Domexec.Exec.dx_wall_ns) in
    Hashtbl.replace b.trace_cache domains tw;
    tw

let sched (b : t) ~(domains : int) : Domexec.Domtrace.Sched_report.report =
  Domexec.Domtrace.Sched_report.analyze (fst (traced b ~domains))

let critpath (b : t) ~(domains : int) : Domexec.Critpath.profile =
  Domexec.Critpath.analyze (fst (traced b ~domains))

let traced_wall_ns (b : t) ~(domains : int) : float =
  snd (traced b ~domains)

(** The sequential original's deterministic interpreter cycle count —
    the numerator of the critical-path model speedup. *)
let seq_interp_cycles (b : t) : int =
  match b.interp_cycles_cache with
  | Some c -> c
  | None ->
    let m = Interp.Machine.load b.prog in
    ignore (Interp.Machine.run m);
    let c = m.Interp.Machine.st.Interp.Machine.cycles in
    b.interp_cycles_cache <- Some c;
    c
