(** Adaptive layout selection — the scheme the paper's conclusion
    lists as future work: probe both expansion layouts empirically and
    keep the cheaper one. Interleaving is only attempted when every
    expanded structure fits its restricted shape; otherwise bonded
    wins by default (the robustness argument of §3.1). *)

open Minic

type choice = {
  mode : Expand.Plan.mode;
  result : Expand.Transform.result;
  bonded_cycles : int;
  interleaved_cycles : int option;
      (** [None] when the program has a shape interleaving rejects *)
}

(** Cycle cost of a sequential cache-modelled run of [prog] with
    [__nthreads] set to the target thread count. *)
val probe : Ast.program -> Ast.lid list -> int -> int

(** Expand with whichever layout the probe prefers. *)
val choose :
  ?threads:int -> Ast.program -> Privatize.Analyze.result list -> choice
