(** Persistent bench history: an append-only JSONL file
    ([bench/HISTORY.jsonl], one run per line, schema
    [dsexpand-bench-history/1]) and a trend/changepoint analyzer over
    it. [BASELINE.json] pins one snapshot to diff against;
    the history answers the question that snapshot cannot — did this
    metric drift across {e runs over time}, and when did it jump?

    Every entry flattens a bench run into [metric-key -> value]
    pairs. Key naming carries the comparison semantics:

    - keys containing ["/cycles"] are deterministic simulator or
      interpreter counts — tight tolerance, higher is worse;
    - keys containing ["speedup"] or ["wall"] are host measurements —
      loose tolerance, lower is worse;
    - anything else is tracked but never flagged.

    The analyzer scores each series by comparing its latest value to
    the median of the preceding window (default 5 runs), and scans
    the full series for the most recent changepoint — the first run
    whose value broke tolerance against the median of {e its}
    preceding window and stayed there. *)

type entry = {
  h_time : float;  (** unix seconds at record time *)
  h_rev : string;  (** short git revision, or ["unknown"] *)
  h_domains : int;  (** [Domain.recommended_domain_count] at record time *)
  h_config : string;  (** e.g. ["fast"] or ["full"] *)
  h_metrics : (string * float) list;
}

val entry_to_json : entry -> Telemetry.Json.t

(** Raises [Failure] on a malformed line. *)
val entry_of_json : Telemetry.Json.t -> entry

(** Append one entry as a single JSONL line (creates the file and
    parent directory if missing). *)
val append : file:string -> entry -> unit

(** All entries, oldest first. Malformed lines raise; a missing file
    is an empty history. *)
val load : file:string -> entry list

(** The short git revision of the working tree, or ["unknown"] when
    git is unavailable. *)
val git_rev : unit -> string

type verdict =
  | Stable
  | Improved
  | Regressed
  | Insufficient  (** fewer than two runs recorded this metric *)

type series = {
  s_key : string;
  s_n : int;  (** runs recording this metric *)
  s_latest : float;
  s_baseline : float;  (** median of the preceding window *)
  s_delta : float;  (** (latest - baseline) / baseline, signed *)
  s_verdict : verdict;
  s_changepoint : int option;
      (** index (into the run sequence of this series) of the most
          recent tolerance-breaking jump, if any *)
}

(** Per-metric tolerance (fraction) and whether larger values are
    worse; [None] = informational only. The default implements the
    key-naming convention above: 2% for cycle counts, 25% for wall
    and speedup numbers. *)
val default_tolerance : string -> (float * bool) option

(** Analyze every metric series across [entries] (oldest first).
    Series are returned sorted: regressions first, then improvements,
    then stable, alphabetical within a group. *)
val analyze :
  ?window:int ->
  ?tolerance:(string -> (float * bool) option) ->
  entry list ->
  series list

(** Number of [Regressed] series. *)
val regressions : series list -> int

(** Render the trend report as a table plus per-run header lines. *)
val render : entry list -> series list -> string
