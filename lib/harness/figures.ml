(** Renderers for every table and figure of the paper's evaluation.
    Each takes the loaded benchmarks and returns the text the
    experiments binary prints (and EXPERIMENTS.md embeds). *)

open Report

let name (b : Bench_run.t) = b.Bench_run.workload.Workloads.Workload.name

let threads_list = 1 :: Bench_run.thread_counts

(* ------------------------------------------------------------------ *)

let table4 (benches : Bench_run.t list) : string =
  let rows =
    List.map
      (fun b ->
        let w = b.Bench_run.workload in
        let kinds =
          List.map
            (fun (s : Parexec.Sim.loop_spec) ->
              match s.Parexec.Sim.schedule with
              | Parexec.Sim.Doall -> "DOALL"
              | Parexec.Sim.Doacross -> "DOACROSS")
            b.Bench_run.specs
          |> List.sort_uniq compare |> String.concat "+"
        in
        let seq = Bench_run.seq b in
        let pct =
          float_of_int (Bench_run.loop_cycles_seq b)
          /. float_of_int seq.Parexec.Sim.sq_total
        in
        [
          name b;
          w.Workloads.Workload.suite;
          string_of_int (Workloads.Workload.loc_count w);
          String.concat "," w.Workloads.Workload.loop_functions;
          String.concat ","
            (List.map string_of_int w.Workloads.Workload.nest_levels);
          kinds;
          Tables.pct pct;
        ])
      benches
  in
  "Table 4: benchmark characteristics (parallelism detected by the \
   classifier; %time measured)\n"
  ^ Tables.render
      ~header:
        [ "benchmark"; "suite"; "#LOC"; "function"; "level"; "parallelism"; "%time" ]
      rows

let table5 (benches : Bench_run.t list) : string =
  let rows =
    List.map
      (fun b ->
        [
          name b;
          string_of_int b.Bench_run.expanded.Expand.Transform.privatized;
          string_of_int b.Bench_run.workload.Workloads.Workload.paper_privatized;
        ])
      benches
  in
  "Table 5: dynamic data structures privatized\n"
  ^ Tables.render ~header:[ "benchmark"; "privatized"; "paper" ] rows

let fig8 (benches : Bench_run.t list) : string =
  let rows =
    List.map
      (fun b ->
        let breakdowns =
          List.map
            (fun (a : Privatize.Analyze.result) ->
              Privatize.Classify.breakdown
                a.Privatize.Analyze.classification)
            b.Bench_run.analyses
        in
        let free =
          List.fold_left
            (fun acc (x : Privatize.Classify.breakdown) ->
              acc + x.Privatize.Classify.free_of_carried)
            0 breakdowns
        and expd =
          List.fold_left
            (fun acc (x : Privatize.Classify.breakdown) ->
              acc + x.Privatize.Classify.expandable)
            0 breakdowns
        and carried =
          List.fold_left
            (fun acc (x : Privatize.Classify.breakdown) ->
              acc + x.Privatize.Classify.with_carried)
            0 breakdowns
        in
        let total = max 1 (free + expd + carried) in
        let p n = Tables.pct (float_of_int n /. float_of_int total) in
        [ name b; p free; p expd; p carried ])
      benches
  in
  "Figure 8: breakdown of the loops' dynamic memory accesses\n"
  ^ Tables.render
      ~header:
        [ "benchmark"; "free of carried dep"; "expandable"; "with carried dep" ]
      rows

let fig9 (benches : Bench_run.t list) ~(optimized : bool) : string =
  let slowdowns =
    List.map (fun b -> Bench_run.seq_slowdown b ~optimized) benches
  in
  let rows =
    List.map2 (fun b s -> [ name b; Tables.fx s ]) benches slowdowns
  in
  Printf.sprintf
    "Figure 9%s: sequential slowdown of expansion %s optimizations\n"
    (if optimized then "b" else "a")
    (if optimized then "WITH" else "WITHOUT")
  ^ Tables.render ~header:[ "benchmark"; "slowdown (x)" ] rows
  ^ Printf.sprintf "harmonic mean: %sx\n"
      (Tables.fx (Tables.harmonic_mean slowdowns))

let fig10 (benches : Bench_run.t list) : string =
  let rows =
    List.map
      (fun b ->
        [
          name b;
          Tables.fx (Bench_run.seq_slowdown b ~optimized:true);
          Tables.fx (Bench_run.rp_seq_slowdown b);
        ])
      benches
  in
  "Figure 10: sequential overhead, static expansion vs runtime \
   privatization\n"
  ^ Tables.render
      ~header:[ "benchmark"; "expansion (x)"; "runtime priv (x)" ]
      rows

let speedup_table title f (benches : Bench_run.t list) : string =
  let rows =
    List.map
      (fun b ->
        name b
        :: List.map (fun t -> Tables.fx (f b ~threads:t)) threads_list)
      benches
  in
  title ^ "\n"
  ^ Tables.render
      ~header:
        ("benchmark"
        :: List.map (fun t -> Printf.sprintf "%d core%s" t (if t > 1 then "s" else ""))
             threads_list)
      rows

let fig11 (benches : Bench_run.t list) : string =
  let loops =
    speedup_table "Figure 11a: loop speedup"
      (fun b ~threads -> Bench_run.loop_speedup b ~threads)
      benches
  in
  let totals =
    speedup_table "Figure 11b: total speedup"
      (fun b ~threads -> Bench_run.total_speedup b ~threads)
      benches
  in
  let hm t =
    Tables.harmonic_mean
      (List.map (fun b -> Bench_run.total_speedup b ~threads:t) benches)
  in
  loops ^ "\n" ^ totals
  ^ Printf.sprintf
      "harmonic mean of total speedups: %s @4 cores, %s @8 cores (paper: \
       1.93, 2.24)\n"
      (Tables.fx (hm 4))
      (Tables.fx (hm 8))

let fig12 (benches : Bench_run.t list) ~(threads : int) : string =
  let rows =
    List.map
      (fun b ->
        name b :: Tables.breakdown_cells (Bench_run.cost_breakdown b ~threads))
      benches
  in
  Printf.sprintf
    "Figure 12: cycle breakdown of the %d-core run (aggregated over threads)\n"
    threads
  ^ Tables.render ~header:("benchmark" :: Tables.breakdown_header) rows

(** The [--metrics] table over all benchmarks: speedups plus cycle
    attribution at one thread count. *)
let metrics (benches : Bench_run.t list) ~(threads : int) : string =
  Printf.sprintf "Metrics: per-workload cost attribution at %d threads\n"
    threads
  ^ Tables.metrics_table
      (List.map (fun b -> Bench_run.metrics_row b ~threads) benches)

let fig13 (benches : Bench_run.t list) : string =
  speedup_table "Figure 13: loop speedup under runtime privatization"
    (fun b ~threads -> Bench_run.loop_speedup ~rp:true b ~threads)
    benches

let fig14 (benches : Bench_run.t list) : string =
  let rows =
    List.map
      (fun b ->
        [
          name b;
          Tables.fx (Bench_run.memory_multiple b ~threads:4);
          Tables.fx (Bench_run.memory_multiple b ~threads:8);
          Tables.fx (Bench_run.rp_memory_multiple b ~threads:4);
          Tables.fx (Bench_run.rp_memory_multiple b ~threads:8);
        ])
      benches
  in
  "Figure 14: memory use as a multiple of the sequential original\n"
  ^ Tables.render
      ~header:
        [
          "benchmark"; "expansion @4"; "expansion @8"; "runtime priv @4";
          "runtime priv @8";
        ]
      rows

(** Mean per-copy span utilization of the private copies (copy 0 is
    the shared data, not an expanded copy). *)
let mean_util (h : Parexec.Heat.t) : string =
  match
    List.filter (fun c -> c.Parexec.Heat.hc_copy > 0) h.Parexec.Heat.copies
  with
  | [] -> "-"
  | cs ->
    Tables.fx
      (List.fold_left (fun a c -> a +. c.Parexec.Heat.hc_util) 0.0 cs
      /. float_of_int (List.length cs))

(** The bonded-vs-interleaved heatmap ablation (§3.1): per workload,
    the attributed lines, false-sharing lines and mean copy
    utilization of each layout at [threads]. Workloads the interleaved
    transformer rejects (recast structures, heap blocks) report "-". *)
let heatmap (benches : Bench_run.t list) ~(threads : int) : string =
  let rows =
    List.concat_map
      (fun b ->
        let row mode (h : Parexec.Heat.t) =
          [
            name b;
            mode;
            string_of_int threads;
            string_of_int h.Parexec.Heat.total_lines;
            string_of_int h.Parexec.Heat.false_sharing_lines;
            string_of_int (List.length h.Parexec.Heat.copies);
            mean_util h;
          ]
        in
        let bonded = row "bonded" (Bench_run.heat b ~threads) in
        let interleaved =
          match
            Expand.Transform.expand_loops ~mode:Expand.Plan.Interleaved
              b.Bench_run.prog b.Bench_run.analyses
          with
          | r -> row "interleaved" (Bench_run.heat_of b r ~threads)
          | exception Expand.Transform.Unsupported _ ->
            [ name b; "interleaved"; "-"; "-"; "-"; "-"; "-" ]
        in
        [ bonded; interleaved ])
      benches
  in
  "Heatmap: cache-line attribution, bonded vs interleaved layout\n"
  ^ Tables.heat_summary_table rows

(** Simulated vs real scaling: the simulator's total speedup (cycles)
    next to the domain executor's wall-clock speedup at the same
    counts. Real speedups depend on the host — the table records how
    many domains each run actually got, and a sequential fallback
    (1-core host) shows as used=1. *)
let domexec (benches : Bench_run.t list) : string =
  let rows =
    List.concat_map
      (fun b ->
        List.map
          (fun d ->
            let wr = Bench_run.wall b ~domains:d in
            let sim =
              if d = 1 then "1.00"
              else Tables.fx (Bench_run.total_speedup b ~threads:d)
            in
            [
              name b;
              string_of_int d;
              string_of_int wr.Bench_run.wr_used;
              sim;
              Tables.fx wr.Bench_run.wr_speedup;
              string_of_int wr.Bench_run.wr_steals;
              string_of_int wr.Bench_run.wr_distributed;
              (match wr.Bench_run.wr_fallback with
              | Some _ -> "fallback"
              | None -> "domains");
            ])
          Bench_run.domain_counts)
      benches
  in
  Printf.sprintf
    "Domexec: simulated (cycle) vs real (wall-clock) scaling, median of 3 \
     runs, host has %d core%s\n"
    (Domexec.Exec.available_domains ())
    (if Domexec.Exec.available_domains () > 1 then "s" else "")
  ^ Tables.render
      ~header:
        [
          "benchmark"; "domains"; "used"; "sim speedup"; "wall speedup";
          "steals"; "distributed"; "mode";
        ]
      rows

(** Scheduler-health summary from one traced run per domain count —
    the same {!Bench_run.sched} reports whose JSON lands in
    BENCH_results.json, rendered for a human. Utilization spread and
    the imbalance coefficient localize stragglers; drops > 0 means the
    ring capacity clipped the trace. *)
let domtrace (benches : Bench_run.t list) : string =
  let module SR = Domexec.Domtrace.Sched_report in
  let counts = List.filter (fun d -> d > 1 && d <= 4) Bench_run.domain_counts in
  let rows =
    List.concat_map
      (fun b ->
        List.map
          (fun d ->
            let r = Bench_run.sched b ~domains:d in
            let utils =
              Array.to_list (Array.map SR.utilization r.SR.sr_domains)
            in
            [
              name b;
              string_of_int d;
              string_of_int r.SR.sr_events;
              string_of_int r.SR.sr_drops;
              (match r.SR.sr_steal_success with
              | None -> "-"
              | Some s -> Tables.pct s);
              Tables.fx r.SR.sr_imbalance;
              (match r.SR.sr_straggler with
              | None -> "-"
              | Some dom -> "domain " ^ string_of_int dom);
              Tables.pct (List.fold_left Float.min 1. utils);
              Tables.pct (List.fold_left Float.max 0. utils);
              Tables.pct r.SR.sr_gc_share;
            ])
          counts)
      benches
  in
  "Domtrace: scheduler health from per-domain event rings (fault-free runs)\n"
  ^ Tables.render
      ~header:
        [
          "benchmark"; "domains"; "events"; "drops"; "steal succ";
          "imbalance"; "straggler"; "min util"; "max util"; "gc share";
        ]
      rows

(** Critical-path summary per (workload, domain count): how much of
    the cycle-model speedup the wall clock actually kept, which
    segment class dominates the measured critical path, and how much
    slower a parallel interpreter cycle ran than a sequential one.
    The full per-class and what-if detail is [dsexpand
    --critical-path]'s artifact; this table is the cross-workload
    digest. *)
let critpath (benches : Bench_run.t list) : string =
  let counts = List.filter (fun d -> d > 1 && d <= 4) Bench_run.domain_counts in
  let rows =
    List.concat_map
      (fun b ->
        let seq_cycles = Bench_run.seq_interp_cycles b in
        let seq_ns = Bench_run.wall_seq b in
        List.map
          (fun d ->
            let p = Bench_run.critpath b ~domains:d in
            let dom_cls, dom_share = Domexec.Critpath.dominant p in
            let measured = Domexec.Critpath.measured_speedup p ~seq_ns in
            let model =
              Domexec.Critpath.model_speedup p ~seq_cycles
            in
            {
              Tables.cp_workload = name b;
              cp_domains = d;
              cp_model_speedup = model;
              cp_measured_speedup = measured;
              cp_dominant = dom_cls;
              cp_dominant_share = dom_share;
              cp_exec_inflation =
                (if measured > 0.0 then model /. measured else 0.0);
            })
          counts)
      benches
  in
  "Critpath: cycle-model vs measured critical path (traced runs)\n"
  ^ Tables.critpath_table rows

(* thunked so that selecting a subset only runs what it needs *)
let all (benches : Bench_run.t list) : (string * (unit -> string)) list =
  [
    ("table4", fun () -> table4 benches);
    ("table5", fun () -> table5 benches);
    ("fig8", fun () -> fig8 benches);
    ("fig9a", fun () -> fig9 benches ~optimized:false);
    ("fig9b", fun () -> fig9 benches ~optimized:true);
    ("fig10", fun () -> fig10 benches);
    ("fig11", fun () -> fig11 benches);
    ("fig12", fun () -> fig12 benches ~threads:8);
    ("fig13", fun () -> fig13 benches);
    ("fig14", fun () -> fig14 benches);
    ("metrics", fun () -> metrics benches ~threads:4);
    ("heatmap", fun () -> heatmap benches ~threads:4);
    ("domexec", fun () -> domexec benches);
    ("domtrace", fun () -> domtrace benches);
    ("critpath", fun () -> critpath benches);
  ]
