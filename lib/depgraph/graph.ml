(** Loop-level data dependence graphs (Definition 1 of the paper).

    Vertices are the static memory-access sites of a loop (identified
    by access id); edges record flow, anti- and output dependences,
    each flagged loop-carried or loop-independent. The graph also
    carries the two per-access properties of Definitions 2-3
    (upwards-exposed loads, downwards-exposed stores) and the dynamic
    access counts used by Figure 8. *)

open Minic

type dep_kind = Flow | Anti | Output [@@deriving show { with_path = false }, eq]

type edge = {
  e_src : Ast.aid;  (** earlier access (source of the dependence) *)
  e_dst : Ast.aid;  (** later access (sink) *)
  e_kind : dep_kind;
  e_carried : bool;  (** loop-carried (vs. loop-independent) *)
}
[@@deriving show { with_path = false }, eq]

(** One static access site of the loop. *)
type site = {
  s_aid : Ast.aid;
  s_kind : Visit.access_kind;
  s_text : string;  (** rendered lvalue, for reports *)
}

(** Pseudo access id standing for the world outside the loop, used as
    an edge endpoint when citing loop-boundary dependences (the
    concrete witnesses behind Definition 2/3 exposure marks). *)
let boundary : Ast.aid = -1

type t = {
  loop : Ast.lid;
  sites : site list;
  edges : (edge, unit) Hashtbl.t;
  upwards_exposed : (Ast.aid, unit) Hashtbl.t;
  downwards_exposed : (Ast.aid, unit) Hashtbl.t;
  killed_after_loop : (Ast.aid, unit) Hashtbl.t;
      (** stores whose last-written value a post-loop store overwrote:
          the boundary output dependence cited for store-only classes
          with no in-loop edges *)
  dyn_counts : (Ast.aid, int) Hashtbl.t;
      (** dynamic executions of each site inside the loop *)
  mutable iterations : int;  (** total iterations over all invocations *)
  mutable invocations : int;
  mutable loop_cycles : int;  (** cycles spent inside the loop *)
  mutable total_cycles : int;  (** cycles of the whole program run *)
}

let create (loop : Ast.lid) (sites : site list) : t =
  {
    loop;
    sites;
    edges = Hashtbl.create 64;
    upwards_exposed = Hashtbl.create 16;
    downwards_exposed = Hashtbl.create 16;
    killed_after_loop = Hashtbl.create 16;
    dyn_counts = Hashtbl.create 64;
    iterations = 0;
    invocations = 0;
    loop_cycles = 0;
    total_cycles = 0;
  }

let add_edge g ~src ~dst ~kind ~carried =
  let e = { e_src = src; e_dst = dst; e_kind = kind; e_carried = carried } in
  if not (Hashtbl.mem g.edges e) then Hashtbl.replace g.edges e ()

let remove_edge g e = Hashtbl.remove g.edges e

(** Deep copy: mutating the copy (fault injection) leaves the profiler's
    graph intact. *)
let copy g =
  {
    g with
    edges = Hashtbl.copy g.edges;
    upwards_exposed = Hashtbl.copy g.upwards_exposed;
    downwards_exposed = Hashtbl.copy g.downwards_exposed;
    killed_after_loop = Hashtbl.copy g.killed_after_loop;
    dyn_counts = Hashtbl.copy g.dyn_counts;
  }

let mark_upwards_exposed g aid = Hashtbl.replace g.upwards_exposed aid ()
let mark_downwards_exposed g aid = Hashtbl.replace g.downwards_exposed aid ()
let mark_killed_after_loop g aid = Hashtbl.replace g.killed_after_loop aid ()

let bump_count g aid =
  Hashtbl.replace g.dyn_counts aid
    (1 + Option.value ~default:0 (Hashtbl.find_opt g.dyn_counts aid))

let edges g = Hashtbl.fold (fun e () acc -> e :: acc) g.edges []
let is_upwards_exposed g aid = Hashtbl.mem g.upwards_exposed aid
let is_downwards_exposed g aid = Hashtbl.mem g.downwards_exposed aid
let is_killed_after_loop g aid = Hashtbl.mem g.killed_after_loop aid

let dyn_count g aid = Option.value ~default:0 (Hashtbl.find_opt g.dyn_counts aid)

(** Does [aid] participate (as source or sink) in any edge satisfying
    the predicate? *)
let involved_in g aid pred =
  Hashtbl.fold
    (fun e () acc -> acc || ((e.e_src = aid || e.e_dst = aid) && pred e))
    g.edges false

let in_carried_flow g aid =
  involved_in g aid (fun e -> e.e_kind = Flow && e.e_carried)

let in_carried_anti_or_output g aid =
  involved_in g aid (fun e ->
      e.e_carried && (e.e_kind = Anti || e.e_kind = Output))

let in_any_carried g aid = involved_in g aid (fun e -> e.e_carried)

(** Loop-independent dependences, the equivalence generator of
    Definition 4. *)
let independent_pairs g : (Ast.aid * Ast.aid) list =
  Hashtbl.fold
    (fun e () acc -> if e.e_carried then acc else (e.e_src, e.e_dst) :: acc)
    g.edges []

let site g aid = List.find_opt (fun s -> s.s_aid = aid) g.sites

let pp_dep_kind fmt = function
  | Flow -> Format.pp_print_string fmt "flow"
  | Anti -> Format.pp_print_string fmt "anti"
  | Output -> Format.pp_print_string fmt "output"

let dep_kind_name = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"

(** Total order on edges for deterministic evidence lists. *)
let compare_edge (a : edge) (b : edge) : int = compare a b

(** Edges involving [aid] (as source or sink), sorted. *)
let edges_involving (g : t) (aid : Ast.aid) : edge list =
  Hashtbl.fold
    (fun e () acc -> if e.e_src = aid || e.e_dst = aid then e :: acc else acc)
    g.edges []
  |> List.sort_uniq compare_edge

(** Edges involving any of [aids], sorted and deduplicated. *)
let edges_involving_any (g : t) (aids : Ast.aid list) : edge list =
  Hashtbl.fold
    (fun e () acc ->
      if List.mem e.e_src aids || List.mem e.e_dst aids then e :: acc else acc)
    g.edges []
  |> List.sort_uniq compare_edge

(** Rendered access site: stores carry a ["="] prefix (the convention
    of the --report output), unknown ids their raw number. *)
let site_text (g : t) (aid : Ast.aid) : string =
  if aid = boundary then "<outside loop>"
  else
    match site g aid with
    | Some s ->
      (match s.s_kind with Visit.Load -> "" | Visit.Store -> "=")
      ^ s.s_text
    | None -> Printf.sprintf "[%d]" aid

(** One-line citation of a dependence edge against the graph's site
    texts, e.g. ["=a[i] -anti/carried-> a[j]"] — the evidence format
    of the --explain report. *)
let cite_edge (g : t) (e : edge) : string =
  Printf.sprintf "%s -%s%s-> %s" (site_text g e.e_src)
    (dep_kind_name e.e_kind)
    (if e.e_carried then "/carried" else "")
    (site_text g e.e_dst)

(** Human-readable dump, used by the dsexpand CLI's --dump-deps. *)
let to_string (g : t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "loop %d: %d sites, %d iterations over %d invocation(s)\n" g.loop
       (List.length g.sites) g.iterations g.invocations);
  List.iter
    (fun s ->
      let tags =
        (if is_upwards_exposed g s.s_aid then [ "upwards-exposed" ] else [])
        @
        if is_downwards_exposed g s.s_aid then [ "downwards-exposed" ] else []
      in
      Buffer.add_string buf
        (Printf.sprintf "  [%d] %s %s (%d dynamic)%s\n" s.s_aid
           (match s.s_kind with Visit.Load -> "load " | Visit.Store -> "store")
           s.s_text (dyn_count g s.s_aid)
           (if tags = [] then "" else " " ^ String.concat ", " tags)))
    g.sites;
  let sorted =
    List.sort compare
      (List.map
         (fun e ->
           Printf.sprintf "  %d -> %d %s%s\n" e.e_src e.e_dst
             (Format.asprintf "%a" pp_dep_kind e.e_kind)
             (if e.e_carried then " (carried)" else ""))
         (edges g))
  in
  List.iter (Buffer.add_string buf) sorted;
  Buffer.contents buf
