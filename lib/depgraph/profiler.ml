(** Dynamic data-dependence profiling.

    The paper obtains its loop-level dependence graphs from off-line
    profiling runs ([38,39] in its references) followed by manual
    verification; this module plays that role. It executes the program
    once under the interpreter's access observer and builds the exact
    graph of Definition 1 at byte granularity:

    - a read of a byte last written in the same iteration is a
      loop-independent flow dependence; written in an earlier iteration,
      a loop-carried one (the "covered by previous writes in the same
      iteration" clause falls out of tracking the most recent write);
    - a write over a byte read since its last write yields anti
      dependences (carried iff the read was in an earlier iteration);
    - a write over a previously written byte yields an output
      dependence;
    - a read with no in-loop write before it is upwards-exposed; a
      value written in the loop and read after the loop exits marks its
      writer downwards-exposed.

    Byte granularity makes recasting idioms (bzip2's short/int [zptr])
    profile correctly. *)

open Minic

(* Per-byte shadow state. [w_inv] is the loop invocation the write
   belongs to (-1 = written outside the loop). [readers] are reads
   since the last write, tagged with (aid, iteration, invocation). *)
type byte_state = {
  mutable w_aid : Ast.aid;  (** -1 when never written *)
  mutable w_iter : int;
  mutable w_inv : int;
  mutable w_inloop : bool;
  mutable readers : (Ast.aid * int * int) list;
}

type profile = {
  graph : Graph.t;
  stats : Interp.Machine.stats;  (** whole-program instruction counts *)
  exit_code : int;
  output : string;
  peak_bytes : int;
}

(** Function names called within a statement. *)
let calls_of_stmt (s : Ast.stmt) : string list =
  let acc = ref [] in
  ignore
    (Visit.map_stmt
       (fun s ->
         (match s.Ast.skind with
         | Ast.Scall (_, f, _) -> acc := f :: !acc
         | _ -> ());
         s)
       s);
  !acc

(** Functions transitively reachable from calls inside [stmt]. *)
let reachable_funs (prog : Ast.program) (stmt : Ast.stmt) : Ast.fundef list =
  let seen = Hashtbl.create 8 in
  let rec visit names =
    List.iter
      (fun name ->
        if not (Hashtbl.mem seen name) then begin
          Hashtbl.replace seen name ();
          match Ast.find_fun prog name with
          | Some f -> visit (calls_of_stmt f.Ast.fbody)
          | None -> () (* builtin *)
        end)
      names
  in
  visit (calls_of_stmt stmt);
  List.filter (fun f -> Hashtbl.mem seen f.Ast.fname) (Ast.functions prog)

(** Static access sites of a loop: its body and condition (+ step for
    for-loops; the for-init runs outside the iteration space), plus
    the bodies of all functions transitively callable from the loop —
    Definition 1's vertex set is "all memory accesses potentially
    executed in the loop". *)
let loop_sites (prog : Ast.program) (loop_stmt : Ast.stmt) : Graph.site list =
  let of_access (a : Visit.access) =
    {
      Graph.s_aid = a.Visit.acc_aid;
      s_kind = a.Visit.acc_kind;
      s_text = Pretty.lval_text a.Visit.acc_lval;
    }
  in
  let exp_accesses e =
    List.rev (Visit.fold_exp_accesses (fun acc a -> a :: acc) [] e)
  in
  let direct =
    match loop_stmt.Ast.skind with
    | Ast.Swhile (_, c, body) -> exp_accesses c @ Visit.accesses_of_stmt body
    | Ast.Sfor (_, _, c, step, body) ->
      exp_accesses c @ Visit.accesses_of_stmt step
      @ Visit.accesses_of_stmt body
    | _ -> invalid_arg "loop_sites: not a loop"
  in
  let callee =
    List.concat_map Visit.accesses_of_fun (reachable_funs prog loop_stmt)
  in
  List.map of_access (direct @ callee)

(** Profile [lid] by running the whole program once. *)
let profile (prog : Ast.program) (lid : Ast.lid) : profile =
  Telemetry.Span.wall "phase.profile" @@ fun () ->
  let loop_stmt =
    match Visit.find_loop_fun prog lid with
    | Some (_, s) -> s
    | None -> invalid_arg (Printf.sprintf "profile: no loop with id %d" lid)
  in
  let g = Graph.create lid (loop_sites prog loop_stmt) in
  let site_aids = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace site_aids s.Graph.s_aid ()) g.Graph.sites;
  let m = Interp.Machine.load prog in
  let st = m.Interp.Machine.st in
  let bytes : (int, byte_state) Hashtbl.t = Hashtbl.create (1 lsl 16) in
  let get_byte addr =
    match Hashtbl.find_opt bytes addr with
    | Some b -> b
    | None ->
      let b =
        { w_aid = -1; w_iter = 0; w_inv = -1; w_inloop = false; readers = [] }
      in
      Hashtbl.replace bytes addr b;
      b
  in
  let in_loop = ref false in
  let cur_iter = ref 0 in
  let cur_inv = ref (-1) in
  let enter_cycles = ref 0 in
  let hook l ev =
    if l = lid then
      match ev with
      | Interp.Machine.Enter ->
        in_loop := true;
        incr cur_inv;
        cur_iter := 0;
        g.Graph.invocations <- g.Graph.invocations + 1;
        enter_cycles := st.Interp.Machine.cycles
      | Interp.Machine.Iter i -> cur_iter := i
      | Interp.Machine.Exit ->
        in_loop := false;
        (* the trailing Iter only ran the failing condition *)
        g.Graph.iterations <- g.Graph.iterations + !cur_iter;
        g.Graph.loop_cycles <-
          g.Graph.loop_cycles + (st.Interp.Machine.cycles - !enter_cycles)
  in
  let observe aid kind addr size =
    if !in_loop then begin
      if Hashtbl.mem site_aids aid then Graph.bump_count g aid;
      let iter = !cur_iter and inv = !cur_inv in
      match kind with
      | Visit.Load ->
        for i = 0 to size - 1 do
          let b = get_byte (addr + i) in
          if b.w_aid >= 0 && b.w_inloop then begin
            if b.w_inv = inv then
              Graph.add_edge g ~src:b.w_aid ~dst:aid ~kind:Graph.Flow
                ~carried:(b.w_iter < iter)
            else begin
              (* written by a previous invocation, read by this one:
                 live-out of the loop and live-in to it *)
              Graph.mark_downwards_exposed g b.w_aid;
              Graph.mark_upwards_exposed g aid
            end
          end
          else Graph.mark_upwards_exposed g aid;
          b.readers <- (aid, iter, inv) :: b.readers
        done
      | Visit.Store ->
        for i = 0 to size - 1 do
          let b = get_byte (addr + i) in
          if b.w_aid >= 0 && b.w_inloop && b.w_inv = inv then
            Graph.add_edge g ~src:b.w_aid ~dst:aid ~kind:Graph.Output
              ~carried:(b.w_iter < iter);
          List.iter
            (fun (raid, riter, rinv) ->
              if rinv = inv && Hashtbl.mem site_aids raid then
                Graph.add_edge g ~src:raid ~dst:aid ~kind:Graph.Anti
                  ~carried:(riter < iter))
            b.readers;
          b.w_aid <- aid;
          b.w_iter <- iter;
          b.w_inv <- inv;
          b.w_inloop <- true;
          b.readers <- []
        done
    end
    else begin
      match kind with
      | Visit.Load ->
        for i = 0 to size - 1 do
          match Hashtbl.find_opt bytes (addr + i) with
          | Some b when b.w_aid >= 0 && b.w_inloop ->
            Graph.mark_downwards_exposed g b.w_aid
          | _ -> ()
        done
      | Visit.Store ->
        for i = 0 to size - 1 do
          match Hashtbl.find_opt bytes (addr + i) with
          | Some b ->
            (* overwriting an in-loop value that was never read after
               the loop: a loop-boundary output dependence *)
            if b.w_aid >= 0 && b.w_inloop then
              Graph.mark_killed_after_loop g b.w_aid;
            b.w_aid <- -1;
            b.w_inloop <- false;
            b.readers <- []
          | None -> ()
        done
    end
  in
  st.Interp.Machine.loop_hook <- Some hook;
  st.Interp.Machine.observer <- Some observe;
  (* a freed block's bytes carry no dependences into whatever is
     allocated there next: a thread-safe allocator would hand parallel
     threads distinct blocks (this is also what the paper's manual
     graph verification discards) *)
  st.Interp.Machine.free_hook <-
    Some
      (fun base size ->
        for i = base to base + size - 1 do
          Hashtbl.remove bytes i
        done);
  let exit_code = Interp.Machine.run m in
  g.Graph.total_cycles <- st.Interp.Machine.cycles;
  if Telemetry.Sink.enabled () then begin
    Telemetry.Span.count "profile.sites" (List.length g.Graph.sites);
    Telemetry.Span.count "profile.edges" (Hashtbl.length g.Graph.edges)
  end;
  {
    graph = g;
    stats = st.Interp.Machine.stats;
    exit_code;
    output = Interp.Machine.output st;
    peak_bytes = Interp.Memory.peak_bytes st.Interp.Machine.mem;
  }
