(** Loop-level data dependence graphs (Definition 1 of the paper).

    Vertices are the static memory-access sites of a loop (identified
    by access id); edges record flow, anti- and output dependences,
    each flagged loop-carried or loop-independent. The graph also
    carries the per-access properties of Definitions 2-3
    (upwards-exposed loads, downwards-exposed stores) and the dynamic
    access counts behind Figure 8. *)

open Minic

type dep_kind = Flow | Anti | Output

val equal_dep_kind : dep_kind -> dep_kind -> bool
val show_dep_kind : dep_kind -> string

type edge = {
  e_src : Ast.aid;  (** earlier access (source of the dependence) *)
  e_dst : Ast.aid;  (** later access (sink) *)
  e_kind : dep_kind;
  e_carried : bool;  (** loop-carried (vs. loop-independent) *)
}

val equal_edge : edge -> edge -> bool
val show_edge : edge -> string

(** One static access site of the loop. *)
type site = {
  s_aid : Ast.aid;
  s_kind : Visit.access_kind;
  s_text : string;  (** rendered lvalue, for reports *)
}

(** Pseudo access id standing for the world outside the loop, used as
    an edge endpoint when citing loop-boundary dependences (the
    concrete witnesses behind Definition 2/3 exposure marks). *)
val boundary : Ast.aid

type t = {
  loop : Ast.lid;
  sites : site list;
  edges : (edge, unit) Hashtbl.t;
  upwards_exposed : (Ast.aid, unit) Hashtbl.t;
  downwards_exposed : (Ast.aid, unit) Hashtbl.t;
  killed_after_loop : (Ast.aid, unit) Hashtbl.t;
      (** stores whose last-written value a post-loop store overwrote *)
  dyn_counts : (Ast.aid, int) Hashtbl.t;
  mutable iterations : int;  (** total iterations over all invocations *)
  mutable invocations : int;
  mutable loop_cycles : int;  (** cycles spent inside the loop *)
  mutable total_cycles : int;  (** cycles of the whole program run *)
}

val create : Ast.lid -> site list -> t
val add_edge : t -> src:Ast.aid -> dst:Ast.aid -> kind:dep_kind -> carried:bool -> unit
val remove_edge : t -> edge -> unit

(** Deep copy: mutating the copy (fault injection) leaves the original
    intact. *)
val copy : t -> t
val mark_upwards_exposed : t -> Ast.aid -> unit
val mark_downwards_exposed : t -> Ast.aid -> unit
val mark_killed_after_loop : t -> Ast.aid -> unit
val bump_count : t -> Ast.aid -> unit
val edges : t -> edge list
val is_upwards_exposed : t -> Ast.aid -> bool
val is_downwards_exposed : t -> Ast.aid -> bool
val is_killed_after_loop : t -> Ast.aid -> bool
val dyn_count : t -> Ast.aid -> int

(** Does [aid] participate (as source or sink) in an edge satisfying
    the predicate? *)
val involved_in : t -> Ast.aid -> (edge -> bool) -> bool

val in_carried_flow : t -> Ast.aid -> bool
val in_carried_anti_or_output : t -> Ast.aid -> bool
val in_any_carried : t -> Ast.aid -> bool

(** Loop-independent dependences, the equivalence generator of
    Definition 4. *)
val independent_pairs : t -> (Ast.aid * Ast.aid) list

val site : t -> Ast.aid -> site option
val pp_dep_kind : Format.formatter -> dep_kind -> unit
val dep_kind_name : dep_kind -> string

(** Total order on edges for deterministic evidence lists. *)
val compare_edge : edge -> edge -> int

(** Edges involving [aid] (as source or sink), sorted. *)
val edges_involving : t -> Ast.aid -> edge list

(** Edges involving any of [aids], sorted and deduplicated. *)
val edges_involving_any : t -> Ast.aid list -> edge list

(** Rendered access site; stores carry a ["="] prefix. *)
val site_text : t -> Ast.aid -> string

(** One-line citation of a dependence edge against the graph's site
    texts, e.g. ["=a[i] -anti/carried-> a[j]"]. *)
val cite_edge : t -> edge -> string

(** Human-readable dump (the dsexpand CLI's --dump-deps). *)
val to_string : t -> string
