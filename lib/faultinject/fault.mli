(** Deterministic, seeded fault injection for testing the guards.

    Faults model betrayed trust along the expansion pipeline: a
    dependence edge the profiler missed, a misclassified access class,
    under-offset redirection spans, and runtime allocation failure.
    All choices are functions of [seed] alone, so campaigns are
    reproducible. *)

open Minic

type kind =
  | Drop_dep_edge  (** remove one loop-carried dependence edge *)
  | Force_misclassify  (** declare one shared access class private *)
  | Truncate_span of int  (** bytes subtracted from every span *)
  | Alloc_failure of int  (** which runtime allocation fails (1-based) *)
  | Domain_crash of int
      (** crash the chosen chunk's first [n] acquisition attempts
          (domain-executor runs only; armed on the supervisor) *)
  | Domain_stall of int
      (** stall the chosen chunk [n] times until the watchdog fires *)
  | Writelog_corrupt of int
      (** corrupt the chosen chunk's write log in flight, [n] times *)
  | Steal_contention of int
      (** force the first [n] deque steal attempts to lose their CAS *)

type t = { seed : int; kind : kind }

val make : seed:int -> kind -> t
val describe : t -> string

(** Domain-executor faults are armed on [Domexec.Supervisor], not on
    the simulation pipeline; {!mangle} leaves the analyses untouched
    for them and {!attach_machine} is a no-op. *)
val domain_level : t -> bool

(** Deterministic chunk choice for domain-level faults: which chunk of
    a distributed invocation (loop [lid], invocation [inv], [nchunks]
    chunks) the fault targets. A pure function of the seed, so every
    domain — and every retry — agrees on the target. *)
val target_chunk : t -> lid:int -> inv:int -> nchunks:int -> int

(** How many times the domain-level fault fires (the [n] payload);
    0 for pipeline-level kinds. *)
val fire_budget : t -> int

(** Result of applying a fault to the analysis outputs. *)
type application = {
  analyses : Privatize.Analyze.result list;
  verdicts_changed : bool;
      (** did the fault actually flip some verdict (a harmless fault
          leaves the pipeline's decisions intact)? *)
  note : string;  (** human-readable description of what was mangled *)
}

(** Apply the fault to the analysis pipeline's outputs. Pure with
    respect to its inputs: graphs and verdict tables are copied before
    mangling, so the originals stay valid as a clean reference. *)
val mangle : t -> Ast.program -> Privatize.Analyze.result list -> application

(** The [span_shrink] to pass to [Expand.Transform.expand_loops]. *)
val span_shrink : t -> int option

(** Arm machine-level faults on a loaded machine (call from
    [Parexec.Sim]'s [attach] callback, so compile-time allocations are
    not counted). *)
val attach_machine : t -> Interp.Machine.t -> unit
