(** Deterministic, seeded fault injection.

    Each fault models one way the expansion pipeline's trust can be
    betrayed in production, so the guards of [lib/guard] can be tested
    against known-bad inputs:

    - {!Drop_dep_edge}: the dependence profiler missed a loop-carried
      edge (incomplete profiling input), so re-classification wrongly
      privatizes an access class.
    - {!Force_misclassify}: a shared access class is declared private
      outright (an imprecise analysis trusting a wrong invariant).
    - {!Truncate_span}: the transformer's redirection arithmetic
      under-offsets thread copies by [k] bytes (miscompiled span).
    - {!Alloc_failure}: the [n]-th runtime allocation fails
      (out-of-memory under N-fold expansion).

    All choices are functions of [seed] alone — no wall-clock entropy —
    so every campaign run is reproducible. *)

open Minic

type kind =
  | Drop_dep_edge
  | Force_misclassify
  | Truncate_span of int  (** bytes subtracted from every span *)
  | Alloc_failure of int  (** which allocation fails (1-based) *)
  | Domain_crash of int  (** crash the chosen chunk's first n acquisitions *)
  | Domain_stall of int  (** stall the chosen chunk n times (watchdog food) *)
  | Writelog_corrupt of int  (** corrupt the chunk's write log n times *)
  | Steal_contention of int  (** force the first n steal CASes to lose *)

type t = { seed : int; kind : kind }

let make ~seed kind = { seed; kind }

let describe (t : t) : string =
  match t.kind with
  | Drop_dep_edge -> Printf.sprintf "drop-dep-edge(seed=%d)" t.seed
  | Force_misclassify -> Printf.sprintf "misclassify(seed=%d)" t.seed
  | Truncate_span k -> Printf.sprintf "truncate-span:%d(seed=%d)" k t.seed
  | Alloc_failure n -> Printf.sprintf "alloc-fail:%d(seed=%d)" n t.seed
  | Domain_crash n -> Printf.sprintf "domain-crash:%d(seed=%d)" n t.seed
  | Domain_stall n -> Printf.sprintf "domain-stall:%d(seed=%d)" n t.seed
  | Writelog_corrupt n ->
    Printf.sprintf "writelog-corrupt:%d(seed=%d)" n t.seed
  | Steal_contention n ->
    Printf.sprintf "steal-contention:%d(seed=%d)" n t.seed

let domain_level (t : t) : bool =
  match t.kind with
  | Domain_crash _ | Domain_stall _ | Writelog_corrupt _ | Steal_contention _
    -> true
  | Drop_dep_edge | Force_misclassify | Truncate_span _ | Alloc_failure _ ->
    false

let fire_budget (t : t) : int =
  match t.kind with
  | Domain_crash n | Domain_stall n | Writelog_corrupt n
  | Steal_contention n -> max 0 n
  | Drop_dep_edge | Force_misclassify | Truncate_span _ | Alloc_failure _ -> 0

(* SplitMix-style integer mixer: deterministic seeded index choice. *)
let mix (seed : int) (bound : int) : int =
  if bound <= 0 then 0
  else begin
    let z = Int64.add (Int64.of_int seed) 0x9E3779B97F4A7C15L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_int (Int64.rem (Int64.logand z Int64.max_int) (Int64.of_int bound))
  end

(* Which chunk of a distributed invocation the domain-level fault
   targets. Pure in (seed, lid, inv, nchunks): every domain — and
   every retry of the same run — agrees on the target regardless of
   the (nondeterministic) steal schedule. *)
let target_chunk (t : t) ~(lid : int) ~(inv : int) ~(nchunks : int) : int =
  mix (t.seed lxor ((lid * 7919) + (inv * 104729))) nchunks

type application = {
  analyses : Privatize.Analyze.result list;
  verdicts_changed : bool;
      (** did the fault actually flip some verdict (a harmless fault
          leaves the pipeline's decisions intact)? *)
  note : string;  (** human-readable description of what was mangled *)
}

let unchanged analyses note = { analyses; verdicts_changed = false; note }

let private_set (a : Privatize.Analyze.result) : (Ast.aid, unit) Hashtbl.t =
  let s = Hashtbl.create 64 in
  Hashtbl.iter
    (fun aid v -> if v = Privatize.Classify.Private then Hashtbl.replace s aid ())
    a.Privatize.Analyze.classification.Privatize.Classify.verdicts;
  s

(* Re-classify an analysis from a (mangled) graph, recomputing the
   induction access ids the original classification used. *)
let reclassify (prog : Ast.program) (a : Privatize.Analyze.result)
    (g : Depgraph.Graph.t) : Privatize.Analyze.result =
  let induction =
    Privatize.Induction.access_ids_of_vars g.Depgraph.Graph.sites prog
      a.Privatize.Analyze.loop_stmt a.Privatize.Analyze.induction_vars
  in
  {
    a with
    Privatize.Analyze.classification = Privatize.Classify.classify ~induction g;
  }

(* Drop one loop-carried dependence edge. Candidates are scanned from a
   seeded start; prefer an edge whose removal flips some access to
   Private (the dangerous case the guards exist for), falling back to
   any carried edge when no removal changes the classification. *)
let drop_edge (t : t) (prog : Ast.program)
    (analyses : Privatize.Analyze.result list) : application =
  let candidates =
    List.concat_map
      (fun (a : Privatize.Analyze.result) ->
        let g = a.Privatize.Analyze.classification.Privatize.Classify.graph in
        List.filter_map
          (fun (e : Depgraph.Graph.edge) ->
            if e.Depgraph.Graph.e_carried then Some (a, e) else None)
          (List.sort compare (Depgraph.Graph.edges g)))
      analyses
  in
  match candidates with
  | [] -> unchanged analyses "no carried edges to drop"
  | _ ->
    let n = List.length candidates in
    let start = mix t.seed n in
    let apply (a, (e : Depgraph.Graph.edge)) =
      let g =
        Depgraph.Graph.copy
          a.Privatize.Analyze.classification.Privatize.Classify.graph
      in
      Depgraph.Graph.remove_edge g e;
      let a' = reclassify prog a g in
      let before = private_set a in
      let newly_private =
        List.exists
          (fun aid -> not (Hashtbl.mem before aid))
          (Privatize.Classify.private_aids
             a'.Privatize.Analyze.classification)
      in
      (a', newly_private, e)
    in
    let pick =
      let rec scan i best =
        if i >= n then best
        else
          let c = List.nth candidates ((start + i) mod n) in
          let ((_, newly_private, _) as r) = apply c in
          if newly_private then Some (c, r)
          else scan (i + 1) (match best with None -> Some (c, r) | b -> b)
      in
      scan 0 None
    in
    (match pick with
    | None -> unchanged analyses "no droppable edge"
    | Some ((orig_a, _), (a', newly_private, e)) ->
      let analyses' =
        List.map (fun a -> if a == orig_a then a' else a) analyses
      in
      {
        analyses = analyses';
        verdicts_changed = newly_private;
        note =
          Printf.sprintf
            "dropped carried %s edge %d -> %d of loop %d%s"
            (Depgraph.Graph.show_dep_kind e.Depgraph.Graph.e_kind)
            e.Depgraph.Graph.e_src e.Depgraph.Graph.e_dst
            a'.Privatize.Analyze.classification.Privatize.Classify.graph
              .Depgraph.Graph.loop
            (if newly_private then " (flips a class to private)"
             else " (classification unchanged)");
      })

(* Force one shared access class to Private. Prefer classes the
   classifier rejected for a hard reason (carried flow / exposed
   accesses) — privatizing those is genuinely unsound. *)
let force_misclassify (t : t)
    (analyses : Privatize.Analyze.result list) : application =
  let disqualified = function
    | Privatize.Classify.Has_carried_flow _
    | Privatize.Classify.Has_upwards_exposed _
    | Privatize.Classify.Has_downwards_exposed _ -> true
    | Privatize.Classify.Accepted | Privatize.Classify.No_carried_anti_or_output
      -> false
  in
  let candidates_of pred =
    List.concat_map
      (fun (a : Privatize.Analyze.result) ->
        List.filter_map
          (fun (members, v, reason) ->
            if v = Privatize.Classify.Shared && pred reason then
              Some (a, members, reason)
            else None)
          a.Privatize.Analyze.classification.Privatize.Classify.classes)
      analyses
  in
  let candidates =
    match candidates_of disqualified with
    | [] -> candidates_of (fun _ -> true)
    | cs -> cs
  in
  match candidates with
  | [] -> unchanged analyses "no shared class to misclassify"
  | _ ->
    let a, members, reason =
      List.nth candidates (mix t.seed (List.length candidates))
    in
    let c = a.Privatize.Analyze.classification in
    let verdicts = Hashtbl.copy c.Privatize.Classify.verdicts in
    List.iter
      (fun aid -> Hashtbl.replace verdicts aid Privatize.Classify.Private)
      members;
    let classes =
      List.map
        (fun ((ms, _, _) as cl) ->
          if ms == members then (ms, Privatize.Classify.Private, reason)
          else cl)
        c.Privatize.Classify.classes
    in
    let a' =
      {
        a with
        Privatize.Analyze.classification =
          { c with Privatize.Classify.verdicts; classes };
      }
    in
    {
      analyses = List.map (fun x -> if x == a then a' else x) analyses;
      verdicts_changed = true;
      note =
        Printf.sprintf
          "forced class {%s} of loop %d to private (classifier said %s)"
          (String.concat "," (List.map string_of_int members))
          c.Privatize.Classify.graph.Depgraph.Graph.loop
          (Privatize.Classify.show_reason reason);
    }

(** Apply the fault to the analysis pipeline's outputs. Pure with
    respect to its inputs: graphs are deep-copied before mangling. *)
let mangle (t : t) (prog : Ast.program)
    (analyses : Privatize.Analyze.result list) : application =
  match t.kind with
  | Drop_dep_edge -> drop_edge t prog analyses
  | Force_misclassify -> force_misclassify t analyses
  | Truncate_span k ->
    unchanged analyses (Printf.sprintf "spans truncated by %d bytes" k)
  | Alloc_failure n ->
    unchanged analyses (Printf.sprintf "allocation #%d will fail" n)
  | Domain_crash _ | Domain_stall _ | Writelog_corrupt _ | Steal_contention _
    ->
    unchanged analyses
      (Printf.sprintf "%s armed on the domain supervisor" (describe t))

(** The [span_shrink] to pass to [Expand.Transform.expand_loops]. *)
let span_shrink (t : t) : int option =
  match t.kind with Truncate_span k -> Some k | _ -> None

(** Arm machine-level faults on a loaded machine (from [Parexec.Sim]'s
    [attach] callback, so compile-time allocations are not counted). *)
let attach_machine (t : t) (m : Interp.Machine.t) : unit =
  match t.kind with
  | Alloc_failure n ->
    Interp.Memory.set_alloc_fault m.Interp.Machine.st.Interp.Machine.mem n
  | Drop_dep_edge | Force_misclassify | Truncate_span _ | Domain_crash _
  | Domain_stall _ | Writelog_corrupt _ | Steal_contention _ -> ()
