(** JSONL event stream sink: one JSON object per line, in emission
    order. Preserves wall-clock timestamps, so it is a debugging
    stream, not part of the deterministic-trace contract. *)

type t

val create : unit -> t
val sink : t -> Sink.t
val contents : t -> string
val write : t -> string -> unit
