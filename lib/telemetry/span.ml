(** Convenience emitters used at instrumentation points. Every helper
    short-circuits on {!Sink.enabled} before allocating anything. *)

(* Host time in integer nanoseconds. [Sys.time] is the only stdlib
   clock; its CPU-time semantics are fine for phase attribution (the
   toolchain is single-threaded and compute-bound). Wall timestamps
   never reach trace files — exporters substitute a logical tick — so
   resolution and monotonicity quirks cannot break determinism. *)
let now_ns () : int = int_of_float (Sys.time () *. 1e9)

let wall ?(cat = "phase") (name : string) (f : unit -> 'a) : 'a =
  if not (Sink.enabled ()) then f ()
  else begin
    Sink.emit
      (Event.Span_begin
         { name; cat; clock = Event.Wall; tid = 0; ts = now_ns () });
    Fun.protect
      ~finally:(fun () ->
        Sink.emit
          (Event.Span_end { name; clock = Event.Wall; tid = 0; ts = now_ns () }))
      f
  end

let sim_begin ?(cat = "sim") ~(tid : int) ~(ts : int) (name : string) : unit =
  if Sink.enabled () then
    Sink.emit (Event.Span_begin { name; cat; clock = Event.Sim; tid; ts })

let sim_end ~(tid : int) ~(ts : int) (name : string) : unit =
  if Sink.enabled () then
    Sink.emit (Event.Span_end { name; clock = Event.Sim; tid; ts })

let sim_instant ?(cat = "sim") ~(tid : int) ~(ts : int) (name : string) : unit
    =
  if Sink.enabled () then
    Sink.emit (Event.Instant { name; cat; clock = Event.Sim; tid; ts })

let count (name : string) (delta : int) : unit =
  if Sink.enabled () && delta <> 0 then
    Sink.emit (Event.Count { name; delta })

let observe (name : string) (value : int) : unit =
  if Sink.enabled () then Sink.emit (Event.Observe { name; value })
