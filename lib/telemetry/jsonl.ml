(** JSONL event stream: one JSON object per line, in emission order.

    The raw firehose for offline analysis (grep/jq-friendly). Unlike
    the Chrome exporter this stream preserves wall-clock timestamps,
    so it is {e not} covered by the byte-identical-trace contract. *)

type t = { buf : Buffer.t }

let create () : t = { buf = Buffer.create 4096 }

let sink (j : t) : Sink.t =
  {
    Sink.emit =
      (fun e ->
        Json.to_buffer j.buf (Event.to_json e);
        Buffer.add_char j.buf '\n');
    flush = (fun () -> ());
  }

let contents (j : t) : string = Buffer.contents j.buf

let write (j : t) (path : string) : unit =
  let oc = open_out_bin path in
  Buffer.output_buffer oc j.buf;
  close_out oc
