(** JSON rendering of an aggregated metrics snapshot (used by
    [dsexpand --metrics --metrics-format json]; ASCII tables live in
    [Report.Tables]). *)

val to_json : Counters.snapshot -> Json.t
val to_string : Counters.snapshot -> string
