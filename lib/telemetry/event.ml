(** The telemetry event model.

    Two span clocks keep traces deterministic (see DESIGN.md §8):

    - [Wall] spans time toolchain phases (parse, profile, classify,
      plan, expand) against the host clock. Their {e durations} feed
      the metrics report only; trace exporters replace their
      timestamps with a logical tick so trace files never depend on
      host timing.
    - [Sim] spans carry {e simulated-cycle} timestamps from the
      parallel-execution simulator. They are deterministic by
      construction and are exported verbatim.

    [tid] is the simulated thread for [Sim] events ([-1] denotes the
    simulator's own loop-level track) and ignored for [Wall] events.
    Counters and histogram observations are clockless: they aggregate
    order-independently (see {!Counters.merge}). *)

type clock = Wall | Sim

type t =
  | Span_begin of {
      name : string;
      cat : string;
      clock : clock;
      tid : int;
      ts : int;  (** ns for [Wall], simulated cycles for [Sim] *)
    }
  | Span_end of { name : string; clock : clock; tid : int; ts : int }
  | Instant of { name : string; cat : string; clock : clock; tid : int; ts : int }
  | Count of { name : string; delta : int }
  | Observe of { name : string; value : int }

let clock_name = function Wall -> "wall" | Sim -> "sim"

(** One-object JSON rendering, shared by the JSONL sink. *)
let to_json (e : t) : Json.t =
  match e with
  | Span_begin { name; cat; clock; tid; ts } ->
    Json.Obj
      [
        ("ev", Json.Str "B"); ("name", Json.Str name); ("cat", Json.Str cat);
        ("clock", Json.Str (clock_name clock)); ("tid", Json.Int tid);
        ("ts", Json.Int ts);
      ]
  | Span_end { name; clock; tid; ts } ->
    Json.Obj
      [
        ("ev", Json.Str "E"); ("name", Json.Str name);
        ("clock", Json.Str (clock_name clock)); ("tid", Json.Int tid);
        ("ts", Json.Int ts);
      ]
  | Instant { name; cat; clock; tid; ts } ->
    Json.Obj
      [
        ("ev", Json.Str "I"); ("name", Json.Str name); ("cat", Json.Str cat);
        ("clock", Json.Str (clock_name clock)); ("tid", Json.Int tid);
        ("ts", Json.Int ts);
      ]
  | Count { name; delta } ->
    Json.Obj
      [ ("ev", Json.Str "C"); ("name", Json.Str name); ("delta", Json.Int delta) ]
  | Observe { name; value } ->
    Json.Obj
      [ ("ev", Json.Str "O"); ("name", Json.Str name); ("value", Json.Int value) ]
