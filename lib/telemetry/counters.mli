(** In-memory aggregation sink: counters, histograms and span totals,
    exposed as canonical snapshots whose {!merge} is associative and
    commutative with {!empty} as neutral element (qcheck-asserted), so
    per-run aggregates combine in any order. *)

type hist = { h_count : int; h_sum : int; h_min : int; h_max : int }
type span_total = { s_count : int; s_total : int }

(** Canonical: assoc lists sorted by key, keys unique. *)
type snapshot = {
  counters : (string * int) list;
  histograms : (string * hist) list;
  spans : (string * span_total) list;
      (** keyed ["wall:<name>"] / ["sim:<name>"]; totals in ns (wall)
          or simulated cycles (sim) *)
}

val empty : snapshot
val merge : snapshot -> snapshot -> snapshot

type t

val create : unit -> t

(** The aggregator as a sink (combine with {!Sink.tee} to also stream
    or trace the same events). *)
val sink : t -> Sink.t

(** Direct counter access, for components (e.g. the domexec
    supervisor) that use an aggregator as their own source of truth
    rather than routing through the global sink. Not thread-safe:
    callers serialize access themselves. *)
val bump_counter : t -> string -> int -> unit

(** Current value of a counter, 0 if never bumped. *)
val value : t -> string -> int

val snapshot : t -> snapshot
