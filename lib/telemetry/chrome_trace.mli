(** Chrome [trace_event] exporter (Perfetto / chrome://tracing
    loadable). Each simulated thread gets its own pseudo-pid so
    DOACROSS post/wait stalls are visible per thread; wall-clock
    (toolchain) events are re-timed onto a deterministic logical tick
    line so traces are byte-identical across runs with the same seed.
    B/E events are balanced by construction (leftover spans are closed
    at export). *)

(** Sim-clock events with [tid >= domain_tid_base] belong to real
    OCaml domains (the domexec executor): tid [domain_tid_base + d]
    renders as pseudo-process "domain-d", and its timestamps (host
    nanoseconds) are kept verbatim rather than re-timed. *)
val domain_tid_base : int

type t

val create : unit -> t
val sink : t -> Sink.t

(** Render the collected events as a Chrome trace JSON object. *)
val export : t -> string

val write : t -> string -> unit
