(** Metrics snapshot rendering: the JSON form of an aggregated
    {!Counters.snapshot} (the ASCII table lives in [Report.Tables],
    which owns all human-facing table formatting). *)

let hist_json (h : Counters.hist) : Json.t =
  Json.Obj
    [
      ("count", Json.Int h.Counters.h_count);
      ("sum", Json.Int h.Counters.h_sum);
      ("min", Json.Int h.Counters.h_min);
      ("max", Json.Int h.Counters.h_max);
    ]

let span_json (s : Counters.span_total) : Json.t =
  Json.Obj
    [
      ("count", Json.Int s.Counters.s_count);
      ("total", Json.Int s.Counters.s_total);
    ]

let to_json (s : Counters.snapshot) : Json.t =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) s.Counters.counters) );
      ( "histograms",
        Json.Obj
          (List.map (fun (k, h) -> (k, hist_json h)) s.Counters.histograms) );
      ( "spans",
        Json.Obj (List.map (fun (k, v) -> (k, span_json v)) s.Counters.spans)
      );
    ]

let to_string (s : Counters.snapshot) : string = Json.to_string (to_json s)
