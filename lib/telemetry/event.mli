(** The telemetry event model: nested spans on two clocks (host wall
    time for toolchain phases, simulated cycles for simulator regions
    — the latter keep traces deterministic), monotonically-added
    counters, and histogram observations. *)

type clock = Wall | Sim

type t =
  | Span_begin of {
      name : string;
      cat : string;
      clock : clock;
      tid : int;
          (** simulated thread for [Sim] ([-1] = the simulator's
              loop-level track); ignored for [Wall] *)
      ts : int;  (** ns for [Wall], simulated cycles for [Sim] *)
    }
  | Span_end of { name : string; clock : clock; tid : int; ts : int }
  | Instant of { name : string; cat : string; clock : clock; tid : int; ts : int }
  | Count of { name : string; delta : int }
  | Observe of { name : string; value : int }

val clock_name : clock -> string

(** One-object JSON rendering (the JSONL line format). *)
val to_json : t -> Json.t
