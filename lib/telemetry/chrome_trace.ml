(** Chrome [trace_event] exporter (Perfetto / chrome://tracing).

    Collects span and instant events and renders the JSON object
    format with balanced B/E pairs. Track mapping gives each simulated
    thread its own pseudo-pid so DOACROSS post/wait stalls show as
    per-thread gaps:

    - wall-clock (toolchain) events -> pid 1 "toolchain";
    - the simulator's loop-level track (tid = -1) -> pid 10
      "simulator";
    - simulated thread [t] -> pid [100 + t] "sim-thread-<t>".

    Determinism contract: timestamps of [Sim] events are simulated
    cycles, exported verbatim; [Wall] events are re-timed onto a
    logical tick line (one tick per event, in emission order) so that
    no host-clock reading ever reaches the file. Two runs with the
    same inputs and seed therefore produce byte-identical traces.
    Counter and histogram events carry no time and are not exported
    here (they live in the metrics report). *)

type t = { mutable events : Event.t list (* reversed *) }

let create () : t = { events = [] }

let sink (c : t) : Sink.t =
  {
    Sink.emit =
      (fun e ->
        match e with
        | Event.Span_begin _ | Event.Span_end _ | Event.Instant _ ->
          c.events <- e :: c.events
        | Event.Count _ | Event.Observe _ -> ());
    flush = (fun () -> ());
  }

let wall_pid = 1
let sim_loop_pid = 10
let sim_thread_pid t = 100 + t

(* Real OCaml domains (the domexec executor) emit Sim-clock events —
   their timestamps are host nanoseconds rather than simulated cycles,
   so re-timing would be wrong — in a tid namespace far above any
   simulated thread id, and get one pseudo-process per domain. *)
let domain_tid_base = 1000
let domain_pid d = 2000 + d

let pid_of (clock : Event.clock) (tid : int) : int =
  match clock with
  | Event.Wall -> wall_pid
  | Event.Sim ->
    if tid < 0 then sim_loop_pid
    else if tid >= domain_tid_base then domain_pid (tid - domain_tid_base)
    else sim_thread_pid tid

let pid_name (pid : int) : string =
  if pid = wall_pid then "toolchain"
  else if pid = sim_loop_pid then "simulator"
  else if pid >= 2000 then Printf.sprintf "domain-%d" (pid - 2000)
  else Printf.sprintf "sim-thread-%d" (pid - 100)

let record ~ph ~name ?cat ~pid ~ts () : Json.t =
  Json.Obj
    (("name", Json.Str name)
     ::
     (match cat with Some c -> [ ("cat", Json.Str c) ] | None -> [])
    @ [
        ("ph", Json.Str ph); ("ts", Json.Int ts); ("pid", Json.Int pid);
        ("tid", Json.Int 0);
      ])

let export (c : t) : string =
  let events = List.rev c.events in
  (* logical tick line for wall events: one tick each, emission order *)
  let wall_tick = ref 0 in
  let ts_of clock ts =
    match clock with
    | Event.Wall ->
      incr wall_tick;
      !wall_tick
    | Event.Sim -> ts
  in
  let pids = ref [] in
  let note_pid p = if not (List.mem p !pids) then pids := p :: !pids in
  (* per-pid stack of open (name, last ts) to auto-close leftovers *)
  let open_stacks : (int, (string * int) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let stack pid =
    match Hashtbl.find_opt open_stacks pid with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace open_stacks pid r;
      r
  in
  let last_ts : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let body =
    List.filter_map
      (fun e ->
        match e with
        | Event.Span_begin { name; cat; clock; tid; ts } ->
          let pid = pid_of clock tid in
          note_pid pid;
          let ts = ts_of clock ts in
          Hashtbl.replace last_ts pid ts;
          let s = stack pid in
          s := (name, ts) :: !s;
          Some (record ~ph:"B" ~name ~cat ~pid ~ts ())
        | Event.Span_end { name; clock; tid; ts } ->
          let pid = pid_of clock tid in
          note_pid pid;
          let ts = ts_of clock ts in
          Hashtbl.replace last_ts pid ts;
          let s = stack pid in
          (match !s with (n, _) :: rest when n = name -> s := rest | _ -> ());
          Some (record ~ph:"E" ~name ~pid ~ts ())
        | Event.Instant { name; cat; clock; tid; ts } ->
          let pid = pid_of clock tid in
          note_pid pid;
          let ts = ts_of clock ts in
          Hashtbl.replace last_ts pid ts;
          Some
            (Json.Obj
               [
                 ("name", Json.Str name); ("cat", Json.Str cat);
                 ("ph", Json.Str "i"); ("ts", Json.Int ts);
                 ("pid", Json.Int pid); ("tid", Json.Int 0);
                 ("s", Json.Str "t");
               ])
        | Event.Count _ | Event.Observe _ -> None)
      events
  in
  (* close any span left open (e.g. a phase aborted by an exception)
     at its track's last timestamp, keeping B/E balanced *)
  let closers =
    Hashtbl.fold
      (fun pid s acc ->
        let ts = Option.value ~default:0 (Hashtbl.find_opt last_ts pid) in
        List.fold_left
          (fun acc (name, _) -> record ~ph:"E" ~name ~pid ~ts () :: acc)
          acc !s)
      open_stacks []
    |> List.sort compare
  in
  let metadata =
    List.sort compare !pids
    |> List.map (fun pid ->
           Json.Obj
             [
               ("name", Json.Str "process_name"); ("ph", Json.Str "M");
               ("pid", Json.Int pid); ("tid", Json.Int 0);
               ("args", Json.Obj [ ("name", Json.Str (pid_name pid)) ]);
             ])
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (metadata @ body @ closers));
         ("displayTimeUnit", Json.Str "ns");
       ])

let write (c : t) (path : string) : unit =
  let oc = open_out_bin path in
  output_string oc (export c);
  output_char oc '\n';
  close_out oc
