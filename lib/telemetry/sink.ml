(** Pluggable event sinks and the process-global default.

    Telemetry is {e off by default}: the global sink starts out absent
    and every emission helper short-circuits on {!enabled} before
    building its event, so a disabled run pays one ref read and a
    branch per instrumentation point — no allocation, no formatting. *)

type t = { emit : Event.t -> unit; flush : unit -> unit }

let null = { emit = (fun _ -> ()); flush = (fun () -> ()) }

let tee (sinks : t list) : t =
  {
    emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
    flush = (fun () -> List.iter (fun s -> s.flush ()) sinks);
  }

let current : t option ref = ref None
let install (s : t) : unit = current := Some s

let clear () : unit =
  (match !current with Some s -> s.flush () | None -> ());
  current := None

let enabled () : bool = !current <> None
let emit (e : Event.t) : unit = match !current with Some s -> s.emit e | None -> ()

let with_sink (s : t) (f : unit -> 'a) : 'a =
  let prev = !current in
  current := Some s;
  Fun.protect ~finally:(fun () -> s.flush (); current := prev) f
