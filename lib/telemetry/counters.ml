(** In-memory aggregation sink: counters, histograms, span totals.

    The aggregate is exposed as a canonical {!snapshot} — assoc lists
    sorted by key with unique keys — so that {!merge} is associative
    and commutative with {!empty} as the neutral element (asserted by
    qcheck laws in the test suite). That matters operationally:
    per-shard or per-run aggregates can be combined in any order and
    still report the same totals. *)

type hist = { h_count : int; h_sum : int; h_min : int; h_max : int }

type span_total = { s_count : int; s_total : int }

type snapshot = {
  counters : (string * int) list;
  histograms : (string * hist) list;
  spans : (string * span_total) list;
      (** keyed ["wall:<name>"] / ["sim:<name>"]; totals are ns for
          wall spans and simulated cycles for sim spans *)
}

let empty = { counters = []; histograms = []; spans = [] }

module SMap = Map.Make (String)

let to_sorted (m : 'a SMap.t) : (string * 'a) list = SMap.bindings m

let merge_assoc (combine : 'a -> 'a -> 'a) (xs : (string * 'a) list)
    (ys : (string * 'a) list) : (string * 'a) list =
  let add m (k, v) =
    SMap.update k
      (function None -> Some v | Some v0 -> Some (combine v0 v))
      m
  in
  to_sorted (List.fold_left add (List.fold_left add SMap.empty xs) ys)

let merge_hist (a : hist) (b : hist) : hist =
  {
    h_count = a.h_count + b.h_count;
    h_sum = a.h_sum + b.h_sum;
    h_min = min a.h_min b.h_min;
    h_max = max a.h_max b.h_max;
  }

let merge_span (a : span_total) (b : span_total) : span_total =
  { s_count = a.s_count + b.s_count; s_total = a.s_total + b.s_total }

let merge (a : snapshot) (b : snapshot) : snapshot =
  {
    counters = merge_assoc ( + ) a.counters b.counters;
    histograms = merge_assoc merge_hist a.histograms b.histograms;
    spans = merge_assoc merge_span a.spans b.spans;
  }

(* ------------------------------------------------------------------ *)
(* The live aggregator                                                 *)
(* ------------------------------------------------------------------ *)

type t = {
  cs : (string, int) Hashtbl.t;
  hs : (string, hist) Hashtbl.t;
  sp : (string, span_total) Hashtbl.t;
  open_spans : (Event.clock * int, (string * int) list) Hashtbl.t;
      (** per (clock, tid): stack of (name, begin ts) *)
}

let create () : t =
  {
    cs = Hashtbl.create 64;
    hs = Hashtbl.create 16;
    sp = Hashtbl.create 16;
    open_spans = Hashtbl.create 8;
  }

let bump_counter (a : t) (name : string) (delta : int) : unit =
  Hashtbl.replace a.cs name
    (delta + Option.value ~default:0 (Hashtbl.find_opt a.cs name))

let value (a : t) (name : string) : int =
  Option.value ~default:0 (Hashtbl.find_opt a.cs name)

let observe (a : t) (name : string) (value : int) : unit =
  let h =
    match Hashtbl.find_opt a.hs name with
    | None -> { h_count = 1; h_sum = value; h_min = value; h_max = value }
    | Some h ->
      {
        h_count = h.h_count + 1;
        h_sum = h.h_sum + value;
        h_min = min h.h_min value;
        h_max = max h.h_max value;
      }
  in
  Hashtbl.replace a.hs name h

let span_key clock name = Event.clock_name clock ^ ":" ^ name

let add_span (a : t) (key : string) (dur : int) : unit =
  let s =
    match Hashtbl.find_opt a.sp key with
    | None -> { s_count = 1; s_total = dur }
    | Some s -> { s_count = s.s_count + 1; s_total = s.s_total + dur }
  in
  Hashtbl.replace a.sp key s

let on_event (a : t) (e : Event.t) : unit =
  match e with
  | Event.Count { name; delta } -> bump_counter a name delta
  | Event.Observe { name; value } -> observe a name value
  | Event.Span_begin { name; clock; tid; ts; _ } ->
    let k = (clock, tid) in
    let stack = Option.value ~default:[] (Hashtbl.find_opt a.open_spans k) in
    Hashtbl.replace a.open_spans k ((name, ts) :: stack)
  | Event.Span_end { name; clock; tid; ts; _ } -> (
    let k = (clock, tid) in
    match Hashtbl.find_opt a.open_spans k with
    | Some ((n0, ts0) :: rest) when n0 = name ->
      Hashtbl.replace a.open_spans k rest;
      add_span a (span_key clock name) (max 0 (ts - ts0))
    | _ ->
      (* unmatched end: attribute a zero-length occurrence rather than
         corrupting the nesting stack *)
      add_span a (span_key clock name) 0)
  | Event.Instant _ -> ()

let sink (a : t) : Sink.t = { Sink.emit = on_event a; flush = (fun () -> ()) }

let snapshot (a : t) : snapshot =
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
  in
  { counters = sorted a.cs; histograms = sorted a.hs; spans = sorted a.sp }
