(** Pluggable event sinks and the process-global default sink.

    Telemetry is off by default: with no sink installed, {!emit} is a
    no-op and {!enabled} is [false], so instrumentation points guard
    event construction behind a single ref read and branch. *)

type t = { emit : Event.t -> unit; flush : unit -> unit }

(** Swallows everything. *)
val null : t

(** Broadcast to several sinks (e.g. aggregator + trace collector). *)
val tee : t list -> t

(** Install/remove the process-global sink. {!clear} flushes first. *)
val install : t -> unit

val clear : unit -> unit
val enabled : unit -> bool

(** Emit to the global sink; no-op when none is installed. *)
val emit : Event.t -> unit

(** Run [f] with [s] installed, restoring the previous sink after
    (flushing [s] on the way out); exception-safe. *)
val with_sink : t -> (unit -> 'a) -> 'a
