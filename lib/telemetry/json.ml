(** Minimal JSON construction with deterministic serialization.

    Telemetry must stay dependency-free, so the exporters (JSONL,
    Chrome trace, metrics, BENCH_results) share this tiny value type
    instead of pulling in a JSON library. Serialization is fully
    deterministic: object fields print in the order given, floats use
    a fixed shortest-ish format, and non-finite floats become [null]
    (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to (buf : Buffer.t) (s : string) : unit =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer (buf : Buffer.t) (v : t) : unit =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then begin
      (* integral floats print as N.0 so the value stays a JSON number
         readers parse as float; %.17g would be noisy, %g loses
         precision — 12 significant digits is plenty for timings *)
      let s = Printf.sprintf "%.12g" f in
      Buffer.add_string buf
        (if String.contains s '.' || String.contains s 'e' then s
         else s ^ ".0")
    end
    else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf x)
      fields;
    Buffer.add_char buf '}'

let to_string (v : t) : string =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf
