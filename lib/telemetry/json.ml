(** Minimal JSON construction with deterministic serialization.

    Telemetry must stay dependency-free, so the exporters (JSONL,
    Chrome trace, metrics, BENCH_results) share this tiny value type
    instead of pulling in a JSON library. Serialization is fully
    deterministic: object fields print in the order given, floats use
    a fixed shortest-ish format, and non-finite floats become [null]
    (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to (buf : Buffer.t) (s : string) : unit =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer (buf : Buffer.t) (v : t) : unit =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then begin
      (* integral floats print as N.0 so the value stays a JSON number
         readers parse as float; %.17g would be noisy, %g loses
         precision — 12 significant digits is plenty for timings *)
      let s = Printf.sprintf "%.12g" f in
      Buffer.add_string buf
        (if String.contains s '.' || String.contains s 'e' then s
         else s ^ ".0")
    end
    else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf x)
      fields;
    Buffer.add_char buf '}'

let to_string (v : t) : string =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

(** Recursive-descent parser for the subset this library emits (plus
    standard whitespace and escapes) — enough to read back
    [BENCH_results.json]-style files for the bench regression gate
    without pulling in a JSON dependency. Numbers without [.]/[e]
    parse as [Int], everything else as [Float]. *)
let of_string_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else error "unexpected end" in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
      | _ -> ()
  in
  let expect c =
    if peek () <> c then error (Printf.sprintf "expected '%c'" c);
    advance ()
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          (* decode the four hex digits; non-ASCII code points come
             back as '?' (the emitter only escapes control chars) *)
          if !pos + 4 >= n then error "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          advance ();
          advance ();
          advance ();
          (match int_of_string_opt ("0x" ^ hex) with
          | Some c when c < 0x80 -> Buffer.add_char b (Char.chr c)
          | Some _ -> Buffer.add_char b '?'
          | None -> error "bad \\u escape")
        | c -> Buffer.add_char b c);
        advance ();
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.contains text '.' || String.contains text 'e'
       || String.contains text 'E'
    then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> error "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          if peek () = ',' then begin
            advance ();
            members ((k, v) :: acc)
          end
          else begin
            expect '}';
            List.rev ((k, v) :: acc)
          end
        in
        Obj (members [])
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          if peek () = ',' then begin
            advance ();
            elements (v :: acc)
          end
          else begin
            expect ']';
            List.rev (v :: acc)
          end
        in
        List (elements [])
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

let of_string (s : string) : (t, string) result =
  match of_string_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(** Field of an object, [None] elsewhere. *)
let member (k : string) (v : t) : t option =
  match v with Obj fields -> List.assoc_opt k fields | _ -> None
