(** Minimal JSON construction with deterministic serialization (object
    fields keep the order given; non-finite floats serialize as
    [null]). Shared by the JSONL, Chrome-trace, metrics and benchmark
    exporters so the telemetry library stays dependency-free. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
