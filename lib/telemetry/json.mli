(** Minimal JSON construction with deterministic serialization (object
    fields keep the order given; non-finite floats serialize as
    [null]). Shared by the JSONL, Chrome-trace, metrics and benchmark
    exporters so the telemetry library stays dependency-free. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

exception Parse_error of string

(** Parse the subset this library emits (all of standard JSON except
    surrogate-pair [\u] escapes, which decode to ['?']). Numbers
    without [.]/[e] parse as [Int], the rest as [Float]. Used to read
    back bench/heatmap artifacts (the regression gate) without adding
    a JSON dependency.
    @raise Parse_error on malformed input. *)
val of_string_exn : string -> t

val of_string : string -> (t, string) result

(** Field of an object, [None] elsewhere. *)
val member : string -> t -> t option
