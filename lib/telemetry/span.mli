(** Convenience emitters used at instrumentation points. Every helper
    short-circuits on {!Sink.enabled} before building its event, so
    disabled telemetry costs one ref read and a branch. *)

(** Host time in integer nanoseconds (never exported to traces). *)
val now_ns : unit -> int

(** Time [f] as a wall-clock span named [name]; exception-safe. When
    telemetry is disabled this is exactly [f ()]. *)
val wall : ?cat:string -> string -> (unit -> 'a) -> 'a

(** Simulated-cycle span edges, emitted by the parallel simulator.
    [tid] is the simulated thread; [-1] is the loop-level track. *)
val sim_begin : ?cat:string -> tid:int -> ts:int -> string -> unit

val sim_end : tid:int -> ts:int -> string -> unit
val sim_instant : ?cat:string -> tid:int -> ts:int -> string -> unit

(** Add [delta] to counter [name] (no-op when 0 or disabled). *)
val count : string -> int -> unit

(** Record one histogram observation of [value] under [name]. *)
val observe : string -> int -> unit
