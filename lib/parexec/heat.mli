(** Cache-line heatmap built from the per-line attributions the
    simulated L1 caches record ({!Cache.attribute}): who touched which
    line, a false-sharing detector (a line touched by two or more
    threads through different private copies), and per-copy
    span-utilization stats that separate the bonded layout (dense
    copies) from the interleaved one (scattered copies). *)

type line_stat = {
  hl_line : int;  (** line index (address lsr line bits) *)
  hl_touches : int;
  hl_threads : int list;  (** distinct touching threads, sorted *)
  hl_classes : Cache.attr_class list;  (** distinct classes, sorted *)
  hl_copies : int list;  (** distinct private copies, sorted *)
  hl_false_sharing : bool;
}

(** Footprint of one private copy (copy 0 = shared data). A copy's
    lines are grouped into clusters (runs separated by more than 64
    lines — distinct expanded objects); [hc_span_lines] sums the
    clusters' spans so utilization measures density within objects. *)
type copy_stat = {
  hc_copy : int;
  hc_lines : int;  (** distinct lines touched *)
  hc_span_lines : int;  (** summed span of the copy's line clusters *)
  hc_util : float;  (** hc_lines / hc_span_lines *)
}

type t = {
  line_bytes : int;
  total_lines : int;  (** distinct lines with any attribution *)
  total_touches : int;
  false_sharing_lines : int;
  lines : line_stat list;  (** sorted by line index *)
  copies : copy_stat list;  (** sorted by copy id *)
}

val class_name : Cache.attr_class -> string

(** Merge the attributions of every thread's L1 into one heatmap. *)
val build : line_bytes:int -> Cache.t array -> t

(** The heatmap JSON artifact (schema dsexpand-heatmap/1); [extra]
    fields (workload name, mode, threads) go first so the file is
    self-describing. Deterministic for a fixed simulation. *)
val to_json : ?extra:(string * Telemetry.Json.t) list -> t -> Telemetry.Json.t
