(** Set-associative LRU cache model.

    The parallel simulator gives each simulated thread a private L1 and
    all threads a shared last-level cache; misses to memory are counted
    as DRAM traffic, which feeds the shared-bandwidth bound that makes
    470.lbm plateau past four cores in the paper's Figure 11, while
    growing aggregate working sets make dijkstra and mpeg2-decoder
    suffer rising miss rates — both effects emerge from this model
    rather than being scripted. *)

type t = {
  sets : int array array;  (** per set: tags in LRU order (index 0 = MRU) *)
  set_count : int;
  line_bits : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~size_bytes ~assoc ~line_bytes =
  let lines = size_bytes / line_bytes in
  let set_count = max 1 (lines / assoc) in
  {
    sets = Array.init set_count (fun _ -> Array.make assoc (-1));
    set_count;
    line_bits =
      (let rec bits n = if n <= 1 then 0 else 1 + bits (n / 2) in
       bits line_bytes);
    hits = 0;
    misses = 0;
  }

let reset c =
  Array.iter (fun set -> Array.fill set 0 (Array.length set) (-1)) c.sets;
  c.hits <- 0;
  c.misses <- 0

(** Touch one cache line; returns [true] on hit. *)
let access_line (c : t) (line : int) : bool =
  let set = c.sets.(line mod c.set_count) in
  let assoc = Array.length set in
  let rec find i = if i >= assoc then -1 else if set.(i) = line then i else find (i + 1) in
  let pos = find 0 in
  if pos >= 0 then begin
    (* move to MRU *)
    for k = pos downto 1 do
      set.(k) <- set.(k - 1)
    done;
    set.(0) <- line;
    c.hits <- c.hits + 1;
    true
  end
  else begin
    for k = assoc - 1 downto 1 do
      set.(k) <- set.(k - 1)
    done;
    set.(0) <- line;
    c.misses <- c.misses + 1;
    false
  end

(** Touch every line an access [addr, addr+size) covers; returns
    [true] only if all lines hit. *)
let access (c : t) ~addr ~size : bool =
  let first = addr lsr c.line_bits in
  let last = (addr + max 1 size - 1) lsr c.line_bits in
  let all_hit = ref true in
  for line = first to last do
    if not (access_line c line) then all_hit := false
  done;
  !all_hit

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 1.0 else float_of_int c.hits /. float_of_int total

let hits c = c.hits
let misses c = c.misses
