(** Set-associative LRU cache model.

    The parallel simulator gives each simulated thread a private L1 and
    all threads a shared last-level cache; misses to memory are counted
    as DRAM traffic, which feeds the shared-bandwidth bound that makes
    470.lbm plateau past four cores in the paper's Figure 11, while
    growing aggregate working sets make dijkstra and mpeg2-decoder
    suffer rising miss rates — both effects emerge from this model
    rather than being scripted. *)

(** Access class of an attributed touch (mirrors
    [Privatize.Classify.verdict] without depending on it). *)
type attr_class = Private | Shared | Induction

(** Who touched a line: simulated thread, access class, and the
    private copy addressed (0 = the shared/original copy). *)
type attr = { at_thread : int; at_class : attr_class; at_copy : int }

type t = {
  sets : int array array;  (** per set: tags in LRU order (index 0 = MRU) *)
  set_count : int;
  line_bits : int;
  mutable hits : int;
  mutable misses : int;
  attrs : (int * attr, int) Hashtbl.t;
      (** (line, attribution) -> touch count; fed by {!attribute},
          separate from the LRU state so the hook costs nothing when
          unused *)
}

let create ~size_bytes ~assoc ~line_bytes =
  let lines = size_bytes / line_bytes in
  let set_count = max 1 (lines / assoc) in
  {
    sets = Array.init set_count (fun _ -> Array.make assoc (-1));
    set_count;
    line_bits =
      (let rec bits n = if n <= 1 then 0 else 1 + bits (n / 2) in
       bits line_bytes);
    hits = 0;
    misses = 0;
    attrs = Hashtbl.create 64;
  }

let reset c =
  Array.iter (fun set -> Array.fill set 0 (Array.length set) (-1)) c.sets;
  c.hits <- 0;
  c.misses <- 0;
  Hashtbl.reset c.attrs

(** Touch one cache line; returns [true] on hit. *)
let access_line (c : t) (line : int) : bool =
  let set = c.sets.(line mod c.set_count) in
  let assoc = Array.length set in
  let rec find i = if i >= assoc then -1 else if set.(i) = line then i else find (i + 1) in
  let pos = find 0 in
  if pos >= 0 then begin
    (* move to MRU *)
    for k = pos downto 1 do
      set.(k) <- set.(k - 1)
    done;
    set.(0) <- line;
    c.hits <- c.hits + 1;
    true
  end
  else begin
    for k = assoc - 1 downto 1 do
      set.(k) <- set.(k - 1)
    done;
    set.(0) <- line;
    c.misses <- c.misses + 1;
    false
  end

(** Touch every line an access [addr, addr+size) covers; returns
    [true] only if all lines hit. *)
let access (c : t) ~addr ~size : bool =
  let first = addr lsr c.line_bits in
  let last = (addr + max 1 size - 1) lsr c.line_bits in
  let all_hit = ref true in
  for line = first to last do
    if not (access_line c line) then all_hit := false
  done;
  !all_hit

(** Record who touched the lines covered by [addr, addr+size) — the
    heatmap hook. Attribution is bookkeeping on the side: it never
    perturbs LRU state, hits or misses. *)
let attribute (c : t) (a : attr) ~addr ~size : unit =
  let first = addr lsr c.line_bits in
  let last = (addr + max 1 size - 1) lsr c.line_bits in
  for line = first to last do
    let key = (line, a) in
    Hashtbl.replace c.attrs key
      (1 + Option.value ~default:0 (Hashtbl.find_opt c.attrs key))
  done

(** All recorded attributions as (line, attr, touches), sorted. *)
let line_attribution (c : t) : (int * attr * int) list =
  Hashtbl.fold (fun (line, a) n acc -> (line, a, n) :: acc) c.attrs []
  |> List.sort compare

let attributed_lines (c : t) : int =
  List.length
    (List.sort_uniq compare
       (Hashtbl.fold (fun (line, _) _ acc -> line :: acc) c.attrs []))

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 1.0 else float_of_int c.hits /. float_of_int total

let hits c = c.hits
let misses c = c.misses
