(** Deterministic parallel-execution simulator.

    The transformed program is executed {e sequentially} in iteration
    order — which is semantically exact, because expansion guarantees
    each thread's private accesses land in its own copies and shared
    DOACROSS accesses are executed in iteration order, the order the
    paper's post/wait synchronization enforces. Timing is then derived
    by replaying the measured per-iteration costs against a thread
    schedule:

    - {b DOALL} loops use static chunking (the paper's choice): thread
      [t] runs iterations [t*ceil(M/T) .. (t+1)*ceil(M/T))].
    - {b DOACROSS} loops use dynamic self-scheduling with chunk size 1;
      each iteration's {e serial window} — the span between its first
      and last access that carries a cross-thread flow dependence —
      must begin after the previous iteration's serial window ends
      (post/wait), and the wait time is accounted as synchronization.

    Each simulated thread owns a private L1; all share an LLC, and LLC
    misses accumulate DRAM traffic that bounds the loop's finish time
    by a shared-bandwidth term. Cycle costs measured during execution
    already include these cache penalties, because the interpreter's
    access-cost hook is pointed at the cache of the iteration's
    assigned thread. *)

open Minic

type schedule = Doall | Doacross

type loop_spec = {
  lid : Ast.lid;
  schedule : schedule;
  ordered : (Ast.aid, int * bool) Hashtbl.t;
      (** accesses carrying cross-thread flow dependences:
          aid -> (synchronization channel, is-write). Channels are
          access classes merged along carried flow; each is an
          independent post/wait pair, so an early input cursor and a
          late output cursor pipeline instead of serializing whole
          iterations. *)
}

let spec_of_analysis (a : Privatize.Analyze.result) : loop_spec =
  let c = a.Privatize.Analyze.classification in
  let ordered = Hashtbl.create 16 in
  List.iter
    (fun (aid, chan, is_write) -> Hashtbl.replace ordered aid (chan, is_write))
    (Privatize.Classify.ordered_channels c);
  let lid =
    a.Privatize.Analyze.profile.Depgraph.Profiler.graph.Depgraph.Graph.loop
  in
  {
    lid;
    schedule =
      (match Privatize.Classify.parallelism_kind c with
      | `Doall -> Doall
      | `Doacross -> Doacross);
    ordered;
  }

(** Cache hierarchy parameters, loosely modelled on the paper's
    dual quad-core Opteron 8350. *)
type machine_params = {
  l1_bytes : int;
  l1_assoc : int;
  llc_bytes : int;
  llc_assoc : int;
  line_bytes : int;
  llc_extra : int;  (** extra cycles on L1 miss, LLC hit *)
  dram_extra : int;  (** extra cycles on LLC miss *)
  bw_bytes_per_cycle : float;  (** shared DRAM bandwidth *)
}

let default_machine =
  {
    l1_bytes = 32 * 1024;
    l1_assoc = 8;
    llc_bytes = 2 * 1024 * 1024;
    llc_assoc = 16;
    line_bytes = 64;
    llc_extra = 10;
    dram_extra = 80;
    (* calibrated to the interpreter's compute/memory cost ratio
       (which charges arithmetic about 4-8x more, relative to memory,
       than an out-of-order core): low enough that a streaming kernel
       like 470.lbm saturates beyond four threads, high enough that
       cache-resident workloads never feel it *)
    bw_bytes_per_cycle = 0.5;
  }

(* ------------------------------------------------------------------ *)
(* Sequential reference                                                *)
(* ------------------------------------------------------------------ *)

type seq_result = {
  sq_output : string;
  sq_exit : int;
  sq_total : int;
  sq_loop : (Ast.lid * int) list;  (** cycles inside each target loop *)
  sq_peak : int;
  sq_cache_stall : int;
      (** cache-penalty cycles charged inside the target loops *)
}

(* Simulated-time offset for trace spans: each measured run appends to
   one shared timeline so a multi-run session (original, expanded,
   parallel) exports as consecutive, non-overlapping trace regions.
   Advancing is deterministic (run order and cycle counts are), so the
   byte-identical-trace contract holds. *)
let trace_epoch = ref 0
let reset_trace_epoch () = trace_epoch := 0

let loop_span_name (lid : Ast.lid) = Printf.sprintf "loop %d" lid

(** Run a program sequentially under the cache model; the baseline for
    speedups. *)
let run_sequential ?(machine = default_machine) ?attach (prog : Ast.program)
    (lids : Ast.lid list) : seq_result =
  let m = Interp.Machine.load prog in
  let st = m.Interp.Machine.st in
  let l1 =
    Cache.create ~size_bytes:machine.l1_bytes ~assoc:machine.l1_assoc
      ~line_bytes:machine.line_bytes
  in
  let llc =
    Cache.create ~size_bytes:machine.llc_bytes ~assoc:machine.llc_assoc
      ~line_bytes:machine.line_bytes
  in
  let in_loop = ref 0 in
  let cache_stall = ref 0 in
  st.Interp.Machine.access_extra <-
    Some
      (fun _kind addr size ->
        let extra =
          if Cache.access l1 ~addr ~size then 0
          else if Cache.access llc ~addr ~size then machine.llc_extra
          else machine.dram_extra
        in
        if !in_loop > 0 then cache_stall := !cache_stall + extra;
        extra);
  let base = !trace_epoch in
  let loop_cycles = Hashtbl.create 4 in
  let enter_at = Hashtbl.create 4 in
  st.Interp.Machine.loop_hook <-
    Some
      (fun lid ev ->
        if List.mem lid lids then
          match ev with
          | Interp.Machine.Enter ->
            incr in_loop;
            Telemetry.Span.sim_begin ~cat:"loop" ~tid:(-1)
              ~ts:(base + st.Interp.Machine.cycles)
              (loop_span_name lid);
            Hashtbl.replace enter_at lid st.Interp.Machine.cycles
          | Interp.Machine.Iter _ -> ()
          | Interp.Machine.Exit ->
            in_loop := max 0 (!in_loop - 1);
            Telemetry.Span.sim_end ~tid:(-1)
              ~ts:(base + st.Interp.Machine.cycles)
              (loop_span_name lid);
            let d =
              st.Interp.Machine.cycles - Hashtbl.find enter_at lid
            in
            Hashtbl.replace loop_cycles lid
              (d + Option.value ~default:0 (Hashtbl.find_opt loop_cycles lid)));
  (match attach with Some f -> f m | None -> ());
  let exit_code = Interp.Machine.run m in
  trace_epoch := base + st.Interp.Machine.cycles + 1;
  if Telemetry.Sink.enabled () then begin
    let count = Telemetry.Span.count in
    count "seq.l1_hits" (Cache.hits l1);
    count "seq.l1_misses" (Cache.misses l1);
    count "seq.llc_hits" (Cache.hits llc);
    count "seq.llc_misses" (Cache.misses llc);
    count "seq.cache_stall_cycles" !cache_stall;
    count "seq.loads" st.Interp.Machine.stats.Interp.Machine.n_loads;
    count "seq.stores" st.Interp.Machine.stats.Interp.Machine.n_stores;
    count "seq.allocs" (Interp.Memory.alloc_count st.Interp.Machine.mem);
    count "seq.total_cycles" st.Interp.Machine.cycles;
    Telemetry.Span.observe "seq.peak_bytes"
      (Interp.Memory.peak_bytes st.Interp.Machine.mem)
  end;
  {
    sq_output = Interp.Machine.output st;
    sq_exit = exit_code;
    sq_total = st.Interp.Machine.cycles;
    sq_loop =
      List.map
        (fun l -> (l, Option.value ~default:0 (Hashtbl.find_opt loop_cycles l)))
        lids;
    sq_peak = Interp.Memory.peak_bytes st.Interp.Machine.mem;
    sq_cache_stall = !cache_stall;
  }

(* ------------------------------------------------------------------ *)
(* Parallel simulation                                                 *)
(* ------------------------------------------------------------------ *)

(** SpiceC-style runtime-privatization surcharge (see
    {!Runtimepriv.Rp}): monitored accesses pay a resolution cost and
    privately-written bytes are committed at each iteration's end. *)
type runtime_priv = {
  rp_monitored : (Ast.aid, unit) Hashtbl.t;
  rp_resolve_cost : int;
  rp_commit_per_byte : int;
}

type par_result = {
  pr_threads : int;
  pr_output : string;
  pr_exit : int;
  pr_total : int;  (** simulated whole-program time *)
  pr_loop : (Ast.lid * int) list;  (** simulated parallel loop times *)
  pr_busy : int array;  (** per-thread work cycles inside target loops *)
  pr_sync : int array;  (** per-thread DOACROSS wait cycles *)
  pr_idle : int array;  (** per-thread barrier/load-imbalance idle *)
  pr_overhead : int;  (** GOMP fork/dispatch/barrier cycles *)
  pr_peak : int;
  pr_iterations : (Ast.lid * int) list;
  pr_rp_touched_bytes : int;
      (** bytes of heap data touched by monitored private accesses;
          the runtime-privatization baseline allocates one copy per
          extra thread of exactly this *)
  pr_dram_bytes : int;  (** DRAM traffic inside the target loops *)
  pr_cache_stall : int;
      (** cache-penalty cycles charged inside the target loops *)
  pr_heat : Heat.t option;
      (** cache-line heatmap, when a [heatmap] classifier was given *)
}

(* The simulator only needs the expansion runtime globals' names, so
   it does not depend on the expand library. *)
module Names = struct
  let tid = "__tid"
  let nthreads = "__nthreads"
end

(* Count iterations per (lid, invocation) with a cheap run; needed up
   front for static DOALL chunking. Control flow cannot depend on the
   thread id (private data never crosses iterations), so counts match
   the measured run. *)
let count_iterations (prog : Ast.program) (threads : int)
    (lids : Ast.lid list) : (Ast.lid * int, int) Hashtbl.t =
  let m = Interp.Machine.load prog in
  let st = m.Interp.Machine.st in
  Interp.Machine.set_global_int st Names.nthreads threads;
  let counts = Hashtbl.create 8 in
  let inv = Hashtbl.create 8 in
  st.Interp.Machine.loop_hook <-
    Some
      (fun lid ev ->
        if List.mem lid lids then
          match ev with
          | Interp.Machine.Enter ->
            Hashtbl.replace inv lid
              (1 + Option.value ~default:(-1) (Hashtbl.find_opt inv lid))
          | Interp.Machine.Iter i ->
            Hashtbl.replace counts (lid, Hashtbl.find inv lid) i
          | Interp.Machine.Exit -> ());
  ignore (Interp.Machine.run m);
  counts

type thread_ctx = {
  mutable free_at : int;  (** simulated time the thread becomes free *)
  mutable busy : int;
  mutable sync : int;
  l1 : Cache.t;
  llc_slice : Cache.t;
      (** the thread's share of the last-level cache: an analytic
          approximation of shared-LLC contention — aggregate working
          sets larger than the LLC degrade with thread count, the
          effect behind dijkstra's and mpeg2-decoder's plateaus *)
}

type active_loop = {
  spec : loop_spec;
  trace_base : int;  (** simulated-timeline offset of this invocation *)
  mutable invocation : int;
  mutable seg_start : int;  (** st.cycles at current iteration start *)
  mutable cur_thread : int;
  mutable cur_iter : int;
  chan_first : (int, int) Hashtbl.t;
      (** per channel: offset of the first ordered access this iteration *)
  chan_last_access : (int, int) Hashtbl.t;
      (** per channel: offset of the last ordered access this
          iteration; the iteration posts the channel there (a write
          must also wait for the previous iteration's reads — the
          cross-thread anti-dependences) *)
  chan_prev_end : (int, int) Hashtbl.t;
      (** per channel: absolute time the previous iteration posted *)
  mutable enter_cycles : int;  (** st.cycles at loop entry *)
  mutable dram_bytes : int;
  mutable have_iter : bool;
}

(** Simulate a parallel run of [prog] (an expanded program reading
    [__tid]/[__nthreads]) on [threads] threads.

    [heatmap], when given, maps each access id to its access class;
    accesses inside the target loops are then attributed to the
    running thread's L1 lines (private accesses to copy [tid], the
    rest to copy 0) and the result carries a {!Heat.t}. *)
let run_parallel ?(machine = default_machine) ?rp ?heatmap ?attach
    (prog : Ast.program) (specs : loop_spec list) ~(threads : int) : par_result
    =
  let lids = List.map (fun s -> s.lid) specs in
  let counts = count_iterations prog threads lids in
  let m = Interp.Machine.load prog in
  let st = m.Interp.Machine.st in
  Interp.Machine.set_global_int st Names.nthreads threads;
  let tctx =
    Array.init threads (fun _ ->
        {
          free_at = 0;
          busy = 0;
          sync = 0;
          l1 =
            Cache.create ~size_bytes:machine.l1_bytes ~assoc:machine.l1_assoc
              ~line_bytes:machine.line_bytes;
          llc_slice =
            Cache.create
              ~size_bytes:(max (machine.llc_bytes / threads) (16 * 1024))
              ~assoc:machine.llc_assoc ~line_bytes:machine.line_bytes;
        })
  in
  let active : active_loop option ref = ref None in
  let loop_sim = Hashtbl.create 4 in
  let loop_measured = Hashtbl.create 4 in
  let iter_count = Hashtbl.create 4 in
  let overhead = ref 0 in
  let idle = Array.make threads 0 in
  let cum_busy = Array.make threads 0 in
  let cum_sync = Array.make threads 0 in
  let cur_cache_thread = ref 0 in
  let cache_stall = ref 0 in
  let stall_events = ref 0 in
  let rp_resolves = ref 0 in
  let rp_commit_total = ref 0 in
  let cursor = ref !trace_epoch in
  st.Interp.Machine.access_extra <-
    Some
      (fun _kind addr size ->
        let t = tctx.(!cur_cache_thread) in
        let extra =
          if Cache.access t.l1 ~addr ~size then 0
          else if Cache.access t.llc_slice ~addr ~size then machine.llc_extra
          else begin
            (match !active with
            | Some al -> al.dram_bytes <- al.dram_bytes + machine.line_bytes
            | None -> ());
            machine.dram_extra
          end
        in
        if Option.is_some !active then cache_stall := !cache_stall + extra;
        extra);
  (* observer tracks the serial window of the running iteration and,
     for the runtime-privatization baseline, charges the access-control
     library on monitored accesses *)
  let iter_commit_bytes = ref 0 in
  let total_dram = ref 0 in
  let rp_touched : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  st.Interp.Machine.observer <-
    Some
      (fun aid kind addr size ->
        (* heatmap attribution: inside a target loop, charge the lines
           of this access to the thread running the iteration (copy =
           tid for private accesses, copy 0 for everything else) *)
        (match (heatmap, !active) with
        | Some classify_aid, Some _ ->
          let t = !cur_cache_thread in
          let cls = classify_aid aid in
          let copy = match cls with Cache.Private -> t | _ -> 0 in
          Cache.attribute
            tctx.(t).l1
            { Cache.at_thread = t; at_class = cls; at_copy = copy }
            ~addr ~size
        | _ -> ());
        (match rp with
        | Some rp when Hashtbl.mem rp.rp_monitored aid ->
          st.Interp.Machine.cycles <-
            st.Interp.Machine.cycles + rp.rp_resolve_cost;
          (* 8-byte granules bound the touched-set accounting *)
          Hashtbl.replace rp_touched (addr lsr 3) ();
          incr rp_resolves;
          if kind = Visit.Store then begin
            iter_commit_bytes := !iter_commit_bytes + size;
            rp_commit_total := !rp_commit_total + size
          end
        | _ -> ());
        match !active with
        | Some al -> (
          match Hashtbl.find_opt al.spec.ordered aid with
          | Some (chan, is_write) ->
            let off = st.Interp.Machine.cycles - al.seg_start in
            ignore is_write;
            if not (Hashtbl.mem al.chan_first chan) then
              Hashtbl.replace al.chan_first chan off;
            Hashtbl.replace al.chan_last_access chan off
          | None -> ())
        | None -> ());
  let invocations = Hashtbl.create 4 in
  let finalize_iteration (al : active_loop) =
    if al.have_iter then begin
      let t = tctx.(al.cur_thread) in
      let commit =
        match rp with
        | Some rp -> !iter_commit_bytes * rp.rp_commit_per_byte
        | None -> 0
      in
      iter_commit_bytes := 0;
      let d = st.Interp.Machine.cycles - al.seg_start + commit in
      let dispatch =
        match al.spec.schedule with
        | Doacross -> Interp.Cost.gomp_dispatch
        | Doall -> 0
      in
      overhead := !overhead + dispatch;
      let start = t.free_at + dispatch in
      (* per-channel post/wait: each channel's first use must follow
         the previous iteration's last write to it; waits on distinct
         channels accumulate in first-use order *)
      let wait =
        if al.spec.schedule = Doacross then begin
          let chans =
            Hashtbl.fold (fun c off acc -> (off, c) :: acc) al.chan_first []
            |> List.sort compare
          in
          List.fold_left
            (fun delay (off, c) ->
              match Hashtbl.find_opt al.chan_prev_end c with
              | Some prev_end ->
                let actual = start + delay + off in
                if actual < prev_end then delay + (prev_end - actual)
                else delay
              | None -> delay)
            0 chans
        end
        else 0
      in
      (* post: record when this iteration's last channel accesses
         complete *)
      Hashtbl.iter
        (fun c off ->
          Hashtbl.replace al.chan_prev_end c (start + wait + off + 1))
        al.chan_last_access;
      Hashtbl.reset al.chan_first;
      Hashtbl.reset al.chan_last_access;
      if wait > 0 then incr stall_events;
      if Telemetry.Sink.enabled () then begin
        (* per-thread trace slices on the invocation's simulated
           timeline: the post/wait stall, then the iteration body *)
        let tb = al.trace_base + Interp.Cost.gomp_fork in
        let tid = al.cur_thread in
        if wait > 0 then begin
          Telemetry.Span.sim_begin ~cat:"sync" ~tid ~ts:(tb + start) "wait";
          Telemetry.Span.sim_end ~tid ~ts:(tb + start + wait) "wait"
        end;
        let nm = Printf.sprintf "iter %d" al.cur_iter in
        Telemetry.Span.sim_begin ~cat:"iter" ~tid ~ts:(tb + start + wait) nm;
        Telemetry.Span.sim_end ~tid ~ts:(tb + start + wait + d) nm
      end;
      t.busy <- t.busy + d;
      t.sync <- t.sync + wait;
      t.free_at <- start + d + wait
    end
  in
  let assign_thread (al : active_loop) (i : int) : int =
    match al.spec.schedule with
    | Doall ->
      let mi =
        Option.value ~default:max_int
          (Hashtbl.find_opt counts (al.spec.lid, al.invocation))
      in
      let mi = max mi 1 in
      let chunk = (mi + threads - 1) / threads in
      min (i / chunk) (threads - 1)
    | Doacross ->
      (* dynamic self-scheduling: the earliest-free thread grabs it *)
      let best = ref 0 in
      for t = 1 to threads - 1 do
        if tctx.(t).free_at < tctx.(!best).free_at then best := t
      done;
      !best
  in
  st.Interp.Machine.loop_hook <-
    Some
      (fun lid ev ->
        match List.find_opt (fun s -> s.lid = lid) specs with
        | None -> ()
        | Some spec -> (
          match ev with
          | Interp.Machine.Enter ->
            (match !active with
            | Some _ -> failwith "nested target loops are not supported"
            | None -> ());
            let invocation =
              let v =
                1 + Option.value ~default:(-1) (Hashtbl.find_opt invocations lid)
              in
              Hashtbl.replace invocations lid v;
              v
            in
            Array.iter
              (fun t ->
                t.free_at <- 0;
                t.busy <- 0;
                t.sync <- 0)
              tctx;
            Telemetry.Span.sim_begin ~cat:"loop" ~tid:(-1) ~ts:!cursor
              (loop_span_name lid);
            active :=
              Some
                {
                  spec;
                  trace_base = !cursor;
                  invocation;
                  seg_start = st.Interp.Machine.cycles;
                  cur_thread = 0;
                  cur_iter = 0;
                  chan_first = Hashtbl.create 8;
                  chan_last_access = Hashtbl.create 8;
                  chan_prev_end = Hashtbl.create 8;
                  enter_cycles = st.Interp.Machine.cycles;
                  dram_bytes = 0;
                  have_iter = false;
                }
          | Interp.Machine.Iter i -> (
            match !active with
            | Some al when al.spec.lid = lid ->
              finalize_iteration al;
              let t = assign_thread al i in
              al.cur_thread <- t;
              al.cur_iter <- i;
              al.seg_start <- st.Interp.Machine.cycles;
              al.have_iter <- true;
              cur_cache_thread := t;
              Interp.Machine.set_global_int st Names.tid t
            | _ -> ())
          | Interp.Machine.Exit -> (
            match !active with
            | Some al when al.spec.lid = lid ->
              finalize_iteration al;
              cur_cache_thread := 0;
              Interp.Machine.set_global_int st Names.tid 0;
              (* makespan + shared bandwidth bound *)
              let work_span =
                Array.fold_left (fun acc t -> max acc t.free_at) 0 tctx
              in
              let bw_time =
                int_of_float
                  (float_of_int al.dram_bytes /. machine.bw_bytes_per_cycle)
              in
              let makespan = max work_span bw_time in
              let fork = Interp.Cost.gomp_fork
              and barrier = Interp.Cost.gomp_barrier in
              overhead := !overhead + fork + (barrier * threads);
              let sim_time = fork + makespan + barrier in
              if Telemetry.Sink.enabled () then begin
                Telemetry.Span.sim_end ~tid:(-1)
                  ~ts:(al.trace_base + sim_time)
                  (loop_span_name lid);
                Telemetry.Span.count
                  (Printf.sprintf "par.loop.%d.cycles" lid)
                  sim_time;
                Telemetry.Span.count
                  (Printf.sprintf "par.loop.%d.iterations" lid)
                  al.cur_iter;
                Telemetry.Span.count "par.dram_bound_cycles"
                  (max 0 (bw_time - work_span))
              end;
              cursor := al.trace_base + sim_time + 1;
              let bump tbl v =
                Hashtbl.replace tbl lid
                  (v + Option.value ~default:0 (Hashtbl.find_opt tbl lid))
              in
              total_dram := !total_dram + al.dram_bytes;
              bump loop_sim sim_time;
              bump loop_measured (st.Interp.Machine.cycles - al.enter_cycles);
              bump iter_count al.cur_iter;
              Array.iteri
                (fun i t ->
                  idle.(i) <- idle.(i) + (makespan - t.free_at);
                  cum_busy.(i) <- cum_busy.(i) + t.busy;
                  cum_sync.(i) <- cum_sync.(i) + t.sync)
                tctx;
              active := None
            | _ -> ())));
  (* guards and fault injectors chain onto the hooks installed above;
     the count_iterations pre-run is deliberately left unattached *)
  (match attach with Some f -> f m | None -> ());
  let exit_code = Interp.Machine.run m in
  trace_epoch := !cursor + 1;
  let measured_total = st.Interp.Machine.cycles in
  (* simulated total = measured total with each target loop's measured
     execution replaced by its simulated parallel time *)
  let sum tbl = Hashtbl.fold (fun _ d acc -> acc + d) tbl 0 in
  let heat =
    match heatmap with
    | Some _ ->
      Some
        (Heat.build ~line_bytes:machine.line_bytes
           (Array.map (fun t -> t.l1) tctx))
    | None -> None
  in
  (match heat with
  | Some h when Telemetry.Sink.enabled () ->
    Telemetry.Span.count "heat.lines_touched" h.Heat.total_lines;
    Telemetry.Span.count "heat.touches" h.Heat.total_touches;
    Telemetry.Span.count "heat.false_sharing_lines" h.Heat.false_sharing_lines
  | _ -> ());
  if Telemetry.Sink.enabled () then begin
    let count = Telemetry.Span.count in
    let sum_cache f = Array.fold_left (fun acc t -> acc + f t) 0 tctx in
    count "par.l1_hits" (sum_cache (fun t -> Cache.hits t.l1));
    count "par.l1_misses" (sum_cache (fun t -> Cache.misses t.l1));
    count "par.llc_hits" (sum_cache (fun t -> Cache.hits t.llc_slice));
    count "par.llc_misses" (sum_cache (fun t -> Cache.misses t.llc_slice));
    count "par.cache_stall_cycles" !cache_stall;
    count "par.sync_wait_cycles" (Array.fold_left ( + ) 0 cum_sync);
    count "par.post_wait_stalls" !stall_events;
    count "par.idle_cycles" (Array.fold_left ( + ) 0 idle);
    count "par.gomp_overhead_cycles" !overhead;
    count "par.dram_bytes" !total_dram;
    count "par.rp_resolved_accesses" !rp_resolves;
    count "par.rp_commit_bytes" !rp_commit_total;
    count "par.loads" st.Interp.Machine.stats.Interp.Machine.n_loads;
    count "par.stores" st.Interp.Machine.stats.Interp.Machine.n_stores;
    count "par.allocs" (Interp.Memory.alloc_count st.Interp.Machine.mem);
    count "par.total_cycles" (measured_total - sum loop_measured + sum loop_sim);
    Telemetry.Span.observe "par.peak_bytes"
      (Interp.Memory.peak_bytes st.Interp.Machine.mem)
  end;
  {
    pr_threads = threads;
    pr_output = Interp.Machine.output st;
    pr_exit = exit_code;
    pr_total = measured_total - sum loop_measured + sum loop_sim;
    pr_loop =
      List.map
        (fun l ->
          (l, Option.value ~default:0 (Hashtbl.find_opt loop_sim l)))
        lids;
    pr_busy = cum_busy;
    pr_sync = cum_sync;
    pr_idle = idle;
    pr_overhead = !overhead;
    pr_peak = Interp.Memory.peak_bytes st.Interp.Machine.mem;
    pr_rp_touched_bytes = 8 * Hashtbl.length rp_touched;
    pr_dram_bytes = !total_dram;
    pr_cache_stall = !cache_stall;
    pr_heat = heat;
    pr_iterations =
      List.map
        (fun l ->
          (l, Option.value ~default:0 (Hashtbl.find_opt iter_count l)))
        lids;
  }
