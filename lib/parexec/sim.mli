(** Deterministic parallel-execution simulator.

    The transformed program executes {e sequentially} in iteration
    order — semantically exact, because expansion keeps each thread's
    private accesses in its own copies and ordered shared accesses
    execute in the order the paper's post/wait synchronization
    enforces. Timing is derived by replaying measured per-iteration
    costs against a thread schedule: static-chunk DOALL, dynamic
    chunk-1 DOACROSS with per-channel post/wait, per-thread L1 caches
    plus per-thread slices of a shared LLC, and a DRAM bandwidth bound
    on each loop invocation. *)

open Minic

type schedule = Doall | Doacross

type loop_spec = {
  lid : Ast.lid;
  schedule : schedule;
  ordered : (Ast.aid, int * bool) Hashtbl.t;
      (** accesses carrying cross-thread flow dependences:
          aid -> (synchronization channel, is-write) *)
}

(** Derive a loop's schedule and ordered channels from its analysis. *)
val spec_of_analysis : Privatize.Analyze.result -> loop_spec

(** Cache hierarchy parameters, loosely modelled on the paper's dual
    quad-core Opteron 8350 and calibrated to the interpreter's cost
    model (see DESIGN.md). *)
type machine_params = {
  l1_bytes : int;
  l1_assoc : int;
  llc_bytes : int;
  llc_assoc : int;
  line_bytes : int;
  llc_extra : int;  (** extra cycles on L1 miss, LLC hit *)
  dram_extra : int;  (** extra cycles on LLC miss *)
  bw_bytes_per_cycle : float;  (** shared DRAM bandwidth *)
}

val default_machine : machine_params

(** Rewind the simulated trace timeline to 0. Measured runs append
    their telemetry spans to one shared simulated timeline (so a
    multi-run session exports consecutive trace regions); resetting it
    makes a fresh logical session start at cycle 0 — used by tests
    asserting byte-identical traces across repeated runs. *)
val reset_trace_epoch : unit -> unit

type seq_result = {
  sq_output : string;
  sq_exit : int;
  sq_total : int;
  sq_loop : (Ast.lid * int) list;  (** cycles inside each target loop *)
  sq_peak : int;
  sq_cache_stall : int;
      (** cache-penalty cycles charged inside the target loops *)
}

(** Run a program sequentially under the cache model; the baseline for
    speedups. [attach] is invoked on the loaded machine after the
    simulator installs its own hooks and just before execution starts,
    so guards / fault injectors can chain onto them. *)
val run_sequential :
  ?machine:machine_params ->
  ?attach:(Interp.Machine.t -> unit) ->
  Ast.program ->
  Ast.lid list ->
  seq_result

(** SpiceC-style runtime-privatization surcharge (see
    {!Runtimepriv.Rp}): monitored accesses pay a resolution cost and
    privately-written bytes are committed at each iteration's end. *)
type runtime_priv = {
  rp_monitored : (Ast.aid, unit) Hashtbl.t;
  rp_resolve_cost : int;
  rp_commit_per_byte : int;
}

type par_result = {
  pr_threads : int;
  pr_output : string;
  pr_exit : int;
  pr_total : int;  (** simulated whole-program time *)
  pr_loop : (Ast.lid * int) list;  (** simulated parallel loop times *)
  pr_busy : int array;  (** per-thread work cycles inside target loops *)
  pr_sync : int array;  (** per-thread DOACROSS wait cycles *)
  pr_idle : int array;  (** per-thread barrier/load-imbalance idle *)
  pr_overhead : int;  (** GOMP fork/dispatch/barrier cycles *)
  pr_peak : int;
  pr_iterations : (Ast.lid * int) list;
  pr_rp_touched_bytes : int;
      (** bytes of data touched by monitored private accesses; the
          runtime-privatization baseline allocates one copy per extra
          thread of exactly this *)
  pr_dram_bytes : int;  (** DRAM traffic inside the target loops *)
  pr_cache_stall : int;
      (** cache-penalty cycles charged inside the target loops *)
  pr_heat : Heat.t option;
      (** cache-line heatmap, when a [heatmap] classifier was given *)
}

(** Simulate a parallel run of an expanded program (one reading
    [__tid]/[__nthreads]) on [threads] threads. [attach] is invoked on
    the measured machine after the simulator installs its own hooks and
    just before execution (the iteration-counting pre-run is left
    unattached), so guards / fault injectors can chain onto them.

    [heatmap] maps each access id to its access class; when given,
    accesses inside the target loops are attributed to the running
    thread's L1 lines (private accesses to copy [tid], the rest to
    copy 0) and the result carries a {!Heat.t}. *)
val run_parallel :
  ?machine:machine_params ->
  ?rp:runtime_priv ->
  ?heatmap:(Ast.aid -> Cache.attr_class) ->
  ?attach:(Interp.Machine.t -> unit) ->
  Ast.program ->
  loop_spec list ->
  threads:int ->
  par_result
