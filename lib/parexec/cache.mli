(** Set-associative LRU cache model.

    The parallel simulator gives each simulated thread a private L1
    plus a slice of the shared last-level cache; misses to memory are
    counted as DRAM traffic, which feeds the shared-bandwidth bound
    (470.lbm's plateau in the paper's Figure 11). *)

(** Access class of an attributed touch (mirrors
    [Privatize.Classify.verdict] without depending on it). *)
type attr_class = Private | Shared | Induction

(** Who touched a line: simulated thread, access class, and the
    private copy addressed (0 = the shared/original copy). *)
type attr = { at_thread : int; at_class : attr_class; at_copy : int }

type t

val create : size_bytes:int -> assoc:int -> line_bytes:int -> t

(** Clear LRU state, hit/miss counters {e and} per-line attribution: a
    reused cache must report exactly what a fresh one would. *)
val reset : t -> unit

(** Record who touched the lines covered by [addr, addr+size) — the
    heatmap hook. Pure bookkeeping: never perturbs LRU state or the
    hit/miss counters. *)
val attribute : t -> attr -> addr:int -> size:int -> unit

(** All recorded attributions as (line, attr, touches), sorted. *)
val line_attribution : t -> (int * attr * int) list

(** Number of distinct lines with at least one attribution. *)
val attributed_lines : t -> int

(** Touch every line the access [addr, addr+size) covers; [true] iff
    all of them hit. Updates LRU state and hit/miss counters. *)
val access : t -> addr:int -> size:int -> bool

(** Fraction of line touches that hit; 1.0 when empty. *)
val hit_rate : t -> float

(** Raw line-touch counters behind {!hit_rate} (telemetry feeds). *)
val hits : t -> int

val misses : t -> int
