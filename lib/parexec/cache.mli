(** Set-associative LRU cache model.

    The parallel simulator gives each simulated thread a private L1
    plus a slice of the shared last-level cache; misses to memory are
    counted as DRAM traffic, which feeds the shared-bandwidth bound
    (470.lbm's plateau in the paper's Figure 11). *)

type t

val create : size_bytes:int -> assoc:int -> line_bytes:int -> t
val reset : t -> unit

(** Touch every line the access [addr, addr+size) covers; [true] iff
    all of them hit. Updates LRU state and hit/miss counters. *)
val access : t -> addr:int -> size:int -> bool

(** Fraction of line touches that hit; 1.0 when empty. *)
val hit_rate : t -> float

(** Raw line-touch counters behind {!hit_rate} (telemetry feeds). *)
val hits : t -> int

val misses : t -> int
