(** Cache-line heatmap: who touched which line, built from the
    per-line attributions the simulated L1 caches record
    ({!Cache.attribute}).

    The headline product is the {e false-sharing detector}: a line is
    false-shared when at least two simulated threads touch it through
    {e different} private copies — exactly the collision the paper's
    §3.1 interleaved layout invites (copies of a member are packed
    [sizeof(member)] apart, so one line straddles several threads'
    copies) and the bonded layout avoids. Per-copy span utilization
    (distinct lines touched / line span of the copy) distinguishes the
    two layouts from the other side: bonded copies are dense,
    interleaved copies scatter over the whole structure's span. *)

type line_stat = {
  hl_line : int;  (** line index (address lsr line bits) *)
  hl_touches : int;
  hl_threads : int list;  (** distinct touching threads, sorted *)
  hl_classes : Cache.attr_class list;  (** distinct classes, sorted *)
  hl_copies : int list;  (** distinct private copies, sorted *)
  hl_false_sharing : bool;
}

(** Footprint of one private copy (copy 0 = shared data). A copy's
    lines fall into one cluster per expanded object; [hc_span_lines]
    sums the clusters' spans (runs separated by more than
    [cluster_gap] lines) so unrelated objects far apart in memory do
    not drown the utilization. *)
type copy_stat = {
  hc_copy : int;
  hc_lines : int;  (** distinct lines touched *)
  hc_span_lines : int;  (** summed span of the copy's line clusters *)
  hc_util : float;  (** hc_lines / hc_span_lines *)
}

type t = {
  line_bytes : int;
  total_lines : int;  (** distinct lines with any attribution *)
  total_touches : int;
  false_sharing_lines : int;
  lines : line_stat list;  (** sorted by line index *)
  copies : copy_stat list;  (** sorted by copy id *)
}

let class_name = function
  | Cache.Private -> "private"
  | Cache.Shared -> "shared"
  | Cache.Induction -> "induction"

(* deterministic order for mixed class lists *)
let class_rank = function
  | Cache.Private -> 0
  | Cache.Shared -> 1
  | Cache.Induction -> 2

(** Merge the attributions of every thread's L1 into one heatmap.
    [line_bytes] is the simulated line size (for the report header
    only; the line indices already encode it). *)
let build ~(line_bytes : int) (caches : Cache.t array) : t =
  (* line -> attr -> touches, merged across threads *)
  let merged : (int * Cache.attr, int) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun c ->
      List.iter
        (fun (line, a, n) ->
          let key = (line, a) in
          Hashtbl.replace merged key
            (n + Option.value ~default:0 (Hashtbl.find_opt merged key)))
        (Cache.line_attribution c))
    caches;
  let by_line : (int, (Cache.attr * int) list) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun (line, a) n ->
      Hashtbl.replace by_line line
        ((a, n) :: Option.value ~default:[] (Hashtbl.find_opt by_line line)))
    merged;
  let lines =
    Hashtbl.fold
      (fun line attrs acc ->
        let attrs = List.sort compare attrs in
        let touches = List.fold_left (fun s (_, n) -> s + n) 0 attrs in
        let threads =
          List.sort_uniq compare
            (List.map (fun ((a : Cache.attr), _) -> a.Cache.at_thread) attrs)
        in
        let classes =
          List.sort_uniq
            (fun a b -> compare (class_rank a) (class_rank b))
            (List.map (fun ((a : Cache.attr), _) -> a.Cache.at_class) attrs)
        in
        let private_attrs =
          List.filter
            (fun ((a : Cache.attr), _) -> a.Cache.at_class = Cache.Private)
            attrs
        in
        let copies =
          List.sort_uniq compare
            (List.map
               (fun ((a : Cache.attr), _) -> a.Cache.at_copy)
               private_attrs)
        in
        let private_threads =
          List.sort_uniq compare
            (List.map
               (fun ((a : Cache.attr), _) -> a.Cache.at_thread)
               private_attrs)
        in
        let false_sharing =
          List.length private_threads >= 2 && List.length copies >= 2
        in
        {
          hl_line = line;
          hl_touches = touches;
          hl_threads = threads;
          hl_classes = classes;
          hl_copies = copies;
          hl_false_sharing = false_sharing;
        }
        :: acc)
      by_line []
    |> List.sort (fun a b -> compare a.hl_line b.hl_line)
  in
  (* per-copy footprint over the private attributions *)
  let copy_lines : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (line, (a : Cache.attr)) _ ->
      if a.Cache.at_class = Cache.Private then
        Hashtbl.replace copy_lines a.Cache.at_copy
          (line
          :: Option.value ~default:[]
               (Hashtbl.find_opt copy_lines a.Cache.at_copy)))
    merged;
  (* lines further apart than this start a new cluster (a different
     expanded object): 64 lines = one 4 KiB page at 64 B lines *)
  let cluster_gap = 64 in
  let clustered_span ls =
    match ls with
    | [] -> 0
    | first :: rest ->
      let span, lo, hi =
        List.fold_left
          (fun (span, lo, hi) l ->
            if l - hi > cluster_gap then (span + (hi - lo + 1), l, l)
            else (span, lo, l))
          (0, first, first) rest
      in
      span + (hi - lo + 1)
  in
  let copies =
    Hashtbl.fold
      (fun copy ls acc ->
        let ls = List.sort_uniq compare ls in
        let span = clustered_span ls in
        {
          hc_copy = copy;
          hc_lines = List.length ls;
          hc_span_lines = span;
          hc_util = float_of_int (List.length ls) /. float_of_int span;
        }
        :: acc)
      copy_lines []
    |> List.sort (fun a b -> compare a.hc_copy b.hc_copy)
  in
  {
    line_bytes;
    total_lines = List.length lines;
    total_touches = List.fold_left (fun s l -> s + l.hl_touches) 0 lines;
    false_sharing_lines =
      List.length (List.filter (fun l -> l.hl_false_sharing) lines);
    lines;
    copies;
  }

(** The heatmap JSON artifact (schema dsexpand-heatmap/1); [extra]
    fields (workload name, mode, threads) go first so the file is
    self-describing. Fully deterministic for a fixed simulation. *)
let to_json ?(extra : (string * Telemetry.Json.t) list = []) (h : t) :
    Telemetry.Json.t =
  let open Telemetry.Json in
  Obj
    ([ ("schema", Str "dsexpand-heatmap/1") ]
    @ extra
    @ [
        ("line_bytes", Int h.line_bytes);
        ("total_lines", Int h.total_lines);
        ("total_touches", Int h.total_touches);
        ("false_sharing_lines", Int h.false_sharing_lines);
        ( "lines",
          List
            (List.map
               (fun l ->
                 Obj
                   [
                     ("line", Int l.hl_line);
                     ("touches", Int l.hl_touches);
                     ("threads", List (List.map (fun t -> Int t) l.hl_threads));
                     ( "classes",
                       List
                         (List.map (fun c -> Str (class_name c)) l.hl_classes)
                     );
                     ("copies", List (List.map (fun c -> Int c) l.hl_copies));
                     ("false_sharing", Bool l.hl_false_sharing);
                   ])
               h.lines) );
        ( "copies",
          List
            (List.map
               (fun c ->
                 Obj
                   [
                     ("copy", Int c.hc_copy);
                     ("lines", Int c.hc_lines);
                     ("span_lines", Int c.hc_span_lines);
                     ("util", Float c.hc_util);
                   ])
               h.copies) );
      ])
