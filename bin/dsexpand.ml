(** dsexpand — the source-to-source data structure expansion tool.

    Reads a MiniC file with [#pragma parallel] loop annotations (or a
    bundled benchmark via --workload), and then, per the subcommand
    flags:

    - prints the profiled dependence graph (--dump-deps),
    - prints the access-class classification (--report),
    - prints the expanded program (default),
    - runs original and expanded programs and checks equivalence
      (--check), optionally simulating a parallel run (--threads N),
    - runs the guarded degradation ladder (--ladder), optionally under
      an injected fault (--fault SPEC --seed N),
    - runs the whole fault-injection campaign (--campaign). *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

open Cmdliner

let input_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "i"; "input" ] ~docv:"FILE" ~doc:"MiniC source file to process.")

let workload_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"NAME"
        ~doc:
          "Use a bundled benchmark program instead of a file (dijkstra, \
           md5, mpeg2-encoder, mpeg2-decoder, h263-encoder, 256.bzip2, \
           456.hmmer, 470.lbm).")

let dump_deps_arg =
  Arg.(value & flag & info [ "dump-deps" ] ~doc:"Print the dependence graph.")

let report_arg =
  Arg.(
    value & flag
    & info [ "report" ] ~doc:"Print the access-class classification.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Run original and expanded programs; verify equal output.")

let threads_arg =
  Arg.(
    value & opt int 0
    & info [ "t"; "threads" ] ~docv:"N"
        ~doc:"With --check: also simulate a parallel run on N threads.")

let no_opt_arg =
  Arg.(
    value & flag
    & info [ "no-optimize" ]
        ~doc:"Disable the §3.4 span optimizations (Figure 9a mode).")

let unselective_arg =
  Arg.(
    value & flag
    & info [ "promote-all" ]
        ~doc:"Promote every pointer instead of only aliases of expanded data.")

let guard_arg =
  Arg.(
    value & flag
    & info [ "guard" ]
        ~doc:
          "With --check --threads: run the expanded program under span \
           guards and the privatization contract checker.")

let ladder_arg =
  Arg.(
    value & flag
    & info [ "ladder" ]
        ~doc:
          "Run the graceful-degradation ladder: guarded static expansion, \
           falling back to runtime privatization, then to sequential \
           execution, with structured diagnostics.")

let fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault" ] ~docv:"SPEC"
        ~doc:
          "With --ladder or --exec domains: inject a fault. SPEC is one of \
           drop-edge, misclassify, truncate-span:BYTES, alloc-fail:N, \
           domain-crash[:N], domain-stall[:N], writelog-corrupt[:N], \
           steal-contention[:N]. The domain-* and steal-contention kinds \
           are armed on the real-domain supervisor.")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N"
        ~doc:"Seed for the deterministic fault injector (with --fault).")

let campaign_arg =
  Arg.(
    value & flag
    & info [ "campaign" ]
        ~doc:
          "Run the full fault-injection campaign (every workload, clean \
           and under one fault of each kind) and print the ladder table; \
           $(b,-w) restricts the sweep to that one workload. With --exec \
           domains the grid also sweeps the domain-level faults through \
           the supervised real-domain rung.")

let campaign_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "campaign-json" ] ~docv:"FILE"
        ~doc:
          "With --campaign: also write the sweep as a JSON artifact \
           (schema dsexpand-campaign/2) to FILE.")

let retry_arg =
  Arg.(
    value & opt int 3
    & info [ "retry" ] ~docv:"N"
        ~doc:
          "With --exec domains: supervised retry budget — both the \
           per-chunk acquisition attempts and the number of full run \
           attempts (default 3).")

let watchdog_ms_arg =
  Arg.(
    value & opt int 5000
    & info [ "watchdog-ms" ] ~docv:"MS"
        ~doc:
          "With --exec domains: per-chunk heartbeat deadline; a domain \
           holding a chunk longer than this aborts the attempt instead of \
           hanging the run (default 5000).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON file of the run (load into \
           Perfetto or chrome://tracing). Deterministic: the same --seed \
           produces a byte-identical trace.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the telemetry metrics report (counters, span totals, and \
           — with --check --threads — the per-workload cost attribution) \
           after the run.")

let metrics_format_arg =
  Arg.(
    value
    & opt (enum [ ("table", `Table); ("json", `Json) ]) `Table
    & info [ "metrics-format" ] ~docv:"FMT"
        ~doc:"Format of the --metrics report: $(b,table) or $(b,json).")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print decision provenance: which Definition-4/5 condition decided \
           each access class (with the dependence edges as evidence) and why \
           each privatized structure got its bonded/interleaved layout.")

let explain_format_arg =
  Arg.(
    value
    & opt (enum [ ("table", `Table); ("json", `Json) ]) `Table
    & info [ "explain-format" ] ~docv:"FMT"
        ~doc:"Format of the --explain report: $(b,table) or $(b,json).")

let exec_arg =
  Arg.(
    value
    & opt (enum [ ("sim", `Sim); ("domains", `Domains) ]) `Sim
    & info [ "exec" ] ~docv:"MODE"
        ~doc:
          "Executor for the expanded program: $(b,sim) (the default \
           cycle-accurate simulator, used by --check --threads) or \
           $(b,domains) (real parallel execution on OCaml 5 domains with a \
           work-stealing scheduler; always contract-checked against the \
           sequential original).")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "With --exec domains: use N domains (default \
           Domain.recommended_domain_count; an explicit N forces parallel \
           execution even on a 1-core host).")

let chunk_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chunk" ] ~docv:"K"
        ~doc:
          "With --exec domains: iterations per scheduler chunk (default \
           trip / (4 * domains)).")

let domain_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "domain-trace" ] ~docv:"FILE"
        ~doc:
          "With --exec domains: record per-domain scheduler events (chunk \
           claim/start/finish, steals, retries, backoff, GC samples) into \
           lock-free rings and write the merged Chrome trace_event JSON to \
           FILE — one pseudo-process per domain, one ring set per \
           supervised attempt. Deterministic under a fixed --seed when the \
           schedule is race-free.")

let sched_report_arg =
  Arg.(
    value & flag
    & info [ "sched-report" ]
        ~doc:
          "With --exec domains: print the scheduler-health report (schema \
           dsexpand-domtrace/1) — per-domain busy/claim/steal/backoff/idle \
           utilization, steal success rate, load-imbalance coefficient, \
           straggler identification, and GC share, computed from the same \
           event rings as --domain-trace.")

let sched_format_arg =
  Arg.(
    value
    & opt (enum [ ("table", `Table); ("json", `Json) ]) `Table
    & info [ "sched-format" ] ~docv:"FMT"
        ~doc:"Format of the --sched-report: $(b,table) or $(b,json).")

let critical_path_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "critical-path" ] ~docv:"FILE"
        ~doc:
          "With --exec domains: reconstruct the happens-before DAG from the \
           per-domain event rings, compute the cross-domain critical path, \
           and write the profile (schema dsexpand-critpath/1) to FILE. The \
           artifact's base object — schedule, event counts, and the \
           virtual-time (interpreter-cycle) model — is byte-reproducible \
           under a fixed --seed when the schedule is race-free (pin --chunk \
           so every domain gets at most one chunk).")

let whatif_arg =
  Arg.(
    value & flag
    & info [ "whatif" ]
        ~doc:
          "With --critical-path: append the host-clock measured section \
           (per-class critical-path contributions, dominant class, \
           exec-cycle inflation vs the sequential run) and the causal \
           what-if table — the estimated wall-clock speedup from shrinking \
           each segment class, and the heaviest single chunk, by \
           10/25/50/100%. These sections are measurements, not \
           reproducible bytes.")

let critpath_format_arg =
  Arg.(
    value
    & opt (enum [ ("table", `Table); ("json", `Json) ]) `Table
    & info [ "critpath-format" ] ~docv:"FMT"
        ~doc:
          "Stdout rendering of the --critical-path profile: $(b,table) or \
           $(b,json) (the artifact file is always JSON).")

let heatmap_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "heatmap" ] ~docv:"FILE"
        ~doc:
          "Simulate a parallel run (N = --threads, default 4) with cache-line \
           attribution and write the heatmap JSON artifact (per-line owners, \
           false-sharing lines, per-copy span utilization) to FILE.")

let parse_fault ~seed spec =
  let fail () =
    prerr_endline
      ("unknown fault spec '" ^ spec
     ^ "' (expected drop-edge | misclassify | truncate-span:BYTES | \
        alloc-fail:N | domain-crash[:N] | domain-stall[:N] | \
        writelog-corrupt[:N] | steal-contention[:N])");
    exit 2
  in
  let pos n = match int_of_string_opt n with Some k when k > 0 -> k | _ -> fail () in
  let kind =
    match String.split_on_char ':' spec with
    | [ "drop-edge" ] -> Faultinject.Fault.Drop_dep_edge
    | [ "misclassify" ] -> Faultinject.Fault.Force_misclassify
    | [ "truncate-span"; n ] -> Faultinject.Fault.Truncate_span (pos n)
    | [ "alloc-fail"; n ] -> Faultinject.Fault.Alloc_failure (pos n)
    | [ "domain-crash" ] -> Faultinject.Fault.Domain_crash 1
    | [ "domain-crash"; n ] -> Faultinject.Fault.Domain_crash (pos n)
    | [ "domain-stall" ] -> Faultinject.Fault.Domain_stall 1
    | [ "domain-stall"; n ] -> Faultinject.Fault.Domain_stall (pos n)
    | [ "writelog-corrupt" ] -> Faultinject.Fault.Writelog_corrupt 1
    | [ "writelog-corrupt"; n ] -> Faultinject.Fault.Writelog_corrupt (pos n)
    | [ "steal-contention" ] -> Faultinject.Fault.Steal_contention 4
    | [ "steal-contention"; n ] -> Faultinject.Fault.Steal_contention (pos n)
    | _ -> fail ()
  in
  Faultinject.Fault.make ~seed kind

(* The --check --threads branch deposits its cost-attribution row here
   for the at_exit metrics report (so failure paths still report). *)
let metrics_row_stash : Report.Tables.metrics_row option ref = ref None

let attribution_json (r : Report.Tables.metrics_row) : Telemetry.Json.t =
  let cb = r.Report.Tables.m_breakdown in
  Telemetry.Json.Obj
    [
      ("workload", Telemetry.Json.Str r.Report.Tables.m_workload);
      ("threads", Telemetry.Json.Int r.Report.Tables.m_threads);
      ("loop_speedup", Telemetry.Json.Float r.Report.Tables.m_loop_speedup);
      ("total_speedup", Telemetry.Json.Float r.Report.Tables.m_total_speedup);
      ("compute_cycles", Telemetry.Json.Int cb.Report.Tables.cb_compute);
      ("cache_stall_cycles", Telemetry.Json.Int cb.Report.Tables.cb_cache);
      ("sync_stall_cycles", Telemetry.Json.Int cb.Report.Tables.cb_sync);
      ("privatization_cycles", Telemetry.Json.Int cb.Report.Tables.cb_priv);
      ("idle_cycles", Telemetry.Json.Int cb.Report.Tables.cb_idle);
      ("runtime_cycles", Telemetry.Json.Int cb.Report.Tables.cb_runtime);
    ]

(** Install the aggregator (+ trace collector) and register the
    end-of-process report/trace dump. [at_exit] so the error paths
    ([exit 1]/[exit 2]) still write the trace and metrics collected so
    far. *)
let setup_telemetry ~trace ~metrics ~metrics_format : unit =
  if trace <> None || metrics then begin
    let agg = Telemetry.Counters.create () in
    let chrome = Telemetry.Chrome_trace.create () in
    let sinks =
      Telemetry.Counters.sink agg
      ::
      (match trace with
      | Some _ -> [ Telemetry.Chrome_trace.sink chrome ]
      | None -> [])
    in
    Telemetry.Sink.install (Telemetry.Sink.tee sinks);
    at_exit (fun () ->
        Telemetry.Sink.clear ();
        Option.iter (Telemetry.Chrome_trace.write chrome) trace;
        if metrics then begin
          let snap = Telemetry.Counters.snapshot agg in
          match metrics_format with
          | `Json ->
            let fields =
              match Telemetry.Metrics.to_json snap with
              | Telemetry.Json.Obj fields -> fields
              | j -> [ ("metrics", j) ]
            in
            let attribution =
              match !metrics_row_stash with
              | None -> Telemetry.Json.Null
              | Some r -> attribution_json r
            in
            print_endline
              (Telemetry.Json.to_string
                 (Telemetry.Json.Obj
                    (fields @ [ ("attribution", attribution) ])))
          | `Table ->
            (match !metrics_row_stash with
            | Some row -> print_string (Report.Tables.metrics_table [ row ])
            | None -> ());
            print_string
              (Report.Tables.counters_table snap.Telemetry.Counters.counters)
        end)
  end

(* ------------------------------------------------------------------ *)
(* --explain / --heatmap                                               *)
(* ------------------------------------------------------------------ *)

let kind_name c =
  match Privatize.Classify.parallelism_kind c with
  | `Doall -> "DOALL"
  | `Doacross -> "DOACROSS"

let explain_json ~file (analyses : Privatize.Analyze.result list)
    (res : Expand.Transform.result) : Telemetry.Json.t =
  let open Telemetry.Json in
  let loop_json (a : Privatize.Analyze.result) =
    let c = a.Privatize.Analyze.classification in
    let g = c.Privatize.Classify.graph in
    Obj
      [
        ("loop", Int g.Depgraph.Graph.loop);
        ("function", Str a.Privatize.Analyze.loop_fun.Minic.Ast.fname);
        ("kind", Str (kind_name c));
        ( "classes",
          List
            (List.map
               (fun (p : Privatize.Classify.provenance) ->
                 Obj
                   [
                     ( "aids",
                       List
                         (List.map
                            (fun aid -> Int aid)
                            p.Privatize.Classify.p_aids) );
                     ( "members",
                       List
                         (List.map
                            (fun aid -> Str (Depgraph.Graph.site_text g aid))
                            p.Privatize.Classify.p_aids) );
                     ( "verdict",
                       Str
                         (Privatize.Classify.verdict_name
                            p.Privatize.Classify.p_verdict) );
                     ( "rule",
                       Str
                         (Privatize.Classify.rule_name
                            p.Privatize.Classify.p_rule) );
                     ( "trigger",
                       match p.Privatize.Classify.p_witness with
                       | Some w -> Str (Depgraph.Graph.site_text g w)
                       | None -> Null );
                     ( "evidence",
                       List
                         (List.map
                            (fun (e : Depgraph.Graph.edge) ->
                              Obj
                                [
                                  ("src", Int e.Depgraph.Graph.e_src);
                                  ("dst", Int e.Depgraph.Graph.e_dst);
                                  ( "kind",
                                    Str
                                      (Depgraph.Graph.dep_kind_name
                                         e.Depgraph.Graph.e_kind) );
                                  ("carried", Bool e.Depgraph.Graph.e_carried);
                                  ("cite", Str (Depgraph.Graph.cite_edge g e));
                                ])
                            p.Privatize.Classify.p_evidence) );
                   ])
               c.Privatize.Classify.provenance) );
      ]
  in
  let layout_json (lc : Expand.Plan.layout_choice) =
    Obj
      [
        ("object", Str lc.Expand.Plan.lc_object);
        ("kind", Str (if lc.Expand.Plan.lc_is_alloc then "alloc" else "var"));
        ("layout", Str (Expand.Plan.mode_name lc.Expand.Plan.lc_mode));
        ("interleavable", Bool lc.Expand.Plan.lc_interleavable);
        ( "copy_span_bytes",
          match lc.Expand.Plan.lc_copy_span with
          | Some b -> Int b
          | None -> Null );
        ("why", Str lc.Expand.Plan.lc_why);
      ]
  in
  Obj
    [
      ("schema", Str "dsexpand-explain/1");
      ("workload", Str file);
      ( "mode",
        Str (Expand.Plan.mode_name res.Expand.Transform.plan.Expand.Plan.mode)
      );
      ("loops", List (List.map loop_json analyses));
      ( "layout",
        List (List.map layout_json (Expand.Plan.layout res.Expand.Transform.plan))
      );
    ]

let print_explain ~format ~file (analyses : Privatize.Analyze.result list)
    (res : Expand.Transform.result) : unit =
  match format with
  | `Json -> print_endline (Telemetry.Json.to_string (explain_json ~file analyses res))
  | `Table ->
    List.iter
      (fun (a : Privatize.Analyze.result) ->
        let c = a.Privatize.Analyze.classification in
        Printf.printf "Explain: loop %d in %s (%s)\n"
          c.Privatize.Classify.graph.Depgraph.Graph.loop
          a.Privatize.Analyze.loop_fun.Minic.Ast.fname (kind_name c);
        print_string
          (Report.Tables.explain_table (Privatize.Classify.explain_rows c));
        print_newline ())
      analyses;
    Printf.printf "Explain: expansion layout (%s mode)\n"
      (Expand.Plan.mode_name res.Expand.Transform.plan.Expand.Plan.mode);
    print_string
      (Report.Tables.layout_table
         (Expand.Plan.layout_rows res.Expand.Transform.plan))

let write_heatmap ~threads ~file (analyses : Privatize.Analyze.result list)
    (res : Expand.Transform.result) (path : string) : unit =
  let threads = if threads > 1 then threads else 4 in
  let specs = List.map Parexec.Sim.spec_of_analysis analyses in
  let pr =
    Parexec.Sim.run_parallel
      ~heatmap:(Harness.Bench_run.heat_classifier res)
      res.Expand.Transform.transformed specs ~threads
  in
  let h = match pr.Parexec.Sim.pr_heat with Some h -> h | None -> assert false in
  let json =
    Parexec.Heat.to_json
      ~extra:
        [
          ("workload", Telemetry.Json.Str file);
          ( "mode",
            Telemetry.Json.Str
              (Expand.Plan.mode_name res.Expand.Transform.plan.Expand.Plan.mode)
          );
          ("threads", Telemetry.Json.Int threads);
        ]
      h
  in
  let oc = open_out_bin path in
  output_string oc (Telemetry.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "heatmap T=%d: %d lines attributed, %d false-sharing, %d copies -> %s\n"
    threads h.Parexec.Heat.total_lines h.Parexec.Heat.false_sharing_lines
    (List.length h.Parexec.Heat.copies)
    path

let load_source input workload =
  match (input, workload) with
  | Some path, None -> (Filename.basename path, read_file path)
  | None, Some name ->
    let w = Workloads.Registry.find name in
    (w.Workloads.Workload.name, w.Workloads.Workload.source)
  | _ ->
    prerr_endline "exactly one of --input or --workload is required";
    exit 2

(* Structured exit codes for supervised real-domain outcomes (the
   simulated paths keep their historical 0/1/2): *)
let exit_recovered = 3  (** output correct, but recovery was needed *)

let exit_fellback = 4  (** a lower ladder rung held (output correct) *)

let exit_aborted = 5  (** no trustworthy output *)

let outcome_word code =
  match code with
  | 0 -> "ok"
  | 3 -> "recovered"
  | 4 -> "fell-back"
  | _ -> "aborted"

(* Parse --fault for the supervised paths: only domain-level kinds are
   armed there; pipeline-level kinds mangle the analyses and belong to
   the ladder's simulated rungs. *)
let domain_fault_of ~seed fault_spec =
  match fault_spec with
  | None -> None
  | Some spec ->
    let f = parse_fault ~seed spec in
    if Faultinject.Fault.domain_level f then begin
      Printf.printf "fault %s: armed on the domain supervisor\n"
        (Faultinject.Fault.describe f);
      Some f
    end
    else None

(* Emit the --domain-trace / --sched-report artifacts from the ring
   recorder once the supervised run is over — including abort paths,
   where the failed attempts are the interesting part of the trace. *)
let emit_domtrace ~file ~domain_trace ~sched_report ~sched_format dtrace =
  match dtrace with
  | None -> ()
  | Some tr ->
    (match domain_trace with
    | Some path ->
      Domexec.Domtrace.write_chrome tr path;
      Printf.printf "domain trace -> %s (%d attempt(s), %d events, %d drops)\n"
        path
        (Domexec.Domtrace.attempt_count tr)
        (Domexec.Domtrace.total_events tr)
        (Domexec.Domtrace.total_drops tr)
    | None -> ());
    if sched_report then begin
      let rep = Domexec.Domtrace.Sched_report.analyze tr in
      match sched_format with
      | `Json ->
        print_endline
          (Telemetry.Json.to_string
             (Domexec.Domtrace.Sched_report.to_json
                ~extra:[ ("workload", Telemetry.Json.Str file) ]
                rep))
      | `Table -> print_string (Domexec.Domtrace.Sched_report.to_table rep)
    end

(* Emit the --critical-path artifact from the same recorder: the file
   always gets the JSON profile (deterministic base object; --whatif
   appends the measured and what-if sections), stdout gets the
   --critpath-format rendering. *)
let emit_critpath ~file ~critical_path ~whatif ~critpath_format ~seq_ns
    ~seq_cycles dtrace =
  match (critical_path, dtrace) with
  | None, _ | _, None -> ()
  | Some path, Some tr ->
    let p = Domexec.Critpath.analyze tr in
    let json =
      Domexec.Critpath.to_json ~seq_ns ~seq_cycles ~whatif
        ~extra:[ ("workload", Telemetry.Json.Str file) ]
        p
    in
    let oc = open_out_bin path in
    output_string oc (Telemetry.Json.to_string json);
    output_char oc '\n';
    close_out oc;
    Printf.printf "critical path -> %s (%d attempt(s), %d domains%s)\n" path
      (Domexec.Critpath.attempts p)
      (Domexec.Critpath.domains p)
      (if whatif then ", with what-if" else "");
    (match critpath_format with
    | `Json -> print_endline (Telemetry.Json.to_string json)
    | `Table ->
      print_string (Domexec.Critpath.to_table ~seq_ns ~seq_cycles ~whatif p))

let run_ladder ~threads ~seed ~exec_mode ~domains ~chunk ~retry ~watchdog_ms
    ~file ~dtrace ~domain_trace ~sched_report ~sched_format prog analyses
    fault_spec =
  let threads = if threads > 1 then threads else 2 in
  let oracle = Guard.Contract.oracle_of prog analyses in
  let dom_fault =
    if exec_mode = `Domains then domain_fault_of ~seed fault_spec else None
  in
  let analyses', span_shrink, attach_extra =
    match fault_spec with
    | None -> (analyses, None, None)
    | Some _ when dom_fault <> None -> (analyses, None, None)
    | Some spec ->
      let f = parse_fault ~seed spec in
      let app = Faultinject.Fault.mangle f prog analyses in
      Printf.printf "fault %s: %s\n"
        (Faultinject.Fault.describe f)
        app.Faultinject.Fault.note;
      ( app.Faultinject.Fault.analyses,
        Faultinject.Fault.span_shrink f,
        Some (Faultinject.Fault.attach_machine f) )
  in
  let force = domains <> None in
  let o =
    Harness.Ladder.run ~threads ~reference:analyses ~oracle ?span_shrink
      ?attach_extra ~exec:exec_mode ?domains ?chunk ~force ~retry ~watchdog_ms
      ?fault:dom_fault ?trace:dtrace prog analyses'
  in
  emit_domtrace ~file ~domain_trace ~sched_report ~sched_format dtrace;
  List.iter
    (fun d -> print_endline (Harness.Ladder.diagnostic_to_string d))
    o.Harness.Ladder.diagnostics;
  (match o.Harness.Ladder.dom_sup with
  | Some sup ->
    Printf.printf "supervisor: %s\n" (Domexec.Supervisor.summary sup)
  | None -> ());
  let ok =
    String.equal o.Harness.Ladder.output oracle.Guard.Contract.o_output
    && o.Harness.Ladder.exit_code = oracle.Guard.Contract.o_exit
  in
  Printf.printf "rung held: %s (fell %d), output %s\n"
    (Harness.Ladder.rung_name o.Harness.Ladder.rung)
    (List.length o.Harness.Ladder.diagnostics)
    (if ok then "identical" else "DIFFERS");
  (* structured rung + trigger line for drivers, on stderr *)
  Printf.eprintf "dsexpand: rung=%s trigger=%s\n"
    (Harness.Ladder.rung_name o.Harness.Ladder.rung)
    (match o.Harness.Ladder.diagnostics with
    | [] -> "none"
    | d :: _ -> Harness.Ladder.trigger_to_string d.Harness.Ladder.trigger);
  if exec_mode = `Domains then begin
    let code =
      if not ok then exit_aborted
      else
        match (o.Harness.Ladder.rung, o.Harness.Ladder.dom_sup) with
        | Harness.Ladder.Domains, Some sup ->
          if sup.Domexec.Supervisor.sup_outcome = Domexec.Supervisor.Completed
          then 0
          else exit_recovered
        | Harness.Ladder.Domains, None -> 0
        | _ -> exit_fellback
    in
    Printf.eprintf "dsexpand: outcome=%s\n" (outcome_word code);
    exit code
  end
  else if not ok then exit 1

(** Real parallel execution of the expanded program on OCaml domains,
    under supervision (crash isolation, chunk retry, watchdog). Every
    run is validated: output and exit code against the original, final
    global state via the privatization contract. *)
let run_domains ~domains ~chunk ~retry ~watchdog_ms ~seed ~fault_spec ~file
    ~dtrace ~domain_trace ~sched_report ~sched_format ~critical_path ~whatif
    ~critpath_format prog (res : Expand.Transform.result)
    (lids : Minic.Ast.lid list) : unit =
  let plan = res.Expand.Transform.plan in
  let oracle = Guard.Contract.oracle_of prog [] in
  let m0 = Interp.Machine.load prog in
  let t0 = Unix.gettimeofday () in
  ignore (Interp.Machine.run m0);
  let seq_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let seq_cycles = m0.Interp.Machine.st.Interp.Machine.cycles in
  (* An explicit --domains N is a request for the parallel scheduler
     even when the host reports one core. *)
  let force = domains <> None in
  let fault = domain_fault_of ~seed fault_spec in
  let sup =
    Domexec.Supervisor.run ?domains ?chunk ~force ~retry ~watchdog_ms ?fault
      ?trace:dtrace res.Expand.Transform.transformed plan lids
  in
  emit_domtrace ~file ~domain_trace ~sched_report ~sched_format dtrace;
  emit_critpath ~file ~critical_path ~whatif ~critpath_format ~seq_ns
    ~seq_cycles dtrace;
  let finish code =
    Printf.eprintf "dsexpand: exec=domains outcome=%s\n" (outcome_word code);
    if code <> 0 then exit code
  in
  match sup.Domexec.Supervisor.sup_result with
  | None ->
    List.iter
      (fun e -> prerr_endline (Guard.Diag.sup_event_to_string e))
      sup.Domexec.Supervisor.sup_events;
    Printf.printf "supervisor: %s\n" (Domexec.Supervisor.summary sup);
    finish exit_aborted
  | Some r ->
    Printf.printf "exec domains: %s, requested %d, used %d%s\n" file
      r.Domexec.Exec.dx_requested r.Domexec.Exec.dx_domains
      (match r.Domexec.Exec.dx_fallback with
      | Some why -> Printf.sprintf " (sequential fallback: %s)" why
      | None -> "");
    List.iter
      (fun (lr : Domexec.Exec.loop_report) ->
        Printf.printf "  loop %d: %s (%d invocation%s, %d iterations)\n"
          lr.Domexec.Exec.lr_lid
          (Domexec.Exec.decision_to_string lr.Domexec.Exec.lr_decision)
          lr.Domexec.Exec.lr_invocations
          (if lr.Domexec.Exec.lr_invocations = 1 then "" else "s")
          lr.Domexec.Exec.lr_iterations)
      r.Domexec.Exec.dx_loops;
    Printf.printf "  steals %d (lost %d), chunks [%s], merges %d\n"
      r.Domexec.Exec.dx_steals r.Domexec.Exec.dx_steal_lost
      (String.concat " "
         (Array.to_list (Array.map string_of_int r.Domexec.Exec.dx_chunks_run)))
      r.Domexec.Exec.dx_merges;
    Printf.printf "  supervisor: %s\n" (Domexec.Supervisor.summary sup);
    Printf.printf
      "  wall: sequential %.1f ms, domains %.1f ms, speedup %.2fx\n" (seq_ns /. 1e6)
      (r.Domexec.Exec.dx_wall_ns /. 1e6)
      (seq_ns /. r.Domexec.Exec.dx_wall_ns);
    let ok_out = String.equal r.Domexec.Exec.dx_output oracle.Guard.Contract.o_output in
    let ok_exit = r.Domexec.Exec.dx_exit = oracle.Guard.Contract.o_exit in
    (match Guard.Contract.check_finals oracle plan r.Domexec.Exec.dx_machine with
    | () ->
      Printf.printf "  output %s, exit %s, finals identical\n"
        (if ok_out then "identical" else "DIFFERS")
        (if ok_exit then "identical" else "DIFFERS")
    | exception Guard.Violation.Violation v ->
      Printf.printf "contract tripped: %s\n" (Guard.Violation.to_string v);
      finish exit_aborted);
    if not (ok_out && ok_exit) then finish exit_aborted;
    finish
      (if sup.Domexec.Supervisor.sup_outcome = Domexec.Supervisor.Completed
       then 0
       else exit_recovered)

let run input workload dump_deps report check threads no_opt unselective
    guard ladder fault seed campaign campaign_json trace metrics
    metrics_format explain explain_format heatmap exec_mode domains chunk
    retry watchdog_ms domain_trace sched_report sched_format critical_path
    whatif critpath_format =
  setup_telemetry ~trace ~metrics ~metrics_format;
  (* The ring recorder behind --domain-trace / --sched-report /
     --critical-path; absent (zero-cost in the executor) unless one of
     them asked for it. *)
  let dtrace =
    if
      exec_mode = `Domains
      && (domain_trace <> None || sched_report || critical_path <> None)
    then Some (Domexec.Domtrace.create ())
    else None
  in
  if campaign then begin
    let entries =
      Harness.Campaign.run
        ~threads:(if threads > 1 then threads else 2)
        ~exec:exec_mode ?domains ?chunk
        ~force:(domains <> None)
        ~retry ~watchdog_ms
        ?workloads:
          (Option.map (fun w -> [ Workloads.Registry.find w ]) workload)
        ()
    in
    print_string (Harness.Campaign.table entries);
    (match campaign_json with
    | Some path ->
      let oc = open_out_bin path in
      output_string oc
        (Telemetry.Json.to_string (Harness.Campaign.to_json entries));
      output_char oc '\n';
      close_out oc;
      Printf.printf "campaign JSON -> %s\n" path
    | None -> ());
    if not (List.for_all Harness.Campaign.entry_safe entries) then exit 1
  end
  else begin
  let file, src = load_source input workload in
  let prog =
    Telemetry.Span.wall "phase.parse" (fun () ->
        Minic.Typecheck.parse_and_check ~file src)
  in
  let lids = prog.Minic.Ast.parallel_loops in
  if lids = [] then begin
    prerr_endline "no #pragma parallel loop found";
    exit 1
  end;
  let analyses = List.map (Privatize.Analyze.analyze prog) lids in
  if ladder then
    run_ladder ~threads ~seed ~exec_mode ~domains ~chunk ~retry ~watchdog_ms
      ~file ~dtrace ~domain_trace ~sched_report ~sched_format prog analyses
      fault
  else if dump_deps then
    List.iter
      (fun (a : Privatize.Analyze.result) ->
        print_string
          (Depgraph.Graph.to_string
             a.Privatize.Analyze.profile.Depgraph.Profiler.graph))
      analyses
  else if report then
    List.iter
      (fun (a : Privatize.Analyze.result) ->
        let c = a.Privatize.Analyze.classification in
        let g = c.Privatize.Classify.graph in
        Printf.printf "loop %d in %s: %s\n" g.Depgraph.Graph.loop
          a.Privatize.Analyze.loop_fun.Minic.Ast.fname
          (match Privatize.Classify.parallelism_kind c with
          | `Doall -> "DOALL"
          | `Doacross -> "DOACROSS");
        Printf.printf "  induction variables: %s\n"
          (String.concat ", " a.Privatize.Analyze.induction_vars);
        List.iter
          (fun (cls, v, reason) ->
            let texts =
              List.filter_map
                (fun aid ->
                  Option.map
                    (fun (s : Depgraph.Graph.site) ->
                      Printf.sprintf "%s%s"
                        (match s.Depgraph.Graph.s_kind with
                        | Minic.Visit.Load -> ""
                        | Minic.Visit.Store -> "=")
                        s.Depgraph.Graph.s_text)
                    (Depgraph.Graph.site g aid))
                cls
            in
            Printf.printf "  class [%s] -> %s (%s)\n"
              (String.concat "; " texts)
              (Privatize.Classify.show_verdict v)
              (Privatize.Classify.show_reason reason))
          c.Privatize.Classify.classes;
        let ordered = Privatize.Classify.ordered_channels c in
        if ordered <> [] then begin
          Printf.printf "  ordered channels:\n";
          List.iter
            (fun (aid, chan, w) ->
              match Depgraph.Graph.site g aid with
              | Some s ->
                Printf.printf "    chan %d: %s%s\n" chan
                  (if w then "store " else "load ")
                  s.Depgraph.Graph.s_text
              | None -> ())
            ordered
        end)
      analyses
  else begin
    let res =
      Expand.Transform.expand_loops ~selective:(not unselective)
        ~optimize:(not no_opt) prog analyses
    in
    if explain then print_explain ~format:explain_format ~file analyses res;
    Option.iter (write_heatmap ~threads ~file analyses res) heatmap;
    if exec_mode = `Domains then
      run_domains ~domains ~chunk ~retry ~watchdog_ms ~seed ~fault_spec:fault
        ~file ~dtrace ~domain_trace ~sched_report ~sched_format ~critical_path
        ~whatif ~critpath_format prog res lids
    else if check then begin
      let code0, out0 = Interp.Machine.run_program prog in
      let m = Interp.Machine.load res.Expand.Transform.transformed in
      Interp.Machine.set_global_int m.Interp.Machine.st "__nthreads"
        (max threads 1);
      let code1 = Interp.Machine.run m in
      let out1 = Interp.Machine.output m.Interp.Machine.st in
      Printf.printf "privatized structures: %d\n"
        res.Expand.Transform.privatized;
      Printf.printf "sequential: exit %d/%d, output %s\n" code0 code1
        (if String.equal out0 out1 then "identical" else "DIFFERS");
      if threads > 1 then begin
        let specs = List.map Parexec.Sim.spec_of_analysis analyses in
        let seq = Parexec.Sim.run_sequential prog lids in
        let attach =
          if guard then begin
            let oracle = Guard.Contract.oracle_of prog analyses in
            let plan = res.Expand.Transform.plan in
            fun m ->
              ignore (Guard.Span_guard.attach plan m);
              ignore (Guard.Contract.attach oracle plan m)
          end
          else fun _ -> ()
        in
        let pr =
          match
            Parexec.Sim.run_parallel ~attach res.Expand.Transform.transformed
              specs ~threads
          with
          | exception Guard.Violation.Violation v ->
            Printf.printf "guard tripped: %s\n" (Guard.Violation.to_string v);
            exit 1
          | pr -> pr
        in
        let ok = String.equal pr.Parexec.Sim.pr_output out0 in
        let lsum l = List.fold_left (fun a (_, c) -> a + c) 0 l in
        let loop_speedup =
          float_of_int (lsum seq.Parexec.Sim.sq_loop)
          /. float_of_int (lsum pr.Parexec.Sim.pr_loop)
        and total_speedup =
          float_of_int seq.Parexec.Sim.sq_total
          /. float_of_int pr.Parexec.Sim.pr_total
        in
        metrics_row_stash :=
          Some
            {
              Report.Tables.m_workload = file;
              m_threads = threads;
              m_loop_speedup = loop_speedup;
              m_total_speedup = total_speedup;
              m_breakdown = Harness.Bench_run.breakdown_of ~seq ~par:pr;
            };
        Printf.printf
          "parallel T=%d: output %s, loop speedup %.2fx, total %.2fx\n"
          threads
          (if ok then "identical" else "DIFFERS")
          loop_speedup total_speedup
      end;
      if not (String.equal out0 out1) then exit 1
    end
    else if not explain && heatmap = None then
      print_string
        (Minic.Pretty.program_to_string res.Expand.Transform.transformed)
  end
  end

let cmd =
  let doc = "general data structure expansion for multi-threading" in
  Cmd.v
    (Cmd.info "dsexpand" ~doc)
    Term.(
      const run $ input_arg $ workload_arg $ dump_deps_arg $ report_arg
      $ check_arg $ threads_arg $ no_opt_arg $ unselective_arg $ guard_arg
      $ ladder_arg $ fault_arg $ seed_arg $ campaign_arg $ campaign_json_arg
      $ trace_arg $ metrics_arg $ metrics_format_arg $ explain_arg
      $ explain_format_arg $ heatmap_arg $ exec_arg $ domains_arg $ chunk_arg
      $ retry_arg $ watchdog_ms_arg $ domain_trace_arg $ sched_report_arg
      $ sched_format_arg $ critical_path_arg $ whatif_arg
      $ critpath_format_arg)

let () = exit (Cmd.eval cmd)
