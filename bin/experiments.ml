(** experiments — regenerate the paper's evaluation tables and figures.

    Usage:
      experiments                     run everything
      experiments fig11 table5 ...    run selected artifacts
      experiments --benchmark md5     restrict to one benchmark
      experiments --list              list artifact names *)

let known =
  [
    "table4"; "table5"; "fig8"; "fig9a"; "fig9b"; "fig10"; "fig11"; "fig12";
    "fig13"; "fig14"; "metrics"; "heatmap"; "domexec"; "domtrace"; "critpath";
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--list" args then begin
    List.iter print_endline known;
    exit 0
  end;
  let rec parse sel bench = function
    | [] -> (sel, bench)
    | "--benchmark" :: b :: rest | "-b" :: b :: rest -> parse sel (Some b) rest
    | a :: rest when List.mem a known -> parse (a :: sel) bench rest
    | a :: _ ->
      Printf.eprintf "unknown argument '%s' (artifacts: %s)\n" a
        (String.concat ", " known);
      exit 2
  in
  let selected, bench_filter = parse [] None args in
  let selected = if selected = [] then known else List.rev selected in
  let workloads =
    match bench_filter with
    | None -> Workloads.Registry.all
    | Some b -> [ Workloads.Registry.find b ]
  in
  Printf.printf "loading %d benchmark(s)...\n%!" (List.length workloads);
  let benches =
    List.map
      (fun w ->
        Printf.printf "  %s\n%!" w.Workloads.Workload.name;
        Harness.Bench_run.load w)
      workloads
  in
  let all = Harness.Figures.all benches in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some thunk ->
        print_newline ();
        print_string (thunk ());
        print_newline ()
      | None -> ())
    selected
