(* Benchmark harness.

   Two parts:

   1. Bechamel micro-benchmarks of the toolchain itself — one
      Test.make per pipeline stage and one per paper table/figure
      (each staged function regenerates that artifact for a fast
      benchmark, md5, so timings stay in the milliseconds range).

   2. The full evaluation reproduction: every table and figure of the
      paper regenerated over all eight benchmarks, printed in order.
      This is the part EXPERIMENTS.md's numbers come from; it is also
      available selectively via `dune exec bin/experiments.exe`. *)

open Bechamel
open Toolkit

let md5_workload = Workloads.Registry.find "md5"

(* Shared pipeline state for the staged functions (computed once). *)
let md5_prog =
  Minic.Typecheck.parse_and_check ~file:"md5"
    md5_workload.Workloads.Workload.source

let md5_lid = List.hd md5_prog.Minic.Ast.parallel_loops
let md5_analysis = Privatize.Analyze.analyze md5_prog md5_lid

let stage_tests =
  [
    Test.make ~name:"stage:parse+check"
      (Staged.stage (fun () ->
           ignore
             (Minic.Typecheck.parse_and_check ~file:"md5"
                md5_workload.Workloads.Workload.source)));
    Test.make ~name:"stage:profile-deps"
      (Staged.stage (fun () ->
           ignore (Depgraph.Profiler.profile md5_prog md5_lid)));
    Test.make ~name:"stage:classify"
      (Staged.stage (fun () ->
           ignore
             (Privatize.Classify.classify
                md5_analysis.Privatize.Analyze.profile.Depgraph.Profiler.graph)));
    Test.make ~name:"stage:alias-analysis"
      (Staged.stage (fun () -> ignore (Alias.Andersen.analyze md5_prog)));
    Test.make ~name:"stage:expand"
      (Staged.stage (fun () ->
           ignore (Expand.Transform.expand md5_prog md5_analysis)));
    Test.make ~name:"stage:expand-unoptimized"
      (Staged.stage (fun () ->
           ignore
             (Expand.Transform.expand ~selective:false ~optimize:false
                md5_prog md5_analysis)));
    Test.make ~name:"stage:interpret-original"
      (Staged.stage (fun () -> ignore (Interp.Machine.run_program md5_prog)));
  ]

(* One staged regeneration per paper artifact, on the fast benchmark. *)
let artifact_tests =
  let bench = Harness.Bench_run.load md5_workload in
  let benches = [ bench ] in
  List.map
    (fun (name, thunk) ->
      Test.make ~name:("artifact:" ^ name)
        (Staged.stage (fun () -> ignore (thunk ()))))
    (Harness.Figures.all benches)

let benchmark tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 50) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Analyze.merge ols instances [ results ]

let print_results results =
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let rect = window in
  let results =
    Bechamel_notty.Multiple.image_of_ols_results ~rect
      ~predictor:Measure.run results
  in
  Notty_unix.eol results |> Notty_unix.output_image

(* Per-test OLS run-cost estimates (ns), flattened over measures. *)
let estimates_of results : (string * float) list =
  Hashtbl.fold
    (fun _measure tbl acc ->
      Hashtbl.fold
        (fun name ols acc ->
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> (name, e) :: acc
          | _ -> acc)
        tbl acc)
    results []
  |> List.sort compare

(* Deterministic simulated-cycle metrics per workload. The regression
   gate compares these — bechamel nanoseconds are machine-dependent
   noise, simulator cycles are reproducible to the last digit. *)
let cycles_of (b : Harness.Bench_run.t) : (string * int) list =
  let seq = Harness.Bench_run.seq b in
  ("seq_total", seq.Parexec.Sim.sq_total)
  :: ("seq_loop", Harness.Bench_run.loop_cycles_seq b)
  :: List.concat_map
       (fun t ->
         let p = Harness.Bench_run.par b ~threads:t in
         [
           ( Printf.sprintf "par_loop@%d" t,
             Harness.Bench_run.loop_cycles_par b ~threads:t );
           (Printf.sprintf "par_total@%d" t, p.Parexec.Sim.pr_total);
         ])
       Harness.Bench_run.thread_counts

let bench_name (b : Harness.Bench_run.t) =
  b.Harness.Bench_run.workload.Workloads.Workload.name

let cycles_json (b : Harness.Bench_run.t) : Telemetry.Json.t =
  Telemetry.Json.Obj
    (List.map (fun (k, v) -> (k, Telemetry.Json.Int v)) (cycles_of b))

(* Wall-clock measurement on real domains: median-of-3 speedups at the
   gated domain counts, next to the host's core count (the numbers are
   only comparable between hosts with at least as many cores). *)
let wall_domains =
  List.filter (fun d -> d <= 4) Harness.Bench_run.thread_counts

let wall_repeats = 3

let wall_of (b : Harness.Bench_run.t) : (int * Harness.Bench_run.wall_result) list =
  List.map
    (fun d -> (d, Harness.Bench_run.wall ~repeats:wall_repeats b ~domains:d))
    wall_domains

let wall_json (b : Harness.Bench_run.t) : Telemetry.Json.t =
  let open Telemetry.Json in
  Obj
    [
      ("available", Int (Domexec.Exec.available_domains ()));
      ("repeats", Int wall_repeats);
      ( "speedup",
        Obj
          (List.map
             (fun (d, wr) ->
               (string_of_int d, Float wr.Harness.Bench_run.wr_speedup))
             (wall_of b)) );
    ]

(* Scheduler-health metrics from one traced run per domain count: the
   analyzer's report (utilization, steal success, imbalance, GC share)
   keyed by domain count, so CI trending can watch scheduler behavior
   alongside the raw speedups. Traced runs are separate from the timed
   wall samples — ring instrumentation never contaminates a timing. *)
let sched_json (b : Harness.Bench_run.t) : Telemetry.Json.t =
  Telemetry.Json.Obj
    (List.map
       (fun d ->
         ( string_of_int d,
           Domexec.Domtrace.Sched_report.to_json
             (Harness.Bench_run.sched b ~domains:d) ))
       wall_domains)

(* Critical-path summaries from the same traced runs sched_json draws
   on: the cycle-model and measured speedups plus the dominant
   critical-path segment class, keyed by domain count. The full
   artifact (per-class breakdown, what-if table) is `dsexpand
   --critical-path`'s output; this is the trend-friendly digest. *)
let critpath_json (b : Harness.Bench_run.t) : Telemetry.Json.t =
  let open Telemetry.Json in
  let seq_cycles = Harness.Bench_run.seq_interp_cycles b in
  let seq_ns = Harness.Bench_run.wall_seq b in
  Obj
    (List.map
       (fun d ->
         let p = Harness.Bench_run.critpath b ~domains:d in
         let cls, share = Domexec.Critpath.dominant p in
         ( string_of_int d,
           Obj
             [
               ( "model_speedup",
                 Float (Domexec.Critpath.model_speedup p ~seq_cycles) );
               ( "measured_speedup",
                 Float (Domexec.Critpath.measured_speedup p ~seq_ns) );
               ("dominant", Str cls);
               ("dominant_share", Float share);
               ("wall_ns", Float (Domexec.Critpath.wall_ns p));
             ] ))
       wall_domains)

(* Machine-readable results for CI trending; the schema is documented
   in EXPERIMENTS.md ("dsexpand-bench/5"). *)
let results_json ~fast ~stages ~artifacts (benches : Harness.Bench_run.t list)
    : Telemetry.Json.t =
  let open Telemetry.Json in
  let ns_obj kvs = Obj (List.map (fun (k, v) -> (k, Float v)) kvs) in
  let at_threads f ts =
    Obj (List.map (fun t -> (string_of_int t, Float (f ~threads:t))) ts)
  in
  let workload (b : Harness.Bench_run.t) =
    Obj
      [
        ("name", Str (bench_name b));
        ("cycles", cycles_json b);
        ( "loop_speedup",
          at_threads
            (fun ~threads -> Harness.Bench_run.loop_speedup b ~threads)
            Harness.Bench_run.thread_counts );
        ( "total_speedup",
          at_threads
            (fun ~threads -> Harness.Bench_run.total_speedup b ~threads)
            Harness.Bench_run.thread_counts );
        ("wall", wall_json b);
        ("sched", sched_json b);
        ("critpath", critpath_json b);
        ( "memory_multiple",
          at_threads
            (fun ~threads -> Harness.Bench_run.memory_multiple b ~threads)
            [ 4; 8 ] );
      ]
  in
  Obj
    [
      ("schema", Str "dsexpand-bench/5");
      ("fast", Bool fast);
      ("stages_ns", ns_obj stages);
      ("artifacts_ns", ns_obj artifacts);
      ("workloads", List (List.map workload benches));
    ]

(* The checked-in baseline (bench/BASELINE.json): deterministic cycles
   plus median-of-N wall-clock speedups. Cycles never change unless
   simulated behavior does; wall entries carry the recording host's
   core count, and the gate only compares them on hosts with at least
   as many cores. *)
let baseline_json (benches : Harness.Bench_run.t list) : Telemetry.Json.t =
  let open Telemetry.Json in
  Obj
    [
      ("schema", Str "dsexpand-bench/5");
      ( "workloads",
        List
          (List.map
             (fun b ->
               Obj
                 [
                   ("name", Str (bench_name b));
                   ("cycles", cycles_json b);
                   ("wall", wall_json b);
                 ])
             benches) );
    ]

(* ------------------------------------------------------------------ *)
(* Persistent history (`--record` / `--history`)                       *)
(* ------------------------------------------------------------------ *)

let history_file = "bench/HISTORY.jsonl"

(* Flatten one run into the history's metric-key -> value pairs. Key
   naming carries the analyzer's comparison semantics (see
   Harness.History): "/cycles/" keys gate tight (deterministic),
   "speedup" keys gate loose (host noise), and the critpath digest
   keys are deliberately named so they stay informational — a traced
   run's measured speedup is noisier than the clean wall samples and
   should be trended, not gated. *)
let history_metrics (benches : Harness.Bench_run.t list) :
    (string * float) list =
  List.concat_map
    (fun b ->
      let name = bench_name b in
      let cyc =
        List.map
          (fun (k, v) ->
            (Printf.sprintf "%s/cycles/%s" name k, float_of_int v))
          (cycles_of b)
      in
      let wall =
        List.map
          (fun (d, wr) ->
            ( Printf.sprintf "%s/wall@%d/speedup" name d,
              wr.Harness.Bench_run.wr_speedup ))
          (wall_of b)
      in
      let seq_cycles = Harness.Bench_run.seq_interp_cycles b in
      let seq_ns = Harness.Bench_run.wall_seq b in
      let crit =
        List.concat_map
          (fun d ->
            let p = Harness.Bench_run.critpath b ~domains:d in
            let _, share = Domexec.Critpath.dominant p in
            [
              ( Printf.sprintf "%s/critpath@%d/model" name d,
                Domexec.Critpath.model_speedup p ~seq_cycles );
              ( Printf.sprintf "%s/critpath@%d/measured" name d,
                Domexec.Critpath.measured_speedup p ~seq_ns );
              (Printf.sprintf "%s/critpath@%d/dominant_share" name d, share);
            ])
          wall_domains
      in
      cyc @ wall @ crit)
    benches

let read_file file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_json file json =
  let oc = open_out file in
  output_string oc (Telemetry.Json.to_string json);
  output_char oc '\n';
  close_out oc

let update_hint = "hint: `bench --update-baseline` refreshes bench/BASELINE.json"

(* The regression gate, two halves:

   - cycles: every metric present in both the baseline and this run
     may grow by at most 15% (deterministic, so this is tight);
   - wall clock: the median-of-N speedup on real domains may fall by
     at most 35% (hosts are noisy, so this is loose). Wall entries
     are only comparable on hosts with at least as many cores as the
     recording host; on smaller hosts they are skipped with a logged
     reason.

   Returns the number of regressions. Accepts both BENCH_results.json
   and the reduced baseline file (each has workloads[].name/.cycles,
   and workloads[].wall since dsexpand-bench/3). A workload or key
   missing from the baseline is not a failure: it is reported with a
   one-line hint to refresh the baseline. *)
let compare_against ~file (benches : Harness.Bench_run.t list) : int =
  let tolerance = 0.15 in
  let wall_tolerance = 0.35 in
  let base = Telemetry.Json.of_string_exn (read_file file) in
  let base_workloads =
    match Telemetry.Json.member "workloads" base with
    | Some (Telemetry.Json.List l) -> l
    | _ ->
      Printf.eprintf "%s: no \"workloads\" array\n" file;
      exit 2
  in
  let base_entry name field =
    List.find_map
      (fun w ->
        match Telemetry.Json.member "name" w with
        | Some (Telemetry.Json.Str n) when n = name ->
          Telemetry.Json.member field w
        | _ -> None)
      base_workloads
  in
  let regressions = ref 0 in
  let stale = ref false in
  Printf.printf
    "== regression gate vs %s (cycles %+.0f%%, wall %+.0f%%) ==\n" file
    (tolerance *. 100.)
    (wall_tolerance *. 100.);
  List.iter
    (fun b ->
      let name = bench_name b in
      (match base_entry name "cycles" with
      | None ->
        stale := true;
        Printf.printf "%-16s not in baseline, skipped\n" name
      | Some base_obj ->
        List.iter
          (fun (metric, cur) ->
            match Telemetry.Json.member metric base_obj with
            | Some (Telemetry.Json.Int bv) ->
              let worse =
                if bv = 0 then cur > 0
                else
                  float_of_int cur
                  > float_of_int bv *. (1. +. tolerance)
              in
              let delta =
                if bv = 0 then 0.
                else (float_of_int cur /. float_of_int bv -. 1.) *. 100.
              in
              if worse then incr regressions;
              Printf.printf "%-16s %-12s %12d -> %12d  %+6.1f%%%s\n" name
                metric bv cur delta
                (if worse then "  REGRESSION" else "")
            | _ ->
              stale := true;
              Printf.printf "%-16s %-12s not in baseline, skipped\n" name
                metric)
          (cycles_of b));
      match base_entry name "wall" with
      | None ->
        stale := true;
        Printf.printf "%-16s wall         not in baseline, skipped\n" name
      | Some wall_obj -> (
        let base_avail =
          match Telemetry.Json.member "available" wall_obj with
          | Some (Telemetry.Json.Int a) -> a
          | _ -> 1
        in
        let here = Domexec.Exec.available_domains () in
        if here < base_avail then
          Printf.printf
            "%-16s wall         skipped: host has %d core(s), baseline \
             recorded on %d\n"
            name here base_avail
        else
          match Telemetry.Json.member "speedup" wall_obj with
          | Some (Telemetry.Json.Obj kvs) ->
            List.iter
              (fun (d, wr) ->
                let metric = Printf.sprintf "wall@%d" d in
                match List.assoc_opt (string_of_int d) kvs with
                | Some (Telemetry.Json.Float bv) ->
                  let cur = wr.Harness.Bench_run.wr_speedup in
                  let worse = cur < bv *. (1. -. wall_tolerance) in
                  if worse then incr regressions;
                  Printf.printf "%-16s %-12s %11.2fx -> %11.2fx  %+6.1f%%%s\n"
                    name metric bv cur
                    ((cur /. bv -. 1.) *. 100.)
                    (if worse then "  REGRESSION" else "")
                | _ ->
                  stale := true;
                  Printf.printf "%-16s %-12s not in baseline, skipped\n" name
                    metric)
              (wall_of b)
          | _ ->
            stale := true;
            Printf.printf "%-16s wall speedups not in baseline, skipped\n"
              name))
    benches;
  if !stale then print_endline update_hint;
  !regressions

(* Fault-free supervision overhead: the supervised executor may cost
   at most 5% (plus 2 ms of fixed slack, for sub-millisecond loops)
   over the raw one on the same domain count, both medians of the same
   repeat count. Part of --compare, so an expensive supervisor counts
   as a regression. *)
let supervisor_overhead_check (benches : Harness.Bench_run.t list) : int =
  let repeats = 3 in
  (* force:true — the parallel scheduler path is what is being costed,
     and it is correct (just not faster) on any core count *)
  let domains = 2 in
  let regressions = ref 0 in
  Printf.printf
    "\n== supervisor overhead (fault-free, domains=%d, limit +5%% / +2 ms) ==\n"
    domains;
  List.iter
    (fun (b : Harness.Bench_run.t) ->
      let prog = b.Harness.Bench_run.expanded.Expand.Transform.transformed in
      let plan = b.Harness.Bench_run.expanded.Expand.Transform.plan in
      let lids = b.Harness.Bench_run.lids in
      let raw_run () =
        (Domexec.Exec.run ~domains ~force:true prog plan lids)
          .Domexec.Exec.dx_wall_ns
      in
      let sup_run () =
        match
          (Domexec.Supervisor.run ~domains ~force:true prog plan lids)
            .Domexec.Supervisor.sup_result
        with
        | Some r -> r.Domexec.Exec.dx_wall_ns
        | None -> infinity
      in
      (* interleave the pairs and take minima: host noise drifts over
         seconds, so back-to-back batches would compare two different
         machines; the min of N is the least-disturbed run of each *)
      let raw = ref infinity and sup = ref infinity in
      for _ = 1 to repeats do
        raw := Float.min !raw (raw_run ());
        sup := Float.min !sup (sup_run ())
      done;
      let raw = !raw and sup = !sup in
      let limit = (raw *. 1.05) +. 2e6 in
      let worse = sup > limit in
      if worse then incr regressions;
      Printf.printf "%-16s raw %8.2f ms, supervised %8.2f ms  %+6.1f%%%s\n"
        (bench_name b) (raw /. 1e6) (sup /. 1e6)
        ((sup /. raw -. 1.) *. 100.)
        (if worse then "  REGRESSION" else ""))
    benches;
  !regressions

(* Ring instrumentation overhead: a domain run with a Domtrace recorder
   attached may cost at most 5% (plus 2 ms of fixed slack, for
   sub-millisecond loops) over an untraced run on the same domain
   count. Part of --compare, so the always-available observability
   path can never quietly become expensive. *)
let domtrace_overhead_check (benches : Harness.Bench_run.t list) : int =
  let repeats = 5 in
  (* force:true — same rationale as the supervisor check: the parallel
     scheduler path is what emits events, and it is correct on any
     core count *)
  let domains = 2 in
  let regressions = ref 0 in
  Printf.printf
    "\n== domtrace ring overhead (domains=%d, limit +5%% / +2 ms) ==\n" domains;
  List.iter
    (fun (b : Harness.Bench_run.t) ->
      let prog = b.Harness.Bench_run.expanded.Expand.Transform.transformed in
      let plan = b.Harness.Bench_run.expanded.Expand.Transform.plan in
      let lids = b.Harness.Bench_run.lids in
      let raw_run () =
        (Domexec.Exec.run ~domains ~force:true prog plan lids)
          .Domexec.Exec.dx_wall_ns
      in
      let traced_run () =
        let tr = Domexec.Domtrace.create () in
        (Domexec.Exec.run ~domains ~force:true ~trace:tr prog plan lids)
          .Domexec.Exec.dx_wall_ns
      in
      (* Paired deltas, not independent minima: this check runs at the
         end of a long process whose heap state drifts and whose host
         sees multi-second noise bursts, so the two configurations'
         minima can come from different machines, effectively. Two
         back-to-back runs share host state, so the per-pair delta
         cancels the drift; the min over pairs is the least-disturbed
         estimate of what tracing itself costs. Compact before each
         pair so neither member pays the previous pair's GC debt. *)
      let raw = ref infinity and delta = ref infinity in
      for _ = 1 to repeats do
        Gc.compact ();
        let r = raw_run () in
        let t = traced_run () in
        raw := Float.min !raw r;
        delta := Float.min !delta (t -. r)
      done;
      let raw = !raw and delta = !delta in
      let limit = (raw *. 0.05) +. 2e6 in
      let worse = delta > limit in
      if worse then incr regressions;
      Printf.printf "%-16s raw %8.2f ms, tracing delta %+8.2f ms  %+6.1f%%%s\n"
        (bench_name b) (raw /. 1e6) (delta /. 1e6)
        (delta /. raw *. 100.)
        (if worse then "  REGRESSION" else ""))
    benches;
  !regressions

let () =
  let argv = Array.to_list Sys.argv in
  let fast = List.mem "--fast" argv in
  let rec arg_of flag = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> arg_of flag rest
    | [] -> None
  in
  let workloads_for () =
    if fast then [ md5_workload ] else Workloads.Registry.all
  in
  (* --compare / --write-baseline run only the deterministic cycle
     metrics: no bechamel, no artifact regeneration *)
  (match arg_of "--compare" argv with
  | Some file ->
    let benches = List.map Harness.Bench_run.load (workloads_for ()) in
    (* explicit lets: OCaml evaluates [+] right-to-left, which would
       print the report sections in reverse *)
    let cycles_reg = compare_against ~file benches in
    let sup_reg = supervisor_overhead_check benches in
    let ring_reg = domtrace_overhead_check benches in
    let regressions = cycles_reg + sup_reg + ring_reg in
    if regressions > 0 then begin
      Printf.printf "%d metric(s) regressed beyond tolerance\n" regressions;
      exit 1
    end
    else begin
      print_endline "no cycle regressions";
      exit 0
    end
  | None -> ());
  (match arg_of "--write-baseline" argv with
  | Some file ->
    let benches = List.map Harness.Bench_run.load (workloads_for ()) in
    write_json file (baseline_json benches);
    Printf.printf "wrote %s\n" file;
    exit 0
  | None -> ());
  (* --update-baseline: refresh the checked-in baseline in place (the
     file compare's "not in baseline" hint points at) *)
  if List.mem "--update-baseline" argv then begin
    let file =
      match arg_of "--update-baseline" argv with
      | Some v when String.length v > 0 && v.[0] <> '-' -> v
      | _ -> "bench/BASELINE.json"
    in
    let benches = List.map Harness.Bench_run.load (workloads_for ()) in
    write_json file (baseline_json benches);
    Printf.printf "updated %s\n" file;
    exit 0
  end;
  (* --record: append this run's metrics to the persistent history
     (bench/HISTORY.jsonl) — deterministic cycles, wall speedups and
     the critpath digest; no bechamel, no artifact regeneration *)
  if List.mem "--record" argv then begin
    let file =
      Option.value (arg_of "--history-file" argv) ~default:history_file
    in
    let benches = List.map Harness.Bench_run.load (workloads_for ()) in
    let entry =
      {
        Harness.History.h_time = Unix.gettimeofday ();
        h_rev = Harness.History.git_rev ();
        h_domains = Domain.recommended_domain_count ();
        h_config = (if fast then "fast" else "full");
        h_metrics = history_metrics benches;
      }
    in
    Harness.History.append ~file entry;
    Printf.printf "recorded %d metric(s) to %s (rev %s, config %s)\n"
      (List.length entry.Harness.History.h_metrics)
      file entry.Harness.History.h_rev entry.Harness.History.h_config;
    exit 0
  end;
  (* --history: trend/changepoint report over the recorded runs; exits
     non-zero when the latest run regressed a gated metric *)
  if List.mem "--history" argv then begin
    let file =
      Option.value (arg_of "--history-file" argv) ~default:history_file
    in
    let entries = Harness.History.load ~file in
    if entries = [] then begin
      Printf.printf "no history at %s (record one with `bench --record`)\n"
        file;
      exit 0
    end;
    let series = Harness.History.analyze entries in
    print_string (Harness.History.render entries series);
    exit (if Harness.History.regressions series > 0 then 1 else 0)
  end;
  Bechamel_notty.Unit.add Instance.monotonic_clock
    (Measure.unit Instance.monotonic_clock);
  print_endline "== toolchain stage micro-benchmarks (bechamel) ==";
  let stage_results =
    benchmark (Test.make_grouped ~name:"stages" ~fmt:"%s %s" stage_tests)
  in
  print_results stage_results;
  print_endline "";
  print_endline "== per-artifact regeneration timings on md5 (bechamel) ==";
  let artifact_results =
    benchmark (Test.make_grouped ~name:"artifacts" ~fmt:"%s %s" artifact_tests)
  in
  print_results artifact_results;
  print_newline ();
  Printf.printf "== full evaluation: all tables and figures, %s ==\n"
    (if fast then "md5 only (--fast)" else "all benchmarks");
  let benches = List.map Harness.Bench_run.load (workloads_for ()) in
  List.iter
    (fun (name, thunk) ->
      Printf.printf "\n--- %s ---\n%!" name;
      print_string (thunk ()))
    (Harness.Figures.all benches);
  let json =
    results_json ~fast
      ~stages:(estimates_of stage_results)
      ~artifacts:(estimates_of artifact_results)
      benches
  in
  let oc = open_out "BENCH_results.json" in
  output_string oc (Telemetry.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_newline ();
  print_endline "wrote BENCH_results.json"
