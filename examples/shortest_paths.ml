(* Domain scenario: parallelizing a batch of shortest-path queries.

   This is the workload that motivates the paper's introduction: each
   query manipulates a linked-list priority queue and annotates the
   graph, so no traditional array privatization applies. The example
   loads the bundled dijkstra benchmark, walks through what the
   pipeline discovered, and reports the simulated scaling.

     dune exec examples/shortest_paths.exe *)

let () =
  let w = Workloads.Registry.find "dijkstra" in
  let prog =
    Minic.Typecheck.parse_and_check ~file:"dijkstra"
      w.Workloads.Workload.source
  in
  let lid = List.hd prog.Minic.Ast.parallel_loops in
  let analysis = Privatize.Analyze.analyze prog lid in
  let g = analysis.Privatize.Analyze.profile.Depgraph.Profiler.graph in

  Printf.printf "queries profiled : %d loop iterations\n"
    g.Depgraph.Graph.iterations;
  Printf.printf "access sites     : %d\n" (List.length g.Depgraph.Graph.sites);
  Printf.printf "dependence edges : %d\n"
    (List.length (Depgraph.Graph.edges g));

  let c = analysis.Privatize.Analyze.classification in
  let privates =
    List.filter
      (fun (_, v, _) -> v = Privatize.Classify.Private)
      c.Privatize.Classify.classes
  in
  Printf.printf "private classes  : %d of %d\n" (List.length privates)
    (List.length c.Privatize.Classify.classes);

  (* the queue head, its counter and the graph annotations are what
     expansion must replicate; iteration order only matters for the
     result log and checksum *)
  let ordered = Privatize.Classify.ordered_channels c in
  Printf.printf "ordered channels : %d accesses across %d channels\n"
    (List.length ordered)
    (List.length
       (List.sort_uniq compare (List.map (fun (_, ch, _) -> ch) ordered)));

  let result = Expand.Transform.expand prog analysis in
  Printf.printf "privatized       : %d data structures\n\n"
    result.Expand.Transform.privatized;

  let seq = Parexec.Sim.run_sequential prog [ lid ] in
  let spec = Parexec.Sim.spec_of_analysis analysis in
  Printf.printf "%-8s %-14s %-14s %s\n" "threads" "loop speedup"
    "total speedup" "sync cycles";
  List.iter
    (fun threads ->
      let pr =
        Parexec.Sim.run_parallel result.Expand.Transform.transformed [ spec ]
          ~threads
      in
      assert
        (String.equal pr.Parexec.Sim.pr_output seq.Parexec.Sim.sq_output);
      Printf.printf "%-8d %-14.2f %-14.2f %d\n" threads
        (float_of_int (List.assoc lid seq.Parexec.Sim.sq_loop)
        /. float_of_int (List.assoc lid pr.Parexec.Sim.pr_loop))
        (float_of_int seq.Parexec.Sim.sq_total
        /. float_of_int pr.Parexec.Sim.pr_total)
        (Array.fold_left ( + ) 0 pr.Parexec.Sim.pr_sync))
    (1 :: Harness.Bench_run.thread_counts);

  print_newline ();
  Printf.printf "all %d shortest-path results identical to the sequential run\n"
    g.Depgraph.Graph.iterations
