(* Quickstart: privatize and parallelize a loop in five calls.

   A histogram smoothing kernel reuses a global scratch buffer in every
   iteration of its outer loop — a loop-carried anti/output dependence
   that hides the parallelism. The pipeline below profiles the loop,
   classifies its accesses, expands the scratch buffer per thread, and
   simulates the parallel execution.

     dune exec examples/quickstart.exe *)

let source =
  {|
int input[64][128];
int output[64];
int scratch[128];

int main(void)
{
  int row;
  int i;
  for (row = 0; row < 64; row++)
    for (i = 0; i < 128; i++)
      input[row][i] = (row * 131 + i * 17) % 255;

#pragma parallel
  for (row = 0; row < 64; row++) {
    // smooth the row into the shared scratch buffer...
    for (i = 0; i < 128; i++) {
      int left = i > 0 ? input[row][i - 1] : input[row][i];
      int right = i < 127 ? input[row][i + 1] : input[row][i];
      scratch[i] = (left + 2 * input[row][i] + right) / 4;
    }
    // ...then reduce it into this row's slot
    int sum = 0;
    for (i = 0; i < 128; i++) sum += scratch[i];
    output[row] = sum;
  }

  int check = 0;
  for (row = 0; row < 64; row++) check ^= output[row] + row;
  printf("checksum %d\n", check);
  return 0;
}
|}

let () =
  (* 1. parse and type-check *)
  let prog = Minic.Typecheck.parse_and_check ~file:"quickstart" source in
  let lid = List.hd prog.Minic.Ast.parallel_loops in

  (* 2. profile the loop's dependences and classify its accesses *)
  let analysis = Privatize.Analyze.analyze prog lid in
  let classification = analysis.Privatize.Analyze.classification in
  Printf.printf "parallelism: %s\n"
    (match Privatize.Classify.parallelism_kind classification with
    | `Doall -> "DOALL (no cross-thread flow dependence remains)"
    | `Doacross -> "DOACROSS (needs ordered sections)");

  (* 3. expand: every structure touched by thread-private accesses is
     replicated per thread, and accesses are redirected *)
  let result = Expand.Transform.expand prog analysis in
  Printf.printf "privatized data structures: %d\n\n"
    result.Expand.Transform.privatized;
  print_endline "transformed program:";
  print_endline "--------------------";
  print_string
    (Minic.Pretty.program_to_string result.Expand.Transform.transformed);

  (* 4. both programs behave identically... *)
  let _, out_orig = Interp.Machine.run_program prog in
  let m = Interp.Machine.load result.Expand.Transform.transformed in
  Interp.Machine.set_global_int m.Interp.Machine.st "__nthreads" 4;
  ignore (Interp.Machine.run m);
  let out_exp = Interp.Machine.output m.Interp.Machine.st in
  Printf.printf "\noriginal:  %sexpanded:  %s" out_orig out_exp;
  assert (String.equal out_orig out_exp);

  (* 5. ...and the expanded one parallelizes *)
  let seq = Parexec.Sim.run_sequential prog [ lid ] in
  let spec = Parexec.Sim.spec_of_analysis analysis in
  List.iter
    (fun threads ->
      let pr =
        Parexec.Sim.run_parallel result.Expand.Transform.transformed [ spec ]
          ~threads
      in
      assert (String.equal pr.Parexec.Sim.pr_output out_orig);
      Printf.printf "%d thread(s): loop speedup %.2fx\n" threads
        (float_of_int (List.assoc lid seq.Parexec.Sim.sq_loop)
        /. float_of_int (List.assoc lid pr.Parexec.Sim.pr_loop)))
    (1 :: Harness.Bench_run.thread_counts)
