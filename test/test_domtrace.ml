(* Tests for the per-domain event rings and the domtrace recorder:
   ring laws (FIFO order, capacity bound, drop-oldest accounting) via
   qcheck, a live two-domain writer/reader stress against torn reads,
   merge determinism (byte-identical Chrome traces from a race-free
   schedule), and the scheduler-health analyzer — a seeded domain
   stall must flag its victim as the straggler, and fault-free runs of
   every workload must stay below the warning thresholds with balanced
   B/E trace events and zero ring drops. *)

module Ring = Domexec.Ring
module Domtrace = Domexec.Domtrace
module SR = Domexec.Domtrace.Sched_report

(* --- ring laws (qcheck) ------------------------------------------- *)

let kinds =
  [|
    Ring.Run_begin; Ring.Run_end; Ring.Chunk_claim; Ring.Chunk_start;
    Ring.Chunk_finish; Ring.Steal_stolen; Ring.Steal_empty; Ring.Steal_lost;
    Ring.Retry; Ring.Backoff; Ring.Heartbeat; Ring.Poison; Ring.Gc_sample;
    Ring.Merge_begin; Ring.Merge_end;
  |]

let events_arb =
  QCheck.make ~print:(fun (cap, evs) ->
      Printf.sprintf "capacity=%d events=%d" cap (List.length evs))
    QCheck.Gen.(
      pair (int_range 1 70)
        (list_size (int_range 0 300)
           (triple (int_range 0 (Array.length kinds - 1)) small_nat small_nat)))

(* Everything the ring promises about a single-threaded fill-and-drain:
   power-of-two capacity at least the request, exact written/drops
   accounting, and a drain that is exactly the newest [min n cap]
   events in emission order with every field intact. *)
let ring_laws =
  QCheck.Test.make ~count:300 ~name:"ring: FIFO, capacity bound, drop-oldest"
    events_arb
    (fun (cap_req, evs) ->
      let r = Ring.create ~capacity:cap_req ~dom:3 () in
      let cap = Ring.capacity r in
      List.iteri
        (fun i (k, a, b) -> Ring.emit r kinds.(k) ~ts:i ~vt:(i * 2) ~a ~b ~c:(a + b) ())
        evs;
      let n = List.length evs in
      let kept = Ring.drain r in
      let expect =
        List.filteri
          (fun i _ -> i >= n - min n cap)
          (List.mapi (fun i e -> (i, e)) evs)
      in
      cap >= cap_req
      && cap land (cap - 1) = 0
      && Ring.written r = n
      && Ring.drops r = max 0 (n - cap)
      && List.length kept = min n cap
      && List.for_all2
           (fun (i, (k, a, b)) (ev : Ring.event) ->
             ev.Ring.ev_ts = i
             && ev.ev_vt = i * 2
             && ev.ev_kind = kinds.(k)
             && ev.ev_a = a && ev.ev_b = b
             && ev.ev_c = a + b)
           expect kept
      && Ring.drain r = []
      && Ring.read r = None
      && Ring.length r = 0)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ ring_laws ]

(* Forced overflow, deterministically: 100 events into a capacity-16
   ring keep exactly the newest 16 in emission order (fields intact,
   including the virtual timestamp), count the other 84 as drops, and
   leave the written total untouched. *)
let forced_overflow () =
  let r = Ring.create ~capacity:16 ~dom:0 () in
  for i = 0 to 99 do
    Ring.emit r Ring.Heartbeat ~ts:i ~vt:(i * 3) ~a:i ~b:(i + 1) ~c:(i + 2) ()
  done;
  Alcotest.(check int) "capacity honored" 16 (Ring.capacity r);
  Alcotest.(check int) "written counts every emit" 100 (Ring.written r);
  Alcotest.(check int) "drops counted exactly" 84 (Ring.drops r);
  let kept = Ring.drain r in
  Alcotest.(check int) "newest capacity-many kept" 16 (List.length kept);
  List.iteri
    (fun j (ev : Ring.event) ->
      Alcotest.(check int) "newest kept, in order" (84 + j) ev.Ring.ev_ts;
      Alcotest.(check int) "vt survives overflow" ((84 + j) * 3) ev.ev_vt;
      Alcotest.(check int) "payload survives overflow" (84 + j + 2) ev.ev_c)
    kept;
  Alcotest.(check int) "drain does not change drops" 84 (Ring.drops r);
  Alcotest.(check int) "ring empty after drain" 0 (Ring.length r)

(* --- live reader racing the writer -------------------------------- *)

(* A tiny ring under 50k events from another domain, read while the
   writer runs: no event may be observed torn (the fields are tied to
   the timestamp), order stays FIFO, and at the end every written
   event was either read or counted as dropped. *)
let live_stress () =
  let r = Ring.create ~capacity:64 ~dom:1 () in
  let n = 50_000 in
  let writer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          Ring.emit r Ring.Heartbeat ~ts:i ~a:i ~b:(i * 2) ~c:(i * 3) ()
        done)
  in
  let read = ref 0 in
  let last = ref (-1) in
  let check (ev : Ring.event) =
    if
      not
        (ev.Ring.ev_a = ev.ev_ts
        && ev.ev_b = 2 * ev.ev_ts
        && ev.ev_c = 3 * ev.ev_ts)
    then
      Alcotest.failf "torn event: ts=%d a=%d b=%d c=%d" ev.ev_ts ev.ev_a
        ev.ev_b ev.ev_c;
    if ev.ev_ts <= !last then
      Alcotest.failf "FIFO violated: ts=%d after ts=%d" ev.ev_ts !last;
    last := ev.ev_ts;
    incr read
  in
  let rec race () =
    match Ring.read r with
    | Some ev ->
      check ev;
      race ()
    | None ->
      if Ring.written r < n then begin
        Domain.cpu_relax ();
        race ()
      end
  in
  race ();
  Domain.join writer;
  List.iter check (Ring.drain r);
  Alcotest.(check int) "every event read or dropped" n (!read + Ring.drops r);
  Alcotest.(check int) "ring empty" 0 (Ring.length r)

(* --- traced executor runs ----------------------------------------- *)

let md5 = lazy (Harness.Bench_run.load (Workloads.Registry.find "md5"))

let traced_run ?gc ?capacity ?chunk (b : Harness.Bench_run.t) =
  let oracle = Lazy.force b.Harness.Bench_run.contract_oracle in
  let plan = b.Harness.Bench_run.expanded.Expand.Transform.plan in
  let tr = Domtrace.create ?gc ?capacity () in
  let r =
    Domexec.Exec.run ~domains:2 ~force:true ?chunk ~trace:tr
      b.Harness.Bench_run.expanded.Expand.Transform.transformed plan
      b.Harness.Bench_run.lids
  in
  Alcotest.(check string)
    "traced run: output byte-identical" oracle.Guard.Contract.o_output
    r.Domexec.Exec.dx_output;
  tr

(* Merge determinism: a single-chunk schedule is race-free (the only
   chunk is home-owned, a thief's one probe is refused by the
   steal-ahead predicate), so with GC sampling off two runs record the
   same event sequences and must export byte-identical traces. *)
let identical_traces () =
  let export () =
    let tr = traced_run ~gc:false ~chunk:1_000_000 (Lazy.force md5) in
    Telemetry.Chrome_trace.export (Domtrace.to_chrome tr)
  in
  let t1 = export () in
  let t2 = export () in
  Alcotest.(check bool) "trace is non-trivial" true (String.length t1 > 200);
  Alcotest.(check string) "byte-identical across runs" t1 t2

(* Chrome B/E discipline of an exported trace: globally balanced and
   properly nested per (pid, tid) — an E never fires with no span
   open, and nothing is left open at the end. *)
let check_balance name (trace : string) =
  let j = Telemetry.Json.of_string_exn trace in
  let evs =
    match Telemetry.Json.member "traceEvents" j with
    | Some (Telemetry.Json.List l) -> l
    | _ -> Alcotest.failf "%s: no traceEvents array" name
  in
  let depth = Hashtbl.create 8 in
  let bcount = ref 0 in
  let ecount = ref 0 in
  List.iter
    (fun e ->
      let str k =
        match Telemetry.Json.member k e with
        | Some (Telemetry.Json.Str s) -> s
        | _ -> ""
      in
      let int k =
        match Telemetry.Json.member k e with
        | Some (Telemetry.Json.Int i) -> i
        | _ -> 0
      in
      let key = (int "pid", int "tid") in
      let d () = Option.value ~default:0 (Hashtbl.find_opt depth key) in
      match str "ph" with
      | "B" ->
        incr bcount;
        Hashtbl.replace depth key (d () + 1)
      | "E" ->
        incr ecount;
        if d () <= 0 then
          Alcotest.failf "%s: E with no open span on pid=%d tid=%d" name
            (fst key) (snd key);
        Hashtbl.replace depth key (d () - 1)
      | _ -> ())
    evs;
  Alcotest.(check int) (name ^ ": B/E balanced") !bcount !ecount;
  Hashtbl.iter
    (fun (pid, tid) d ->
      if d <> 0 then
        Alcotest.failf "%s: %d span(s) left open on pid=%d tid=%d" name d pid
          tid)
    depth

(* Fault-free health, one case per workload: valid balanced trace,
   zero drops at the default ring capacity, and no straggler or
   warning — the thresholds must not false-positive on an honest
   2-domain run. *)
let sweep_case (w : Workloads.Workload.t) =
  Alcotest.test_case w.Workloads.Workload.name `Slow (fun () ->
      let b = Harness.Bench_run.load w in
      let tr = traced_run b in
      let rep = SR.analyze tr in
      Alcotest.(check int)
        "zero drops at default capacity" 0 rep.SR.sr_drops;
      Alcotest.(check int)
        "analyzer sees every recorded event" (Domtrace.total_events tr)
        rep.SR.sr_events;
      (match rep.SR.sr_straggler with
      | None -> ()
      | Some d ->
        Alcotest.failf "fault-free run flagged domain %d (imbalance %.2f)" d
          rep.SR.sr_imbalance);
      Alcotest.(check (list string)) "no warnings" [] rep.SR.sr_warnings;
      check_balance w.Workloads.Workload.name
        (Telemetry.Chrome_trace.export (Domtrace.to_chrome tr)))

(* A deliberately tiny ring on a chunk-per-iteration schedule must
   overflow: drops are counted, surfaced in the report, and called out
   as a warning instead of silently truncating utilization. *)
let tiny_capacity () =
  let tr = traced_run ~capacity:16 ~chunk:1 (Lazy.force md5) in
  let rep = SR.analyze tr in
  Alcotest.(check bool) "drops counted" true (rep.SR.sr_drops > 0);
  let contains s sub =
    let n = String.length s in
    let m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "drop warning raised" true
    (List.exists (fun w -> contains w "dropped") rep.SR.sr_warnings);
  (* drop-oldest can evict a span's B while its E survives (and can
     sever claim/start/finish pairs); the exporter must still produce
     a well-formed, balanced Chrome trace from what remains *)
  check_balance "overflowed ring"
    (Telemetry.Chrome_trace.export (Domtrace.to_chrome tr))

(* --- gc accounting -------------------------------------------------- *)

(* gc_share regression: the report's share must be a genuine ratio of
   measured pause time to summed run time — the field used to be a
   dirty-pages-per-chunk proxy that pinned at 1.0 on every workload.
   An honest md5 run spends well under half its time in the collector,
   and the per-domain attribution must sum to the measured total. *)
let gc_share_sane () =
  let tr = traced_run (Lazy.force md5) in
  let rep = SR.analyze tr in
  Alcotest.(check bool)
    (Printf.sprintf "gc_share %.3f is a ratio, not the degenerate 1.0"
       rep.SR.sr_gc_share)
    true
    (rep.SR.sr_gc_share >= 0.0 && rep.SR.sr_gc_share < 0.9);
  let sum =
    Array.fold_left (fun a d -> a + d.SR.dr_gc_ns) 0 rep.SR.sr_domains
  in
  Alcotest.(check int) "per-domain gc_ns sums to the total" rep.SR.sr_gc_ns
    sum;
  Alcotest.(check bool) "gc_ns never negative" true (rep.SR.sr_gc_ns >= 0)

(* --- straggler identification under an injected stall -------------- *)

(* A seeded domain stall holds its chunk claim open until the watchdog
   aborts the attempt, so the victim accumulates ~watchdog_ms of claim
   time; the analyzer must name exactly the domain the supervisor's
   own stall event records. The window is sized so the stall dominates
   the imbalance ratio even on a loaded host: with two domains and two
   attempts the 1.5x threshold needs busy-per-attempt < watchdog/4,
   and md5's chunks run well under 750 ms each. *)
let straggler () =
  let b = Lazy.force md5 in
  let plan = b.Harness.Bench_run.expanded.Expand.Transform.plan in
  let tr = Domtrace.create () in
  let sup =
    Domexec.Supervisor.run ~domains:2 ~force:true ~watchdog_ms:3000
      ~fault:(Faultinject.Fault.make ~seed:1 (Faultinject.Fault.Domain_stall 1))
      ~trace:tr
      b.Harness.Bench_run.expanded.Expand.Transform.transformed plan
      b.Harness.Bench_run.lids
  in
  Alcotest.(check bool) "stall fired" true
    (sup.Domexec.Supervisor.sup_stalls > 0);
  let victim =
    List.find_map
      (fun (e : Guard.Diag.sup_event) ->
        if e.Guard.Diag.se_kind = "stall" then Some e.Guard.Diag.se_domain
        else None)
      sup.Domexec.Supervisor.sup_events
  in
  let rep = SR.analyze tr in
  (match (victim, rep.SR.sr_straggler) with
  | Some v, Some s ->
    Alcotest.(check int) "straggler is the stalled domain" v s
  | Some _, None ->
    Alcotest.fail "stall fired but the analyzer flagged no straggler"
  | None, _ -> Alcotest.fail "stall counted but no stall event recorded");
  Alcotest.(check bool) "straggler warning raised" true
    (rep.SR.sr_warnings <> []);
  Alcotest.(check bool) "failed attempt kept in the recording" true
    (rep.SR.sr_attempts >= 2);
  (* the stalled domain observed the abort pill while unwinding *)
  Alcotest.(check bool) "victim poisoned" true
    (match victim with
    | Some v -> rep.SR.sr_domains.(v).SR.dr_poisoned
    | None -> false)

let () =
  Alcotest.run "domtrace"
    [
      ( "ring-laws",
        qcheck_cases
        @ [
            Alcotest.test_case "forced overflow keeps newest, counts drops"
              `Quick forced_overflow;
          ] );
      ( "ring-live",
        [ Alcotest.test_case "2-domain stress" `Quick live_stress ] );
      ( "chrome",
        [
          Alcotest.test_case "byte-identical under race-free schedule" `Slow
            identical_traces;
        ] );
      ("fault-free", List.map sweep_case Workloads.Registry.all);
      ( "capacity",
        [ Alcotest.test_case "tiny ring drops and warns" `Quick tiny_capacity ]
      );
      ( "gc",
        [
          Alcotest.test_case "gc_share is a measured ratio" `Slow
            gc_share_sane;
        ] );
      ( "straggler",
        [ Alcotest.test_case "domain-stall victim flagged" `Slow straggler ]
      );
    ]
