(* Tests for the real-multicore domain executor: the Chase-Lev deque's
   laws (sequential model + multi-domain stress), the scheduler's
   determinism against the sequential original on every workload and
   layout, induction delta-merging, replication fallbacks, and the
   steal counter under imbalanced chunking.

   Parallel runs use [force:true] so the scheduler path is exercised
   even on a 1-core host (domains are correct on any core count, just
   not faster). *)

open Minic

(* ------------------------------------------------------------------ *)
(* Deque laws                                                          *)
(* ------------------------------------------------------------------ *)

type op = Push | Pop | Steal

let gen_ops : op list QCheck.Gen.t =
  QCheck.Gen.(
    list_size (int_range 1 200)
      (frequency [ (3, return Push); (2, return Pop); (2, return Steal) ]))

let show_ops ops =
  String.concat ""
    (List.map (function Push -> "u" | Pop -> "o" | Steal -> "s") ops)

(* Single-threaded there is no contention, so a [Steal_lost] can only
   come from the owner's own last-element pop racing itself — retrying
   resolves it immediately. *)
let rec steal_opt q =
  match Domexec.Deque.steal q with
  | Domexec.Deque.Stolen v -> Some v
  | Domexec.Deque.Steal_empty -> None
  | Domexec.Deque.Steal_lost -> steal_opt q

(* Single-threaded, the deque must behave exactly like a two-ended
   list: push/pop at the bottom, steal at the top. No task is ever
   lost or duplicated. *)
let deque_model_law =
  QCheck.Test.make ~count:500 ~name:"deque matches two-ended list model"
    (QCheck.make gen_ops ~print:show_ops) (fun ops ->
      let q = Domexec.Deque.create ~capacity:256 () in
      (* model: head = top (steal side), last = bottom (push/pop side) *)
      let model = ref [] in
      let next = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Push ->
            Domexec.Deque.push q !next;
            model := !model @ [ !next ];
            incr next
          | Pop ->
            let expect =
              match List.rev !model with
              | [] -> None
              | last :: rest ->
                model := List.rev rest;
                Some last
            in
            if Domexec.Deque.pop q <> expect then ok := false
          | Steal ->
            let expect =
              match !model with
              | [] -> None
              | top :: rest ->
                model := rest;
                Some top
            in
            if steal_opt q <> expect then ok := false)
        ops;
      (* drain: everything still in the model comes back, in order *)
      List.iter (fun v -> if steal_opt q <> Some v then ok := false) !model;
      if Domexec.Deque.pop q <> None then ok := false;
      !ok)

let steal_if_law =
  QCheck.Test.make ~count:200 ~name:"steal_if only takes matching heads"
    QCheck.(make Gen.(list_size (int_range 1 50) (int_range 0 100)))
    (fun items ->
      let q = Domexec.Deque.create ~capacity:64 () in
      List.iter (Domexec.Deque.push q) items;
      let pred v = v mod 2 = 0 in
      match (Domexec.Deque.steal_if pred q, items) with
      | Domexec.Deque.Steal_empty, top :: _ -> not (pred top)
      | Domexec.Deque.Stolen v, top :: _ -> pred v && v = top
      | Domexec.Deque.Steal_empty, [] -> true
      | Domexec.Deque.Stolen _, [] -> false
      | Domexec.Deque.Steal_lost, _ -> false (* no contention here *))

(* Owner pushes and pops at the bottom while [nthieves] thief domains
   steal from the top: every item is seen exactly once, and a lost CAS
   ([Steal_lost]) never loses the element itself — the thieves retry
   and the drain below accounts for every item. With four thieves the
   top-end CAS is under real contention, so [Steal_lost] is exercised,
   not just represented. *)
let stress_no_lost_or_duplicated ~nthieves () =
  let n_items = 20000 in
  let q = Domexec.Deque.create ~capacity:32768 () in
  let owner_done = Atomic.make false in
  let thief () =
    let mine = ref [] in
    let rec go () =
      match Domexec.Deque.steal q with
      | Domexec.Deque.Stolen v ->
        mine := v :: !mine;
        go ()
      | Domexec.Deque.Steal_lost -> go () (* element may remain: retry *)
      | Domexec.Deque.Steal_empty ->
        if Atomic.get owner_done && Domexec.Deque.is_empty q then !mine
        else go ()
    in
    go ()
  in
  let thieves = Array.init nthieves (fun _ -> Domain.spawn thief) in
  let owned = ref [] in
  (* push in bursts, pop a few back: exercises the bottom end against
     concurrent top-end steals, including the one-element race *)
  let i = ref 0 in
  while !i < n_items do
    let burst = min 64 (n_items - !i) in
    for k = 0 to burst - 1 do
      Domexec.Deque.push q (!i + k)
    done;
    i := !i + burst;
    for _ = 1 to 16 do
      match Domexec.Deque.pop q with
      | Some v -> owned := v :: !owned
      | None -> ()
    done
  done;
  let rec drain () =
    match Domexec.Deque.pop q with
    | Some v ->
      owned := v :: !owned;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set owner_done true;
  let stolen = Array.to_list (Array.map Domain.join thieves) in
  let seen = Array.make n_items 0 in
  List.iter
    (fun v -> seen.(v) <- seen.(v) + 1)
    (!owned @ List.concat stolen);
  Array.iteri
    (fun v c ->
      if c <> 1 then
        Alcotest.failf "item %d seen %d times (lost or duplicated)" v c)
    seen

(* ------------------------------------------------------------------ *)
(* Executor on small programs                                          *)
(* ------------------------------------------------------------------ *)

let expand src =
  let p = Typecheck.parse_and_check ~file:"test" src in
  let lids = p.Ast.parallel_loops in
  let analyses = List.map (Privatize.Analyze.analyze p) lids in
  let res = Expand.Transform.expand_loops p analyses in
  (p, lids, res)

let run_domains ?(domains = 2) ?chunk src =
  let p, lids, res = expand src in
  let code0, out0 = Interp.Machine.run_program p in
  let r =
    Domexec.Exec.run ~domains ?chunk ~force:true
      res.Expand.Transform.transformed res.Expand.Transform.plan lids
  in
  Alcotest.(check string) "output" out0 r.Domexec.Exec.dx_output;
  Alcotest.(check int) "exit code" code0 r.Domexec.Exec.dx_exit;
  r

let first_decision (r : Domexec.Exec.result) =
  match r.Domexec.Exec.dx_loops with
  | lr :: _ -> lr.Domexec.Exec.lr_decision
  | [] -> Alcotest.fail "no parallel loop reported"

let doall_src = {|
int out[64];
int main(void)
{
  int i;
#pragma parallel
  for (i = 0; i < 64; i++) out[i] = i * 3 % 17;
  int s = 0;
  for (i = 0; i < 64; i++) s += out[i];
  printf("%d\n", s);
  return 0;
}|}

let distributes_doall () =
  let r = run_domains ~domains:2 doall_src in
  (match first_decision r with
  | Domexec.Exec.Distributed -> ()
  | Domexec.Exec.Replicated why ->
    Alcotest.failf "expected distribution, replicated: %s" why);
  Alcotest.(check int) "one merge" 1 r.Domexec.Exec.dx_merges;
  Alcotest.(check bool) "both domains ran chunks" true
    (Array.for_all (fun c -> c > 0) r.Domexec.Exec.dx_chunks_run)

(* A shared counter bumped once per iteration is an induction variable:
   it must be delta-merged across domains, not write-logged (each
   domain only sees its own bumps during the loop). *)
let induction_src = {|
int hits;
int out[64];
int main(void)
{
  int i;
#pragma parallel
  for (i = 0; i < 64; i++) { out[i] = i * 3; hits = hits + 1; }
  printf("%d %d\n", hits, out[63]);
  return 0;
}|}

let delta_merges_induction () =
  let r = run_domains ~domains:4 induction_src in
  match first_decision r with
  | Domexec.Exec.Distributed -> ()
  | Domexec.Exec.Replicated why ->
    Alcotest.failf "induction loop should distribute, replicated: %s" why

(* Per-iteration output must be spliced back into sequential order. *)
let output_src = {|
int main(void)
{
  int i;
#pragma parallel
  for (i = 0; i < 37; i++) printf("%d:%d ", i, i * i % 11);
  printf("end\n");
  return 0;
}|}

let splices_output () = ignore (run_domains ~domains:3 ~chunk:4 output_src)

(* Allocation inside the body makes iterations unsafe to distribute
   (addresses diverge between machines): the loop must replicate and
   still produce identical output. *)
let alloc_src = {|
int out[16];
int main(void)
{
  int i;
#pragma parallel
  for (i = 0; i < 16; i++) {
    int *p = (int *)malloc(sizeof(int) * 4);
    p[0] = i * 5;
    out[i] = p[0] + 1;
    free(p);
  }
  printf("%d\n", out[15]);
  return 0;
}|}

let replicates_on_alloc () =
  let r = run_domains ~domains:2 alloc_src in
  match first_decision r with
  | Domexec.Exec.Replicated _ -> ()
  | Domexec.Exec.Distributed ->
    Alcotest.fail "allocating loop must not be distributed"

(* A loop-carried flow dependence must be detected by the pre-pass and
   replicated (running it chunked would read stale values). *)
let carried_src = {|
int acc[33];
int main(void)
{
  int i;
  acc[0] = 1;
#pragma parallel
  for (i = 1; i < 33; i++) acc[i] = acc[i - 1] + i;
  printf("%d\n", acc[32]);
  return 0;
}|}

let replicates_on_carried_dep () =
  let r = run_domains ~domains:2 carried_src in
  match first_decision r with
  | Domexec.Exec.Replicated _ -> ()
  | Domexec.Exec.Distributed ->
    Alcotest.fail "loop-carried flow must not be distributed"

let zero_trip_src = {|
int n;
int out[8];
int main(void)
{
  int i;
  n = 0;
#pragma parallel
  for (i = 0; i < n; i++) out[i] = i;
  printf("%d\n", n);
  return 0;
}|}

let zero_trip () = ignore (run_domains ~domains:2 zero_trip_src)

(* ------------------------------------------------------------------ *)
(* Steal counter under imbalanced chunking                             *)
(* ------------------------------------------------------------------ *)

(* Two huge chunks on four domains: domains 2 and 3 own nothing and
   try to steal the second chunk from domain 1's deque the moment they
   enter the loop, while domain 1 must first traverse 20000 iterations
   to reach it. The race is overwhelmingly in the thieves' favor but
   not deterministic, so retry a few times and require at least one
   steal overall. Output correctness is asserted on every attempt. *)
let steal_src = {|
int out[40000];
int main(void)
{
  int i;
#pragma parallel
  for (i = 0; i < 40000; i++) out[i] = i % 7;
  printf("%d %d\n", out[0], out[39999]);
  return 0;
}|}

let steals_under_imbalance () =
  let rec attempt k total =
    if total >= 1 then ()
    else if k = 0 then
      Alcotest.failf "no steal observed in any attempt (total %d)" total
    else
      let r = run_domains ~domains:4 ~chunk:20000 steal_src in
      attempt (k - 1) (total + r.Domexec.Exec.dx_steals)
  in
  attempt 10 0

(* ------------------------------------------------------------------ *)
(* Determinism against the oracle: every workload, every layout        *)
(* ------------------------------------------------------------------ *)

let check_workload (b : Harness.Bench_run.t)
    (res : Expand.Transform.result) ~(domains : int) : unit =
  let oracle = Lazy.force b.Harness.Bench_run.contract_oracle in
  let r =
    Domexec.Exec.run ~domains ~force:true res.Expand.Transform.transformed
      res.Expand.Transform.plan b.Harness.Bench_run.lids
  in
  Alcotest.(check string)
    "output byte-identical" oracle.Guard.Contract.o_output
    r.Domexec.Exec.dx_output;
  Alcotest.(check int)
    "exit code" oracle.Guard.Contract.o_exit r.Domexec.Exec.dx_exit;
  Guard.Contract.check_finals oracle res.Expand.Transform.plan
    r.Domexec.Exec.dx_machine

let workload_cases =
  List.map
    (fun (w : Workloads.Workload.t) ->
      Alcotest.test_case w.Workloads.Workload.name `Slow (fun () ->
          let b = Harness.Bench_run.load w in
          check_workload b b.Harness.Bench_run.expanded ~domains:2;
          (* the interleaved layout, where the transformer supports it *)
          match
            Expand.Transform.expand_loops ~mode:Expand.Plan.Interleaved
              b.Harness.Bench_run.prog b.Harness.Bench_run.analyses
          with
          | res -> check_workload b res ~domains:2
          | exception Expand.Transform.Unsupported _ -> ()))
    Workloads.Registry.all

let () =
  Alcotest.run "domexec"
    [
      ( "deque",
        [
          QCheck_alcotest.to_alcotest deque_model_law;
          QCheck_alcotest.to_alcotest steal_if_law;
          Alcotest.test_case "2-thief stress" `Quick
            (stress_no_lost_or_duplicated ~nthieves:2);
          Alcotest.test_case "4-thief contention stress" `Quick
            (stress_no_lost_or_duplicated ~nthieves:4);
        ] );
      ( "executor",
        [
          Alcotest.test_case "distributes DOALL" `Quick distributes_doall;
          Alcotest.test_case "delta-merges induction" `Quick
            delta_merges_induction;
          Alcotest.test_case "splices output" `Quick splices_output;
          Alcotest.test_case "replicates on alloc" `Quick replicates_on_alloc;
          Alcotest.test_case "replicates on carried dep" `Quick
            replicates_on_carried_dep;
          Alcotest.test_case "zero-trip loop" `Quick zero_trip;
          Alcotest.test_case "steals under imbalance" `Quick
            steals_under_imbalance;
        ] );
      ("workloads", workload_cases);
    ]
