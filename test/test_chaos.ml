(* Chaos suite for the supervised domain executor: every workload, in
   both expansion layouts, under seeded domain-level faults — crashes,
   stalls (watchdog), write-log corruption, steal contention. The
   invariant under all of them: the recovered output is byte-identical
   to the sequential oracle (output, exit code, final globals), and
   the degradation ladder lands on the expected rung.

   Faults fire only on distributed loops (they are armed at chunk
   acquisition / merge), so on a workload whose loops all replicate
   the supervisor legitimately completes clean; every assertion on
   recovery is therefore conditional on the fault having actually
   fired, which the supervisor's counters report. *)

let outcome_str (sup : Domexec.Supervisor.t) =
  Domexec.Supervisor.outcome_to_string sup.Domexec.Supervisor.sup_outcome

(* Supervised run of an expanded program, checked byte-for-byte. *)
let check_identical name oracle plan (sup : Domexec.Supervisor.t) =
  match sup.Domexec.Supervisor.sup_result with
  | None ->
    Alcotest.failf "%s: supervision aborted: %s\n%s" name (outcome_str sup)
      (String.concat "\n"
         (List.map Guard.Diag.sup_event_to_string
            sup.Domexec.Supervisor.sup_events))
  | Some r ->
    let oracle_out = oracle.Guard.Contract.o_output in
    Alcotest.(check string)
      (name ^ ": output byte-identical")
      oracle_out r.Domexec.Exec.dx_output;
    Alcotest.(check int)
      (name ^ ": exit code")
      oracle.Guard.Contract.o_exit r.Domexec.Exec.dx_exit;
    Guard.Contract.check_finals oracle plan r.Domexec.Exec.dx_machine

let chaos_on (b : Harness.Bench_run.t) (res : Expand.Transform.result)
    ~(layout : string) : unit =
  let oracle = Lazy.force b.Harness.Bench_run.contract_oracle in
  let prog = res.Expand.Transform.transformed in
  let plan = res.Expand.Transform.plan in
  let lids = b.Harness.Bench_run.lids in
  let sup_run ?retry ?watchdog_ms fault =
    Domexec.Supervisor.run ~domains:2 ~force:true ?retry ?watchdog_ms ~fault
      prog plan lids
  in
  let name k = Printf.sprintf "%s/%s" layout k in

  (* Seeded crash at a chunk boundary: the chunk is retried and the
     run recovers, or (no distributed loop) nothing fires. *)
  let sup =
    sup_run (Faultinject.Fault.make ~seed:101 (Faultinject.Fault.Domain_crash 1))
  in
  check_identical (name "crash") oracle plan sup;
  if sup.Domexec.Supervisor.sup_crashes > 0 then
    Alcotest.(check string) (name "crash: recovered") "recovered"
      (outcome_str sup);

  (* Seeded stall: the injected stall holds its chunk until the abort
     pill is set, so the watchdog fires at ANY limit — but the limit
     must sit well above the workload's natural per-chunk time or the
     recovery attempts' innocent chunks trip it too. *)
  let sup =
    sup_run ~watchdog_ms:2000
      (Faultinject.Fault.make ~seed:102 (Faultinject.Fault.Domain_stall 1))
  in
  check_identical (name "stall") oracle plan sup;
  if sup.Domexec.Supervisor.sup_stalls > 0 then begin
    Alcotest.(check bool) (name "stall: watchdog fired") true
      (sup.Domexec.Supervisor.sup_watchdog_fires > 0);
    Alcotest.(check string) (name "stall: recovered") "recovered"
      (outcome_str sup)
  end;

  (* Seeded write-log corruption: injected after the chunk's digest is
     taken, so the merge-time re-verification must catch every actual
     byte flip before it can reach memory or output. *)
  let sup =
    sup_run
      (Faultinject.Fault.make ~seed:103 (Faultinject.Fault.Writelog_corrupt 1))
  in
  check_identical (name "corrupt") oracle plan sup;
  if sup.Domexec.Supervisor.sup_corruptions > 0 then begin
    Alcotest.(check int) (name "corrupt: every corruption detected")
      sup.Domexec.Supervisor.sup_corruptions
      sup.Domexec.Supervisor.sup_corruptions_detected;
    Alcotest.(check string) (name "corrupt: recovered") "recovered"
      (outcome_str sup)
  end;

  (* Forced steal-CAS losses: pure contention, no lost work — the home
     domain always pops an unstolen chunk — so the run completes clean
     on the first attempt. *)
  let sup =
    sup_run
      (Faultinject.Fault.make ~seed:104 (Faultinject.Fault.Steal_contention 8))
  in
  check_identical (name "steal-contention") oracle plan sup;
  Alcotest.(check string) (name "steal-contention: clean") "completed"
    (outcome_str sup)

(* A crash budget far beyond the retry budget: supervision aborts and
   the ladder must fall to the static-expansion rung — with the abort
   explained by a retry-exhausted diagnostic — while the output stays
   oracle-identical. Workloads with no distributed loop never consume
   the budget and legitimately hold the top rung. *)
let ladder_exhaustion (b : Harness.Bench_run.t) : unit =
  let oracle = Lazy.force b.Harness.Bench_run.contract_oracle in
  let o =
    Harness.Ladder.run ~threads:2
      ~reference:b.Harness.Bench_run.analyses ~oracle ~exec:`Domains
      ~domains:2 ~force:true ~retry:2
      ~fault:(Faultinject.Fault.make ~seed:105 (Faultinject.Fault.Domain_crash 99))
      b.Harness.Bench_run.prog b.Harness.Bench_run.analyses
  in
  Alcotest.(check string)
    "exhaustion: output byte-identical" oracle.Guard.Contract.o_output
    o.Harness.Ladder.output;
  Alcotest.(check int)
    "exhaustion: exit code" oracle.Guard.Contract.o_exit
    o.Harness.Ladder.exit_code;
  match o.Harness.Ladder.dom_sup with
  | Some sup when sup.Domexec.Supervisor.sup_crashes > 0 ->
    Alcotest.(check string) "exhaustion: fell to static expansion"
      "static-expansion"
      (Harness.Ladder.rung_name o.Harness.Ladder.rung);
    (match o.Harness.Ladder.diagnostics with
    | { Harness.Ladder.fell_from = Harness.Ladder.Domains;
        trigger = Harness.Ladder.Retry_exhausted _;
      }
      :: _ ->
      ()
    | d :: _ ->
      Alcotest.failf "exhaustion: unexpected first diagnostic: %s"
        (Harness.Ladder.diagnostic_to_string d)
    | [] -> Alcotest.fail "exhaustion: fell without a diagnostic")
  | _ ->
    Alcotest.(check string) "exhaustion: no distributed loop, rung held"
      "domains"
      (Harness.Ladder.rung_name o.Harness.Ladder.rung)

(* One test case per workload (the pipeline load dominates the heavy
   workloads, so both layouts and the ladder share one [Bench_run]). *)
let workload_cases =
  List.map
    (fun (w : Workloads.Workload.t) ->
      Alcotest.test_case w.Workloads.Workload.name `Slow (fun () ->
          let b = Harness.Bench_run.load w in
          chaos_on b b.Harness.Bench_run.expanded ~layout:"bonded";
          (match
             Expand.Transform.expand_loops ~mode:Expand.Plan.Interleaved
               b.Harness.Bench_run.prog b.Harness.Bench_run.analyses
           with
          | res -> chaos_on b res ~layout:"interleaved"
          | exception Expand.Transform.Unsupported _ -> ());
          ladder_exhaustion b))
    Workloads.Registry.all

let () = Alcotest.run "chaos" [ ("workloads", workload_cases) ]
