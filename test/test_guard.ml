(* Tests for the guard library and the degradation ladder: span guards
   on fat-pointer redirection, the privatization contract checker, and
   graceful degradation under injected faults — every degraded run must
   still produce the sequential oracle's output bit for bit. *)

open Minic

let setup_src name src =
  let prog = Typecheck.parse_and_check ~file:name src in
  let analyses =
    List.map (Privatize.Analyze.analyze prog) prog.Ast.parallel_loops
  in
  (prog, analyses)

(* One dijkstra parse + analysis + sequential oracle, shared by every
   test that needs a real privatizing workload. *)
let dijkstra =
  lazy
    (let w = Workloads.Registry.find "dijkstra" in
     let prog, analyses =
       setup_src w.Workloads.Workload.name w.Workloads.Workload.source
     in
     (prog, analyses, Guard.Contract.oracle_of prog analyses))

(* A loop whose accumulator carries a flow dependence: classified
   Shared when analysis is honest, and the canonical victim for a
   forced misclassification. *)
let accum_src = {|
int acc;
int hist[8];
int main(void)
{
  int i;
  acc = 0;
#pragma parallel
  for (i = 0; i < 8; i++) {
    acc = acc + i + 1;
    hist[i] = acc;
  }
  printf("%d\n", acc);
  return 0;
}|}

(* --- span guard ----------------------------------------------------- *)

let span_guard_tests =
  [
    Alcotest.test_case "silent on a correct expansion, but watching" `Quick
      (fun () ->
        let prog, analyses, _ = Lazy.force dijkstra in
        let res = Expand.Transform.expand_loops prog analyses in
        let specs = List.map Parexec.Sim.spec_of_analysis analyses in
        let guard = ref None in
        let attach m =
          guard := Some (Guard.Span_guard.attach res.Expand.Transform.plan m)
        in
        let pr =
          Parexec.Sim.run_parallel ~attach res.Expand.Transform.transformed
            specs ~threads:2
        in
        let g = Option.get !guard in
        Alcotest.(check bool) "simulated" true (pr.Parexec.Sim.pr_exit = 0);
        Alcotest.(check bool) "expanded blocks registered" true
          (Guard.Span_guard.registered g > 0);
        Alcotest.(check bool) "redirected accesses checked" true
          (Guard.Span_guard.checked g > 0));
    Alcotest.test_case "truncated spans trip the guard" `Quick (fun () ->
        let prog, analyses, _ = Lazy.force dijkstra in
        let res =
          Expand.Transform.expand_loops ~span_shrink:8 prog analyses
        in
        let specs = List.map Parexec.Sim.spec_of_analysis analyses in
        let attach m =
          ignore (Guard.Span_guard.attach res.Expand.Transform.plan m)
        in
        match
          Parexec.Sim.run_parallel ~attach res.Expand.Transform.transformed
            specs ~threads:2
        with
        | exception Guard.Violation.Violation v ->
          Alcotest.(check bool) "span guard fired" true
            (v.Guard.Violation.guard = Guard.Violation.Span_guard);
          Alcotest.(check bool) "access localized" true
            (v.Guard.Violation.access <> None)
        | _ -> Alcotest.fail "under-offset redirection ran unguarded");
  ]

(* --- contract checker ----------------------------------------------- *)

let contract_tests =
  [
    Alcotest.test_case "oracle replay of a faithful run passes" `Quick
      (fun () ->
        let prog, analyses, oracle = Lazy.force dijkstra in
        let res = Expand.Transform.expand_loops prog analyses in
        let specs = List.map Parexec.Sim.spec_of_analysis analyses in
        let checker = ref None in
        let attach m =
          checker :=
            Some (Guard.Contract.attach oracle res.Expand.Transform.plan m)
        in
        let pr =
          Parexec.Sim.run_parallel ~attach res.Expand.Transform.transformed
            specs ~threads:2
        in
        Guard.Contract.finalize (Option.get !checker);
        Alcotest.(check string) "output" oracle.Guard.Contract.o_output
          pr.Parexec.Sim.pr_output);
    Alcotest.test_case "revalidation rejects an unprovable privatization"
      `Quick (fun () ->
        let prog, analyses = setup_src "accum" accum_src in
        let fault =
          Faultinject.Fault.make ~seed:2 Faultinject.Fault.Force_misclassify
        in
        let app = Faultinject.Fault.mangle fault prog analyses in
        Alcotest.(check bool) "fault flipped a verdict" true
          app.Faultinject.Fault.verdicts_changed;
        let res =
          Expand.Transform.expand_loops prog app.Faultinject.Fault.analyses
        in
        match
          Guard.Contract.revalidate res.Expand.Transform.plan analyses
        with
        | exception Guard.Violation.Violation v ->
          Alcotest.(check bool) "static contract" true
            (v.Guard.Violation.guard = Guard.Violation.Contract_static)
        | () -> Alcotest.fail "misclassification passed revalidation");
  ]

(* --- degradation ladder --------------------------------------------- *)

let ladder_tests =
  [
    Alcotest.test_case "clean run holds the static rung" `Quick (fun () ->
        let prog, analyses, oracle = Lazy.force dijkstra in
        let o =
          Harness.Ladder.run ~threads:2 ~reference:analyses ~oracle prog
            analyses
        in
        Alcotest.(check string) "rung" "static-expansion"
          (Harness.Ladder.rung_name o.Harness.Ladder.rung);
        Alcotest.(check int) "no diagnostics" 0
          (List.length o.Harness.Ladder.diagnostics);
        Alcotest.(check string) "output" oracle.Guard.Contract.o_output
          o.Harness.Ladder.output);
    Alcotest.test_case "guard trip degrades to runtime privatization" `Quick
      (fun () ->
        let prog, analyses, oracle = Lazy.force dijkstra in
        let o =
          Harness.Ladder.run ~threads:2 ~oracle ~span_shrink:8 prog analyses
        in
        Alcotest.(check bool) "fell off the static rung" true
          (o.Harness.Ladder.rung <> Harness.Ladder.Static_expansion);
        (match o.Harness.Ladder.diagnostics with
        | { Harness.Ladder.fell_from = Harness.Ladder.Static_expansion;
            trigger = Harness.Ladder.Guard_trip v;
          }
          :: _ ->
          Alcotest.(check bool) "localized" true
            (v.Guard.Violation.access <> None)
        | d :: _ ->
          Alcotest.fail
            ("unexpected first diagnostic: "
            ^ Harness.Ladder.diagnostic_to_string d)
        | [] -> Alcotest.fail "degraded without a diagnostic");
        Alcotest.(check string) "degraded output still exact"
          oracle.Guard.Contract.o_output o.Harness.Ladder.output);
    Alcotest.test_case "dynamic misclassification is caught by the contract"
      `Quick (fun () ->
        (* no reference classification: the fault must be caught at run
           time by the value-stream cross-check *)
        let prog, analyses = setup_src "accum" accum_src in
        let fault =
          Faultinject.Fault.make ~seed:2 Faultinject.Fault.Force_misclassify
        in
        let app = Faultinject.Fault.mangle fault prog analyses in
        let oracle = Guard.Contract.oracle_of prog analyses in
        let o =
          Harness.Ladder.run ~threads:2 ~oracle prog
            app.Faultinject.Fault.analyses
        in
        Alcotest.(check bool) "fell off the static rung" true
          (o.Harness.Ladder.rung <> Harness.Ladder.Static_expansion);
        (match o.Harness.Ladder.diagnostics with
        | { Harness.Ladder.trigger = Harness.Ladder.Guard_trip v; _ } :: _ ->
          Alcotest.(check bool) "caught by a dynamic guard" true
            (v.Guard.Violation.guard = Guard.Violation.Contract_stream
            || v.Guard.Violation.guard = Guard.Violation.Span_guard
            || v.Guard.Violation.guard = Guard.Violation.Contract_final)
        | { Harness.Ladder.trigger = Harness.Ladder.Output_mismatch; _ } :: _
          ->
          (* acceptable: divergence surfaced at the output compare *)
          ()
        | d :: _ ->
          Alcotest.fail
            ("unexpected first diagnostic: "
            ^ Harness.Ladder.diagnostic_to_string d)
        | [] -> Alcotest.fail "degraded without a diagnostic");
        Alcotest.(check string) "degraded output still exact"
          oracle.Guard.Contract.o_output o.Harness.Ladder.output);
    Alcotest.test_case "allocation failure degrades with exact output" `Quick
      (fun () ->
        let prog, analyses, oracle = Lazy.force dijkstra in
        let fault =
          Faultinject.Fault.make ~seed:4 (Faultinject.Fault.Alloc_failure 2)
        in
        let o =
          Harness.Ladder.run ~threads:2 ~oracle
            ~attach_extra:(Faultinject.Fault.attach_machine fault)
            prog analyses
        in
        Alcotest.(check bool) "fell off the static rung" true
          (o.Harness.Ladder.rung <> Harness.Ladder.Static_expansion);
        (match o.Harness.Ladder.diagnostics with
        | { Harness.Ladder.trigger = Harness.Ladder.Run_failure _; _ } :: _ ->
          ()
        | d :: _ ->
          Alcotest.fail
            ("unexpected first diagnostic: "
            ^ Harness.Ladder.diagnostic_to_string d)
        | [] -> Alcotest.fail "degraded without a diagnostic");
        Alcotest.(check string) "degraded output still exact"
          oracle.Guard.Contract.o_output o.Harness.Ladder.output);
  ]

(* --- violation plumbing --------------------------------------------- *)

let violation_tests =
  [
    Alcotest.test_case "fire raises with structured info" `Quick (fun () ->
        match
          Guard.Violation.fire Guard.Violation.Span_guard ~loop:3 ~access:7
            ~access_class:[ 7; 9 ] "copy %d" 2
        with
        | exception Guard.Violation.Violation v ->
          Alcotest.(check string) "detail" "copy 2" v.Guard.Violation.detail;
          Alcotest.(check (option int)) "loop" (Some 3) v.Guard.Violation.loop;
          Alcotest.(check (option int)) "access" (Some 7)
            v.Guard.Violation.access;
          Alcotest.(check bool) "to_string mentions the guard" true
            (String.length (Guard.Violation.to_string v) > 0)
        | _ -> Alcotest.fail "fire did not raise");
  ]

let () =
  Alcotest.run "guard"
    [
      ("span_guard", span_guard_tests);
      ("contract", contract_tests);
      ("ladder", ladder_tests);
      ("violation", violation_tests);
    ]
