(* Tests for the telemetry subsystem: the JSON writer, the Chrome
   trace exporter (valid JSON, balanced B/E, byte-identical under
   repeated deterministic runs), the aggregator's merge laws
   (associative / commutative / neutral, via qcheck), and a golden
   metrics table on md5. *)

open Minic

(* --- a minimal JSON parser, enough to validate exporter output ----- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (peek () = ' ' || peek () = '\n' || peek () = '\t') then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    if peek () <> c then raise (Bad (Printf.sprintf "expected %c" c));
    advance ()
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'u' ->
          advance ();
          advance ();
          advance ();
          advance ();
          Buffer.add_char b '?'
        | c -> Buffer.add_char b c);
        advance ();
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> raise (Bad "number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          if peek () = ',' then begin
            advance ();
            members ((k, v) :: acc)
          end
          else begin
            expect '}';
            List.rev ((k, v) :: acc)
          end
        in
        Obj (members [])
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          if peek () = ',' then begin
            advance ();
            elements (v :: acc)
          end
          else begin
            expect ']';
            List.rev (v :: acc)
          end
        in
        Arr (elements [])
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage");
  v

let field name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let str_field name j =
  match field name j with Some (Str s) -> Some s | _ -> None

(* --- running md5 under a fresh telemetry session ------------------- *)

(* One full deterministic pipeline run (parse, analyze, expand,
   sequential + 4-thread parallel simulation) with a fresh trace
   collector and aggregator; the timeline is rewound so repeated calls
   are bit-for-bit repeatable. *)
let run_md5_session () :
    string * Telemetry.Counters.snapshot * Report.Tables.metrics_row =
  let chrome = Telemetry.Chrome_trace.create () in
  let agg = Telemetry.Counters.create () in
  Parexec.Sim.reset_trace_epoch ();
  let seq, pr =
    Telemetry.Sink.with_sink
      (Telemetry.Sink.tee
         [ Telemetry.Counters.sink agg; Telemetry.Chrome_trace.sink chrome ])
      (fun () ->
        let w = Workloads.Registry.find "md5" in
        let prog =
          Telemetry.Span.wall "phase.parse" (fun () ->
              Typecheck.parse_and_check ~file:w.Workloads.Workload.name
                w.Workloads.Workload.source)
        in
        let lids = prog.Ast.parallel_loops in
        let analyses = List.map (Privatize.Analyze.analyze prog) lids in
        let res = Expand.Transform.expand_loops prog analyses in
        let specs = List.map Parexec.Sim.spec_of_analysis analyses in
        let seq = Parexec.Sim.run_sequential prog lids in
        let pr =
          Parexec.Sim.run_parallel res.Expand.Transform.transformed specs
            ~threads:4
        in
        (seq, pr))
  in
  let row =
    {
      Report.Tables.m_workload = "md5";
      m_threads = 4;
      m_loop_speedup =
        (let lsum l = List.fold_left (fun a (_, c) -> a + c) 0 l in
         float_of_int (lsum seq.Parexec.Sim.sq_loop)
         /. float_of_int (lsum pr.Parexec.Sim.pr_loop));
      m_total_speedup =
        float_of_int seq.Parexec.Sim.sq_total
        /. float_of_int pr.Parexec.Sim.pr_total;
      m_breakdown = Harness.Bench_run.breakdown_of ~seq ~par:pr;
    }
  in
  (Telemetry.Chrome_trace.export chrome, Telemetry.Counters.snapshot agg, row)

let md5_session = lazy (run_md5_session ())

(* --- chrome exporter ----------------------------------------------- *)

let events_of_export export =
  match field "traceEvents" (parse_json export) with
  | Some (Arr evs) -> evs
  | _ -> Alcotest.fail "no traceEvents array"

let chrome_tests =
  [
    Alcotest.test_case "md5 trace is valid JSON with the expected tracks"
      `Quick (fun () ->
        let export, _, _ = Lazy.force md5_session in
        let evs = events_of_export export in
        Alcotest.(check bool) "has events" true (List.length evs > 10);
        let pids =
          List.filter_map
            (fun e ->
              match field "pid" e with Some (Num p) -> Some p | _ -> None)
            evs
          |> List.sort_uniq compare
        in
        (* toolchain, simulator loop track, and the four sim threads *)
        List.iter
          (fun p ->
            Alcotest.(check bool)
              (Printf.sprintf "pid %g present" p)
              true (List.mem p pids))
          [ 1.; 10.; 100.; 101.; 102.; 103. ];
        let names =
          List.filter_map (fun e -> str_field "name" e) evs
          |> List.sort_uniq compare
        in
        List.iter
          (fun nm ->
            Alcotest.(check bool) (nm ^ " span present") true
              (List.mem nm names))
          [
            "process_name"; "phase.parse"; "phase.profile"; "phase.classify";
            "phase.plan"; "phase.expand"; "loop 7"; "iter 0";
          ]);
    Alcotest.test_case "B and E events balance, globally and per pid" `Quick
      (fun () ->
        let export, _, _ = Lazy.force md5_session in
        let evs = events_of_export export in
        let tally ph pid =
          List.length
            (List.filter
               (fun e ->
                 str_field "ph" e = Some ph
                 &&
                 match pid with
                 | None -> true
                 | Some p -> field "pid" e = Some (Num p))
               evs)
        in
        Alcotest.(check int) "global balance" (tally "B" None) (tally "E" None);
        List.iter
          (fun p ->
            Alcotest.(check int)
              (Printf.sprintf "pid %g balance" p)
              (tally "B" (Some p))
              (tally "E" (Some p)))
          [ 1.; 10.; 100.; 101.; 102.; 103. ]);
    Alcotest.test_case "abandoned spans are auto-closed at export" `Quick
      (fun () ->
        let chrome = Telemetry.Chrome_trace.create () in
        Telemetry.Sink.with_sink (Telemetry.Chrome_trace.sink chrome)
          (fun () ->
            Telemetry.Span.sim_begin ~tid:0 ~ts:5 "outer";
            Telemetry.Span.sim_begin ~tid:0 ~ts:6 "inner";
            Telemetry.Span.sim_end ~tid:0 ~ts:9 "inner"
            (* "outer" never ends: aborted by an exception *));
        let evs = events_of_export (Telemetry.Chrome_trace.export chrome) in
        let count ph =
          List.length (List.filter (fun e -> str_field "ph" e = Some ph) evs)
        in
        Alcotest.(check int) "balanced anyway" (count "B") (count "E"));
    Alcotest.test_case "wall timestamps are logical ticks, not host time"
      `Quick (fun () ->
        let chrome = Telemetry.Chrome_trace.create () in
        Telemetry.Sink.with_sink (Telemetry.Chrome_trace.sink chrome)
          (fun () -> Telemetry.Span.wall "phase.test" (fun () -> ()));
        let evs = events_of_export (Telemetry.Chrome_trace.export chrome) in
        let ts =
          List.filter_map
            (fun e ->
              if str_field "name" e = Some "phase.test" then
                match field "ts" e with Some (Num t) -> Some t | _ -> None
              else None)
            evs
        in
        Alcotest.(check (list (float 0.0))) "tick line" [ 1.0; 2.0 ] ts);
    Alcotest.test_case "repeated runs export byte-identical traces" `Quick
      (fun () ->
        let export1, snap1, _ = run_md5_session () in
        let export2, snap2, _ = run_md5_session () in
        Alcotest.(check string) "traces identical" export1 export2;
        Alcotest.(check bool)
          "counter snapshots identical" true
          (snap1.Telemetry.Counters.counters
          = snap2.Telemetry.Counters.counters));
  ]

(* --- aggregator: merge laws via qcheck ----------------------------- *)

let snapshot_gen : Telemetry.Counters.snapshot QCheck.Gen.t =
  let open QCheck.Gen in
  let key = oneofl [ "a"; "b"; "c"; "d"; "e"; "f" ] in
  (* canonical: sorted, unique keys *)
  let canonical kvs =
    List.sort_uniq (fun (k1, _) (k2, _) -> compare k1 k2) kvs
  in
  let counters = map canonical (small_list (pair key small_signed_int)) in
  let hist =
    let* c = int_range 1 20 in
    let* lo = small_signed_int in
    let* hi = map (fun d -> lo + d) small_nat in
    let+ sum = small_signed_int in
    {
      Telemetry.Counters.h_count = c;
      h_sum = sum;
      h_min = lo;
      h_max = hi;
    }
  in
  let span =
    let* c = int_range 1 20 in
    let+ total = small_nat in
    { Telemetry.Counters.s_count = c; s_total = total }
  in
  let* counters = counters in
  let* histograms = map canonical (small_list (pair key hist)) in
  let+ spans = map canonical (small_list (pair key span)) in
  { Telemetry.Counters.counters; histograms; spans }

let snapshot_arb = QCheck.make snapshot_gen

let merge_law_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:200 ~name:"merge is commutative"
        (QCheck.pair snapshot_arb snapshot_arb) (fun (a, b) ->
          Telemetry.Counters.merge a b = Telemetry.Counters.merge b a);
      QCheck.Test.make ~count:200 ~name:"merge is associative"
        (QCheck.triple snapshot_arb snapshot_arb snapshot_arb)
        (fun (a, b, c) ->
          Telemetry.Counters.(merge (merge a b) c = merge a (merge b c)));
      QCheck.Test.make ~count:200 ~name:"empty is the neutral element"
        snapshot_arb (fun s ->
          Telemetry.Counters.(merge s empty = s && merge empty s = s));
    ]

let aggregator_tests =
  [
    Alcotest.test_case "spans aggregate into wall/sim-keyed totals" `Quick
      (fun () ->
        let agg = Telemetry.Counters.create () in
        Telemetry.Sink.with_sink (Telemetry.Counters.sink agg) (fun () ->
            Telemetry.Span.sim_begin ~tid:2 ~ts:100 "loop 1";
            Telemetry.Span.sim_end ~tid:2 ~ts:160 "loop 1";
            Telemetry.Span.sim_begin ~tid:2 ~ts:200 "loop 1";
            Telemetry.Span.sim_end ~tid:2 ~ts:230 "loop 1";
            Telemetry.Span.count "x" 3;
            Telemetry.Span.count "x" 4);
        let snap = Telemetry.Counters.snapshot agg in
        Alcotest.(check (list (pair string int)))
          "counters"
          [ ("x", 7) ]
          snap.Telemetry.Counters.counters;
        match snap.Telemetry.Counters.spans with
        | [ ("sim:loop 1", s) ] ->
          Alcotest.(check int) "count" 2 s.Telemetry.Counters.s_count;
          Alcotest.(check int) "total" 90 s.Telemetry.Counters.s_total
        | other ->
          Alcotest.failf "unexpected spans: %d entries" (List.length other));
    Alcotest.test_case "disabled telemetry emits nothing" `Quick (fun () ->
        Alcotest.(check bool) "off by default" false (Telemetry.Sink.enabled ());
        (* must be a plain call-through, not an error *)
        Alcotest.(check int) "wall passes through" 41
          (Telemetry.Span.wall "unobserved" (fun () -> 41));
        Telemetry.Span.count "unobserved" 5;
        Telemetry.Span.sim_begin ~tid:0 ~ts:0 "unobserved");
  ]

(* --- golden metrics table on md5 ----------------------------------- *)

let golden_md5_metrics =
  String.concat "\n"
    [
      "workload  threads  loop speedup  total speedup  compute  \
       cache stall  sync wait  privatization  idle  runtime";
      "--------  -------  ------------  -------------  -------  \
       -----------  ---------  -------------  ----  -------";
      "md5             4          3.93           3.38    98.5%  \
      \       0.2%       0.0%           1.2%  0.0%     0.1%";
      "";
    ]

let metrics_tests =
  [
    Alcotest.test_case "golden metrics table on md5" `Quick (fun () ->
        let _, _, row = Lazy.force md5_session in
        Alcotest.(check string)
          "table" golden_md5_metrics
          (Report.Tables.metrics_table [ row ]));
    Alcotest.test_case "metrics_table appends a harmonic-mean row" `Quick
      (fun () ->
        let _, _, row = Lazy.force md5_session in
        let t = Report.Tables.metrics_table [ row; row ] in
        Alcotest.(check bool) "summary row" true
          (List.exists
             (fun l ->
               String.length l >= 13 && String.sub l 0 13 = "harmonic mean")
             (String.split_on_char '\n' t)));
    Alcotest.test_case "metrics JSON parses and carries the counters" `Quick
      (fun () ->
        let _, snap, _ = Lazy.force md5_session in
        let j = parse_json (Telemetry.Metrics.to_string snap) in
        match field "counters" j with
        | Some (Obj kvs) ->
          Alcotest.(check bool) "expand.privatized present" true
            (List.mem_assoc "expand.privatized" kvs)
        | _ -> Alcotest.fail "no counters object");
  ]

(* --- json writer --------------------------------------------------- *)

let json_tests =
  [
    Alcotest.test_case "escaping and number forms round-trip" `Quick
      (fun () ->
        let j =
          Telemetry.Json.(
            Obj
              [
                ("s", Str "a\"b\\c\nd");
                ("i", Int (-42));
                ("f", Float 1.5);
                ("whole", Float 3.0);
                ("nan", Float nan);
                ("l", List [ Bool true; Null ]);
              ])
        in
        let s = Telemetry.Json.to_string j in
        match parse_json s with
        | Obj kvs ->
          Alcotest.(check (option string))
            "string" (Some "a\"b\\c\nd")
            (match List.assoc "s" kvs with Str s -> Some s | _ -> None);
          Alcotest.(check bool) "int" true (List.assoc "i" kvs = Num (-42.));
          Alcotest.(check bool) "float" true (List.assoc "f" kvs = Num 1.5);
          Alcotest.(check bool) "whole float keeps a point" true
            (List.assoc "whole" kvs = Num 3.0);
          Alcotest.(check bool) "nan becomes null" true
            (List.assoc "nan" kvs = Null)
        | _ -> Alcotest.fail "not an object");
    Alcotest.test_case "jsonl sink emits one parsable line per event" `Quick
      (fun () ->
        let js = Telemetry.Jsonl.create () in
        Telemetry.Sink.with_sink (Telemetry.Jsonl.sink js) (fun () ->
            Telemetry.Span.count "k" 2;
            Telemetry.Span.observe "v" 7;
            Telemetry.Span.sim_instant ~tid:1 ~ts:3 "mark");
        let lines =
          Telemetry.Jsonl.contents js |> String.trim
          |> String.split_on_char '\n'
        in
        Alcotest.(check int) "three lines" 3 (List.length lines);
        List.iter (fun l -> ignore (parse_json l)) lines);
  ]

let () =
  Alcotest.run "telemetry"
    [
      ("json", json_tests);
      ("chrome-trace", chrome_tests);
      ("merge-laws", merge_law_tests);
      ("aggregator", aggregator_tests);
      ("metrics", metrics_tests);
    ]
