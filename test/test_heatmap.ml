(* Tests for the cache-line heatmap: Cache.attribute bookkeeping
   (reset restores a factory-fresh cache, attribution never perturbs
   the LRU model), the false-sharing detector on synthetic
   attributions, byte-identical heatmap JSON across repeated runs, and
   the bonded-vs-interleaved ablation (interleaved must show strictly
   more false-sharing lines). *)

open Parexec

(* --- Cache.attribute bookkeeping ----------------------------------- *)

let attr ~t ~copy : Cache.attr =
  { Cache.at_thread = t; at_class = Cache.Private; at_copy = copy }

(* a fixed access+attribution script, replayed on several caches *)
let script c =
  List.iter
    (fun (t, addr, size) ->
      ignore (Cache.access c ~addr ~size);
      Cache.attribute c (attr ~t ~copy:t) ~addr ~size)
    [
      (0, 0, 8); (1, 64, 8); (0, 128, 16); (2, 60, 8); (0, 0, 4); (1, 4096, 64);
    ]

let observe c = (Cache.hits c, Cache.misses c, Cache.line_attribution c)

let cache () = Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64

let cache_tests =
  [
    Alcotest.test_case "reset clears attribution: reused == fresh" `Quick
      (fun () ->
        let fresh = cache () in
        script fresh;
        let reused = cache () in
        script reused;
        Cache.reset reused;
        Alcotest.(check int) "attribution cleared by reset" 0
          (Cache.attributed_lines reused);
        Alcotest.(check int) "hit counter cleared" 0 (Cache.hits reused);
        script reused;
        let fresh2 = cache () in
        script fresh2;
        Alcotest.(check bool) "reused cache reports what a fresh one would"
          true
          (observe reused = observe fresh2));
    Alcotest.test_case "attribute never perturbs hits/misses" `Quick
      (fun () ->
        let plain = cache () and attributed = cache () in
        let accesses = [ (0, 8); (64, 8); (0, 8); (128, 64); (64, 4) ] in
        List.iter
          (fun (addr, size) -> ignore (Cache.access plain ~addr ~size))
          accesses;
        List.iter
          (fun (addr, size) ->
            Cache.attribute attributed (attr ~t:0 ~copy:1) ~addr ~size;
            ignore (Cache.access attributed ~addr ~size);
            Cache.attribute attributed (attr ~t:1 ~copy:2) ~addr ~size)
          accesses;
        Alcotest.(check (pair int int))
          "same hit/miss counters"
          (Cache.hits plain, Cache.misses plain)
          (Cache.hits attributed, Cache.misses attributed));
  ]

(* --- false-sharing detector on synthetic attributions --------------- *)

let heat_of_attrs attrs =
  let c = cache () in
  List.iter
    (fun (t, copy, cls, addr) ->
      Cache.attribute c
        { Cache.at_thread = t; at_class = cls; at_copy = copy }
        ~addr ~size:4)
    attrs;
  Heat.build ~line_bytes:64 [| c |]

let fs_lines h =
  List.filter (fun l -> l.Heat.hl_false_sharing) h.Heat.lines
  |> List.map (fun l -> l.Heat.hl_line)

let detector_tests =
  [
    Alcotest.test_case
      "two threads through different copies on one line = false sharing"
      `Quick (fun () ->
        let h =
          heat_of_attrs
            [ (0, 0, Cache.Private, 0); (1, 1, Cache.Private, 32) ]
        in
        Alcotest.(check (list int)) "line 0 flagged" [ 0 ] (fs_lines h);
        Alcotest.(check int) "counter agrees" 1 h.Heat.false_sharing_lines);
    Alcotest.test_case "same copy, or one thread, is not false sharing"
      `Quick (fun () ->
        let same_copy =
          heat_of_attrs
            [ (0, 3, Cache.Private, 0); (1, 3, Cache.Private, 32) ]
        in
        let one_thread =
          heat_of_attrs
            [ (2, 0, Cache.Private, 0); (2, 1, Cache.Private, 32) ]
        in
        let shared_only =
          heat_of_attrs [ (0, 0, Cache.Shared, 0); (1, 0, Cache.Shared, 32) ]
        in
        Alcotest.(check (list int)) "same copy" [] (fs_lines same_copy);
        Alcotest.(check (list int)) "one thread" [] (fs_lines one_thread);
        Alcotest.(check (list int)) "shared class" [] (fs_lines shared_only));
  ]

(* --- heatmaps of real workloads ------------------------------------- *)

let bench_cache : (string, Harness.Bench_run.t) Hashtbl.t = Hashtbl.create 4

let bench name =
  match Hashtbl.find_opt bench_cache name with
  | Some b -> b
  | None ->
    let b = Harness.Bench_run.load (Workloads.Registry.find name) in
    Hashtbl.replace bench_cache name b;
    b

let workload_tests =
  [
    Alcotest.test_case "heatmap JSON is byte-identical across runs" `Quick
      (fun () ->
        let b = bench "md5" in
        let json () =
          Telemetry.Json.to_string
            (Heat.to_json
               (Harness.Bench_run.heat_of b
                  b.Harness.Bench_run.expanded ~threads:4))
        in
        Alcotest.(check string) "two fresh simulations agree" (json ())
          (json ()));
    Alcotest.test_case
      "interleaved layout false-shares strictly more lines than bonded"
      `Quick (fun () ->
        let b = bench "mpeg2-encoder" in
        let bonded = Harness.Bench_run.heat b ~threads:4 in
        let interleaved =
          Harness.Bench_run.heat_of b
            (Expand.Transform.expand_loops ~mode:Expand.Plan.Interleaved
               b.Harness.Bench_run.prog b.Harness.Bench_run.analyses)
            ~threads:4
        in
        Alcotest.(check bool)
          (Printf.sprintf "interleaved %d > bonded %d false-sharing lines"
             interleaved.Heat.false_sharing_lines
             bonded.Heat.false_sharing_lines)
          true
          (interleaved.Heat.false_sharing_lines
          > bonded.Heat.false_sharing_lines);
        (* the detector fires on private-class lines only, so both
           runs must have attributed private touches at all *)
        Alcotest.(check bool) "bonded heatmap is populated" true
          (bonded.Heat.total_lines > 0 && bonded.Heat.copies <> []));
  ]

let () =
  Alcotest.run "heatmap"
    [
      ("cache-attribution", cache_tests);
      ("false-sharing-detector", detector_tests);
      ("workloads", workload_tests);
    ]
