(* Tests for the persistent bench-history analyzer: JSONL round-trip
   through the append/load pair, a fault-free (jittery but in-band)
   trend reads stable, a synthetically injected regression is flagged
   with its changepoint, improvements are not punished, and
   informational metrics are tracked but never gated. *)

module H = Harness.History

let entry ~t metrics =
  {
    H.h_time = t;
    h_rev = Printf.sprintf "rev%d" (int_of_float t);
    h_domains = 2;
    h_config = "fast";
    h_metrics = metrics;
  }

(* One metric per entry, so a whole series can be written as a list. *)
let series key values =
  List.mapi (fun i v -> entry ~t:(float_of_int i) [ (key, v) ]) values

let roundtrip () =
  let e =
    entry ~t:7.0
      [ ("md5/cycles/seq_total", 123456.0); ("md5/wall@2/speedup", 1.5) ]
  in
  let e' =
    H.entry_of_json
      (Telemetry.Json.of_string_exn
         (Telemetry.Json.to_string (H.entry_to_json e)))
  in
  Alcotest.(check (list (pair string (float 1e-9))))
    "metrics survive" e.H.h_metrics e'.H.h_metrics;
  Alcotest.(check string) "rev survives" e.H.h_rev e'.H.h_rev;
  Alcotest.(check int) "domains survive" e.H.h_domains e'.H.h_domains

let append_load () =
  let file = Filename.temp_file "dsexpand_history" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Sys.remove file;
      Alcotest.(check (list (list (pair string (float 1e-9)))))
        "missing file is an empty history" []
        (List.map (fun e -> e.H.h_metrics) (H.load ~file));
      let es = series "md5/cycles/seq_total" [ 10.0; 11.0; 12.0 ] in
      List.iter (H.append ~file) es;
      let got = H.load ~file in
      Alcotest.(check int) "all entries load" 3 (List.length got);
      Alcotest.(check (list (float 1e-9)))
        "order preserved, oldest first"
        [ 10.0; 11.0; 12.0 ]
        (List.map (fun e -> snd (List.hd e.H.h_metrics)) got))

let tolerance_mapping () =
  Alcotest.(check (option (pair (float 1e-9) bool)))
    "cycle counts gate tight, larger worse"
    (Some (0.02, true))
    (H.default_tolerance "md5/cycles/seq_total");
  Alcotest.(check (option (pair (float 1e-9) bool)))
    "speedups gate loose, smaller worse"
    (Some (0.25, false))
    (H.default_tolerance "md5/wall@2/speedup");
  Alcotest.(check (option (pair (float 1e-9) bool)))
    "everything else informational" None
    (H.default_tolerance "md5/critpath@2/model")

let verdict_of key values =
  match H.analyze (series key values) with
  | [ s ] -> s
  | ss -> Alcotest.failf "expected one series, got %d" (List.length ss)

(* A fault-free trend: deterministic cycles flat, wall speedup with
   realistic host jitter well inside the 25% band. Nothing may flag. *)
let stable_trend () =
  let cyc =
    verdict_of "md5/cycles/seq_total"
      [ 1000.; 1000.; 1000.; 1000.; 1000.; 1000. ]
  in
  Alcotest.(check bool) "flat cycles stable" true (cyc.H.s_verdict = H.Stable);
  Alcotest.(check (option int)) "no changepoint" None cyc.H.s_changepoint;
  let wall =
    verdict_of "md5/wall@2/speedup" [ 1.50; 1.42; 1.57; 1.48; 1.53; 1.45 ]
  in
  Alcotest.(check bool) "jittery speedup stable" true
    (wall.H.s_verdict = H.Stable);
  Alcotest.(check int) "nothing regressed" 0 (H.regressions [ cyc; wall ])

(* Synthetically injected regressions: a cycle-count jump far beyond
   the 2% band and a speedup collapse beyond the 25% band must both be
   flagged, and the changepoint must name the run that jumped. *)
let injected_regression () =
  let cyc =
    verdict_of "md5/cycles/seq_total"
      [ 1000.; 1000.; 1000.; 1000.; 1000.; 1300. ]
  in
  Alcotest.(check bool) "cycle jump flagged" true
    (cyc.H.s_verdict = H.Regressed);
  Alcotest.(check (option int)) "changepoint is the jump" (Some 5)
    cyc.H.s_changepoint;
  let wall =
    verdict_of "md5/wall@2/speedup" [ 1.50; 1.48; 1.52; 1.50; 1.49; 0.90 ]
  in
  Alcotest.(check bool) "speedup collapse flagged" true
    (wall.H.s_verdict = H.Regressed);
  Alcotest.(check int) "both counted" 2 (H.regressions [ cyc; wall ]);
  (* a transient spike that recovered: the latest run is healthy, so
     the verdict is stable, but the changepoint still marks the spike *)
  let spike =
    verdict_of "md5/cycles/seq_total"
      [ 1000.; 1000.; 1000.; 1000.; 1400.; 1000.; 1000.; 1000.; 1000.; 1000. ]
  in
  Alcotest.(check bool) "recovered spike reads stable" true
    (spike.H.s_verdict = H.Stable);
  Alcotest.(check (option int)) "spike run identified" (Some 4)
    spike.H.s_changepoint

(* Getting faster is not a regression. *)
let improvement () =
  let cyc =
    verdict_of "md5/cycles/seq_total"
      [ 1000.; 1000.; 1000.; 1000.; 1000.; 800. ]
  in
  Alcotest.(check bool) "cycle drop is an improvement" true
    (cyc.H.s_verdict = H.Improved);
  Alcotest.(check int) "not counted as regression" 0 (H.regressions [ cyc ])

(* Ungated keys are tracked but never flagged, however wild. *)
let informational () =
  let s = verdict_of "md5/critpath@2/model" [ 2.0; 0.1; 9.0; 0.5; 4.0; 0.2 ] in
  Alcotest.(check bool) "wild informational series stays stable" true
    (s.H.s_verdict = H.Stable);
  Alcotest.(check int) "never regresses" 0 (H.regressions [ s ])

(* The rendered report carries the verdict words the CI log greps. *)
let rendering () =
  let entries =
    series "md5/cycles/seq_total" [ 1000.; 1000.; 1000.; 1000.; 1000.; 1300. ]
  in
  let out = H.render entries (H.analyze entries) in
  let contains sub =
    let n = String.length out and m = String.length sub in
    let rec go i = i + m <= n && (String.sub out i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "regression named" true (contains "REGRESSED");
  Alcotest.(check bool) "run count shown" true (contains "6 run(s)")

let () =
  Alcotest.run "history"
    [
      ( "jsonl",
        [
          Alcotest.test_case "entry round-trip" `Quick roundtrip;
          Alcotest.test_case "append/load" `Quick append_load;
        ] );
      ( "tolerance",
        [ Alcotest.test_case "key-naming semantics" `Quick tolerance_mapping ]
      );
      ( "trend",
        [
          Alcotest.test_case "fault-free stable" `Quick stable_trend;
          Alcotest.test_case "injected regression flagged" `Quick
            injected_regression;
          Alcotest.test_case "improvement not punished" `Quick improvement;
          Alcotest.test_case "informational never gated" `Quick informational;
          Alcotest.test_case "report wording" `Quick rendering;
        ] );
    ]
