(* Tests for the cross-domain critical-path profiler: the artifact's
   base object (schedule, counts, virtual-time model) must be
   byte-identical across two runs of a race-free schedule, the
   reconstructed DAG must be structurally sane on a real traced run,
   and the causal what-if table must behave like one — shrinking a
   segment class never slows the modeled wall clock, shrinking it
   harder never helps less, and barrier slack is never a target. *)

module Critpath = Domexec.Critpath
module Domtrace = Domexec.Domtrace

let md5 = lazy (Harness.Bench_run.load (Workloads.Registry.find "md5"))

let traced_run ?gc ?chunk (b : Harness.Bench_run.t) =
  let oracle = Lazy.force b.Harness.Bench_run.contract_oracle in
  let plan = b.Harness.Bench_run.expanded.Expand.Transform.plan in
  let tr = Domtrace.create ?gc () in
  let r =
    Domexec.Exec.run ~domains:2 ~force:true ?chunk ~trace:tr
      b.Harness.Bench_run.expanded.Expand.Transform.transformed plan
      b.Harness.Bench_run.lids
  in
  Alcotest.(check string)
    "traced run: output byte-identical" oracle.Guard.Contract.o_output
    r.Domexec.Exec.dx_output;
  tr

let seq_cycles = lazy (Harness.Bench_run.seq_interp_cycles (Lazy.force md5))

(* Determinism: a single-chunk schedule is race-free (the only chunk is
   home-owned, the thief's probe is refused), so with GC sampling off
   two runs must serialize the same base artifact — the part CI
   byte-compares. seq_cycles comes from the deterministic interpreter,
   so including the model speedup keeps the bytes stable too. *)
let deterministic () =
  let artifact () =
    let tr = traced_run ~gc:false ~chunk:1_000_000 (Lazy.force md5) in
    let p = Critpath.analyze tr in
    Telemetry.Json.to_string
      (Critpath.to_json ~seq_cycles:(Lazy.force seq_cycles) p)
  in
  let a1 = artifact () in
  let a2 = artifact () in
  Alcotest.(check bool) "artifact non-trivial" true (String.length a1 > 200);
  Alcotest.(check string) "byte-identical across runs" a1 a2

(* Structural sanity on a default chunked, GC-sampled run. *)
let structure () =
  let tr = traced_run (Lazy.force md5) in
  let p = Critpath.analyze tr in
  Alcotest.(check int) "two domains" 2 (Critpath.domains p);
  Alcotest.(check bool) "at least one attempt" true (Critpath.attempts p >= 1);
  Alcotest.(check bool) "virtual critical path positive" true
    (Critpath.vt_critpath p > 0);
  Alcotest.(check bool) "measured wall positive" true
    (Critpath.wall_ns p > 0.0);
  let par = Critpath.model_parallelism p in
  Alcotest.(check bool)
    (Printf.sprintf "parallelism %.3f within [1, domains]" par)
    true
    (par >= 1.0 && par <= 2.0 +. 1e-6);
  let model = Critpath.model_speedup p ~seq_cycles:(Lazy.force seq_cycles) in
  Alcotest.(check bool)
    (Printf.sprintf "model speedup %.3f positive" model)
    true (model > 0.0);
  let cls, share = Critpath.dominant p in
  Alcotest.(check bool)
    (Printf.sprintf "dominant class %s is a known class" cls)
    true
    (List.mem cls
       [ "exec"; "claim"; "steal"; "backoff"; "merge"; "gc"; "interp" ]);
  Alcotest.(check bool)
    (Printf.sprintf "dominant share %.3f in (0, 1]" share)
    true
    (share > 0.0 && share <= 1.0 +. 1e-6)

(* The causal what-if table. Shrinking durations can only shorten a
   schedule whose joins take maxima, so every virtual speedup is >= 1
   and non-decreasing in the shrink percentage. *)
let whatif () =
  let tr = traced_run (Lazy.force md5) in
  let p = Critpath.analyze tr in
  let rows = Critpath.whatif p in
  Alcotest.(check bool) "what-if has targets" true (rows <> []);
  List.iter
    (fun (r : Critpath.whatif_row) ->
      if String.equal r.Critpath.wf_target "barrier" then
        Alcotest.fail "barrier slack offered as a what-if target";
      List.iter
        (fun (k, s) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s @%d%%: speedup %.4f >= 1" r.Critpath.wf_target
               k s)
            true
            (s >= 1.0 -. 1e-9))
        r.Critpath.wf_speedups;
      let rec mono = function
        | (k1, s1) :: ((k2, s2) :: _ as rest) ->
          if k1 <= k2 && s1 > s2 +. 1e-9 then
            Alcotest.failf "%s: speedup fell from %.4f@%d%% to %.4f@%d%%"
              r.Critpath.wf_target s1 k1 s2 k2;
          mono rest
        | _ -> ()
      in
      mono r.Critpath.wf_speedups)
    rows;
  (* the class the profiler blames must be addressable: the acceptance
     question "what should I shrink to get my wall clock back?" needs
     the dominant class in the table *)
  let cls, _ = Critpath.dominant p in
  Alcotest.(check bool)
    (Printf.sprintf "dominant class %s is a what-if target" cls)
    true
    (List.exists (fun r -> String.equal r.Critpath.wf_target cls) rows)

let () =
  Alcotest.run "critpath"
    [
      ( "determinism",
        [
          Alcotest.test_case "base artifact byte-identical" `Slow
            deterministic;
        ] );
      ("structure", [ Alcotest.test_case "md5 @2" `Slow structure ]);
      ("whatif", [ Alcotest.test_case "causal table sane" `Slow whatif ]);
    ]
