(* Unit and property tests for the union-find backing Definition 4's
   access-class equivalence: representative stability, class listing,
   and the equivalence-relation laws under random union sequences. *)

module Uf = Privatize.Union_find

let unit_tests =
  [
    Alcotest.test_case "fresh keys are singletons" `Quick (fun () ->
        let u = Uf.create () in
        Uf.add u 1;
        Uf.add u 2;
        Alcotest.(check bool) "not same" false (Uf.same u 1 2);
        Alcotest.(check (list (list int))) "classes" [ [ 1 ]; [ 2 ] ]
          (Uf.classes u));
    Alcotest.test_case "add is idempotent" `Quick (fun () ->
        let u = Uf.create () in
        Uf.add u 7;
        Uf.add u 7;
        Alcotest.(check (list int)) "members" [ 7 ] (Uf.members u);
        Alcotest.(check (list (list int))) "classes" [ [ 7 ] ] (Uf.classes u));
    Alcotest.test_case "find registers unknown keys" `Quick (fun () ->
        let u = Uf.create () in
        let r = Uf.find u 42 in
        Alcotest.(check int) "own representative" 42 r;
        Alcotest.(check (list int)) "member now" [ 42 ] (Uf.members u));
    Alcotest.test_case "union merges and is idempotent" `Quick (fun () ->
        let u = Uf.create () in
        Uf.union u 1 2;
        Uf.union u 1 2;
        Uf.union u 2 1;
        Alcotest.(check bool) "same" true (Uf.same u 1 2);
        Alcotest.(check (list (list int))) "one class" [ [ 1; 2 ] ]
          (Uf.classes u));
    Alcotest.test_case "transitive chains collapse" `Quick (fun () ->
        let u = Uf.create () in
        Uf.union u 1 2;
        Uf.union u 3 4;
        Alcotest.(check bool) "disjoint so far" false (Uf.same u 1 4);
        Uf.union u 2 3;
        Alcotest.(check bool) "linked" true (Uf.same u 1 4);
        Alcotest.(check int) "one representative" 1
          (List.length (Uf.classes u)));
    Alcotest.test_case "self union is a no-op" `Quick (fun () ->
        let u = Uf.create () in
        Uf.union u 5 5;
        Alcotest.(check (list (list int))) "singleton" [ [ 5 ] ] (Uf.classes u));
    Alcotest.test_case "classes are sorted and deterministic" `Quick (fun () ->
        let u = Uf.create () in
        Uf.union u 9 3;
        Uf.union u 3 6;
        Uf.add u 1;
        Alcotest.(check (list (list int))) "sorted members" [ [ 1 ]; [ 3; 6; 9 ] ]
          (Uf.classes u));
  ]

(* Random union scripts: pairs of keys drawn from a small domain so
   collisions and chains actually happen. *)
let script = QCheck.(list (pair (int_bound 15) (int_bound 15)))

let apply u ops = List.iter (fun (a, b) -> Uf.union u a b) ops

let law_equivalence =
  QCheck.Test.make ~count:200 ~name:"same is an equivalence relation" script
    (fun ops ->
      let u = Uf.create () in
      apply u ops;
      let ms = Uf.members u in
      List.for_all (fun a -> Uf.same u a a) ms
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 Uf.same u a b = Uf.same u b a
                 && List.for_all
                      (fun c ->
                        (not (Uf.same u a b && Uf.same u b c))
                        || Uf.same u a c)
                      ms)
               ms)
           ms)

let law_partition =
  QCheck.Test.make ~count:200 ~name:"classes partition the members" script
    (fun ops ->
      let u = Uf.create () in
      apply u ops;
      let cs = Uf.classes u in
      let flat = List.concat cs in
      List.sort compare flat = Uf.members u
      && List.for_all
           (fun cls ->
             List.for_all
               (fun a -> List.for_all (fun b -> Uf.same u a b) cls)
               cls)
           cs
      && List.for_all
           (fun cls ->
             List.for_all
               (fun other ->
                 cls == other
                 || not (Uf.same u (List.hd cls) (List.hd other)))
               cs)
           cs)

let law_find_canonical =
  QCheck.Test.make ~count:200
    ~name:"find returns one representative per class" script (fun ops ->
      let u = Uf.create () in
      apply u ops;
      List.for_all
        (fun cls ->
          let r = Uf.find u (List.hd cls) in
          List.mem r cls
          && List.for_all (fun a -> Uf.find u a = r) cls)
        (Uf.classes u))

let law_union_monotone =
  QCheck.Test.make ~count:200 ~name:"union never splits a class"
    QCheck.(pair script (pair (int_bound 15) (int_bound 15)))
    (fun (ops, (a, b)) ->
      let u = Uf.create () in
      apply u ops;
      let before = Uf.classes u in
      Uf.union u a b;
      List.for_all
        (fun cls ->
          match cls with
          | [] -> true
          | x :: rest -> List.for_all (fun y -> Uf.same u x y) rest)
        before)

let () =
  Alcotest.run "union_find"
    [
      ("unit", unit_tests);
      ( "laws",
        List.map QCheck_alcotest.to_alcotest
          [
            law_equivalence;
            law_partition;
            law_find_canonical;
            law_union_monotone;
          ] );
    ]
