(* Tests for deterministic fault injection and the full campaign:
   every injected fault, on every workload, must either be caught by a
   guard or ride the degradation ladder down — and every degraded
   run's output must be bit-identical to the sequential oracle. *)

open Minic

let setup src name =
  let prog = Typecheck.parse_and_check ~file:name src in
  let analyses =
    List.map (Privatize.Analyze.analyze prog) prog.Ast.parallel_loops
  in
  (prog, analyses)

let accum_src = {|
int acc;
int hist[8];
int main(void)
{
  int i;
  acc = 0;
#pragma parallel
  for (i = 0; i < 8; i++) {
    acc = acc + i + 1;
    hist[i] = acc;
  }
  printf("%d\n", acc);
  return 0;
}|}

(* A variable whose only disqualifier is a loop-carried flow edge:
   the first iteration never reads [x], so it is neither upwards- nor
   downwards-exposed, and dropping that single profiled edge flips its
   class to Private. *)
let carried_src = {|
int x;
int out[8];
int main(void)
{
  int i;
  x = 0;
#pragma parallel
  for (i = 0; i < 8; i++) {
    int seed = i * 3;
    if (i > 0) seed = seed + x;
    x = seed + 1;
    out[i] = seed;
  }
  int s = 0;
  int j;
  for (j = 0; j < 8; j++) s = s + out[j];
  printf("%d\n", s);
  return 0;
}|}

let verdict_list analyses =
  let tbl = Expand.Plan.merge_verdicts analyses in
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let determinism_tests =
  [
    Alcotest.test_case "mangle is a pure function of the seed" `Quick
      (fun () ->
        let prog, analyses = setup accum_src "accum" in
        List.iter
          (fun kind ->
            let f = Faultinject.Fault.make ~seed:11 kind in
            let a = Faultinject.Fault.mangle f prog analyses in
            let b = Faultinject.Fault.mangle f prog analyses in
            Alcotest.(check string)
              ("same note: " ^ Faultinject.Fault.describe f)
              a.Faultinject.Fault.note b.Faultinject.Fault.note;
            Alcotest.(check bool)
              ("same effect: " ^ Faultinject.Fault.describe f)
              a.Faultinject.Fault.verdicts_changed
              b.Faultinject.Fault.verdicts_changed;
            Alcotest.(check bool) "same verdicts" true
              (verdict_list a.Faultinject.Fault.analyses
              = verdict_list b.Faultinject.Fault.analyses))
          [
            Faultinject.Fault.Drop_dep_edge;
            Faultinject.Fault.Force_misclassify;
            Faultinject.Fault.Truncate_span 8;
            Faultinject.Fault.Alloc_failure 2;
          ]);
    Alcotest.test_case "mangle leaves the clean analyses intact" `Quick
      (fun () ->
        let prog, analyses = setup accum_src "accum" in
        let before = verdict_list analyses in
        List.iter
          (fun kind ->
            let f = Faultinject.Fault.make ~seed:5 kind in
            ignore (Faultinject.Fault.mangle f prog analyses))
          [ Faultinject.Fault.Drop_dep_edge; Faultinject.Fault.Force_misclassify ];
        Alcotest.(check bool) "reference verdicts unchanged" true
          (verdict_list analyses = before));
    Alcotest.test_case "dropping the carried edge privatizes the variable"
      `Quick (fun () ->
        let prog, analyses = setup carried_src "carried" in
        let f = Faultinject.Fault.make ~seed:1 Faultinject.Fault.Drop_dep_edge in
        let app = Faultinject.Fault.mangle f prog analyses in
        Alcotest.(check bool) "verdict flipped" true
          app.Faultinject.Fault.verdicts_changed);
    Alcotest.test_case "span_shrink / attach_machine map to their faults"
      `Quick (fun () ->
        Alcotest.(check (option int)) "truncate" (Some 8)
          (Faultinject.Fault.span_shrink
             (Faultinject.Fault.make ~seed:0 (Faultinject.Fault.Truncate_span 8)));
        Alcotest.(check (option int)) "others" None
          (Faultinject.Fault.span_shrink
             (Faultinject.Fault.make ~seed:0 Faultinject.Fault.Drop_dep_edge)));
  ]

(* The acceptance gate of this PR: the full campaign — every workload,
   clean and under one fault of each kind — upholds the safety
   contract. Zero silent corruptions: output always bit-identical to
   the sequential oracle, and any fallen rung explained by a
   structured diagnostic. *)
let campaign_tests =
  [
    Alcotest.test_case "full campaign: caught or degraded, never corrupted"
      `Slow (fun () ->
        let entries = Harness.Campaign.run ~threads:2 () in
        print_string (Harness.Campaign.table entries);
        Alcotest.(check int) "all workloads x (clean + 4 faults)"
          (5 * List.length Workloads.Registry.all)
          (List.length entries);
        List.iter
          (fun (e : Harness.Campaign.entry) ->
            let name =
              Printf.sprintf "%s/%s" e.Harness.Campaign.c_workload
                e.Harness.Campaign.c_note
            in
            Alcotest.(check bool)
              (name ^ ": output bit-identical to the oracle")
              true e.Harness.Campaign.c_output_ok;
            Alcotest.(check bool)
              (name ^ ": safe (static held or degradation explained)")
              true
              (Harness.Campaign.entry_safe e))
          entries;
        (* the campaign must actually bite: at least one fault per
           workload knocks the run off the static rung *)
        List.iter
          (fun (w : Workloads.Workload.t) ->
            let fell =
              List.exists
                (fun (e : Harness.Campaign.entry) ->
                  e.Harness.Campaign.c_workload = w.Workloads.Workload.name
                  && e.Harness.Campaign.c_fault <> None
                  && e.Harness.Campaign.c_outcome.Harness.Ladder.rung
                     <> Harness.Ladder.Static_expansion)
                entries
            in
            Alcotest.(check bool)
              (w.Workloads.Workload.name ^ ": some fault bites")
              true fell)
          Workloads.Registry.all);
  ]

let () =
  Alcotest.run "faultinject"
    [ ("determinism", determinism_tests); ("campaign", campaign_tests) ]
