(* Unit tests for the interpreter's flat memory: allocator behaviour,
   fixed-width accessors, bounds checking, peak accounting, and a
   qcheck law relating stores and loads. *)

let alloc_tests =
  [
    Alcotest.test_case "distinct allocations don't overlap" `Quick (fun () ->
        let m = Interp.Memory.create () in
        let a = Interp.Memory.alloc m 100 in
        let b = Interp.Memory.alloc m 100 in
        Alcotest.(check bool) "disjoint" true (abs (a - b) >= 100));
    Alcotest.test_case "free then alloc reuses the bucket" `Quick (fun () ->
        let m = Interp.Memory.create () in
        let a = Interp.Memory.alloc m 64 in
        Interp.Memory.free m a;
        let b = Interp.Memory.alloc m 64 in
        Alcotest.(check int) "same base" a b);
    Alcotest.test_case "reused block is zeroed" `Quick (fun () ->
        let m = Interp.Memory.create () in
        let a = Interp.Memory.alloc m 16 in
        Interp.Memory.store m a 8 0x1122334455667788L;
        Interp.Memory.free m a;
        let b = Interp.Memory.alloc m 16 in
        Alcotest.(check int64) "zeroed" 0L (Interp.Memory.load m b 8));
    Alcotest.test_case "block_size" `Quick (fun () ->
        let m = Interp.Memory.create () in
        let a = Interp.Memory.alloc m 100 in
        Alcotest.(check int) "size kept" 100 (Interp.Memory.block_size m a));
    Alcotest.test_case "free of null is a no-op" `Quick (fun () ->
        let m = Interp.Memory.create () in
        Interp.Memory.free m 0);
    Alcotest.test_case "peak tracks live bytes" `Quick (fun () ->
        let m = Interp.Memory.create () in
        let a = Interp.Memory.alloc m 1000 in
        let peak1 = Interp.Memory.peak_bytes m in
        Interp.Memory.free m a;
        let b = Interp.Memory.alloc m 1000 in
        Interp.Memory.free m b;
        Alcotest.(check int) "no growth on reuse" peak1
          (Interp.Memory.peak_bytes m);
        Alcotest.(check bool) "live below peak" true
          (Interp.Memory.live_bytes m < peak1));
    Alcotest.test_case "untracked allocation skips accounting" `Quick
      (fun () ->
        let m = Interp.Memory.create () in
        let live0 = Interp.Memory.live_bytes m in
        ignore (Interp.Memory.alloc ~track:false m 4096);
        Alcotest.(check int) "live unchanged" live0
          (Interp.Memory.live_bytes m));
    Alcotest.test_case "low addresses fault" `Quick (fun () ->
        let m = Interp.Memory.create () in
        match Interp.Memory.load m 4 4 with
        | exception Interp.Memory.Fault _ -> ()
        | _ -> Alcotest.fail "expected a fault");
    Alcotest.test_case "past-the-end faults" `Quick (fun () ->
        let m = Interp.Memory.create () in
        let a = Interp.Memory.alloc m 8 in
        match Interp.Memory.load m (a + 1_000_000) 4 with
        | exception Interp.Memory.Fault _ -> ()
        | _ -> Alcotest.fail "expected a fault");
  ]

let accessor_tests =
  [
    Alcotest.test_case "sign extension per width" `Quick (fun () ->
        let m = Interp.Memory.create () in
        let a = Interp.Memory.alloc m 8 in
        Interp.Memory.store m a 1 0xFFL;
        Alcotest.(check int64) "byte -1" (-1L) (Interp.Memory.load m a 1);
        Interp.Memory.store m a 2 0x8000L;
        Alcotest.(check int64) "short min" (-32768L) (Interp.Memory.load m a 2);
        Interp.Memory.store m a 4 0xFFFFFFFFL;
        Alcotest.(check int64) "int -1" (-1L) (Interp.Memory.load m a 4));
    Alcotest.test_case "little-endian layout" `Quick (fun () ->
        let m = Interp.Memory.create () in
        let a = Interp.Memory.alloc m 8 in
        Interp.Memory.store m a 4 0x04030201L;
        Alcotest.(check int64) "first byte" 1L (Interp.Memory.load m a 1);
        Alcotest.(check int64) "fourth byte" 4L (Interp.Memory.load m (a + 3) 1));
    Alcotest.test_case "float roundtrip both widths" `Quick (fun () ->
        let m = Interp.Memory.create () in
        let a = Interp.Memory.alloc m 16 in
        Interp.Memory.store_float m a 8 3.14159265358979;
        Alcotest.(check (float 0.0)) "double exact" 3.14159265358979
          (Interp.Memory.load_float m a 8);
        Interp.Memory.store_float m (a + 8) 4 1.5;
        Alcotest.(check (float 0.0)) "float32 exact for 1.5" 1.5
          (Interp.Memory.load_float m (a + 8) 4));
    Alcotest.test_case "cstring roundtrip" `Quick (fun () ->
        let m = Interp.Memory.create () in
        let a = Interp.Memory.write_cstring m "hello world" in
        Alcotest.(check string) "read back" "hello world"
          (Interp.Memory.read_cstring m a));
    Alcotest.test_case "blit and fill" `Quick (fun () ->
        let m = Interp.Memory.create () in
        let a = Interp.Memory.alloc m 16 in
        let b = Interp.Memory.alloc m 16 in
        Interp.Memory.fill m ~dst:a ~len:16 0xAB;
        Interp.Memory.blit m ~src:a ~dst:b ~len:16;
        Alcotest.(check int64) "copied byte"
          (Interp.Memory.load m a 1)
          (Interp.Memory.load m b 1));
  ]

(* The fault paths: invalid accesses must raise Memory.Fault (never
   corrupt the arena silently), and the injected-allocation-failure
   knob must fire on exactly the armed allocation. *)
let expect_fault name f =
  match f () with
  | exception Interp.Memory.Fault _ -> ()
  | _ -> Alcotest.fail ("expected a fault: " ^ name)

let fault_tests =
  [
    Alcotest.test_case "out-of-bounds store faults" `Quick (fun () ->
        let m = Interp.Memory.create () in
        let a = Interp.Memory.alloc m 8 in
        expect_fault "store past the arena" (fun () ->
            Interp.Memory.store m (a + 1_000_000) 4 1L));
    Alcotest.test_case "double free faults" `Quick (fun () ->
        let m = Interp.Memory.create () in
        let a = Interp.Memory.alloc m 32 in
        Interp.Memory.free m a;
        expect_fault "second free" (fun () -> Interp.Memory.free m a));
    Alcotest.test_case "null dereference faults" `Quick (fun () ->
        let m = Interp.Memory.create () in
        expect_fault "load *0" (fun () -> Interp.Memory.load m 0 8);
        expect_fault "store *0" (fun () -> Interp.Memory.store m 0 4 7L));
    Alcotest.test_case "sub-base_address access faults" `Quick (fun () ->
        let m = Interp.Memory.create () in
        expect_fault "load below base" (fun () ->
            Interp.Memory.load m (Interp.Memory.base_address - 4) 4);
        expect_fault "store below base" (fun () ->
            Interp.Memory.store m (Interp.Memory.base_address - 1) 1 1L));
    Alcotest.test_case "free of non-base address faults" `Quick (fun () ->
        let m = Interp.Memory.create () in
        let a = Interp.Memory.alloc m 32 in
        expect_fault "free of interior pointer" (fun () ->
            Interp.Memory.free m (a + 8)));
    Alcotest.test_case "alloc fault fires on the n-th allocation" `Quick
      (fun () ->
        let m = Interp.Memory.create () in
        Interp.Memory.set_alloc_fault m 3;
        ignore (Interp.Memory.alloc m 8);
        ignore (Interp.Memory.alloc m 8);
        expect_fault "third allocation" (fun () -> Interp.Memory.alloc m 8);
        (* the knob disarms itself after firing *)
        ignore (Interp.Memory.alloc m 8));
    Alcotest.test_case "untracked allocations don't consume the countdown"
      `Quick (fun () ->
        let m = Interp.Memory.create () in
        Interp.Memory.set_alloc_fault m 1;
        ignore (Interp.Memory.alloc ~track:false m 64);
        expect_fault "first tracked allocation" (fun () ->
            Interp.Memory.alloc m 8));
    Alcotest.test_case "clear_alloc_fault disarms" `Quick (fun () ->
        let m = Interp.Memory.create () in
        Interp.Memory.set_alloc_fault m 1;
        Interp.Memory.clear_alloc_fault m;
        ignore (Interp.Memory.alloc m 8));
    Alcotest.test_case "set_alloc_fault rejects n < 1" `Quick (fun () ->
        let m = Interp.Memory.create () in
        match Interp.Memory.set_alloc_fault m 0 with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "find_block locates the containing allocation" `Quick
      (fun () ->
        let m = Interp.Memory.create () in
        let a = Interp.Memory.alloc m 40 in
        (match Interp.Memory.find_block m (a + 17) with
        | Some (base, size) ->
          Alcotest.(check int) "base" a base;
          Alcotest.(check int) "size" 40 size
        | None -> Alcotest.fail "block not found");
        Alcotest.(check bool) "past the end is outside" true
          (match Interp.Memory.find_block m (a + 40) with
          | Some (base, _) -> base <> a
          | None -> true);
        Interp.Memory.free m a;
        Alcotest.(check bool) "freed block is gone" true
          (Interp.Memory.find_block m (a + 17) = None));
  ]

(* store/load roundtrip law over random values and widths *)
let roundtrip_law =
  QCheck.Test.make ~count:300 ~name:"store/load roundtrip with truncation"
    QCheck.(pair int64 (oneofl [ 1; 2; 4; 8 ]))
    (fun (v, width) ->
      let m = Interp.Memory.create () in
      let a = Interp.Memory.alloc m 8 in
      Interp.Memory.store m a width v;
      let back = Interp.Memory.load m a width in
      let bits = width * 8 in
      let expected =
        if bits = 64 then v
        else Int64.shift_right (Int64.shift_left v (64 - bits)) (64 - bits)
      in
      Int64.equal back expected)

let () =
  Alcotest.run "memory"
    [
      ("allocator", alloc_tests);
      ("accessors", accessor_tests);
      ("faults", fault_tests);
      ("laws", [ QCheck_alcotest.to_alcotest roundtrip_law ]);
    ]
