(* Tests for the --explain provenance machinery: the evidence laws
   (every private class cites a loop-carried anti/output edge; every
   shared class cites at least one dependence edge on the clean
   workloads), loop-boundary evidence for exposure rejections, a
   golden hash of the rendered md5 provenance table, and determinism
   of repeated profiling+classification. *)

open Privatize

(* --- shared workload state (loaded once per process) --------------- *)

let analyses_cache : (string, Analyze.result list) Hashtbl.t =
  Hashtbl.create 8

let analyses_of (name : string) : Analyze.result list =
  match Hashtbl.find_opt analyses_cache name with
  | Some a -> a
  | None ->
    let w = Workloads.Registry.find name in
    let prog =
      Minic.Typecheck.parse_and_check ~file:name w.Workloads.Workload.source
    in
    let a = List.map (Analyze.analyze prog) prog.Minic.Ast.parallel_loops in
    Hashtbl.replace analyses_cache name a;
    a

let provenances name =
  List.concat_map
    (fun (a : Analyze.result) ->
      a.Analyze.classification.Classify.provenance)
    (analyses_of name)

(* workloads where every shared verdict cites a concrete edge (the
   others contain dependence-free dead stores, which honestly cite
   their zero-edge profile instead) *)
let clean_workloads = [ "dijkstra"; "md5"; "mpeg2-encoder"; "h263-encoder" ]

let carried_anti_output (e : Depgraph.Graph.edge) =
  e.Depgraph.Graph.e_carried
  && (e.Depgraph.Graph.e_kind = Depgraph.Graph.Anti
      || e.Depgraph.Graph.e_kind = Depgraph.Graph.Output)

(* --- evidence laws -------------------------------------------------- *)

let private_evidence_law =
  QCheck.Test.make ~count:20
    ~name:
      "every private verdict cites a loop-carried anti/output edge \
       (Definition 5)"
    (QCheck.oneofl clean_workloads)
    (fun name ->
      List.for_all
        (fun (p : Classify.provenance) ->
          p.Classify.p_verdict <> Classify.Private
          || (p.Classify.p_rule = Classify.Rule_private
             && List.exists carried_anti_output p.Classify.p_evidence))
        (provenances name))

let shared_evidence_law =
  QCheck.Test.make ~count:20
    ~name:"every shared verdict cites at least one dependence edge"
    (QCheck.oneofl clean_workloads)
    (fun name ->
      List.for_all
        (fun (p : Classify.provenance) ->
          p.Classify.p_verdict <> Classify.Shared
          || p.Classify.p_evidence <> [])
        (provenances name))

let exposure_tests =
  [
    Alcotest.test_case
      "exposure rejections lead with a loop-boundary flow edge" `Quick
      (fun () ->
        let exposure_provs =
          List.filter
            (fun (p : Classify.provenance) ->
              p.Classify.p_rule = Classify.Rule_upwards_exposed
              || p.Classify.p_rule = Classify.Rule_downwards_exposed)
            (List.concat_map provenances clean_workloads)
        in
        Alcotest.(check bool)
          "some exposure rejections exist" true
          (exposure_provs <> []);
        List.iter
          (fun (p : Classify.provenance) ->
            match p.Classify.p_evidence with
            | [] -> Alcotest.fail "exposure rejection with no evidence"
            | e :: _ ->
              Alcotest.(check bool)
                "first edge is a boundary flow" true
                (e.Depgraph.Graph.e_kind = Depgraph.Graph.Flow
                && (e.Depgraph.Graph.e_src = Depgraph.Graph.boundary
                   || e.Depgraph.Graph.e_dst = Depgraph.Graph.boundary));
              (* the witness is the in-loop end of the boundary edge *)
              let w =
                match p.Classify.p_witness with
                | Some w -> w
                | None -> Alcotest.fail "exposure rejection without witness"
              in
              Alcotest.(check bool)
                "witness is the edge's loop-side endpoint" true
                (e.Depgraph.Graph.e_src = w || e.Depgraph.Graph.e_dst = w))
          exposure_provs);
    Alcotest.test_case "boundary endpoints render as <outside loop>" `Quick
      (fun () ->
        let a = List.hd (analyses_of "h263-encoder") in
        let g =
          a.Analyze.classification.Classify.graph
        in
        let up =
          List.find
            (fun (p : Classify.provenance) ->
              p.Classify.p_rule = Classify.Rule_upwards_exposed)
            (provenances "h263-encoder")
        in
        let cite =
          Depgraph.Graph.cite_edge g (List.hd up.Classify.p_evidence)
        in
        Alcotest.(check bool)
          (Printf.sprintf "cite %S mentions the boundary" cite)
          true
          (let sub = "<outside loop>" in
           let n = String.length cite and m = String.length sub in
           let rec has i = i + m <= n && (String.sub cite i m = sub || has (i + 1)) in
           has 0))
  ]

(* --- golden table ---------------------------------------------------- *)

let render_explain name =
  String.concat ""
    (List.map
       (fun (a : Analyze.result) ->
         Report.Tables.explain_table
           (Classify.explain_rows a.Analyze.classification))
       (analyses_of name))

let golden_tests =
  [
    Alcotest.test_case "golden md5 provenance table" `Quick (fun () ->
        let text = render_explain "md5" in
        Alcotest.(check string)
          (Printf.sprintf "md5 explain table hash (len %d)"
             (String.length text))
          "994b67c3000b9622ccfc127601cb6859"
          (Digest.to_hex (Digest.string text)));
  ]

let determinism_tests =
  [
    Alcotest.test_case "repeated profiling yields identical provenance"
      `Quick (fun () ->
        let w = Workloads.Registry.find "md5" in
        let render () =
          let prog =
            Minic.Typecheck.parse_and_check ~file:"md5"
              w.Workloads.Workload.source
          in
          String.concat ""
            (List.map
               (fun lid ->
                 let a = Analyze.analyze prog lid in
                 Report.Tables.explain_table
                   (Classify.explain_rows a.Analyze.classification))
               prog.Minic.Ast.parallel_loops)
        in
        Alcotest.(check string) "two runs render identically" (render ())
          (render ()));
  ]

let () =
  Alcotest.run "explain"
    [
      ( "evidence-laws",
        List.map QCheck_alcotest.to_alcotest
          [ private_evidence_law; shared_evidence_law ] );
      ("exposure", exposure_tests);
      ("golden", golden_tests);
      ("determinism", determinism_tests);
    ]
