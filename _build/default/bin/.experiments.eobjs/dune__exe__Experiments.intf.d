bin/experiments.mli:
