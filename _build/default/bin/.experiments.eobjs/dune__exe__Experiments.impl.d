bin/experiments.ml: Array Harness List Printf String Sys Workloads
