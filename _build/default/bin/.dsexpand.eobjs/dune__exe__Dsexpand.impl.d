bin/dsexpand.ml: Arg Cmd Cmdliner Depgraph Expand Filename Interp List Minic Option Parexec Printf Privatize String Term Workloads
