bin/dsexpand.mli:
