(* Benchmark harness.

   Two parts:

   1. Bechamel micro-benchmarks of the toolchain itself — one
      Test.make per pipeline stage and one per paper table/figure
      (each staged function regenerates that artifact for a fast
      benchmark, md5, so timings stay in the milliseconds range).

   2. The full evaluation reproduction: every table and figure of the
      paper regenerated over all eight benchmarks, printed in order.
      This is the part EXPERIMENTS.md's numbers come from; it is also
      available selectively via `dune exec bin/experiments.exe`. *)

open Bechamel
open Toolkit

let md5_workload = Workloads.Registry.find "md5"

(* Shared pipeline state for the staged functions (computed once). *)
let md5_prog =
  Minic.Typecheck.parse_and_check ~file:"md5"
    md5_workload.Workloads.Workload.source

let md5_lid = List.hd md5_prog.Minic.Ast.parallel_loops
let md5_analysis = Privatize.Analyze.analyze md5_prog md5_lid

let stage_tests =
  [
    Test.make ~name:"stage:parse+check"
      (Staged.stage (fun () ->
           ignore
             (Minic.Typecheck.parse_and_check ~file:"md5"
                md5_workload.Workloads.Workload.source)));
    Test.make ~name:"stage:profile-deps"
      (Staged.stage (fun () ->
           ignore (Depgraph.Profiler.profile md5_prog md5_lid)));
    Test.make ~name:"stage:classify"
      (Staged.stage (fun () ->
           ignore
             (Privatize.Classify.classify
                md5_analysis.Privatize.Analyze.profile.Depgraph.Profiler.graph)));
    Test.make ~name:"stage:alias-analysis"
      (Staged.stage (fun () -> ignore (Alias.Andersen.analyze md5_prog)));
    Test.make ~name:"stage:expand"
      (Staged.stage (fun () ->
           ignore (Expand.Transform.expand md5_prog md5_analysis)));
    Test.make ~name:"stage:expand-unoptimized"
      (Staged.stage (fun () ->
           ignore
             (Expand.Transform.expand ~selective:false ~optimize:false
                md5_prog md5_analysis)));
    Test.make ~name:"stage:interpret-original"
      (Staged.stage (fun () -> ignore (Interp.Machine.run_program md5_prog)));
  ]

(* One staged regeneration per paper artifact, on the fast benchmark. *)
let artifact_tests =
  let bench = Harness.Bench_run.load md5_workload in
  let benches = [ bench ] in
  List.map
    (fun (name, thunk) ->
      Test.make ~name:("artifact:" ^ name)
        (Staged.stage (fun () -> ignore (thunk ()))))
    (Harness.Figures.all benches)

let benchmark tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 50) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Analyze.merge ols instances [ results ]

let print_results results =
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let rect = window in
  let results =
    Bechamel_notty.Multiple.image_of_ols_results ~rect
      ~predictor:Measure.run results
  in
  Notty_unix.eol results |> Notty_unix.output_image

let () =
  Bechamel_notty.Unit.add Instance.monotonic_clock
    (Measure.unit Instance.monotonic_clock);
  print_endline "== toolchain stage micro-benchmarks (bechamel) ==";
  print_results
    (benchmark (Test.make_grouped ~name:"stages" ~fmt:"%s %s" stage_tests));
  print_endline "";
  print_endline "== per-artifact regeneration timings on md5 (bechamel) ==";
  print_results
    (benchmark
       (Test.make_grouped ~name:"artifacts" ~fmt:"%s %s" artifact_tests));
  print_newline ();
  print_endline "== full evaluation: all tables and figures, all benchmarks ==";
  let benches = List.map Harness.Bench_run.load Workloads.Registry.all in
  List.iter
    (fun (name, thunk) ->
      Printf.printf "\n--- %s ---\n%!" name;
      print_string (thunk ()))
    (Harness.Figures.all benches)
