(* The paper's own running examples, pushed through the pipeline:

   - Figure 1: bzip2's zptr buffer, reinitialized every iteration of a
     while loop; expansion multiplies the allocation by N and redirects
     the element accesses by tid (compare the printed output with the
     paper's Figure 1(b)).
   - Figure 3: hmmer's mx pointer, which may come from either of two
     different-sized allocation sites, so redirection must go through
     the span shadow of §3.3 (compare with Figure 4(b)).
   - The §3.2 ambiguity example: an ambiguous *p forces its loads and
     stores into one access class so their verdicts agree.

     dune exec examples/paper_figures.exe *)

let figure1 =
  {|
int main(void)
{
  int m = 16;
  int *zptr = (int *)malloc(sizeof(int) * m);
  int b = 0;
  int round = 0;
  int k;
#pragma parallel
  while (round < 8) {
    for (k = 0; k < m; k++)
      zptr[k] = round + k;
    for (k = 0; k < m; k++)
      b += zptr[k];
    round++;
  }
  printf("%d\n", b);
  free(zptr);
  return 0;
}
|}

let figure3 =
  {|
int results[12];
int *mx;
int main(void)
{
  int m1 = 64;
  int m2 = 96;
  int which = 1;
  if (which) mx = (int *)malloc(m1);
  else mx = (int *)malloc(m2);
  int iter;
  int k;
#pragma parallel
  for (iter = 0; iter < 12; iter++) {
    for (k = 0; k < 16; k++)
      mx[k] = iter * k + 1;
    int best = 0;
    for (k = 0; k < 16; k++)
      if (mx[k] > best) best = mx[k];
    results[iter] = best;
  }
  int s = 0;
  for (k = 0; k < 12; k++) s += results[k];
  printf("%d\n", s);
  free(mx);
  return 0;
}
|}

let ambiguity =
  {|
int a[40];
int b;
int acc;
int main(void)
{
  int i;
#pragma parallel
  for (i = 0; i < 40; i++) {
    int c = i % 2;
    int *p;
    if (c) p = &b;
    else p = &a[i];
    *p = i;
    if (c) acc += *p;
  }
  printf("%d\n", acc);
  return 0;
}
|}

let show title source =
  Printf.printf "==== %s ====\n\n" title;
  let prog = Minic.Typecheck.parse_and_check ~file:title source in
  let lid = List.hd prog.Minic.Ast.parallel_loops in
  let analysis = Privatize.Analyze.analyze prog lid in
  (* print each access class and its verdict, the §3.2 partition *)
  List.iter
    (fun (cls, verdict, _) ->
      let g = analysis.Privatize.Analyze.profile.Depgraph.Profiler.graph in
      let members =
        List.filter_map
          (fun aid ->
            Option.map
              (fun (s : Depgraph.Graph.site) -> s.Depgraph.Graph.s_text)
              (Depgraph.Graph.site g aid))
          cls
        |> List.sort_uniq compare
      in
      if members <> [] then
        Printf.printf "  class {%s}: %s\n"
          (String.concat ", " members)
          (match verdict with
          | Privatize.Classify.Private -> "private -> expanded"
          | Privatize.Classify.Shared -> "shared"
          | Privatize.Classify.Induction -> "induction (runtime-managed)"))
    analysis.Privatize.Analyze.classification.Privatize.Classify.classes;
  let result = Expand.Transform.expand prog analysis in
  Printf.printf "\ntransformed:\n%s\n"
    (Minic.Pretty.program_to_string result.Expand.Transform.transformed);
  (* sanity: same behaviour *)
  let _, out0 = Interp.Machine.run_program prog in
  let m = Interp.Machine.load result.Expand.Transform.transformed in
  Interp.Machine.set_global_int m.Interp.Machine.st "__nthreads" 4;
  ignore (Interp.Machine.run m);
  assert (String.equal out0 (Interp.Machine.output m.Interp.Machine.st));
  Printf.printf "output unchanged: %s\n" (String.trim out0)

let () =
  show "Figure 1: zptr expansion" figure1;
  show "Figure 3: ambiguous mx needs a span" figure3;
  show "Section 3.2: ambiguous *p merges access classes" ambiguity
