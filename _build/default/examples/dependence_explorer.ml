(* Using the analysis layers directly, without transforming anything:
   profile a loop, dump its dependence graph, and explain why each
   access class is or is not privatizable — the workflow of Figure 7's
   "inspect the program to verify the general validity of the graph".

     dune exec examples/dependence_explorer.exe *)

let source =
  {|
struct item { int key; struct item *next; };
struct item *stack;
int processed[32];
int inorder;
int main(void)
{
  int round;
#pragma parallel
  for (round = 0; round < 32; round++) {
    // build a small work stack for this round
    stack = 0;
    int j;
    for (j = 0; j < 5; j++) {
      struct item *it = (struct item *)malloc(sizeof(struct item));
      it->key = round * 5 + j;
      it->next = stack;
      stack = it;
    }
    // drain it
    int sum = 0;
    while (stack != 0) {
      struct item *top = stack;
      stack = stack->next;
      sum += top->key % 7;
      free(top);
    }
    processed[round] = sum;
    inorder = inorder + sum;  // ordered accumulation
  }
  int t = 0;
  int r;
  for (r = 0; r < 32; r++) t += processed[r];
  printf("%d %d\n", t, inorder);
  return 0;
}
|}

let () =
  let prog = Minic.Typecheck.parse_and_check ~file:"explorer" source in
  let lid = List.hd prog.Minic.Ast.parallel_loops in
  let analysis = Privatize.Analyze.analyze prog lid in
  let g = analysis.Privatize.Analyze.profile.Depgraph.Profiler.graph in

  print_endline "== dependence graph (Definition 1) ==";
  print_string (Depgraph.Graph.to_string g);

  print_endline "\n== access classes and verdicts (Definitions 4-5) ==";
  let c = analysis.Privatize.Analyze.classification in
  List.iter
    (fun (cls, verdict, reason) ->
      let members =
        List.filter_map
          (fun aid ->
            Option.map
              (fun (s : Depgraph.Graph.site) ->
                Printf.sprintf "%s%s"
                  (match s.Depgraph.Graph.s_kind with
                  | Minic.Visit.Store -> "write "
                  | Minic.Visit.Load -> "read ")
                  s.Depgraph.Graph.s_text)
              (Depgraph.Graph.site g aid))
          cls
      in
      if members <> [] then begin
        Printf.printf "{%s}\n" (String.concat "; " members);
        Printf.printf "  -> %s: %s\n"
          (match verdict with
          | Privatize.Classify.Private -> "PRIVATE"
          | Privatize.Classify.Shared -> "SHARED"
          | Privatize.Classify.Induction -> "INDUCTION")
          (match reason with
          | Privatize.Classify.Accepted ->
            "no exposure, no carried flow, has carried anti/output"
          | Privatize.Classify.Has_upwards_exposed _ ->
            "reads a value defined before the loop"
          | Privatize.Classify.Has_downwards_exposed _ ->
            "its value is used after the loop"
          | Privatize.Classify.Has_carried_flow _ ->
            "a value genuinely flows between iterations"
          | Privatize.Classify.No_carried_anti_or_output ->
            "no contention to remove (already iteration-disjoint)")
      end)
    c.Privatize.Classify.classes;

  print_endline "\n== induction variables (runtime-managed) ==";
  List.iter
    (fun v -> Printf.printf "  %s\n" v)
    analysis.Privatize.Analyze.induction_vars;

  Printf.printf "\nverdict: this loop is %s\n"
    (match Privatize.Classify.parallelism_kind c with
    | `Doall -> "DOALL after privatization"
    | `Doacross -> "DOACROSS (ordered channels remain)")
