examples/quickstart.ml: Expand Interp List Minic Parexec Printf Privatize String
