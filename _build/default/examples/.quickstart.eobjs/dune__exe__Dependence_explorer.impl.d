examples/dependence_explorer.ml: Depgraph List Minic Option Printf Privatize String
