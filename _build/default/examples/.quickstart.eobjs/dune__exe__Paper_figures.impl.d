examples/paper_figures.ml: Depgraph Expand Interp List Minic Option Printf Privatize String
