examples/quickstart.mli:
