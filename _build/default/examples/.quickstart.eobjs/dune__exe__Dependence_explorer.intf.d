examples/dependence_explorer.mli:
