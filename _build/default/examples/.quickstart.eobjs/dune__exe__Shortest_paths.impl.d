examples/shortest_paths.ml: Array Depgraph Expand List Minic Parexec Printf Privatize String Workloads
