(** Per-operation cycle costs for the deterministic execution model.

    The absolute values approximate a simple in-order core; only the
    ratios matter for reproducing the paper's speedup shapes. Memory
    operations additionally pay whatever the pluggable access-cost hook
    (e.g. the cache model in {!Parexec}) charges. *)

let load = 2
let store = 2
let arith = 1
let mul = 3
let div = 20
let float_arith = 2
let float_div = 12
(* sqrt, exp, log, ... *)
let float_fn = 24
let branch = 1
let call = 10
let malloc = 40
let free = 20
(* per character of formatted output *)
let io_char = 50

(** GOMP-like runtime costs, used by the parallel simulator. *)
(* per parallel-loop entry: team wakeup *)
let gomp_fork = 4_000
(* per thread, at loop exit *)
let gomp_barrier = 800
(* per dynamically-scheduled chunk *)
let gomp_dispatch = 120

(** SpiceC-style runtime privatization costs (per event), used by the
    {!Runtimepriv} baseline: each private access goes through the
    access-control library. *)
(* access-control library call: heap-prefix lookup of the private copy *)
let rp_resolve = 80
(* copy-in / commit, per byte, at loop boundaries *)
let rp_copy_byte = 2
