lib/interp/memory.mli:
