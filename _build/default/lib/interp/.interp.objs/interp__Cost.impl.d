lib/interp/cost.ml:
