lib/interp/machine.mli: Ast Buffer Hashtbl Memory Minic Types Visit
