lib/interp/machine.ml: Array Ast Buffer Char Cost Float Hashtbl Int32 Int64 List Loc Memory Minic Option Printf Stdlib String Typecheck Types Visit
