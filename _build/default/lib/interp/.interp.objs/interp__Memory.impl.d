lib/interp/memory.ml: Bytes Char Hashtbl Int32 Int64 Printf String
