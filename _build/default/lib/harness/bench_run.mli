(** Per-benchmark experiment state: the analyses and transformed
    programs, plus lazily-computed, memoized measurement runs. Every
    table and figure of the paper draws from this record, so each
    expensive execution happens at most once per process. Every
    measured run is checked to produce the same output as the
    sequential original; a mismatch fails the run. *)

open Minic

type t = {
  workload : Workloads.Workload.t;
  prog : Ast.program;
  lids : Ast.lid list;
  analyses : Privatize.Analyze.result list;
  specs : Parexec.Sim.loop_spec list;
  expanded : Expand.Transform.result;  (** selective + optimized *)
  expanded_unopt : Expand.Transform.result Lazy.t;
      (** promote-all, no span optimization: Figure 9a's configuration *)
  rp : Parexec.Sim.runtime_priv Lazy.t;
  seq : Parexec.Sim.seq_result Lazy.t;
  mutable par_cache : (int * bool, Parexec.Sim.par_result) Hashtbl.t;
  mutable seq_cycles_cache : (string, int * int) Hashtbl.t;
}

val load : Workloads.Workload.t -> t
val seq : t -> Parexec.Sim.seq_result

(** Simulated parallel run; [rp:true] charges the SpiceC-style
    runtime-privatization costs. *)
val par : ?rp:bool -> t -> threads:int -> Parexec.Sim.par_result

val loop_cycles_seq : t -> int
val loop_cycles_par : ?rp:bool -> t -> threads:int -> int
val loop_speedup : ?rp:bool -> t -> threads:int -> float
val total_speedup : ?rp:bool -> t -> threads:int -> float

(** Sequential slowdown of the expanded program (Figure 9). *)
val seq_slowdown : t -> optimized:bool -> float

(** Sequential slowdown under runtime privatization (Figure 10). *)
val rp_seq_slowdown : t -> float

(** Memory-use multiples over the sequential original (Figure 14). *)
val memory_multiple : t -> threads:int -> float

val rp_memory_multiple : t -> threads:int -> float
