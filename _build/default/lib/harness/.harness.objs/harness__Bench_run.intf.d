lib/harness/bench_run.mli: Ast Expand Hashtbl Lazy Minic Parexec Privatize Workloads
