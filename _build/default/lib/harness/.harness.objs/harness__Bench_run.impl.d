lib/harness/bench_run.ml: Ast Expand Hashtbl Lazy List Minic Parexec Printf Privatize Runtimepriv String Typecheck Workloads
