lib/harness/figures.ml: Array Bench_run Expand List Parexec Printf Privatize Report String Tables Workloads
