lib/harness/figures.mli: Bench_run
