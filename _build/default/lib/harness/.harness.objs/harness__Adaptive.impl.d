lib/harness/adaptive.ml: Ast Expand Interp Minic Privatize
