(** Adaptive layout selection — the scheme the paper's conclusion
    lists as future work: "the bonded mode and the interleaved mode
    for data structure allocation have their respective strengths and
    weaknesses ... which naturally raises the prospect of devising an
    adaptive scheme to switch between these two modes."

    The chooser is empirical: produce both expansions (interleaving is
    only attempted when every expanded structure fits its restricted
    shape — otherwise bonded wins by default, exactly the robustness
    argument of §3.1), probe each with a sequential cache-modelled run
    at the target thread count, and keep the cheaper layout. *)

open Minic

type choice = {
  mode : Expand.Plan.mode;
  result : Expand.Transform.result;
  bonded_cycles : int;
  interleaved_cycles : int option;
      (** [None] when the program has a shape interleaving rejects *)
}

let probe (prog : Ast.program) (lids : Ast.lid list) (threads : int) : int =
  let m = Interp.Machine.load prog in
  Interp.Machine.set_global_int m.Interp.Machine.st "__nthreads" threads;
  ignore lids;
  ignore (Interp.Machine.run m);
  m.Interp.Machine.st.Interp.Machine.cycles

(** Expand with whichever layout the probe prefers. *)
let choose ?(threads = 8) (prog : Ast.program)
    (analyses : Privatize.Analyze.result list) : choice =
  let lids = prog.Ast.parallel_loops in
  let bonded = Expand.Transform.expand_loops ~mode:Expand.Plan.Bonded prog analyses in
  let bonded_cycles =
    probe bonded.Expand.Transform.transformed lids threads
  in
  match
    Expand.Transform.expand_loops ~mode:Expand.Plan.Interleaved prog analyses
  with
  | exception Expand.Transform.Unsupported _ ->
    {
      mode = Expand.Plan.Bonded;
      result = bonded;
      bonded_cycles;
      interleaved_cycles = None;
    }
  | inter ->
    let interleaved_cycles =
      probe inter.Expand.Transform.transformed lids threads
    in
    if interleaved_cycles < bonded_cycles then
      {
        mode = Expand.Plan.Interleaved;
        result = inter;
        bonded_cycles;
        interleaved_cycles = Some interleaved_cycles;
      }
    else
      {
        mode = Expand.Plan.Bonded;
        result = bonded;
        bonded_cycles;
        interleaved_cycles = Some interleaved_cycles;
      }
