(** Hand-written lexer for MiniC (no menhir/ocamllex available offline).

    Produces a token array consumed by the recursive-descent {!Parser}.
    [#pragma] lines become [PRAGMA] tokens so the parser can mark the
    following loop as a parallelization candidate. *)

type token =
  | IDENT of string
  | INTLIT of int64 * Types.ikind
  | FLOATLIT of float * Types.fkind
  | STRLIT of string
  | KW of string  (** keywords: int, char, struct, if, while, ... *)
  | PUNCT of string  (** operators and delimiters, longest-match *)
  | PRAGMA of string  (** contents of a [#pragma] line, trimmed *)
  | EOF

type t = { tok : token; loc : Loc.t }

let keywords =
  [
    "void"; "char"; "short"; "int"; "long"; "unsigned"; "float"; "double";
    "struct"; "if"; "else"; "while"; "for"; "do"; "return"; "break";
    "continue"; "sizeof"; "typedef"; "const"; "static"; "extern";
  ]

let is_keyword s = List.mem s keywords

(* Multi-character punctuation, longest first so greedy matching works. *)
let puncts =
  [
    "<<="; ">>="; "->"; "++"; "--"; "<<"; ">>"; "<="; ">="; "=="; "!=";
    "&&"; "||"; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "+"; "-";
    "*"; "/"; "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "="; ";"; ","; ".";
    "("; ")"; "["; "]"; "{"; "}"; "?"; ":";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c
let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
}

let cur_loc st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)
let peek st i = if st.pos + i < String.length st.src then st.src.[st.pos + i] else '\000'
let cur st = peek st 0

let advance st =
  (if cur st = '\n' then begin
     st.line <- st.line + 1;
     st.bol <- st.pos + 1
   end);
  st.pos <- st.pos + 1

let rec skip_ws_and_comments st =
  match cur st with
  | ' ' | '\t' | '\r' | '\n' ->
    advance st;
    skip_ws_and_comments st
  | '/' when peek st 1 = '/' ->
    while cur st <> '\n' && cur st <> '\000' do advance st done;
    skip_ws_and_comments st
  | '/' when peek st 1 = '*' ->
    let loc = cur_loc st in
    advance st;
    advance st;
    let rec close () =
      match cur st with
      | '\000' -> Loc.error loc "unterminated comment"
      | '*' when peek st 1 = '/' ->
        advance st;
        advance st
      | _ ->
        advance st;
        close ()
    in
    close ();
    skip_ws_and_comments st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while is_ident_char (cur st) do advance st done;
  String.sub st.src start (st.pos - start)

let lex_number st loc =
  let start = st.pos in
  if cur st = '0' && (peek st 1 = 'x' || peek st 1 = 'X') then begin
    advance st;
    advance st;
    while is_hex_digit (cur st) do advance st done;
    let text = String.sub st.src start (st.pos - start) in
    let v =
      try Int64.of_string text
      with _ -> Loc.error loc "bad hex literal '%s'" text
    in
    let ik = if cur st = 'L' || cur st = 'l' then (advance st; Types.ILong) else Types.IInt in
    INTLIT (v, ik)
  end
  else begin
    while is_digit (cur st) do advance st done;
    let is_float = ref false in
    if cur st = '.' && is_digit (peek st 1) then begin
      is_float := true;
      advance st;
      while is_digit (cur st) do advance st done
    end;
    if cur st = 'e' || cur st = 'E' then begin
      is_float := true;
      advance st;
      if cur st = '+' || cur st = '-' then advance st;
      while is_digit (cur st) do advance st done
    end;
    let text = String.sub st.src start (st.pos - start) in
    if !is_float then begin
      let fk = if cur st = 'f' || cur st = 'F' then (advance st; Types.FFloat) else Types.FDouble in
      match float_of_string_opt text with
      | Some f -> FLOATLIT (f, fk)
      | None -> Loc.error loc "bad float literal '%s'" text
    end
    else begin
      let ik = if cur st = 'L' || cur st = 'l' then (advance st; Types.ILong) else Types.IInt in
      match Int64.of_string_opt text with
      | Some v -> INTLIT (v, ik)
      | None -> Loc.error loc "bad integer literal '%s'" text
    end
  end

let lex_escape st loc =
  advance st;
  (* consume backslash *)
  let c = cur st in
  advance st;
  match c with
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> Loc.error loc "unknown escape '\\%c'" c

let lex_string st loc =
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match cur st with
    | '\000' | '\n' -> Loc.error loc "unterminated string literal"
    | '"' -> advance st
    | '\\' ->
      Buffer.add_char buf (lex_escape st loc);
      go ()
    | c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  STRLIT (Buffer.contents buf)

let lex_char st loc =
  advance st;
  let c =
    match cur st with
    | '\\' -> lex_escape st loc
    | c ->
      advance st;
      c
  in
  if cur st <> '\'' then Loc.error loc "unterminated char literal";
  advance st;
  INTLIT (Int64.of_int (Char.code c), Types.IChar)

let lex_pragma st =
  let start = st.pos in
  while cur st <> '\n' && cur st <> '\000' do advance st done;
  let line = String.sub st.src start (st.pos - start) in
  PRAGMA (String.trim line)

let try_punct st =
  List.find_opt
    (fun p ->
      let n = String.length p in
      st.pos + n <= String.length st.src
      && String.equal (String.sub st.src st.pos n) p)
    puncts

let next_token st : t =
  skip_ws_and_comments st;
  let loc = cur_loc st in
  let tok =
    match cur st with
    | '\000' -> EOF
    | '#' ->
      advance st;
      lex_pragma st
    | '"' -> lex_string st loc
    | '\'' -> lex_char st loc
    | c when is_ident_start c ->
      let id = lex_ident st in
      if is_keyword id then KW id else IDENT id
    | c when is_digit c -> lex_number st loc
    | _ -> (
      match try_punct st with
      | Some p ->
        st.pos <- st.pos + String.length p;
        PUNCT p
      | None -> Loc.error loc "unexpected character '%c'" (cur st))
  in
  { tok; loc }

(** Tokenize a whole source string. The result always ends with [EOF]. *)
let tokenize ?(file = "<string>") src : t array =
  let st = { src; file; pos = 0; line = 1; bol = 0 } in
  let acc = ref [] in
  let rec go () =
    let t = next_token st in
    acc := t :: !acc;
    if t.tok <> EOF then go ()
  in
  go ();
  Array.of_list (List.rev !acc)

let show_token = function
  | IDENT s -> Printf.sprintf "identifier '%s'" s
  | INTLIT (v, _) -> Printf.sprintf "integer %Ld" v
  | FLOATLIT (f, _) -> Printf.sprintf "float %g" f
  | STRLIT s -> Printf.sprintf "string %S" s
  | KW s -> Printf.sprintf "keyword '%s'" s
  | PUNCT s -> Printf.sprintf "'%s'" s
  | PRAGMA s -> Printf.sprintf "#%s" s
  | EOF -> "end of input"
