(** Pretty-printer: renders MiniC back to C-like source.

    The output of the expansion pass is meant to be read the way the
    paper presents its transformed examples (Figures 1, 3, 4), so the
    printer aims for compact, conventional C. Round-tripping through
    {!Parser} is property-tested. *)

open Ast

let ikind_name = function
  | Types.IChar -> "char"
  | Types.IShort -> "short"
  | Types.IInt -> "int"
  | Types.ILong -> "long"

let fkind_name = function Types.FFloat -> "float" | Types.FDouble -> "double"

(** Render [ty] around declarator text [d] (C inside-out declarators). *)
let rec ty_decl (t : Types.ty) (d : string) : string =
  match t with
  | Tvoid -> "void " ^ d
  | Tint ik -> ikind_name ik ^ " " ^ d
  | Tfloat fk -> fkind_name fk ^ " " ^ d
  | Tstruct tag -> "struct " ^ tag ^ " " ^ d
  | Tptr inner -> ty_decl inner ("*" ^ d)
  | Tarray (elt, n) ->
    let d = if String.length d > 0 && d.[0] = '*' then "(" ^ d ^ ")" else d in
    ty_decl elt (Printf.sprintf "%s[%d]" d n)
  | Tfun (ret, args) ->
    let args = String.concat ", " (List.map (fun a -> ty_decl a "") args) in
    ty_decl ret (Printf.sprintf "%s(%s)" d args)

let ty_name t = String.trim (ty_decl t "")

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\000' -> Buffer.add_string buf "\\0"
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let binop_text = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Shl -> "<<"
  | Shr -> ">>"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Land -> "&&"
  | Lor -> "||"

let binop_prec = function
  | Mul | Div | Mod -> 10
  | Add | Sub -> 9
  | Shl | Shr -> 8
  | Lt | Gt | Le | Ge -> 7
  | Eq | Ne -> 6
  | Band -> 5
  | Bxor -> 4
  | Bor -> 3
  | Land -> 2
  | Lor -> 1

(* Expressions are printed with minimal parentheses: a subexpression is
   parenthesized when its precedence is at most its context's. *)
let rec exp_text ?(prec = -1) (e : exp) : string =
  let text =
    match e with
    | Const (Cint (v, Types.IChar))
      when v >= 32L && v < 127L && v <> Int64.of_int (Char.code '\'')
           && v <> Int64.of_int (Char.code '\\') ->
      Printf.sprintf "'%c'" (Char.chr (Int64.to_int v))
    | Const (Cint (v, Types.ILong)) -> Printf.sprintf "%LdL" v
    | Const (Cint (v, _)) -> Int64.to_string v
    | Const (Cfloat (f, fk)) ->
      let s = Printf.sprintf "%.17g" f in
      let s = if String.contains s '.' || String.contains s 'e' then s else s ^ ".0" in
      if fk = Types.FFloat then s ^ "f" else s
    | Const (Cstr s) -> Printf.sprintf "\"%s\"" (escape_string s)
    | Lval (_, lv) -> lval_text lv
    | Addr lv -> "&" ^ parenthesize_lval lv
    | Unop (Neg, e) -> "-" ^ exp_text ~prec:11 e
    | Unop (Lognot, e) -> "!" ^ exp_text ~prec:11 e
    | Unop (Bitnot, e) -> "~" ^ exp_text ~prec:11 e
    | Binop (op, a, b) ->
      let p = binop_prec op in
      Printf.sprintf "%s %s %s"
        (exp_text ~prec:(p - 1) a)
        (binop_text op)
        (exp_text ~prec:p b)
    | Cast (t, e) -> Printf.sprintf "(%s)%s" (ty_name t) (exp_text ~prec:11 e)
    | SizeofType t -> Printf.sprintf "sizeof(%s)" (ty_name t)
    | SizeofExp e -> Printf.sprintf "sizeof %s" (exp_text ~prec:11 e)
    | Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map exp_text args))
    | Cond (c, a, b) ->
      Printf.sprintf "%s ? %s : %s" (exp_text ~prec:1 c) (exp_text a)
        (exp_text ~prec:0 b)
  in
  let my_prec =
    match e with
    | Binop (op, _, _) -> binop_prec op
    | Cond _ -> 0
    | Unop _ | Cast _ | Addr _ -> 11
    | _ -> 12
  in
  if my_prec <= prec then "(" ^ text ^ ")" else text

and lval_text (lv : lval) : string =
  match lv with
  | Var x -> x
  | Deref (Lval (_, l)) -> "*" ^ parenthesize_lval l
  | Deref e -> "*" ^ exp_text ~prec:11 e
  | Index (l, i) -> Printf.sprintf "%s[%s]" (parenthesize_lval l) (exp_text i)
  | Field (Deref e, f) -> Printf.sprintf "%s->%s" (exp_text ~prec:11 e) f
  | Field (l, f) -> Printf.sprintf "%s.%s" (parenthesize_lval l) f

(* A base lval in a postfix position needs parens when it is a deref. *)
and parenthesize_lval lv =
  match lv with
  | Deref _ -> (
    match lv with
    | Deref (Lval (_, l)) -> "(*" ^ parenthesize_lval l ^ ")"
    | Deref e -> "(*" ^ exp_text ~prec:11 e ^ ")"
    | _ -> assert false)
  | _ -> lval_text lv

(* ------------------------------------------------------------------ *)

let buf_indent buf n = Buffer.add_string buf (String.make (2 * n) ' ')

let rec stmt_to_buf buf ind (s : stmt) =
  match s.skind with
  | Sskip ->
    buf_indent buf ind;
    Buffer.add_string buf ";\n"
  | Sassign (_, lv, e) ->
    buf_indent buf ind;
    Buffer.add_string buf
      (Printf.sprintf "%s = %s;\n" (lval_text lv) (exp_text e))
  | Scall (ret, f, args) ->
    buf_indent buf ind;
    let call =
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map exp_text args))
    in
    (match ret with
    | None -> Buffer.add_string buf (call ^ ";\n")
    | Some (_, lv) ->
      Buffer.add_string buf (Printf.sprintf "%s = %s;\n" (lval_text lv) call))
  | Sseq stmts ->
    buf_indent buf ind;
    Buffer.add_string buf "{\n";
    List.iter (stmt_to_buf buf (ind + 1)) stmts;
    buf_indent buf ind;
    Buffer.add_string buf "}\n"
  | Sif (c, t, e) -> (
    buf_indent buf ind;
    Buffer.add_string buf (Printf.sprintf "if (%s)\n" (exp_text c));
    block_to_buf buf ind t;
    match e.skind with
    | Sskip -> ()
    | _ ->
      buf_indent buf ind;
      Buffer.add_string buf "else\n";
      block_to_buf buf ind e)
  | Swhile (_, c, body) ->
    buf_indent buf ind;
    Buffer.add_string buf (Printf.sprintf "while (%s)\n" (exp_text c));
    block_to_buf buf ind body
  | Sfor (_, init, c, step, body) ->
    buf_indent buf ind;
    Buffer.add_string buf
      (Printf.sprintf "for (%s; %s; %s)\n" (inline_simple init) (exp_text c)
         (inline_simple step));
    block_to_buf buf ind body
  | Sreturn None ->
    buf_indent buf ind;
    Buffer.add_string buf "return;\n"
  | Sreturn (Some e) ->
    buf_indent buf ind;
    Buffer.add_string buf (Printf.sprintf "return %s;\n" (exp_text e))
  | Sbreak ->
    buf_indent buf ind;
    Buffer.add_string buf "break;\n"
  | Scontinue ->
    buf_indent buf ind;
    Buffer.add_string buf "continue;\n"

and block_to_buf buf ind s =
  match s.skind with
  | Sseq _ -> stmt_to_buf buf ind s
  | _ ->
    buf_indent buf ind;
    Buffer.add_string buf "{\n";
    stmt_to_buf buf (ind + 1) s;
    buf_indent buf ind;
    Buffer.add_string buf "}\n"

(** For-loop headers hold single simple statements, printed inline. *)
and inline_simple (s : stmt) : string =
  match s.skind with
  | Sskip -> ""
  | Sassign (_, lv, e) -> Printf.sprintf "%s = %s" (lval_text lv) (exp_text e)
  | Scall (None, f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map exp_text args))
  | Scall (Some (_, lv), f, args) ->
    Printf.sprintf "%s = %s(%s)" (lval_text lv) f
      (String.concat ", " (List.map exp_text args))
  | Sseq [ s ] -> inline_simple s
  | Sseq [] -> ""
  | _ -> failwith "for-loop headers must be simple statements"

let rec init_text = function
  | Iexp e -> exp_text e
  | Ilist items ->
    "{" ^ String.concat ", " (List.map init_text items) ^ "}"

let program_to_string (p : program) : string =
  let buf = Buffer.create 4096 in
  let parallel = p.parallel_loops in
  let rec loop_marks s =
    (* Re-emit #pragma parallel before candidate loops. *)
    match s.skind with
    | Swhile (lid, _, _) | Sfor (lid, _, _, _, _) -> List.mem lid parallel
    | _ -> false
  and emit_stmt ind s =
    (match s.skind with
    | _ when loop_marks s ->
      buf_indent buf ind;
      Buffer.add_string buf "#pragma parallel\n"
    | _ -> ());
    match s.skind with
    | Sseq stmts ->
      buf_indent buf ind;
      Buffer.add_string buf "{\n";
      List.iter (emit_stmt (ind + 1)) stmts;
      buf_indent buf ind;
      Buffer.add_string buf "}\n"
    | Sif (c, t, e) -> (
      buf_indent buf ind;
      Buffer.add_string buf (Printf.sprintf "if (%s)\n" (exp_text c));
      emit_block ind t;
      match e.skind with
      | Sskip -> ()
      | _ ->
        buf_indent buf ind;
        Buffer.add_string buf "else\n";
        emit_block ind e)
    | Swhile (_, c, body) ->
      buf_indent buf ind;
      Buffer.add_string buf (Printf.sprintf "while (%s)\n" (exp_text c));
      emit_block ind body
    | Sfor (_, init, c, step, body) ->
      buf_indent buf ind;
      Buffer.add_string buf
        (Printf.sprintf "for (%s; %s; %s)\n" (inline_simple init) (exp_text c)
           (inline_simple step));
      emit_block ind body
    | _ -> stmt_to_buf buf ind s
  and emit_block ind s =
    match s.skind with
    | Sseq _ -> emit_stmt ind s
    | _ ->
      buf_indent buf ind;
      Buffer.add_string buf "{\n";
      emit_stmt (ind + 1) s;
      buf_indent buf ind;
      Buffer.add_string buf "}\n"
  in
  List.iter
    (fun g ->
      match g with
      | Gcomposite c ->
        Buffer.add_string buf (Printf.sprintf "struct %s {\n" c.Types.cname);
        List.iter
          (fun (f, t) ->
            Buffer.add_string buf (Printf.sprintf "  %s;\n" (ty_decl t f)))
          c.Types.cfields;
        Buffer.add_string buf "};\n\n"
      | Gvar (name, ty, ini) ->
        let decl = ty_decl ty name in
        (match ini with
        | None -> Buffer.add_string buf (decl ^ ";\n")
        | Some i ->
          Buffer.add_string buf
            (Printf.sprintf "%s = %s;\n" decl (init_text i)))
      | Gfun f ->
        let formals =
          match f.fformals with
          | [] -> "void"
          | fs -> String.concat ", " (List.map (fun (n, t) -> ty_decl t n) fs)
        in
        Buffer.add_string buf
          (Printf.sprintf "\n%s(%s)\n{\n" (ty_decl f.freturn f.fname) formals);
        List.iter
          (fun (n, t) ->
            Buffer.add_string buf (Printf.sprintf "  %s;\n" (ty_decl t n)))
          f.flocals;
        (match f.fbody.skind with
        | Sseq stmts -> List.iter (emit_stmt 1) stmts
        | _ -> emit_stmt 1 f.fbody);
        Buffer.add_string buf "}\n")
    p.globals;
  Buffer.contents buf
