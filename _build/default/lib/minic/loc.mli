(** Source locations for error reporting throughout the frontend. *)

type t = { file : string; line : int; col : int }

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

(** A location that points nowhere, used for generated code. *)
val dummy : t

val make : file:string -> line:int -> col:int -> t
val to_string : t -> string

(** Raised by the lexer, parser and type checker on malformed input. *)
exception Error of t * string

(** [error loc fmt ...] raises {!Error} with a formatted message. *)
val error : t -> ('a, unit, string, 'b) format4 -> 'a
