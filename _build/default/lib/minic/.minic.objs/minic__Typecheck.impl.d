lib/minic/typecheck.pp.ml: Ast Hashtbl List Loc Parser Printf Types
