lib/minic/ast.pp.ml: Hashtbl Int64 List Loc Ppx_deriving_runtime Printf String Types
