lib/minic/visit.pp.mli: Ast Format
