lib/minic/pretty.pp.mli: Ast Types
