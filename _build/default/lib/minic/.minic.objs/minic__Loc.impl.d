lib/minic/loc.pp.ml: Ppx_deriving_runtime Printf
