lib/minic/pretty.pp.ml: Ast Buffer Char Int64 List Printf String Types
