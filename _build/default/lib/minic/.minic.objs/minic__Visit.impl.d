lib/minic/visit.pp.ml: Ast List Option Ppx_deriving_runtime
