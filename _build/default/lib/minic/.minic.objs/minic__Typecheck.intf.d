lib/minic/typecheck.pp.mli: Ast Hashtbl Loc Types
