lib/minic/loc.pp.mli: Format
