lib/minic/lexer.pp.ml: Array Buffer Char Int64 List Loc Printf String Types
