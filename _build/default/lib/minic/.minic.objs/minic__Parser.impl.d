lib/minic/parser.pp.ml: Array Ast Hashtbl Int64 Lexer List Loc Option String Types
