lib/minic/lexer.pp.mli: Loc Types
