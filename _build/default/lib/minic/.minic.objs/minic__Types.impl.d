lib/minic/types.pp.ml: Hashtbl List Loc Ppx_deriving_runtime String
