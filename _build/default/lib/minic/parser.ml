(** Recursive-descent parser for MiniC.

    Grammar subset: struct definitions, global variables with constant
    initializers, function definitions, C89-style statements, and full
    expression syntax with C precedence (including casts, [sizeof],
    [?:], compound assignment and [++]/[--], which are desugared here).

    A [#pragma parallel] line marks the next loop as a parallelization
    candidate; its loop id is recorded in [program.parallel_loops]. *)

open Ast

type st = {
  toks : Lexer.t array;
  mutable pos : int;
  prog : program;
  mutable pending_pragma : bool;  (** saw [#pragma parallel] not yet consumed *)
}

let peek st = st.toks.(st.pos)
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1) else peek st
let loc st = (peek st).loc
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let err st fmt = Loc.error (loc st) fmt

let expect_punct st p =
  match (peek st).tok with
  | PUNCT q when String.equal p q -> advance st
  | t -> err st "expected '%s' but found %s" p (Lexer.show_token t)

let expect_kw st k =
  match (peek st).tok with
  | KW q when String.equal k q -> advance st
  | t -> err st "expected '%s' but found %s" k (Lexer.show_token t)

let eat_punct st p =
  match (peek st).tok with
  | PUNCT q when String.equal p q ->
    advance st;
    true
  | _ -> false

let eat_kw st k =
  match (peek st).tok with
  | KW q when String.equal k q ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  match (peek st).tok with
  | IDENT s ->
    advance st;
    s
  | t -> err st "expected an identifier but found %s" (Lexer.show_token t)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

(** Is the upcoming token the start of a type? Used to disambiguate
    casts from parenthesized expressions and declarations from
    statements (MiniC has no typedefs, so this is purely syntactic). *)
let starts_type st =
  match (peek st).tok with
  | KW
      ( "void" | "char" | "short" | "int" | "long" | "unsigned" | "float"
      | "double" | "struct" | "const" | "static" | "extern" ) ->
    true
  | _ -> false

let rec parse_base_type st : Types.ty =
  (* Storage/qualifier keywords are accepted and ignored. *)
  if eat_kw st "const" || eat_kw st "static" || eat_kw st "extern" then
    parse_base_type st
  else if eat_kw st "unsigned" then
    (* MiniC integers are signed with wraparound; [unsigned] is accepted
       for source compatibility and mapped to the same-width kind. *)
    parse_int_kind st
  else if eat_kw st "void" then Types.Tvoid
  else if eat_kw st "float" then Types.Tfloat FFloat
  else if eat_kw st "double" then Types.Tfloat FDouble
  else if eat_kw st "struct" then Types.Tstruct (expect_ident st)
  else parse_int_kind st

and parse_int_kind st : Types.ty =
  if eat_kw st "char" then Types.Tint IChar
  else if eat_kw st "short" then begin
    ignore (eat_kw st "int");
    Types.Tint IShort
  end
  else if eat_kw st "long" then begin
    ignore (eat_kw st "long");
    ignore (eat_kw st "int");
    Types.Tint ILong
  end
  else if eat_kw st "int" then Types.Tint IInt
  else err st "expected a type but found %s" (Lexer.show_token (peek st).tok)

(* Declarators follow C's inside-out reading: "int *a[10]" is an array
   of pointers while "int ( *a )[10]" is a pointer to an array. The
   shape is parsed first and then applied to the base type. *)
type decl_shape =
  | DName of string
  | DPtr of decl_shape
  | DArr of decl_shape * int list

let rec apply_shape (shape : decl_shape) (t : Types.ty) : string * Types.ty =
  match shape with
  | DName n -> (n, t)
  | DPtr d -> apply_shape d (Types.Tptr t)
  | DArr (d, dims) ->
    apply_shape d (List.fold_right (fun n t -> Types.Tarray (t, n)) dims t)

(** Declarators like [int *x\[10\]\[20\]] or a parenthesized
    pointer-to-array: returns the name and full type. *)
let parse_declarator st base : string * Types.ty =
  let rec decl () : decl_shape =
    if eat_punct st "*" then DPtr (decl ()) else direct ()
  and direct () =
    let inner =
      if eat_punct st "(" then begin
        let d = decl () in
        expect_punct st ")";
        d
      end
      else DName (expect_ident st)
    in
    let rec suffixes acc =
      if eat_punct st "[" then begin
        let n =
          match (peek st).tok with
          | INTLIT (v, _) ->
            advance st;
            Int64.to_int v
          | _ -> err st "array bounds must be integer literals"
        in
        expect_punct st "]";
        suffixes (n :: acc)
      end
      else List.rev acc
    in
    match suffixes [] with [] -> inner | dims -> DArr (inner, dims)
  in
  apply_shape (decl ()) base

(** A full type with no declarator, as in casts and [sizeof]: supports
    pointer chains, array suffixes, and parenthesized pointer-to-array
    abstract declarators. *)
let parse_abstract_type st : Types.ty =
  let base = parse_base_type st in
  let rec adecl () : decl_shape =
    if eat_punct st "*" then DPtr (adecl ()) else adirect ()
  and adirect () =
    let inner =
      if
        (match (peek st).tok with PUNCT "(" -> true | _ -> false)
        && match (peek2 st).tok with
           | PUNCT ("*" | "(") -> true
           | _ -> false
      then begin
        expect_punct st "(";
        let d = adecl () in
        expect_punct st ")";
        d
      end
      else DName ""
    in
    let rec suffixes acc =
      if eat_punct st "[" then begin
        let n =
          match (peek st).tok with
          | INTLIT (v, _) ->
            advance st;
            Int64.to_int v
          | _ -> err st "array bounds must be integer literals"
        in
        expect_punct st "]";
        suffixes (n :: acc)
      end
      else List.rev acc
    in
    match suffixes [] with [] -> inner | dims -> DArr (inner, dims)
  in
  snd (apply_shape (adecl ()) base)

(* parse_abstract_type is defined after the declarator machinery. *)

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

let binop_of_punct = function
  | "*" -> Some (Mul, 10)
  | "/" -> Some (Div, 10)
  | "%" -> Some (Mod, 10)
  | "+" -> Some (Add, 9)
  | "-" -> Some (Sub, 9)
  | "<<" -> Some (Shl, 8)
  | ">>" -> Some (Shr, 8)
  | "<" -> Some (Lt, 7)
  | ">" -> Some (Gt, 7)
  | "<=" -> Some (Le, 7)
  | ">=" -> Some (Ge, 7)
  | "==" -> Some (Eq, 6)
  | "!=" -> Some (Ne, 6)
  | "&" -> Some (Band, 5)
  | "^" -> Some (Bxor, 4)
  | "|" -> Some (Bor, 3)
  | "&&" -> Some (Land, 2)
  | "||" -> Some (Lor, 1)
  | _ -> None

let as_lval st (e : exp) : lval =
  match e with
  | Lval (_, lv) -> lv
  | _ -> err st "expected an lvalue"

let rec parse_exp st : exp = parse_cond st

and parse_cond st : exp =
  let c = parse_binop st 1 in
  if eat_punct st "?" then begin
    let a = parse_exp st in
    expect_punct st ":";
    let b = parse_cond st in
    Cond (c, a, b)
  end
  else c

and parse_binop st min_prec : exp =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match (peek st).tok with
    | PUNCT p -> (
      match binop_of_punct p with
      | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binop st (prec + 1) in
        lhs := Binop (op, !lhs, rhs)
      | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st : exp =
  match (peek st).tok with
  | PUNCT "-" ->
    advance st;
    Unop (Neg, parse_unary st)
  | PUNCT "!" ->
    advance st;
    Unop (Lognot, parse_unary st)
  | PUNCT "~" ->
    advance st;
    Unop (Bitnot, parse_unary st)
  | PUNCT "+" ->
    advance st;
    parse_unary st
  | PUNCT "*" ->
    advance st;
    let e = parse_unary st in
    Lval (no_aid, Deref e)
  | PUNCT "&" ->
    advance st;
    let e = parse_unary st in
    Addr (as_lval st e)
  | KW "sizeof" ->
    advance st;
    if (match (peek st).tok with PUNCT "(" -> true | _ -> false)
       && (match (peek2 st).tok with
          | KW
              ( "void" | "char" | "short" | "int" | "long" | "unsigned"
              | "float" | "double" | "struct" ) ->
            true
          | _ -> false)
    then begin
      expect_punct st "(";
      let t = parse_abstract_type st in
      expect_punct st ")";
      SizeofType t
    end
    else SizeofExp (parse_unary st)
  | PUNCT "(" when
      (match (peek2 st).tok with
      | KW
          ( "void" | "char" | "short" | "int" | "long" | "unsigned" | "float"
          | "double" | "struct" ) ->
        true
      | _ -> false) ->
    advance st;
    let t = parse_abstract_type st in
    expect_punct st ")";
    Cast (t, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st : exp =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match (peek st).tok with
    | PUNCT "[" ->
      advance st;
      let i = parse_exp st in
      expect_punct st "]";
      (* indexing a non-lvalue (e.g. a parenthesized cast) is pointer
         arithmetic: e[i] == *(e + i) *)
      e :=
        (match !e with
        | Lval (_, lv) -> Lval (no_aid, Index (lv, i))
        | other -> Lval (no_aid, Deref (Binop (Add, other, i))))
    | PUNCT "." ->
      advance st;
      let f = expect_ident st in
      e := Lval (no_aid, Field (as_lval st !e, f))
    | PUNCT "->" ->
      advance st;
      let f = expect_ident st in
      e := Lval (no_aid, Field (Deref !e, f))
    | _ -> continue_ := false
  done;
  !e

and parse_primary st : exp =
  match (peek st).tok with
  | INTLIT (v, ik) ->
    advance st;
    Const (Cint (v, ik))
  | FLOATLIT (f, fk) ->
    advance st;
    Const (Cfloat (f, fk))
  | STRLIT s ->
    advance st;
    Const (Cstr s)
  | IDENT name -> (
    advance st;
    if eat_punct st "(" then begin
      let args = parse_args st in
      Call (name, args)
    end
    else Lval (no_aid, Var name))
  | PUNCT "(" ->
    advance st;
    let e = parse_exp st in
    expect_punct st ")";
    e
  | t -> err st "expected an expression but found %s" (Lexer.show_token t)

and parse_args st : exp list =
  if eat_punct st ")" then []
  else begin
    let rec go acc =
      let e = parse_exp st in
      if eat_punct st "," then go (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

(* ------------------------------------------------------------------ *)
(* Initializers                                                        *)
(* ------------------------------------------------------------------ *)

let rec parse_init st : init =
  if eat_punct st "{" then begin
    let items = ref [] in
    let rec go () =
      if eat_punct st "}" then ()
      else begin
        items := parse_init st :: !items;
        if eat_punct st "," then go () else expect_punct st "}"
      end
    in
    go ();
    Ilist (List.rev !items)
  end
  else Iexp (parse_exp st)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(** Local declarations are hoisted to function scope (C89 style), so a
    function body's parse result is the statement plus collected locals
    and the initialization statements in place. Shadowing within a
    function is rejected rather than renamed. *)
type fun_ctx = { mutable locals : (string * Types.ty) list }

let compound_ops =
  [
    ("+=", Add); ("-=", Sub); ("*=", Mul); ("/=", Div); ("%=", Mod);
    ("&=", Band); ("|=", Bor); ("^=", Bxor); ("<<=", Shl); (">>=", Shr);
  ]

let take_pragma st =
  match (peek st).tok with
  | PRAGMA p when String.length p >= 6 && String.sub p 0 6 = "pragma" ->
    let rest = String.trim (String.sub p 6 (String.length p - 6)) in
    advance st;
    if String.equal rest "parallel" then st.pending_pragma <- true
    else Loc.error (peek st).loc "unknown pragma '%s'" rest
  | _ -> ()

let mark_loop st lid =
  if st.pending_pragma then begin
    st.prog.parallel_loops <- st.prog.parallel_loops @ [ lid ];
    st.pending_pragma <- false
  end

let rec parse_stmt st (ctx : fun_ctx) : stmt =
  take_pragma st;
  let l = loc st in
  match (peek st).tok with
  | PUNCT "{" ->
    advance st;
    let stmts = parse_block_items st ctx in
    mk_stmt ~loc:l (Sseq stmts)
  | PUNCT ";" ->
    advance st;
    mk_stmt ~loc:l Sskip
  | KW "if" ->
    advance st;
    expect_punct st "(";
    let c = parse_exp st in
    expect_punct st ")";
    let then_ = parse_stmt st ctx in
    let else_ = if eat_kw st "else" then parse_stmt st ctx else skip in
    mk_stmt ~loc:l (Sif (c, then_, else_))
  | KW "while" ->
    let pending = st.pending_pragma in
    st.pending_pragma <- false;
    advance st;
    expect_punct st "(";
    let c = parse_exp st in
    expect_punct st ")";
    let lid = fresh_lid st.prog in
    st.pending_pragma <- pending;
    mark_loop st lid;
    let body = parse_stmt st ctx in
    mk_stmt ~loc:l (Swhile (lid, c, body))
  | KW "for" ->
    let pending = st.pending_pragma in
    st.pending_pragma <- false;
    advance st;
    expect_punct st "(";
    let init =
      if (match (peek st).tok with PUNCT ";" -> true | _ -> false) then skip
      else if starts_type st then parse_local_decl st ctx
      else parse_simple st ctx
    in
    expect_punct st ";";
    let cond =
      if (match (peek st).tok with PUNCT ";" -> true | _ -> false) then cone
      else parse_exp st
    in
    expect_punct st ";";
    let step =
      if (match (peek st).tok with PUNCT ")" -> true | _ -> false) then skip
      else parse_simple st ctx
    in
    expect_punct st ")";
    let lid = fresh_lid st.prog in
    st.pending_pragma <- pending;
    mark_loop st lid;
    let body = parse_stmt st ctx in
    mk_stmt ~loc:l (Sfor (lid, init, cond, step, body))
  | KW "return" ->
    advance st;
    let e =
      if (match (peek st).tok with PUNCT ";" -> true | _ -> false) then None
      else Some (parse_exp st)
    in
    expect_punct st ";";
    mk_stmt ~loc:l (Sreturn e)
  | KW "break" ->
    advance st;
    expect_punct st ";";
    mk_stmt ~loc:l Sbreak
  | KW "continue" ->
    advance st;
    expect_punct st ";";
    mk_stmt ~loc:l Scontinue
  | KW "do" -> err st "do/while loops are not supported; use while"
  | _ when starts_type st ->
    let s = parse_local_decl st ctx in
    expect_punct st ";";
    s
  | _ ->
    let s = parse_simple st ctx in
    expect_punct st ";";
    s

and parse_block_items st ctx : stmt list =
  let acc = ref [] in
  while not (eat_punct st "}") do
    (match (peek st).tok with
    | EOF -> err st "unexpected end of input inside a block"
    | _ -> ());
    acc := parse_stmt st ctx :: !acc
  done;
  List.rev !acc

(** [int x = e, *p;] — registers locals and returns init assignments. *)
and parse_local_decl st ctx : stmt =
  let l = loc st in
  let base = parse_base_type st in
  let rec go acc =
    let name, ty = parse_declarator st base in
    if List.mem_assoc name ctx.locals then
      Loc.error l "redeclaration of local '%s' (MiniC forbids shadowing)" name;
    ctx.locals <- ctx.locals @ [ (name, ty) ];
    let acc =
      if eat_punct st "=" then
        if match (peek st).tok with PUNCT "{" -> true | _ -> false then begin
          let ini = parse_init st in
          List.rev_append (init_stmts st l (Var name) ty ini) acc
        end
        else begin
          let e = parse_exp st in
          mk_stmt ~loc:l (Sassign (no_aid, Var name, e)) :: acc
        end
      else acc
    in
    if eat_punct st "," then go acc else List.rev acc
  in
  mk_stmt ~loc:l (Sseq (go []))

(** Desugar a local aggregate initializer into element assignments. *)
and init_stmts st l (lv : lval) (ty : Types.ty) (ini : init) : stmt list =
  match (ty, ini) with
  | Types.Tarray (elt, n), Ilist items ->
    if List.length items > n then
      Loc.error l "too many initializers for array of %d" n;
    List.concat
      (List.mapi
         (fun i item -> init_stmts st l (Index (lv, cint i)) elt item)
         items)
  | Types.Tstruct tag, Ilist items ->
    let c = Types.find_composite st.prog.comps l tag in
    if List.length items > List.length c.Types.cfields then
      Loc.error l "too many initializers for struct %s" tag;
    List.concat
      (List.mapi
         (fun i item ->
           let fname, fty = List.nth c.Types.cfields i in
           init_stmts st l (Field (lv, fname)) fty item)
         items)
  | _, Iexp e -> [ mk_stmt ~loc:l (Sassign (no_aid, lv, e)) ]
  | _, Ilist _ -> Loc.error l "brace initializer for a scalar"

(** Simple statements: assignments, compound assignments, [++]/[--],
    and call statements. *)
and parse_simple st _ctx : stmt =
  let l = loc st in
  match (peek st).tok with
  | PUNCT "++" ->
    advance st;
    let lv = as_lval st (parse_unary st) in
    mk_stmt ~loc:l
      (Sassign (no_aid, lv, Binop (Add, Lval (no_aid, lv), cone)))
  | PUNCT "--" ->
    advance st;
    let lv = as_lval st (parse_unary st) in
    mk_stmt ~loc:l
      (Sassign (no_aid, lv, Binop (Sub, Lval (no_aid, lv), cone)))
  | _ -> (
    let e = parse_unary st in
    match (peek st).tok with
    | PUNCT "=" ->
      advance st;
      let lv = as_lval st e in
      let rhs = parse_exp st in
      mk_stmt ~loc:l (Sassign (no_aid, lv, rhs))
    | PUNCT p when List.mem_assoc p compound_ops ->
      advance st;
      let op = List.assoc p compound_ops in
      let lv = as_lval st e in
      let rhs = parse_exp st in
      mk_stmt ~loc:l
        (Sassign (no_aid, lv, Binop (op, Lval (no_aid, lv), rhs)))
    | PUNCT "++" ->
      advance st;
      let lv = as_lval st e in
      mk_stmt ~loc:l
        (Sassign (no_aid, lv, Binop (Add, Lval (no_aid, lv), cone)))
    | PUNCT "--" ->
      advance st;
      let lv = as_lval st e in
      mk_stmt ~loc:l
        (Sassign (no_aid, lv, Binop (Sub, Lval (no_aid, lv), cone)))
    | _ -> (
      match e with
      | Call (f, args) -> mk_stmt ~loc:l (Scall (None, f, args))
      | _ -> err st "expression statements must be calls or assignments"))

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_struct_def st : Types.composite =
  expect_kw st "struct";
  let tag = expect_ident st in
  expect_punct st "{";
  let fields = ref [] in
  while not (eat_punct st "}") do
    let base = parse_base_type st in
    let rec go () =
      let name, ty = parse_declarator st base in
      fields := (name, ty) :: !fields;
      if eat_punct st "," then go ()
    in
    go ();
    expect_punct st ";"
  done;
  expect_punct st ";";
  { Types.cname = tag; cfields = List.rev !fields }


let parse_params st : (string * Types.ty) list =
  if eat_punct st ")" then []
  else if
    (match (peek st).tok with KW "void" -> true | _ -> false)
    && match (peek2 st).tok with PUNCT ")" -> true | _ -> false
  then begin
    advance st;
    advance st;
    []
  end
  else begin
    let rec go acc =
      let base = parse_base_type st in
      let name, ty = parse_declarator st base in
      (* Array parameters decay to pointers, as in C. *)
      let ty = Types.decay ty in
      if eat_punct st "," then go ((name, ty) :: acc)
      else begin
        expect_punct st ")";
        List.rev ((name, ty) :: acc)
      end
    in
    go []
  end

let parse_topdecl st : unit =
  take_pragma st;
  let l = loc st in
  match (peek st).tok with
  | KW "struct" when (match (peek2 st).tok with IDENT _ -> true | _ -> false)
                     && (match st.toks.(st.pos + 2).tok with
                        | PUNCT "{" -> true
                        | _ -> false) ->
    let c = parse_struct_def st in
    if Hashtbl.mem st.prog.comps c.Types.cname then
      Loc.error l "redefinition of struct '%s'" c.Types.cname;
    Hashtbl.replace st.prog.comps c.Types.cname c;
    st.prog.globals <- st.prog.globals @ [ Gcomposite c ]
  | KW "typedef" -> err st "typedefs are not supported"
  | _ ->
    let base = parse_base_type st in
    let name, ty = parse_declarator st base in
    if eat_punct st "(" then begin
      (* function definition *)
      let formals = parse_params st in
      if eat_punct st ";" then
        (* forward declaration: recorded as a definition-less prototype by
           simply ignoring it; the definition must follow elsewhere. *)
        ()
      else begin
        expect_punct st "{";
        let ctx = { locals = [] } in
        let stmts = parse_block_items st ctx in
        let f =
          {
            fname = name;
            freturn = ty;
            fformals = formals;
            flocals = ctx.locals;
            fbody = mk_stmt ~loc:l (Sseq stmts);
          }
        in
        if Option.is_some (find_fun st.prog name) then
          Loc.error l "redefinition of function '%s'" name;
        st.prog.globals <- st.prog.globals @ [ Gfun f ]
      end
    end
    else begin
      (* global variable(s) *)
      let rec go name ty =
        let ini = if eat_punct st "=" then Some (parse_init st) else None in
        if Option.is_some (find_gvar st.prog name) then
          Loc.error l "redefinition of global '%s'" name;
        st.prog.globals <- st.prog.globals @ [ Gvar (name, ty, ini) ];
        if eat_punct st "," then begin
          let name2, ty2 = parse_declarator st base in
          go name2 ty2
        end
        else expect_punct st ";"
      in
      go name ty
    end

(** Parse a complete translation unit. *)
let parse_program ?(file = "<string>") src : program =
  let toks = Lexer.tokenize ~file src in
  let st = { toks; pos = 0; prog = empty_program (); pending_pragma = false } in
  while (peek st).tok <> Lexer.EOF do
    parse_topdecl st
  done;
  st.prog

(** Parse a single expression; used by tests and the REPL-ish examples. *)
let parse_exp_string ?(file = "<string>") src : exp =
  let toks = Lexer.tokenize ~file src in
  let st = { toks; pos = 0; prog = empty_program (); pending_pragma = false } in
  let e = parse_exp st in
  (match (peek st).tok with
  | Lexer.EOF -> ()
  | t -> err st "trailing tokens after expression: %s" (Lexer.show_token t));
  e
