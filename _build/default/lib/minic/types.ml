(** MiniC static types.

    The type language mirrors the subset of C that the PLDI'13 expansion
    rules (Tables 1-3 of the paper) are defined over: sized integers,
    floats, pointers, fixed-size arrays, named structs and function types.
    Struct bodies live in a separate {!composite} environment so that
    recursive structures (linked lists, trees) are expressible. *)

type ikind =
  | IChar  (** 1 byte *)
  | IShort  (** 2 bytes *)
  | IInt  (** 4 bytes *)
  | ILong  (** 8 bytes *)
[@@deriving show { with_path = false }, eq]

type fkind = FFloat  (** 4 bytes *) | FDouble  (** 8 bytes *)
[@@deriving show { with_path = false }, eq]

type ty =
  | Tvoid
  | Tint of ikind
  | Tfloat of fkind
  | Tptr of ty
  | Tarray of ty * int  (** element type and (constant) element count *)
  | Tstruct of string  (** reference to a composite by tag *)
  | Tfun of ty * ty list  (** return type, parameter types *)
[@@deriving show { with_path = false }, eq]

(** A struct definition: tag and ordered fields. *)
type composite = { cname : string; cfields : (string * ty) list }
[@@deriving show { with_path = false }, eq]

type composite_env = (string, composite) Hashtbl.t

let ikind_size = function IChar -> 1 | IShort -> 2 | IInt -> 4 | ILong -> 8
let fkind_size = function FFloat -> 4 | FDouble -> 8

let find_composite (env : composite_env) loc tag =
  match Hashtbl.find_opt env tag with
  | Some c -> c
  | None -> Loc.error loc "undefined struct '%s'" tag

(** Byte size of a type. Structs are laid out field-after-field with
    alignment padding so that recasting tricks (e.g. bzip2's [zptr]
    short/int recast) behave as they would under a real ABI. *)
let rec sizeof (env : composite_env) loc (t : ty) : int =
  match t with
  | Tvoid -> 1 (* GNU-style: sizeof(void) = 1, eases void* arithmetic *)
  | Tint ik -> ikind_size ik
  | Tfloat fk -> fkind_size fk
  | Tptr _ -> 8
  | Tarray (elt, n) -> n * sizeof env loc elt
  | Tstruct tag ->
    let c = find_composite env loc tag in
    let size, align =
      List.fold_left
        (fun (off, align) (_, fty) ->
          let fsz = sizeof env loc fty in
          let fal = alignof env loc fty in
          let off = roundup off fal in
          (off + fsz, max align fal))
        (0, 1) c.cfields
    in
    roundup size align
  | Tfun _ -> Loc.error loc "sizeof applied to a function type"

and alignof env loc = function
  | Tvoid -> 1
  | Tint ik -> ikind_size ik
  | Tfloat fk -> fkind_size fk
  | Tptr _ -> 8
  | Tarray (elt, _) -> alignof env loc elt
  | Tstruct tag ->
    let c = find_composite env loc tag in
    List.fold_left (fun a (_, fty) -> max a (alignof env loc fty)) 1 c.cfields
  | Tfun _ -> Loc.error loc "alignof applied to a function type"

and roundup off align = (off + align - 1) / align * align

(** Byte offset of field [f] within struct [tag], plus the field type. *)
let field_offset env loc tag f : int * ty =
  let c = find_composite env loc tag in
  let rec go off = function
    | [] -> Loc.error loc "struct '%s' has no field '%s'" tag f
    | (name, fty) :: rest ->
      let off = roundup off (alignof env loc fty) in
      if String.equal name f then (off, fty)
      else go (off + sizeof env loc fty) rest
  in
  go 0 c.cfields

let is_integer = function Tint _ -> true | _ -> false
let is_float = function Tfloat _ -> true | _ -> false
let is_pointer = function Tptr _ -> true | _ -> false
let is_arith t = is_integer t || is_float t

let is_scalar t = is_arith t || is_pointer t

(** The type an expression of type [t] decays to when used as a value:
    arrays become pointers to their element type (C array decay). *)
let decay = function Tarray (elt, _) -> Tptr elt | t -> t

(** Pointee of a pointer-or-array type. *)
let pointee loc = function
  | Tptr t -> t
  | Tarray (t, _) -> t
  | t -> Loc.error loc "expected a pointer type, got %s" (show_ty t)

(** Integer promotion: everything narrower than int computes as int. *)
let promote_ikind = function IChar | IShort | IInt -> IInt | ILong -> ILong

(** Usual arithmetic conversions for a binary operator. *)
let arith_join loc a b =
  match (a, b) with
  | Tfloat FDouble, _ | _, Tfloat FDouble -> Tfloat FDouble
  | Tfloat FFloat, _ | _, Tfloat FFloat -> Tfloat FFloat
  | Tint ka, Tint kb ->
    let ka = promote_ikind ka and kb = promote_ikind kb in
    Tint (if ikind_size ka >= ikind_size kb then ka else kb)
  | _ ->
    Loc.error loc "invalid arithmetic operands: %s and %s" (show_ty a)
      (show_ty b)
