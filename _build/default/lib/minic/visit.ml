(** AST traversal helpers shared by the analyses and transformations. *)

open Ast

type access_kind = Load | Store [@@deriving show { with_path = false }, eq]

(** One static memory-access site. *)
type access = { acc_aid : aid; acc_kind : access_kind; acc_lval : lval }

(** Fold [f] over every access site in an expression, in evaluation
    order. [Addr] computes an address without loading, so only loads
    nested in its lvalue's index/pointer expressions are visited. *)
let rec fold_exp_accesses f acc (e : exp) =
  match e with
  | Const _ | SizeofType _ -> acc
  | SizeofExp e -> fold_exp_accesses f acc e
  | Lval (aid, lv) ->
    let acc = fold_lval_accesses f acc lv in
    f acc { acc_aid = aid; acc_kind = Load; acc_lval = lv }
  | Addr lv -> fold_lval_accesses f acc lv
  | Unop (_, a) -> fold_exp_accesses f acc a
  | Binop (_, a, b) -> fold_exp_accesses f (fold_exp_accesses f acc a) b
  | Cast (_, a) -> fold_exp_accesses f acc a
  | Call (_, args) -> List.fold_left (fold_exp_accesses f) acc args
  | Cond (c, a, b) ->
    fold_exp_accesses f
      (fold_exp_accesses f (fold_exp_accesses f acc c) a)
      b

(** Accesses performed to {e compute the address} of an lvalue (loads
    inside [Deref] pointers and [Index] subscripts), not the access to
    the lvalue itself. *)
and fold_lval_accesses f acc (lv : lval) =
  match lv with
  | Var _ -> acc
  | Deref e -> fold_exp_accesses f acc e
  | Index (base, i) -> fold_exp_accesses f (fold_lval_accesses f acc base) i
  | Field (base, _) -> fold_lval_accesses f acc base

let rec fold_stmt_accesses f acc (s : stmt) =
  match s.skind with
  | Sskip | Sbreak | Scontinue -> acc
  | Sassign (aid, lv, e) ->
    let acc = fold_lval_accesses f acc lv in
    let acc = fold_exp_accesses f acc e in
    f acc { acc_aid = aid; acc_kind = Store; acc_lval = lv }
  | Scall (ret, _, args) ->
    let acc = List.fold_left (fold_exp_accesses f) acc args in
    (match ret with
    | None -> acc
    | Some (aid, lv) ->
      let acc = fold_lval_accesses f acc lv in
      f acc { acc_aid = aid; acc_kind = Store; acc_lval = lv })
  | Sseq stmts -> List.fold_left (fold_stmt_accesses f) acc stmts
  | Sif (c, a, b) ->
    let acc = fold_exp_accesses f acc c in
    fold_stmt_accesses f (fold_stmt_accesses f acc a) b
  | Swhile (_, c, body) ->
    fold_stmt_accesses f (fold_exp_accesses f acc c) body
  | Sfor (_, init, c, step, body) ->
    let acc = fold_stmt_accesses f acc init in
    let acc = fold_exp_accesses f acc c in
    let acc = fold_stmt_accesses f acc step in
    fold_stmt_accesses f acc body
  | Sreturn None -> acc
  | Sreturn (Some e) -> fold_exp_accesses f acc e

(** All access sites of a statement, in visit order. *)
let accesses_of_stmt (s : stmt) : access list =
  List.rev (fold_stmt_accesses (fun acc a -> a :: acc) [] s)

let accesses_of_fun (f : fundef) : access list = accesses_of_stmt f.fbody

(** Map every statement bottom-up. *)
let rec map_stmt (f : stmt -> stmt) (s : stmt) : stmt =
  let k = s.skind in
  let s' =
    match k with
    | Sskip | Sassign _ | Scall _ | Sreturn _ | Sbreak | Scontinue -> s
    | Sseq stmts -> { s with skind = Sseq (List.map (map_stmt f) stmts) }
    | Sif (c, a, b) -> { s with skind = Sif (c, map_stmt f a, map_stmt f b) }
    | Swhile (lid, c, body) ->
      { s with skind = Swhile (lid, c, map_stmt f body) }
    | Sfor (lid, init, c, step, body) ->
      {
        s with
        skind =
          Sfor (lid, map_stmt f init, c, map_stmt f step, map_stmt f body);
      }
  in
  f s'

(** Find the loop statement with the given loop id, if any. *)
let find_loop (body : stmt) (lid : lid) : stmt option =
  let found = ref None in
  let rec go s =
    if Option.is_none !found then
      match s.skind with
      | (Swhile (l, _, _) | Sfor (l, _, _, _, _)) when l = lid ->
        found := Some s
      | Sseq stmts -> List.iter go stmts
      | Sif (_, a, b) ->
        go a;
        go b
      | Swhile (_, _, body) -> go body
      | Sfor (_, init, _, step, body) ->
        go init;
        go step;
        go body
      | _ -> ()
  in
  go body;
  !found

(** Find the function whose body contains loop [lid]. *)
let find_loop_fun (p : program) (lid : lid) : (fundef * stmt) option =
  List.find_map
    (fun f ->
      match find_loop f.fbody lid with
      | Some s -> Some (f, s)
      | None -> None)
    (functions p)

(** The body statement and condition of a loop statement. *)
let loop_parts (s : stmt) : exp * stmt =
  match s.skind with
  | Swhile (_, c, body) -> (c, body)
  | Sfor (_, _, c, _, body) -> (c, body)
  | _ -> invalid_arg "loop_parts: not a loop"

(** Map over all expressions within a statement (shallow per-statement:
    rewrites the exps of the statement itself; recursion over substatements
    is included). Lvalues are rewritten via [flv]. *)
let rec map_stmt_exps ~(fe : exp -> exp) ~(flv : lval -> lval) (s : stmt) :
    stmt =
  let k =
    match s.skind with
    | Sskip | Sbreak | Scontinue -> s.skind
    | Sassign (aid, lv, e) -> Sassign (aid, flv lv, fe e)
    | Scall (ret, f, args) ->
      let ret = Option.map (fun (aid, lv) -> (aid, flv lv)) ret in
      Scall (ret, f, List.map fe args)
    | Sseq stmts -> Sseq (List.map (map_stmt_exps ~fe ~flv) stmts)
    | Sif (c, a, b) ->
      Sif (fe c, map_stmt_exps ~fe ~flv a, map_stmt_exps ~fe ~flv b)
    | Swhile (lid, c, body) -> Swhile (lid, fe c, map_stmt_exps ~fe ~flv body)
    | Sfor (lid, init, c, step, body) ->
      Sfor
        ( lid,
          map_stmt_exps ~fe ~flv init,
          fe c,
          map_stmt_exps ~fe ~flv step,
          map_stmt_exps ~fe ~flv body )
    | Sreturn e -> Sreturn (Option.map fe e)
  in
  { s with skind = k }

(** Rewrite expressions bottom-up everywhere in a statement: [f] is
    applied to every subexpression after its children. *)
let rewrite_exps (f : exp -> exp) (s : stmt) : stmt =
  let rec re (e : exp) : exp =
    let e =
      match e with
      | Const _ | SizeofType _ -> e
      | SizeofExp a -> SizeofExp (re a)
      | Lval (aid, lv) -> Lval (aid, rl lv)
      | Addr lv -> Addr (rl lv)
      | Unop (op, a) -> Unop (op, re a)
      | Binop (op, a, b) -> Binop (op, re a, re b)
      | Cast (t, a) -> Cast (t, re a)
      | Call (g, args) -> Call (g, List.map re args)
      | Cond (c, a, b) -> Cond (re c, re a, re b)
    in
    f e
  and rl (lv : lval) : lval =
    match lv with
    | Var _ -> lv
    | Deref e -> Deref (re e)
    | Index (base, i) -> Index (rl base, re i)
    | Field (base, fld) -> Field (rl base, fld)
  in
  map_stmt_exps ~fe:re ~flv:rl s
