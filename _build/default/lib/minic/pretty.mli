(** Pretty-printer: renders MiniC back to C-like source.

    The output of the expansion pass is meant to be read the way the
    paper presents its transformed examples (Figures 1, 3, 4), so the
    printer aims for compact, conventional C. Round-tripping through
    {!Parser} is property-tested. *)

(** [ty_decl t d] renders type [t] around declarator text [d],
    following C's inside-out declarator syntax. *)
val ty_decl : Types.ty -> string -> string

(** A type name with no declarator, as written in casts. *)
val ty_name : Types.ty -> string

(** Render an expression with minimal parentheses. [prec] is the
    surrounding precedence (internal use). *)
val exp_text : ?prec:int -> Ast.exp -> string

(** Render an lvalue. *)
val lval_text : Ast.lval -> string

(** Render a whole program, re-emitting [#pragma parallel] before
    candidate loops. *)
val program_to_string : Ast.program -> string
