(** Source locations for error reporting throughout the frontend. *)

type t = { file : string; line : int; col : int } [@@deriving show, eq]

let dummy = { file = "<builtin>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let to_string { file; line; col } = Printf.sprintf "%s:%d:%d" file line col

(** Raised by the lexer, parser and type checker on malformed input. *)
exception Error of t * string

let error loc fmt = Printf.ksprintf (fun msg -> raise (Error (loc, msg))) fmt
