(** AST traversal helpers shared by the analyses and transformations. *)

type access_kind = Load | Store

val pp_access_kind : Format.formatter -> access_kind -> unit
val show_access_kind : access_kind -> string
val equal_access_kind : access_kind -> access_kind -> bool

(** One static memory-access site. *)
type access = { acc_aid : Ast.aid; acc_kind : access_kind; acc_lval : Ast.lval }

(** Fold over every access site in an expression, in evaluation order.
    [Addr] computes an address without loading, so only loads nested in
    its lvalue's index/pointer subexpressions are visited. *)
val fold_exp_accesses : ('a -> access -> 'a) -> 'a -> Ast.exp -> 'a

(** Accesses performed to compute the {e address} of an lvalue (loads
    inside [Deref] pointers and [Index] subscripts), not the access to
    the lvalue itself. *)
val fold_lval_accesses : ('a -> access -> 'a) -> 'a -> Ast.lval -> 'a

val fold_stmt_accesses : ('a -> access -> 'a) -> 'a -> Ast.stmt -> 'a

(** All access sites of a statement / function body, in visit order. *)
val accesses_of_stmt : Ast.stmt -> access list

val accesses_of_fun : Ast.fundef -> access list

(** Map every statement bottom-up. *)
val map_stmt : (Ast.stmt -> Ast.stmt) -> Ast.stmt -> Ast.stmt

(** Find the loop statement with the given loop id, if any. *)
val find_loop : Ast.stmt -> Ast.lid -> Ast.stmt option

(** Find the function whose body contains loop [lid], with the loop. *)
val find_loop_fun : Ast.program -> Ast.lid -> (Ast.fundef * Ast.stmt) option

(** The condition and body of a loop statement.
    @raise Invalid_argument on non-loops. *)
val loop_parts : Ast.stmt -> Ast.exp * Ast.stmt

(** Rewrite the expressions of a statement tree; [fe] is applied to
    every statement-level expression, [flv] to every statement-level
    lvalue (recursing over substatements). *)
val map_stmt_exps :
  fe:(Ast.exp -> Ast.exp) -> flv:(Ast.lval -> Ast.lval) -> Ast.stmt -> Ast.stmt

(** Rewrite expressions bottom-up everywhere in a statement: [f] is
    applied to every subexpression after its children. *)
val rewrite_exps : (Ast.exp -> Ast.exp) -> Ast.stmt -> Ast.stmt
