(** Hand-written lexer for MiniC.

    Produces a token array consumed by the recursive-descent
    {!Parser}. [#pragma] lines become {!PRAGMA} tokens so the parser
    can mark the following loop as a parallelization candidate. *)

type token =
  | IDENT of string
  | INTLIT of int64 * Types.ikind
  | FLOATLIT of float * Types.fkind
  | STRLIT of string
  | KW of string  (** keywords: int, char, struct, if, while, ... *)
  | PUNCT of string  (** operators and delimiters, longest-match *)
  | PRAGMA of string  (** contents of a [#pragma] line, trimmed *)
  | EOF

type t = { tok : token; loc : Loc.t }

(** Tokenize a whole source string; the result always ends with
    {!EOF}. Raises {!Loc.Error} on malformed input. *)
val tokenize : ?file:string -> string -> t array

(** Human-readable description of a token, for error messages. *)
val show_token : token -> string
