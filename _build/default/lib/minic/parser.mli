(** Recursive-descent parser for MiniC.

    Supports struct definitions, global variables with (aggregate)
    initializers, function definitions, C89-style statements, and full
    expression syntax with C precedence, including casts, [sizeof],
    [?:], compound assignment and [++]/[--] (desugared during
    parsing). A [#pragma parallel] line marks the next loop as a
    parallelization candidate, recorded in
    [program.parallel_loops]. *)

(** Parse a complete translation unit. The result is {e not} yet
    type-checked or normalized; pass it to {!Typecheck.check} (or use
    {!Typecheck.parse_and_check}). Raises {!Loc.Error}. *)
val parse_program : ?file:string -> string -> Ast.program

(** Parse a single expression; used by tests and analysis tooling.
    Raises {!Loc.Error} on malformed input or trailing tokens. *)
val parse_exp_string : ?file:string -> string -> Ast.exp
