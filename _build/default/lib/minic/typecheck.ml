(** Type checking and normalization.

    Beyond ordinary C-style checking, this pass establishes the
    invariants the rest of the system relies on:

    - every [Lval] expression carries a unique access id (one load);
      every [Sassign]/[Scall] result carries a unique access id (one
      store); ids already assigned (e.g. by a transformation pass that
      re-runs the checker) are preserved;
    - expression-level [Call]s and [Cond]s are hoisted into statements
      ([Scall] / [Sif] over a fresh temporary), so downstream analyses
      see side-effect-free expressions;
    - pointer indexing [p\[i\]] is rewritten to [*(p + i)] so that
      [Index] always has an array base (Table 2 of the paper
      distinguishes the two redirection shapes);
    - struct-to-struct assignment is expanded into per-field scalar
      assignments, as §3.3.1 of the paper prescribes. *)

open Ast

type fun_sig = { fs_ret : Types.ty; fs_args : Types.ty list; fs_variadic : bool }

type env = {
  prog : program;
  funs : (string, fun_sig) Hashtbl.t;
  gvars : (string, Types.ty) Hashtbl.t;
}

type fenv = {
  env : env;
  vars : (string, Types.ty) Hashtbl.t;  (** formals and locals *)
  fn_name : string;
  fn_ret : Types.ty;
  mutable new_locals : (string * Types.ty) list;  (** temps, reversed *)
}


(* ------------------------------------------------------------------ *)
(* Environments                                                        *)
(* ------------------------------------------------------------------ *)

let builtin_sigs : (string * fun_sig) list =
  let ptr = Types.Tptr Types.Tvoid in
  let long = Types.Tint Types.ILong in
  let int = Types.Tint Types.IInt in
  let dbl = Types.Tfloat Types.FDouble in
  let str = Types.Tptr (Types.Tint Types.IChar) in
  [
    ("malloc", { fs_ret = ptr; fs_args = [ long ]; fs_variadic = false });
    ("calloc", { fs_ret = ptr; fs_args = [ long; long ]; fs_variadic = false });
    ("realloc", { fs_ret = ptr; fs_args = [ ptr; long ]; fs_variadic = false });
    ("free", { fs_ret = Types.Tvoid; fs_args = [ ptr ]; fs_variadic = false });
    ("printf", { fs_ret = int; fs_args = [ str ]; fs_variadic = true });
    ("putchar", { fs_ret = int; fs_args = [ int ]; fs_variadic = false });
    ("puts", { fs_ret = int; fs_args = [ str ]; fs_variadic = false });
    ("memset", { fs_ret = ptr; fs_args = [ ptr; int; long ]; fs_variadic = false });
    ("memcpy", { fs_ret = ptr; fs_args = [ ptr; ptr; long ]; fs_variadic = false });
    ("strlen", { fs_ret = long; fs_args = [ str ]; fs_variadic = false });
    ("abs", { fs_ret = int; fs_args = [ int ]; fs_variadic = false });
    ("labs", { fs_ret = long; fs_args = [ long ]; fs_variadic = false });
    ("sqrt", { fs_ret = dbl; fs_args = [ dbl ]; fs_variadic = false });
    ("fabs", { fs_ret = dbl; fs_args = [ dbl ]; fs_variadic = false });
    ("floor", { fs_ret = dbl; fs_args = [ dbl ]; fs_variadic = false });
    ("exp", { fs_ret = dbl; fs_args = [ dbl ]; fs_variadic = false });
    ("log", { fs_ret = dbl; fs_args = [ dbl ]; fs_variadic = false });
    ("rand", { fs_ret = int; fs_args = []; fs_variadic = false });
    ("srand", { fs_ret = Types.Tvoid; fs_args = [ int ]; fs_variadic = false });
    ("exit", { fs_ret = Types.Tvoid; fs_args = [ int ]; fs_variadic = false });
    ("assert", { fs_ret = Types.Tvoid; fs_args = [ int ]; fs_variadic = false });
  ]

let is_builtin name = List.mem_assoc name builtin_sigs

let make_env (p : program) : env =
  let funs = Hashtbl.create 16 and gvars = Hashtbl.create 16 in
  List.iter (fun (n, s) -> Hashtbl.replace funs n s) builtin_sigs;
  List.iter
    (function
      | Gfun f ->
        Hashtbl.replace funs f.fname
          {
            fs_ret = f.freturn;
            fs_args = List.map snd f.fformals;
            fs_variadic = false;
          }
      | Gvar (n, t, _) -> Hashtbl.replace gvars n t
      | Gcomposite _ -> ())
    p.globals;
  { prog = p; funs; gvars }

let fenv_of (env : env) (f : fundef) : fenv =
  let vars = Hashtbl.create 16 in
  List.iter (fun (n, t) -> Hashtbl.replace vars n t) f.fformals;
  List.iter (fun (n, t) -> Hashtbl.replace vars n t) f.flocals;
  { env; vars; fn_name = f.fname; fn_ret = f.freturn; new_locals = [] }

let var_ty fe loc x : Types.ty =
  match Hashtbl.find_opt fe.vars x with
  | Some t -> t
  | None -> (
    match Hashtbl.find_opt fe.env.gvars x with
    | Some t -> t
    | None -> Loc.error loc "unbound variable '%s' in %s" x fe.fn_name)

(* ------------------------------------------------------------------ *)
(* Pure type computation (for already-normalized code)                 *)
(* ------------------------------------------------------------------ *)

let rec lval_ty ?(loc = Loc.dummy) fe (lv : lval) : Types.ty =
  match lv with
  | Var x -> var_ty fe loc x
  | Deref e -> Types.pointee loc (Types.decay (exp_ty ~loc fe e))
  | Index (base, _) -> (
    match lval_ty ~loc fe base with
    | Types.Tarray (elt, _) -> elt
    | t -> Loc.error loc "indexing a non-array lvalue of type %s" (Types.show_ty t))
  | Field (base, f) -> (
    match lval_ty ~loc fe base with
    | Types.Tstruct tag -> snd (Types.field_offset fe.env.prog.comps loc tag f)
    | t -> Loc.error loc "field access on non-struct type %s" (Types.show_ty t))

and exp_ty ?(loc = Loc.dummy) fe (e : exp) : Types.ty =
  match e with
  | Const (Cint (_, ik)) -> Types.Tint (Types.promote_ikind ik)
  | Const (Cfloat (_, fk)) -> Types.Tfloat fk
  | Const (Cstr _) -> Types.Tptr (Types.Tint Types.IChar)
  | Lval (_, lv) -> Types.decay (lval_ty ~loc fe lv)
  | Addr lv -> Types.Tptr (lval_ty ~loc fe lv)
  | Unop (Neg, a) -> exp_ty ~loc fe a
  | Unop (Lognot, _) -> Types.Tint Types.IInt
  | Unop (Bitnot, a) -> exp_ty ~loc fe a
  | Binop (op, a, b) -> binop_ty ~loc fe op a b
  | Cast (t, _) -> Types.decay t
  | SizeofType _ | SizeofExp _ -> Types.Tint Types.ILong
  | Call (f, _) -> (
    match Hashtbl.find_opt fe.env.funs f with
    | Some s -> s.fs_ret
    | None -> Loc.error loc "call to undefined function '%s'" f)
  | Cond (_, a, b) ->
    let ta = exp_ty ~loc fe a and tb = exp_ty ~loc fe b in
    if Types.is_pointer ta then ta
    else if Types.is_pointer tb then tb
    else Types.arith_join loc ta tb

and binop_ty ~loc fe op a b : Types.ty =
  let ta = exp_ty ~loc fe a and tb = exp_ty ~loc fe b in
  match op with
  | Add | Sub -> (
    match (ta, tb) with
    | t, i when Types.is_pointer t && Types.is_integer i -> t
    | i, t when Types.is_pointer t && Types.is_integer i && op = Add -> t
    | ta, tb when Types.is_pointer ta && Types.is_pointer tb && op = Sub ->
      Types.Tint Types.ILong
    | _ -> Types.arith_join loc ta tb)
  | Mul | Div -> Types.arith_join loc ta tb
  | Mod | Shl | Shr | Band | Bor | Bxor -> (
    match Types.arith_join loc ta tb with
    | Types.Tint _ as t -> t
    | t -> Loc.error loc "integer operator applied to %s" (Types.show_ty t))
  | Lt | Gt | Le | Ge | Eq | Ne | Land | Lor -> Types.Tint Types.IInt

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

let fresh_temp fe (t : Types.ty) : string =
  let rec pick () =
    let name = fresh_var fe.env.prog "t" in
    if Hashtbl.mem fe.vars name || Hashtbl.mem fe.env.gvars name then pick ()
    else name
  in
  let name = pick () in
  Hashtbl.replace fe.vars name t;
  fe.new_locals <- (name, t) :: fe.new_locals;
  name

let give_aid prog aid = if aid = no_aid then fresh_aid prog else aid

(** Normalize an expression: returns hoisted prelude statements (in
    execution order) and the rewritten expression. *)
let rec norm_exp fe loc (e : exp) : stmt list * exp =
  let prog = fe.env.prog in
  match e with
  | Const _ | SizeofType _ -> ([], e)
  | SizeofExp inner ->
    (* sizeof does not evaluate its operand; compute its (non-decayed)
       type and fold to SizeofType. *)
    let t =
      match inner with
      | Lval (_, lv) -> lval_ty ~loc fe lv
      | e -> exp_ty ~loc fe e
    in
    ([], SizeofType t)
  | Lval (aid, lv) ->
    let pre, lv = norm_lval fe loc lv in
    (match lval_ty ~loc fe lv with
    | Types.Tarray _ ->
      (* Array decay: using an array lvalue as a value denotes its
         address, not a load. *)
      (pre, Addr lv)
    | _ -> (pre, Lval (give_aid prog aid, lv)))
  | Addr lv ->
    let pre, lv = norm_lval fe loc lv in
    (pre, Addr lv)
  | Unop (op, a) ->
    let pre, a = norm_exp fe loc a in
    (pre, Unop (op, a))
  | Binop (op, a, b) ->
    let pa, a = norm_exp fe loc a in
    let pb, b = norm_exp fe loc b in
    (pa @ pb, Binop (op, a, b))
  | Cast (t, a) ->
    let pre, a = norm_exp fe loc a in
    (pre, Cast (t, a))
  | Call (f, args) ->
    let sg =
      match Hashtbl.find_opt fe.env.funs f with
      | Some s -> s
      | None -> Loc.error loc "call to undefined function '%s'" f
    in
    if sg.fs_ret = Types.Tvoid then
      Loc.error loc "void call to '%s' used as a value" f;
    let pres, args = norm_args fe loc f sg args in
    let tmp = fresh_temp fe sg.fs_ret in
    let call =
      mk_stmt ~loc (Scall (Some (fresh_aid prog, Var tmp), f, args))
    in
    (pres @ [ call ], Lval (fresh_aid prog, Var tmp))
  | Cond (c, a, b) ->
    let pc, c = norm_exp fe loc c in
    let pa, a = norm_exp fe loc a in
    let pb, b = norm_exp fe loc b in
    if pa = [] && pb = [] then (pc, Cond (c, a, b))
    else begin
      (* Arms with hoisted calls become an if over a temporary. *)
      let t =
        let ta = exp_ty ~loc fe a and tb = exp_ty ~loc fe b in
        if Types.is_pointer ta then ta
        else if Types.is_pointer tb then tb
        else Types.arith_join loc ta tb
      in
      let tmp = fresh_temp fe t in
      let asg e = mk_stmt ~loc (Sassign (fresh_aid prog, Var tmp, e)) in
      let branch =
        mk_stmt ~loc
          (Sif (c, mk_stmt ~loc (Sseq (pa @ [ asg a ])),
                mk_stmt ~loc (Sseq (pb @ [ asg b ]))))
      in
      (pc @ [ branch ], Lval (fresh_aid prog, Var tmp))
    end

and norm_lval fe loc (lv : lval) : stmt list * lval =
  let prog = fe.env.prog in
  match lv with
  | Var x ->
    ignore (var_ty fe loc x);
    ([], lv)
  | Deref e ->
    let pre, e = norm_exp fe loc e in
    (match Types.decay (exp_ty ~loc fe e) with
    | Types.Tptr _ -> ()
    | t -> Loc.error loc "dereferencing non-pointer of type %s" (Types.show_ty t));
    (pre, Deref e)
  | Index (base, i) -> (
    let pb, base = norm_lval fe loc base in
    let pi, i = norm_exp fe loc i in
    (match exp_ty ~loc fe i with
    | Types.Tint _ -> ()
    | t -> Loc.error loc "array index has non-integer type %s" (Types.show_ty t));
    match lval_ty ~loc fe base with
    | Types.Tarray _ -> (pb @ pi, Index (base, i))
    | Types.Tptr _ ->
      (* p[i] ==> *(p + i): the pointer read becomes an explicit load. *)
      let pload = Lval (give_aid prog no_aid, base) in
      (pb @ pi, Deref (Binop (Add, pload, i)))
    | t -> Loc.error loc "indexing value of type %s" (Types.show_ty t))
  | Field (base, f) ->
    let pb, base = norm_lval fe loc base in
    (match lval_ty ~loc fe base with
    | Types.Tstruct tag ->
      ignore (Types.field_offset fe.env.prog.comps loc tag f)
    | t -> Loc.error loc "field access on non-struct type %s" (Types.show_ty t));
    (pb, Field (base, f))

and norm_args fe loc f sg (args : exp list) : stmt list * exp list =
  let nreq = List.length sg.fs_args in
  let nact = List.length args in
  if nact < nreq || ((not sg.fs_variadic) && nact > nreq) then
    Loc.error loc "function '%s' expects %d argument(s), got %d" f nreq nact;
  let pres, args =
    List.split
      (List.mapi
         (fun i a ->
           let pre, a = norm_exp fe loc a in
           let ta = exp_ty ~loc fe a in
           (if i < nreq then
              let treq = List.nth sg.fs_args i in
              check_assignable loc ~src:ta ~dst:treq
                ~what:(Printf.sprintf "argument %d of '%s'" (i + 1) f));
           (pre, a))
         args)
  in
  (List.concat pres, args)

(** Permissive C-style assignability: arithmetic types interconvert;
    any pointer converts to any pointer (benchmarks recast freely, cf.
    bzip2's [zptr]); the literal 0 converts to pointers. *)
and check_assignable loc ~src ~dst ~what =
  let ok =
    match (Types.decay src, Types.decay dst) with
    | a, b when Types.is_arith a && Types.is_arith b -> true
    | Types.Tptr _, Types.Tptr _ -> true
    | Types.Tint _, Types.Tptr _ -> true (* 0 / cast-free null idiom *)
    | Types.Tptr _, Types.Tint Types.ILong -> true
    | a, b -> Types.equal_ty a b
  in
  if not ok then
    Loc.error loc "%s: cannot convert %s to %s" what (Types.show_ty src)
      (Types.show_ty dst)

(** Expand struct assignment into field-by-field scalar assignments
    ("assignments to structure variables are treated as a series of
    scalar assignments", §3.3.1). *)
let rec explode_copy fe loc (dst : lval) (src : lval) (t : Types.ty) :
    stmt list =
  let prog = fe.env.prog in
  match t with
  | Types.Tstruct tag ->
    let c = Types.find_composite prog.comps loc tag in
    List.concat_map
      (fun (f, ft) -> explode_copy fe loc (Field (dst, f)) (Field (src, f)) ft)
      c.Types.cfields
  | Types.Tarray (elt, n) ->
    List.concat
      (List.init n (fun i ->
           explode_copy fe loc (Index (dst, cint i)) (Index (src, cint i)) elt))
  | _ ->
    [
      mk_stmt ~loc
        (Sassign (fresh_aid prog, dst, Lval (fresh_aid prog, src)));
    ]

let rec norm_stmt fe (s : stmt) : stmt =
  let prog = fe.env.prog in
  let loc = s.sloc in
  match s.skind with
  | Sskip | Sbreak | Scontinue -> s
  | Sassign (aid, lv, Call (f, args)) ->
    (* [lv = f(args);] is a call statement, not a hoist. *)
    norm_stmt fe { s with skind = Scall (Some (aid, lv), f, args) }
  | Sassign (aid, lv, e) -> (
    let plv, lv = norm_lval fe loc lv in
    let tlv = lval_ty ~loc fe lv in
    match (tlv, e) with
    | (Types.Tstruct _ | Types.Tarray _), Lval (_, src) ->
      let psrc, src = norm_lval fe loc src in
      let tsrc = lval_ty ~loc fe src in
      if not (Types.equal_ty tlv tsrc) then
        Loc.error loc "aggregate assignment with mismatched types";
      seq ~loc (plv @ psrc @ explode_copy fe loc lv src tlv)
    | (Types.Tstruct _ | Types.Tarray _), _ ->
      Loc.error loc "cannot assign a non-lvalue to an aggregate"
    | _, _ ->
      let pe, e = norm_exp fe loc e in
      check_assignable loc ~src:(exp_ty ~loc fe e) ~dst:tlv ~what:"assignment";
      seq ~loc
        (plv @ pe @ [ mk_stmt ~loc (Sassign (give_aid prog aid, lv, e)) ]))
  | Scall (ret, f, args) ->
    let sg =
      match Hashtbl.find_opt fe.env.funs f with
      | Some s -> s
      | None -> Loc.error loc "call to undefined function '%s'" f
    in
    let pres, args = norm_args fe loc f sg args in
    let pret, ret =
      match ret with
      | None -> ([], None)
      | Some (aid, lv) ->
        if sg.fs_ret = Types.Tvoid then
          Loc.error loc "assigning the result of void function '%s'" f;
        let plv, lv = norm_lval fe loc lv in
        check_assignable loc ~src:sg.fs_ret ~dst:(lval_ty ~loc fe lv)
          ~what:"call result";
        (plv, Some (give_aid prog aid, lv))
    in
    seq ~loc (pres @ pret @ [ mk_stmt ~loc (Scall (ret, f, args)) ])
  | Sseq stmts ->
    (* Flatten nested blocks and drop no-ops so that normalization is
       idempotent (locals are function-scoped, so flattening is safe). *)
    let flat =
      List.concat_map
        (fun s ->
          let s = norm_stmt fe s in
          match s.skind with Sskip -> [] | Sseq inner -> inner | _ -> [ s ])
        stmts
    in
    (match flat with
    | [] -> mk_stmt ~loc Sskip
    | [ s ] -> s
    | _ -> mk_stmt ~loc (Sseq flat))
  | Sif (c, a, b) ->
    let pc, c = norm_exp fe loc c in
    require_scalar fe loc c;
    let s = mk_stmt ~loc (Sif (c, norm_stmt fe a, norm_stmt fe b)) in
    seq ~loc (pc @ [ s ])
  | Swhile (lid, c, body) ->
    let pc, c = norm_exp fe loc c in
    if pc <> [] then
      Loc.error loc "calls are not allowed in loop conditions";
    require_scalar fe loc c;
    mk_stmt ~loc (Swhile (lid, c, norm_stmt fe body))
  | Sfor (lid, init, c, step, body) ->
    let init = norm_stmt fe init in
    let pc, c = norm_exp fe loc c in
    if pc <> [] then
      Loc.error loc "calls are not allowed in loop conditions";
    require_scalar fe loc c;
    let step = norm_stmt fe step in
    mk_stmt ~loc (Sfor (lid, init, c, step, norm_stmt fe body))
  | Sreturn None ->
    if fe.fn_ret <> Types.Tvoid && fe.fn_name <> "main" then
      Loc.error loc "non-void function '%s' returns no value" fe.fn_name;
    s
  | Sreturn (Some e) ->
    if fe.fn_ret = Types.Tvoid then
      Loc.error loc "void function '%s' returns a value" fe.fn_name;
    let pe, e = norm_exp fe loc e in
    check_assignable loc ~src:(exp_ty ~loc fe e) ~dst:fe.fn_ret
      ~what:"return value";
    seq ~loc (pe @ [ mk_stmt ~loc (Sreturn (Some e)) ])

and require_scalar fe loc c =
  let t = exp_ty ~loc fe c in
  if not (Types.is_scalar (Types.decay t)) then
    Loc.error loc "condition has non-scalar type %s" (Types.show_ty t)

and seq ~loc = function
  | [] -> mk_stmt ~loc Sskip
  | [ s ] -> s
  | stmts -> mk_stmt ~loc (Sseq stmts)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let check_fun (env : env) (f : fundef) : fundef =
  let fe = fenv_of env f in
  let body = norm_stmt fe f.fbody in
  { f with fbody = body; flocals = f.flocals @ List.rev fe.new_locals }

(** Type-check and normalize a whole program in place. Idempotent:
    running it again changes nothing (all ids already assigned, all
    sugar already removed). Raises {!Loc.Error} on ill-typed input. *)
let check (p : program) : unit =
  let env = make_env p in
  (* Validate global initializers are constant-ish (no calls). *)
  List.iter
    (function
      | Gvar (name, ty, Some ini) ->
        let rec no_calls = function
          | Iexp (Call _) ->
            Loc.error Loc.dummy "initializer of '%s' contains a call" name
          | Iexp _ -> ()
          | Ilist l -> List.iter no_calls l
        in
        no_calls ini;
        ignore ty
      | _ -> ())
    p.globals;
  p.globals <-
    List.map
      (function Gfun f -> Gfun (check_fun env f) | g -> g)
      p.globals

(** Parse + check, the usual front door. *)
let parse_and_check ?file src : program =
  let p = Parser.parse_program ?file src in
  check p;
  p
