(** MiniC abstract syntax.

    Two design points matter for the expansion technique:

    - Every memory access in a program has a unique {e access id} ([aid]).
      An [Lval] expression is exactly one load; the left-hand side of an
      [Sassign] (or the result lvalue of an [Scall]) is exactly one store.
      The type checker normalizes sugar (pointer indexing, [->]) so that
      this invariant holds; the dependence profiler, the access-class
      partitioning and the redirection pass all key on [aid]s.
    - Every loop has a unique {e loop id} ([lid]); parallelization
      candidates are marked with [#pragma parallel] in source and recorded
      in the program. *)

type aid = int [@@deriving show { with_path = false }, eq, ord]
type lid = int [@@deriving show { with_path = false }, eq, ord]

(** Placeholder access id before the type checker numbers the access. *)
let no_aid : aid = -1

type unop = Neg | Lognot | Bitnot
[@@deriving show { with_path = false }, eq]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Lt
  | Gt
  | Le
  | Ge
  | Eq
  | Ne
  | Land
  | Lor
[@@deriving show { with_path = false }, eq]

type constant =
  | Cint of int64 * Types.ikind
  | Cfloat of float * Types.fkind
  | Cstr of string
[@@deriving show { with_path = false }, eq]

type exp =
  | Const of constant
  | Lval of aid * lval  (** a load from the lvalue's address *)
  | Addr of lval  (** [&lv]; computes an address, loads nothing itself *)
  | Unop of unop * exp
  | Binop of binop * exp * exp
  | Cast of Types.ty * exp
  | SizeofType of Types.ty
  | SizeofExp of exp  (** resolved to [SizeofType] by the type checker *)
  | Call of string * exp list
      (** only produced by the parser; the type checker hoists every call
          into a separate [Scall] statement, so analyses and
          transformations never see expression-level calls *)
  | Cond of exp * exp * exp  (** [c ? a : b] *)

and lval =
  | Var of string
  | Deref of exp  (** [*e] *)
  | Index of lval * exp  (** [lv\[i\]]; after type checking, [lv] is an array *)
  | Field of lval * string  (** [lv.f]; [e->f] parses as [Field (Deref e, f)] *)
[@@deriving show { with_path = false }, eq]

type stmt = { skind : stmt_kind; sloc : Loc.t }

and stmt_kind =
  | Sskip
  | Sassign of aid * lval * exp
  | Scall of (aid * lval) option * string * exp list
  | Sseq of stmt list
  | Sif of exp * stmt * stmt
  | Swhile of lid * exp * stmt
  | Sfor of lid * stmt * exp * stmt * stmt
      (** init, condition, step, body; kept distinct from [Swhile] so that
          [continue] executes the step *)
  | Sreturn of exp option
  | Sbreak
  | Scontinue
[@@deriving show { with_path = false }, eq]

type fundef = {
  fname : string;
  freturn : Types.ty;
  fformals : (string * Types.ty) list;
  flocals : (string * Types.ty) list;
  fbody : stmt;
}

type init = Iexp of exp | Ilist of init list
[@@deriving show { with_path = false }, eq]

type global =
  | Gcomposite of Types.composite
  | Gvar of string * Types.ty * init option
  | Gfun of fundef

type program = {
  mutable globals : global list;
  comps : Types.composite_env;
  mutable parallel_loops : lid list;
      (** loops marked [#pragma parallel], outermost first *)
  mutable next_aid : int;
  mutable next_lid : int;
  mutable next_tmp : int;
}

let mk_stmt ?(loc = Loc.dummy) skind = { skind; sloc = loc }
let skip = mk_stmt Sskip

let empty_program () =
  {
    globals = [];
    comps = Hashtbl.create 16;
    parallel_loops = [];
    next_aid = 0;
    next_lid = 0;
    next_tmp = 0;
  }

let fresh_aid p =
  let a = p.next_aid in
  p.next_aid <- a + 1;
  a

let fresh_lid p =
  let l = p.next_lid in
  p.next_lid <- l + 1;
  l

let fresh_var p prefix =
  let n = p.next_tmp in
  p.next_tmp <- n + 1;
  Printf.sprintf "__%s%d" prefix n

(* Convenience constructors used pervasively by transformation passes. *)

let cint ?(ik = Types.IInt) n = Const (Cint (Int64.of_int n, ik))
let czero = cint 0
let cone = cint 1
let load p lv = Lval (fresh_aid p, lv)
let assign ?loc p lv e = mk_stmt ?loc (Sassign (fresh_aid p, lv, e))
let add a b = Binop (Add, a, b)
let mul a b = Binop (Mul, a, b)

let find_fun p name =
  List.find_map
    (function Gfun f when String.equal f.fname name -> Some f | _ -> None)
    p.globals

let find_gvar p name =
  List.find_map
    (function
      | Gvar (n, t, i) when String.equal n name -> Some (t, i) | _ -> None)
    p.globals

let replace_fun p (f : fundef) =
  p.globals <-
    List.map
      (function
        | Gfun g when String.equal g.fname f.fname -> Gfun f | g -> g)
      p.globals

(** All function definitions, in declaration order. *)
let functions p =
  List.filter_map (function Gfun f -> Some f | _ -> None) p.globals

(** All global variables, in declaration order. *)
let global_vars p =
  List.filter_map
    (function Gvar (n, t, i) -> Some (n, t, i) | _ -> None)
    p.globals
