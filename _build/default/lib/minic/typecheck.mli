(** Type checking and normalization.

    Beyond ordinary C-style checking, this pass establishes the
    invariants the rest of the system relies on: every [Lval] carries a
    unique access id (one load) and every store site one id;
    expression-level calls and conditionals are hoisted into
    statements; pointer indexing is rewritten to explicit dereference;
    struct assignment is exploded field-by-field (§3.3.1 of the
    paper). Normalization is idempotent and preserves existing access
    ids, so transformation passes may re-run it to validate their
    output. *)

type fun_sig = {
  fs_ret : Types.ty;
  fs_args : Types.ty list;
  fs_variadic : bool;
}

(** Program-wide typing environment: function signatures (builtins
    included) and global variable types. *)
type env = {
  prog : Ast.program;
  funs : (string, fun_sig) Hashtbl.t;
  gvars : (string, Types.ty) Hashtbl.t;
}

(** Per-function typing environment. *)
type fenv = {
  env : env;
  vars : (string, Types.ty) Hashtbl.t;  (** formals and locals *)
  fn_name : string;
  fn_ret : Types.ty;
  mutable new_locals : (string * Types.ty) list;
}

(** Signatures of the interpreter's builtin functions
    (malloc/free/printf/...). *)
val builtin_sigs : (string * fun_sig) list

val is_builtin : string -> bool
val make_env : Ast.program -> env
val fenv_of : env -> Ast.fundef -> fenv

(** Type of an lvalue / expression in a function context (for
    already-normalized code). Array-typed results are NOT decayed;
    expression types are. Raises {!Loc.Error} on ill-typed input. *)
val lval_ty : ?loc:Loc.t -> fenv -> Ast.lval -> Types.ty

val exp_ty : ?loc:Loc.t -> fenv -> Ast.exp -> Types.ty

(** Type-check and normalize a whole program in place.
    Raises {!Loc.Error} on ill-typed input. *)
val check : Ast.program -> unit

(** Parse + check, the usual front door. *)
val parse_and_check : ?file:string -> string -> Ast.program
