lib/optim/spanopt.ml: Ast Hashtbl List Minic Option String Types
