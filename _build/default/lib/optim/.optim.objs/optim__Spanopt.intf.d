lib/optim/spanopt.mli: Ast Minic
