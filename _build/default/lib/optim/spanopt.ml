(** The overhead-reduction optimizations of §3.4, phrased generically
    over a set of candidate scalar variables (the expansion driver
    passes the span shadows):

    - {b dead-store elimination}: [p.span = p.span] self-assignments
      (from [p = p + 1]) are dropped, as are all stores to candidates
      that are never loaded anywhere in the program;
    - {b constant and copy propagation}: when every store to a
      candidate assigns the same {e stable} value (an integer literal,
      a [sizeof], or another candidate that itself resolves to such a
      value), loads of the candidate are replaced by that value and
      its stores become dead.

    Candidates are identified by name program-wide (span shadows are
    uniquely named); a variable whose address is taken is never
    touched. *)

open Minic

(* Structural expression equality ignoring access ids. *)
let rec eq_exp (a : Ast.exp) (b : Ast.exp) : bool =
  match (a, b) with
  | Ast.Const x, Ast.Const y -> Ast.equal_constant x y
  | Ast.Lval (_, x), Ast.Lval (_, y) -> eq_lval x y
  | Ast.Addr x, Ast.Addr y -> eq_lval x y
  | Ast.Unop (o1, x), Ast.Unop (o2, y) -> o1 = o2 && eq_exp x y
  | Ast.Binop (o1, x1, y1), Ast.Binop (o2, x2, y2) ->
    o1 = o2 && eq_exp x1 x2 && eq_exp y1 y2
  | Ast.Cast (t1, x), Ast.Cast (t2, y) -> Types.equal_ty t1 t2 && eq_exp x y
  | Ast.SizeofType t1, Ast.SizeofType t2 -> Types.equal_ty t1 t2
  | Ast.Cond (c1, x1, y1), Ast.Cond (c2, x2, y2) ->
    eq_exp c1 c2 && eq_exp x1 x2 && eq_exp y1 y2
  | _ -> false

and eq_lval (a : Ast.lval) (b : Ast.lval) : bool =
  match (a, b) with
  | Ast.Var x, Ast.Var y -> String.equal x y
  | Ast.Deref x, Ast.Deref y -> eq_exp x y
  | Ast.Index (b1, i1), Ast.Index (b2, i2) -> eq_lval b1 b2 && eq_exp i1 i2
  | Ast.Field (b1, f1), Ast.Field (b2, f2) ->
    eq_lval b1 b2 && String.equal f1 f2
  | _ -> false

type stats = {
  mutable self_assigns_removed : int;
  mutable dead_stores_removed : int;
  mutable loads_propagated : int;
}

let new_stats () =
  { self_assigns_removed = 0; dead_stores_removed = 0; loads_propagated = 0 }

(* ------------------------------------------------------------------ *)
(* Facts about candidate usage                                         *)
(* ------------------------------------------------------------------ *)

type usage = {
  mutable loaded : bool;
  mutable address_taken : bool;
  mutable stores : Ast.exp list;  (** RHS of every store to the candidate *)
}

(* Usage is collected for every variable, not just candidates: value
   resolution may flow through ordinary single-valued scalars (e.g.
   [span = sizeof(int) * m] with [m = 64] propagates fully, as GCC's
   constant propagation would). Replacement and dead-store elimination
   still apply only to candidates. *)
let collect_usage (prog : Ast.program) :
    (string, usage) Hashtbl.t =
  let tbl = Hashtbl.create 32 in
  let u x =
    match Hashtbl.find_opt tbl x with
    | Some u -> u
    | None ->
      let u = { loaded = false; address_taken = false; stores = [] } in
      Hashtbl.replace tbl x u;
      u
  in
  let rec scan_exp (e : Ast.exp) =
    match e with
    | Ast.Const _ | Ast.SizeofType _ -> ()
    | Ast.SizeofExp a -> scan_exp a
    | Ast.Lval (_, Ast.Var x) -> (u x).loaded <- true
    | Ast.Lval (_, lv) -> scan_lval lv
    | Ast.Addr (Ast.Var x) -> (u x).address_taken <- true
    | Ast.Addr lv -> scan_lval lv
    | Ast.Unop (_, a) | Ast.Cast (_, a) -> scan_exp a
    | Ast.Binop (_, a, b) ->
      scan_exp a;
      scan_exp b
    | Ast.Call (_, args) -> List.iter scan_exp args
    | Ast.Cond (c, a, b) ->
      scan_exp c;
      scan_exp a;
      scan_exp b
  and scan_lval (lv : Ast.lval) =
    match lv with
    | Ast.Var _ -> ()
    | Ast.Deref e -> scan_exp e
    | Ast.Index (b, i) ->
      scan_lval b;
      scan_exp i
    | Ast.Field (b, _) -> scan_lval b
  in
  let rec scan_stmt (s : Ast.stmt) =
    match s.Ast.skind with
    | Ast.Sskip | Ast.Sbreak | Ast.Scontinue -> ()
    | Ast.Sassign (_, lv, e) ->
      (match lv with
      | Ast.Var x -> (u x).stores <- e :: (u x).stores
      | _ -> scan_lval lv);
      scan_exp e
    | Ast.Scall (ret, _, args) ->
      (match ret with
      | Some (_, Ast.Var x) ->
        (* call result: opaque store *)
        (u x).stores <- Ast.Call ("?", []) :: (u x).stores
      | Some (_, lv) -> scan_lval lv
      | None -> ());
      List.iter scan_exp args
    | Ast.Sseq ss -> List.iter scan_stmt ss
    | Ast.Sif (c, a, b) ->
      scan_exp c;
      scan_stmt a;
      scan_stmt b
    | Ast.Swhile (_, c, body) ->
      scan_exp c;
      scan_stmt body
    | Ast.Sfor (_, init, c, step, body) ->
      scan_stmt init;
      scan_exp c;
      scan_stmt step;
      scan_stmt body
    | Ast.Sreturn e -> Option.iter scan_exp e
  in
  List.iter (fun (f : Ast.fundef) -> scan_stmt f.Ast.fbody) (Ast.functions prog);
  (* global initializers are stores; formals are opaquely stored at
     every call site *)
  List.iter
    (fun (x, _, ini) ->
      match ini with
      | Some (Ast.Iexp e) -> (u x).stores <- e :: (u x).stores
      | Some (Ast.Ilist _) | None -> ())
    (Ast.global_vars prog);
  List.iter
    (fun (f : Ast.fundef) ->
      List.iter
        (fun (x, _) -> (u x).stores <- Ast.Call ("?", []) :: (u x).stores)
        f.Ast.fformals)
    (Ast.functions prog);
  tbl

(* ------------------------------------------------------------------ *)
(* Constant / copy value lattice                                       *)
(* ------------------------------------------------------------------ *)

(* A candidate resolves to a stable expression when all its stores
   agree on an rhs built only from literals, sizeofs, casts over
   those, or other candidates that themselves resolve. *)
type value = Unknown | Stable of Ast.exp

let rec stable_shape (e : Ast.exp) : bool =
  match e with
  | Ast.Const (Ast.Cint _) | Ast.SizeofType _ -> true
  | Ast.Cast (_, a) -> stable_shape a
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul), a, b) ->
    stable_shape a && stable_shape b
  | Ast.Lval (_, Ast.Var _) -> true
  | _ -> false

(** Resolve variables to stable values by fixpoint. *)
let solve_values (usage : (string, usage) Hashtbl.t) :
    (string, Ast.exp) Hashtbl.t =
  let value : (string, value) Hashtbl.t = Hashtbl.create 32 in
  let rec resolve (visiting : string list) (x : string) : value =
    if List.mem x visiting then Unknown
    else
      match Hashtbl.find_opt value x with
      | Some v -> v
      | None ->
        let v =
          match Hashtbl.find_opt usage x with
          | None -> Unknown (* never stored: zero-initialized *)
          | Some u ->
            if u.address_taken then Unknown
            else begin
              let rhss =
                List.map
                  (fun e -> subst_value (x :: visiting) e)
                  u.stores
              in
              match rhss with
              | [] -> Unknown
              | Some first :: rest
                when List.for_all
                       (function Some e -> eq_exp e first | None -> false)
                       rest ->
                Stable first
              | _ -> Unknown
            end
        in
        Hashtbl.replace value x v;
        v
  (* substitute resolved variables inside a stable-shaped rhs *)
  and subst_value (visiting : string list) (e : Ast.exp) : Ast.exp option =
    if not (stable_shape e) then None
    else
      let rec go (e : Ast.exp) : Ast.exp option =
        match e with
        | Ast.Const _ | Ast.SizeofType _ -> Some e
        | Ast.Cast (t, a) -> Option.map (fun a -> Ast.Cast (t, a)) (go a)
        | Ast.Binop (op, a, b) -> (
          match (go a, go b) with
          | Some a, Some b -> Some (Ast.Binop (op, a, b))
          | _ -> None)
        | Ast.Lval (_, Ast.Var x) -> (
          match resolve visiting x with
          | Stable v -> Some v
          | Unknown -> None)
        | _ -> None
      in
      go e
  in
  let out = Hashtbl.create 32 in
  Hashtbl.iter
    (fun x _ ->
      match resolve [] x with
      | Stable v -> Hashtbl.replace out x v
      | Unknown -> ())
    usage;
  out

(* ------------------------------------------------------------------ *)
(* Rewriting                                                           *)
(* ------------------------------------------------------------------ *)

(** Apply §3.4 to [prog] in place, over candidate variables selected
    by [is_candidate]. Returns optimization statistics. *)
let optimize (prog : Ast.program) ~(is_candidate : string -> bool) : stats =
  let stats = new_stats () in
  let usage = collect_usage prog in
  let values = solve_values usage in
  (* after propagation, loads of resolved candidates disappear, so
     recompute liveness treating resolved vars as unread *)
  let resolved x = Hashtbl.mem values x in
  let dead x =
    is_candidate x
    && (resolved x
       ||
       match Hashtbl.find_opt usage x with
       | Some u -> (not u.loaded) && not u.address_taken
       | None -> true)
  in
  let rec rw_exp (e : Ast.exp) : Ast.exp =
    match e with
    | Ast.Const _ | Ast.SizeofType _ -> e
    | Ast.SizeofExp a -> Ast.SizeofExp (rw_exp a)
    | Ast.Lval (_, Ast.Var x) when is_candidate x && resolved x ->
      stats.loads_propagated <- stats.loads_propagated + 1;
      Hashtbl.find values x
    | Ast.Lval (aid, lv) -> Ast.Lval (aid, rw_lval lv)
    | Ast.Addr lv -> Ast.Addr (rw_lval lv)
    | Ast.Unop (op, a) -> Ast.Unop (op, rw_exp a)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, rw_exp a, rw_exp b)
    | Ast.Cast (t, a) -> Ast.Cast (t, rw_exp a)
    | Ast.Call (f, args) -> Ast.Call (f, List.map rw_exp args)
    | Ast.Cond (c, a, b) -> Ast.Cond (rw_exp c, rw_exp a, rw_exp b)
  and rw_lval (lv : Ast.lval) : Ast.lval =
    match lv with
    | Ast.Var _ -> lv
    | Ast.Deref e -> Ast.Deref (rw_exp e)
    | Ast.Index (b, i) -> Ast.Index (rw_lval b, rw_exp i)
    | Ast.Field (b, f) -> Ast.Field (rw_lval b, f)
  in
  let rec rw_stmt (s : Ast.stmt) : Ast.stmt =
    let keep k = { s with Ast.skind = k } in
    match s.Ast.skind with
    | Ast.Sskip | Ast.Sbreak | Ast.Scontinue -> s
    | Ast.Sassign (_, lv, Ast.Lval (_, lv2)) when eq_lval lv lv2 ->
      (* the span self-copy generated after [p = p + 1]; lvalue
         evaluation is side-effect-free in MiniC, so any literal
         self-assignment is dead *)
      stats.self_assigns_removed <- stats.self_assigns_removed + 1;
      Ast.skip
    | Ast.Sassign (_, Ast.Var x, _) when dead x ->
      stats.dead_stores_removed <- stats.dead_stores_removed + 1;
      Ast.skip
    | Ast.Sassign (aid, lv, e) -> keep (Ast.Sassign (aid, rw_lval lv, rw_exp e))
    | Ast.Scall (ret, f, args) ->
      let ret = Option.map (fun (aid, lv) -> (aid, rw_lval lv)) ret in
      keep (Ast.Scall (ret, f, List.map rw_exp args))
    | Ast.Sseq ss -> keep (Ast.Sseq (List.map rw_stmt ss))
    | Ast.Sif (c, a, b) -> keep (Ast.Sif (rw_exp c, rw_stmt a, rw_stmt b))
    | Ast.Swhile (lid, c, body) -> keep (Ast.Swhile (lid, rw_exp c, rw_stmt body))
    | Ast.Sfor (lid, init, c, step, body) ->
      keep (Ast.Sfor (lid, rw_stmt init, rw_exp c, rw_stmt step, rw_stmt body))
    | Ast.Sreturn e -> keep (Ast.Sreturn (Option.map rw_exp e))
  in
  let funs =
    List.map
      (fun (f : Ast.fundef) -> { f with Ast.fbody = rw_stmt f.Ast.fbody })
      (Ast.functions prog)
  in
  List.iter (Ast.replace_fun prog) funs;
  stats
