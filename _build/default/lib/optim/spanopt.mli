(** The overhead-reduction optimizations of §3.4, phrased generically
    over a set of candidate scalar variables (the expansion driver
    passes the span shadows):

    - {b dead-store elimination}: [p.span = p.span] self-assignments
      (from [p = p + 1]) are dropped, as are all stores to candidates
      that are never loaded anywhere;
    - {b constant and copy propagation}: when every store to a
      candidate assigns the same {e stable} value (literals, [sizeof],
      arithmetic over those, and ordinary single-valued scalars),
      loads of the candidate are replaced by that value and its stores
      become dead.

    Variables whose address is taken are never touched. *)

open Minic

(** Structural expression / lvalue equality ignoring access ids. *)
val eq_exp : Ast.exp -> Ast.exp -> bool

val eq_lval : Ast.lval -> Ast.lval -> bool

type stats = {
  mutable self_assigns_removed : int;
  mutable dead_stores_removed : int;
  mutable loads_propagated : int;
}

(** Apply §3.4 to the program in place, over candidate variables
    selected by name. *)
val optimize : Ast.program -> is_candidate:(string -> bool) -> stats
