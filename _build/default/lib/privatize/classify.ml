(** Access-class partitioning (Definitions 4-5 of the paper).

    A loop-independent dependence between two accesses is an
    equivalence relation; its classes are {e access classes}. A class
    is {e thread-private} iff

    + no member is an upwards-exposed load or a downwards-exposed
      store,
    + no member participates in a loop-carried flow dependence, and
    + some member participates in a loop-carried anti- or output
      dependence.

    Private accesses are redirected to per-thread copies by the
    expansion pass; all other accesses are {e shared} and keep using
    copy 0. *)

open Minic

type verdict =
  | Private  (** redirected to the thread's copy (Definition 5) *)
  | Shared  (** keeps using copy 0 *)
  | Induction
      (** a basic induction variable of the loop: its carried flow is
          managed by the parallel runtime (each thread derives its own
          indices), so it is neither expanded nor ordered *)
[@@deriving show { with_path = false }, eq]

(** Why a class was rejected (for reports and tests). *)
type reason =
  | Accepted
  | Has_upwards_exposed of Ast.aid
  | Has_downwards_exposed of Ast.aid
  | Has_carried_flow of Ast.aid
  | No_carried_anti_or_output
[@@deriving show { with_path = false }, eq]

type classification = {
  graph : Depgraph.Graph.t;
  verdicts : (Ast.aid, verdict) Hashtbl.t;
  classes : (Ast.aid list * verdict * reason) list;
      (** every access class with its verdict and justification *)
}

(** Partition the accesses of [g] into classes and classify each.
    [induction] lists access ids belonging to basic induction
    variables of the loop; a class consisting solely of such accesses
    is runtime-managed rather than expanded. *)
let classify ?(induction : Ast.aid list = []) (g : Depgraph.Graph.t) :
    classification =
  let uf = Union_find.create () in
  List.iter (fun s -> Union_find.add uf s.Depgraph.Graph.s_aid) g.Depgraph.Graph.sites;
  List.iter
    (fun (a, b) -> Union_find.union uf a b)
    (Depgraph.Graph.independent_pairs g);
  let judge (cls : Ast.aid list) : verdict * reason =
    if List.for_all (fun a -> List.mem a induction) cls then
      (Induction, Accepted)
    else
      let find_mem pred = List.find_opt pred cls in
      match find_mem (Depgraph.Graph.is_upwards_exposed g) with
      | Some a -> (Shared, Has_upwards_exposed a)
      | None -> (
        match find_mem (Depgraph.Graph.is_downwards_exposed g) with
        | Some a -> (Shared, Has_downwards_exposed a)
        | None -> (
          match find_mem (Depgraph.Graph.in_carried_flow g) with
          | Some a -> (Shared, Has_carried_flow a)
          | None ->
            if List.exists (Depgraph.Graph.in_carried_anti_or_output g) cls
            then (Private, Accepted)
            else (Shared, No_carried_anti_or_output)))
  in
  let classes =
    List.map
      (fun cls ->
        let v, r = judge cls in
        (cls, v, r))
      (Union_find.classes uf)
  in
  let verdicts = Hashtbl.create 64 in
  List.iter
    (fun (cls, v, _) -> List.iter (fun a -> Hashtbl.replace verdicts a v) cls)
    classes;
  { graph = g; verdicts; classes }

let verdict (c : classification) (aid : Ast.aid) : verdict =
  Option.value ~default:Shared (Hashtbl.find_opt c.verdicts aid)

let is_private c aid = verdict c aid = Private

let private_aids (c : classification) : Ast.aid list =
  Hashtbl.fold (fun a v acc -> if v = Private then a :: acc else acc)
    c.verdicts []
  |> List.sort compare

(** Figure 8's three-way split of the loop's {e dynamic} accesses. *)
type breakdown = {
  free_of_carried : int;  (** accesses free of any loop-carried dep *)
  expandable : int;  (** thread-private accesses (Definition 5) *)
  with_carried : int;  (** remaining accesses involved in carried deps *)
}

let breakdown (c : classification) : breakdown =
  let g = c.graph in
  List.fold_left
    (fun acc (s : Depgraph.Graph.site) ->
      let aid = s.Depgraph.Graph.s_aid in
      let n = Depgraph.Graph.dyn_count g aid in
      if not (Depgraph.Graph.in_any_carried g aid) then
        { acc with free_of_carried = acc.free_of_carried + n }
      else
        match verdict c aid with
        (* induction variables are privatized scalars in the paper's
           terms: their carried dependence never crosses threads *)
        | Private | Induction -> { acc with expandable = acc.expandable + n }
        | Shared -> { acc with with_carried = acc.with_carried + n })
    { free_of_carried = 0; expandable = 0; with_carried = 0 }
    g.Depgraph.Graph.sites

(** Accesses that carry cross-iteration flow dependences on shared
    data; the parallel simulator serializes the span between the first
    and last such access of each iteration (DOACROSS post/wait). *)
let ordered_aids (c : classification) : Ast.aid list =
  List.filter_map
    (fun (s : Depgraph.Graph.site) ->
      let aid = s.Depgraph.Graph.s_aid in
      if
        verdict c aid = Shared
        && Depgraph.Graph.involved_in c.graph aid (fun e ->
               e.Depgraph.Graph.e_carried
               && e.Depgraph.Graph.e_kind = Depgraph.Graph.Flow)
      then Some aid
      else None)
    c.graph.Depgraph.Graph.sites

(** Ordered accesses grouped into synchronization channels: accesses of
    the same access class synchronize on the same post/wait pair, and
    carried-flow edges connect classes into one channel. The parallel
    simulator pipelines independent channels (the paper places one
    synchronization per cross-thread dependence, not a single global
    lock). Returns (aid, channel, is_write) triples. *)
let ordered_channels (c : classification) : (Ast.aid * int * bool) list =
  let ordered = ordered_aids c in
  if ordered = [] then []
  else begin
    (* union classes, then merge classes linked by carried flow *)
    let uf = Union_find.create () in
    List.iter (fun a -> Union_find.add uf a) ordered;
    List.iteri
      (fun _ (cls, _, _) ->
        match List.filter (fun a -> List.mem a ordered) cls with
        | [] -> ()
        | first :: rest ->
          List.iter (fun a -> Union_find.union uf first a) rest)
      c.classes;
    List.iter
      (fun (e : Depgraph.Graph.edge) ->
        if
          e.Depgraph.Graph.e_carried
          && e.Depgraph.Graph.e_kind = Depgraph.Graph.Flow
          && List.mem e.Depgraph.Graph.e_src ordered
          && List.mem e.Depgraph.Graph.e_dst ordered
        then Union_find.union uf e.Depgraph.Graph.e_src e.Depgraph.Graph.e_dst)
      (Depgraph.Graph.edges c.graph);
    let kind_of aid =
      match Depgraph.Graph.site c.graph aid with
      | Some s -> s.Depgraph.Graph.s_kind = Visit.Store
      | None -> false
    in
    List.map
      (fun aid -> (aid, Union_find.find uf aid, kind_of aid))
      ordered
  end

(** A loop is DOALL when no shared access is involved in a loop-carried
    flow dependence (privatization removes the carried anti/output
    ones); otherwise it needs DOACROSS scheduling. *)
let parallelism_kind (c : classification) : [ `Doall | `Doacross ] =
  if ordered_aids c = [] then `Doall else `Doacross
