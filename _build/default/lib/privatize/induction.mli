(** Basic induction-variable recognition.

    The parallel runtime manages the loop index itself (each thread
    computes its own chunk's indices), so the index's loop-carried
    flow dependence never crosses threads — the one relaxation of
    Definition 5 the paper relies on implicitly. A variable qualifies
    when every store to it inside the loop (body, step, and all
    callees) has the single syntactic shape [x = x + c] / [x = x - c]
    with constant [c], and its address is never taken. *)

open Minic

(** Names of the basic induction variables of a target loop. *)
val find : Ast.program -> Ast.stmt -> string list

(** Access ids of all accesses to the given variables within the
    loop's own statements (body/step/condition), restricted to the
    supplied site list. *)
val access_ids_of_vars :
  Depgraph.Graph.site list ->
  Ast.program ->
  Ast.stmt ->
  string list ->
  Ast.aid list
