(** Basic induction-variable recognition.

    The parallel runtime (GOMP in the paper) manages the loop index
    itself: each thread computes its own chunk's indices, so the
    index's loop-carried flow dependence never crosses threads. This is
    the one relaxation of Definition 5 the paper relies on implicitly
    (its §3.2 note: a carried flow dependence is harmless "as long as
    the dependence does not occur across threads").

    A variable qualifies as a basic induction variable of a loop when
    every store to it inside the loop (body, step, and all callees) is
    a single syntactic [x = x + c] / [x = x - c] with constant [c]. *)

open Minic

(** All stores to plain variables within a statement, as (name, rhs).
    Call results assigned to a variable are treated as opaque stores
    (an empty [Const 0] rhs that never matches the induction shape). *)
let var_stores (s : Ast.stmt) : (string * Ast.exp) list =
  let acc = ref [] in
  ignore
    (Visit.map_stmt
       (fun s ->
         (match s.Ast.skind with
         | Ast.Sassign (_, Ast.Var x, e) -> acc := (x, e) :: !acc
         | Ast.Scall (Some (_, Ast.Var x), _, _) ->
           acc := (x, Ast.czero) :: !acc
         | _ -> ());
         s)
       s);
  !acc

(** Is any lvalue other than a plain [Var x] stored-to, or [x]'s address
    taken, anywhere x could be aliased? Conservative: a variable whose
    address is taken anywhere in the program is disqualified. *)
let address_taken (prog : Ast.program) (x : string) : bool =
  let found = ref false in
  let check_exp e =
    ignore
      (Visit.fold_exp_accesses (fun () _ -> ()) () e);
    let rec go (e : Ast.exp) =
      match e with
      | Ast.Addr lv -> go_lv_addr lv
      | Ast.Lval (_, lv) -> go_lv lv
      | Ast.Unop (_, a) | Ast.Cast (_, a) | Ast.SizeofExp a -> go a
      | Ast.Binop (_, a, b) ->
        go a;
        go b
      | Ast.Cond (a, b, c) ->
        go a;
        go b;
        go c
      | Ast.Call (_, args) -> List.iter go args
      | Ast.Const _ | Ast.SizeofType _ -> ()
    and go_lv_addr (lv : Ast.lval) =
      (match lv with Ast.Var v when String.equal v x -> found := true | _ -> ());
      go_lv lv
    and go_lv (lv : Ast.lval) =
      match lv with
      | Ast.Var _ -> ()
      | Ast.Deref e -> go e
      | Ast.Index (b, i) ->
        go_lv b;
        go i
      | Ast.Field (b, _) -> go_lv b
    in
    go e
  in
  List.iter
    (fun (f : Ast.fundef) ->
      ignore
        (Visit.map_stmt_exps
           ~fe:(fun e ->
             check_exp e;
             e)
           ~flv:(fun lv -> lv)
           f.Ast.fbody))
    (Ast.functions prog);
  !found

let is_const_int = function Ast.Const (Ast.Cint _) -> true | _ -> false

(** [x = x + c] or [x = x - c]? *)
let is_induction_update (x : string) (e : Ast.exp) : bool =
  match e with
  | Ast.Binop ((Ast.Add | Ast.Sub), Ast.Lval (_, Ast.Var y), c) ->
    String.equal x y && is_const_int c
  | _ -> false

(** Statements whose stores happen inside the loop's iteration space:
    body and step (+ bodies of reachable callees, supplied by caller). *)
let loop_iter_stmts (loop_stmt : Ast.stmt) : Ast.stmt list =
  match loop_stmt.Ast.skind with
  | Ast.Swhile (_, _, body) -> [ body ]
  | Ast.Sfor (_, _, _, step, body) -> [ step; body ]
  | _ -> invalid_arg "loop_iter_stmts: not a loop"

(** Names of the basic induction variables of [loop_stmt]. *)
let find (prog : Ast.program) (loop_stmt : Ast.stmt) : string list =
  let callees =
    (* reuse the profiler's notion of reachability, duplicated here to
       avoid a dependency cycle: names called in the loop, transitively *)
    let seen = Hashtbl.create 8 in
    let rec visit (s : Ast.stmt) =
      ignore
        (Visit.map_stmt
           (fun s ->
             (match s.Ast.skind with
             | Ast.Scall (_, f, _) when not (Hashtbl.mem seen f) ->
               Hashtbl.replace seen f ();
               (match Ast.find_fun prog f with
               | Some fd -> visit fd.Ast.fbody
               | None -> ())
             | _ -> ());
             s)
           s)
    in
    List.iter visit (loop_iter_stmts loop_stmt);
    List.filter (fun f -> Hashtbl.mem seen f.Ast.fname) (Ast.functions prog)
  in
  let stmts =
    loop_iter_stmts loop_stmt @ List.map (fun f -> f.Ast.fbody) callees
  in
  let stores = List.concat_map var_stores stmts in
  let candidates =
    List.sort_uniq compare (List.map fst stores)
  in
  List.filter
    (fun x ->
      List.for_all
        (fun (y, e) -> (not (String.equal x y)) || is_induction_update x e)
        stores
      && not (address_taken prog x))
    candidates

(** Access ids of all accesses to the given variables within the loop's
    site set. *)
let access_ids_of_vars (sites : Depgraph.Graph.site list)
    (prog : Ast.program) (loop_stmt : Ast.stmt) (vars : string list) :
    Ast.aid list =
  ignore prog;
  let in_vars lv =
    match lv with Ast.Var x -> List.mem x vars | _ -> false
  in
  (* recover lvalues by re-walking the loop and callees *)
  let stmts = loop_iter_stmts loop_stmt in
  let collect s =
    Visit.fold_stmt_accesses
      (fun acc (a : Visit.access) ->
        if in_vars a.Visit.acc_lval then a.Visit.acc_aid :: acc else acc)
      [] s
  in
  let direct = List.concat_map collect stmts in
  (* condition accesses *)
  let cond_aids =
    let c, _ = Visit.loop_parts loop_stmt in
    Visit.fold_exp_accesses
      (fun acc (a : Visit.access) ->
        if in_vars a.Visit.acc_lval then a.Visit.acc_aid :: acc else acc)
      [] c
  in
  let site_aids =
    List.map (fun (s : Depgraph.Graph.site) -> s.Depgraph.Graph.s_aid) sites
  in
  List.filter (fun a -> List.mem a site_aids) (direct @ cond_aids)
