lib/privatize/classify.pp.mli: Ast Depgraph Format Hashtbl Minic
