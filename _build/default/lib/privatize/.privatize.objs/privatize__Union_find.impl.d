lib/privatize/union_find.pp.ml: Hashtbl List Option
