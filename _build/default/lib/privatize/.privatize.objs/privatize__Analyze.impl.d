lib/privatize/analyze.pp.ml: Ast Classify Depgraph Induction Minic Printf Visit
