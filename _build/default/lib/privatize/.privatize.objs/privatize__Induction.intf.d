lib/privatize/induction.pp.mli: Ast Depgraph Minic
