lib/privatize/analyze.pp.mli: Ast Classify Depgraph Minic
