lib/privatize/induction.pp.ml: Ast Depgraph Hashtbl List Minic String Visit
