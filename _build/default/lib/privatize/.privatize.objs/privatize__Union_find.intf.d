lib/privatize/union_find.pp.mli:
