lib/privatize/classify.pp.ml: Ast Depgraph Hashtbl List Minic Option Ppx_deriving_runtime Union_find Visit
