(** One-call front door: profile a loop and classify its accesses. *)

open Minic

type result = {
  profile : Depgraph.Profiler.profile;
  classification : Classify.classification;
  induction_vars : string list;
  loop_stmt : Ast.stmt;
  loop_fun : Ast.fundef;
}

(** Profile loop [lid] of a type-checked program by executing it once,
    recognize the loop's basic induction variables, and classify every
    access per Definitions 4-5.
    @raise Invalid_argument if no loop has id [lid]. *)
val analyze : Ast.program -> Ast.lid -> result
