lib/runtimepriv/rp.ml: Ast Hashtbl Interp List Minic Parexec Privatize Visit
