lib/runtimepriv/rp.mli: Ast Minic Parexec Privatize
