(** The runtime-privatization baseline of §4.2.1, adapted from SpiceC
    [12] exactly the way the paper adapted it:

    "we identify private memory accesses in the way described in
    Section 3.2 and insert a function call before each private access.
    These function calls invoke ... a user-level runtime library ...
    in charge of dynamically locating thread-local storage. ... The
    access control of global or stack variables can be performed
    statically ... The access control for heap-allocated objects,
    however, must be performed at runtime ... for each private pointer
    dereference ... We also implement their Heap prefix technique for
    fast locating thread-local storage" (extended to pointers into the
    middle of a structure).

    Concretely: the baseline runs the same statically-correct
    privatized program (so results stay bit-identical and comparable),
    but each private access to {e heap-allocated} data pays the
    runtime library's resolution cost, and every iteration commits its
    privately-written bytes back at a per-byte cost — the timing
    profile of copy-in/commit runtime privatization. Memory use
    charges one thread-local copy of the touched private bytes per
    extra thread, which is the "never privatizes any memory location
    that is not recognized as thread-private" accounting the paper
    uses for Figure 14. *)

open Minic

(** Build the baseline configuration from the {e original} program and
    its analyses: following the paper's adaptation, a runtime
    access-control call is inserted before {e each private access}
    ("we identify private memory accesses in the way described in
    Section 3.2 and insert a function call before each private
    access"). Stack-only temporaries inside the loop body are skipped:
    those are thread-private without any runtime involvement. Access
    ids are preserved by the expansion, so the set applies unchanged
    to the transformed program. *)
let config_of (orig : Ast.program)
    (analyses : Privatize.Analyze.result list) : Parexec.Sim.runtime_priv =
  let monitored = Hashtbl.create 64 in
  let lval_of_aid = Hashtbl.create 256 in
  List.iter
    (fun (f : Ast.fundef) ->
      List.iter
        (fun (a : Visit.access) ->
          Hashtbl.replace lval_of_aid a.Visit.acc_aid (f, a.Visit.acc_lval))
        (Visit.accesses_of_fun f))
    (Ast.functions orig);
  (* plain locals/formals never need runtime redirection *)
  let is_plain_local (f : Ast.fundef) (lv : Ast.lval) =
    match lv with
    | Ast.Var x ->
      List.mem_assoc x f.Ast.fformals || List.mem_assoc x f.Ast.flocals
    | _ -> false
  in
  List.iter
    (fun (an : Privatize.Analyze.result) ->
      Hashtbl.iter
        (fun aid v ->
          if v = Privatize.Classify.Private then
            match Hashtbl.find_opt lval_of_aid aid with
            | Some (f, lv) when not (is_plain_local f lv) ->
              Hashtbl.replace monitored aid ()
            | _ -> ())
        an.Privatize.Analyze.classification.Privatize.Classify.verdicts)
    analyses;
  {
    Parexec.Sim.rp_monitored = monitored;
    rp_resolve_cost = Interp.Cost.rp_resolve;
    rp_commit_per_byte = Interp.Cost.rp_copy_byte;
  }
