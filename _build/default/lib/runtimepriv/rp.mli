(** The runtime-privatization baseline of §4.2.1, adapted from SpiceC
    exactly the way the paper adapted it: a runtime access-control
    call before each private access, with copy-commit of privately
    written bytes at iteration boundaries. The baseline runs the same
    statically-correct privatized program (results stay bit-identical
    and comparable); only the charged costs differ. *)

open Minic

(** Build the baseline configuration from the {e original} program and
    its analyses. Plain locals/formals are skipped (thread-private
    without runtime involvement); access ids are preserved by the
    expansion, so the set applies unchanged to the transformed
    program. *)
val config_of :
  Ast.program -> Privatize.Analyze.result list -> Parexec.Sim.runtime_priv
