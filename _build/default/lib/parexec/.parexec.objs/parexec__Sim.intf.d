lib/parexec/sim.mli: Ast Hashtbl Minic Privatize
