lib/parexec/cache.mli:
