lib/parexec/cache.ml: Array
