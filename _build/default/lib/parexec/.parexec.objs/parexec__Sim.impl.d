lib/parexec/sim.ml: Array Ast Cache Depgraph Hashtbl Interp List Minic Option Privatize Visit
