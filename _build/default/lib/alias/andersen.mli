(** Andersen-style inclusion-based points-to analysis for MiniC.

    Flow- and context-insensitive, field-insensitive (a struct object
    is one abstract location). §3.4 of the paper uses alias analysis
    for two things, both served here: finding every abstract object a
    private access may touch (the expansion set) and finding which
    pointers may point into it (selective promotion). *)

open Minic

type loc =
  | LVar of string  (** "fn::x" for locals/formals, "x" for globals *)
  | LAlloc of Ast.aid  (** malloc/calloc/realloc site, by result store *)
  | LRet of string  (** return-value node of a function *)

val pp_loc : Format.formatter -> loc -> unit
val show_loc : loc -> string
val equal_loc : loc -> loc -> bool
val compare_loc : loc -> loc -> int

module LocSet : Set.S with type elt = loc

type result = {
  pts : (loc, LocSet.t) Hashtbl.t;
  allocs : (Ast.aid * string) list;  (** allocation site and callee name *)
}

val points_to : result -> loc -> LocSet.t

(** Run the analysis over a whole type-checked program. *)
val analyze : Ast.program -> result

(** Pointer targets of an arbitrary expression of function [f],
    evaluated against the solved graph. *)
val targets_of_exp :
  result -> Ast.program -> Ast.fundef -> Ast.exp -> LocSet.t

(** Abstract objects an access to [lv] (in function [f]) may touch. *)
val objects_of_lval :
  result -> Ast.program -> Ast.fundef -> Ast.lval -> LocSet.t

(** May [node] point to any location in [targets]? *)
val may_point_into : result -> loc -> LocSet.t -> bool
