lib/alias/andersen.pp.ml: Ast Hashtbl List Minic Option Ppx_deriving_runtime Printf Queue Set String Types
