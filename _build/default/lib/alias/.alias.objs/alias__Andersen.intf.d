lib/alias/andersen.pp.mli: Ast Format Hashtbl Minic Set
