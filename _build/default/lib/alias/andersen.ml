(** Andersen-style inclusion-based points-to analysis for MiniC.

    Flow- and context-insensitive, field-insensitive (a struct object
    is one abstract location). §3.4 of the paper uses alias analysis
    for two things, both served here:

    - find every {e abstract object} a private memory access may touch
      (the expansion set: which data structures get expanded);
    - find which pointers may point to an expanded object (selective
      promotion: only those carry a span).

    Abstract locations are named variables (locals qualified by their
    function) and heap allocation sites (identified by the access id of
    the call's result store). *)

open Minic

type loc =
  | LVar of string  (** "fn::x" for locals/formals, "x" for globals *)
  | LAlloc of Ast.aid  (** malloc/calloc/realloc site *)
  | LRet of string  (** return value node of a function *)
[@@deriving show { with_path = false }, eq, ord]

module LocSet = Set.Make (struct
  type t = loc

  let compare = compare_loc
end)

(* Inclusion constraints:
   - Base  (l, p)        : l ∈ pts(p)
   - Copy  (p, q)        : pts(p) ⊇ pts(q)
   - Load  (p, q)        : ∀v ∈ pts(q). pts(p) ⊇ pts(v)     [p = deref q]
   - Store (p, q)        : ∀v ∈ pts(p). pts(v) ⊇ pts(q)     [deref p = q] *)
type constr =
  | Base of loc * loc
  | Copy of loc * loc
  | Load of loc * loc
  | Store of loc * loc

type result = {
  pts : (loc, LocSet.t) Hashtbl.t;
  allocs : (Ast.aid * string) list;  (** alloc site and callee name *)
}

let points_to (r : result) (l : loc) : LocSet.t =
  Option.value ~default:LocSet.empty (Hashtbl.find_opt r.pts l)

(* ------------------------------------------------------------------ *)
(* Constraint generation                                               *)
(* ------------------------------------------------------------------ *)

type genv = {
  prog : Ast.program;
  mutable constrs : constr list;
  mutable allocs : (Ast.aid * string) list;
  mutable fresh : int;
}

let add g c = g.constrs <- c :: g.constrs

let fresh_node g =
  g.fresh <- g.fresh + 1;
  LVar (Printf.sprintf "$tmp%d" g.fresh)

(** The abstract node standing for variable [x] in function [fn]:
    locals/formals are qualified, globals are not. *)
let var_node (f : Ast.fundef) (x : string) : loc =
  let local =
    List.mem_assoc x f.Ast.fformals || List.mem_assoc x f.Ast.flocals
  in
  if local then LVar (f.Ast.fname ^ "::" ^ x) else LVar x

(* [exp_targets] returns a node whose pts over-approximates the
   pointer values of an expression (fresh nodes glue subterms). *)

(** A node N with pts(N) = possible pointer values of [e]. *)
let rec exp_targets g (f : Ast.fundef) (e : Ast.exp) : loc =
  match e with
  | Ast.Const _ | Ast.SizeofType _ | Ast.SizeofExp _ ->
    fresh_node g (* empty *)
  | Ast.Addr lv -> (
    match lv with
    | Ast.Deref inner ->
      (* &*p (possibly with index/field offsets) = p *)
      exp_targets g f inner
    | Ast.Index (b, i) ->
      ignore (exp_targets g f i);
      exp_targets g f (Ast.Addr b)
    | Ast.Field (b, _) -> exp_targets g f (Ast.Addr b)
    | Ast.Var x ->
      let n = fresh_node g in
      add g (Base (var_node f x, n));
      n)
  | Ast.Lval (_, lv) -> (
    (* value loaded from lv *)
    match lv with
    | Ast.Var x -> var_node f x
    | Ast.Deref e ->
      let n = fresh_node g in
      add g (Load (n, exp_targets g f e));
      n
    | Ast.Index (b, i) ->
      ignore (exp_targets g f i);
      (* contents of an array element: field-insensitively, the
         contents of the array object *)
      let n = fresh_node g in
      add g (Load (n, exp_targets g f (Ast.Addr b)));
      n
    | Ast.Field (b, _) ->
      let n = fresh_node g in
      add g (Load (n, exp_targets g f (Ast.Addr b)));
      n)
  | Ast.Unop (_, a) ->
    ignore (exp_targets g f a);
    fresh_node g
  | Ast.Binop ((Ast.Add | Ast.Sub), a, b) ->
    (* pointer arithmetic: result aliases either side *)
    let n = fresh_node g in
    add g (Copy (n, exp_targets g f a));
    add g (Copy (n, exp_targets g f b));
    n
  | Ast.Binop (_, a, b) ->
    ignore (exp_targets g f a);
    ignore (exp_targets g f b);
    fresh_node g
  | Ast.Cast (_, a) -> exp_targets g f a
  | Ast.Cond (c, a, b) ->
    ignore (exp_targets g f c);
    let n = fresh_node g in
    add g (Copy (n, exp_targets g f a));
    add g (Copy (n, exp_targets g f b));
    n
  | Ast.Call (_, _) -> fresh_node g (* hoisted by the checker *)

(** pts(target-of-lv) ⊇ pts(rhs-node): an assignment [lv = ...]. *)
let assign_into g (f : Ast.fundef) (lv : Ast.lval) (rhs : loc) : unit =
  match lv with
  | Ast.Var x -> add g (Copy (var_node f x, rhs))
  | Ast.Deref e -> add g (Store (exp_targets g f e, rhs))
  | Ast.Index (b, _) | Ast.Field (b, _) -> (
    (* storing into part of an object: *(&b) gets the value *)
    match b with
    | Ast.Var x -> add g (Copy (var_node f x, rhs))
    | _ -> add g (Store (exp_targets g f (Ast.Addr b), rhs)))

let is_alloc_name = function
  | "malloc" | "calloc" | "realloc" -> true
  | _ -> false

let rec gen_stmt g (f : Ast.fundef) (s : Ast.stmt) : unit =
  match s.Ast.skind with
  | Ast.Sskip | Ast.Sbreak | Ast.Scontinue -> ()
  | Ast.Sassign (_, lv, e) -> assign_into g f lv (exp_targets g f e)
  | Ast.Scall (ret, callee, args) -> (
    (match Ast.find_fun g.prog callee with
    | Some fd ->
      (* bind arguments to formals *)
      List.iter2
        (fun (formal, _) arg ->
          add g (Copy (LVar (callee ^ "::" ^ formal), exp_targets g f arg)))
        fd.Ast.fformals args;
      (match ret with
      | Some (_, lv) -> assign_into g f lv (LRet callee)
      | None -> ())
    | None ->
      (* builtin *)
      List.iter (fun a -> ignore (exp_targets g f a)) args;
      if is_alloc_name callee then (
        match ret with
        | Some (aid, lv) ->
          g.allocs <- (aid, callee) :: g.allocs;
          let n = fresh_node g in
          add g (Base (LAlloc aid, n));
          (* realloc may return (a copy of) its argument's object *)
          (if String.equal callee "realloc" then
             match args with
             | p :: _ -> add g (Copy (n, exp_targets g f p))
             | [] -> ());
          assign_into g f lv n
        | None -> ())
      else if String.equal callee "memcpy" then (
        (* *dst gets whatever *src holds *)
        match args with
        | [ d; s; _ ] ->
          let tmp = fresh_node g in
          add g (Load (tmp, exp_targets g f s));
          add g (Store (exp_targets g f d, tmp))
        | _ -> ())
      else
        match ret with
        | Some (_, lv) -> assign_into g f lv (fresh_node g)
        | None -> ()))
  | Ast.Sseq ss -> List.iter (gen_stmt g f) ss
  | Ast.Sif (c, a, b) ->
    ignore (exp_targets g f c);
    gen_stmt g f a;
    gen_stmt g f b
  | Ast.Swhile (_, c, body) ->
    ignore (exp_targets g f c);
    gen_stmt g f body
  | Ast.Sfor (_, init, c, step, body) ->
    gen_stmt g f init;
    ignore (exp_targets g f c);
    gen_stmt g f step;
    gen_stmt g f body
  | Ast.Sreturn None -> ()
  | Ast.Sreturn (Some e) -> add g (Copy (LRet f.Ast.fname, exp_targets g f e))

(* ------------------------------------------------------------------ *)
(* Solver: standard worklist over the inclusion constraint graph       *)
(* ------------------------------------------------------------------ *)

let solve (constrs : constr list) : (loc, LocSet.t) Hashtbl.t =
  let pts : (loc, LocSet.t) Hashtbl.t = Hashtbl.create 128 in
  let get n = Option.value ~default:LocSet.empty (Hashtbl.find_opt pts n) in
  let copies : (loc, loc list) Hashtbl.t = Hashtbl.create 128 in
  let add_copy ~dst ~src =
    Hashtbl.replace copies src
      (dst :: Option.value ~default:[] (Hashtbl.find_opt copies src))
  in
  let loads = ref [] and stores = ref [] in
  let work = Queue.create () in
  let update n set =
    let old = get n in
    let merged = LocSet.union old set in
    if not (LocSet.equal old merged) then begin
      Hashtbl.replace pts n merged;
      Queue.push n work
    end
  in
  List.iter
    (function
      | Base (l, n) -> update n (LocSet.singleton l)
      | Copy (dst, src) -> add_copy ~dst ~src
      | Load (dst, src) -> loads := (dst, src) :: !loads
      | Store (dst, src) -> stores := (dst, src) :: !stores)
    constrs;
  (* complex constraints are re-checked whenever any node changes; the
     programs are small enough that this simple strategy converges fast *)
  let stable = ref false in
  while not !stable do
    (* drain the copy-propagation worklist *)
    while not (Queue.is_empty work) do
      let n = Queue.pop work in
      let set = get n in
      List.iter
        (fun dst -> update dst set)
        (Option.value ~default:[] (Hashtbl.find_opt copies n))
    done;
    stable := true;
    List.iter
      (fun (dst, src) ->
        LocSet.iter (fun v -> update dst (get v)) (get src))
      !loads;
    List.iter
      (fun (dst, src) ->
        let rhs = get src in
        LocSet.iter (fun v -> update v rhs) (get dst))
      !stores;
    if not (Queue.is_empty work) then stable := false
  done;
  pts

(** Run the analysis over a whole (type-checked) program. *)
let analyze (prog : Ast.program) : result =
  let g = { prog; constrs = []; allocs = []; fresh = 0 } in
  List.iter (fun f -> gen_stmt g f f.Ast.fbody) (Ast.functions prog);
  (* global initializers may take addresses *)
  let dummy =
    {
      Ast.fname = "__globals";
      freturn = Types.Tvoid;
      fformals = [];
      flocals = [];
      fbody = Ast.skip;
    }
  in
  List.iter
    (fun (name, _, ini) ->
      match ini with
      | Some ini ->
        let rec go = function
          | Ast.Iexp e -> assign_into g dummy (Ast.Var name) (exp_targets g dummy e)
          | Ast.Ilist l -> List.iter go l
        in
        go ini
      | None -> ())
    (Ast.global_vars prog);
  { pts = solve g.constrs; allocs = g.allocs }

(* ------------------------------------------------------------------ *)
(* Queries used by the expansion pass                                  *)
(* ------------------------------------------------------------------ *)

(* Evaluate a small delta constraint set against the solved graph;
   fresh nodes introduced by the query are solved to fixpoint while
   program nodes keep their global solution. *)
let eval_delta (r : result) (g : genv) (n : loc) : LocSet.t =
  let pts = Hashtbl.copy r.pts in
  let get m = Option.value ~default:LocSet.empty (Hashtbl.find_opt pts m) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun c ->
        let upd dst set =
          let old = get dst in
          let merged = LocSet.union old set in
          if not (LocSet.equal old merged) then begin
            Hashtbl.replace pts dst merged;
            changed := true
          end
        in
        match c with
        | Base (l, m) -> upd m (LocSet.singleton l)
        | Copy (dst, src) -> upd dst (get src)
        | Load (dst, src) -> LocSet.iter (fun v -> upd dst (get v)) (get src)
        | Store (dst, src) ->
          let rhs = get src in
          LocSet.iter (fun v -> upd v rhs) (get dst))
      g.constrs
  done;
  get n

(** Pointer targets of an arbitrary expression, evaluated against the
    solved points-to graph. *)
let targets_of_exp (r : result) (prog : Ast.program) (f : Ast.fundef)
    (e : Ast.exp) : LocSet.t =
  let g = { prog; constrs = []; allocs = []; fresh = 1_000_000 } in
  let n = exp_targets g f e in
  eval_delta r g n

(** Abstract objects an access to [lv] (in function [f]) may touch. *)
let objects_of_lval (r : result) (prog : Ast.program) (f : Ast.fundef)
    (lv : Ast.lval) : LocSet.t =
  let rec root (lv : Ast.lval) : [ `Var of string | `Ptr of Ast.exp ] =
    match lv with
    | Ast.Var x -> `Var x
    | Ast.Deref e -> `Ptr e
    | Ast.Index (b, _) | Ast.Field (b, _) -> root b
  in
  match root lv with
  | `Var x ->
    let local =
      List.mem_assoc x f.Ast.fformals || List.mem_assoc x f.Ast.flocals
    in
    LocSet.singleton (LVar (if local then f.Ast.fname ^ "::" ^ x else x))
  | `Ptr e -> targets_of_exp r prog f e

(** May [node] point to any location in [targets]? Drives selective
    promotion. *)
let may_point_into (r : result) (node : loc) (targets : LocSet.t) : bool =
  not (LocSet.is_empty (LocSet.inter (points_to r node) targets))
