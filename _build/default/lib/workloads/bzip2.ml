(** SPEC CPU2000 256.bzip2 model: [compressStream]'s block loop.

    Each iteration takes the next block from the input stream (reading
    the shared input cursor early), builds the working arrays — the
    block buffer, the [quadrant] shadow, the [zptr] permutation that is
    famously recast between 2-byte and 4-byte views, and the [ftab]
    bucket table — sorts the block, and appends the "compressed" result
    to the shared output stream (updating the output cursor late).
    The four working structures are the privatized ones (Table 5 lists
    four for 256.bzip2); the input and output cursors are two
    independent DOACROSS synchronization channels, and the ordered
    output append gives the loop its sync-dominated profile at eight
    cores (Figure 12). *)

let source =
  {|
// 256.bzip2: block compression loop (model of SPEC2000/bzip2)

char instream[24576];
int in_cursor;
char outstream[32768];
int out_cursor;
long out_crc;
int crc_table[256];

// the four privatized working structures
char block[600];
char quadrant[600];
int zptr[600];
int ftab[256];

int block_size;

void load_block(void)
{
  // read up to 512 bytes from the shared input stream
  int i;
  block_size = 0;
  for (i = 0; i < 256; i++) {
    if (in_cursor >= 24576) break;
    block[block_size] = instream[in_cursor];
    in_cursor = in_cursor + 1;
    block_size = block_size + 1;
  }
  // overshoot region used by the sort comparisons
  for (i = block_size; i < 600; i++) block[i] = 0;
}

void build_ftab(void)
{
  int i;
  for (i = 0; i < 256; i++) ftab[i] = 0;
  for (i = 0; i < block_size; i++)
    ftab[block[i] & 255] = ftab[block[i] & 255] + 1;
  int run = 0;
  for (i = 0; i < 256; i++) {
    int c = ftab[i];
    ftab[i] = run;
    run = run + c;
  }
}

int full_gt(int a, int b)
{
  // compare rotations a and b of the block, quadrant as tie-break
  int k;
  for (k = 0; k < 6; k++) {
    int ca = block[(a + k) % 600] & 255;
    int cb = block[(b + k) % 600] & 255;
    if (ca != cb) return ca > cb;
    int qa = quadrant[(a + k) % 600];
    int qb = quadrant[(b + k) % 600];
    if (qa != qb) return qa > qb;
  }
  return 0;
}

void sort_block(void)
{
  // bucket by first byte via ftab, then insertion sort within buckets
  build_ftab();
  int i;
  for (i = 0; i < block_size; i++) quadrant[i] = (block[i] & 255) / 16;
  for (i = block_size; i < 600; i++) quadrant[i] = 0;
  // scatter indices into zptr by bucket
  int tmp[256];
  for (i = 0; i < 256; i++) tmp[i] = ftab[i];
  for (i = 0; i < block_size; i++) {
    int b = block[i] & 255;
    zptr[tmp[b]] = i;
    tmp[b] = tmp[b] + 1;
  }
  // refine each bucket (the recast: walk zptr as 2-byte shorts to
  // touch the low halves during the insertion, like the original's
  // 2-byte/4-byte double view)
  short *zs = (short *)zptr;
  int bucket;
  for (bucket = 0; bucket < 256; bucket++) {
    int lo = ftab[bucket];
    int hi;
    if (bucket == 255) hi = block_size;
    else hi = ftab[bucket + 1];
    int j;
    for (j = lo + 1; j < hi; j++) {
      int v = zptr[j];
      int vlow = zs[j * 2];
      int k = j - 1;
      int moving = 1;
      while (moving) {
        if (k < lo) { moving = 0; continue; }
        int gt = full_gt(zptr[k], v);
        if (!gt) { moving = 0; continue; }
        zptr[k + 1] = zptr[k];
        k = k - 1;
      }
      zptr[k + 1] = v;
      zs[(k + 1) * 2] = vlow;
    }
  }
}

int bit_buf;
int bit_count;

void put_bits(int value, int nbits)
{
  // the original writes the compressed stream bit by bit through a
  // shared bit buffer; this is inherently ordered output
  int k;
  for (k = nbits - 1; k >= 0; k--) {
    bit_buf = (bit_buf << 1) | ((value >> k) & 1);
    bit_count = bit_count + 1;
    if (bit_count == 8) {
      if (out_cursor < 32768) {
        outstream[out_cursor] = (char)bit_buf;
        out_cursor = out_cursor + 1;
      }
      out_crc = crc_table[((int)out_crc ^ bit_buf) & 255] ^ (out_crc >> 8);
      bit_buf = 0;
      bit_count = 0;
    }
  }
}

void emit_block(void)
{
  // append an MTF/RLE-ish encoding of the sorted permutation to the
  // shared output stream, bit-granular and in block order; every
  // 16-value group carries a selector byte like sendMTFValues
  int i;
  int prev = -1;
  int run = 0;
  int group = 0;
  for (i = 0; i < block_size; i++) {
    int v = block[zptr[i] % 600] & 255;
    if (v == prev) {
      run = run + 1;
      if (run == 255) { put_bits(run, 8); run = 0; }
    } else {
      if (run > 0) put_bits(run, 8);
      run = 0;
      put_bits(v, 8);
      put_bits(v >> 4, 4);
      prev = v;
    }
    group = group + v;
    if (i % 16 == 15) {
      put_bits(group & 255, 8);
      group = 0;
    }
  }
  if (run > 0) put_bits(run, 8);
}

void make_input(void)
{
  srand(256256);
  int i;
  for (i = 0; i < 256; i++)
    crc_table[i] = (i * 0x1081 + 0x5a5a) ^ (i << 13);
  for (i = 0; i < 24576; i++) {
    // compressible-ish input: long runs with noise
    int r = rand();
    if (r % 7 < 4) instream[i] = 32 + (i / 3) % 64;
    else instream[i] = r % 251;
  }
}

int main(void)
{
  make_input();
  int blk;
#pragma parallel
  for (blk = 0; blk < 96; blk++) {
    load_block();
    if (block_size == 0) continue;
    sort_block();
    emit_block();
  }
  printf("bzip2 out %d crc %d\n", out_cursor, (int)out_crc);
  return 0;
}
|}

let workload : Workload.t =
  {
    Workload.name = "256.bzip2";
    suite = "SPEC CPU2000";
    source;
    loop_functions = [ "main" ];
    nest_levels = [ 2 ];
    paper_parallelism = "DOACROSS";
    paper_privatized = 4;
    description =
      "one block sorted per iteration; privatizes block, quadrant, the \
       recast zptr and ftab; input and output cursors are ordered \
       channels, making the loop sync-bound at high thread counts";
  }
