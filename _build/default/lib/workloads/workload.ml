(** A benchmark program modelling one row of the paper's Table 4. *)

type t = {
  name : string;
  suite : string;
  source : string;  (** MiniC source; parallel loops carry #pragma parallel *)
  loop_functions : string list;
      (** function(s) containing the parallelized loop(s), Table 4 *)
  nest_levels : int list;  (** loop nesting level per parallel loop *)
  paper_parallelism : string;  (** DOALL / DOACROSS, per the paper *)
  paper_privatized : int;  (** Table 5's count, for comparison *)
  description : string;
}

let loc_count (w : t) : int =
  (* count non-blank source lines, the paper's #LOC convention *)
  String.split_on_char '\n' w.source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
