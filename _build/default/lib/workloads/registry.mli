(** All benchmark programs of the evaluation, in the paper's Table 4
    order. *)

val all : Workload.t list

(** Look a workload up by name ("dijkstra", "md5", "mpeg2-encoder",
    "mpeg2-decoder", "h263-encoder", "256.bzip2", "456.hmmer",
    "470.lbm").
    @raise Invalid_argument for unknown names. *)
val find : string -> Workload.t
