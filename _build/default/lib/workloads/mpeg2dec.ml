(** MediaBench II mpeg2-decoder model: picture-data decoding.

    The parallelized loop (level 2) decodes one slice per iteration:
    entropy-ish unpacking of coefficients into a block buffer, a
    separable inverse DCT through a temp matrix, then motion
    compensation against the previous frame into the slice's disjoint
    rows of the output picture. The block buffer, the IDCT temp and the
    bit-reader state are the three privatized structures. The output
    and reference frames are large, so aggregate cache pressure rises
    with thread count — the decoder's plateau in Figure 11 comes from
    exactly that ("suffer from increased cache misses as the number of
    cores increases"). *)

let source =
  {|
// mpeg2-decoder: slice decoding (model of MediaBench II mpeg2dec)

int coded[48][768];      // pseudo-bitstream: coefficients per slice
int prev_frame[192][192];
int out_frame[192][192];
int mv_table[48];

// privatized decoding state
int block[8][8];
int idct_tmp[8][8];
struct bitreader { int pos; int run; int level; };
struct bitreader br;

int clamp255(int v)
{
  if (v < 0) return 0;
  if (v > 255) return 255;
  return v;
}

void read_block(int slice, int blkno)
{
  // unpack 64 coefficients with a run/level scheme
  int i;
  for (i = 0; i < 64; i++) block[i / 8][i % 8] = 0;
  br.run = 0;
  br.level = 0;
  int k = 0;
  while (k < 64) {
    int code = coded[slice][blkno * 16 + (k % 16)];
    br.run = code % 5;
    br.level = (code / 5) % 64 - 32;
    k = k + br.run + 1;
    if (k < 64) block[k / 8][k % 8] = br.level;
    br.pos = br.pos + 1;
    if (br.level == 0 && br.run == 0) k = k + 7; // escape
  }
}

void idct8x8(void)
{
  // separable integer transform through idct_tmp
  int i;
  int j;
  int k;
  for (i = 0; i < 8; i++)
    for (j = 0; j < 8; j++) {
      int s1 = 0;
      for (k = 0; k < 8; k++)
        s1 = s1 + block[i][k] * ((k + 1) * (j + 1) % 7 - 3);
      idct_tmp[i][j] = s1 / 4;
    }
  for (i = 0; i < 8; i++)
    for (j = 0; j < 8; j++) {
      int s2 = 0;
      for (k = 0; k < 8; k++)
        s2 = s2 + idct_tmp[k][j] * ((k + 1) * (i + 1) % 7 - 3);
      block[i][j] = s2 / 8;
    }
}

void decode_slice(int slice)
{
  br.pos = 0;
  int rows_per_slice = 4;   // 4 pixel rows of 8x8 blocks per slice
  int mv = mv_table[slice];
  int b;
  for (b = 0; b < 24; b++) {
    read_block(slice, b % 16);
    idct8x8();
    int base_r = slice * rows_per_slice + (b / 24) * 4;
    int base_c = (b % 24) * 8;
    if (base_c + 8 > 192) base_c = 192 - 8;
    // per-block motion vectors scatter prediction reads across the
    // reference frame, as B-frame compensation does
    int mvr = mv + (coded[slice][b * 16] % 97) - 48;
    int mvc = mv + (coded[slice][b * 16 + 1] % 97) - 48;
    int i;
    int j;
    for (i = 0; i < 4; i++)
      for (j = 0; j < 8; j++) {
        int pr = base_r + i + mvr;
        int pc = base_c + j + mvc;
        if (pr < 0) pr = 0;
        if (pr > 191) pr = 191;
        if (pc < 0) pc = 0;
        if (pc > 191) pc = 191;
        int pred = prev_frame[pr][pc];
        out_frame[base_r + i][base_c + j] =
          clamp255(pred + block[(i * 2) % 8][j]);
      }
  }
}

void make_stream(void)
{
  srand(4242);
  int s;
  int i;
  for (s = 0; s < 48; s++) {
    mv_table[s] = rand() % 5 - 2;
    for (i = 0; i < 768; i++)
      coded[s][i] = rand() % 320;
  }
  for (i = 0; i < 192; i++) {
    int j;
    for (j = 0; j < 192; j++)
      prev_frame[i][j] = (i * 7 + j * 13) % 256;
  }
}

int main(void)
{
  make_stream();
  int slice;
#pragma parallel
  for (slice = 0; slice < 48; slice++) {
    decode_slice(slice);
  }
  int cs = 0;
  int i;
  int j;
  for (i = 0; i < 192; i++)
    for (j = 0; j < 192; j++)
      cs = (cs + out_frame[i][j] * (i + j + 1)) % 1000000007;
  printf("mpeg2dec frame checksum %d\n", cs);
  return 0;
}
|}

let workload : Workload.t =
  {
    Workload.name = "mpeg2-decoder";
    suite = "MediaBench II";
    source;
    loop_functions = [ "main" ];
    nest_levels = [ 2 ];
    paper_parallelism = "DOALL";
    paper_privatized = 3;
    description =
      "one slice decoded per iteration; privatizes the coefficient block, \
       the IDCT temp and the bit-reader state";
  }
