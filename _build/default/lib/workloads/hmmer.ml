(** SPEC CPU2006 456.hmmer model: the serial main loop.

    Each iteration runs a Viterbi-style dynamic program for one
    sequence against the profile HMM. The DP matrix [mx] is allocated
    through the ambiguous two-site malloc of the paper's Figure 3 (the
    very example motivating the span machinery), alongside seven more
    score buffers — Table 5 lists eight privatized structures. After
    the DP, the iteration consults the running best score (reading it
    early for the reporting threshold), and finishes with an ordered
    trace-back that appends the alignment to a shared buffer — the
    serial tail that makes hmmer's speedup plateau and its eight-core
    profile synchronization-heavy (Figure 12). *)

let source =
  {|
// 456.hmmer: one sequence scored per iteration (model of SPEC/hmmer)

int seqs[64][96];
int seq_len[64];
int hmm_match[16][24];
int hmm_insert[16][24];
int hmm_trans[16][8];

// privatized score structures (eight, counting mx from its two sites)
int *mx;
int mmx_row[16];
int imx_row[16];
int dmx_row[16];
int xmx[8];
int scbuf[96];
int tbtab[96];
struct vstate { int best; int besti; int bestj; };
struct vstate vst;

// shared, ordered outputs
int global_best;
int global_hits;
char align_buf[8192];
int align_pos;

void alloc_matrix(int max_len)
{
  // Figure 3: which site allocates is input-dependent, so only the
  // span mechanism lets redirection find the copy stride
  int cells = (max_len + 1) * 16;
  int m1 = cells * 4;
  int m2 = (cells + 64) * 4;
  if (max_len % 2 == 0) mx = (int *)malloc(m1);
  else mx = (int *)malloc(m2);
}

int viterbi(int s)
{
  int len = seq_len[s];
  int i;
  int k;
  vst.best = -1 << 29;
  vst.besti = 0;
  vst.bestj = 0;
  for (k = 0; k < 16; k++) {
    mmx_row[k] = -1 << 20;
    imx_row[k] = -1 << 20;
    dmx_row[k] = -1 << 20;
    mx[k] = 0;
  }
  for (k = 0; k < 8; k++) xmx[k] = 0;
  for (i = 1; i <= len; i++) {
    int sym = seqs[s][i - 1] % 24;
    scbuf[i - 1] = 0;
    for (k = 1; k < 16; k++) {
      int mprev = mx[(i - 1) * 16 + (k - 1)];
      int best = mprev + hmm_trans[k][0];
      int ins = imx_row[k - 1] + hmm_trans[k][1];
      if (ins > best) best = ins;
      int del = dmx_row[k - 1] + hmm_trans[k][2];
      if (del > best) best = del;
      int sc = best + hmm_match[k][sym];
      mx[i * 16 + k] = sc;
      imx_row[k] = sc + hmm_insert[k][sym] / 2;
      dmx_row[k] = sc - hmm_trans[k][3];
      if (sc > scbuf[i - 1]) scbuf[i - 1] = sc;
      if (sc > vst.best) {
        vst.best = sc;
        vst.besti = i;
        vst.bestj = k;
      }
    }
  }
  return vst.best;
}

void traceback(int s)
{
  // ordered alignment output: re-derive each step of the optimal path
  // (as the original's P7ViterbiTrace re-examines the DP cells) and
  // append the alignment record to the shared buffer
  int i = vst.besti;
  int j = vst.bestj;
  if (j < 1) j = 1;
  int n = 0;
  while (i > 0 && n < 160) {
    int cell = mx[i * 16 + j];
    tbtab[n % 96] = cell;
    int sym = seqs[s][i - 1] % 24;
    // rescore the predecessor candidates to find which move was taken
    int bestk = 1;
    int bestv = -1 << 29;
    int k;
    for (k = 1; k < 16; k++) {
      int cand = mx[(i - 1) * 16 + k] + hmm_trans[k][0]
                 + hmm_match[k][sym] - (j - k) * (j - k)
                 + hmm_insert[k][sym] / 4;
      if (cand > bestv) { bestv = cand; bestk = k; }
    }
    char c;
    if (cell % 3 == 0) { c = 'M'; i = i - 1; j = j > 1 ? j - 1 : bestk; }
    else if (cell % 3 == 1) { c = 'I'; i = i - 1; }
    else { c = 'D'; j = j > 1 ? j - 1 : bestk; i = i - 1; }
    if (align_pos < 8188) {
      align_buf[align_pos] = c;
      align_buf[align_pos + 1] = (char)('a' + sym);
      align_buf[align_pos + 2] = (char)('A' + bestk % 26);
      align_pos = align_pos + 3;
    }
    n = n + 1;
  }
  if (align_pos < 8191) {
    align_buf[align_pos] = '|';
    align_pos = align_pos + 1;
  }
}

void make_model(void)
{
  srand(456456);
  int s;
  int k;
  for (s = 0; s < 64; s++) {
    seq_len[s] = 48 + rand() % 48;
    int i;
    for (i = 0; i < 96; i++) seqs[s][i] = rand() % 24;
  }
  for (k = 0; k < 16; k++) {
    int a;
    for (a = 0; a < 24; a++) {
      hmm_match[k][a] = rand() % 17 - 8;
      hmm_insert[k][a] = rand() % 9 - 4;
    }
    for (a = 0; a < 8; a++) hmm_trans[k][a] = rand() % 7 - 3;
  }
}

int main(void)
{
  make_model();
  alloc_matrix(96);
  int s;
#pragma parallel
  for (s = 0; s < 64; s++) {
    int score = viterbi(s);
    // ordered reporting phase: threshold check, trace-back, best update
    if (score > global_best - 40) {
      traceback(s);
      global_hits = global_hits + 1;
    }
    if (score > global_best) global_best = score;
  }
  printf("hmmer best %d hits %d aligned %d\n",
         global_best, global_hits, align_pos);
  free(mx);
  return 0;
}
|}

let workload : Workload.t =
  {
    Workload.name = "456.hmmer";
    suite = "SPEC CPU2006";
    source;
    loop_functions = [ "main" ];
    nest_levels = [ 2 ];
    paper_parallelism = "DOACROSS";
    paper_privatized = 8;
    description =
      "Viterbi DP per sequence; privatizes the ambiguously-allocated mx \
       (Figure 3) plus seven score buffers; the ordered best-score and \
       alignment trace-back serialize the tail of each iteration";
  }
