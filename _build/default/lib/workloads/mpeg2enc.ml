(** MediaBench II mpeg2-encoder model: block motion estimation.

    The parallelized loop (nest level 3 in the original:
    sequence->picture->macroblock) estimates a motion vector per
    macroblock. Each iteration copies the current 16x16 block into
    scratch buffers, scans a search window over the reference frame
    computing SADs with intermediate row/column buffers, and emits the
    best vector into the per-macroblock output slot. The scratch
    structures (current block, candidate block, interpolated
    half-pixel block, SAD row accumulators, distortion table, search
    trace, and the shared motion-state record) are reused by every
    iteration — the paper privatizes seven structures here. *)

let source =
  {|
// mpeg2-encoder: motion estimation per macroblock
// (model of MediaBench II mpeg2enc, loop in motion_estimation)

int cur_frame[128][96];
int ref_frame[128][96];
int mvx_out[48];
int mvy_out[48];
int sad_out[48];

// the seven structures the expansion privatizes
int currblk[16][16];
int candblk[16][16];
int halfblk[16][16];
int sadrow[16];
int dist_tab[81];
int trace[32];
struct mstate { int bestx; int besty; int bestsad; int steps; };
struct mstate mst;

void load_current(int mbx, int mby)
{
  int i;
  int j;
  for (i = 0; i < 16; i++)
    for (j = 0; j < 16; j++)
      currblk[i][j] = cur_frame[mbx * 16 + i][mby * 16 + j];
}

int block_sad(int bx, int by)
{
  // SAD of currblk against ref at (bx, by), rows accumulated in sadrow
  int i;
  int j;
  int total = 0;
  for (i = 0; i < 16; i++) {
    int row = 0;
    for (j = 0; j < 16; j++) {
      candblk[i][j] = ref_frame[bx + i][by + j];
      int d = currblk[i][j] - candblk[i][j];
      if (d < 0) d = -d;
      row = row + d;
    }
    sadrow[i] = row;
    total = total + row;
    if (total >= mst.bestsad) return total; // early exit like the original
  }
  return total;
}

int half_pel_refine(int bx, int by)
{
  // refine around the integer-pel winner with an averaged block
  int i;
  int j;
  for (i = 0; i < 16; i++)
    for (j = 0; j < 16; j++) {
      int a = ref_frame[bx + i][by + j];
      int b = ref_frame[bx + i][by + j + 1];
      halfblk[i][j] = (a + b + 1) / 2;
    }
  int total = 0;
  for (i = 0; i < 16; i++)
    for (j = 0; j < 16; j++) {
      int d = currblk[i][j] - halfblk[i][j];
      if (d < 0) d = -d;
      total = total + d;
    }
  return total;
}

void estimate_mb(int mb)
{
  int mbx = mb / 6;
  int mby = mb % 6;
  load_current(mbx, mby);
  mst.bestx = 0;
  mst.besty = 0;
  mst.bestsad = 1 << 29;
  mst.steps = 0;
  int dx;
  int dy;
  for (dx = -4; dx <= 4; dx++) {
    for (dy = -4; dy <= 4; dy++) {
      int bx = mbx * 16 + dx;
      int by = mby * 16 + dy;
      if (bx < 0 || by < 0 || bx + 16 > 128 || by + 16 > 96) continue;
      int sad = block_sad(bx, by);
      dist_tab[(dx + 4) * 9 + (dy + 4)] = sad;
      if (mst.steps < 32) trace[mst.steps] = sad;
      mst.steps = mst.steps + 1;
      if (sad < mst.bestsad) {
        mst.bestsad = sad;
        mst.bestx = dx;
        mst.besty = dy;
      }
    }
  }
  int half = half_pel_refine(mbx * 16 + mst.bestx, mby * 16 + mst.besty);
  if (half < mst.bestsad) mst.bestsad = half;
  mvx_out[mb] = mst.bestx;
  mvy_out[mb] = mst.besty;
  sad_out[mb] = mst.bestsad;
}

void make_frames(void)
{
  srand(99);
  int i;
  int j;
  for (i = 0; i < 128; i++)
    for (j = 0; j < 96; j++) {
      ref_frame[i][j] = rand() % 256;
      // the current frame is the reference shifted by (2,1) plus noise
      int si = i - 2;
      int sj = j - 1;
      if (si < 0) si = 0;
      if (sj < 0) sj = 0;
      cur_frame[i][j] = (ref_frame[si][sj] + rand() % 7) % 256;
    }
}

int main(void)
{
  make_frames();
  int mb;
#pragma parallel
  for (mb = 0; mb < 48; mb++) {
    estimate_mb(mb);
  }
  int cs = 0;
  for (mb = 0; mb < 48; mb++)
    cs = cs + mvx_out[mb] * 131 + mvy_out[mb] * 17 + sad_out[mb];
  printf("mpeg2enc mv checksum %d\n", cs);
  return 0;
}
|}

let workload : Workload.t =
  {
    Workload.name = "mpeg2-encoder";
    suite = "MediaBench II";
    source;
    loop_functions = [ "main" ];
    nest_levels = [ 3 ];
    paper_parallelism = "DOALL";
    paper_privatized = 7;
    description =
      "motion estimation per macroblock; privatizes current/candidate/\
       half-pel blocks, SAD rows, distortion table, search trace and the \
       motion-state record";
  }
