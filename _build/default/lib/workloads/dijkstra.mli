(** dijkstra benchmark model; see the module implementation for the full
    description and the MiniC source. *)

val source : string
val workload : Workload.t
