lib/workloads/bzip2.mli: Workload
