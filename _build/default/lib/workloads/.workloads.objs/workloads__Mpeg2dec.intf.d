lib/workloads/mpeg2dec.mli: Workload
