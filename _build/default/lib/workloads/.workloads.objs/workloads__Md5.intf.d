lib/workloads/md5.mli: Workload
