lib/workloads/bzip2.ml: Workload
