lib/workloads/workload.ml: List String
