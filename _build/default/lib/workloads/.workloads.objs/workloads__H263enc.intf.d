lib/workloads/h263enc.mli: Workload
