lib/workloads/registry.ml: Bzip2 Dijkstra H263enc Hmmer Lbm List Md5 Mpeg2dec Mpeg2enc Printf String Workload
