lib/workloads/lbm.ml: Workload
