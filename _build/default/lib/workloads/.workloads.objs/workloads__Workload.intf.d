lib/workloads/workload.mli:
