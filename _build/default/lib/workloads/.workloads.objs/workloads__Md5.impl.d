lib/workloads/md5.ml: Workload
