lib/workloads/mpeg2enc.ml: Workload
