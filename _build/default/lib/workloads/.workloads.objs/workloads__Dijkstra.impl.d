lib/workloads/dijkstra.ml: Workload
