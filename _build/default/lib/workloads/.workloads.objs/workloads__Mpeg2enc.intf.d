lib/workloads/mpeg2enc.mli: Workload
