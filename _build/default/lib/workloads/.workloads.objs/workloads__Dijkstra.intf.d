lib/workloads/dijkstra.mli: Workload
