lib/workloads/mpeg2dec.ml: Workload
