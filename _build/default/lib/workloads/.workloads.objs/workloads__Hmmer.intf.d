lib/workloads/hmmer.mli: Workload
