lib/workloads/hmmer.ml: Workload
