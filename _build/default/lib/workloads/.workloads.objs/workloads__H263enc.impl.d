lib/workloads/h263enc.ml: Workload
