(** MiBench dijkstra model.

    The original finds a shortest path between a distinct pair of nodes
    in each iteration of the outermost loop, manipulating an internal
    priority queue (a linked list whose nodes are malloc'd and freed as
    the search proceeds) and annotating the graph nodes with distances
    and predecessors. Both structures are reinitialized at the start of
    each search, which makes them privatizable; the running checksum of
    path costs is read early (for the reporting cursor) and written at
    the end of each iteration, making the loop DOACROSS like the
    paper's version. *)

let source =
  {|
// dijkstra: shortest path between a pair of nodes per outer iteration
// (model of MiBench/dijkstra; queue is a malloc'd linked list)

struct qitem {
  int node;
  int dist;
  struct qitem *next;
};

struct nodeinfo {
  int dist;
  int prev;
  int done;
};

int adj[64][64];
struct nodeinfo rgn[64];
struct qitem *qhead;
int qcount;
long checksum;
int paths_done;
int path_log[4096];
int log_pos;

void enqueue(int node, int dist)
{
  struct qitem *it = (struct qitem *)malloc(sizeof(struct qitem));
  it->node = node;
  it->dist = dist;
  it->next = qhead;
  qhead = it;
  qcount = qcount + 1;
}

int dequeue_min(void)
{
  // pop the queue item with the smallest distance (linear scan,
  // faithful to the benchmark's simple list-based priority queue)
  struct qitem *best = qhead;
  struct qitem *cur = qhead->next;
  while (cur != 0) {
    if (cur->dist < best->dist) best = cur;
    cur = cur->next;
  }
  int node = best->node;
  // unlink best
  if (best == qhead) {
    qhead = qhead->next;
  } else {
    struct qitem *p = qhead;
    while (p->next != best) p = p->next;
    p->next = best->next;
  }
  free(best);
  qcount = qcount - 1;
  return node;
}

int dijkstra(int src, int dst)
{
  int i;
  for (i = 0; i < 64; i++) {
    rgn[i].dist = 1 << 29;
    rgn[i].prev = -1;
    rgn[i].done = 0;
  }
  qhead = 0;
  qcount = 0;
  rgn[src].dist = 0;
  enqueue(src, 0);
  while (qcount > 0) {
    int u = dequeue_min();
    if (rgn[u].done) continue;
    rgn[u].done = 1;
    if (u == dst) break;
    int v;
    for (v = 0; v < 64; v++) {
      if (adj[u][v] > 0 && !rgn[v].done) {
        int nd = rgn[u].dist + adj[u][v];
        if (nd < rgn[v].dist) {
          rgn[v].dist = nd;
          rgn[v].prev = u;
          enqueue(v, nd);
        }
      }
    }
  }
  // drain whatever the early exit left queued
  while (qcount > 0) {
    dequeue_min();
  }
  return rgn[dst].dist;
}

void build_graph(void)
{
  int i;
  int j;
  srand(7);
  for (i = 0; i < 64; i++) {
    for (j = 0; j < 64; j++) {
      int r = rand() % 10;
      if (i != j && r < 4) adj[i][j] = 1 + rand() % 9;
      else adj[i][j] = 0;
    }
    // guarantee connectivity along the ring
    adj[i][(i + 1) % 64] = 1 + i % 3;
  }
}

int main(void)
{
  build_graph();
  int pair;
#pragma parallel
  for (pair = 0; pair < 96; pair++) {
    int src = (pair * 7 + 3) % 64;
    int dst = (pair * 13 + 5) % 64;
    int d = dijkstra(src, dst);
    if (d >= 1 << 29) d = -1;
    // reconstruct and log the path in iteration order, as the
    // original prints each shortest path
    int node = dst;
    int steps = 0;
    while (node >= 0 && steps < 64 && d >= 0) {
      if (log_pos < 4095) {
        path_log[log_pos] = node;
        log_pos = log_pos + 1;
      }
      node = rgn[node].prev;
      steps = steps + 1;
    }
    if (log_pos < 4095) {
      path_log[log_pos] = -1 - d;
      log_pos = log_pos + 1;
    }
    checksum = checksum + d * (pair % 17 + 1);
    paths_done = paths_done + 1;
  }
  int lg = 0;
  int li;
  for (li = 0; li < log_pos; li++) lg = (lg * 31 + path_log[li]) % 1000003;
  printf("paths %d checksum %d log %d\n", paths_done, (int)checksum, lg);
  return 0;
}
|}

let workload : Workload.t =
  {
    Workload.name = "dijkstra";
    suite = "MiBench";
    source;
    loop_functions = [ "main" ];
    nest_levels = [ 1 ];
    paper_parallelism = "DOACROSS";
    paper_privatized = 2;
    description =
      "one shortest-path search per iteration; privatizes the graph \
       annotations and the list-based priority queue";
  }
