(** All benchmark programs of the evaluation, in the paper's Table 4
    order. *)

let all : Workload.t list =
  [
    Dijkstra.workload;
    Md5.workload;
    Mpeg2enc.workload;
    Mpeg2dec.workload;
    H263enc.workload;
    Bzip2.workload;
    Hmmer.workload;
    Lbm.workload;
  ]

let find (name : string) : Workload.t =
  match
    List.find_opt (fun w -> String.equal w.Workload.name name) all
  with
  | Some w -> w
  | None ->
    invalid_arg
      (Printf.sprintf "unknown workload '%s' (have: %s)" name
         (String.concat ", " (List.map (fun w -> w.Workload.name) all)))
