(** SPEC CPU2006 470.lbm model.

    [LBM_performStreamCollide] sweeps a lattice, reading a cell's
    neighbourhood from the source grid and writing the streamed,
    collided distribution into the destination grid; after each sweep
    the grids are exchanged by swapping base pointers, exactly like the
    original's double-buffering. The row loop is DOALL; each iteration
    privatizes the small per-cell equilibrium and density buffers. The
    grids together exceed the last-level cache, so simulated DRAM
    traffic saturates the shared bandwidth beyond four threads — the
    paper reports exactly that bottleneck for lbm ("suffers from the
    memory bandwidth constraint when the number of cores exceeds
    4"). *)

let source =
  {|
// lbm: stream-collide sweep over a lattice (model of SPEC/470.lbm)
// D2Q5-style: center + 4 neighbours, double precision, flat grids
// addressed as grid[q*192*192 + x*192 + y], double-buffered by
// pointer swap.

double grid_a[184320];
double grid_b[184320];
double *srcg;
double *dstg;
double feq[5];
double rho_buf[192];
double row_mass[192];
long sweeps_done;

double cell_density(int x, int y)
{
  double rho = 0.0;
  int q;
  for (q = 0; q < 5; q++) rho = rho + srcg[q * 36864 + x * 192 + y];
  return rho;
}

void collide_row(int x)
{
  int y;
  int base = x * 192;
  for (y = 1; y < 191; y++) {
    double rho = cell_density(x, y);
    rho_buf[y] = rho;
    double ux = srcg[36864 + base + y] - srcg[73728 + base + y];
    double uy = srcg[110592 + base + y] - srcg[147456 + base + y];
    double usq = ux * ux + uy * uy;
    feq[0] = rho * (1.0 - 1.5 * usq) * 0.333333;
    feq[1] = rho * (1.0 + 3.0 * ux + 4.5 * ux * ux - 1.5 * usq) * 0.166666;
    feq[2] = rho * (1.0 - 3.0 * ux + 4.5 * ux * ux - 1.5 * usq) * 0.166666;
    feq[3] = rho * (1.0 + 3.0 * uy + 4.5 * uy * uy - 1.5 * usq) * 0.166666;
    feq[4] = rho * (1.0 - 3.0 * uy + 4.5 * uy * uy - 1.5 * usq) * 0.166666;
    double omega = 1.8;
    // stream to neighbours in dst while relaxing toward feq
    dstg[base + y] = srcg[base + y] + omega * (feq[0] - srcg[base + y]);
    dstg[36864 + base + y + 1] =
      srcg[36864 + base + y] + omega * (feq[1] - srcg[36864 + base + y]);
    dstg[73728 + base + y - 1] =
      srcg[73728 + base + y] + omega * (feq[2] - srcg[73728 + base + y]);
    dstg[110592 + base + 192 + y] =
      srcg[110592 + base + y] + omega * (feq[3] - srcg[110592 + base + y]);
    dstg[147456 + base - 192 + y] =
      srcg[147456 + base + y] + omega * (feq[4] - srcg[147456 + base + y]);
  }
  double mass = 0.0;
  for (y = 1; y < 191; y++) mass = mass + rho_buf[y];
  row_mass[x] = mass;
}

void init_grids(void)
{
  int q;
  int x;
  int y;
  for (q = 0; q < 5; q++)
    for (x = 0; x < 192; x++)
      for (y = 0; y < 192; y++) {
        grid_a[q * 36864 + x * 192 + y] =
          0.2 + 0.01 * ((x * 31 + y * 17 + q * 7) % 13);
        grid_b[q * 36864 + x * 192 + y] = 0.0;
      }
  srcg = grid_a;
  dstg = grid_b;
}

void swap_grids(void)
{
  double *tmp = srcg;
  srcg = dstg;
  dstg = tmp;
}

int main(void)
{
  init_grids();
  int step;
  for (step = 0; step < 4; step++) {
    int x;
#pragma parallel
    for (x = 1; x < 191; x++) {
      collide_row(x);
      sweeps_done = sweeps_done + 1;
    }
    swap_grids();
  }
  double total = 0.0;
  int fx;
  int fy;
  for (fx = 1; fx < 191; fx++)
    for (fy = 1; fy < 191; fy++)
      total = total + cell_density(fx, fy);
  printf("lbm sweeps %d mass %.4f\n", (int)sweeps_done, total);
  return 0;
}
|}

let workload : Workload.t =
  {
    Workload.name = "470.lbm";
    suite = "SPEC CPU2006";
    source;
    loop_functions = [ "main" ];
    nest_levels = [ 2 ];
    paper_parallelism = "DOALL";
    paper_privatized = 2;
    description =
      "stream-collide lattice sweep with double-buffered grids; \
       privatizes the per-cell equilibrium and density buffers; \
       bandwidth-bound beyond 4 cores";
  }
