(** A benchmark program modelling one row of the paper's Table 4. *)

type t = {
  name : string;
  suite : string;
  source : string;  (** MiniC source; parallel loops carry #pragma parallel *)
  loop_functions : string list;
      (** function(s) containing the parallelized loop(s), Table 4 *)
  nest_levels : int list;  (** loop nesting level per parallel loop *)
  paper_parallelism : string;  (** DOALL / DOACROSS, per the paper *)
  paper_privatized : int;  (** Table 5's count, for comparison *)
  description : string;
}

(** Non-blank source lines, the paper's #LOC convention. *)
val loc_count : t -> int
