(** MiBench md5 model.

    The original hashes many independent inputs; each iteration resets
    a context structure and a 64-byte working block, runs the four
    MD5-style mixing rounds over the message, and stores the digest
    into a per-input result slot. The context and block are the
    privatized structure (Table 5 lists one for md5); results are
    disjoint per iteration, so the loop is DOALL. MiniC integers are
    signed with 32-bit wraparound, which the round functions rely on
    exactly like the real code. *)

let source =
  {|
// md5: hash one message per iteration (model of MiBench/md5)

struct md5ctx {
  int a;
  int b;
  int c;
  int d;
  int block[16];
  int length;
};

struct md5ctx ctx;
int digests[128][4];
char messages[128][64];
int sines[64];

int rotl(int x, int n)
{
  // rotate left on 32 bits; >> sign-extends, so mask the high bits
  int hi = x >> (32 - n);
  int mask = (1 << n) - 1;
  return (x << n) | (hi & mask);
}

void md5_init(int seed)
{
  ctx.a = 0x67452301;
  ctx.b = 0xefcdab89 + seed;
  ctx.c = 0x98badcfe;
  ctx.d = 0x10325476;
  ctx.length = 0;
  int i;
  for (i = 0; i < 16; i++) ctx.block[i] = 0;
}

void md5_fill_block(int msg)
{
  int i;
  for (i = 0; i < 16; i++) {
    int w = 0;
    int j;
    for (j = 0; j < 4; j++) {
      w = (w << 8) | messages[msg][i * 4 + j];
    }
    ctx.block[i] = w;
  }
  ctx.length = ctx.length + 64;
}

void md5_rounds(void)
{
  int a = ctx.a;
  int b = ctx.b;
  int c = ctx.c;
  int d = ctx.d;
  int i;
  for (i = 0; i < 64; i++) {
    int f;
    int g;
    if (i < 16) { f = (b & c) | (~b & d); g = i; }
    else if (i < 32) { f = (d & b) | (~d & c); g = (5 * i + 1) % 16; }
    else if (i < 48) { f = b ^ c ^ d; g = (3 * i + 5) % 16; }
    else { f = c ^ (b | ~d); g = (7 * i) % 16; }
    int tmp = d;
    d = c;
    c = b;
    int rot = 7 + (i % 4) * 5;
    b = b + rotl(a + f + sines[i] + ctx.block[g], rot);
    a = tmp;
  }
  ctx.a = ctx.a + a;
  ctx.b = ctx.b + b;
  ctx.c = ctx.c + c;
  ctx.d = ctx.d + d;
}

void make_inputs(void)
{
  srand(12345);
  int m;
  for (m = 0; m < 128; m++) {
    int i;
    for (i = 0; i < 64; i++)
      messages[m][i] = (rand() + m * 31 + i) % 251;
  }
  int k;
  for (k = 0; k < 64; k++)
    sines[k] = rand() ^ (k * 0x9e3779b9);
}

int main(void)
{
  make_inputs();
  int msg;
#pragma parallel
  for (msg = 0; msg < 128; msg++) {
    md5_init(msg);
    int chunk;
    for (chunk = 0; chunk < 6; chunk++) {
      md5_fill_block(msg);
      md5_rounds();
    }
    digests[msg][0] = ctx.a;
    digests[msg][1] = ctx.b;
    digests[msg][2] = ctx.c;
    digests[msg][3] = ctx.d;
  }
  int x = 0;
  int m;
  for (m = 0; m < 128; m++) {
    x = x ^ digests[m][0] ^ digests[m][1] ^ digests[m][2] ^ digests[m][3];
  }
  printf("md5 checksum %d\n", x);
  return 0;
}
|}

let workload : Workload.t =
  {
    Workload.name = "md5";
    suite = "MiBench";
    source;
    loop_functions = [ "main" ];
    nest_levels = [ 1 ];
    paper_parallelism = "DOALL";
    paper_privatized = 1;
    description =
      "hashes independent messages; privatizes the global digest context \
       reused across iterations";
  }
