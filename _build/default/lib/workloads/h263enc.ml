(** MediaBench II h263-encoder model: the two parallel loops of the
    paper's Table 4 — [NextTwoPB] (choosing the coding mode for the
    next P/B picture pair per macroblock) and [MotionEstimatePicture]
    (block motion estimation). Both loops are DOALL and together the
    expansion privatizes six scratch structures. Both are marked
    [#pragma parallel]; the harness parallelizes both, as the paper's
    whole-program numbers do. *)

let source =
  {|
// h263-encoder: NextTwoPB + MotionEstimatePicture
// (model of MediaBench II h263enc)

int frame_a[128][80];
int frame_b[128][80];
int frame_c[128][80];
int mode_out[40];
int mvx_out[40];
int mvy_out[40];
long bits_estimate;

// privatized structures (six in total)
int diff_pb[16][16];
int diff_bb[16][16];
struct sadacc { int fwd; int bwd; int bi; };
struct sadacc sacc;
int mb_cur[16][16];
int mb_ref[16][16];
int sad_line[16];

void load_mb(int which, int mbx, int mby)
{
  int i;
  int j;
  for (i = 0; i < 16; i++)
    for (j = 0; j < 16; j++) {
      if (which == 0) mb_cur[i][j] = frame_b[mbx * 16 + i][mby * 16 + j];
      else mb_ref[i][j] = frame_a[mbx * 16 + i][mby * 16 + j];
    }
}

// ---- loop 1: NextTwoPB -------------------------------------------------

void next_two_pb(int mb)
{
  int mbx = mb / 5;
  int mby = mb % 5;
  int i;
  int j;
  sacc.fwd = 0;
  sacc.bwd = 0;
  sacc.bi = 0;
  for (i = 0; i < 16; i++)
    for (j = 0; j < 16; j++) {
      int a = frame_a[mbx * 16 + i][mby * 16 + j];
      int b = frame_b[mbx * 16 + i][mby * 16 + j];
      int c = frame_c[mbx * 16 + i][mby * 16 + j];
      diff_pb[i][j] = b - a;
      diff_bb[i][j] = c - b;
      int dpb = diff_pb[i][j];
      if (dpb < 0) dpb = -dpb;
      int dbb = diff_bb[i][j];
      if (dbb < 0) dbb = -dbb;
      int dbi = b - (a + c) / 2;
      if (dbi < 0) dbi = -dbi;
      sacc.fwd = sacc.fwd + dpb;
      sacc.bwd = sacc.bwd + dbb;
      sacc.bi = sacc.bi + dbi;
    }
  int mode = 0;
  if (sacc.bwd < sacc.fwd && sacc.bwd <= sacc.bi) mode = 1;
  if (sacc.bi < sacc.fwd && sacc.bi < sacc.bwd) mode = 2;
  mode_out[mb] = mode;
}

// ---- loop 2: MotionEstimatePicture --------------------------------------

int mb_sad(int mbx, int mby, int dx, int dy)
{
  int i;
  int j;
  int total = 0;
  for (i = 0; i < 16; i++) {
    int row = 0;
    for (j = 0; j < 16; j++) {
      int r = mbx * 16 + i + dx;
      int c = mby * 16 + j + dy;
      if (r < 0) r = 0;
      if (r > 127) r = 127;
      if (c < 0) c = 0;
      if (c > 79) c = 79;
      int d = mb_cur[i][j] - frame_a[r][c];
      if (d < 0) d = -d;
      row = row + d;
    }
    sad_line[i] = row;
    total = total + row;
  }
  return total;
}

void motion_estimate(int mb)
{
  int mbx = mb / 5;
  int mby = mb % 5;
  load_mb(0, mbx, mby);
  int best = 1 << 29;
  int bx = 0;
  int by = 0;
  int dx;
  int dy;
  for (dx = -3; dx <= 3; dx++)
    for (dy = -3; dy <= 3; dy++) {
      int s = mb_sad(mbx, mby, dx, dy);
      if (s < best) { best = s; bx = dx; by = dy; }
    }
  mvx_out[mb] = bx;
  mvy_out[mb] = by;
}

void make_frames(void)
{
  srand(31337);
  int i;
  int j;
  for (i = 0; i < 128; i++)
    for (j = 0; j < 80; j++) {
      frame_a[i][j] = rand() % 256;
      frame_b[i][j] = (frame_a[i][j] + rand() % 9 - 4 + 256) % 256;
      frame_c[i][j] = (frame_b[i][j] + rand() % 9 - 4 + 256) % 256;
    }
}

int main(void)
{
  make_frames();
  int mb;
#pragma parallel
  for (mb = 0; mb < 40; mb++) {
    next_two_pb(mb);
  }
#pragma parallel
  for (mb = 0; mb < 40; mb++) {
    motion_estimate(mb);
  }
  int cs = 0;
  for (mb = 0; mb < 40; mb++)
    cs = cs + mode_out[mb] * 1009 + mvx_out[mb] * 37 + mvy_out[mb];
  bits_estimate = cs;
  printf("h263enc checksum %d\n", (int)bits_estimate);
  return 0;
}
|}

let workload : Workload.t =
  {
    Workload.name = "h263-encoder";
    suite = "MediaBench II";
    source;
    loop_functions = [ "main"; "main" ];
    nest_levels = [ 2; 2 ];
    paper_parallelism = "DOALL";
    paper_privatized = 6;
    description =
      "two DOALL loops (NextTwoPB, MotionEstimatePicture); privatizes the \
       P/B difference blocks, the SAD accumulator record, the current and \
       reference macroblock buffers and the SAD line buffer";
  }
