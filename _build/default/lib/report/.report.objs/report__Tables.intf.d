lib/report/tables.mli:
