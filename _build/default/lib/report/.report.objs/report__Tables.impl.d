lib/report/tables.ml: List Printf String
