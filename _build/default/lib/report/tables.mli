(** ASCII table / series rendering and the summary statistics the
    paper reports (harmonic means over benchmarks). *)

val harmonic_mean : float list -> float
val geometric_mean : float list -> float

(** Render rows as a fixed-width table under a header: first column
    left-aligned, the rest right-aligned. *)
val render : header:string list -> string list list -> string

(** ["1.93"]-style fixed-point rendering. *)
val fx : float -> string

(** [pct 0.427] is ["42.7%"]. *)
val pct : float -> string
