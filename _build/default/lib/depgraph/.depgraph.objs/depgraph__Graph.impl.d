lib/depgraph/graph.pp.ml: Ast Buffer Format Hashtbl List Minic Option Ppx_deriving_runtime Printf String Visit
