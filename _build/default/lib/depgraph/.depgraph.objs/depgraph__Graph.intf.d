lib/depgraph/graph.pp.mli: Ast Format Hashtbl Minic Visit
