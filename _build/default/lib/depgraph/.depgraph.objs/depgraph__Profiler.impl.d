lib/depgraph/profiler.pp.ml: Ast Graph Hashtbl Interp List Minic Pretty Printf Visit
