lib/depgraph/profiler.pp.mli: Ast Graph Interp Minic
