(** Dynamic data-dependence profiling.

    Plays the role of the off-line dependence profiler the paper's
    workflow consumes (its references [38,39] plus manual
    verification): executes the program once under the interpreter's
    access observer and builds the exact loop-level dependence graph
    of Definition 1 at byte granularity, so recasting idioms (bzip2's
    short/int [zptr]) profile correctly. Freed heap blocks carry no
    dependences into their next allocation, and argument-binding
    stores are visible, so stack/heap address reuse cannot fabricate
    dependences. *)

open Minic

type profile = {
  graph : Graph.t;
  stats : Interp.Machine.stats;  (** whole-program instruction counts *)
  exit_code : int;
  output : string;
  peak_bytes : int;
}

(** Functions transitively reachable from calls inside a statement. *)
val reachable_funs : Ast.program -> Ast.stmt -> Ast.fundef list

(** Static access sites of a loop: body, condition (+ step for
    for-loops) plus all transitively-called functions — Definition 1's
    "all memory accesses potentially executed in the loop". *)
val loop_sites : Ast.program -> Ast.stmt -> Graph.site list

(** Profile loop [lid] by running the whole program once.
    @raise Invalid_argument if no loop has id [lid]. *)
val profile : Ast.program -> Ast.lid -> profile
