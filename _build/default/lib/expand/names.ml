(** Name mangling for the expansion transformation. All generated
    names use the [__] prefix, which the MiniC frontend accepts but
    the workloads never use themselves. *)

let tid = "__tid"
let nthreads = "__nthreads"
let init_fun = "__exp_init"

(** Pointer holder for an expanded variable [x] (Table 1's global
    rule: [int a] becomes [int *pa = malloc(sizeof(int) * N)]). *)
let exp_var x = "__exp_" ^ x

(** Shadow span of a promoted pointer variable [p] (§3.3.1: the
    [span] field of the fat pointer). *)
let span_var p = "__span_" ^ p

(** Shadow span field of a promoted struct field [f]. *)
let span_field f = "__span_" ^ f

(** Global carrying the span of function [f]'s returned pointer. *)
let retspan f = "__retspan_" ^ f
