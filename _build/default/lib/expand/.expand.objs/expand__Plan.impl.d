lib/expand/plan.ml: Alias Ast Hashtbl List Minic Option Privatize String Typecheck Types Visit
