lib/expand/names.ml:
