lib/expand/transform.ml: Alias Ast Depgraph Hashtbl List Loc Minic Names Optim Option Plan Pretty Printf Privatize String Typecheck Types Visit
