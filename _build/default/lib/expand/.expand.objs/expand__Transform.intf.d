lib/expand/transform.mli: Ast Minic Optim Plan Privatize
