lib/expand/names.mli:
