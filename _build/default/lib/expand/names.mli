(** Name mangling for the expansion transformation. All generated
    names use the [__] prefix, which the MiniC frontend accepts but
    the workloads never use themselves. *)

(** Runtime globals the transformed program reads: the executing
    thread's id (0 outside parallel loops) and the thread count (set
    before [main]; defaults to 1). *)
val tid : string

val nthreads : string

(** The synthetic initializer called first by [main]: allocates the
    heap conversions of expanded globals and applies their
    initializers to copy 0. *)
val init_fun : string

(** Pointer holder for an expanded variable [x] (Table 1's global
    rule: [int a] becomes [int *pa = malloc(sizeof(int) * N)]). *)
val exp_var : string -> string

(** Shadow span of a promoted pointer variable [p] (§3.3.1: the
    [span] field of the fat pointer). *)
val span_var : string -> string

(** Shadow span field of a promoted struct field [f]. *)
val span_field : string -> string

(** Global carrying the span of function [f]'s returned pointer. *)
val retspan : string -> string
