(* Tests for the interleaved expansion mode (Figure 2b) and the
   bonded-vs-interleaved ablation the paper argues in §3.1. *)

open Minic

let analyze_first src =
  let p = Typecheck.parse_and_check ~file:"test" src in
  let lid = List.hd p.Ast.parallel_loops in
  (p, lid, Privatize.Analyze.analyze p lid)

(* A struct of primitive members, reinitialized every iteration: the
   shape both layouts can handle. *)
let struct_src = {|
struct acc { int lo; int hi; int cnt; double mean; };
struct acc st;
int out[40];
int main(void)
{
  int it;
#pragma parallel
  for (it = 0; it < 40; it++) {
    st.lo = 1 << 29;
    st.hi = -1 - (1 << 29);
    st.cnt = 0;
    st.mean = 0.0;
    int j;
    for (j = 0; j < 24; j++) {
      int v = (it * 37 + j * j) % 100;
      if (v < st.lo) st.lo = v;
      if (v > st.hi) st.hi = v;
      st.cnt = st.cnt + 1;
      st.mean = st.mean + (v - st.mean) / st.cnt;
    }
    out[it] = st.hi - st.lo + (int)st.mean;
  }
  int s = 0;
  int i;
  for (i = 0; i < 40; i++) s += out[i];
  printf("%d\n", s);
  return 0;
}|}

(* bzip2's recast shape: interleaving cannot lay this out. *)
let recast_src = {|
int acc;
int *zptr;
int main(void)
{
  zptr = (int *)malloc(64);
  int it;
#pragma parallel
  for (it = 0; it < 10; it++) {
    int k;
    for (k = 0; k < 16; k++) zptr[k] = it + k;
    short *sp = (short *)zptr;
    int s = 0;
    for (k = 0; k < 32; k++) s += sp[k];
    acc += s;
  }
  printf("%d\n", acc);
  free(zptr);
  return 0;
}|}

let run_with_threads prog n =
  let m = Interp.Machine.load prog in
  Interp.Machine.set_global_int m.Interp.Machine.st "__nthreads" n;
  let code = Interp.Machine.run m in
  (code, Interp.Machine.output m.Interp.Machine.st)

let interleaved_preserves_semantics () =
  let p, _, r = analyze_first struct_src in
  let _, out0 = Interp.Machine.run_program p in
  let res = Expand.Transform.expand ~mode:Expand.Plan.Interleaved p r in
  List.iter
    (fun n ->
      let _, out = run_with_threads res.Expand.Transform.transformed n in
      Alcotest.(check string) (Printf.sprintf "output N=%d" n) out0 out)
    [ 1; 3; 8 ]

let interleaved_parallel_equiv () =
  let p, _, r = analyze_first struct_src in
  let _, out0 = Interp.Machine.run_program p in
  let res = Expand.Transform.expand ~mode:Expand.Plan.Interleaved p r in
  let spec = Parexec.Sim.spec_of_analysis r in
  List.iter
    (fun t ->
      let pr =
        Parexec.Sim.run_parallel res.Expand.Transform.transformed [ spec ]
          ~threads:t
      in
      Alcotest.(check string) (Printf.sprintf "par output T=%d" t) out0
        pr.Parexec.Sim.pr_output)
    [ 2; 8 ]

let interleaved_rejects_recast () =
  let p, _, r = analyze_first recast_src in
  match Expand.Transform.expand ~mode:Expand.Plan.Interleaved p r with
  | exception Expand.Transform.Unsupported _ -> ()
  | _ -> Alcotest.fail "interleaved mode must reject the recast program"

let bonded_handles_recast () =
  let p, _, r = analyze_first recast_src in
  let _, out0 = Interp.Machine.run_program p in
  let res = Expand.Transform.expand p r in
  let _, out = run_with_threads res.Expand.Transform.transformed 4 in
  Alcotest.(check string) "bonded output" out0 out

(* The ablation of §3.1: bonded keeps a thread's copy in one cache
   line, interleaving scatters its members over several. Under the
   cache model, the bonded layout's sequential run must not be slower. *)
let bonded_locality_ablation () =
  let p, lid, r = analyze_first struct_src in
  let cycles mode =
    let res = Expand.Transform.expand ~mode p r in
    let seq =
      Parexec.Sim.run_sequential res.Expand.Transform.transformed [ lid ]
    in
    seq.Parexec.Sim.sq_total
  in
  let bonded = cycles Expand.Plan.Bonded in
  let inter = cycles Expand.Plan.Interleaved in
  Alcotest.(check bool)
    (Printf.sprintf "bonded (%d) <= interleaved (%d)" bonded inter)
    true (bonded <= inter)

(* The future-work adaptive chooser: falls back to bonded on shapes
   interleaving rejects, otherwise keeps the cheaper layout. *)
let adaptive_falls_back_on_recast () =
  let p, _, r = analyze_first recast_src in
  let c = Harness.Adaptive.choose p [ r ] in
  Alcotest.(check bool) "bonded chosen" true (c.Harness.Adaptive.mode = Expand.Plan.Bonded);
  Alcotest.(check bool) "interleaved was impossible" true
    (c.Harness.Adaptive.interleaved_cycles = None)

let adaptive_probes_both () =
  let p, _, r = analyze_first struct_src in
  let c = Harness.Adaptive.choose p [ r ] in
  (match c.Harness.Adaptive.interleaved_cycles with
  | None -> Alcotest.fail "interleaving should be possible here"
  | Some ic ->
    (* the chooser must keep the cheaper one *)
    let kept_cheaper =
      match c.Harness.Adaptive.mode with
      | Expand.Plan.Bonded -> c.Harness.Adaptive.bonded_cycles <= ic
      | Expand.Plan.Interleaved -> ic <= c.Harness.Adaptive.bonded_cycles
    in
    Alcotest.(check bool) "kept the cheaper layout" true kept_cheaper);
  (* and the chosen program still behaves identically *)
  let _, out0 = Interp.Machine.run_program p in
  let _, out =
    run_with_threads c.Harness.Adaptive.result.Expand.Transform.transformed 4
  in
  Alcotest.(check string) "output" out0 out

let () =
  Alcotest.run "interleaved"
    [
      ( "interleaved",
        [
          Alcotest.test_case "preserves semantics" `Quick
            interleaved_preserves_semantics;
          Alcotest.test_case "parallel equivalence" `Quick
            interleaved_parallel_equiv;
          Alcotest.test_case "rejects recast" `Quick interleaved_rejects_recast;
          Alcotest.test_case "bonded handles recast" `Quick
            bonded_handles_recast;
          Alcotest.test_case "locality ablation" `Quick
            bonded_locality_ablation;
          Alcotest.test_case "adaptive falls back on recast" `Quick
            adaptive_falls_back_on_recast;
          Alcotest.test_case "adaptive probes both" `Quick
            adaptive_probes_both;
        ] );
    ]
