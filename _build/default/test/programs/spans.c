// The ambiguous-allocation pattern of the paper's Figure 3: the span
// shadow is the only way redirection can find the copy stride.
int *buffer;
int results[20];

void prepare(int big)
{
  if (big) buffer = (int *)malloc(256);
  else buffer = (int *)malloc(128);
}

int main(void)
{
  prepare(1);
  int it;
#pragma parallel
  for (it = 0; it < 20; it++) {
    int k;
    int n = 8 + it % 24;
    for (k = 0; k < n; k++) buffer[k] = it * k;
    int best = 0;
    for (k = 0; k < n; k++)
      if (buffer[k] > best) best = buffer[k];
    results[it] = best;
  }
  int s = 0;
  int i;
  for (i = 0; i < 20; i++) s += results[i];
  printf("%d\n", s);
  free(buffer);
  return 0;
}
