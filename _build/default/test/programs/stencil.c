// 1-D stencil relaxation: the temp row is reused by every sweep
// iteration and privatizes cleanly.
double field[512];
double temp[512];
double total;

int main(void)
{
  int i;
  for (i = 0; i < 512; i++) field[i] = 0.001 * (i % 97);
  int sweep;
#pragma parallel
  for (sweep = 0; sweep < 40; sweep++) {
    int j;
    for (j = 1; j < 511; j++)
      temp[j] = 0.25 * field[j - 1] + 0.5 * field[j] + 0.25 * field[j + 1];
    double m = 0.0;
    for (j = 1; j < 511; j++)
      if (temp[j] > m) m = temp[j];
    total = total + m;
  }
  printf("%.6f\n", total);
  return 0;
}
