// Histogram over text chunks: the per-chunk counting table is the
// contended structure; the global histogram merge is ordered.
char text[8192];
int local_counts[64];
int histogram[64];

void count_chunk(int base, int len)
{
  int i;
  for (i = 0; i < 64; i++) local_counts[i] = 0;
  for (i = 0; i < len; i++) {
    int c = text[base + i] & 63;
    local_counts[c] = local_counts[c] + 1;
  }
}

int main(void)
{
  int i;
  srand(77);
  for (i = 0; i < 8192; i++) text[i] = rand() % 120;
  int chunk;
#pragma parallel
  for (chunk = 0; chunk < 32; chunk++) {
    count_chunk(chunk * 256, 256);
    int k;
    for (k = 0; k < 64; k++)
      histogram[k] = histogram[k] + local_counts[k];
  }
  int cs = 0;
  for (i = 0; i < 64; i++) cs = cs * 31 % 1000003 + histogram[i];
  printf("hist %d\n", cs);
  return 0;
}
