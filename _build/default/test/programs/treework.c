// Per-iteration binary search tree built through a global root:
// dynamic recursive structure, rebuilt (hence privatizable) each task.
struct tnode {
  int key;
  struct tnode *left;
  struct tnode *right;
};
struct tnode *root;
long answer;

void insert(int key)
{
  struct tnode *n = (struct tnode *)malloc(sizeof(struct tnode));
  n->key = key;
  n->left = 0;
  n->right = 0;
  if (root == 0) { root = n; return; }
  struct tnode *cur = root;
  while (1) {
    if (key < cur->key) {
      if (cur->left == 0) { cur->left = n; return; }
      cur = cur->left;
    } else {
      if (cur->right == 0) { cur->right = n; return; }
      cur = cur->right;
    }
  }
}

int sum_free(struct tnode *t)
{
  if (t == 0) return 0;
  int s = t->key + sum_free(t->left) + sum_free(t->right);
  free(t);
  return s;
}

int main(void)
{
  int task;
#pragma parallel
  for (task = 0; task < 48; task++) {
    root = 0;
    int j;
    for (j = 0; j < 24; j++)
      insert((task * 31 + j * j * 7) % 100);
    answer = answer + sum_free(root) % 1009;
  }
  printf("answer %d\n", (int)answer);
  return 0;
}
