(* Integration tests over the bundled benchmark programs: every
   workload parses, classifies to the paper's parallelism kind, and
   expands; the fast ones are executed end-to-end (original vs expanded
   vs simulated-parallel outputs must be identical). *)

open Minic

let load (w : Workloads.Workload.t) =
  let p =
    Typecheck.parse_and_check ~file:w.Workloads.Workload.name
      w.Workloads.Workload.source
  in
  let lids = p.Ast.parallel_loops in
  let analyses = List.map (Privatize.Analyze.analyze p) lids in
  (p, lids, analyses)

let static_checks (w : Workloads.Workload.t) () =
  let p, lids, analyses = load w in
  Alcotest.(check int)
    "number of parallel loops"
    (List.length w.Workloads.Workload.loop_functions)
    (List.length lids);
  (* parallelism kind matches the paper's Table 4 *)
  let kinds =
    List.map
      (fun (a : Privatize.Analyze.result) ->
        match
          Privatize.Classify.parallelism_kind
            a.Privatize.Analyze.classification
        with
        | `Doall -> "DOALL"
        | `Doacross -> "DOACROSS")
      analyses
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string))
    "parallelism kind"
    [ w.Workloads.Workload.paper_parallelism ]
    kinds;
  (* expansion runs and privatizes a structure count near the paper's *)
  let res = Expand.Transform.expand_loops p analyses in
  let ours = res.Expand.Transform.privatized in
  let paper = w.Workloads.Workload.paper_privatized in
  Alcotest.(check bool)
    (Printf.sprintf "privatized count %d within 2 of paper's %d" ours paper)
    true
    (abs (ours - paper) <= 2);
  (* loops dominate execution like Table 4's %time column *)
  let prof_loop =
    List.fold_left
      (fun acc (a : Privatize.Analyze.result) ->
        acc
        + a.Privatize.Analyze.profile.Depgraph.Profiler.graph
            .Depgraph.Graph.loop_cycles)
      0 analyses
  in
  let total =
    (List.hd analyses).Privatize.Analyze.profile.Depgraph.Profiler.graph
      .Depgraph.Graph.total_cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "loops are >2/3 of runtime (%d/%d)" prof_loop total)
    true
    (float_of_int prof_loop > 0.66 *. float_of_int total)

let end_to_end (w : Workloads.Workload.t) () =
  let p, _, analyses = load w in
  let _, out0 = Interp.Machine.run_program p in
  let res = Expand.Transform.expand_loops p analyses in
  let specs = List.map Parexec.Sim.spec_of_analysis analyses in
  (* sequential expanded *)
  let m = Interp.Machine.load res.Expand.Transform.transformed in
  Interp.Machine.set_global_int m.Interp.Machine.st "__nthreads" 8;
  ignore (Interp.Machine.run m);
  Alcotest.(check string) "expanded sequential output" out0
    (Interp.Machine.output m.Interp.Machine.st);
  (* simulated parallel *)
  let pr =
    Parexec.Sim.run_parallel res.Expand.Transform.transformed specs ~threads:8
  in
  Alcotest.(check string) "parallel output" out0 pr.Parexec.Sim.pr_output

let () =
  let static_cases =
    List.map
      (fun w ->
        Alcotest.test_case w.Workloads.Workload.name `Slow (static_checks w))
      Workloads.Registry.all
  in
  let e2e_cases =
    (* keep the suite fast: execute the two cheapest benchmarks fully;
       the experiments binary exercises the rest *)
    List.map
      (fun name ->
        Alcotest.test_case name `Slow
          (end_to_end (Workloads.Registry.find name)))
      [ "md5"; "456.hmmer" ]
  in
  Alcotest.run "workloads"
    [ ("static", static_cases); ("end-to-end", e2e_cases) ]
