(* Tests for the parallel-execution simulator: the cache model, the
   DOALL/DOACROSS schedulers, the per-channel post/wait pipeline, the
   bandwidth bound, and the GOMP overhead accounting. *)

open Minic

let analyze src =
  let p = Typecheck.parse_and_check ~file:"test" src in
  let lid = List.hd p.Ast.parallel_loops in
  let r = Privatize.Analyze.analyze p lid in
  (p, lid, r)

let expand_and_spec src =
  let p, lid, r = analyze src in
  let res = Expand.Transform.expand p r in
  (p, lid, res.Expand.Transform.transformed, Parexec.Sim.spec_of_analysis r)

(* --- cache model ---------------------------------------------------- *)

let cache_tests =
  [
    Alcotest.test_case "hit after miss" `Quick (fun () ->
        let c = Parexec.Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
        Alcotest.(check bool) "first is miss" false
          (Parexec.Cache.access c ~addr:0 ~size:4);
        Alcotest.(check bool) "second is hit" true
          (Parexec.Cache.access c ~addr:0 ~size:4);
        Alcotest.(check bool) "same line hits" true
          (Parexec.Cache.access c ~addr:60 ~size:4));
    Alcotest.test_case "straddling access touches two lines" `Quick (fun () ->
        let c = Parexec.Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
        ignore (Parexec.Cache.access c ~addr:60 ~size:8);
        Alcotest.(check bool) "first line present" true
          (Parexec.Cache.access c ~addr:0 ~size:4);
        Alcotest.(check bool) "second line present" true
          (Parexec.Cache.access c ~addr:64 ~size:4));
    Alcotest.test_case "LRU eviction" `Quick (fun () ->
        (* 2-way set: third distinct line mapping to the same set evicts
           the least recently used *)
        let c = Parexec.Cache.create ~size_bytes:256 ~assoc:2 ~line_bytes:64 in
        (* set count = 256/64/2 = 2; lines 0, 2, 4 all map to set 0 *)
        ignore (Parexec.Cache.access c ~addr:0 ~size:4);
        ignore (Parexec.Cache.access c ~addr:128 ~size:4);
        ignore (Parexec.Cache.access c ~addr:0 ~size:4);
        (* now 0 is MRU; inserting 256 evicts 128 *)
        ignore (Parexec.Cache.access c ~addr:256 ~size:4);
        Alcotest.(check bool) "0 still cached" true
          (Parexec.Cache.access c ~addr:0 ~size:4);
        Alcotest.(check bool) "128 evicted" false
          (Parexec.Cache.access c ~addr:128 ~size:4));
    Alcotest.test_case "hit rate counters" `Quick (fun () ->
        let c = Parexec.Cache.create ~size_bytes:1024 ~assoc:4 ~line_bytes:64 in
        for _ = 1 to 3 do
          ignore (Parexec.Cache.access c ~addr:0 ~size:4)
        done;
        Alcotest.(check bool) "rate in (0,1)" true
          (Parexec.Cache.hit_rate c > 0.5 && Parexec.Cache.hit_rate c < 1.0);
        Parexec.Cache.reset c;
        Alcotest.(check (float 0.001)) "reset rate" 1.0 (Parexec.Cache.hit_rate c));
  ]

(* --- scheduling ----------------------------------------------------- *)

let doall_src = {|
int out[64];
int work(int i){ int t = 0; int j; for (j = 0; j < 200; j++) t += i * j % 13; return t; }
int main(void)
{
  int i;
#pragma parallel
  for (i = 0; i < 64; i++) out[i] = work(i);
  int s = 0;
  for (i = 0; i < 64; i++) s += out[i];
  printf("%d\n", s);
  return 0;
}|}

(* early ordered read + late ordered write on the SAME channel
   serializes whole iterations *)
let serial_src = {|
int token;
int out[32];
int main(void)
{
  int i;
#pragma parallel
  for (i = 0; i < 32; i++) {
    int t = token;
    int j;
    int acc = 0;
    for (j = 0; j < 300; j++) acc += (t + i * j) % 7;
    out[i] = acc;
    token = token + acc % 3;
  }
  printf("%d %d\n", token, out[31]);
  return 0;
}|}

(* two independent channels: early input cursor, late output cursor —
   these pipeline *)
let pipeline_src = {|
int in_cur;
int out_cur;
int data[2048];
int sink[2048];
int main(void)
{
  int i;
  for (i = 0; i < 2048; i++) data[i] = i * 7 % 97;
#pragma parallel
  for (i = 0; i < 64; i++) {
    int base = in_cur;
    in_cur = in_cur + 16;
    int acc = 0;
    int j;
    for (j = 0; j < 400; j++) acc += data[(base + j) % 2048] * j % 11;
    int ob = out_cur;
    out_cur = out_cur + 4;
    sink[ob % 2048] = acc;
  }
  printf("%d %d\n", in_cur, out_cur);
  return 0;
}|}

let speedup src threads =
  let p, lid, transformed, spec = expand_and_spec src in
  let seq = Parexec.Sim.run_sequential p [ lid ] in
  let pr = Parexec.Sim.run_parallel transformed [ spec ] ~threads in
  Alcotest.(check string) "output" seq.Parexec.Sim.sq_output
    pr.Parexec.Sim.pr_output;
  float_of_int (List.assoc lid seq.Parexec.Sim.sq_loop)
  /. float_of_int (List.assoc lid pr.Parexec.Sim.pr_loop)

let scheduling_tests =
  [
    Alcotest.test_case "doall scales" `Quick (fun () ->
        let s4 = speedup doall_src 4 in
        Alcotest.(check bool) (Printf.sprintf "4 threads: %.2f" s4) true
          (s4 > 3.0));
    Alcotest.test_case "same-channel early read serializes" `Quick (fun () ->
        let s8 = speedup serial_src 8 in
        Alcotest.(check bool) (Printf.sprintf "8 threads: %.2f" s8) true
          (s8 < 1.6));
    Alcotest.test_case "independent channels pipeline" `Quick (fun () ->
        let s8 = speedup pipeline_src 8 in
        Alcotest.(check bool) (Printf.sprintf "8 threads: %.2f" s8) true
          (s8 > 3.0));
    Alcotest.test_case "doall static chunks balance" `Quick (fun () ->
        let _, lid, transformed, spec = expand_and_spec doall_src in
        ignore lid;
        let pr = Parexec.Sim.run_parallel transformed [ spec ] ~threads:4 in
        let busy = pr.Parexec.Sim.pr_busy in
        let mx = Array.fold_left max 0 busy
        and mn = Array.fold_left min max_int busy in
        Alcotest.(check bool)
          (Printf.sprintf "balanced busy %d..%d" mn mx)
          true
          (float_of_int mn > 0.5 *. float_of_int mx));
    Alcotest.test_case "gomp overhead accounted" `Quick (fun () ->
        let _, _, transformed, spec = expand_and_spec doall_src in
        let pr = Parexec.Sim.run_parallel transformed [ spec ] ~threads:4 in
        Alcotest.(check bool) "fork+barrier > 0" true
          (pr.Parexec.Sim.pr_overhead
          >= Interp.Cost.gomp_fork + (4 * Interp.Cost.gomp_barrier)));
    Alcotest.test_case "iterations counted" `Quick (fun () ->
        let _, lid, transformed, spec = expand_and_spec doall_src in
        let pr = Parexec.Sim.run_parallel transformed [ spec ] ~threads:2 in
        Alcotest.(check int) "64 iterations" 64
          (List.assoc lid pr.Parexec.Sim.pr_iterations));
    Alcotest.test_case "single thread near parity" `Quick (fun () ->
        let s1 = speedup doall_src 1 in
        Alcotest.(check bool) (Printf.sprintf "T=1: %.2f" s1) true
          (s1 > 0.85 && s1 <= 1.01));
  ]

(* --- bandwidth bound ------------------------------------------------ *)

let bandwidth_tests =
  [
    Alcotest.test_case "streaming loop hits the bandwidth wall" `Quick
      (fun () ->
        (* touch far more data than the LLC holds; scaling must stall *)
        let src = {|
double big_a[300000];
double big_b[300000];
int main(void)
{
  int i;
  for (i = 0; i < 300000; i++) big_a[i] = i * 0.5;
  int row;
#pragma parallel
  for (row = 0; row < 100; row++) {
    int j;
    for (j = 0; j < 3000; j++)
      big_b[row * 3000 + j] = big_a[row * 3000 + j] * 1.5 + 1.0;
  }
  printf("%.1f\n", big_b[299999]);
  return 0;
}|}
        in
        let s2 = speedup src 2 and s8 = speedup src 8 in
        Alcotest.(check bool)
          (Printf.sprintf "plateau: %.2f@2 vs %.2f@8" s2 s8)
          true
          (s8 < s2 *. 3.0));
  ]

let () =
  Alcotest.run "parexec"
    [
      ("cache", cache_tests);
      ("scheduling", scheduling_tests);
      ("bandwidth", bandwidth_tests);
    ]
