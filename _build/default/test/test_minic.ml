(* Tests for the MiniC frontend: lexer, parser, type checker,
   pretty-printer and traversal utilities. *)

open Minic

let check_parses name src =
  Alcotest.test_case name `Quick (fun () ->
      let p = Typecheck.parse_and_check ~file:name src in
      Alcotest.(check bool) "has globals" true (p.Ast.globals <> []))

let check_rejects name src =
  Alcotest.test_case name `Quick (fun () ->
      match Typecheck.parse_and_check ~file:name src with
      | exception Loc.Error _ -> ()
      | _ -> Alcotest.fail "expected a frontend error")

let simple_program =
  {|
struct node {
  int value;
  struct node *next;
};

int total;
int table[16];

int sum_list(struct node *head)
{
  int s = 0;
  while (head != 0) {
    s += head->value;
    head = head->next;
  }
  return s;
}

int main(void)
{
  struct node *n = (struct node *)malloc(sizeof(struct node));
  n->value = 41;
  n->next = 0;
  total = sum_list(n) + 1;
  printf("%d\n", total);
  free(n);
  return 0;
}
|}

let parse_tests =
  [
    check_parses "simple_program" simple_program;
    check_parses "for_loop" "int main(void){int i; int s=0; for(i=0;i<10;i++) s+=i; return s;}";
    check_parses "pragma_parallel"
      "int main(void){int i;\n#pragma parallel\nfor(i=0;i<4;i++){int x; x=i;} return 0;}";
    check_parses "nested_ptrs" "int main(void){int **pp; int *p; int x; p=&x; pp=&p; **pp=3; return x;}";
    check_parses "ternary" "int main(void){int a=1; int b; b = a > 0 ? 10 : 20; return b;}";
    check_parses "compound_ops"
      "int main(void){int x=8; x<<=1; x>>=2; x|=1; x&=7; x^=2; x%=5; return x;}";
    check_parses "sizeof_forms"
      "int main(void){long a; int x; a = sizeof(int) + sizeof x + sizeof(struct s *); return 0;} struct s { int f; };";
    check_parses "string_and_char"
      {|int main(void){ printf("hi %c\n", 'a'); return 0; }|};
    check_parses "casts" "int main(void){double d=1.5; int i=(int)d; short *p=(short *)0; return i;}";
    check_parses "multi_decl" "int a, b, *c; int main(void){ a=1; b=2; c=&a; return *c + b; }";
    check_rejects "unknown_var" "int main(void){ x = 1; return 0; }";
    check_rejects "unknown_fun" "int main(void){ frobnicate(); return 0; }";
    check_rejects "bad_field" "struct s { int a; }; int main(void){ struct s v; v.b = 1; return 0; }";
    check_rejects "deref_int" "int main(void){ int x; *x = 1; return 0; }";
    check_rejects "call_in_loop_cond" "int main(void){ while (rand()) {} return 0; }";
    check_rejects "void_value" "int main(void){ int x; x = free(0); return 0; }";
    check_rejects "shadowing" "int main(void){ int x; { int x; } return 0; }";
    check_rejects "arity" "int main(void){ putchar(1, 2); return 0; }";
  ]

(* Every Lval carries a distinct access id after checking. *)
let unique_aids () =
  let p = Typecheck.parse_and_check simple_program in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun f ->
      List.iter
        (fun (a : Visit.access) ->
          Alcotest.(check bool)
            (Printf.sprintf "aid %d assigned" a.acc_aid)
            true (a.acc_aid >= 0);
          if Hashtbl.mem seen a.acc_aid then
            Alcotest.failf "duplicate access id %d" a.acc_aid;
          Hashtbl.replace seen a.acc_aid ())
        (Visit.accesses_of_fun f))
    (Ast.functions p)

(* Pretty-printing then reparsing yields a program that pretty-prints
   identically (fixpoint round-trip). *)
let roundtrip src () =
  let p1 = Typecheck.parse_and_check src in
  let printed1 = Pretty.program_to_string p1 in
  let p2 = Typecheck.parse_and_check printed1 in
  let printed2 = Pretty.program_to_string p2 in
  Alcotest.(check string) "pretty fixpoint" printed1 printed2

let pointer_index_normalized () =
  let p =
    Typecheck.parse_and_check
      "int main(void){int *p; int x; p = &x; p[0] = 5; return p[0];}"
  in
  let main = Option.get (Ast.find_fun p "main") in
  (* After normalization no Index remains with a pointer base: every
     Index base must have array type. The program has no arrays, so no
     Index nodes at all. *)
  let has_index = ref false in
  List.iter
    (fun (a : Visit.access) ->
      match a.acc_lval with Index _ -> has_index := true | _ -> ())
    (Visit.accesses_of_fun main);
  Alcotest.(check bool) "no pointer-based Index nodes" false !has_index

let struct_assign_exploded () =
  let p =
    Typecheck.parse_and_check
      "struct pair { int a; int b; }; int main(void){struct pair x; struct \
       pair y; x.a=1; x.b=2; y = x; return y.a + y.b;}"
  in
  let main = Option.get (Ast.find_fun p "main") in
  let stores =
    List.filter (fun (a : Visit.access) -> a.acc_kind = Visit.Store)
      (Visit.accesses_of_fun main)
  in
  (* x.a=1, x.b=2, then y=x explodes to y.a=x.a and y.b=x.b: 4 stores. *)
  Alcotest.(check int) "stores" 4 (List.length stores)

let sizeof_array_not_decayed () =
  let p =
    Typecheck.parse_and_check
      "int main(void){int a[10]; long n; n = sizeof a; return (int)n;}"
  in
  let main = Option.get (Ast.find_fun p "main") in
  let found = ref None in
  let rec scan (s : Ast.stmt) =
    match s.skind with
    | Sassign (_, Var "n", e) -> found := Some e
    | Sseq l -> List.iter scan l
    | _ -> ()
  in
  scan main.fbody;
  match !found with
  | Some (SizeofType (Types.Tarray (Types.Tint Types.IInt, 10))) -> ()
  | Some e -> Alcotest.failf "unexpected rhs: %s" (Ast.show_exp e)
  | None -> Alcotest.fail "assignment to n not found"

let type_layout_tests =
  let comps : Types.composite_env = Hashtbl.create 4 in
  Hashtbl.replace comps "padded"
    {
      Types.cname = "padded";
      cfields = [ ("c", Types.Tint IChar); ("x", Types.Tint IInt); ("d", Types.Tint IChar) ];
    };
  Hashtbl.replace comps "list"
    {
      Types.cname = "list";
      cfields = [ ("v", Types.Tint IInt); ("next", Types.Tptr (Types.Tstruct "list")) ];
    };
  let sz t = Types.sizeof comps Loc.dummy t in
  [
    Alcotest.test_case "primitive sizes" `Quick (fun () ->
        Alcotest.(check int) "char" 1 (sz (Tint IChar));
        Alcotest.(check int) "short" 2 (sz (Tint IShort));
        Alcotest.(check int) "int" 4 (sz (Tint IInt));
        Alcotest.(check int) "long" 8 (sz (Tint ILong));
        Alcotest.(check int) "float" 4 (sz (Tfloat FFloat));
        Alcotest.(check int) "double" 8 (sz (Tfloat FDouble));
        Alcotest.(check int) "ptr" 8 (sz (Tptr Tvoid)));
    Alcotest.test_case "struct padding" `Quick (fun () ->
        (* char pad3 int char pad3 -> 12 bytes, align 4 *)
        Alcotest.(check int) "padded size" 12 (sz (Tstruct "padded"));
        let off_x, _ = Types.field_offset comps Loc.dummy "padded" "x" in
        Alcotest.(check int) "offset of x" 4 off_x;
        let off_d, _ = Types.field_offset comps Loc.dummy "padded" "d" in
        Alcotest.(check int) "offset of d" 8 off_d);
    Alcotest.test_case "recursive struct" `Quick (fun () ->
        (* int + pad4 + ptr8 = 16 *)
        Alcotest.(check int) "list size" 16 (sz (Tstruct "list"));
        let off, t = Types.field_offset comps Loc.dummy "list" "next" in
        Alcotest.(check int) "offset of next" 8 off;
        Alcotest.(check bool) "next is ptr" true (Types.is_pointer t));
    Alcotest.test_case "array size" `Quick (fun () ->
        Alcotest.(check int) "int[10]" 40 (sz (Tarray (Tint IInt, 10)));
        Alcotest.(check int) "struct[3]" 36 (sz (Tarray (Tstruct "padded", 3))));
  ]

(* qcheck: random well-formed expressions round-trip through
   print-then-parse up to alpha-renaming of access ids. *)
let gen_pure_exp : Ast.exp QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c" ] >|= fun v -> Ast.Lval (0, Ast.Var v) in
  (* Non-negative: [-44] prints as a negation, which reparses as
     [Unop (Neg, 44)] — a legitimate printer asymmetry. *)
  let const = map (fun n -> Ast.cint n) (int_range 0 100) in
  fix
    (fun self n ->
      if n = 0 then oneof [ var; const ]
      else
        frequency
          [
            (2, var);
            (2, const);
            ( 3,
              let* op =
                oneofl
                  Ast.[ Add; Sub; Mul; Div; Lt; Gt; Eq; Ne; Band; Bor; Bxor ]
              in
              let* a = self (n / 2) in
              let* b = self (n / 2) in
              return (Ast.Binop (op, a, b)) );
            (1, self (n / 2) >|= fun a -> Ast.Unop (Ast.Neg, a));
            (1, self (n / 2) >|= fun a -> Ast.Unop (Ast.Bitnot, a));
            ( 1,
              let* c = self (n / 3) in
              let* a = self (n / 3) in
              let* b = self (n / 3) in
              return (Ast.Cond (c, a, b)) );
          ])
    5

(* Strip access ids so structural equality ignores numbering. *)
let rec strip_e (e : Ast.exp) : Ast.exp =
  match e with
  | Lval (_, lv) -> Lval (0, strip_l lv)
  | Addr lv -> Addr (strip_l lv)
  | Unop (op, a) -> Unop (op, strip_e a)
  | Binop (op, a, b) -> Binop (op, strip_e a, strip_e b)
  | Cast (t, a) -> Cast (t, strip_e a)
  | Call (f, args) -> Call (f, List.map strip_e args)
  | Cond (c, a, b) -> Cond (strip_e c, strip_e a, strip_e b)
  | Const _ | SizeofType _ -> e
  | SizeofExp a -> SizeofExp (strip_e a)

and strip_l (lv : Ast.lval) : Ast.lval =
  match lv with
  | Var _ -> lv
  | Deref e -> Deref (strip_e e)
  | Index (b, i) -> Index (strip_l b, strip_e i)
  | Field (b, f) -> Field (strip_l b, f)

let exp_roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"exp print/parse roundtrip"
    (QCheck.make gen_pure_exp ~print:(fun e -> Pretty.exp_text e))
    (fun e ->
      let printed = Pretty.exp_text e in
      let reparsed = Parser.parse_exp_string printed in
      Ast.equal_exp (strip_e e) (strip_e reparsed))

let lexer_tests =
  [
    Alcotest.test_case "punct longest match" `Quick (fun () ->
        let toks = Lexer.tokenize "a <<= b >> c >= d" in
        let ps =
          Array.to_list toks
          |> List.filter_map (fun (t : Lexer.t) ->
                 match t.tok with Lexer.PUNCT p -> Some p | _ -> None)
        in
        Alcotest.(check (list string)) "ops" [ "<<="; ">>"; ">=" ] ps);
    Alcotest.test_case "literals" `Quick (fun () ->
        let toks = Lexer.tokenize "0x10 42L 3.5 1e3 2.5f 'x' \"s\\n\"" in
        let lits =
          Array.to_list toks
          |> List.filter_map (fun (t : Lexer.t) ->
                 match t.tok with
                 | Lexer.INTLIT (v, k) ->
                   Some (Printf.sprintf "i%Ld:%d" v (Types.ikind_size k))
                 | Lexer.FLOATLIT (f, k) ->
                   Some (Printf.sprintf "f%g:%d" f (Types.fkind_size k))
                 | Lexer.STRLIT s -> Some (Printf.sprintf "s%s" (String.escaped s))
                 | _ -> None)
        in
        Alcotest.(check (list string))
          "literals"
          [ "i16:4"; "i42:8"; "f3.5:8"; "f1000:8"; "f2.5:4"; "i120:1"; "ss\\n" ]
          lits);
    Alcotest.test_case "comments and pragma" `Quick (fun () ->
        let toks =
          Lexer.tokenize "// line\nx /* multi\nline */ y\n#pragma parallel\nz"
        in
        let ids =
          Array.to_list toks
          |> List.filter_map (fun (t : Lexer.t) ->
                 match t.tok with
                 | Lexer.IDENT s -> Some s
                 | Lexer.PRAGMA s -> Some ("#" ^ s)
                 | _ -> None)
        in
        Alcotest.(check (list string)) "tokens" [ "x"; "y"; "#pragma parallel"; "z" ] ids);
    Alcotest.test_case "line numbers" `Quick (fun () ->
        let toks = Lexer.tokenize "a\nb\n  c" in
        let lines =
          Array.to_list toks
          |> List.filter_map (fun (t : Lexer.t) ->
                 match t.tok with Lexer.IDENT _ -> Some t.loc.Loc.line | _ -> None)
        in
        Alcotest.(check (list int)) "lines" [ 1; 2; 3 ] lines);
  ]

let misc_tests =
  [
    Alcotest.test_case "unique access ids" `Quick unique_aids;
    Alcotest.test_case "roundtrip simple" `Quick (roundtrip simple_program);
    Alcotest.test_case "roundtrip loops" `Quick
      (roundtrip
         "int g[4]; int main(void){int i; int s=0;\n#pragma parallel\nfor(i=0;i<4;i++){g[i]=i*i; s+=g[i];} while(s>0){s--;} return s;}");
    Alcotest.test_case "pointer index normalized" `Quick pointer_index_normalized;
    Alcotest.test_case "struct assignment exploded" `Quick struct_assign_exploded;
    Alcotest.test_case "sizeof array not decayed" `Quick sizeof_array_not_decayed;
    Alcotest.test_case "parallel pragma recorded" `Quick (fun () ->
        let p =
          Typecheck.parse_and_check
            "int main(void){int i;\n#pragma parallel\nfor(i=0;i<4;i++){} while(1){break;} return 0;}"
        in
        Alcotest.(check int) "one candidate" 1 (List.length p.Ast.parallel_loops));
    QCheck_alcotest.to_alcotest exp_roundtrip_prop;
  ]

let () =
  Alcotest.run "minic"
    [
      ("lexer", lexer_tests);
      ("types", type_layout_tests);
      ("parser", parse_tests);
      ("normalize", misc_tests);
    ]
