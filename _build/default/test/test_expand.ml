(* Tests for the expansion transformation (Tables 1-3), the §3.4
   optimizations, the parallel simulator, and the runtime-privatization
   baseline. The central property throughout: the transformed program
   produces byte-identical output, sequentially and under the parallel
   schedule, at any thread count. *)

open Minic

let analyze_first src =
  let p = Typecheck.parse_and_check ~file:"test" src in
  let lid = List.hd p.Ast.parallel_loops in
  (p, lid, Privatize.Analyze.analyze p lid)

let run_with_threads prog n =
  let m = Interp.Machine.load prog in
  Interp.Machine.set_global_int m.Interp.Machine.st "__nthreads" n;
  let code = Interp.Machine.run m in
  (code, Interp.Machine.output m.Interp.Machine.st)

(* Sequential equivalence: original vs expanded with tid = 0 at
   several thread counts, optimized and not. *)
let check_seq_equiv name src =
  Alcotest.test_case name `Quick (fun () ->
      let p, _, r = analyze_first src in
      let code0, out0 = Interp.Machine.run_program p in
      List.iter
        (fun optimize ->
          let res = Expand.Transform.expand ~optimize p r in
          List.iter
            (fun n ->
              let code, out =
                run_with_threads res.Expand.Transform.transformed n
              in
              Alcotest.(check int)
                (Printf.sprintf "exit (N=%d opt=%b)" n optimize)
                code0 code;
              Alcotest.(check string)
                (Printf.sprintf "output (N=%d opt=%b)" n optimize)
                out0 out)
            [ 1; 3; 8 ])
        [ true; false ])

(* Parallel equivalence: simulated parallel run output equals the
   sequential original at several thread counts. *)
let check_par_equiv name src =
  Alcotest.test_case name `Quick (fun () ->
      let p, lid, r = analyze_first src in
      let _, out0 = Interp.Machine.run_program p in
      let res = Expand.Transform.expand p r in
      let spec = Parexec.Sim.spec_of_analysis r in
      List.iter
        (fun t ->
          let pr =
            Parexec.Sim.run_parallel res.Expand.Transform.transformed [ spec ]
              ~threads:t
          in
          Alcotest.(check string)
            (Printf.sprintf "parallel output T=%d" t)
            out0 pr.Parexec.Sim.pr_output;
          Alcotest.(check bool)
            (Printf.sprintf "loop simulated T=%d" t)
            true
            (List.assoc lid pr.Parexec.Sim.pr_loop > 0))
        [ 2; 4; 8 ])

(* ------------------------------------------------------------------ *)
(* The test programs                                                   *)
(* ------------------------------------------------------------------ *)

let fig1_src = {|
int main(void)
{
  int m = 32;
  int *zptr = (int *)malloc(sizeof(int) * m);
  int b = 0;
  int round = 0;
  int k;
#pragma parallel
  while (round < 25) {
    for (k = 0; k < m; k++)
      zptr[k] = round + k;
    for (k = 0; k < m; k++)
      b += zptr[k];
    round++;
  }
  printf("%d\n", b);
  free(zptr);
  return 0;
}|}

(* The paper's Figure 3 (456.hmmer): mx points at one of two
   different-sized allocations and is reused by every iteration; only
   the span makes redirection possible. (Per-iteration malloc'd+freed
   buffers are correctly NOT privatized: a thread-safe allocator keeps
   them disjoint already.) *)
let hmmer_fig3_src = {|
int results[40];
int *mx;
int main(void)
{
  int m1 = 160;
  int m2 = 224;
  int pick = 7;
  if (pick % 3 == 0) mx = (int *)malloc(m1);
  else mx = (int *)malloc(m2);
  int iter;
#pragma parallel
  for (iter = 0; iter < 40; iter++) {
    int k;
    int n = 10 + iter % 30;
    for (k = 0; k < n; k++)
      mx[k] = iter * k;
    int best = 0;
    for (k = 0; k < n; k++)
      if (mx[k] > best) best = mx[k];
    results[iter] = best;
  }
  int sum = 0;
  int i;
  for (i = 0; i < 40; i++) sum += results[i];
  printf("%d\n", sum);
  free(mx);
  return 0;
}|}

(* Linked list rebuilt every iteration through a global head pointer:
   the paper's dijkstra shape (priority queue as list). *)
let list_src = {|
struct node { int v; struct node *next; };
struct node *head;
int qcount;
int total;
int main(void)
{
  int it;
#pragma parallel
  for (it = 0; it < 30; it++) {
    head = 0;
    qcount = 0;
    int j;
    for (j = 0; j < 10; j++) {
      struct node *n = (struct node *)malloc(sizeof(struct node));
      n->v = it + j;
      n->next = head;
      head = n;
      qcount++;
    }
    int s = 0;
    while (qcount > 0) {
      struct node *d = head;
      head = head->next;
      s += d->v;
      free(d);
      qcount--;
    }
    total += s;
  }
  printf("%d\n", total);
  return 0;
}|}

(* Expanded global with an initializer; shared reads keep copy 0. *)
let init_global_src = {|
int weights[4] = {3, 1, 4, 1};
int scratch[8];
int acc;
int main(void)
{
  int i;
#pragma parallel
  for (i = 0; i < 50; i++) {
    int j;
    for (j = 0; j < 8; j++) scratch[j] = i * weights[j % 4];
    int s = 0;
    for (j = 0; j < 8; j++) s += scratch[j];
    acc += s;
  }
  printf("%d\n", acc);
  return 0;
}|}

(* Promoted pointer flowing through a helper function (span argument
   plumbing) and a pointer-returning helper (return span). *)
let helper_src = {|
int out;
int *make_buf(int n)
{
  int *p = (int *)malloc(sizeof(int) * n);
  return p;
}
void fill(int *p, int n, int seed)
{
  int k;
  for (k = 0; k < n; k++) p[k] = seed + k;
}
int main(void)
{
  int it;
#pragma parallel
  for (it = 0; it < 20; it++) {
    int *buf = make_buf(16);
    fill(buf, 16, it);
    int s = 0;
    int k;
    for (k = 0; k < 16; k++) s += buf[k];
    out += s;
    free(buf);
  }
  printf("%d\n", out);
  return 0;
}|}

(* Promoted struct field: the list node carries a pointer to a
   per-node payload buffer. *)
let field_src = {|
struct slot { int len; int *payload; };
struct slot table[4];
int acc;
int main(void)
{
  int it;
#pragma parallel
  for (it = 0; it < 24; it++) {
    int j;
    for (j = 0; j < 4; j++) {
      table[j].len = 4 + j;
      table[j].payload = (int *)malloc(sizeof(int) * table[j].len);
      int k;
      for (k = 0; k < table[j].len; k++)
        table[j].payload[k] = it * j + k;
    }
    int s = 0;
    for (j = 0; j < 4; j++) {
      int k2;
      for (k2 = 0; k2 < table[j].len; k2++)
        s += table[j].payload[k2];
      free(table[j].payload);
    }
    acc += s;
  }
  printf("%d\n", acc);
  return 0;
}|}

(* bzip2's recast: the same block written as ints, read as shorts. *)
let recast_src = {|
int acc;
int main(void)
{
  int it;
#pragma parallel
  for (it = 0; it < 30; it++) {
    int *zptr = (int *)malloc(64);
    int k;
    for (k = 0; k < 16; k++) zptr[k] = it + k * 65536 + k;
    short *sp = (short *)zptr;
    int s = 0;
    for (k = 0; k < 32; k++) s += sp[k];
    acc += s;
    free(zptr);
  }
  printf("%d\n", acc);
  return 0;
}|}

let seq_tests =
  [
    check_seq_equiv "fig1 zptr" fig1_src;
    check_seq_equiv "hmmer fig3 spans" hmmer_fig3_src;
    check_seq_equiv "linked list queue" list_src;
    check_seq_equiv "global with initializer" init_global_src;
    check_seq_equiv "helper plumbing" helper_src;
    check_seq_equiv "promoted struct field" field_src;
    check_seq_equiv "short/int recast" recast_src;
  ]

let par_tests =
  [
    check_par_equiv "fig1 parallel" fig1_src;
    check_par_equiv "hmmer parallel" hmmer_fig3_src;
    check_par_equiv "list parallel" list_src;
    check_par_equiv "init global parallel" init_global_src;
    check_par_equiv "helper parallel" helper_src;
    check_par_equiv "field parallel" field_src;
    check_par_equiv "recast parallel" recast_src;
  ]

(* ------------------------------------------------------------------ *)
(* Structural properties of the transformation                          *)
(* ------------------------------------------------------------------ *)

let privatized_counts () =
  let count src =
    let p, _, r = analyze_first src in
    (Expand.Transform.expand p r).Expand.Transform.privatized
  in
  (* fig1 expands the zptr allocation; hmmer expands the ambiguous mx
     allocation *)
  Alcotest.(check bool) "fig1 privatizes a structure" true (count fig1_src > 0);
  Alcotest.(check bool) "hmmer privatizes a structure" true
    (count hmmer_fig3_src > 0);
  (* the list queue needs no replicated structure: the head/count
     scalars become OpenMP-style privates and the nodes are
     per-iteration allocations, disjoint under a thread-safe malloc *)
  Alcotest.(check bool) "list count is small" true (count list_src <= 1)

let selective_promotes_less () =
  let p, _, r = analyze_first hmmer_fig3_src in
  let sel = Expand.Plan.make ~mode:Expand.Plan.Bonded ~selective:true p [ r ] in
  let all = Expand.Plan.make ~mode:Expand.Plan.Bonded ~selective:false p [ r ] in
  Alcotest.(check bool) "selective promotes fewer pointers" true
    (Hashtbl.length sel.Expand.Plan.promoted_vars
    <= Hashtbl.length all.Expand.Plan.promoted_vars);
  Alcotest.(check bool) "unselective promotes every pointer var" true
    (Hashtbl.length all.Expand.Plan.promoted_vars
    >= Hashtbl.length sel.Expand.Plan.promoted_vars)

let optimization_reduces_cycles () =
  List.iter
    (fun src ->
      let p, _, r = analyze_first src in
      let cycles transformed =
        let m = Interp.Machine.load transformed in
        Interp.Machine.set_global_int m.Interp.Machine.st "__nthreads" 4;
        ignore (Interp.Machine.run m);
        m.Interp.Machine.st.Interp.Machine.cycles
      in
      let unopt =
        Expand.Transform.expand ~selective:false ~optimize:false p r
      in
      let opt = Expand.Transform.expand ~selective:true ~optimize:true p r in
      let cu = cycles unopt.Expand.Transform.transformed in
      let co = cycles opt.Expand.Transform.transformed in
      Alcotest.(check bool)
        (Printf.sprintf "optimized not slower (%d vs %d)" co cu)
        true (co <= cu))
    [ fig1_src; hmmer_fig3_src; list_src; helper_src ]

let spans_hold_original_sizes () =
  (* In the expanded hmmer program the allocation is m*N bytes but the
     span must record the original m; check by running with N=4 and
     confirming no memory fault occurs on the farthest redirected
     access (tid fixed 0 exercises copy 0 only; the parallel test
     exercises all copies). *)
  let p, _, r = analyze_first hmmer_fig3_src in
  let res = Expand.Transform.expand p r in
  let spec = Parexec.Sim.spec_of_analysis r in
  let pr =
    Parexec.Sim.run_parallel res.Expand.Transform.transformed [ spec ]
      ~threads:8
  in
  Alcotest.(check int) "exit" 0 pr.Parexec.Sim.pr_exit

let expansion_grows_memory () =
  let p, _, r = analyze_first hmmer_fig3_src in
  let res = Expand.Transform.expand p r in
  let peak n =
    let m = Interp.Machine.load res.Expand.Transform.transformed in
    Interp.Machine.set_global_int m.Interp.Machine.st "__nthreads" n;
    ignore (Interp.Machine.run m);
    Interp.Memory.peak_bytes m.Interp.Machine.st.Interp.Machine.mem
  in
  let p1 = peak 1 and p8 = peak 8 in
  Alcotest.(check bool)
    (Printf.sprintf "8 threads use more memory (%d vs %d)" p8 p1)
    true (p8 > p1)

let doacross_sync_grows () =
  let p, _, r = analyze_first fig1_src in
  let res = Expand.Transform.expand p r in
  let spec = Parexec.Sim.spec_of_analysis r in
  Alcotest.(check bool) "fig1 is doacross" true
    (spec.Parexec.Sim.schedule = Parexec.Sim.Doacross);
  let sync t =
    let pr =
      Parexec.Sim.run_parallel res.Expand.Transform.transformed [ spec ]
        ~threads:t
    in
    Array.fold_left ( + ) 0 pr.Parexec.Sim.pr_sync
  in
  Alcotest.(check bool) "more threads, more waiting" true (sync 8 > sync 2)

let runtimepriv_slower_same_output () =
  let p, _, r = analyze_first hmmer_fig3_src in
  let _, out0 = Interp.Machine.run_program p in
  let res = Expand.Transform.expand p r in
  let spec = Parexec.Sim.spec_of_analysis r in
  let rp = Runtimepriv.Rp.config_of p [ r ] in
  Alcotest.(check bool) "monitors some accesses" true
    (Hashtbl.length rp.Parexec.Sim.rp_monitored > 0);
  let plain =
    Parexec.Sim.run_parallel res.Expand.Transform.transformed [ spec ]
      ~threads:4
  in
  let slow =
    Parexec.Sim.run_parallel ~rp res.Expand.Transform.transformed [ spec ]
      ~threads:4
  in
  Alcotest.(check string) "same output" out0 slow.Parexec.Sim.pr_output;
  Alcotest.(check bool) "runtime privatization costs more" true
    (slow.Parexec.Sim.pr_total > plain.Parexec.Sim.pr_total);
  Alcotest.(check bool) "touched bytes recorded" true
    (slow.Parexec.Sim.pr_rp_touched_bytes > 0)

(* ------------------------------------------------------------------ *)
(* Randomized semantic preservation                                    *)
(* ------------------------------------------------------------------ *)

(* Generate random parallel-loop programs: a few privatizable scratch
   structures (array / malloc'd buffer / struct), per-iteration
   init-then-use, accumulation into shared state. Expansion at T=4 must
   preserve the output exactly. *)
let gen_program : string QCheck.Gen.t =
  let open QCheck.Gen in
  let* iters = int_range 5 25 in
  let* asize = int_range 3 17 in
  let* use_heap = bool in
  let* use_struct = bool in
  let* use_helper = bool in
  let* use_field_ptr = bool in
  let* coeff = int_range 1 9 in
  let* accumulate = bool in
  let scratch_decl, scratch_setup, scratch_free =
    if use_heap then
      ( "int *scratch;",
        Printf.sprintf
          "scratch = (int *)malloc(sizeof(int) * %d);" asize,
        "free(scratch);" )
    else (Printf.sprintf "int scratch[%d];" asize, "", "")
  in
  let struct_part =
    if use_struct then
      {|
    pair.lo = it * 2;
    pair.hi = pair.lo + 1;
    s += pair.hi - pair.lo;|}
    else ""
  in
  let helper_part =
    if use_helper then "s = mix(s, scratch, " ^ string_of_int asize ^ ");"
    else ""
  in
  let field_part =
    if use_field_ptr then
      {|
    slot.buf = scratch;
    slot.n = 3;
    s += slot.buf[slot.n - 1];|}
    else ""
  in
  let sink =
    if accumulate then "acc += s;" else "results[it % 16] = s; acc = acc + results[it % 16] % 7;"
  in
  return
    (Printf.sprintf
       {|
struct pr { int lo; int hi; };
struct ref { int *buf; int n; };
int results[16];
int acc;
int mix(int seed, int *data, int n)
{
  int k;
  int t = seed;
  for (k = 0; k < n; k++) t = (t * 31 + data[k]) %% 65521;
  return t;
}
int main(void)
{
  int it;
#pragma parallel
  for (it = 0; it < %d; it++) {
    %s
    struct pr pair;
    struct ref slot;
    int k;
    int s = 0;
    %s
    for (k = 0; k < %d; k++) scratch[k] = it * %d + k;
    for (k = 0; k < %d; k++) s += scratch[k];
    %s
    %s
    %s
    %s
    %s
  }
  printf("%%d %%d\n", acc, results[3]);
  return 0;
}|}
       iters scratch_decl scratch_setup asize coeff asize struct_part
       helper_part field_part sink scratch_free)

let random_preservation =
  QCheck.Test.make ~count:60 ~name:"random programs: expansion preserves output"
    (QCheck.make gen_program ~print:(fun s -> s))
    (fun src ->
      let p, _, r = analyze_first src in
      let _, out0 = Interp.Machine.run_program p in
      let res = Expand.Transform.expand p r in
      let spec = Parexec.Sim.spec_of_analysis r in
      let _, out_seq = run_with_threads res.Expand.Transform.transformed 4 in
      let pr =
        Parexec.Sim.run_parallel res.Expand.Transform.transformed [ spec ]
          ~threads:4
      in
      String.equal out0 out_seq
      && String.equal out0 pr.Parexec.Sim.pr_output)

let structural_tests =
  [
    Alcotest.test_case "privatized counts" `Quick privatized_counts;
    Alcotest.test_case "selective promotion" `Quick selective_promotes_less;
    Alcotest.test_case "optimization reduces cycles" `Quick
      optimization_reduces_cycles;
    Alcotest.test_case "spans hold original sizes" `Quick
      spans_hold_original_sizes;
    Alcotest.test_case "expansion grows memory" `Quick expansion_grows_memory;
    Alcotest.test_case "doacross sync grows" `Quick doacross_sync_grows;
    Alcotest.test_case "runtime privatization baseline" `Quick
      runtimepriv_slower_same_output;
    QCheck_alcotest.to_alcotest random_preservation;
  ]

let () =
  Alcotest.run "expand"
    [
      ("sequential-equivalence", seq_tests);
      ("parallel-equivalence", par_tests);
      ("structure", structural_tests);
    ]
