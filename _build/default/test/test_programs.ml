(* End-to-end pipeline tests over the sample .c programs shipped in
   examples/programs: each must parse, analyze, expand, preserve
   output sequentially at several thread counts, and match under the
   simulated parallel schedule. This is the coverage the dsexpand CLI
   relies on for user-supplied files. *)

open Minic

(* `dune runtest` runs in the sandbox where [programs/] sits beside
   the test; `dune exec test/...` runs from the workspace root. *)
let programs_dir =
  if Sys.file_exists "programs" then "programs" else "test/programs"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let pipeline name src () =
  let p = Typecheck.parse_and_check ~file:name src in
  let lids = p.Ast.parallel_loops in
  Alcotest.(check bool) "has a parallel loop" true (lids <> []);
  let analyses = List.map (Privatize.Analyze.analyze p) lids in
  let _, out0 = Interp.Machine.run_program p in
  let res = Expand.Transform.expand_loops p analyses in
  (* sequential equivalence at several N *)
  List.iter
    (fun n ->
      let m = Interp.Machine.load res.Expand.Transform.transformed in
      Interp.Machine.set_global_int m.Interp.Machine.st "__nthreads" n;
      ignore (Interp.Machine.run m);
      Alcotest.(check string)
        (Printf.sprintf "sequential N=%d" n)
        out0
        (Interp.Machine.output m.Interp.Machine.st))
    [ 1; 5 ];
  (* simulated parallel equivalence *)
  let specs = List.map Parexec.Sim.spec_of_analysis analyses in
  List.iter
    (fun t ->
      let pr =
        Parexec.Sim.run_parallel res.Expand.Transform.transformed specs
          ~threads:t
      in
      Alcotest.(check string)
        (Printf.sprintf "parallel T=%d" t)
        out0 pr.Parexec.Sim.pr_output)
    [ 2; 8 ];
  (* the pretty-printed transformed program re-parses and still
     behaves identically (the CLI prints it for user consumption) *)
  let printed =
    Pretty.program_to_string res.Expand.Transform.transformed
  in
  let reparsed = Typecheck.parse_and_check ~file:(name ^ ".out") printed in
  let m = Interp.Machine.load reparsed in
  Interp.Machine.set_global_int m.Interp.Machine.st "__nthreads" 3;
  ignore (Interp.Machine.run m);
  Alcotest.(check string) "reparsed transformed output" out0
    (Interp.Machine.output m.Interp.Machine.st)

let () =
  let files = Sys.readdir programs_dir in
  Array.sort compare files;
  let cases =
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".c")
    |> List.map (fun f ->
           let src = read_file (Filename.concat programs_dir f) in
           Alcotest.test_case f `Quick (pipeline f src))
  in
  Alcotest.run "programs" [ ("pipeline", cases) ]
