(* Unit tests for the §3.4 optimization pass (span DSE, constant and
   copy propagation) and the alias analysis that drives selective
   promotion. *)

open Minic

let check_prog src = Typecheck.parse_and_check ~file:"test" src

let is_span x =
  String.length x >= 7 && String.sub x 0 7 = "__span_"

(* count assignments to variables matching a predicate *)
let count_stores prog pred =
  List.fold_left
    (fun acc (f : Ast.fundef) ->
      Visit.fold_stmt_accesses
        (fun acc (a : Visit.access) ->
          match (a.Visit.acc_kind, a.Visit.acc_lval) with
          | Visit.Store, Ast.Var x when pred x -> acc + 1
          | _ -> acc)
        acc f.Ast.fbody)
    0 (Ast.functions prog)

let count_loads prog pred =
  List.fold_left
    (fun acc (f : Ast.fundef) ->
      Visit.fold_stmt_accesses
        (fun acc (a : Visit.access) ->
          match (a.Visit.acc_kind, a.Visit.acc_lval) with
          | Visit.Load, Ast.Var x when pred x -> acc + 1
          | _ -> acc)
        acc f.Ast.fbody)
    0 (Ast.functions prog)

let self_assign_removed () =
  let p =
    check_prog
      "int __span_p; int main(void){ __span_p = 8; __span_p = __span_p; return __span_p; }"
  in
  let stats = Optim.Spanopt.optimize p ~is_candidate:is_span in
  Alcotest.(check bool) "removed a self assign" true
    (stats.Optim.Spanopt.self_assigns_removed >= 1)

let dead_span_removed () =
  (* __span_q is stored but never loaded anywhere *)
  let p =
    check_prog
      "long __span_q; int main(void){ __span_q = 42L; __span_q = 7L; return 0; }"
  in
  ignore (Optim.Spanopt.optimize p ~is_candidate:is_span);
  Alcotest.(check int) "dead stores gone" 0 (count_stores p is_span)

let constant_span_propagated () =
  let p =
    check_prog
      {|long __span_p;
        int use(long v) { return (int)v; }
        int main(void){ __span_p = 16L; int a = use(__span_p); __span_p = 16L; int b = use(__span_p); return a + b; }|}
  in
  let _, out0 = Interp.Machine.run_program p in
  let stats = Optim.Spanopt.optimize p ~is_candidate:is_span in
  Alcotest.(check bool) "loads propagated" true
    (stats.Optim.Spanopt.loads_propagated >= 2);
  Alcotest.(check int) "span loads gone" 0 (count_loads p is_span);
  let _, out1 = Interp.Machine.run_program p in
  Alcotest.(check string) "behaviour preserved" out0 out1

let conflicting_spans_kept () =
  (* two different constants: no propagation, loads must survive *)
  let p =
    check_prog
      {|long __span_p;
        int main(void){ int c = 1; if (c) __span_p = 8L; else __span_p = 16L; return (int)__span_p; }|}
  in
  ignore (Optim.Spanopt.optimize p ~is_candidate:is_span);
  Alcotest.(check bool) "load kept" true (count_loads p is_span >= 1)

let propagates_through_scalars () =
  (* span = sizeof(int) * m with m = 64: resolves via the ordinary
     scalar m, like GCC's constant propagation *)
  let p =
    check_prog
      {|long __span_p;
        int main(void){ int m = 64; __span_p = (long)(sizeof(int) * m); return (int)__span_p; }|}
  in
  let code0, _ = Interp.Machine.run_program p in
  ignore (Optim.Spanopt.optimize p ~is_candidate:is_span);
  Alcotest.(check int) "span load propagated" 0 (count_loads p is_span);
  let code1, _ = Interp.Machine.run_program p in
  Alcotest.(check int) "same result" code0 code1

let address_taken_blocks () =
  let p =
    check_prog
      {|long __span_p;
        void touch(long *x) { *x = 9L; }
        int main(void){ __span_p = 8L; touch(&__span_p); return (int)__span_p; }|}
  in
  let code0, _ = Interp.Machine.run_program p in
  ignore (Optim.Spanopt.optimize p ~is_candidate:is_span);
  Alcotest.(check bool) "load survives" true (count_loads p is_span >= 1);
  let code1, _ = Interp.Machine.run_program p in
  Alcotest.(check int) "semantics kept (9)" code0 code1

(* --- alias analysis ------------------------------------------------ *)

let alias_prog src = check_prog src

let targets_of prog fn_name exp_src =
  let r = Alias.Andersen.analyze prog in
  let f = Option.get (Ast.find_fun prog fn_name) in
  let e = Minic.Parser.parse_exp_string exp_src in
  Alias.Andersen.targets_of_exp r prog f e

let alias_direct () =
  let p = alias_prog "int g; int *p; int main(void){ p = &g; return *p; }" in
  let t = targets_of p "main" "p" in
  Alcotest.(check bool) "p -> g" true
    (Alias.Andersen.LocSet.mem (Alias.Andersen.LVar "g") t)

let alias_copy_chain () =
  let p =
    alias_prog
      "int g; int h; int *p; int *q; int *r2; int main(void){ p = &g; q = p; r2 = q; *r2 = 1; return g; }"
  in
  let t = targets_of p "main" "r2" in
  Alcotest.(check bool) "r2 -> g through copies" true
    (Alias.Andersen.LocSet.mem (Alias.Andersen.LVar "g") t);
  Alcotest.(check bool) "r2 not -> h" false
    (Alias.Andersen.LocSet.mem (Alias.Andersen.LVar "h") t)

let alias_through_call () =
  let p =
    alias_prog
      {|int g;
        int *id(int *x) { return x; }
        int main(void){ int *p = id(&g); *p = 3; return g; }|}
  in
  let t = targets_of p "main" "p" in
  Alcotest.(check bool) "p -> g through the call" true
    (Alias.Andersen.LocSet.mem (Alias.Andersen.LVar "g") t)

let alias_heap_sites () =
  let p =
    alias_prog
      {|int *a; int *b;
        int main(void){ a = (int *)malloc(8); b = (int *)malloc(8); return 0; }|}
  in
  let ta = targets_of p "main" "a" and tb = targets_of p "main" "b" in
  Alcotest.(check bool) "distinct allocation sites" true
    (Alias.Andersen.LocSet.is_empty (Alias.Andersen.LocSet.inter ta tb));
  Alcotest.(check bool) "a has an alloc target" true
    (Alias.Andersen.LocSet.exists
       (function Alias.Andersen.LAlloc _ -> true | _ -> false)
       ta)

let alias_field_insensitive_store () =
  let p =
    alias_prog
      {|struct cell { int *ptr; };
        int g;
        struct cell c;
        int main(void){ c.ptr = &g; int *q = c.ptr; *q = 5; return g; }|}
  in
  let t = targets_of p "main" "q" in
  Alcotest.(check bool) "q -> g through the field" true
    (Alias.Andersen.LocSet.mem (Alias.Andersen.LVar "g") t)

let alias_branch_union () =
  let p =
    alias_prog
      "int g; int h; int main(void){ int c = 1; int *p; if (c) p = &g; else p = &h; *p = 2; return g + h; }"
  in
  let t = targets_of p "main" "p" in
  Alcotest.(check bool) "p -> g" true
    (Alias.Andersen.LocSet.mem (Alias.Andersen.LVar "g") t);
  Alcotest.(check bool) "p -> h" true
    (Alias.Andersen.LocSet.mem (Alias.Andersen.LVar "h") t)

let () =
  Alcotest.run "optim-alias"
    [
      ( "spanopt",
        [
          Alcotest.test_case "self assign removed" `Quick self_assign_removed;
          Alcotest.test_case "dead span removed" `Quick dead_span_removed;
          Alcotest.test_case "constant propagated" `Quick
            constant_span_propagated;
          Alcotest.test_case "conflicting kept" `Quick conflicting_spans_kept;
          Alcotest.test_case "through scalars" `Quick propagates_through_scalars;
          Alcotest.test_case "address taken blocks" `Quick address_taken_blocks;
        ] );
      ( "andersen",
        [
          Alcotest.test_case "direct" `Quick alias_direct;
          Alcotest.test_case "copy chain" `Quick alias_copy_chain;
          Alcotest.test_case "through call" `Quick alias_through_call;
          Alcotest.test_case "heap sites" `Quick alias_heap_sites;
          Alcotest.test_case "field store" `Quick alias_field_insensitive_store;
          Alcotest.test_case "branch union" `Quick alias_branch_union;
        ] );
    ]
